(* The nemesis fault-plan layer: plan validation and generation, plan
   replay against live deployments, campaigns under seeded plans for every
   protocol (sequential and parallel, bit-identically), FD storms under
   the heartbeat detector, and A2's misprediction -> restart path
   (Theorem 5.2). *)

open Des
open Net
open Runtime
module N = Harness.Nemesis

let all_protocols :
    (string * (module Amcast.Protocol.S) * bool * bool) list =
  (* name, protocol, broadcast_only, with_crashes — mirrors the soak
     binary's target list. *)
  [
    ("a1", (module Amcast.A1), false, true);
    ("a2", (module Amcast.A2), true, true);
    ("via-broadcast", (module Amcast.Via_broadcast), false, true);
    ("fritzke", (module Amcast.Fritzke), false, true);
    ("skeen", (module Amcast.Skeen), false, false);
    ("ring", (module Amcast.Ring), false, false);
    ("scalable", (module Amcast.Scalable), false, false);
    ("sequencer", (module Amcast.Sequencer), true, false);
    ("whitebox", (module Amcast.Whitebox), false, true);
    ("flexcast", (module Amcast.Flexcast), false, false);
  ]

(* --- The plan type itself. --- *)

let test_make_rejects_unhealed_partition () =
  let bad =
    [
      {
        N.at = Sim_time.of_ms 10;
        action = N.Partition { side_a = [ 0 ]; side_b = [ 1 ] };
      };
    ]
  in
  (match N.make bad with
  | _ -> Alcotest.fail "unhealed partition accepted"
  | exception Invalid_argument _ -> ());
  (* A heal at the same instant is not enough: it could be ordered before
     the partition. *)
  let same_instant =
    bad @ [ { N.at = Sim_time.of_ms 10; action = N.Heal_all } ]
  in
  (match N.make same_instant with
  | _ -> Alcotest.fail "same-instant heal accepted"
  | exception Invalid_argument _ -> ());
  let good = bad @ [ { N.at = Sim_time.of_ms 50; action = N.Heal_all } ] in
  Alcotest.(check int) "healed plan accepted" 2 (List.length (N.steps (N.make good)))

let test_liveness_from_is_last_step_end () =
  let plan =
    N.make
      [
        {
          N.at = Sim_time.of_ms 10;
          action = N.Partition { side_a = [ 0 ]; side_b = [ 1 ] };
        };
        { N.at = Sim_time.of_ms 50; action = N.Heal_all };
        {
          N.at = Sim_time.of_ms 40;
          action =
            N.Latency_spike
              {
                src_group = 0;
                dst_group = 1;
                factor = 4.0;
                duration = Sim_time.of_ms 30;
              };
        };
        { N.at = Sim_time.of_ms 20; action = N.Fd_storm { scale = 0.1 } };
      ]
  in
  (* The spike's window ends at 70ms, after the 50ms heal. *)
  Alcotest.(check int) "liveness from the last step end" 70_000
    (Sim_time.to_us (N.liveness_from plan));
  Alcotest.(check bool) "steps sorted by time" true
    (let ats = List.map (fun s -> Sim_time.to_us s.N.at) (N.steps plan) in
     ats = List.sort Int.compare ats)

let test_generate_deterministic () =
  let topo = Topology.symmetric ~groups:3 ~per_group:3 in
  let plan_of seed =
    Fmt.str "%a" N.pp (N.generate ~rng:(Rng.create seed) ~topology:topo ())
  in
  Alcotest.(check string) "same seed, same plan" (plan_of 7) (plan_of 7);
  Alcotest.(check bool) "different seed, different plan" true
    (plan_of 7 <> plan_of 8);
  let plan = N.generate ~rng:(Rng.create 7) ~topology:topo () in
  Alcotest.(check bool) "non-empty" false (N.is_empty plan);
  Alcotest.(check bool) "ends healed" true
    (match List.rev (N.steps plan) with
    | { N.action = N.Heal_all; _ } :: _ -> true
    | _ -> false)

(* --- Replaying a hand-written plan against a deployment. --- *)

let test_plan_replay_a1 () =
  let module R = Harness.Runner.Make (Amcast.A1) in
  (* Three per group: the plan crashes one process, and consensus needs a
     correct majority in its group to stay live. *)
  let topo = Topology.symmetric ~groups:2 ~per_group:3 in
  let plan =
    N.make
      [
        {
          N.at = Sim_time.of_ms 20;
          action = N.Partition { side_a = [ 0 ]; side_b = [ 1 ] };
        };
        {
          N.at = Sim_time.of_ms 30;
          action =
            N.Latency_spike
              {
                src_group = 0;
                dst_group = 1;
                factor = 6.0;
                duration = Sim_time.of_ms 100;
              };
        };
        {
          N.at = Sim_time.of_ms 60;
          action = N.Crash { pid = 1; drop = Engine.Lose_all_inflight };
        };
        { N.at = Sim_time.of_ms 180; action = N.Heal_all };
      ]
  in
  let d = R.deploy ~latency:Util.crisp_latency ~nemesis:plan topo in
  let id1 = R.cast_at d ~at:(Sim_time.of_ms 1) ~origin:0 ~dest:[ 0; 1 ] () in
  let id2 = R.cast_at d ~at:(Sim_time.of_ms 25) ~origin:4 ~dest:[ 0; 1 ] () in
  let r = R.run_deployment d in
  Util.check_no_violations "safety and post-heal liveness"
    (Harness.Checker.check_all ~check_quiescence:true
       ~liveness_from:(N.liveness_from plan) r);
  Alcotest.(check bool) "ran past the final heal" true
    (Sim_time.( >= ) r.end_time (N.liveness_from plan));
  (* p1 crashed; the five survivors deliver both messages. *)
  List.iter
    (fun id ->
      Alcotest.(check int)
        (Fmt.str "%a delivered by all survivors" Msg_id.pp id)
        5
        (List.length (Harness.Run_result.deliveries_of r id)))
    [ id1; id2 ]

(* --- Overlay-aware plans: partitions along cut edges. --- *)

(* Severing a hub spoke mid-run, with flexcast actually routing over the
   overlay: the casts in flight across the cut stall, safety holds
   unconditionally, and liveness is owed only after the final heal. *)
let test_hub_cut_partition_flexcast () =
  let module R = Harness.Runner.Make (Amcast.Flexcast) in
  let ov = Overlay.hub ~groups:3 in
  let topo = Topology.symmetric ~groups:3 ~per_group:2 in
  let config =
    { Amcast.Protocol.Config.default with Amcast.Protocol.Config.overlay = Some ov }
  in
  (* (0, 1) is a bridge of the hub: cutting it isolates spoke 1. *)
  let side_a, side_b = Overlay.side_of_cut ov ~cut:(0, 1) in
  Alcotest.(check (list int)) "cut isolates the spoke" [ 1 ] side_b;
  let plan =
    N.make
      [
        { N.at = Sim_time.of_ms 40; action = N.Partition { side_a; side_b } };
        { N.at = Sim_time.of_ms 400; action = N.Heal_all };
      ]
  in
  let d =
    R.deploy ~latency:(Overlay.to_latency ov) ~config ~nemesis:plan topo
  in
  (* One cast before the cut, one from inside the isolated spoke during
     the window, one from the far spoke routed through the hub. *)
  let id1 = R.cast_at d ~at:(Sim_time.of_ms 1) ~origin:2 ~dest:[ 0; 1 ] () in
  let id2 = R.cast_at d ~at:(Sim_time.of_ms 60) ~origin:2 ~dest:[ 1; 2 ] () in
  let id3 = R.cast_at d ~at:(Sim_time.of_ms 80) ~origin:4 ~dest:[ 1; 2 ] () in
  let r = R.run_deployment d in
  Util.check_no_violations "safety always, liveness after the heal"
    (Harness.Checker.check_all ~check_quiescence:true ~overlay:ov
       ~liveness_from:(N.liveness_from plan) r);
  Alcotest.(check bool) "ran past the final heal" true
    (Sim_time.( >= ) r.end_time (N.liveness_from plan));
  List.iter
    (fun (id, expect) ->
      Alcotest.(check int)
        (Fmt.str "%a delivered by every addressee" Msg_id.pp id)
        expect
        (List.length (Harness.Run_result.deliveries_of r id)))
    [ (id1, 4); (id2, 4); (id3, 4) ]

(* The generator sized to an overlay: every partition window must split
   the groups along one of the overlay's bridges — random group splits
   would cut a hub deployment in ways its links never fail. *)
let test_generate_follows_cut_edges () =
  let topo = Topology.symmetric ~groups:4 ~per_group:2 in
  let ov = Overlay.hub ~groups:4 in
  let sides_of_cuts =
    List.map (fun cut -> Overlay.side_of_cut ov ~cut) (Overlay.cut_edges ov)
  in
  for seed = 0 to 9 do
    let plan = N.generate ~rng:(Rng.create seed) ~topology:topo ~overlay:ov () in
    List.iter
      (fun s ->
        match s.N.action with
        | N.Partition { side_a; side_b } ->
          if not (List.mem (side_a, side_b) sides_of_cuts) then
            Alcotest.failf
              "seed %d: partition {%s | %s} is not a cut of the hub" seed
              (String.concat "," (List.map string_of_int side_a))
              (String.concat "," (List.map string_of_int side_b))
        | _ -> ())
      (N.steps plan)
  done;
  (* Bridgeless overlays keep the random splits but still validate. *)
  let ring_plan =
    N.generate ~rng:(Rng.create 3) ~topology:topo
      ~overlay:(Overlay.ring ~groups:4) ()
  in
  Alcotest.(check bool) "ring plan generated" false (N.is_empty ring_plan);
  (* A mismatched overlay is a configuration bug, not a plan. *)
  match
    N.generate ~rng:(Rng.create 0) ~topology:topo
      ~overlay:(Overlay.hub ~groups:5) ()
  with
  | _ -> Alcotest.fail "group-count mismatch accepted"
  | exception Invalid_argument _ -> ()

(* --- Campaigns under generated plans, every protocol. --- *)

let campaign_case (name, proto, broadcast_only, with_crashes) =
  Alcotest.test_case name `Quick (fun () ->
      let summary =
        Harness.Campaign.run proto ~broadcast_only ~with_crashes
          ~with_nemesis:true ~check_quiescence:true ~seed:1234 ~runs:8 ()
      in
      Alcotest.(check int)
        (Fmt.str "%s: all nemesis runs clean" name)
        summary.runs summary.clean;
      Alcotest.(check bool) "non-trivial" true (summary.delivered_total > 0))

(* Campaigns over an overlay: the nemesis plans partition along the hub's
   bridges, flexcast routes over it, and the parallel fan-out stays
   bit-identical to the sequential run. No crash injection: flexcast is
   Skeen-style, deliberately not fault-tolerant. *)
let test_overlay_campaign_parallel_identical () =
  let seq =
    Harness.Campaign.run
      (module Amcast.Flexcast)
      ~overlay_kind:Overlay.Hub ~with_crashes:false ~with_nemesis:true
      ~check_quiescence:true ~seed:77 ~runs:8 ()
  in
  let par =
    Harness.Campaign.run_parallel
      (module Amcast.Flexcast)
      ~overlay_kind:Overlay.Hub ~with_crashes:false ~with_nemesis:true
      ~check_quiescence:true ~domains:4 ~seed:77 ~runs:8 ()
  in
  Alcotest.(check int) "all overlay nemesis runs clean" seq.runs seq.clean;
  Alcotest.(check bool) "non-trivial" true (seq.delivered_total > 0);
  Alcotest.(check bool) "overlay summaries bit-identical" true (par = seq)

let test_campaign_parallel_identical () =
  let seq =
    Harness.Campaign.run
      (module Amcast.A1)
      ~with_nemesis:true ~seed:99 ~runs:10 ()
  in
  let par =
    Harness.Campaign.run_parallel
      (module Amcast.A1)
      ~with_nemesis:true ~domains:4 ~seed:99 ~runs:10 ()
  in
  Alcotest.(check bool) "nemesis summaries bit-identical" true (par = seq);
  Alcotest.(check bool) "non-trivial campaign" true (seq.total_steps > 0)

(* --- FD storms under the heartbeat detector. --- *)

(* A1 on heartbeat failure detection with an FD-storm plan: the storm
   shrinks every detector's timeouts mid-run, forcing false suspicions
   (and so spurious coordinator changes in consensus); the run must stay
   safe and still deliver everywhere. Heartbeat deployments never drain
   (the detector keeps probing), so the run is horizon-bounded and
   liveness is left to the delivery-count assertion. *)
let storm_case name (proto : (module Amcast.Protocol.S)) =
  Alcotest.test_case (name ^ " under fd storm") `Quick (fun () ->
      let module P = (val proto) in
      let module R = Harness.Runner.Make (P) in
      let topo = Topology.symmetric ~groups:2 ~per_group:3 in
      let config =
        {
          Amcast.Protocol.Config.default with
          fd_mode =
            Amcast.Protocol.Config.Heartbeat
              { period = Sim_time.of_ms 5; timeout = Sim_time.of_ms 30 };
          consensus_timeout = Sim_time.of_ms 80;
        }
      in
      let plan =
        N.make
          [
            { N.at = Sim_time.of_ms 10; action = N.Fd_storm { scale = 0.05 } };
            { N.at = Sim_time.of_ms 60; action = N.Fd_storm { scale = 0.05 } };
          ]
      in
      let d =
        R.deploy ~latency:Util.crisp_latency ~config ~nemesis:plan topo
      in
      let id =
        R.cast_at d ~at:(Sim_time.of_ms 1) ~origin:1
          ~dest:(Topology.all_groups topo) ()
      in
      let r = R.run_deployment ~until:(Sim_time.of_sec 3.) d in
      Util.check_no_violations "integrity under fd storm"
        (Harness.Checker.uniform_integrity r);
      Util.check_no_violations "prefix order under fd storm"
        (Harness.Checker.uniform_prefix_order r);
      Alcotest.(check int) "all six deliver despite the storm" 6
        (List.length (Harness.Run_result.deliveries_of r id)))

(* --- A2's misprediction -> restart path (Theorem 5.2). --- *)

(* Drive A2 to quiescence (the Stop_when_idle prediction: an empty round
   does not raise the barrier, so rounds stop), then prove the prediction
   wrong with a fresh broadcast — across a partition window for good
   measure. The restart costs exactly one extra inter-group delay: the
   late message is delivered at latency degree 2, not A2's proactive
   degree 1. *)
let test_a2_misprediction_restart () =
  let module R = Harness.Runner.Make (Amcast.A2) in
  let topo = Topology.symmetric ~groups:2 ~per_group:2 in
  let d = R.deploy ~latency:Util.crisp_latency topo in
  let all = Topology.all_groups topo in
  let id1 = R.cast_at d ~at:(Sim_time.of_ms 1) ~origin:0 ~dest:all () in
  let r1 = R.run_deployment d in
  Alcotest.(check bool) "first run drained" true r1.drained;
  Alcotest.(check int) "warm-up delivered everywhere" 4
    (List.length (Harness.Run_result.deliveries_of r1 id1));
  Alcotest.(check int) "cold start: degree 2" 2 (Util.degree_of r1 id1);
  (* Quiescent: every process predicted no more broadcasts — its barrier
     is behind the round it would execute next. *)
  List.iter
    (fun pid ->
      let node = R.node d pid in
      Alcotest.(check bool)
        (Fmt.str "p%d stopped executing rounds" pid)
        true
        (Amcast.A2.barrier node < Amcast.A2.round node))
    (Topology.all_pids topo);
  let rounds_before = Amcast.A2.rounds_executed (R.node d 0) in
  (* The late broadcast lands inside a partition window, so the restart
     also has to ride out a cut; apply a plan to the live deployment. *)
  let base = Sim_time.to_us r1.end_time in
  let at_us us = Sim_time.of_us (base + us) in
  let plan =
    N.make
      [
        {
          N.at = at_us 105_000;
          action = N.Partition { side_a = [ 0 ]; side_b = [ 1 ] };
        };
        { N.at = at_us 200_000; action = N.Heal_all };
      ]
  in
  N.apply plan (R.engine d);
  let id2 = R.cast_at d ~at:(at_us 100_000) ~origin:2 ~dest:all () in
  let r2 = R.run_deployment d in
  Util.check_no_violations "safety across restart"
    (Harness.Checker.check_all ~check_quiescence:true
       ~liveness_from:(N.liveness_from plan) r2);
  Alcotest.(check int) "late broadcast delivered everywhere" 4
    (List.length (Harness.Run_result.deliveries_of r2 id2));
  Alcotest.(check bool) "rounds restarted" true
    (Amcast.A2.rounds_executed (R.node d 0) > rounds_before);
  Alcotest.(check int) "misprediction costs exactly one extra hop: degree 2"
    2 (Util.degree_of r2 id2)

let suites =
  [
    ( "nemesis",
      [
        Alcotest.test_case "make rejects unhealed partitions" `Quick
          test_make_rejects_unhealed_partition;
        Alcotest.test_case "liveness_from is the last step end" `Quick
          test_liveness_from_is_last_step_end;
        Alcotest.test_case "generate is seed-deterministic" `Quick
          test_generate_deterministic;
        Alcotest.test_case "plan replay on a1" `Quick test_plan_replay_a1;
        Alcotest.test_case "hub cut-edge partition on flexcast" `Quick
          test_hub_cut_partition_flexcast;
        Alcotest.test_case "generated plans follow cut edges" `Quick
          test_generate_follows_cut_edges;
        Alcotest.test_case "parallel campaign bit-identical" `Slow
          test_campaign_parallel_identical;
        Alcotest.test_case "overlay campaign bit-identical" `Slow
          test_overlay_campaign_parallel_identical;
        storm_case "a1" (module Amcast.A1);
        storm_case "a2" (module Amcast.A2);
        Alcotest.test_case "a2 misprediction restart (Thm 5.2)" `Quick
          test_a2_misprediction_restart;
      ] );
    ("nemesis-campaign", List.map campaign_case all_protocols);
  ]

open Des
open Net
open Runtime

(* Harness for a consensus-only deployment: every process of one group runs
   a Paxos endpoint over string values. *)
type deployment = {
  engine : string Consensus.Paxos.msg Engine.t;
  endpoints : (string, string Consensus.Paxos.msg) Consensus.Paxos.t array;
  decisions : (Topology.pid * int * string) list ref; (* pid, instance, v *)
}

let deploy ?(seed = 0) ?(oracle_delay = Sim_time.of_ms 10)
    ?(timeout = Sim_time.of_ms 200) topology =
  let engine =
    Engine.create ~seed ~latency:Util.crisp_latency ~tag:Consensus.Paxos.tag
      topology
  in
  let decisions = ref [] in
  let n = Topology.n_processes topology in
  let endpoints = Array.make n None in
  List.iter
    (fun pid ->
      let ep =
        Engine.spawn engine pid (fun services ->
            let detector = Fd.Detector.oracle ~delay:oracle_delay services in
            let ep =
              Consensus.Paxos.create ~services ~wrap:Fun.id
                ~participants:
                  (Topology.members topology (Topology.group_of topology pid))
                ~detector ~timeout
                ~on_decide:(fun ~instance v ->
                  decisions := (pid, instance, v) :: !decisions)
                ()
            in
            ( ep,
              {
                Engine.on_receive =
                  (fun ~src m -> Consensus.Paxos.handle ep ~src m);
              } ))
      in
      endpoints.(pid) <- Some ep)
    (Topology.all_pids topology);
  {
    engine;
    endpoints = Array.map Option.get endpoints;
    decisions;
  }

let propose_at d ~at ~pid ~instance v =
  Engine.at d.engine at (fun () ->
      Consensus.Paxos.propose d.endpoints.(pid) ~instance v)

let decisions_of d ~instance =
  List.filter_map
    (fun (pid, i, v) -> if i = instance then Some (pid, v) else None)
    !(d.decisions)
  |> List.sort compare

let test_all_decide_same () =
  let topo = Topology.symmetric ~groups:1 ~per_group:3 in
  let d = deploy topo in
  List.iter
    (fun pid ->
      propose_at d ~at:(Sim_time.of_ms 1) ~pid ~instance:1
        (Fmt.str "v%d" pid))
    [ 0; 1; 2 ];
  Engine.run d.engine;
  match decisions_of d ~instance:1 with
  | [ (0, a); (1, b); (2, c) ] ->
    Alcotest.(check string) "agreement 0-1" a b;
    Alcotest.(check string) "agreement 1-2" b c;
    Alcotest.(check bool) "integrity" true (List.mem a [ "v0"; "v1"; "v2" ])
  | ds -> Alcotest.failf "expected 3 decisions, got %d" (List.length ds)

let test_single_proposer () =
  let topo = Topology.symmetric ~groups:1 ~per_group:5 in
  let d = deploy topo in
  propose_at d ~at:(Sim_time.of_ms 1) ~pid:3 ~instance:1 "only";
  Engine.run d.engine;
  let ds = decisions_of d ~instance:1 in
  Alcotest.(check int) "all five decide" 5 (List.length ds);
  List.iter (fun (_, v) -> Alcotest.(check string) "value" "only" v) ds

let test_multiple_instances () =
  let topo = Topology.symmetric ~groups:1 ~per_group:3 in
  let d = deploy topo in
  for i = 1 to 10 do
    List.iter
      (fun pid ->
        propose_at d ~at:(Sim_time.of_ms i) ~pid ~instance:i
          (Fmt.str "i%d-p%d" i pid))
      [ 0; 1; 2 ]
  done;
  Engine.run d.engine;
  for i = 1 to 10 do
    match decisions_of d ~instance:i with
    | (_, v0) :: rest ->
      List.iter (fun (_, v) -> Alcotest.(check string) "agree" v0 v) rest;
      Alcotest.(check int) "three deciders" 2 (List.length rest)
    | [] -> Alcotest.failf "instance %d undecided" i
  done

let test_coordinator_crash () =
  let topo = Topology.symmetric ~groups:1 ~per_group:3 in
  let d = deploy ~timeout:(Sim_time.of_ms 50) topo in
  (* p0 (the ballot-0 coordinator) crashes before anyone proposes; p1 must
     take over after detection. *)
  Engine.schedule_crash d.engine ~at:(Sim_time.of_ms 1) 0;
  propose_at d ~at:(Sim_time.of_ms 5) ~pid:1 ~instance:1 "survivor";
  propose_at d ~at:(Sim_time.of_ms 5) ~pid:2 ~instance:1 "other";
  Engine.run d.engine;
  let ds = decisions_of d ~instance:1 in
  Alcotest.(check int) "both survivors decide" 2 (List.length ds);
  List.iter
    (fun (_, v) ->
      Alcotest.(check bool) "decided a proposed value" true
        (List.mem v [ "survivor"; "other" ]))
    ds

let test_coordinator_crash_mid_instance () =
  let topo = Topology.symmetric ~groups:1 ~per_group:5 in
  let d = deploy ~timeout:(Sim_time.of_ms 50) topo in
  List.iter
    (fun pid ->
      propose_at d ~at:(Sim_time.of_ms 1) ~pid ~instance:1
        (Fmt.str "v%d" pid))
    [ 0; 1; 2; 3; 4 ];
  (* Crash the coordinator while its Accepts may be in flight, losing them. *)
  Engine.schedule_crash ~drop:Engine.Lose_all_inflight d.engine
    ~at:(Sim_time.of_us 1_500) 0;
  Engine.run d.engine;
  let ds = decisions_of d ~instance:1 in
  Alcotest.(check int) "four survivors decide" 4 (List.length ds);
  match ds with
  | (_, v0) :: rest ->
    List.iter (fun (_, v) -> Alcotest.(check string) "agree" v0 v) rest
  | [] -> Alcotest.fail "no decisions"

let test_uniformity_decider_crashes () =
  (* A process decides then crashes; survivors must reach the same
     decision (uniform agreement). *)
  let topo = Topology.symmetric ~groups:1 ~per_group:3 in
  let d = deploy ~timeout:(Sim_time.of_ms 50) topo in
  List.iter
    (fun pid ->
      propose_at d ~at:(Sim_time.of_ms 1) ~pid ~instance:1 (Fmt.str "v%d" pid))
    [ 0; 1; 2 ];
  (* Run until the first decision lands, then crash that decider. *)
  Engine.run ~until:(Sim_time.of_ms 4) d.engine;
  (match !(d.decisions) with
  | (pid, 1, _) :: _ ->
    Engine.schedule_crash ~drop:Engine.Lose_all_inflight d.engine
      ~at:(Sim_time.add (Engine.now d.engine) (Sim_time.of_us 1)) pid
  | _ -> () (* nobody decided yet: nothing to crash, the test still checks agreement *));
  Engine.run d.engine;
  let ds = decisions_of d ~instance:1 in
  match ds with
  | [] -> Alcotest.fail "nobody decided"
  | (_, v0) :: rest ->
    List.iter (fun (_, v) -> Alcotest.(check string) "agree" v0 v) rest

let test_halts () =
  let topo = Topology.symmetric ~groups:1 ~per_group:3 in
  let d = deploy topo in
  List.iter
    (fun pid ->
      propose_at d ~at:(Sim_time.of_ms 1) ~pid ~instance:1 "v")
    [ 0; 1; 2 ];
  (* Engine.run returning (without horizon) is quiescence: consensus must
     cancel its timers and stop sending. *)
  Engine.run d.engine;
  Alcotest.(check int) "event queue drained" 0
    (Scheduler.pending (Engine.scheduler d.engine))

let test_no_proposal_no_traffic () =
  let topo = Topology.symmetric ~groups:1 ~per_group:3 in
  let d = deploy topo in
  Engine.run d.engine;
  Alcotest.(check int) "silent without proposals" 0
    (Network.sent_total (Engine.network d.engine))

let suites =
  [
    ( "consensus",
      [
        Alcotest.test_case "all propose, all decide same" `Quick
          test_all_decide_same;
        Alcotest.test_case "single proposer" `Quick test_single_proposer;
        Alcotest.test_case "ten instances" `Quick test_multiple_instances;
        Alcotest.test_case "coordinator crash before" `Quick
          test_coordinator_crash;
        Alcotest.test_case "coordinator crash mid-instance" `Quick
          test_coordinator_crash_mid_instance;
        Alcotest.test_case "decider crashes (uniformity)" `Quick
          test_uniformity_decider_crashes;
        Alcotest.test_case "halts after decision" `Quick test_halts;
        Alcotest.test_case "no proposals, no messages" `Quick
          test_no_proposal_no_traffic;
      ] );
  ]

(* Consensus driven by the *message-based* heartbeat failure detector
   instead of the oracle: the ballot-0 coordinator crashes, its heartbeats
   stop, the survivors suspect it and rotate to a new coordinator —
   end-to-end, with no ground-truth access on the consensus path. *)
type hb_wire =
  | Hb of Fd.Heartbeat.msg
  | Px of string Consensus.Paxos.msg

let test_heartbeat_driven_consensus () =
  let topo = Topology.symmetric ~groups:1 ~per_group:3 in
  let engine =
    Engine.create ~latency:Util.crisp_latency
      ~tag:(function Hb _ -> "hb" | Px m -> Consensus.Paxos.tag m)
      topo
  in
  let decisions = ref [] in
  let parts = Topology.members topo 0 in
  let endpoints = Hashtbl.create 3 in
  let heartbeats = Hashtbl.create 3 in
  List.iter
    (fun pid ->
      ignore
        (Engine.spawn engine pid (fun services ->
             let hb =
               Fd.Heartbeat.create ~services
                 ~wrap:(fun m -> Hb m)
                 ~monitored:parts ~period:(Sim_time.of_ms 5)
                 ~timeout:(Sim_time.of_ms 25) ()
             in
             let ep =
               Consensus.Paxos.create ~services
                 ~wrap:(fun m -> Px m)
                 ~participants:parts
                 ~detector:(Fd.Heartbeat.detector hb)
                 ~timeout:(Sim_time.of_ms 60)
                 ~on_decide:(fun ~instance v ->
                   decisions := (pid, instance, v) :: !decisions)
                 ()
             in
             Hashtbl.replace endpoints pid ep;
             Hashtbl.replace heartbeats pid hb;
             ( (),
               {
                 Engine.on_receive =
                   (fun ~src w ->
                     match w with
                     | Hb m -> Fd.Heartbeat.handle hb ~src m
                     | Px m -> Consensus.Paxos.handle ep ~src m);
               } ))))
    parts;
  (* The ballot-0 coordinator dies before anyone proposes. *)
  Engine.schedule_crash ~drop:Engine.Lose_all_inflight engine
    ~at:(Sim_time.of_ms 1) 0;
  List.iter
    (fun pid ->
      Engine.at engine (Sim_time.of_ms 10) (fun () ->
          Consensus.Paxos.propose (Hashtbl.find endpoints pid) ~instance:1
            (Fmt.str "v%d" pid)))
    [ 1; 2 ];
  (* Heartbeats never stop, so run under a horizon. *)
  Engine.run ~until:(Sim_time.of_sec 2.) engine;
  let ds =
    List.filter_map
      (fun (pid, i, v) -> if i = 1 then Some (pid, v) else None)
      !decisions
    |> List.sort compare
  in
  (match ds with
  | [ (1, a); (2, b) ] ->
    Alcotest.(check string) "survivors agree" a b;
    Alcotest.(check bool) "proposed value" true (List.mem a [ "v1"; "v2" ])
  | _ -> Alcotest.failf "expected 2 decisions, got %d" (List.length ds));
  Hashtbl.iter (fun _ hb -> Fd.Heartbeat.stop hb) heartbeats

let suites =
  suites
  @ [
      ( "consensus-heartbeat",
        [
          Alcotest.test_case "heartbeat-driven rotation" `Quick
            test_heartbeat_driven_consensus;
        ] );
    ]

(* Property-based tests: randomised workloads, topologies, schedules and
   crash patterns against the Section 2.2 specifications, checked by the
   trace-level oracles of Harness.Checker. *)

open Des
open Net
open Runtime

type scenario = {
  groups : int;
  per_group : int;
  seed : int;
  wseed : int;
  n_msgs : int;
  kmax : int;
  jitter : bool;
  gap_ms : int;
}

let pp_scenario s =
  Fmt.str
    "{groups=%d; per_group=%d; seed=%d; wseed=%d; n=%d; kmax=%d; jitter=%b; \
     gap=%dms}"
    s.groups s.per_group s.seed s.wseed s.n_msgs s.kmax s.jitter s.gap_ms

let scenario_gen =
  let open QCheck2.Gen in
  let* groups = int_range 2 4 in
  let* per_group = int_range 1 3 in
  let* seed = int_bound 1_000_000 in
  let* wseed = int_bound 1_000_000 in
  let* n_msgs = int_range 1 10 in
  let* kmax = int_range 1 groups in
  let* jitter = bool in
  let+ gap_ms = int_range 5 40 in
  { groups; per_group; seed; wseed; n_msgs; kmax; jitter; gap_ms }

let topology_of s = Topology.symmetric ~groups:s.groups ~per_group:s.per_group

let latency_of s =
  if s.jitter then Latency.wan_default else Util.crisp_latency

let workload_of ?(broadcast = false) s topo =
  let rng = Rng.create s.wseed in
  Harness.Workload.generate ~rng ~topology:topo ~n:s.n_msgs
    ~dest:
      (if broadcast then Harness.Workload.To_all_groups
       else Harness.Workload.Random_groups s.kmax)
    ~arrival:(`Poisson (Sim_time.of_ms s.gap_ms))
    ()

let assert_clean s violations =
  match violations with
  | [] -> true
  | v ->
    QCheck2.Test.fail_reportf "scenario %s:@.%a" (pp_scenario s)
      Fmt.(list ~sep:(any "@.") string)
      v

(* Crash at most a minority of each group, so consensus stays live. *)
let crash_faults s topo =
  let rng = Rng.create (s.seed + 7919) in
  List.concat_map
    (fun g ->
      let members = Topology.members topo g in
      let d = List.length members in
      let crashable = (d - 1) / 2 in
      if crashable = 0 || Rng.bool rng then []
      else begin
        let victims = Rng.sample_without_replacement rng crashable members in
        List.map
          (fun pid ->
            let at = Sim_time.of_ms (1 + Rng.int rng 200) in
            let drop =
              match Rng.int rng 3 with
              | 0 -> Runtime.Engine.Keep_inflight
              | 1 -> Runtime.Engine.Lose_all_inflight
              | _ -> Runtime.Engine.Lose_each_with_probability 0.5
            in
            { Harness.Runner.at; pid; drop })
          victims
      end)
    (Topology.all_groups topo)

(* ----- A1 ----- *)

module RA1 = Harness.Runner.Make (Amcast.A1)

let prop_a1_failure_free s =
  let topo = topology_of s in
  let r =
    RA1.run ~seed:s.seed ~latency:(latency_of s) topo (workload_of s topo)
  in
  assert_clean s (Harness.Checker.check_all ~expect_genuine:true r)

let prop_a1_with_crashes s =
  let topo = topology_of s in
  let faults = crash_faults s topo in
  let r =
    RA1.run ~seed:s.seed ~latency:(latency_of s) ~faults topo
      (workload_of s topo)
  in
  (* Genuineness is not asserted under crashes: crashed casters muddy the
     accounting of who legitimately "participates". *)
  assert_clean s (Harness.Checker.check_all r)

let prop_a1_multigroup_degree_at_least_two s =
  let topo = topology_of s in
  let r =
    RA1.run ~seed:s.seed ~latency:(latency_of s) topo (workload_of s topo)
  in
  List.for_all
    (fun (c : Harness.Run_result.cast_event) ->
      Amcast.Msg.is_single_group c.msg
      ||
      match Harness.Metrics.latency_degree r c.msg.Amcast.Msg.id with
      | None -> true
      | Some d ->
        d >= 2
        || QCheck2.Test.fail_reportf
             "scenario %s: multi-group %a delivered at degree %d < 2"
             (pp_scenario s) Runtime.Msg_id.pp c.msg.Amcast.Msg.id d)
    r.casts

let prop_a1_deterministic s =
  let run () =
    let topo = topology_of s in
    let r =
      RA1.run ~seed:s.seed ~latency:(latency_of s) topo (workload_of s topo)
    in
    List.map
      (fun (d : Harness.Run_result.delivery_event) ->
        (d.pid, d.msg.Amcast.Msg.id, Sim_time.to_us d.at, d.lc))
      r.deliveries
  in
  run () = run ()

(* ----- A2 ----- *)

module RA2 = Harness.Runner.Make (Amcast.A2)

let prop_a2_failure_free s =
  let topo = topology_of s in
  let r =
    RA2.run ~seed:s.seed ~latency:(latency_of s) topo
      (workload_of ~broadcast:true s topo)
  in
  assert_clean s
    (Harness.Checker.check_all r @ Harness.Checker.quiescence r)

let prop_a2_with_crashes s =
  let topo = topology_of s in
  let faults = crash_faults s topo in
  let r =
    RA2.run ~seed:s.seed ~latency:(latency_of s) ~faults topo
      (workload_of ~broadcast:true s topo)
  in
  assert_clean s (Harness.Checker.check_all r)

let prop_a2_identical_sequences s =
  (* Broadcast: at the end of a drained failure-free run, every process
     has delivered the exact same sequence. *)
  let topo = topology_of s in
  let r =
    RA2.run ~seed:s.seed ~latency:(latency_of s) topo
      (workload_of ~broadcast:true s topo)
  in
  let seqs =
    List.map
      (fun p ->
        List.map
          (fun (m : Amcast.Msg.t) -> m.id)
          (Harness.Run_result.sequence_of r p))
      (Topology.all_pids topo)
  in
  match seqs with
  | [] -> true
  | s0 :: rest ->
    List.for_all (fun sq -> List.equal Runtime.Msg_id.equal s0 sq) rest

(* ----- Baselines (failure-free: the model Figure 1 analyses) ----- *)

module RSkeen = Harness.Runner.Make (Amcast.Skeen)
module RRing = Harness.Runner.Make (Amcast.Ring)
module RScal = Harness.Runner.Make (Amcast.Scalable)
module RVia = Harness.Runner.Make (Amcast.Via_broadcast)
module RSeq = Harness.Runner.Make (Amcast.Sequencer)
module RFrz = Harness.Runner.Make (Amcast.Fritzke)

let prop_skeen_failure_free s =
  let topo = topology_of s in
  let r =
    RSkeen.run ~seed:s.seed ~latency:(latency_of s) topo (workload_of s topo)
  in
  assert_clean s (Harness.Checker.check_all ~expect_genuine:true r)

let prop_ring_failure_free s =
  let topo = topology_of s in
  let r =
    RRing.run ~seed:s.seed ~latency:(latency_of s) topo (workload_of s topo)
  in
  assert_clean s (Harness.Checker.check_all ~expect_genuine:true r)

let prop_scalable_failure_free s =
  let topo = topology_of s in
  let r =
    RScal.run ~seed:s.seed ~latency:(latency_of s) topo (workload_of s topo)
  in
  assert_clean s (Harness.Checker.check_all ~expect_genuine:true r)

let prop_via_broadcast_failure_free s =
  let topo = topology_of s in
  let r =
    RVia.run ~seed:s.seed ~latency:(latency_of s) topo (workload_of s topo)
  in
  assert_clean s (Harness.Checker.check_all r)

let prop_sequencer_failure_free s =
  let topo = topology_of s in
  let r =
    RSeq.run ~seed:s.seed ~latency:(latency_of s) topo
      (workload_of ~broadcast:true s topo)
  in
  assert_clean s (Harness.Checker.check_all r)

let prop_fritzke_failure_free s =
  let topo = topology_of s in
  let r =
    RFrz.run ~seed:s.seed ~latency:(latency_of s) topo (workload_of s topo)
  in
  assert_clean s (Harness.Checker.check_all ~expect_genuine:true r)

(* ----- Data-structure properties ----- *)

let prop_event_queue_model ops =
  (* Random add/cancel/pop interleavings against a sorted-list model.
     Handles are issued densely (0, 1, 2, ...), so a raw integer in the
     cancel op exercises every case: a pending handle, a handle already
     popped or cancelled (must be a no-op — the "cancel-after-pop" case),
     an unknown handle, and a negative one. After every op the queue's
     [size] and [peek_time] must agree with the model. *)
  let q = Event_queue.create () in
  let model = ref [] in
  (* pending (time_us, handle), insertion order *)
  let issued = ref 0 in
  let by_time = List.stable_sort (fun (a, _) (b, _) -> Int.compare a b) in
  List.for_all
    (fun op ->
      let step_ok =
        match op with
        | `Add t ->
          let h = Event_queue.add q ~time:(Sim_time.of_us t) !issued in
          model := !model @ [ (t, h) ];
          let dense = h = !issued in
          incr issued;
          dense
        | `Cancel k ->
          Event_queue.cancel q k;
          model := List.filter (fun (_, h) -> h <> k) !model;
          true
        | `Pop -> (
          let expected =
            match by_time !model with
            | [] -> None
            | (t, h) :: _ ->
              model := List.filter (fun (_, h') -> h' <> h) !model;
              Some (t, h)
          in
          match (Event_queue.pop q, expected) with
          | None, None -> true
          | Some (t, v), Some (t', h) -> Sim_time.to_us t = t' && v = h
          | _ -> false)
      in
      let size_ok = Event_queue.size q = List.length !model in
      let peek_ok =
        Option.map Sim_time.to_us (Event_queue.peek_time q)
        = (match by_time !model with [] -> None | (t, _) :: _ -> Some t)
      in
      step_ok && size_ok && peek_ok)
    ops

let event_queue_op_gen ~add ~cancel ~pop =
  QCheck2.Gen.frequency
    [
      (add, QCheck2.Gen.map (fun t -> `Add t) (QCheck2.Gen.int_bound 1_000));
      ( cancel,
        QCheck2.Gen.map (fun k -> `Cancel k) (QCheck2.Gen.int_range (-2) 60)
      );
      (pop, QCheck2.Gen.pure `Pop);
    ]

let event_queue_ops_gen =
  QCheck2.Gen.(
    list_size (int_range 1 80) (event_queue_op_gen ~add:4 ~cancel:2 ~pop:3))

(* Mostly cancellations: the queue spends its life skipping dead entries. *)
let event_queue_heavy_cancel_gen =
  QCheck2.Gen.(
    list_size (int_range 40 200) (event_queue_op_gen ~add:3 ~cancel:6 ~pop:2))

let prop_rng_int_bounds (seed, bound) =
  let rng = Rng.create seed in
  let bound = 1 + bound in
  List.for_all
    (fun v -> v >= 0 && v < bound)
    (List.init 100 (fun _ -> Rng.int rng bound))

let prop_msg_dest_normal dest =
  match dest with
  | [] -> true (* rejected separately *)
  | _ ->
    let id = Runtime.Msg_id.make ~origin:0 ~seq:0 in
    let m = Amcast.Msg.make ~id ~dest "x" in
    let d = m.Amcast.Msg.dest in
    List.sort_uniq Int.compare dest = d


(* ----- Causal cross-validation of the latency-degree metric ----- *)

(* On a single-message run the two independent implementations of the
   metric (runtime Lamport clocks vs causal-path reconstruction from the
   trace) must agree exactly. *)
let prop_causal_equals_lamport_single s =
  let topo = topology_of s in
  let groups = Topology.n_groups topo in
  let k = max 2 (min s.kmax groups) in
  let module RA1 = Harness.Runner.Make (Amcast.A1) in
  let dep = RA1.deploy ~seed:s.seed ~latency:(latency_of s) topo in
  let id =
    RA1.cast_at dep ~at:(Sim_time.of_ms 1)
      ~origin:(s.wseed mod Topology.n_processes topo)
      ~dest:(List.init k Fun.id) ()
  in
  let r = RA1.run_deployment dep in
  let causal = Harness.Causal.of_trace r.trace in
  let lamport = Harness.Metrics.latency_degree r id in
  let path = Harness.Causal.latency_degree causal id in
  lamport = path
  || QCheck2.Test.fail_reportf "scenario %s: lamport=%a path=%a"
       (pp_scenario s)
       Fmt.(option int)
       lamport
       Fmt.(option int)
       path

(* In general the clock measurement can only exceed the causal-path one:
   concurrent traffic inflates clocks but cannot create causal paths. *)
let prop_causal_lower_bounds_lamport s =
  let topo = topology_of s in
  let r =
    RA1.run ~seed:s.seed ~latency:(latency_of s) topo (workload_of s topo)
  in
  let causal = Harness.Causal.of_trace r.trace in
  List.for_all
    (fun (c : Harness.Run_result.cast_event) ->
      let id = c.msg.Amcast.Msg.id in
      match
        ( Harness.Metrics.latency_degree r id,
          Harness.Causal.latency_degree causal id )
      with
      | Some lam, Some path ->
        path <= lam
        || QCheck2.Test.fail_reportf
             "scenario %s: %a has path degree %d > lamport degree %d"
             (pp_scenario s) Runtime.Msg_id.pp id path lam
      | None, None -> true
      | Some _, None | None, Some _ ->
        QCheck2.Test.fail_reportf
          "scenario %s: %a delivered per one metric only" (pp_scenario s)
          Runtime.Msg_id.pp id)
    r.casts

(* ----- Analytic cost model ----- *)

let prop_complexity_orderings (k, d, n) =
  Harness.Complexity.multicast_ordering_holds ~k:(k + 2) ~d:(d + 1)
  && Harness.Complexity.broadcast_ordering_holds ~n:(n + 3)

(* ----- Stats ----- *)

let prop_stats_sane xs =
  match xs with
  | [] -> true
  | _ ->
    let xs = List.map float_of_int xs in
    let mean = Option.get (Harness.Stats.mean xs) in
    let lo, hi = Option.get (Harness.Stats.min_max xs) in
    let p50 = Option.get (Harness.Stats.median xs) in
    mean >= lo && mean <= hi && p50 >= lo && p50 <= hi
    && List.mem p50 xs


(* The headline result as a property: across random topologies, a probe
   broadcast landing in a warm round is delivered at latency degree 1. *)
let prop_a2_warm_degree_one (seed, groups, d) =
  let groups = 2 + groups and d = 1 + d in
  let topo = Topology.symmetric ~groups ~per_group:d in
  let all = Topology.all_groups topo in
  let module R = Harness.Runner.Make (Amcast.A2) in
  let warm_delivery =
    let dep = R.deploy ~seed ~latency:Util.crisp_latency topo in
    let warm = R.cast_at dep ~at:(Sim_time.of_ms 1) ~origin:0 ~dest:all () in
    let r = R.run_deployment dep in
    List.find_map
      (fun (e : Harness.Run_result.delivery_event) ->
        if e.pid = 0 && Msg_id.equal e.msg.Amcast.Msg.id warm then Some e.at
        else None)
      r.deliveries
    |> Option.get
  in
  let dep = R.deploy ~seed ~latency:Util.crisp_latency topo in
  ignore (R.cast_at dep ~at:(Sim_time.of_ms 1) ~origin:0 ~dest:all ());
  let probe =
    R.cast_at dep
      ~at:(Sim_time.add warm_delivery (Sim_time.of_ms 2))
      ~origin:0 ~dest:all ()
  in
  let r = R.run_deployment dep in
  match Harness.Metrics.latency_degree r probe with
  | Some 1 -> true
  | other ->
    QCheck2.Test.fail_reportf
      "warm probe at groups=%d d=%d seed=%d measured %a" groups d seed
      Fmt.(option int)
      other

(* ----- Direct substrate properties: consensus and reliable multicast ----- *)

(* Consensus under random proposals and (majority-preserving) crashes:
   uniform integrity + agreement, and termination for correct processes
   whenever any correct process proposed. *)
let prop_consensus_agreement (seed, d, crash) =
  let d = 3 + d in
  let topo = Topology.symmetric ~groups:1 ~per_group:d in
  let engine =
    Engine.create ~seed ~latency:Util.crisp_latency ~tag:Consensus.Paxos.tag
      topo
  in
  let decisions = ref [] in
  let endpoints = Hashtbl.create d in
  List.iter
    (fun pid ->
      ignore
        (Engine.spawn engine pid (fun services ->
             let detector =
               Fd.Detector.oracle ~delay:(Sim_time.of_ms 10) services
             in
             let ep =
               Consensus.Paxos.create ~services ~wrap:Fun.id
                 ~participants:(Topology.members topo 0)
                 ~detector ~timeout:(Sim_time.of_ms 60)
                 ~on_decide:(fun ~instance v ->
                   decisions := (pid, instance, v) :: !decisions)
                 ()
             in
             Hashtbl.replace endpoints pid ep;
             ( (),
               {
                 Engine.on_receive =
                   (fun ~src m -> Consensus.Paxos.handle ep ~src m);
               } ))))
    (Topology.all_pids topo);
  let rng = Rng.create (seed + 13) in
  let crashed =
    if crash then begin
      let victim = Rng.int rng d in
      Engine.schedule_crash ~drop:Engine.Lose_all_inflight engine
        ~at:(Sim_time.of_us (500 + Rng.int rng 3_000))
        victim;
      [ victim ]
    end
    else []
  in
  let proposers =
    List.filter (fun p -> Rng.bool rng || p = 0) (Topology.all_pids topo)
  in
  List.iter
    (fun pid ->
      Engine.at engine
        (Sim_time.of_us (200 + Rng.int rng 2_000))
        (fun () ->
          Consensus.Paxos.propose (Hashtbl.find endpoints pid) ~instance:1
            (Fmt.str "v%d" pid)))
    proposers;
  Engine.run engine;
  let ds =
    List.filter_map
      (fun (pid, i, v) -> if i = 1 then Some (pid, v) else None)
      !decisions
  in
  let values = List.sort_uniq compare (List.map snd ds) in
  let correct_proposer_exists =
    List.exists (fun p -> not (List.mem p crashed)) proposers
  in
  let correct_deciders =
    List.filter (fun p -> not (List.mem p crashed)) (List.map fst ds)
    |> List.sort_uniq Int.compare
  in
  (* Agreement: at most one decided value; integrity: a proposed one. *)
  (match values with
  | [] -> ()
  | [ v ] ->
    if not (List.exists (fun p -> Fmt.str "v%d" p = v) proposers) then
      QCheck2.Test.fail_reportf "non-proposed value decided: %s" v
  | vs ->
    QCheck2.Test.fail_reportf "disagreement: %a"
      Fmt.(list ~sep:(any ",") string)
      vs);
  (* Termination: if some correct process proposed, all correct decide. *)
  if correct_proposer_exists then begin
    let correct =
      List.filter (fun p -> not (List.mem p crashed)) (Topology.all_pids topo)
    in
    if List.length correct_deciders <> List.length correct then
      QCheck2.Test.fail_reportf
        "termination: %d of %d correct processes decided"
        (List.length correct_deciders)
        (List.length correct)
  end;
  true

(* Reliable multicast: integrity/validity/agreement under a randomly
   crashing caster with random in-flight loss. *)
let prop_rmcast_spec (seed, d, lossy) =
  let open Rmcast in
  let topo = Topology.symmetric ~groups:2 ~per_group:(1 + d) in
  let engine =
    Engine.create ~seed ~latency:Util.crisp_latency
      ~tag:Reliable_multicast.tag topo
  in
  let delivered = ref [] in
  let endpoints = Hashtbl.create 8 in
  List.iter
    (fun pid ->
      ignore
        (Engine.spawn engine pid (fun services ->
             let ep =
               Reliable_multicast.create ~services ~wrap:Fun.id
                 ~oracle_delay:(Sim_time.of_ms 10)
                 ~on_deliver:(fun ~id:_ ~origin:_ ~dest:_ _ ->
                   delivered := pid :: !delivered)
                 ()
             in
             Hashtbl.replace endpoints pid ep;
             ( (),
               {
                 Engine.on_receive =
                   (fun ~src m -> Reliable_multicast.handle ep ~src m);
               } ))))
    (Topology.all_pids topo);
  let rng = Rng.create (seed + 3) in
  let dest =
    List.filter
      (fun p -> Rng.bool rng || p = 1)
      (Topology.all_pids topo)
  in
  Engine.at engine (Sim_time.of_ms 1) (fun () ->
      Reliable_multicast.rmcast (Hashtbl.find endpoints 0)
        ~id:(Msg_id.make ~origin:0 ~seq:0)
        ~dest "x");
  if lossy then
    Engine.schedule_crash
      ~drop:(Engine.Lose_each_with_probability 0.7) engine
      ~at:(Sim_time.of_us (1_050 + Rng.int rng 500))
      0;
  Engine.run engine;
  let deliverers = List.sort_uniq Int.compare !delivered in
  (* Integrity: only addressees, at most once each. *)
  if List.length deliverers <> List.length !delivered then
    QCheck2.Test.fail_reportf "duplicate R-Delivery";
  if List.exists (fun p -> not (List.mem p dest)) deliverers then
    QCheck2.Test.fail_reportf "non-addressee delivered";
  (* Agreement: if any correct process delivered, all correct addressees
     must have (the caster 0 may be faulty). *)
  let correct_deliverer = List.exists (fun p -> p <> 0) deliverers in
  let correct_addressees = List.filter (fun p -> p <> 0 || not lossy) dest in
  if correct_deliverer then
    List.for_all (fun p -> List.mem p deliverers) correct_addressees
    || QCheck2.Test.fail_reportf "agreement violated"
  else if not lossy then
    (* Validity: correct caster => every correct addressee delivers. *)
    List.for_all (fun p -> List.mem p deliverers) dest
    || QCheck2.Test.fail_reportf "validity violated"
  else true

(* A2 causal chains: phase-by-phase casts where each next message is cast
   after the previous one was delivered at its origin — causal delivery
   order must hold. *)
let prop_a2_causal_chain (seed, chain_len) =
  let topo = Topology.symmetric ~groups:2 ~per_group:2 in
  let module R = Harness.Runner.Make (Amcast.A2) in
  let d = R.deploy ~seed ~latency:Util.crisp_latency topo in
  let rng = Rng.create (seed + 5) in
  let rec phase i =
    if i < 1 + chain_len then begin
      let at =
        Sim_time.add
          (Runtime.Engine.now (R.engine d))
          (Sim_time.of_ms (1 + Rng.int rng 30))
      in
      ignore (R.cast_at d ~at ~origin:(Rng.int rng 4) ~dest:[ 0; 1 ] ());
      ignore (R.run_deployment d);
      phase (i + 1)
    end
  in
  phase 0;
  let r = R.run_deployment d in
  Harness.Checker.check_all r = []
  && Harness.Checker.causal_delivery_order r = []

(* ----- Modern baselines: differentials against their classic twins ----- *)

module RWb = Harness.Runner.Make (Amcast.Whitebox)
module RFx = Harness.Runner.Make (Amcast.Flexcast)

(* FlexCast without an overlay degenerates to plain Skeen: every group is
   adjacent, path timestamps stay zero, stamps flow directly. On crisp
   (deterministic) latencies the two must produce identical per-process
   delivery sequences — not merely equivalent orders, the same sequences. *)
let prop_flexcast_clique_equals_skeen s =
  let topo = topology_of s in
  let w = workload_of s topo in
  let seq_of r p =
    List.map
      (fun (m : Amcast.Msg.t) -> m.id)
      (Harness.Run_result.sequence_of r p)
  in
  let rs = RSkeen.run ~seed:s.seed ~latency:Util.crisp_latency topo w in
  let rf = RFx.run ~seed:s.seed ~latency:Util.crisp_latency topo w in
  ignore (assert_clean s (Harness.Checker.check_all ~expect_genuine:true rf));
  List.for_all
    (fun p ->
      List.equal Runtime.Msg_id.equal (seq_of rs p) (seq_of rf p)
      || QCheck2.Test.fail_reportf
           "scenario %s: p%d delivered [%a] under flexcast, [%a] under skeen"
           (pp_scenario s) p
           Fmt.(list ~sep:comma Runtime.Msg_id.pp)
           (seq_of rf p)
           Fmt.(list ~sep:comma Runtime.Msg_id.pp)
           (seq_of rs p))
    (Topology.all_pids topo)

(* Whitebox against A1 on the same seeded grid: the checker verdict is
   identical (clean, including genuineness) and every process delivers the
   same set of messages — the global orders may differ (convoy timestamps
   vs consensus rounds), but never the delivered sets. *)
let prop_whitebox_verdict_equals_a1 s =
  let topo = topology_of s in
  let w = workload_of s topo in
  let ra = RA1.run ~seed:s.seed ~latency:(latency_of s) topo w in
  let rw = RWb.run ~seed:s.seed ~latency:(latency_of s) topo w in
  let va = Harness.Checker.check_all ~expect_genuine:true ra in
  let vw = Harness.Checker.check_all ~expect_genuine:true rw in
  ignore (assert_clean s va);
  (va = vw
  ||
  QCheck2.Test.fail_reportf "scenario %s: whitebox verdict differs:@.%a"
    (pp_scenario s)
    Fmt.(list ~sep:(any "@.") string)
    vw)
  && List.for_all
       (fun p ->
         let ids r =
           List.sort Runtime.Msg_id.compare
             (List.map
                (fun (m : Amcast.Msg.t) -> m.Amcast.Msg.id)
                (Harness.Run_result.sequence_of r p))
         in
         List.equal Runtime.Msg_id.equal (ids ra) (ids rw)
         || QCheck2.Test.fail_reportf
              "scenario %s: p%d delivered different sets under whitebox"
              (pp_scenario s) p)
       (Topology.all_pids topo)

(* FlexCast genuineness over a hub, trace-level: when every cast stays
   inside the {hub, first-spoke} pair, the remaining spokes neither send a
   single protocol message nor deliver anything — they are not even
   relays, since no route to groups 0 or 1 passes through them. *)
let prop_flexcast_offpath_groups_silent (seed, groups, per_group, n_msgs) =
  let topo = Topology.symmetric ~groups ~per_group in
  let ov = Overlay.hub ~groups in
  let config =
    { Amcast.Protocol.Config.default with Amcast.Protocol.Config.overlay = Some ov }
  in
  let onpath =
    Topology.members topo 0 @ Topology.members topo 1
  in
  let w =
    Harness.Workload.generate ~rng:(Rng.create seed) ~topology:topo ~n:n_msgs
      ~dest:(Harness.Workload.Fixed_groups [ 0; 1 ])
      ~arrival:(`Poisson (Sim_time.of_ms 20))
      ~origins:onpath ()
  in
  let r =
    RFx.run ~seed ~latency:(Overlay.to_latency ov) ~config topo w
  in
  let offpath p = not (List.mem p onpath) in
  List.iter
    (fun entry ->
      match entry with
      | Runtime.Trace.Send { src; tag; _ } when offpath src ->
        QCheck2.Test.fail_reportf "off-path p%d sent a %s message" src tag
      | Runtime.Trace.Deliver { pid; _ } when offpath pid ->
        QCheck2.Test.fail_reportf "off-path p%d delivered" pid
      | _ -> ())
    (Runtime.Trace.entries r.trace);
  Harness.Checker.check_all ~expect_genuine:true ~overlay:ov r = []

let modern_scenario_gen =
  QCheck2.Gen.(
    quad (int_bound 1_000_000) (int_range 3 5) (int_range 1 3) (int_range 1 8))

let suites =
  [
    ( "properties",
      [
        Util.qcheck_case ~count:25 ~name:"a1: safety, failure-free"
          scenario_gen prop_a1_failure_free;
        Util.qcheck_case ~count:25 ~name:"a1: safety under crashes"
          scenario_gen prop_a1_with_crashes;
        Util.qcheck_case ~count:25 ~name:"a1: multi-group degree >= 2"
          scenario_gen prop_a1_multigroup_degree_at_least_two;
        Util.qcheck_case ~count:10 ~name:"a1: determinism" scenario_gen
          prop_a1_deterministic;
        Util.qcheck_case ~count:25 ~name:"a2: safety + quiescence"
          scenario_gen prop_a2_failure_free;
        Util.qcheck_case ~count:25 ~name:"a2: safety under crashes"
          scenario_gen prop_a2_with_crashes;
        Util.qcheck_case ~count:15 ~name:"a2: identical sequences"
          scenario_gen prop_a2_identical_sequences;
        Util.qcheck_case ~count:15 ~name:"skeen: safety, failure-free"
          scenario_gen prop_skeen_failure_free;
        Util.qcheck_case ~count:15 ~name:"ring: safety, failure-free"
          scenario_gen prop_ring_failure_free;
        Util.qcheck_case ~count:15 ~name:"scalable: safety, failure-free"
          scenario_gen prop_scalable_failure_free;
        Util.qcheck_case ~count:15 ~name:"via-broadcast: safety"
          scenario_gen prop_via_broadcast_failure_free;
        Util.qcheck_case ~count:15 ~name:"sequencer: safety, failure-free"
          scenario_gen prop_sequencer_failure_free;
        Util.qcheck_case ~count:15 ~name:"fritzke: safety, failure-free"
          scenario_gen prop_fritzke_failure_free;
        Util.qcheck_case ~count:100 ~name:"event queue matches model"
          event_queue_ops_gen prop_event_queue_model;
        Util.qcheck_case ~count:100
          ~name:"event queue matches model (heavy cancellation)"
          event_queue_heavy_cancel_gen prop_event_queue_model;
        Util.qcheck_case ~count:50 ~name:"rng bounds"
          QCheck2.Gen.(pair (int_bound 1_000_000) (int_bound 1_000))
          prop_rng_int_bounds;
        Util.qcheck_case ~count:100 ~name:"msg dest normalisation"
          QCheck2.Gen.(list_size (int_range 0 6) (int_bound 5))
          prop_msg_dest_normal;
        Util.qcheck_case ~count:20
          ~name:"causal path degree = lamport degree (single message)"
          scenario_gen prop_causal_equals_lamport_single;
        Util.qcheck_case ~count:20
          ~name:"causal path degree <= lamport degree" scenario_gen
          prop_causal_lower_bounds_lamport;
        Util.qcheck_case ~count:50 ~name:"complexity orderings"
          QCheck2.Gen.(triple (int_bound 4) (int_bound 3) (int_bound 20))
          prop_complexity_orderings;
        Util.qcheck_case ~count:100 ~name:"stats sanity"
          QCheck2.Gen.(list_size (int_range 0 30) (int_range (-50) 50))
          prop_stats_sane;
        Util.qcheck_case ~count:30 ~name:"consensus: agreement + termination"
          QCheck2.Gen.(triple (int_bound 100_000) (int_bound 2) bool)
          prop_consensus_agreement;
        Util.qcheck_case ~count:40 ~name:"rmcast: specification"
          QCheck2.Gen.(triple (int_bound 100_000) (int_bound 2) bool)
          prop_rmcast_spec;
        Util.qcheck_case ~count:10 ~name:"a2: causal chains"
          QCheck2.Gen.(pair (int_bound 100_000) (int_range 1 3))
          prop_a2_causal_chain;
        Util.qcheck_case ~count:15 ~name:"a2: warm rounds are degree 1"
          QCheck2.Gen.(triple (int_bound 100_000) (int_bound 2) (int_bound 2))
          prop_a2_warm_degree_one;
        Util.qcheck_case ~count:15
          ~name:"flexcast on a clique = skeen, sequence-identical"
          scenario_gen prop_flexcast_clique_equals_skeen;
        Util.qcheck_case ~count:15 ~name:"whitebox: verdicts identical to a1"
          scenario_gen prop_whitebox_verdict_equals_a1;
        Util.qcheck_case ~count:15
          ~name:"flexcast on a hub: off-path groups are silent"
          modern_scenario_gen prop_flexcast_offpath_groups_silent;
      ] );
  ]

(* Differential tests for the steady-state fast lanes: the fast message
   pattern (Protocol.Config.default) and the reference pattern
   (Protocol.Config.reference) must implement the same protocols — same
   decisions, same deliveries — while the fast mode retains less state.
   Complements bench/msgpath_bench.exe, which checks the Figure 1
   workloads cell by cell. *)

open Des
open Net
open Runtime

(* ------------------------------------------------------------------ *)
(* Consensus: a one-group Paxos deployment, parameterised by mode. *)

type cdep = {
  engine : string Consensus.Paxos.msg Engine.t;
  endpoints : (string, string Consensus.Paxos.msg) Consensus.Paxos.t array;
  decisions : (Topology.pid * int * string) list ref;
}

let consensus_deploy ~fast_lanes ~seed ~per_group =
  let topo = Topology.symmetric ~groups:1 ~per_group in
  let engine =
    Engine.create ~seed ~latency:Util.crisp_latency ~tag:Consensus.Paxos.tag
      topo
  in
  let decisions = ref [] in
  let endpoints = Array.make per_group None in
  List.iter
    (fun pid ->
      let ep =
        Engine.spawn engine pid (fun services ->
            let detector =
              Fd.Detector.oracle ~delay:(Sim_time.of_ms 10) services
            in
            let ep =
              Consensus.Paxos.create ~services ~wrap:Fun.id
                ~participants:(Topology.members topo 0)
                ~detector ~timeout:(Sim_time.of_ms 60) ~fast_lanes
                ~on_decide:(fun ~instance v ->
                  decisions := (pid, instance, v) :: !decisions)
                ()
            in
            ( ep,
              {
                Engine.on_receive =
                  (fun ~src m -> Consensus.Paxos.handle ep ~src m);
              } ))
      in
      endpoints.(pid) <- Some ep)
    (Topology.all_pids topo);
  { engine; endpoints = Array.map Option.get endpoints; decisions }

type cons_scenario = {
  c_seed : int;
  c_d : int;
  c_insts : int;
  c_crash : (Topology.pid * int) option; (* victim, crash time in us *)
}

let pp_cons_scenario s =
  Fmt.str "{seed=%d; d=%d; insts=%d; crash=%a}" s.c_seed s.c_d s.c_insts
    Fmt.(option (pair int int))
    s.c_crash

let cons_scenario_gen =
  let open QCheck2.Gen in
  let* c_seed = int_bound 100_000 in
  let* c_d = int_range 3 5 in
  let* c_insts = int_range 1 6 in
  let+ c_crash =
    let* crash = bool in
    if crash then
      let* victim = int_range 0 2 in
      let+ at = int_range 500 8_000 in
      Some (victim, at)
    else pure None
  in
  { c_seed; c_d; c_insts; c_crash }

(* One run: every process proposes in every instance; decisions grouped by
   instance. *)
let cons_run ~fast_lanes (s : cons_scenario) =
  let d = consensus_deploy ~fast_lanes ~seed:s.c_seed ~per_group:s.c_d in
  (match s.c_crash with
  | Some (victim, at) ->
    Engine.schedule_crash ~drop:Engine.Lose_all_inflight d.engine
      ~at:(Sim_time.of_us at) victim
  | None -> ());
  for i = 1 to s.c_insts do
    Array.iteri
      (fun pid ep ->
        Engine.at d.engine (Sim_time.of_ms i) (fun () ->
            Consensus.Paxos.propose ep ~instance:i (Fmt.str "i%d-p%d" i pid)))
      d.endpoints
  done;
  Engine.run d.engine;
  List.init s.c_insts (fun j ->
      let i = j + 1 in
      List.filter_map
        (fun (_, i', v) -> if i' = i then Some v else None)
        !(d.decisions)
      |> List.sort_uniq compare)

(* Both modes decide, agree within the run, and decide the same value per
   instance. *)
let prop_paxos_differential s =
  let fast = cons_run ~fast_lanes:true s in
  let reference = cons_run ~fast_lanes:false s in
  List.for_all2
    (fun f r ->
      match (f, r) with
      | [ vf ], [ vr ] ->
        vf = vr
        || QCheck2.Test.fail_reportf "%s: fast decided %s, reference %s"
             (pp_cons_scenario s) vf vr
      | [], _ | _, [] ->
        QCheck2.Test.fail_reportf "%s: an instance went undecided"
          (pp_cons_scenario s)
      | _ ->
        QCheck2.Test.fail_reportf "%s: disagreement within a run"
          (pp_cons_scenario s))
    fast reference

let test_lease_acquired () =
  (* After a decided instance the fast-mode ballot-0 coordinator holds the
     lease (phase 1 skipped from then on); the reference mode has no lease
     machinery. *)
  let run ~fast_lanes =
    let d = consensus_deploy ~fast_lanes ~seed:0 ~per_group:3 in
    for i = 1 to 3 do
      Engine.at d.engine (Sim_time.of_ms i) (fun () ->
          Consensus.Paxos.propose d.endpoints.(0) ~instance:i
            (Fmt.str "v%d" i))
    done;
    Engine.run d.engine;
    ( Consensus.Paxos.holds_lease d.endpoints.(0),
      Network.sent_total (Engine.network d.engine) )
  in
  let fast_lease, fast_msgs = run ~fast_lanes:true in
  let ref_lease, ref_msgs = run ~fast_lanes:false in
  Alcotest.(check bool) "fast coordinator holds lease" true fast_lease;
  Alcotest.(check bool) "reference has no lease" false ref_lease;
  Alcotest.(check bool)
    (Fmt.str "fast sends fewer messages (%d < %d)" fast_msgs ref_msgs)
    true (fast_msgs < ref_msgs)

let test_instance_gc () =
  (* Fast mode prunes decided instances below the watermark; the reference
     mode retains every decided instance. *)
  let run ~fast_lanes =
    let d = consensus_deploy ~fast_lanes ~seed:0 ~per_group:3 in
    for i = 1 to 10 do
      Array.iteri
        (fun pid ep ->
          Engine.at d.engine (Sim_time.of_ms i) (fun () ->
              Consensus.Paxos.propose ep ~instance:i
                (Fmt.str "i%d-p%d" i pid)))
        d.endpoints
    done;
    Engine.run d.engine;
    ( Consensus.Paxos.retained_instances d.endpoints.(0),
      Consensus.Paxos.pruned_upto d.endpoints.(0) )
  in
  let fast_retained, fast_pruned = run ~fast_lanes:true in
  let ref_retained, ref_pruned = run ~fast_lanes:false in
  Alcotest.(check int) "reference retains all 10" 10 ref_retained;
  Alcotest.(check int) "reference prunes nothing" 0 ref_pruned;
  Alcotest.(check bool)
    (Fmt.str "fast retains fewer (%d < 10)" fast_retained)
    true
    (fast_retained < 10);
  Alcotest.(check bool)
    (Fmt.str "fast pruned a prefix (%d > 0)" fast_pruned)
    true (fast_pruned > 0)

(* ------------------------------------------------------------------ *)
(* Reliable multicast: Ack_uniform with and without the Copy fast lane. *)

type rdep = {
  r_engine : string Rmcast.Reliable_multicast.msg Engine.t;
  r_endpoints :
    (string, string Rmcast.Reliable_multicast.msg)
    Rmcast.Reliable_multicast.t
    array;
  r_delivered : (Topology.pid * Msg_id.t) list ref;
}

let rmcast_deploy ~fast_lanes ~seed topology =
  let engine =
    Engine.create ~seed ~latency:Util.crisp_latency
      ~tag:Rmcast.Reliable_multicast.tag topology
  in
  let delivered = ref [] in
  let n = Topology.n_processes topology in
  let endpoints = Array.make n None in
  List.iter
    (fun pid ->
      let ep =
        Engine.spawn engine pid (fun services ->
            let ep =
              Rmcast.Reliable_multicast.create ~services ~wrap:Fun.id
                ~mode:Rmcast.Reliable_multicast.Ack_uniform
                ~oracle_delay:(Sim_time.of_ms 10) ~fast_lanes
                ~on_deliver:(fun ~id ~origin:_ ~dest:_ _ ->
                  delivered := (pid, id) :: !delivered)
                ()
            in
            ( ep,
              {
                Engine.on_receive =
                  (fun ~src m -> Rmcast.Reliable_multicast.handle ep ~src m);
              } ))
      in
      endpoints.(pid) <- Some ep)
    (Topology.all_pids topology);
  {
    r_engine = engine;
    r_endpoints = Array.map Option.get endpoints;
    r_delivered = delivered;
  }

let test_rmcast_gc () =
  (* Failure-free uniform multicast: the fast lane reclaims every entry
     down to a tombstone once relayed + delivered + fully vouched; the
     reference mode keeps the full entry. *)
  let run ~fast_lanes =
    let topo = Topology.symmetric ~groups:2 ~per_group:2 in
    let d = rmcast_deploy ~fast_lanes ~seed:0 topo in
    Engine.at d.r_engine (Sim_time.of_ms 1) (fun () ->
        Rmcast.Reliable_multicast.rmcast d.r_endpoints.(0)
          ~id:(Msg_id.make ~origin:0 ~seq:0)
          ~dest:[ 0; 1; 2; 3 ] "x");
    Engine.run d.r_engine;
    let deliverers = List.map fst !(d.r_delivered) |> List.sort compare in
    let retained =
      Array.fold_left
        (fun acc ep -> acc + Rmcast.Reliable_multicast.retained_entries ep)
        0 d.r_endpoints
    in
    let reclaimed =
      Array.fold_left
        (fun acc ep -> acc + Rmcast.Reliable_multicast.reclaimed_entries ep)
        0 d.r_endpoints
    in
    (deliverers, retained, reclaimed)
  in
  let fast_del, fast_ret, fast_rec = run ~fast_lanes:true in
  let ref_del, ref_ret, ref_rec = run ~fast_lanes:false in
  Alcotest.(check (list int)) "same deliverers" ref_del fast_del;
  Alcotest.(check (list int)) "all addressees" [ 0; 1; 2; 3 ] fast_del;
  Alcotest.(check int) "fast reclaims every entry" 0 fast_ret;
  Alcotest.(check int) "fast keeps 4 tombstones" 4 fast_rec;
  Alcotest.(check int) "reference retains every entry" 4 ref_ret;
  Alcotest.(check int) "reference reclaims nothing" 0 ref_rec

let prop_rmcast_uniform_differential (seed, d, lossy) =
  (* Ack_uniform under a crashing caster whose in-flight copies to a
     random (but mode-independent) subset of the addressees are lost:
     both modes deliver to exactly the same set of processes. The loss
     pattern must be deterministic — probabilistic in-flight loss draws
     RNG in slab order, which legitimately differs with the message
     pattern, making both outcomes legal but different lossy runs. *)
  let run ~fast_lanes =
    let topo = Topology.symmetric ~groups:2 ~per_group:(1 + d) in
    let dep = rmcast_deploy ~fast_lanes ~seed topo in
    let rng = Rng.create (seed + 3) in
    let dest =
      List.filter (fun p -> Rng.bool rng || p = 1) (Topology.all_pids topo)
    in
    let victims = List.filter (fun p -> p <> 0 && Rng.bool rng) dest in
    Engine.at dep.r_engine (Sim_time.of_ms 1) (fun () ->
        Rmcast.Reliable_multicast.rmcast dep.r_endpoints.(0)
          ~id:(Msg_id.make ~origin:0 ~seq:0)
          ~dest "x");
    if lossy then
      Engine.schedule_crash ~drop:(Engine.Lose_to victims) dep.r_engine
        ~at:(Sim_time.of_us (1_050 + Rng.int rng 500))
        0;
    Engine.run dep.r_engine;
    List.map fst !(dep.r_delivered) |> List.sort_uniq Int.compare
  in
  let fast = run ~fast_lanes:true in
  let reference = run ~fast_lanes:false in
  (* The faulty caster itself may or may not complete its own delivery
     depending on mode timing; correct processes must coincide. *)
  let correct = List.filter (fun p -> p <> 0) in
  correct fast = correct reference
  || QCheck2.Test.fail_reportf
       "seed=%d d=%d lossy=%b: fast delivered to %a, reference to %a" seed d
       lossy
       Fmt.(Dump.list int)
       fast
       Fmt.(Dump.list int)
       reference

(* ------------------------------------------------------------------ *)
(* Engine: the broadcast lane delivers the same receives at the same
   times as per-destination sends. *)

let test_send_multi_equivalence () =
  let run use_multi =
    let topo = Topology.symmetric ~groups:2 ~per_group:2 in
    let engine =
      Engine.create ~seed:0 ~latency:Util.crisp_latency
        ~tag:(fun _ -> "m")
        topo
    in
    let received = ref [] in
    let svcs = Array.make 4 None in
    List.iter
      (fun pid ->
        ignore
          (Engine.spawn engine pid (fun services ->
               svcs.(pid) <- Some services;
               ( (),
                 {
                   Engine.on_receive =
                     (fun ~src m ->
                       received :=
                         (pid, src, m, Sim_time.to_us (Engine.now engine))
                         :: !received);
                 } ))))
      (Topology.all_pids topo);
    Engine.at engine (Sim_time.of_ms 1) (fun () ->
        let s = Option.get svcs.(0) in
        if use_multi then Services.send_multi s [ 1; 2; 3 ] "x"
        else Services.send_all s [ 1; 2; 3 ] "x");
    Engine.run engine;
    List.sort compare !received
  in
  let multi = run true in
  let alls = run false in
  Alcotest.(check int) "three receives" 3 (List.length multi);
  Alcotest.(check bool) "identical receives and times" true (multi = alls)

(* ------------------------------------------------------------------ *)
(* End-to-end: small campaigns must produce the same correctness outcome
   in both modes for every protocol. Steps and retained-state counters
   legitimately differ (that is the point of the fast lanes), and since
   jittered latencies and probabilistic in-flight loss draw from the
   per-run RNG once per message, the draws diverge with the message
   pattern — so the identity comparison uses crisp, crash-free
   deterministic scenarios (crash schedules are exercised by the direct
   paxos/rmcast differentials above). *)

let campaign_differential ?broadcast_only ?expect_genuine name proto =
  Alcotest.test_case name `Slow (fun () ->
      let scenarios =
        Harness.Campaign.scenarios ?broadcast_only ~with_crashes:false
          ~seed:99 ~runs:6 ()
        |> List.map (fun s -> { s with Harness.Campaign.jitter = false })
      in
      let run config =
        Harness.Campaign.run_scenarios proto ~config ?expect_genuine
          scenarios
      in
      let fast = run Amcast.Protocol.Config.default in
      let reference = run Amcast.Protocol.Config.reference in
      List.iter2
        (fun (f : Harness.Campaign.outcome) (r : Harness.Campaign.outcome) ->
          Alcotest.(check (list string)) "violations" r.violations
            f.violations;
          Alcotest.(check int) "delivered" r.delivered f.delivered;
          (* max_degree is deliberately NOT compared: the latency-degree
             metric walks Lamport chains, and fast-lane ack coalescing
             merges sends into shared envelopes whose clock joins inflate
             chain lengths — a measurement artifact, not a correctness
             difference (crash-free crisp scenarios diverge on it at any
             seed whose draws include enough cross-group traffic). *)
          Alcotest.(check bool) "drained" r.drained f.drained)
        fast reference)

let suites =
  [
    ( "fast-lanes",
      [
        Util.qcheck_case ~count:40
          ~name:"paxos: fast and reference decide the same values"
          cons_scenario_gen prop_paxos_differential;
        Alcotest.test_case "paxos: coordinator lease" `Quick
          test_lease_acquired;
        Alcotest.test_case "paxos: decided-instance GC" `Quick
          test_instance_gc;
        Alcotest.test_case "rmcast: uniform entry GC" `Quick test_rmcast_gc;
        Util.qcheck_case ~count:40
          ~name:"rmcast: uniform delivery identical across modes"
          QCheck2.Gen.(triple (int_bound 10_000) (int_range 1 3) bool)
          prop_rmcast_uniform_differential;
        Alcotest.test_case "engine: send_multi = send_all" `Quick
          test_send_multi_equivalence;
      ] );
    ( "fast-lanes-campaign",
      [
        campaign_differential ~expect_genuine:true "a1"
          (module Amcast.A1 : Amcast.Protocol.S);
        campaign_differential ~broadcast_only:true "a2" (module Amcast.A2);
        campaign_differential "via-broadcast" (module Amcast.Via_broadcast);
        campaign_differential ~expect_genuine:true "fritzke"
          (module Amcast.Fritzke);
        campaign_differential ~expect_genuine:true "skeen"
          (module Amcast.Skeen);
        campaign_differential ~expect_genuine:true "ring"
          (module Amcast.Ring);
        campaign_differential ~expect_genuine:true "scalable"
          (module Amcast.Scalable);
        campaign_differential ~broadcast_only:true "sequencer"
          (module Amcast.Sequencer);
      ] );
  ]

(* The real backend: TCP transport units, WAL durability, the replicated
   KV service end to end on localhost, the DES-vs-real differential, and
   the prefix-aware consistency oracle. *)

open Net

let unique_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "amcast-kv-test-%d-%d" (Unix.getpid ()) !n)
    in
    if not (Sys.file_exists d) then Unix.mkdir d 0o755;
    d

(* polling helper shared by every real-backend test *)
let await ?(timeout = 10.0) cond =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec go () =
    if cond () then true
    else if Unix.gettimeofday () > deadline then cond ()
    else begin
      Thread.delay 0.002;
      go ()
    end
  in
  go ()

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* WAL: roundtrip, torn tail, recovery                                 *)
(* ------------------------------------------------------------------ *)

let test_wal_roundtrip () =
  let path = Filename.concat (unique_dir ()) "w.wal" in
  let w = Transport.Wal.create path in
  List.iter (Transport.Wal.append w) [ "alpha"; ""; "g\x00mma" ];
  Transport.Wal.close w;
  Alcotest.(check (list string))
    "replayed records" [ "alpha"; ""; "g\x00mma" ]
    (Transport.Wal.replay_file path);
  (* append after reopen continues the log *)
  let records, w = Transport.Wal.recover path in
  Alcotest.(check int) "recovered count" 3 (List.length records);
  Transport.Wal.append w "delta";
  Transport.Wal.close w;
  Alcotest.(check int) "after reopen" 4
    (List.length (Transport.Wal.replay_file path))

let test_wal_torn_tail () =
  let path = Filename.concat (unique_dir ()) "torn.wal" in
  let w = Transport.Wal.create path in
  Transport.Wal.append w "good";
  Transport.Wal.close w;
  (* simulate a crash mid-append: a length prefix promising more bytes
     than the file holds *)
  let oc = open_out_gen [ Open_append; Open_binary ] 0o644 path in
  output_string oc "\x00\x00\x00\xffpartial";
  close_out oc;
  Alcotest.(check (list string))
    "torn tail dropped" [ "good" ]
    (Transport.Wal.replay_file path);
  let records, w = Transport.Wal.recover path in
  Alcotest.(check (list string)) "recover agrees" [ "good" ] records;
  (* recovery rewrote the file: the torn bytes are gone for good *)
  Transport.Wal.append w "next";
  Transport.Wal.close w;
  Alcotest.(check (list string))
    "clean after recovery" [ "good"; "next" ]
    (Transport.Wal.replay_file path)

(* ------------------------------------------------------------------ *)
(* The consistency oracle (regression for the crashed-prefix fix)      *)
(* ------------------------------------------------------------------ *)

let check_logs_case ~alive logs =
  let topo = Topology.symmetric ~groups:1 ~per_group:(Array.length logs) in
  Rsm.check_logs ~topology:topo ~alive:(fun p -> List.mem p alive) ~logs

let test_check_logs_prefix () =
  (* A crashed replica holding a strict prefix is NOT a violation — the
     old equality check flagged exactly this. *)
  let logs = [| [ "a"; "b"; "c" ]; [ "a"; "b"; "c" ]; [ "a" ] |] in
  Alcotest.(check (list string))
    "crashed prefix accepted" []
    (check_logs_case ~alive:[ 0; 1 ] logs);
  (* ...but a CORRECT replica holding a strict prefix still is one. *)
  Alcotest.(check bool)
    "correct prefix rejected" true
    (check_logs_case ~alive:[ 0; 1; 2 ] logs <> [])

let test_check_logs_divergence_message () =
  (* Same length, different content: the message names the first
     diverging index and both commands. *)
  let logs = [| [ "a"; "b"; "c" ]; [ "a"; "x"; "c" ] |] in
  match check_logs_case ~alive:[ 0; 1 ] logs with
  | [ v ] ->
    Alcotest.(check bool)
      (Printf.sprintf "names index 1 (%s)" v)
      true
      (contains ~needle:"index 1" v
      && contains ~needle:"\"b\"" v
      && contains ~needle:"\"x\"" v)
  | vs ->
    Alcotest.failf "expected exactly one violation, got %d" (List.length vs)

let test_check_logs_crashed_divergence () =
  (* A crashed replica may stop short, but what it applied must be a
     prefix: divergence inside the prefix is a violation. *)
  let logs = [| [ "a"; "b"; "c" ]; [ "a"; "z" ] |] in
  Alcotest.(check bool)
    "crashed divergence rejected" true
    (check_logs_case ~alive:[ 0 ] logs <> [])

let test_des_crashed_replica_prefix () =
  (* End-to-end regression on the DES deployment: a replica crashes mid
     run, ends with a strict prefix, and check_consistency accepts it.
     Under the pre-fix equality check this scenario reported a violation. *)
  let module KV = Rsm.Make (Amcast.A1) in
  let topo = Topology.symmetric ~groups:1 ~per_group:3 in
  let spec : (int, int) Rsm.spec =
    {
      initial = (fun () -> 0);
      apply = ( + );
      encode = string_of_int;
      decode = int_of_string;
      placement = (fun _ -> [ 0 ]);
    }
  in
  let t = KV.deploy ~latency:Util.crisp_latency ~spec topo in
  Runtime.Engine.schedule_crash ~drop:Runtime.Engine.Lose_all_inflight
    (KV.engine t)
    ~at:(Des.Sim_time.of_ms 40)
    2;
  List.iteri
    (fun i d ->
      ignore (KV.submit t ~at:(Des.Sim_time.of_ms (1 + (30 * i))) ~origin:0 d))
    [ 1; 2; 3; 4 ];
  ignore (KV.run t);
  let lag = List.length (KV.log_of t 0) - List.length (KV.log_of t 2) in
  Alcotest.(check bool) "crashed replica actually lags" true (lag > 0);
  Util.check_no_violations "prefix-aware consistency"
    (KV.check_consistency t)

(* ------------------------------------------------------------------ *)
(* TCP transport units                                                 *)
(* ------------------------------------------------------------------ *)

let string_codec : string Transport.Tcp.codec =
  { encode = Fun.id; decode = Fun.id }

let test_tcp_send_and_clock () =
  (* Two singleton groups: an inter-group send must advance the
     receiver's modified Lamport clock by one, exactly like the DES. *)
  let topo = Topology.symmetric ~groups:2 ~per_group:1 in
  let addrs = Transport.Tcp.localhost_addrs ~base_port:7500 topo in
  let mk self =
    Transport.Tcp.create ~codec:string_codec ~topology:topo ~self ~addrs ()
  in
  let n0 = mk 0 and n1 = mk 1 in
  let got = ref [] in
  let mu = Mutex.create () in
  Transport.Tcp.set_receiver n1 (fun ~src w ->
      Mutex.lock mu;
      got := (src, w) :: !got;
      Mutex.unlock mu);
  Transport.Tcp.start n0;
  Transport.Tcp.start n1;
  let tr0 = Transport.Tcp.transport n0 in
  Transport.Tcp.post n0 (fun () ->
      tr0.Runtime.Transport.send ~dst:1 "hello";
      tr0.Runtime.Transport.send_multi [ 1 ] "again");
  let arrived () =
    Mutex.lock mu;
    let n = List.length !got in
    Mutex.unlock mu;
    n = 2
  in
  Alcotest.(check bool) "frames arrive" true (await arrived);
  Mutex.lock mu;
  let msgs = List.rev !got in
  Mutex.unlock mu;
  Alcotest.(check (list (pair int string)))
    "payloads and sources in order"
    [ (0, "hello"); (0, "again") ]
    msgs;
  Alcotest.(check int) "inter-group receive ticked the clock" 1
    (Transport.Tcp.lc n1);
  Alcotest.(check int) "sender clock unmoved" 0 (Transport.Tcp.lc n0);
  Alcotest.(check int) "inter-group counter" 2 (Transport.Tcp.sent_inter n0);
  Transport.Tcp.stop n0;
  Transport.Tcp.stop n1

let test_tcp_timers () =
  let topo = Topology.symmetric ~groups:1 ~per_group:1 in
  let addrs = Transport.Tcp.localhost_addrs ~base_port:7510 topo in
  let n0 =
    Transport.Tcp.create ~codec:string_codec ~topology:topo ~self:0 ~addrs ()
  in
  Transport.Tcp.start n0;
  let tr = Transport.Tcp.transport n0 in
  let fired = ref [] in
  Transport.Tcp.post n0 (fun () ->
      ignore
        (tr.Runtime.Transport.set_timer ~after:(Des.Sim_time.of_ms 30)
           (fun () -> fired := "late" :: !fired));
      ignore
        (tr.Runtime.Transport.set_timer ~after:(Des.Sim_time.of_ms 5)
           (fun () -> fired := "early" :: !fired));
      let cancelled =
        tr.Runtime.Transport.set_timer ~after:(Des.Sim_time.of_ms 10)
          (fun () -> fired := "cancelled" :: !fired)
      in
      tr.Runtime.Transport.cancel_timer cancelled);
  Alcotest.(check bool)
    "both fire" true
    (await (fun () -> List.length !fired = 2));
  Alcotest.(check (list string))
    "in delay order, cancelled one skipped" [ "early"; "late" ]
    (List.rev !fired);
  Transport.Tcp.stop n0

(* ------------------------------------------------------------------ *)
(* The replicated KV service, end to end over real sockets             *)
(* ------------------------------------------------------------------ *)

module Svc = Transport.Kv_service.Make (Amcast.A1)

let test_kv_service_end_to_end () =
  let topo = Topology.symmetric ~groups:2 ~per_group:2 in
  let t = Svc.create ~base_port:7520 ~dir:(unique_dir ()) topo in
  Fun.protect
    ~finally:(fun () -> Svc.stop t)
    (fun () ->
      (* keys on both shards *)
      let k0 = "apple" and k1 = "banana" in
      let g0 = Svc.group_of_key t k0 and g1 = Svc.group_of_key t k1 in
      Alcotest.(check bool) "keys land on different shards" true (g0 <> g1);
      let client_to key =
        Transport.Tcp.Client.connect (Svc.addr_of t (Svc.contact_for t key))
      in
      let c0 = client_to k0 and c1 = client_to k1 in
      Alcotest.(check (pair bool string))
        "SET" (true, "OK")
        (Transport.Tcp.Client.request c0 ("SET " ^ k0 ^ " 17"));
      Alcotest.(check (pair bool string))
        "GET sees the write" (true, "17")
        (Transport.Tcp.Client.request c0 ("GET " ^ k0));
      Alcotest.(check (pair bool string))
        "other shard independent" (false, "")
        (Transport.Tcp.Client.request c1 ("GET " ^ k1));
      Alcotest.(check (pair bool string))
        "SET other shard" (true, "OK")
        (Transport.Tcp.Client.request c1 ("SET " ^ k1 ^ " pear juice"));
      Alcotest.(check (pair bool string))
        "values may contain spaces" (true, "pear juice")
        (Transport.Tcp.Client.request c1 ("GET " ^ k1));
      Alcotest.(check (pair bool string))
        "DEL" (true, "OK")
        (Transport.Tcp.Client.request c0 ("DEL " ^ k0));
      Alcotest.(check (pair bool string))
        "GET after DEL misses" (false, "")
        (Transport.Tcp.Client.request c0 ("GET " ^ k0));
      let ok, reply = Transport.Tcp.Client.request c0 "nonsense" in
      Alcotest.(check bool) "parse errors rejected" false ok;
      Alcotest.(check string) "parse error text" "ERR parse" reply;
      (* a client talking to the wrong shard is redirected *)
      let wrong = Transport.Tcp.Client.request c1 ("GET " ^ k0) in
      (match wrong with
      | false, r ->
        Alcotest.(check bool)
          (Printf.sprintf "redirect reply (%s)" r)
          true
          (String.length r >= 8 && String.sub r 0 8 = "REDIRECT")
      | true, _ -> Alcotest.fail "wrong-shard request not redirected");
      Transport.Tcp.Client.close c0;
      Transport.Tcp.Client.close c1;
      (* both replicas of each shard converge; the checkers audit the run *)
      let counts_settled () =
        List.for_all
          (fun g ->
            match Topology.members topo g with
            | a :: rest ->
              List.for_all (fun b -> Svc.applied t b = Svc.applied t a) rest
            | [] -> true)
          (Topology.all_groups topo)
      in
      Alcotest.(check bool) "replicas settle" true (await counts_settled);
      Util.check_no_violations "replica consistency"
        (Svc.check_consistency t);
      let r = Svc.run_result t in
      Util.check_no_violations "protocol safety on the real run"
        (Harness.Checker.check_all r))

(* ------------------------------------------------------------------ *)
(* DES vs real: the deterministic-twin differential                    *)
(* ------------------------------------------------------------------ *)

module Des_kv = Rsm.Make (Amcast.A1)

let differential_commands =
  (* fixed little history touching both shards, with key reuse *)
  [
    Transport.Kv.Set ("apple", "1");
    Transport.Kv.Set ("banana", "2");
    Transport.Kv.Get "apple";
    Transport.Kv.Set ("apple", "3");
    Transport.Kv.Del "banana";
    Transport.Kv.Get "banana";
    Transport.Kv.Set ("cherry", "4");
    Transport.Kv.Get "cherry";
  ]

let test_des_vs_real_differential () =
  let topo = Topology.symmetric ~groups:2 ~per_group:2 in
  let groups = Topology.n_groups topo in
  let spec = Transport.Kv.spec ~groups in
  let origin_of cmd =
    (* deterministic choice both backends share: the first member of the
       command's (single) placement group *)
    List.hd (Topology.members topo (List.hd (spec.Rsm.placement cmd)))
  in
  (* DES side: one command at a time, spaced far enough apart that each
     is fully delivered before the next is cast — the same single-in-
     flight discipline the real side enforces by waiting. *)
  let des = Des_kv.deploy ~latency:Util.crisp_latency ~spec topo in
  List.iteri
    (fun i cmd ->
      ignore
        (Des_kv.submit des
           ~at:(Des.Sim_time.of_ms (1 + (500 * i)))
           ~origin:(origin_of cmd) cmd))
    differential_commands;
  let des_result = Des_kv.run des in
  Util.check_no_violations "DES protocol safety"
    (Harness.Checker.check_all des_result);
  Util.check_no_violations "DES replica consistency"
    (Des_kv.check_consistency des);
  (* real side: submit, wait until every addressee applied it, repeat *)
  let t = Svc.create ~base_port:7530 ~dir:(unique_dir ()) topo in
  Fun.protect
    ~finally:(fun () -> Svc.stop t)
    (fun () ->
      let expected = Array.make (Topology.n_processes topo) 0 in
      List.iter
        (fun cmd ->
          let g = List.hd (spec.Rsm.placement cmd) in
          let members = Topology.members topo g in
          List.iter (fun p -> expected.(p) <- expected.(p) + 1) members;
          ignore (Svc.submit t ~origin:(origin_of cmd) cmd);
          let applied () =
            List.for_all (fun p -> Svc.applied t p = expected.(p)) members
          in
          if not (await applied) then
            Alcotest.failf "command %s never fully delivered"
              (Transport.Kv.print cmd))
        differential_commands;
      (* identical per-replica command sequences... *)
      List.iter
        (fun pid ->
          Alcotest.(check (list string))
            (Printf.sprintf "p%d delivery sequence" pid)
            (List.map spec.Rsm.encode (Des_kv.log_of des pid))
            (List.map spec.Rsm.encode (Svc.log_of t pid)))
        (Topology.all_pids topo);
      (* ...and identical checker verdicts *)
      let real_result = Svc.run_result t in
      Alcotest.(check (list string))
        "checker verdicts agree"
        (Harness.Checker.check_all des_result)
        (Harness.Checker.check_all real_result);
      Util.check_no_violations "real replica consistency"
        (Svc.check_consistency t))

(* ------------------------------------------------------------------ *)
(* Crash, WAL recovery, learner catch-up                               *)
(* ------------------------------------------------------------------ *)

let test_kv_crash_recovery () =
  let topo = Topology.symmetric ~groups:2 ~per_group:3 in
  let groups = Topology.n_groups topo in
  let spec = Transport.Kv.spec ~groups in
  let t = Svc.create ~base_port:7540 ~dir:(unique_dir ()) topo in
  Fun.protect
    ~finally:(fun () -> Svc.stop t)
    (fun () ->
      (* pick two distinct group-0 keys and the LAST member of that group
         (not the coordinator) as the victim *)
      let keys_of_group g =
        let rec go i acc =
          if List.length acc = 2 then List.rev acc
          else
            let k = Printf.sprintf "key%d" i in
            go (i + 1)
              (if Transport.Kv.group_of_key ~groups k = g then k :: acc
               else acc)
        in
        go 0 []
      in
      let key, key2 =
        match keys_of_group 0 with
        | [ a; b ] -> (a, b)
        | _ -> assert false
      in
      let members = Topology.members topo 0 in
      let victim = List.nth members (List.length members - 1) in
      let submit cmd =
        let g = List.hd (spec.Rsm.placement cmd) in
        ignore (Svc.submit t ~origin:(List.hd (Topology.members topo g)) cmd)
      in
      (* phase 1: writes everyone sees *)
      submit (Transport.Kv.Set (key, "before"));
      let all_applied n () =
        List.for_all (fun p -> Svc.applied t p >= n) members
      in
      Alcotest.(check bool) "phase-1 settles" true (await (all_applied 1));
      (* crash the victim, keep writing: the 2/3 majority continues *)
      Svc.crash t victim;
      submit (Transport.Kv.Set (key, "during"));
      submit (Transport.Kv.Set (key2, "more"));
      let survivors = List.filter (fun p -> p <> victim) members in
      let survivors_applied n () =
        List.for_all (fun p -> Svc.applied t p >= n) survivors
      in
      Alcotest.(check bool)
        "majority keeps committing" true
        (await (survivors_applied 3));
      Alcotest.(check bool)
        "victim is behind" true
        (Svc.applied t victim < 3);
      (* consistency already holds: the victim's log is a prefix *)
      Util.check_no_violations "prefix consistency while down"
        (Svc.check_consistency t);
      (* restart: WAL replay + anti-entropy catch-up *)
      Svc.restart t victim;
      Alcotest.(check bool)
        "learner catches up" true
        (await (fun () -> Svc.synced t victim));
      Alcotest.(check (list string))
        "restarted replica converged"
        (List.map spec.Rsm.encode (Svc.log_of t (List.hd survivors)))
        (List.map spec.Rsm.encode (Svc.log_of t victim));
      (match Svc.state_of t victim |> fun s -> Transport.Kv.query s key with
      | Some v -> Alcotest.(check string) "state caught up" "during" v
      | None -> Alcotest.fail "restarted replica lost the key");
      Util.check_no_violations "consistency after restart"
        (Svc.check_consistency t))

(* ------------------------------------------------------------------ *)

let suites =
  [
    ( "transport",
      [
        Alcotest.test_case "wal roundtrip" `Quick test_wal_roundtrip;
        Alcotest.test_case "wal torn tail" `Quick test_wal_torn_tail;
        Alcotest.test_case "check_logs: crashed prefix" `Quick
          test_check_logs_prefix;
        Alcotest.test_case "check_logs: divergence message" `Quick
          test_check_logs_divergence_message;
        Alcotest.test_case "check_logs: crashed divergence" `Quick
          test_check_logs_crashed_divergence;
        Alcotest.test_case "DES crashed replica is a prefix" `Quick
          test_des_crashed_replica_prefix;
        Alcotest.test_case "tcp send + lamport clock" `Quick
          test_tcp_send_and_clock;
        Alcotest.test_case "tcp timers" `Quick test_tcp_timers;
        Alcotest.test_case "kv service end to end" `Quick
          test_kv_service_end_to_end;
        Alcotest.test_case "DES vs real differential" `Quick
          test_des_vs_real_differential;
        Alcotest.test_case "crash, WAL recovery, catch-up" `Quick
          test_kv_crash_recovery;
      ] );
  ]

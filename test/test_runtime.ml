open Des
open Net
open Runtime

(* A tiny echo protocol: pid 0 sends "ping" to everyone, everyone replies
   "pong" to the source. Exercises sends, receives, Lamport accounting. *)
type wire = Ping | Pong

let tag = function Ping -> "ping" | Pong -> "pong"

let make_echo_engine ?(latency = Util.crisp_latency) topology =
  let engine = Engine.create ~latency ~tag topology in
  let received = ref [] in
  List.iter
    (fun pid ->
      Engine.spawn engine pid (fun services ->
          ( (),
            {
              Engine.on_receive =
                (fun ~src w ->
                  received := (pid, src, w) :: !received;
                  match w with
                  | Ping -> services.Services.send ~dst:src Pong
                  | Pong -> ());
            } )))
    (Topology.all_pids topology);
  (engine, received)

let test_engine_echo () =
  let topo = Topology.symmetric ~groups:2 ~per_group:2 in
  let engine, received = make_echo_engine topo in
  let s0 = Engine.services engine 0 in
  Engine.at engine (Sim_time.of_ms 1) (fun () ->
      List.iter
        (fun dst -> s0.Services.send ~dst Ping)
        [ 1; 2; 3 ]);
  Engine.run engine;
  let pings = List.filter (fun (_, _, w) -> w = Ping) !received in
  let pongs = List.filter (fun (_, _, w) -> w = Pong) !received in
  Alcotest.(check int) "pings" 3 (List.length pings);
  Alcotest.(check int) "pongs" 3 (List.length pongs)

let test_lamport_rules () =
  let topo = Topology.symmetric ~groups:2 ~per_group:2 in
  let engine, _ = make_echo_engine topo in
  let s0 = Engine.services engine 0 in
  Engine.at engine (Sim_time.of_ms 1) (fun () ->
      s0.Services.send ~dst:1 Ping; (* intra: no tick *)
      s0.Services.send ~dst:2 Ping (* inter: tick *));
  Engine.run engine;
  (* End of run: p1 only ever saw intra-group traffic carrying 0. *)
  Alcotest.(check int) "intra receiver clock" 0 (Engine.lc engine 1);
  (* p2 received an inter-group ping carrying 0+1; its own reply did not
     advance its clock (sends never advance the sender). *)
  Alcotest.(check int) "inter receiver clock" 1 (Engine.lc engine 2);
  (* p0 received p2's inter-group pong carrying 1+1. *)
  Alcotest.(check int) "sender clock after replies" 2 (Engine.lc engine 0)

let test_crash_stops_process () =
  let topo = Topology.symmetric ~groups:1 ~per_group:2 in
  let engine, received = make_echo_engine topo in
  Engine.schedule_crash engine ~at:(Sim_time.of_ms 5) 1;
  let s0 = Engine.services engine 0 in
  (* Before the crash: p1 replies. After: silence. *)
  Engine.at engine (Sim_time.of_ms 1) (fun () -> s0.Services.send ~dst:1 Ping);
  Engine.at engine (Sim_time.of_ms 10) (fun () -> s0.Services.send ~dst:1 Ping);
  Engine.run engine;
  let by_p1 = List.filter (fun (pid, _, _) -> pid = 1) !received in
  Alcotest.(check int) "p1 received only the first ping" 1 (List.length by_p1);
  Alcotest.(check bool) "alive flag" false (Engine.alive engine 1)

let test_crash_lose_inflight () =
  let topo = Topology.symmetric ~groups:2 ~per_group:1 in
  let engine, received = make_echo_engine topo in
  let s0 = Engine.services engine 0 in
  (* p0 sends at 1ms (inter-group: arrives ~51ms), crashes at 2ms losing
     everything in flight. *)
  Engine.at engine (Sim_time.of_ms 1) (fun () -> s0.Services.send ~dst:1 Ping);
  Engine.schedule_crash ~drop:Engine.Lose_all_inflight engine
    ~at:(Sim_time.of_ms 2) 0;
  Engine.run engine;
  Alcotest.(check int) "nothing delivered" 0 (List.length !received)

let test_crash_lose_to_subset () =
  let topo = Topology.symmetric ~groups:3 ~per_group:1 in
  let engine, received = make_echo_engine topo in
  let s0 = Engine.services engine 0 in
  Engine.at engine (Sim_time.of_ms 1) (fun () ->
      s0.Services.send ~dst:1 Ping;
      s0.Services.send ~dst:2 Ping);
  Engine.schedule_crash ~drop:(Engine.Lose_to [ 1 ]) engine
    ~at:(Sim_time.of_ms 2) 0;
  Engine.run engine;
  let receivers = List.map (fun (pid, _, _) -> pid) !received in
  Alcotest.(check (list int)) "only p2 got the ping" [ 2 ] receivers

let test_timer_fires_and_cancels () =
  let topo = Topology.symmetric ~groups:1 ~per_group:1 in
  let engine, _ = make_echo_engine topo in
  let s0 = Engine.services engine 0 in
  let fired = ref [] in
  Engine.at engine Sim_time.zero (fun () ->
      ignore (s0.Services.set_timer ~after:(Sim_time.of_ms 1) (fun () ->
          fired := 1 :: !fired));
      let h = s0.Services.set_timer ~after:(Sim_time.of_ms 2) (fun () ->
          fired := 2 :: !fired) in
      s0.Services.cancel_timer h);
  Engine.run engine;
  Alcotest.(check (list int)) "only uncancelled timer fired" [ 1 ] !fired

let test_timer_inert_after_crash () =
  let topo = Topology.symmetric ~groups:1 ~per_group:1 in
  let engine, _ = make_echo_engine topo in
  let s0 = Engine.services engine 0 in
  let fired = ref false in
  Engine.at engine Sim_time.zero (fun () ->
      ignore
        (s0.Services.set_timer ~after:(Sim_time.of_ms 10) (fun () ->
             fired := true)));
  Engine.schedule_crash engine ~at:(Sim_time.of_ms 5) 0;
  Engine.run engine;
  Alcotest.(check bool) "timer skipped after crash" false !fired

let test_crash_detection_subscription () =
  let topo = Topology.symmetric ~groups:1 ~per_group:2 in
  let engine, _ = make_echo_engine topo in
  let s0 = Engine.services engine 0 in
  let detected = ref [] in
  s0.Services.on_crash_detected ~delay:(Sim_time.of_ms 7) (fun pid ->
      detected := (pid, Engine.now engine) :: !detected);
  Engine.schedule_crash engine ~at:(Sim_time.of_ms 3) 1;
  Engine.run engine;
  match !detected with
  | [ (1, t) ] ->
    Alcotest.(check int) "detected at crash + delay" 10_000 (Sim_time.to_us t)
  | _ -> Alcotest.fail "expected exactly one detection"

(* Regression: a crash notification must not reach a subscriber that has
   itself crashed by the time the notification fires — a dead failure
   detector reports nothing. *)
let test_crash_notification_skips_dead_subscriber () =
  let topo = Topology.symmetric ~groups:1 ~per_group:3 in
  let engine, _ = make_echo_engine topo in
  let s0 = Engine.services engine 0 in
  let detected = ref [] in
  s0.Services.on_crash_detected ~delay:(Sim_time.of_ms 7) (fun pid ->
      detected := pid :: !detected);
  (* p1's crash at 3ms would be notified at 10ms, but the subscriber p0
     is itself dead from 5ms on. *)
  Engine.schedule_crash engine ~at:(Sim_time.of_ms 3) 1;
  Engine.schedule_crash engine ~at:(Sim_time.of_ms 5) 0;
  Engine.run engine;
  Alcotest.(check (list int)) "no notification to the dead subscriber" []
    !detected

(* Regression: a message arriving at a pid that never spawned a node must
   be a no-op — no Lamport advance, no Receive trace entry. *)
let test_delivery_to_nodeless_pid () =
  let topo = Topology.symmetric ~groups:2 ~per_group:1 in
  let engine = Engine.create ~latency:Util.crisp_latency ~tag topo in
  ignore
    (Engine.spawn engine 0 (fun _ ->
         ((), { Engine.on_receive = (fun ~src:_ _ -> ()) })));
  let s0 = Engine.services engine 0 in
  Engine.at engine (Sim_time.of_ms 1) (fun () -> s0.Services.send ~dst:1 Ping);
  Engine.run engine;
  Alcotest.(check int) "node-less clock untouched" 0 (Engine.lc engine 1);
  let receives =
    List.filter
      (function Trace.Receive _ -> true | _ -> false)
      (Trace.entries (Engine.trace engine))
  in
  Alcotest.(check int) "no Receive recorded" 0 (List.length receives)

let test_trace_records_events () =
  let topo = Topology.symmetric ~groups:2 ~per_group:1 in
  let engine, _ = make_echo_engine topo in
  let s0 = Engine.services engine 0 in
  Engine.at engine (Sim_time.of_ms 1) (fun () ->
      s0.Services.record_cast (Msg_id.make ~origin:0 ~seq:0);
      s0.Services.send ~dst:1 Ping);
  Engine.run engine;
  let entries = Trace.entries (Engine.trace engine) in
  let has p = List.exists p entries in
  Alcotest.(check bool) "cast recorded" true
    (has (function Trace.Cast _ -> true | _ -> false));
  Alcotest.(check bool) "send recorded with tag" true
    (has (function
      | Trace.Send { tag = "ping"; inter_group = true; _ } -> true
      | _ -> false));
  Alcotest.(check bool) "receive recorded" true
    (has (function Trace.Receive _ -> true | _ -> false))

let test_engine_determinism () =
  let run_once () =
    let topo = Topology.symmetric ~groups:2 ~per_group:2 in
    let engine, received =
      let e = Engine.create ~seed:33 ~latency:Net.Latency.wan_default ~tag
          topo in
      let received = ref [] in
      List.iter
        (fun pid ->
          Engine.spawn e pid (fun services ->
              ( (),
                {
                  Engine.on_receive =
                    (fun ~src w ->
                      received := (pid, src, tag w) :: !received;
                      match w with
                      | Ping -> services.Services.send ~dst:src Pong
                      | Pong -> ());
                } )))
        (Topology.all_pids topo);
      (e, received)
    in
    let s0 = Engine.services engine 0 in
    Engine.at engine (Sim_time.of_ms 1) (fun () ->
        List.iter (fun dst -> s0.Services.send ~dst Ping) [ 1; 2; 3 ]);
    Engine.run engine;
    (List.rev !received, Sim_time.to_us (Engine.now engine))
  in
  let a = run_once () and b = run_once () in
  Alcotest.(check bool) "identical runs" true (a = b)

let test_msg_id_order () =
  let a = Msg_id.make ~origin:1 ~seq:5 in
  let b = Msg_id.make ~origin:1 ~seq:6 in
  let c = Msg_id.make ~origin:2 ~seq:0 in
  Alcotest.(check bool) "seq order" true (Msg_id.compare a b < 0);
  Alcotest.(check bool) "origin dominates" true (Msg_id.compare b c < 0);
  Alcotest.(check bool) "equal" true (Msg_id.equal a (Msg_id.make ~origin:1 ~seq:5))

let suites =
  [
    ( "runtime",
      [
        Alcotest.test_case "echo end-to-end" `Quick test_engine_echo;
        Alcotest.test_case "modified Lamport rules" `Quick test_lamport_rules;
        Alcotest.test_case "crash stops process" `Quick
          test_crash_stops_process;
        Alcotest.test_case "crash loses in-flight" `Quick
          test_crash_lose_inflight;
        Alcotest.test_case "crash loses to subset" `Quick
          test_crash_lose_to_subset;
        Alcotest.test_case "timers fire and cancel" `Quick
          test_timer_fires_and_cancels;
        Alcotest.test_case "timers inert after crash" `Quick
          test_timer_inert_after_crash;
        Alcotest.test_case "crash detection subscription" `Quick
          test_crash_detection_subscription;
        Alcotest.test_case "crash notification skips dead subscriber" `Quick
          test_crash_notification_skips_dead_subscriber;
        Alcotest.test_case "delivery to node-less pid is a no-op" `Quick
          test_delivery_to_nodeless_pid;
        Alcotest.test_case "trace records events" `Quick
          test_trace_records_events;
        Alcotest.test_case "determinism" `Quick test_engine_determinism;
        Alcotest.test_case "msg id order" `Quick test_msg_id_order;
      ] );
  ]

let () =
  Alcotest.run "amcast_wan"
    (Test_des.suites @ Test_net.suites @ Test_overlay.suites
   @ Test_runtime.suites
   @ Test_fd.suites @ Test_consensus.suites @ Test_rmcast.suites
   @ Test_a1.suites @ Test_a2.suites @ Test_baselines.suites
   @ Test_partitions.suites @ Test_rsm.suites @ Test_harness.suites
   @ Test_properties.suites @ Test_checkers.suites @ Test_parallel.suites
   @ Test_fastlanes.suites @ Test_generic.suites @ Test_nemesis.suites
   @ Test_soak.suites
   @ Test_mc.suites @ Test_throughput.suites @ Test_scale.suites
   @ Test_transport.suites)

(* Generic (conflict-aware) multicast: the conflict relation, the relaxed
   conflict-order checker (fast vs naive reference, on hand-built and
   randomised runs), the protocol's equivalences (total-conflict limit =
   skeen, 100%-conflict verdicts = total order), exhaustive model checking
   on the 2x2 acceptance config, and replication with per-key conflicts. *)

open Des
open Net
open Runtime

(* ----- the conflict relation ----- *)

let msg ?(dest = [ 0; 1 ]) ~origin ~seq payload =
  Amcast.Msg.make ~id:(Msg_id.make ~origin ~seq) ~dest payload

let test_payload_class () =
  let check what expect payload =
    Alcotest.(check (option string)) what expect
      (Amcast.Conflict.payload_class payload)
  in
  check "keyed payload" (Some "x") "k=x;m1";
  check "multi-char key" (Some "key12") "k=key12;m7";
  check "plain payload commutes" None "m1";
  check "empty key is not a key" None "k=;m1";
  check "unterminated key is not a key" None "k=x";
  check "empty payload" None "";
  check "semicolon only" None "k=;"

let test_conflicts_relation () =
  let open Amcast.Conflict in
  let ka = msg ~origin:0 ~seq:0 "k=a;1" in
  let ka' = msg ~origin:1 ~seq:0 "k=a;2" in
  let kb = msg ~origin:0 ~seq:1 "k=b;1" in
  let plain = msg ~origin:1 ~seq:1 "m3" in
  Alcotest.(check bool) "irreflexive" false (conflicts total ka ka);
  Alcotest.(check bool) "total: distinct conflict" true (conflicts total ka plain);
  Alcotest.(check bool) "same key conflicts" true (conflicts payload_key ka ka');
  Alcotest.(check bool) "different keys commute" false (conflicts payload_key ka kb);
  Alcotest.(check bool) "keyed vs plain commute" false (conflicts payload_key ka plain);
  Alcotest.(check bool) "never: nothing conflicts" false (conflicts never ka ka');
  Alcotest.(check bool) "plain is solo under payload_key" true (solo payload_key plain);
  Alcotest.(check bool) "keyed is not solo" false (solo payload_key ka);
  Alcotest.(check bool) "nothing is solo under total" false (solo total plain);
  Alcotest.(check bool) "everything is solo under never" true (solo never ka)

(* ----- relaxed checker on hand-built runs ----- *)

let sorted_violations vs = List.sort_uniq String.compare vs

let check_same_violations what expected_nonempty fast reference =
  let f = sorted_violations fast and n = sorted_violations reference in
  Alcotest.(check (list string)) (what ^ ": fast = reference") n f;
  Alcotest.(check bool)
    (what ^ if expected_nonempty then ": violations found" else ": clean")
    expected_nonempty (f <> [])

let mk_run ~topo ~casts ~deliveries () =
  Harness.Run_result.make ~topology:topo ~casts ~deliveries ~crashed:[]
    ~trace:(Trace.create ()) ~inter_group_msgs:0 ~intra_group_msgs:0
    ~end_time:(Sim_time.of_ms 10) ~drained:true ~events_executed:0 ()

(* Two processes (one per group), both addressees of both messages;
   [order0]/[order1] are each process's delivery sequence. *)
let two_pid_run m0 m1 ~order0 ~order1 =
  let topo = Topology.symmetric ~groups:2 ~per_group:1 in
  let mk_del pid msg at =
    { Harness.Run_result.pid; msg; at = Sim_time.of_ms at; lc = 1 }
  in
  let dels pid order = List.mapi (fun i m -> mk_del pid m (2 + i)) order in
  mk_run ~topo
    ~casts:
      [
        { msg = m0; origin = 0; at = Sim_time.of_ms 1; lc = 0 };
        { msg = m1; origin = 1; at = Sim_time.of_ms 1; lc = 0 };
      ]
    ~deliveries:(dels 0 order0 @ dels 1 order1)
    ()

let conflict_order_both r =
  let conflict = Amcast.Conflict.payload_key in
  ( Harness.Checker.conflict_order ~conflict r,
    Harness.Checker.Reference.conflict_order ~conflict r )

let test_conflicting_disagreement () =
  let m0 = msg ~origin:0 ~seq:0 "k=a;x" and m1 = msg ~origin:1 ~seq:0 "k=a;y" in
  let r = two_pid_run m0 m1 ~order0:[ m0; m1 ] ~order1:[ m1; m0 ] in
  let fast, reference = conflict_order_both r in
  check_same_violations "disagreement" true fast reference;
  (* On an all-conflicting run the relaxed checker flags exactly what the
     prefix checker flags (strings aside). *)
  Alcotest.(check bool) "prefix checker also flags" true
    (Harness.Checker.uniform_prefix_order r <> [])

let test_commuting_disagreement_allowed () =
  (* Same opposite orders, but the payloads commute: the relaxed checker
     accepts what the total-order prefix checker rejects. *)
  let m0 = msg ~origin:0 ~seq:0 "x" and m1 = msg ~origin:1 ~seq:0 "y" in
  let r = two_pid_run m0 m1 ~order0:[ m0; m1 ] ~order1:[ m1; m0 ] in
  let fast, reference = conflict_order_both r in
  check_same_violations "commuting pair" false fast reference;
  Alcotest.(check bool) "prefix checker rejects the same run" true
    (Harness.Checker.uniform_prefix_order r <> [])

let test_different_keys_allowed () =
  let m0 = msg ~origin:0 ~seq:0 "k=a;x" and m1 = msg ~origin:1 ~seq:0 "k=b;y" in
  let r = two_pid_run m0 m1 ~order0:[ m0; m1 ] ~order1:[ m1; m0 ] in
  let fast, reference = conflict_order_both r in
  check_same_violations "different keys" false fast reference

let test_conflicting_hole () =
  (* p0 delivered m0 before m1; p1 delivered m1 without m0. *)
  let m0 = msg ~origin:0 ~seq:0 "k=a;x" and m1 = msg ~origin:1 ~seq:0 "k=a;y" in
  let r = two_pid_run m0 m1 ~order0:[ m0; m1 ] ~order1:[ m1 ] in
  let fast, reference = conflict_order_both r in
  check_same_violations "hole" true fast reference

let test_conflicting_crossed () =
  (* p0 delivered only m0, p1 only m1: no witness of a consistent order. *)
  let m0 = msg ~origin:0 ~seq:0 "k=a;x" and m1 = msg ~origin:1 ~seq:0 "k=a;y" in
  let r = two_pid_run m0 m1 ~order0:[ m0 ] ~order1:[ m1 ] in
  let fast, reference = conflict_order_both r in
  check_same_violations "crossed" true fast reference

let test_commute_relation_scan () =
  (* A Commute relation (no class partition: the checker's pairwise path):
     messages conflict iff their payloads share a first character. *)
  let conflict =
    Amcast.Conflict.commute ~name:"first-char" (fun m1 m2 ->
        m1.Amcast.Msg.payload = "" || m2.Amcast.Msg.payload = ""
        || m1.Amcast.Msg.payload.[0] <> m2.Amcast.Msg.payload.[0])
  in
  let m0 = msg ~origin:0 ~seq:0 "ax" and m1 = msg ~origin:1 ~seq:0 "ay" in
  let r = two_pid_run m0 m1 ~order0:[ m0; m1 ] ~order1:[ m1; m0 ] in
  check_same_violations "commute relation" true
    (Harness.Checker.conflict_order ~conflict r)
    (Harness.Checker.Reference.conflict_order ~conflict r);
  let c0 = msg ~origin:0 ~seq:1 "ax" and c1 = msg ~origin:1 ~seq:1 "by" in
  let r' = two_pid_run c0 c1 ~order0:[ c0; c1 ] ~order1:[ c1; c0 ] in
  check_same_violations "commute relation (commuting pair)" false
    (Harness.Checker.conflict_order ~conflict r')
    (Harness.Checker.Reference.conflict_order ~conflict r')

(* ----- randomised differentials: fast checker vs naive reference ----- *)

type scenario = {
  groups : int;
  per_group : int;
  seed : int;
  wseed : int;
  n_msgs : int;
  rate : float;
  keys : int;
  mutate : int option;  (** Shuffle one process's delivery order. *)
}

let pp_scenario s =
  Fmt.str "{groups=%d; d=%d; seed=%d; wseed=%d; n=%d; rate=%.2f; keys=%d; \
           mutate=%a}"
    s.groups s.per_group s.seed s.wseed s.n_msgs s.rate s.keys
    Fmt.(option ~none:(any "-") int)
    s.mutate

let scenario_gen =
  let open QCheck2.Gen in
  let* groups = int_range 2 4 in
  let* per_group = int_range 1 3 in
  let* seed = int_bound 1_000_000 in
  let* wseed = int_bound 1_000_000 in
  let* n_msgs = int_range 1 12 in
  let* rate = float_bound_inclusive 1.0 in
  let* keys = int_range 1 4 in
  let+ mutate = option (int_bound 1_000_000) in
  { groups; per_group; seed; wseed; n_msgs; rate; keys; mutate }

module RG = Harness.Runner.Make (Amcast.Generic)
module RSk = Harness.Runner.Make (Amcast.Skeen)
module RA1 = Harness.Runner.Make (Amcast.A1)

let generic_key_config =
  {
    Amcast.Protocol.Config.default with
    conflict = Amcast.Conflict.payload_key;
  }

let workload_of s topo =
  Harness.Workload.generate ~rng:(Rng.create s.wseed) ~topology:topo
    ~n:s.n_msgs ~dest:(Harness.Workload.Random_groups s.groups)
    ~arrival:(`Poisson (Sim_time.of_ms 20))
    ~conflict:(Harness.Workload.conflict_spec ~keys:s.keys s.rate)
    ()

(* Shuffle one process's delivery sequence in place (the other slots of the
   global interleaving keep their owners), turning a correct run into one
   with seeded conflict-order violations — the differential must agree on
   those too. *)
let mutate_run seed (r : Harness.Run_result.t) =
  let rng = Rng.create seed in
  let pid = Rng.int rng (Topology.n_processes r.topology) in
  let dels = Array.of_list r.deliveries in
  let slots = ref [] in
  Array.iteri
    (fun i (d : Harness.Run_result.delivery_event) ->
      if d.pid = pid then slots := i :: !slots)
    dels;
  let slots = Array.of_list (List.rev !slots) in
  for i = Array.length slots - 1 downto 1 do
    let j = Rng.int rng (i + 1) in
    let a = slots.(i) and b = slots.(j) in
    let tmp = dels.(a) in
    dels.(a) <- dels.(b);
    dels.(b) <- tmp
  done;
  (* Re-own every event at its slot's original instant/pid so only the
     message order changed. *)
  let deliveries =
    List.mapi
      (fun i (orig : Harness.Run_result.delivery_event) ->
        { orig with msg = dels.(i).msg })
      r.deliveries
  in
  mk_run ~topo:r.topology ~casts:r.casts ~deliveries ()

let prop_conflict_differential s =
  let topo = Topology.symmetric ~groups:s.groups ~per_group:s.per_group in
  let r =
    RG.run ~seed:s.seed ~latency:Util.crisp_latency ~config:generic_key_config
      topo (workload_of s topo)
  in
  let r = match s.mutate with None -> r | Some seed -> mutate_run seed r in
  let conflict = Amcast.Conflict.payload_key in
  let fast = sorted_violations (Harness.Checker.conflict_order ~conflict r) in
  let reference =
    sorted_violations (Harness.Checker.Reference.conflict_order ~conflict r)
  in
  (fast = reference
  || QCheck2.Test.fail_reportf "fast/reference mismatch in %s:@.%a@.vs@.%a"
       (pp_scenario s)
       Fmt.(list ~sep:(any "@.") string)
       fast
       Fmt.(list ~sep:(any "@.") string)
       reference)
  && (s.mutate <> None
     || fast = []
     || QCheck2.Test.fail_reportf "unmutated generic run not clean in %s:@.%a"
          (pp_scenario s)
          Fmt.(list ~sep:(any "@.") string)
          fast)

let prop_generic_full_checks s =
  (* The full checker battery (relaxed ordering) on unmutated runs. *)
  let topo = Topology.symmetric ~groups:s.groups ~per_group:s.per_group in
  let r =
    RG.run ~seed:s.seed ~latency:Util.crisp_latency ~config:generic_key_config
      topo (workload_of s topo)
  in
  match
    Harness.Checker.check_all ~expect_genuine:true ~check_quiescence:true
      ~conflict:Amcast.Conflict.payload_key r
  with
  | [] -> true
  | v ->
    QCheck2.Test.fail_reportf "scenario %s:@.%a" (pp_scenario s)
      Fmt.(list ~sep:(any "@.") string)
      v

(* ----- protocol equivalences ----- *)

let seq_ids r pid =
  List.map (fun (m : Amcast.Msg.t) -> m.id) (Harness.Run_result.sequence_of r pid)

let check_same_sequences what topo r1 r2 =
  List.iter
    (fun pid ->
      Alcotest.(check (list string))
        (Fmt.str "%s: p%d sequence" what pid)
        (List.map (Fmt.to_to_string Msg_id.pp) (seq_ids r1 pid))
        (List.map (Fmt.to_to_string Msg_id.pp) (seq_ids r2 pid)))
    (Topology.all_pids topo)

let test_total_conflict_equals_skeen () =
  (* Under [Conflict.total] the generic protocol {e is} Skeen: same wire
     pattern, same delivery sequences, message for message. *)
  let topo = Topology.symmetric ~groups:3 ~per_group:2 in
  let workload =
    Harness.Workload.generate ~rng:(Rng.create 11) ~topology:topo ~n:20
      ~dest:(Harness.Workload.Random_groups 3)
      ~arrival:(`Poisson (Sim_time.of_ms 15))
      ()
  in
  let rg = RG.run ~seed:5 ~latency:Util.crisp_latency topo workload in
  let rs = RSk.run ~seed:5 ~latency:Util.crisp_latency topo workload in
  check_same_sequences "generic-total vs skeen" topo rg rs;
  Alcotest.(check int) "same inter-group message count"
    rs.Harness.Run_result.inter_group_msgs rg.Harness.Run_result.inter_group_msgs;
  Util.check_no_violations "generic-total clean"
    (Harness.Checker.check_all ~expect_genuine:true ~check_quiescence:true rg)

let test_never_conflict_bypasses_agreement () =
  (* Under [Conflict.never] every cast is solo: no stamp traffic at all,
     degree-0/1 deliveries, and the run is still causally complete. *)
  let topo = Topology.symmetric ~groups:3 ~per_group:2 in
  let workload =
    Harness.Workload.generate ~rng:(Rng.create 11) ~topology:topo ~n:20
      ~dest:(Harness.Workload.Random_groups 3)
      ~arrival:(`Poisson (Sim_time.of_ms 15))
      ()
  in
  let config =
    { Amcast.Protocol.Config.default with conflict = Amcast.Conflict.never }
  in
  let dep = RG.deploy ~seed:5 ~latency:Util.crisp_latency ~config topo in
  ignore (RG.schedule dep workload);
  let r = RG.run_deployment dep in
  Util.check_no_violations "never-conflict clean"
    (Harness.Checker.check_all ~expect_genuine:true ~check_quiescence:true
       ~conflict:Amcast.Conflict.never r);
  Alcotest.(check (option int)) "no stamp traffic" None
    (List.assoc_opt "generic.stamp" (Harness.Metrics.messages_by_tag r));
  let counters label =
    List.fold_left
      (fun acc pid ->
        acc
        + List.fold_left
            (fun a (l, n) -> if l = label then a + n else a)
            0
            (Amcast.Generic.stats (RG.node dep pid)))
      0 (Topology.all_pids topo)
  in
  Alcotest.(check bool) "deliveries bypassed ordering" true
    (counters "generic.bypassed" > 0);
  Alcotest.(check int) "nothing went through agreement" 0
    (counters "generic.ordered");
  (* Lamport degrees are entangled by unrelated traffic, so solo deliveries
     need not read exactly 0/1 — but skipping agreement must show in the
     mean against the total-order run of the same workload. *)
  let mean_degree run =
    let degs =
      List.filter_map snd (Harness.Metrics.latency_degrees run)
      |> List.map float_of_int
    in
    List.fold_left ( +. ) 0.0 degs /. float_of_int (List.length degs)
  in
  let rt = RG.run ~seed:5 ~latency:Util.crisp_latency topo workload in
  Alcotest.(check bool) "mean degree below the total-order run" true
    (mean_degree r < mean_degree rt);
  Alcotest.(check (option int)) "local deliveries at degree zero" (Some 0)
    (Harness.Metrics.min_latency_degree r)

let test_verdict_equivalence_at_full_conflict () =
  (* 100% conflict rate on one key: every pair conflicts. generic-key must
     deliver in the exact sequences of generic-total, the relaxed checker
     and the prefix checker must agree on the verdict, and a1 on the same
     workload stays clean — the bench's equivalence gate, as a unit test. *)
  let topo = Topology.symmetric ~groups:3 ~per_group:2 in
  let workload =
    Harness.Workload.generate ~rng:(Rng.create 23) ~topology:topo ~n:24
      ~dest:(Harness.Workload.Random_groups 3)
      ~arrival:(`Poisson (Sim_time.of_ms 15))
      ~conflict:(Harness.Workload.conflict_spec ~keys:1 1.0)
      ()
  in
  let rk =
    RG.run ~seed:7 ~latency:Util.crisp_latency ~config:generic_key_config topo
      workload
  in
  let rt = RG.run ~seed:7 ~latency:Util.crisp_latency topo workload in
  check_same_sequences "generic-key vs generic-total" topo rk rt;
  let relaxed =
    Harness.Checker.conflict_order ~conflict:Amcast.Conflict.payload_key rk
  in
  let prefix = Harness.Checker.uniform_prefix_order rk in
  Alcotest.(check (list string)) "relaxed = prefix verdict" prefix relaxed;
  Util.check_no_violations "generic-key clean"
    (Harness.Checker.check_all ~expect_genuine:true ~check_quiescence:true
       ~conflict:Amcast.Conflict.payload_key rk);
  let ra1 = RA1.run ~seed:7 ~latency:Util.crisp_latency topo workload in
  Util.check_no_violations "a1 on the same workload clean"
    (Harness.Checker.check_all ~expect_genuine:true ra1)

(* ----- model checking the 2x2 acceptance config ----- *)

module EG = Mc.Explorer.Make (Amcast.Generic)
module EA1 = Mc.Explorer.Make (Amcast.A1)

let mc_cast at origin dest payload =
  { Harness.Workload.at = Sim_time.of_us at; origin; dest; payload }

let explore_generic ~config ~check casts =
  let s =
    EG.make_setup ~reorder_bound:1 ~config
      ~topology:(Topology.make ~sizes:[ 2; 2 ])
      casts
  in
  EG.explore ~opts:{ EG.default_opts with EG.check } s

let test_mc_generic_2x2 () =
  (* Two conflicting casts on the acceptance config: exhaustive, clean
     under the relaxed checker, and every terminal outcome a total order —
     at most the two orders of {m0, m1}, covering whichever a1 realises on
     the same scenario (a1's consensus pins one order where timestamping
     is schedule-sensitive; outcome digests are protocol-independent:
     per-process id sequences). *)
  let conflicting =
    [ mc_cast 1_000 0 [ 0; 1 ] "k=a;m0"; mc_cast 2_000 2 [ 0; 1 ] "k=a;m1" ]
  in
  let check = Harness.Checker.check_all ~conflict:Amcast.Conflict.payload_key in
  let o = explore_generic ~config:generic_key_config ~check conflicting in
  Alcotest.(check bool) "exhaustive" true o.EG.stats.EG.exhaustive;
  Alcotest.(check bool) "clean" true (o.EG.violation = None);
  Alcotest.(check bool) "at most the two total orders" true
    (List.length o.EG.outcome_digests <= 2);
  let a1 =
    let s =
      EA1.make_setup ~reorder_bound:1
        ~topology:(Topology.make ~sizes:[ 2; 2 ])
        conflicting
    in
    EA1.explore s
  in
  Alcotest.(check bool) "a1 exhaustive" true a1.EA1.stats.EA1.exhaustive;
  Alcotest.(check bool) "covers a1's outcome set" true
    (List.for_all
       (fun d -> List.mem d o.EG.outcome_digests)
       a1.EA1.outcome_digests)

let test_mc_generic_2x2_commuting () =
  (* The same scenario with commuting payloads: the two origins each
     deliver their own cast first, so the (single, deterministic) outcome
     disagrees on delivery order between groups. The relaxed checker
     accepts every explored schedule; the total-order oracle rejects the
     very same state space — the relaxation, observed by the model
     checker. *)
  let commuting =
    [ mc_cast 1_000 0 [ 0; 1 ] "m0"; mc_cast 2_000 2 [ 0; 1 ] "m1" ]
  in
  let relaxed =
    Harness.Checker.check_all ~conflict:Amcast.Conflict.payload_key
  in
  let oc = explore_generic ~config:generic_key_config ~check:relaxed commuting in
  Alcotest.(check bool) "exhaustive" true oc.EG.stats.EG.exhaustive;
  Alcotest.(check bool) "clean under the relaxed checker" true
    (oc.EG.violation = None);
  let strict =
    explore_generic ~config:generic_key_config
      ~check:(fun r -> Harness.Checker.check_all r)
      commuting
  in
  Alcotest.(check bool) "rejected by the total-order oracle" true
    (strict.EG.violation <> None)

(* ----- replication with per-key conflicts ----- *)

type kv_cmd = Put of { shards : int list; key : string; value : int }

let kv_spec : ((string, int) Hashtbl.t, kv_cmd) Rsm.spec =
  {
    initial = (fun () -> Hashtbl.create 8);
    apply =
      (fun state (Put { key; value; _ }) ->
        Hashtbl.replace state key value;
        state);
    encode =
      (fun (Put { shards; key; value }) ->
        Fmt.str "put:%s:%s:%d"
          (String.concat "," (List.map string_of_int shards))
          key value);
    decode =
      (fun s ->
        match String.split_on_char ':' s with
        | [ "put"; shards; key; value ] ->
          Put
            {
              shards =
                List.map int_of_string (String.split_on_char ',' shards);
              key;
              value = int_of_string value;
            }
        | _ -> invalid_arg "decode");
    placement = (fun (Put { shards; _ }) -> shards);
  }

let kv_key (Put { key; _ }) = Some key

module Kv_gen = Rsm.Make (Amcast.Generic)

let sorted_state state =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) state []
  |> List.sort compare

let submit_random_kv t ~seed ~n =
  let rng = Rng.create seed in
  for i = 0 to n - 1 do
    let shard = Rng.int rng 3 in
    let shards =
      if Rng.bool rng then [ shard ]
      else List.sort_uniq Int.compare [ shard; Rng.int rng 3 ]
    in
    ignore
      (Kv_gen.submit t
         ~at:(Sim_time.of_ms (1 + (9 * i)))
         ~origin:(Rng.int rng 6)
         (Put
            { shards; key = Fmt.str "k%d" (Rng.int rng 3); value = Rng.int rng 100 }))
  done

let test_rsm_generic_keyed () =
  (* Same-key Puts don't commute (last write wins), different-key Puts do:
     exactly the keyed_conflict soundness contract. Replicas may interleave
     different keys differently, but states and per-key command logs must
     agree group-wide. *)
  let topo = Topology.symmetric ~groups:3 ~per_group:2 in
  let conflict = Rsm.keyed_conflict ~spec:kv_spec kv_key in
  let t =
    Kv_gen.deploy ~seed:3 ~latency:Util.crisp_latency
      ~config:{ Amcast.Protocol.Config.default with conflict }
      ~spec:kv_spec topo
  in
  submit_random_kv t ~seed:42 ~n:12;
  let r = Kv_gen.run t in
  Util.check_no_violations "protocol safety (relaxed order)"
    (Harness.Checker.check_all ~conflict r);
  List.iter
    (fun g ->
      match Topology.members topo g with
      | [] -> ()
      | first :: rest ->
        let ref_state = sorted_state (Kv_gen.state_of t first) in
        let per_key pid key =
          List.filter (fun (Put { key = k; _ }) -> k = key) (Kv_gen.log_of t pid)
        in
        List.iter
          (fun pid ->
            Alcotest.(check (list (pair string int)))
              (Fmt.str "g%d: p%d state = p%d state" g pid first)
              ref_state
              (sorted_state (Kv_gen.state_of t pid));
            List.iter
              (fun key ->
                Alcotest.(check (list string))
                  (Fmt.str "g%d: p%d %s-log = p%d's" g pid key first)
                  (List.map kv_spec.encode (per_key first key))
                  (List.map kv_spec.encode (per_key pid key)))
              [ "k0"; "k1"; "k2" ])
          rest)
    (Topology.all_groups topo)

let test_rsm_generic_total_consistency () =
  (* Under [Conflict.total] the generic deployment owes full log equality:
     [check_consistency] — unchanged, and deliberately stronger than the
     keyed deployment's guarantee — must pass as-is. *)
  let topo = Topology.symmetric ~groups:3 ~per_group:2 in
  let t = Kv_gen.deploy ~seed:3 ~latency:Util.crisp_latency ~spec:kv_spec topo in
  submit_random_kv t ~seed:42 ~n:12;
  let r = Kv_gen.run t in
  Util.check_no_violations "protocol safety" (Harness.Checker.check_all r);
  Util.check_no_violations "replica consistency" (Kv_gen.check_consistency t)

let suites =
  [
    ( "generic.conflict",
      [
        Alcotest.test_case "payload_class parsing" `Quick test_payload_class;
        Alcotest.test_case "conflicts/solo relation" `Quick
          test_conflicts_relation;
      ] );
    ( "generic.checker",
      [
        Alcotest.test_case "conflicting pair, opposite orders" `Quick
          test_conflicting_disagreement;
        Alcotest.test_case "commuting pair, opposite orders allowed" `Quick
          test_commuting_disagreement_allowed;
        Alcotest.test_case "different keys, opposite orders allowed" `Quick
          test_different_keys_allowed;
        Alcotest.test_case "conflicting pair, hole" `Quick test_conflicting_hole;
        Alcotest.test_case "conflicting pair, crossed" `Quick
          test_conflicting_crossed;
        Alcotest.test_case "Commute relation (pairwise scan path)" `Quick
          test_commute_relation_scan;
        Util.qcheck_case ~count:60
          ~name:"conflict_order: fast = reference (incl. mutated runs)"
          scenario_gen prop_conflict_differential;
        Util.qcheck_case ~count:25 ~name:"generic-key runs pass all checks"
          scenario_gen prop_generic_full_checks;
      ] );
    ( "generic.protocol",
      [
        Alcotest.test_case "total conflict = skeen, message for message"
          `Quick test_total_conflict_equals_skeen;
        Alcotest.test_case "never conflict: zero agreement traffic" `Quick
          test_never_conflict_bypasses_agreement;
        Alcotest.test_case "100% conflict: verdicts = total order" `Quick
          test_verdict_equivalence_at_full_conflict;
      ] );
    ( "generic.mc",
      [
        Alcotest.test_case "2x2 conflicting: exhaustive, a1's outcome set"
          `Quick test_mc_generic_2x2;
        Alcotest.test_case "2x2 commuting: relaxation visible, still clean"
          `Quick test_mc_generic_2x2_commuting;
      ] );
    ( "generic.rsm",
      [
        Alcotest.test_case "keyed conflicts: states and per-key logs agree"
          `Quick test_rsm_generic_keyed;
        Alcotest.test_case "total conflict: check_consistency unchanged"
          `Quick test_rsm_generic_total_consistency;
      ] );
  ]

(* Scale-substrate tests: the slab containers against Hashtbl models
   under random operation schedules, sharded-campaign summary identity
   across domain counts, the ring finalized-head livelock regression,
   and the A1 steady-state allocation budget the slab refactor exists
   to protect. *)

open Net

(* ------------------------------------------------------------------ *)
(* Slab.Row vs an (int, int) Hashtbl model. Row.set overwrites like
   Hashtbl.replace; presence, count-of-distinct-keys and lookups must
   agree after every operation, and a released row must come back from
   the pool fully cleared. *)

let row_width = 16

let row_ops_gen =
  QCheck2.Gen.(list (pair (int_bound (row_width - 1)) (int_bound 1000)))

let prop_row_matches_hashtbl ops =
  let pool = Amcast.Slab.Row.pool ~width:row_width ~default:(-1) in
  let row = Amcast.Slab.Row.acquire pool in
  let model = Hashtbl.create 16 in
  List.iter
    (fun (i, v) ->
      Amcast.Slab.Row.set row i v;
      Hashtbl.replace model i v;
      if Amcast.Slab.Row.count row <> Hashtbl.length model then
        QCheck2.Test.fail_reportf "count %d <> model %d"
          (Amcast.Slab.Row.count row) (Hashtbl.length model);
      for j = 0 to row_width - 1 do
        let m = Hashtbl.find_opt model j in
        if Amcast.Slab.Row.mem row j <> (m <> None) then
          QCheck2.Test.fail_reportf "mem %d disagrees" j;
        if Amcast.Slab.Row.find row j <> m then
          QCheck2.Test.fail_reportf "find %d disagrees" j;
        if
          Amcast.Slab.Row.get row ~default:(-7) j
          <> Option.value ~default:(-7) m
        then QCheck2.Test.fail_reportf "get %d disagrees" j
      done)
    ops;
  Amcast.Slab.Row.release pool row;
  (* The pool hands the same row back; it must look freshly created. *)
  let row' = Amcast.Slab.Row.acquire pool in
  if Amcast.Slab.Row.count row' <> 0 then
    QCheck2.Test.fail_reportf "released row not cleared (count)";
  for j = 0 to row_width - 1 do
    if Amcast.Slab.Row.mem row' j then
      QCheck2.Test.fail_reportf "released row not cleared (slot %d)" j
  done;
  true

(* ------------------------------------------------------------------ *)
(* Slab.Window vs an (int, int) Hashtbl model, under arbitrary
   non-negative keys — harsher than the protocols' monotone instance
   numbers, because far-apart keys force slot collisions and therefore
   ring growth. *)

type wop = Wset of int * int | Wtake of int | Wdrop of int

let window_ops_gen =
  QCheck2.Gen.(
    list
      (oneof
         [
           map2 (fun k v -> Wset (k, v)) (int_bound 500) (int_bound 1000);
           map (fun k -> Wtake k) (int_bound 500);
           map (fun k -> Wdrop k) (int_bound 500);
         ]))

let prop_window_matches_hashtbl ops =
  let w = Amcast.Slab.Window.create () in
  let model = Hashtbl.create 16 in
  List.iter
    (fun op ->
      (match op with
      | Wset (k, v) ->
        Amcast.Slab.Window.set w k v;
        Hashtbl.replace model k v
      | Wtake k ->
        let got = Amcast.Slab.Window.take w k in
        let want = Hashtbl.find_opt model k in
        Hashtbl.remove model k;
        if got <> want then QCheck2.Test.fail_reportf "take %d disagrees" k
      | Wdrop k ->
        Amcast.Slab.Window.drop w k;
        Hashtbl.remove model k);
      if Amcast.Slab.Window.live w <> Hashtbl.length model then
        QCheck2.Test.fail_reportf "live %d <> model %d"
          (Amcast.Slab.Window.live w) (Hashtbl.length model);
      Hashtbl.iter
        (fun k v ->
          if Amcast.Slab.Window.find w k <> Some v then
            QCheck2.Test.fail_reportf "find %d disagrees" k)
        model)
    ops;
  true

(* ------------------------------------------------------------------ *)
(* Rng.substream: a pure function of (seed, i); distinct indices give
   distinct streams and repeated derivation replays the same stream. *)

let test_substream () =
  let a = Des.Rng.substream 123 5 and b = Des.Rng.substream 123 5 in
  for _ = 1 to 10 do
    Alcotest.(check int64) "replayed stream" (Des.Rng.int64 a)
      (Des.Rng.int64 b)
  done;
  let x = Des.Rng.int64 (Des.Rng.substream 123 0)
  and y = Des.Rng.int64 (Des.Rng.substream 123 1) in
  Alcotest.(check bool) "distinct indices diverge" true (x <> y);
  Alcotest.check_raises "negative index rejected"
    (Invalid_argument "Rng.substream: index must be >= 0") (fun () ->
      ignore (Des.Rng.substream 1 (-1)))

(* ------------------------------------------------------------------ *)
(* Sharded campaigns: the summary must be bit-identical to the
   sequential driver at every domain count, including domain counts
   that do not divide the run count. *)

let test_sharded_identity () =
  let seed = 11 and runs = 9 in
  let seq =
    Harness.Campaign.run
      (module Amcast.A1)
      ~expect_genuine:true ~seed ~runs ()
  in
  List.iter
    (fun domains ->
      let sh =
        Harness.Campaign.run_sharded
          (module Amcast.A1)
          ~expect_genuine:true ~domains ~seed ~runs ()
      in
      Alcotest.(check bool)
        (Printf.sprintf "sharded(%d) = sequential" domains)
        true (sh = seq))
    [ 1; 2; 3; 4 ]

let test_sharded_scenarios_agree () =
  (* The sharded driver derives scenario [i] in-worker; it must be the
     same scenario the central list contains. *)
  let ss = Harness.Campaign.scenarios ~seed:5 ~runs:20 () in
  List.iteri
    (fun i s ->
      Alcotest.(check bool)
        (Printf.sprintf "scenario_at %d" i)
        true
        (Harness.Campaign.scenario_at ~seed:5 i = s))
    ss

(* ------------------------------------------------------------------ *)
(* Ring livelock regression. A Final that overtakes a member's own
   Decide used to leave the finalized message at the head of the
   propose queue forever: while delivery was blocked behind a slower
   unfinalized message, every consensus instance re-proposed the
   finalized head without stamping anything — millions of instances for
   a ten-message run. The queue filter now skips entries with a final
   stamp; this scenario livelocked (45k+ instances on 10 messages)
   before the fix and drains in well under 500k steps after it. *)

let test_ring_livelock_regression () =
  let module R = Harness.Runner.Make (Amcast.Ring) in
  let seed = 606523686 in
  let topo = Topology.symmetric ~groups:3 ~per_group:2 in
  let rng = Des.Rng.create (seed + 1) in
  let workload =
    Harness.Workload.generate ~rng ~topology:topo ~n:10
      ~dest:(Harness.Workload.Random_groups 3)
      ~arrival:(`Poisson (Des.Sim_time.of_ms 25))
      ()
  in
  let dep = R.deploy ~seed ~latency:Latency.wan_default ~faults:[] topo in
  ignore (R.schedule dep workload);
  match R.run_deployment ~max_steps:500_000 dep with
  | exception Failure _ ->
    Alcotest.fail "ring livelocked: max_steps exhausted"
  | r ->
    Alcotest.(check bool) "drained" true r.Harness.Run_result.drained;
    Util.check_no_violations "ring regression scenario"
      (Harness.Checker.check_all ~expect_genuine:true ~check_quiescence:true
         r)

(* ------------------------------------------------------------------ *)
(* Allocation regression: A1 steady state on a multi-group topology
   must stay within a flat minor-words-per-delivery budget. The budget
   is far from zero — every delivery still pays for wire envelopes,
   consensus traffic and harness bookkeeping — but before the slab
   refactor it grew with per-pending Hashtbl churn, and this locks the
   flat regime in. The bench's scale cells measure ~1700-2200
   words/delivery on 20x5 and 100x10 topologies; the test budget sits
   ~2x above that so it stays robust to compiler/runtime variation
   while still catching a reintroduced per-delivery table habit. *)

let test_a1_allocation_budget () =
  let module R = Harness.Runner.Make (Amcast.A1) in
  let topo = Topology.symmetric ~groups:10 ~per_group:3 in
  let rng = Des.Rng.create 43 in
  let workload =
    Harness.Workload.generate ~rng ~topology:topo ~n:2_000
      ~dest:(Harness.Workload.Random_groups 3)
      ~arrival:(`Poisson (Des.Sim_time.of_ms 5))
      ()
  in
  let dep =
    R.deploy ~seed:43 ~latency:Latency.wan_default ~record_trace:false
      ~config:Amcast.Protocol.Config.throughput topo
  in
  ignore (R.schedule dep workload);
  Gc.full_major ();
  let g0 = Gc.quick_stat () in
  let r = R.run_deployment dep in
  let g1 = Gc.quick_stat () in
  Alcotest.(check bool) "drained" true r.Harness.Run_result.drained;
  let deliveries = List.length r.Harness.Run_result.deliveries in
  Alcotest.(check bool) "delivered something" true (deliveries > 0);
  let per_delivery =
    (g1.Gc.minor_words -. g0.Gc.minor_words) /. float_of_int deliveries
  in
  if per_delivery > 4_000.0 then
    Alcotest.failf
      "a1 steady state allocates %.0f minor words/delivery (budget 4000)"
      per_delivery

let suites =
  [
    ( "scale-slab",
      [
        Util.qcheck_case ~count:200
          ~name:"Row matches Hashtbl under random schedules" row_ops_gen
          prop_row_matches_hashtbl;
        Util.qcheck_case ~count:200
          ~name:"Window matches Hashtbl under random schedules"
          window_ops_gen prop_window_matches_hashtbl;
      ] );
    ( "scale-substrate",
      [
        Alcotest.test_case "Rng.substream is pure and indexed" `Quick
          test_substream;
        Alcotest.test_case "sharded summaries = sequential at 1..4 domains"
          `Slow test_sharded_identity;
        Alcotest.test_case "in-worker scenario derivation agrees" `Quick
          test_sharded_scenarios_agree;
        Alcotest.test_case "ring: finalized-head livelock regression" `Slow
          test_ring_livelock_regression;
        Alcotest.test_case "a1: steady-state minor-words budget" `Slow
          test_a1_allocation_budget;
      ] );
  ]

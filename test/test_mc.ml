(* Model-checker tests: exhaustive exploration with POR, replay
   determinism, seeded mutations caught with replayable traces, and the
   checked-in counterexample corpus. *)

open Mc

let cast at origin dest payload =
  { Harness.Workload.at = Util.us at; origin; dest; payload }

let topo sizes = Net.Topology.make ~sizes

module EA1 = Explorer.Make (Amcast.A1)
module EA2 = Explorer.Make (Amcast.A2)
module EFz = Explorer.Make (Amcast.Fritzke)
module EVb = Explorer.Make (Amcast.Via_broadcast)
module EOpt = Explorer.Make (Amcast.Optimistic)
module EWb = Explorer.Make (Amcast.Whitebox)
module EFx = Explorer.Make (Amcast.Flexcast)

(* ---------- exhaustive exploration ---------- *)

(* One global cast, one process per group: small enough that the naive
   (unreduced) enumeration also terminates, so the two can be compared. *)
let a1_1x1 () = EA1.make_setup ~topology:(topo [ 1; 1 ]) [ cast 1_000 0 [ 0; 1 ] "m0" ]

let test_a1_por_vs_naive () =
  let s = a1_1x1 () in
  let p = EA1.explore s in
  let n = EA1.explore ~opts:{ EA1.default_opts with EA1.por = false } s in
  Alcotest.(check bool) "por exhaustive" true p.EA1.stats.EA1.exhaustive;
  Alcotest.(check bool) "naive exhaustive" true n.EA1.stats.EA1.exhaustive;
  Alcotest.(check int) "por interleavings" 20 p.EA1.stats.EA1.interleavings;
  Alcotest.(check int) "naive interleavings" 560 n.EA1.stats.EA1.interleavings;
  Alcotest.(check bool) "por reduction at least 5x" true
    (n.EA1.stats.EA1.interleavings >= 5 * p.EA1.stats.EA1.interleavings);
  (* Sleep sets only skip schedules equivalent to an explored one: the
     reduced search must still see every distinct terminal outcome. *)
  Alcotest.(check (list int)) "same outcomes" n.EA1.outcome_digests p.EA1.outcome_digests;
  Alcotest.(check bool) "clean" true (p.EA1.violation = None)

(* The acceptance configuration: 2 groups x 2 processes, 2 global casts,
   exhaustively enumerated under a delay bound of 1. *)
let test_a1_2x2_exhaustive () =
  let s =
    EA1.make_setup ~reorder_bound:1 ~topology:(topo [ 2; 2 ])
      [ cast 1_000 0 [ 0; 1 ] "m0"; cast 2_000 2 [ 0; 1 ] "m1" ]
  in
  let o = EA1.explore s in
  Alcotest.(check bool) "exhaustive" true o.EA1.stats.EA1.exhaustive;
  Alcotest.(check int) "interleavings" 12 o.EA1.stats.EA1.interleavings;
  Alcotest.(check bool) "clean" true (o.EA1.violation = None)

let test_a2_1x1 () =
  let s = EA2.make_setup ~topology:(topo [ 1; 1 ]) [ cast 1_000 0 [ 0; 1 ] "m0" ] in
  let o = EA2.explore s in
  Alcotest.(check bool) "exhaustive" true o.EA2.stats.EA2.exhaustive;
  Alcotest.(check bool) "clean" true (o.EA2.violation = None);
  Alcotest.(check int) "uniform outcome" 1 (List.length o.EA2.outcome_digests)

let test_fritzke_1x1 () =
  let s = EFz.make_setup ~topology:(topo [ 1; 1 ]) [ cast 1_000 0 [ 0; 1 ] "m0" ] in
  let o = EFz.explore s in
  Alcotest.(check bool) "exhaustive" true o.EFz.stats.EFz.exhaustive;
  Alcotest.(check bool) "clean" true (o.EFz.violation = None);
  Alcotest.(check int) "uniform outcome" 1 (List.length o.EFz.outcome_digests)

let test_via_broadcast_1x1 () =
  let s = EVb.make_setup ~topology:(topo [ 1; 1 ]) [ cast 1_000 0 [ 0; 1 ] "m0" ] in
  let o = EVb.explore s in
  Alcotest.(check bool) "exhaustive" true o.EVb.stats.EVb.exhaustive;
  Alcotest.(check bool) "clean" true (o.EVb.violation = None);
  Alcotest.(check int) "uniform outcome" 1 (List.length o.EVb.outcome_digests)

let test_optimistic_1x2 () =
  let s =
    EOpt.make_setup ~topology:(topo [ 1; 2 ])
      [ cast 1_000 0 [ 0; 1 ] "m0"; cast 2_000 1 [ 0; 1 ] "m1" ]
  in
  let o = EOpt.explore s in
  Alcotest.(check bool) "exhaustive" true o.EOpt.stats.EOpt.exhaustive;
  Alcotest.(check bool) "clean" true (o.EOpt.violation = None);
  Alcotest.(check int) "uniform outcome" 1 (List.length o.EOpt.outcome_digests)

(* ---------- the modern baselines: whitebox and flexcast ---------- *)

(* Whitebox runs the full consensus machinery per group, so the naive
   search needs a delay bound to stay small; the POR search must still
   cover every terminal outcome the naive one reaches. *)
let test_whitebox_por_vs_naive () =
  let s =
    EWb.make_setup ~reorder_bound:2 ~topology:(topo [ 1; 1 ])
      [ cast 1_000 0 [ 0; 1 ] "m0" ]
  in
  let p = EWb.explore s in
  let n = EWb.explore ~opts:{ EWb.default_opts with EWb.por = false } s in
  Alcotest.(check bool) "por exhaustive" true p.EWb.stats.EWb.exhaustive;
  Alcotest.(check bool) "naive exhaustive" true n.EWb.stats.EWb.exhaustive;
  Alcotest.(check int) "por interleavings" 11 p.EWb.stats.EWb.interleavings;
  Alcotest.(check int) "naive interleavings" 99 n.EWb.stats.EWb.interleavings;
  Alcotest.(check bool) "por reduction at least 5x" true
    (n.EWb.stats.EWb.interleavings >= 5 * p.EWb.stats.EWb.interleavings);
  Alcotest.(check (list int)) "same outcomes" n.EWb.outcome_digests p.EWb.outcome_digests;
  Alcotest.(check int) "uniform outcome" 1 (List.length p.EWb.outcome_digests);
  Alcotest.(check bool) "clean" true (p.EWb.violation = None)

(* The acceptance configuration: 2 groups x 2 processes, 2 global casts,
   exhaustively enumerated under a delay bound of 1. Every schedule ends
   in the same per-process delivery sequences: the convoy timestamps make
   the global order schedule-independent here. *)
let test_whitebox_2x2_exhaustive () =
  let s =
    EWb.make_setup ~reorder_bound:1 ~topology:(topo [ 2; 2 ])
      [ cast 1_000 0 [ 0; 1 ] "m0"; cast 2_000 2 [ 0; 1 ] "m1" ]
  in
  let o = EWb.explore s in
  Alcotest.(check bool) "exhaustive" true o.EWb.stats.EWb.exhaustive;
  Alcotest.(check int) "interleavings" 16 o.EWb.stats.EWb.interleavings;
  Alcotest.(check int) "uniform outcome" 1 (List.length o.EWb.outcome_digests);
  Alcotest.(check bool) "clean" true (o.EWb.violation = None)

let test_flexcast_por_vs_naive () =
  let s = EFx.make_setup ~topology:(topo [ 1; 1 ]) [ cast 1_000 0 [ 0; 1 ] "m0" ] in
  let p = EFx.explore s in
  let n = EFx.explore ~opts:{ EFx.default_opts with EFx.por = false } s in
  Alcotest.(check bool) "por exhaustive" true p.EFx.stats.EFx.exhaustive;
  Alcotest.(check bool) "naive exhaustive" true n.EFx.stats.EFx.exhaustive;
  Alcotest.(check (list int)) "same outcomes" n.EFx.outcome_digests p.EFx.outcome_digests;
  Alcotest.(check int) "uniform outcome" 1 (List.length p.EFx.outcome_digests);
  Alcotest.(check bool) "clean" true (p.EFx.violation = None)

(* On a clique with concurrent casts the Skeen-style timestamps are
   arrival-order dependent, so different schedules legitimately settle on
   different (internally consistent) global orders: two distinct terminal
   outcomes, every one of them checker-clean. *)
let test_flexcast_2x2_exhaustive () =
  let s =
    EFx.make_setup ~reorder_bound:1 ~topology:(topo [ 2; 2 ])
      [ cast 1_000 0 [ 0; 1 ] "m0"; cast 2_000 2 [ 0; 1 ] "m1" ]
  in
  let o = EFx.explore s in
  Alcotest.(check bool) "exhaustive" true o.EFx.stats.EFx.exhaustive;
  Alcotest.(check int) "interleavings" 7 o.EFx.stats.EFx.interleavings;
  Alcotest.(check int) "two consistent orders" 2 (List.length o.EFx.outcome_digests);
  Alcotest.(check bool) "clean" true (o.EFx.violation = None)

(* Flexcast over a hub overlay, model-checked with the overlay-aware
   genuineness oracle at every terminal state: a spoke-to-spoke cast may
   involve the hub (it relays), but nothing else. *)
let test_flexcast_hub_exhaustive () =
  let ov = Net.Overlay.hub ~groups:3 in
  let config =
    { Amcast.Protocol.Config.default with Amcast.Protocol.Config.overlay = Some ov }
  in
  let s =
    EFx.make_setup ~reorder_bound:1 ~config
      ~latency:(Net.Overlay.to_latency ov)
      ~topology:(topo [ 1; 1; 1 ])
      [ cast 1_000 2 [ 1; 2 ] "m0" ]
  in
  let check r =
    Harness.Checker.check_all ~expect_genuine:true ~overlay:ov r
  in
  let o = EFx.explore ~opts:{ EFx.default_opts with EFx.check } s in
  Alcotest.(check bool) "exhaustive" true o.EFx.stats.EFx.exhaustive;
  Alcotest.(check int) "uniform outcome" 1 (List.length o.EFx.outcome_digests);
  Alcotest.(check bool) "genuine on every schedule" true (o.EFx.violation = None)

(* ---------- replay determinism ---------- *)

let a1_2x2 () =
  EA1.make_setup ~topology:(topo [ 2; 2 ])
    [ cast 1_000 0 [ 0; 1 ] "m0"; cast 2_000 2 [ 0; 1 ] "m1" ]

(* Any int list is a runnable schedule (Drive clamps out-of-range
   indices); replaying it twice must give bit-identical runs. *)
let replay_deterministic =
  Util.qcheck_case ~count:60 ~name:"random schedules replay bit-identically"
    QCheck2.Gen.(list_size (int_bound 25) (int_bound 5))
    (fun cs ->
      let s = a1_2x2 () in
      let r1 = EA1.replay s cs in
      let r2 = EA1.replay s cs in
      Explorer.digest r1 = Explorer.digest r2
      && r1.Harness.Run_result.events_executed
         = r2.Harness.Run_result.events_executed
      && r1.Harness.Run_result.end_time = r2.Harness.Run_result.end_time
      || QCheck2.Test.fail_reportf "replay diverged on schedule [%s]"
           (String.concat "," (List.map string_of_int cs)))

let test_natural_schedule_is_all_zeros () =
  (* Choice 0 is exactly the event the normal scheduler would pop, so the
     empty (zero-padded) schedule reproduces the natural run. *)
  let s = a1_2x2 () in
  let natural = EA1.replay s [] in
  let zeros = EA1.replay s [ 0; 0; 0; 0; 0; 0; 0; 0 ] in
  Alcotest.(check int) "same digest" (Explorer.digest natural)
    (Explorer.digest zeros);
  Util.check_no_violations "natural run clean" (Harness.Checker.check_all natural)

(* ---------- seeded mutations ---------- *)

(* Dropping p1's second A-Deliver in the A2 restart scenario: the
   explorer must catch it and the minimized schedule must replay to the
   same verdict. *)
let test_mutation_a2_drop_deliver () =
  let module M =
    Mutant.Make
      (Amcast.A2)
      (struct
        let spec = Mutant.Drop_deliver { pid = 1; nth = 1 }
      end)
  in
  let module E = Explorer.Make (M) in
  let s =
    E.make_setup ~reorder_bound:1 ~topology:(topo [ 1; 1 ])
      [ cast 1_000 0 [ 0; 1 ] "m0"; cast 400_000 0 [ 0; 1 ] "m1" ]
  in
  let o = E.explore s in
  let v =
    match o.E.violation with
    | Some v -> v
    | None -> Alcotest.fail "mutation not caught"
  in
  let choices, msgs = E.minimize s v.E.choices in
  Alcotest.(check bool) "still violating" true (msgs <> []);
  Alcotest.(check bool) "names m0.1" true
    (List.exists (fun m -> Util.contains m "m0.1") msgs);
  (* The minimized schedule replays to the identical verdict. *)
  let r = E.replay s choices in
  Alcotest.(check (list string)) "replay verdict" msgs (Harness.Checker.check_all r)

(* Skeen has no fault tolerance: dropping p1's first stamp message stalls
   every message whose final timestamp needs it. The counterexample
   round-trips through the trace-file format. *)
let test_mutation_skeen_trace_roundtrip () =
  let spec = Mutant.Drop_receive { pid = 1; nth = 0; tag_prefix = "skeen.stamp" } in
  let module M =
    Mutant.Make
      (Amcast.Skeen)
      (struct
        let spec = spec
      end)
  in
  let module E = Explorer.Make (M) in
  let casts = [ (1_000, 0, [ 0; 1 ], "m0"); (2_000, 2, [ 0; 1 ], "m1") ] in
  let workload = List.map (fun (at, o, d, p) -> cast at o d p) casts in
  let s = E.make_setup ~reorder_bound:1 ~topology:(topo [ 2; 2 ]) workload in
  let o = E.explore s in
  let v =
    match o.E.violation with
    | Some v -> v
    | None -> Alcotest.fail "mutation not caught"
  in
  let choices, msgs = E.minimize s v.E.choices in
  Alcotest.(check bool) "still violating" true (msgs <> []);
  let tf =
    Trace_file.make ~protocol:"skeen" ~sizes:[ 2; 2 ] ~casts ~mutation:spec
      ~choices ~note:"seeded skeen stamp drop" ()
  in
  (match Trace_file.of_string (Trace_file.to_string tf) with
  | Ok tf' -> Alcotest.(check bool) "roundtrip" true (tf = tf')
  | Error e -> Alcotest.failf "roundtrip: %s" e);
  match Trace_file.replay tf with
  | Ok (_, violations) ->
    Alcotest.(check (list string)) "trace replays to same verdict" msgs violations
  | Error e -> Alcotest.failf "replay: %s" e

(* ---------- counterexample corpus ---------- *)

let load_corpus name =
  match Trace_file.load (Filename.concat "corpus" name) with
  | Ok t -> t
  | Error e -> Alcotest.failf "%s: %s" name e

let replay_trace t =
  match Trace_file.replay t with
  | Ok (_, violations) -> violations
  | Error e -> Alcotest.failf "replay: %s" e

let check_names what needle violations =
  Alcotest.(check bool) what true
    (List.exists (fun m -> Util.contains m needle) violations)

let test_corpus_a1_stage_skip () =
  let v = replay_trace (load_corpus "a1_stage_skip.trace") in
  Alcotest.(check bool) "violates" true (v <> []);
  check_names "loses the multi-group cast" "m2.0" v

let test_corpus_a2_restart () =
  let v = replay_trace (load_corpus "a2_restart.trace") in
  Alcotest.(check bool) "violates" true (v <> []);
  check_names "loses the restart-round cast" "m0.1" v

let test_corpus_skeen_reorder () =
  let t = load_corpus "skeen_reorder.trace" in
  Alcotest.(check (list int)) "non-default schedule" [ 0; 1 ] t.Trace_file.choices;
  let reordered = replay_trace t in
  check_names "reordering also loses m0.0" "m0.0" reordered;
  (* The same scenario under the natural schedule loses only m0.1 — the
     verdict depends on the replayed choice sequence. *)
  let natural = replay_trace { t with Trace_file.choices = [] } in
  Alcotest.(check bool) "natural run still violates" true (natural <> []);
  Alcotest.(check bool) "but m0.0 survives naturally" false
    (List.exists (fun m -> Util.contains m "m0.0") natural)

(* The new-baseline corpus traces: seeded mutations against whitebox (a
   dropped leader-to-leader stamp) and flexcast over a hub overlay (the
   relay's forwarded data dropped). Both must replay to their recorded
   violations bit-identically — same verdict and same outcome digest on
   every replay. *)

let replay_run t =
  match Trace_file.replay t with
  | Ok (r, violations) -> (r, violations)
  | Error e -> Alcotest.failf "replay: %s" e

let test_corpus_whitebox_stamp_drop () =
  let t = load_corpus "whitebox_stamp_drop.trace" in
  Alcotest.(check bool) "clique-model trace carries no overlay" true
    (t.Trace_file.overlay = None);
  let r1, v1 = replay_run t in
  let r2, v2 = replay_run t in
  Alcotest.(check bool) "violates" true (v1 <> []);
  check_names "stalls the second cast" "m2.0" v1;
  Alcotest.(check (list string)) "verdict is stable" v1 v2;
  Alcotest.(check int) "bit-identical replay" (Explorer.digest r1)
    (Explorer.digest r2)

let test_corpus_flexcast_relay_drop () =
  let t = load_corpus "flexcast_relay_drop.trace" in
  Alcotest.(check bool) "records the hub overlay" true
    (t.Trace_file.overlay = Some Net.Overlay.Hub);
  let r1, v1 = replay_run t in
  let r2, v2 = replay_run t in
  Alcotest.(check bool) "violates" true (v1 <> []);
  (* One dropped relay forward loses both spoke-to-spoke casts: the data
     for the remote addressee only travels that route. *)
  check_names "loses the first cast" "m1.0" v1;
  check_names "loses the second cast" "m2.0" v1;
  Alcotest.(check (list string)) "verdict is stable" v1 v2;
  Alcotest.(check int) "bit-identical replay" (Explorer.digest r1)
    (Explorer.digest r2)

(* ---------- trace-file format ---------- *)

let test_trace_file_overlay_roundtrip () =
  let t =
    Trace_file.make ~protocol:"flexcast" ~sizes:[ 1; 1; 1 ]
      ~overlay:Net.Overlay.Ring
      ~casts:[ (1_000, 0, [ 0; 2 ], "m0") ]
      ()
  in
  Alcotest.(check bool) "overlay line emitted" true
    (Util.contains (Trace_file.to_string t) "overlay ring");
  (match Trace_file.of_string (Trace_file.to_string t) with
  | Ok t' -> Alcotest.(check bool) "roundtrip" true (t = t')
  | Error e -> Alcotest.failf "roundtrip: %s" e);
  (* No overlay = no overlay line: clique-model traces stay byte-identical
     to the pre-overlay format. *)
  let plain = Trace_file.make ~protocol:"a1" ~sizes:[ 2; 2 ] () in
  Alcotest.(check bool) "clique traces unchanged" false
    (Util.contains (Trace_file.to_string plain) "overlay");
  match Trace_file.of_string "amcast-mc-trace/v1\nprotocol flexcast\nsizes 1,1\noverlay moebius\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted unknown overlay kind"

let test_trace_file_roundtrip () =
  let t =
    Trace_file.make ~seed:7 ~intra_us:2_000 ~inter_us:80_000 ~config:"reference"
      ~spurious_timers:1 ~reorder_bound:2
      ~casts:[ (1_000, 0, [ 0; 1 ], "hello world"); (2_000, 3, [ 1 ], "m1") ]
      ~faults:[ (0, 3) ]
      ~mutation:(Mutant.Drop_receive { pid = 2; nth = 4; tag_prefix = "cons.decide" })
      ~choices:[ 2; 0; 1 ] ~note:"format coverage" ~protocol:"a1" ~sizes:[ 2; 2 ]
      ()
  in
  match Trace_file.of_string (Trace_file.to_string t) with
  | Ok t' -> Alcotest.(check bool) "roundtrip" true (t = t')
  | Error e -> Alcotest.failf "roundtrip: %s" e

let test_trace_file_rejects_garbage () =
  (match Trace_file.of_string "not a trace\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted bad magic");
  match Trace_file.of_string "amcast-mc-trace/v1\nprotocol a1\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted trace without sizes"

let suites =
  [
    ( "mc.explorer",
      [
        Alcotest.test_case "a1 1x1: POR vs naive, same outcomes" `Quick
          test_a1_por_vs_naive;
        Alcotest.test_case "a1 2x2, 2 casts: exhaustive under delay bound" `Quick
          test_a1_2x2_exhaustive;
        Alcotest.test_case "a2 1x1: clean, uniform outcome" `Quick test_a2_1x1;
        Alcotest.test_case "fritzke 1x1: clean, uniform outcome" `Quick
          test_fritzke_1x1;
        Alcotest.test_case "via-broadcast 1x1: clean" `Quick
          test_via_broadcast_1x1;
        Alcotest.test_case "optimistic 1x2, 2 casts: clean, uniform outcome"
          `Quick test_optimistic_1x2;
        Alcotest.test_case "whitebox 1x1: POR vs naive, same outcomes" `Quick
          test_whitebox_por_vs_naive;
        Alcotest.test_case "whitebox 2x2, 2 casts: exhaustive, uniform" `Quick
          test_whitebox_2x2_exhaustive;
        Alcotest.test_case "flexcast 1x1: POR vs naive, same outcomes" `Quick
          test_flexcast_por_vs_naive;
        Alcotest.test_case "flexcast 2x2, 2 casts: exhaustive" `Quick
          test_flexcast_2x2_exhaustive;
        Alcotest.test_case "flexcast on a hub: genuine on every schedule"
          `Quick test_flexcast_hub_exhaustive;
      ] );
    ( "mc.replay",
      [
        replay_deterministic;
        Alcotest.test_case "empty schedule is the natural run" `Quick
          test_natural_schedule_is_all_zeros;
      ] );
    ( "mc.mutation",
      [
        Alcotest.test_case "a2 deliver drop caught and replayed" `Quick
          test_mutation_a2_drop_deliver;
        Alcotest.test_case "skeen stamp drop caught, trace round-trips" `Quick
          test_mutation_skeen_trace_roundtrip;
      ] );
    ( "mc.corpus",
      [
        Alcotest.test_case "a1 stage-skip trace replays to violation" `Quick
          test_corpus_a1_stage_skip;
        Alcotest.test_case "a2 restart trace replays to violation" `Quick
          test_corpus_a2_restart;
        Alcotest.test_case "skeen reorder: verdict depends on schedule" `Quick
          test_corpus_skeen_reorder;
        Alcotest.test_case "whitebox stamp drop replays bit-identically"
          `Quick test_corpus_whitebox_stamp_drop;
        Alcotest.test_case "flexcast relay drop replays bit-identically"
          `Quick test_corpus_flexcast_relay_drop;
      ] );
    ( "mc.trace_file",
      [
        Alcotest.test_case "round-trip" `Quick test_trace_file_roundtrip;
        Alcotest.test_case "overlay line round-trip" `Quick
          test_trace_file_overlay_roundtrip;
        Alcotest.test_case "rejects malformed input" `Quick
          test_trace_file_rejects_garbage;
      ] );
  ]

open Des
open Net
open Runtime

let test_oracle_detects () =
  let topo = Topology.symmetric ~groups:1 ~per_group:3 in
  let engine = Engine.create ~tag:(fun () -> "nil") topo in
  List.iter
    (fun pid ->
      Engine.spawn engine pid (fun _ ->
          ((), { Engine.on_receive = (fun ~src:_ () -> ()) })))
    (Topology.all_pids topo);
  let s0 = Engine.services engine 0 in
  let d = Fd.Detector.oracle ~delay:(Sim_time.of_ms 10) s0 in
  let changes = ref 0 in
  d.Fd.Detector.subscribe (fun () -> incr changes);
  Engine.schedule_crash engine ~at:(Sim_time.of_ms 5) 2;
  Alcotest.(check bool) "not suspected before" false (d.Fd.Detector.suspects 2);
  Engine.run engine;
  Alcotest.(check bool) "suspected after" true (d.Fd.Detector.suspects 2);
  Alcotest.(check bool) "correct never suspected" false
    (d.Fd.Detector.suspects 1);
  Alcotest.(check int) "one change" 1 !changes

let test_oracle_leader () =
  let topo = Topology.symmetric ~groups:1 ~per_group:3 in
  let engine = Engine.create ~tag:(fun () -> "nil") topo in
  List.iter
    (fun pid ->
      Engine.spawn engine pid (fun _ ->
          ((), { Engine.on_receive = (fun ~src:_ () -> ()) })))
    (Topology.all_pids topo);
  let d = Fd.Detector.oracle ~delay:Sim_time.zero (Engine.services engine 1) in
  Alcotest.(check (option int)) "initial leader" (Some 0)
    (Fd.Detector.leader d [ 0; 1; 2 ]);
  Engine.schedule_crash engine ~at:(Sim_time.of_ms 1) 0;
  Engine.run engine;
  Alcotest.(check (option int)) "leader rotates" (Some 1)
    (Fd.Detector.leader d [ 0; 1; 2 ]);
  Alcotest.(check (option int)) "all suspected" None
    (Fd.Detector.leader d [ 0 ])

let test_never_suspects () =
  let d = Fd.Detector.never_suspects in
  Alcotest.(check bool) "no suspicion" false (d.Fd.Detector.suspects 42);
  Alcotest.(check (option int)) "leader is first" (Some 7)
    (Fd.Detector.leader d [ 7; 8 ])

(* Heartbeat detector: two processes, one crashes, the survivor suspects it
   after the timeout; no false suspicion while both are alive. *)
let test_heartbeat_detects_crash () =
  let topo = Topology.symmetric ~groups:1 ~per_group:2 in
  let engine =
    Engine.create ~latency:Util.crisp_latency
      ~tag:Fd.Heartbeat.(fun m -> Fmt.str "%a" pp_msg m)
      topo
  in
  let detectors = Hashtbl.create 2 in
  List.iter
    (fun pid ->
      let hb =
        Engine.spawn engine pid (fun services ->
            let hb =
              Fd.Heartbeat.create ~services ~wrap:Fun.id
                ~monitored:(Topology.all_pids topo)
                ~period:(Sim_time.of_ms 5) ~timeout:(Sim_time.of_ms 20) ()
            in
            (hb, {
               Engine.on_receive =
                 (fun ~src m -> Fd.Heartbeat.handle hb ~src m);
             }))
      in
      Hashtbl.replace detectors pid hb)
    (Topology.all_pids topo);
  Engine.schedule_crash engine ~at:(Sim_time.of_ms 100) 1;
  (* No false suspicion at 90ms. *)
  Engine.run ~until:(Sim_time.of_ms 90) engine;
  let d0 = Fd.Heartbeat.detector (Hashtbl.find detectors 0) in
  Alcotest.(check bool) "no false suspicion" false (d0.Fd.Detector.suspects 1);
  (* Crash at 100ms; suspicion by 100 + timeout + slack. *)
  Engine.run ~until:(Sim_time.of_ms 200) engine;
  Alcotest.(check bool) "crash suspected" true (d0.Fd.Detector.suspects 1);
  Fd.Heartbeat.stop (Hashtbl.find detectors 0);
  Fd.Heartbeat.stop (Hashtbl.find detectors 1)

(* Shared setup for the heartbeat adaptation tests: one group of two,
   each monitoring the other, with the crisp 1ms intra-group latency. *)
let heartbeat_pair ?max_timeout ~period ~timeout () =
  let topo = Topology.symmetric ~groups:1 ~per_group:2 in
  let engine =
    Engine.create ~latency:Util.crisp_latency
      ~tag:Fd.Heartbeat.(fun m -> Fmt.str "%a" pp_msg m)
      topo
  in
  let detectors = Hashtbl.create 2 in
  List.iter
    (fun pid ->
      let hb =
        Engine.spawn engine pid (fun services ->
            let hb =
              Fd.Heartbeat.create ?max_timeout ~services ~wrap:Fun.id
                ~monitored:(Topology.all_pids topo)
                ~period ~timeout ()
            in
            (hb, {
               Engine.on_receive =
                 (fun ~src m -> Fd.Heartbeat.handle hb ~src m);
             }))
      in
      Hashtbl.replace detectors pid hb)
    (Topology.all_pids topo);
  (engine, fun pid -> Hashtbl.find detectors pid)

(* Regression for the unbounded ◇P back-off: each false suspicion doubles
   the peer timeout, but never beyond [max_timeout]. With timeout 20ms and
   cap 30ms, a first 50ms silence window doubles 20ms to the cap; a second
   36ms window must then still trigger a (false) suspicion at 30ms of
   silence — an uncapped detector would have backed off to 40ms and stayed
   silent. *)
let test_heartbeat_backoff_capped () =
  let engine, hb =
    heartbeat_pair ~max_timeout:(Sim_time.of_ms 30)
      ~period:(Sim_time.of_ms 5) ~timeout:(Sim_time.of_ms 20) ()
  in
  let net = Engine.network engine in
  let d0 = Fd.Heartbeat.detector (hb 0) in
  let notifications = ref 0 in
  d0.Fd.Detector.subscribe (fun () -> incr notifications);
  (* First silence window: 52ms..100ms. Last ping arrives at 51ms, so p0
     suspects at 71ms and revokes when the parked pings land at 101ms. *)
  Engine.at engine (Sim_time.of_ms 52) (fun () ->
      Network.partition net ~src_group:0 ~dst_group:0);
  Engine.at engine (Sim_time.of_ms 100) (fun () -> Network.heal_all net);
  (* Second window: 152ms..186ms. Last ping arrives at 151ms; with the
     capped 30ms timeout the deadline at 181ms beats the healed pings
     landing at 187ms. *)
  Engine.at engine (Sim_time.of_ms 152) (fun () ->
      Network.partition net ~src_group:0 ~dst_group:0);
  Engine.at engine (Sim_time.of_ms 186) (fun () -> Network.heal_all net);
  Engine.run ~until:(Sim_time.of_ms 120) engine;
  Alcotest.(check bool) "revoked after first heal" false
    (d0.Fd.Detector.suspects 1);
  Engine.run ~until:(Sim_time.of_ms 184) engine;
  Alcotest.(check bool) "capped timeout suspects again" true
    (d0.Fd.Detector.suspects 1);
  Engine.run ~until:(Sim_time.of_ms 300) engine;
  Alcotest.(check bool) "revoked after second heal" false
    (d0.Fd.Detector.suspects 1);
  Alcotest.(check int) "two suspicions, two revocations" 4 !notifications;
  Fd.Heartbeat.stop (hb 0);
  Fd.Heartbeat.stop (hb 1)

(* An FD storm ([Engine.perturb_fd] with a shrinking factor) forces false
   suspicions while everyone is alive; the ◇P back-off walks the shrunk
   timeouts back up, the suspicions are revoked, and a later real crash is
   still detected promptly. *)
let test_fd_storm_false_suspicions_recover () =
  let engine, hb =
    heartbeat_pair ~period:(Sim_time.of_ms 5) ~timeout:(Sim_time.of_ms 20) ()
  in
  let d0 = Fd.Heartbeat.detector (hb 0) in
  let notifications = ref 0 in
  d0.Fd.Detector.subscribe (fun () -> incr notifications);
  Engine.at engine (Sim_time.of_ms 52) (fun () -> Engine.perturb_fd engine 0.05);
  Engine.run ~until:(Sim_time.of_ms 150) engine;
  Alcotest.(check bool) "storm suspicions were revoked" false
    (d0.Fd.Detector.suspects 1);
  Alcotest.(check bool) "the storm forced at least one false suspicion" true
    (!notifications >= 2);
  (* A real crash after the storm is still detected: the walked-back
     timeout is small, not inert. *)
  Engine.schedule_crash engine ~at:(Sim_time.of_ms 200) 1;
  Engine.run ~until:(Sim_time.of_ms 260) engine;
  Alcotest.(check bool) "real crash detected after the storm" true
    (d0.Fd.Detector.suspects 1);
  Fd.Heartbeat.stop (hb 0);
  Fd.Heartbeat.stop (hb 1)

let suites =
  [
    ( "fd",
      [
        Alcotest.test_case "oracle detects crash" `Quick test_oracle_detects;
        Alcotest.test_case "oracle leader rotation" `Quick test_oracle_leader;
        Alcotest.test_case "never_suspects" `Quick test_never_suspects;
        Alcotest.test_case "heartbeat detects crash" `Quick
          test_heartbeat_detects_crash;
        Alcotest.test_case "heartbeat back-off capped" `Quick
          test_heartbeat_backoff_capped;
        Alcotest.test_case "fd storm recovers" `Quick
          test_fd_storm_false_suspicions_recover;
      ] );
  ]

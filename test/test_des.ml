open Des

let test_time_arith () =
  Alcotest.(check int) "of_ms" 5_000 (Sim_time.to_us (Sim_time.of_ms 5));
  Alcotest.(check int) "add" 7_000
    (Sim_time.to_us (Sim_time.add (Sim_time.of_ms 3) (Sim_time.of_ms 4)));
  Alcotest.(check int) "diff" (-1_000)
    (Sim_time.diff (Sim_time.of_ms 3) (Sim_time.of_ms 4));
  Alcotest.(check int) "add_us clamps" 0
    (Sim_time.to_us (Sim_time.add_us Sim_time.zero (-5)));
  Alcotest.(check bool) "compare" true
    Sim_time.(of_ms 1 < of_ms 2)

let test_time_invalid () =
  Alcotest.check_raises "negative us" (Invalid_argument "Sim_time.of_us: negative")
    (fun () -> ignore (Sim_time.of_us (-1)))

let test_rng_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  let xs = List.init 100 (fun _ -> Rng.int a 1000) in
  let ys = List.init 100 (fun _ -> Rng.int b 1000) in
  Alcotest.(check (list int)) "same seed, same stream" xs ys

let test_rng_split_independent () =
  let root1 = Rng.create 7 in
  let child1 = Rng.split root1 in
  let root2 = Rng.create 7 in
  let child2 = Rng.split root2 in
  (* Splitting is deterministic... *)
  Alcotest.(check int) "split deterministic" (Rng.int child1 1_000_000)
    (Rng.int child2 1_000_000);
  (* ...and drawing from the child does not perturb the parent. *)
  let root3 = Rng.create 7 in
  let _child3 = Rng.split root3 in
  Alcotest.(check int) "parent independent of child draws"
    (Rng.int root1 1_000_000) (Rng.int root3 1_000_000)

let test_rng_bounds () =
  let rng = Rng.create 1 in
  for _ = 1 to 1000 do
    let v = Rng.int rng 17 in
    if v < 0 || v >= 17 then Alcotest.failf "out of bounds: %d" v
  done;
  for _ = 1 to 1000 do
    let v = Rng.float rng 2.5 in
    if v < 0. || v >= 2.5 then Alcotest.failf "float out of bounds: %f" v
  done

let test_rng_exponential_positive () =
  let rng = Rng.create 3 in
  for _ = 1 to 1000 do
    let v = Rng.exponential rng ~mean:10. in
    if v < 0. then Alcotest.failf "negative exponential draw: %f" v
  done

let test_rng_shuffle_permutes () =
  let rng = Rng.create 5 in
  let arr = Array.init 50 Fun.id in
  Rng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort Int.compare sorted;
  Alcotest.(check (array int)) "same multiset" (Array.init 50 Fun.id) sorted

let test_rng_sample () =
  let rng = Rng.create 6 in
  let xs = List.init 10 Fun.id in
  let s = Rng.sample_without_replacement rng 4 xs in
  Alcotest.(check int) "size" 4 (List.length s);
  Alcotest.(check int) "distinct" 4
    (List.length (List.sort_uniq Int.compare s));
  let s2 = Rng.sample_without_replacement rng 99 xs in
  Alcotest.(check int) "clamped to population" 10 (List.length s2)

let test_queue_orders_by_time () =
  let q = Event_queue.create () in
  ignore (Event_queue.add q ~time:(Sim_time.of_ms 3) "c");
  ignore (Event_queue.add q ~time:(Sim_time.of_ms 1) "a");
  ignore (Event_queue.add q ~time:(Sim_time.of_ms 2) "b");
  let pop () = Option.map snd (Event_queue.pop q) in
  Alcotest.(check (option string)) "first" (Some "a") (pop ());
  Alcotest.(check (option string)) "second" (Some "b") (pop ());
  Alcotest.(check (option string)) "third" (Some "c") (pop ());
  Alcotest.(check (option string)) "empty" None (pop ())

let test_queue_fifo_on_ties () =
  let q = Event_queue.create () in
  let t = Sim_time.of_ms 1 in
  for i = 0 to 9 do
    ignore (Event_queue.add q ~time:t (string_of_int i))
  done;
  let order = List.init 10 (fun _ -> snd (Option.get (Event_queue.pop q))) in
  Alcotest.(check (list string))
    "insertion order on equal timestamps"
    (List.init 10 string_of_int)
    order

let test_queue_cancel () =
  let q = Event_queue.create () in
  let h1 = ignore (Event_queue.add q ~time:(Sim_time.of_ms 1) "a");
           Event_queue.add q ~time:(Sim_time.of_ms 2) "b" in
  Event_queue.cancel q h1;
  Alcotest.(check int) "size after cancel" 1 (Event_queue.size q);
  Alcotest.(check (option string)) "skips cancelled" (Some "a")
    (Option.map snd (Event_queue.pop q));
  Alcotest.(check (option string)) "then empty" None
    (Option.map snd (Event_queue.pop q));
  (* Cancelling a popped handle must not corrupt live accounting. *)
  Event_queue.cancel q h1;
  Alcotest.(check int) "still empty" 0 (Event_queue.size q)

let test_queue_many () =
  let q = Event_queue.create () in
  let rng = Rng.create 11 in
  let times = List.init 2_000 (fun _ -> Rng.int rng 1_000_000) in
  List.iter (fun t -> ignore (Event_queue.add q ~time:(Sim_time.of_us t) t)) times;
  let rec drain acc =
    match Event_queue.pop q with
    | None -> List.rev acc
    | Some (_, v) -> drain (v :: acc)
  in
  let out = drain [] in
  Alcotest.(check (list int)) "drains sorted (stable)"
    (List.stable_sort Int.compare times)
    out

let test_queue_heavy_cancellation () =
  (* Cancel 90% of a large queue, then drain: the survivors must come out
     in (time, insertion) order and the live count must track exactly. *)
  let q = Event_queue.create () in
  let n = 1_000 in
  let handles =
    Array.init n (fun i -> Event_queue.add q ~time:(Sim_time.of_us (i * 7 mod 400)) i)
  in
  let kept = ref [] in
  Array.iteri
    (fun i h ->
      if i mod 10 <> 0 then Event_queue.cancel q h
      else kept := (i * 7 mod 400, i) :: !kept)
    handles;
  Alcotest.(check int) "live count after mass cancel" (List.length !kept)
    (Event_queue.size q);
  let rec drain acc =
    match Event_queue.pop q with
    | None -> List.rev acc
    | Some (t, v) -> drain ((Sim_time.to_us t, v) :: acc)
  in
  let expected =
    List.stable_sort
      (fun (ta, ia) (tb, ib) ->
        if ta <> tb then Int.compare ta tb else Int.compare ia ib)
      (List.rev !kept)
  in
  Alcotest.(check (list (pair int int))) "survivors in order" expected
    (drain []);
  Alcotest.(check int) "empty" 0 (Event_queue.size q);
  (* Cancelling after the drain must not resurrect anything. *)
  Array.iter (fun h -> Event_queue.cancel q h) handles;
  Alcotest.(check int) "still empty" 0 (Event_queue.size q);
  Alcotest.(check bool) "pop on empty" true (Event_queue.pop q = None)

let test_scheduler_executed_counter () =
  let s = Scheduler.create () in
  for i = 1 to 5 do
    ignore (Scheduler.at s (Sim_time.of_ms i) (fun () -> ()))
  done;
  let h = Scheduler.at s (Sim_time.of_ms 6) (fun () -> ()) in
  Scheduler.cancel s h;
  Scheduler.run s;
  Alcotest.(check int) "cancelled actions are not counted" 5
    (Scheduler.executed s)

let test_scheduler_runs_in_order () =
  let s = Scheduler.create () in
  let log = ref [] in
  ignore (Scheduler.at s (Sim_time.of_ms 2) (fun () -> log := 2 :: !log));
  ignore (Scheduler.at s (Sim_time.of_ms 1) (fun () -> log := 1 :: !log));
  ignore
    (Scheduler.at s (Sim_time.of_ms 1) (fun () ->
         (* actions can schedule more actions *)
         ignore (Scheduler.after s (Sim_time.of_ms 5) (fun () -> log := 6 :: !log))));
  Scheduler.run s;
  Alcotest.(check (list int)) "order" [ 1; 2; 6 ] (List.rev !log);
  Alcotest.(check int) "clock at last event" 6_000
    (Sim_time.to_us (Scheduler.now s))

let test_scheduler_until () =
  let s = Scheduler.create () in
  let log = ref [] in
  ignore (Scheduler.at s (Sim_time.of_ms 1) (fun () -> log := 1 :: !log));
  ignore (Scheduler.at s (Sim_time.of_ms 10) (fun () -> log := 10 :: !log));
  Scheduler.run ~until:(Sim_time.of_ms 5) s;
  Alcotest.(check (list int)) "only events before horizon" [ 1 ] (List.rev !log);
  Alcotest.(check int) "pending remains" 1 (Scheduler.pending s);
  Scheduler.run s;
  Alcotest.(check (list int)) "rest runs later" [ 1; 10 ] (List.rev !log)

let test_scheduler_cancel () =
  let s = Scheduler.create () in
  let fired = ref false in
  let h = Scheduler.at s (Sim_time.of_ms 1) (fun () -> fired := true) in
  Scheduler.cancel s h;
  Scheduler.run s;
  Alcotest.(check bool) "cancelled action does not fire" false !fired

let test_scheduler_max_steps () =
  let s = Scheduler.create () in
  let rec loop () = ignore (Scheduler.after s (Sim_time.of_ms 1) loop) in
  loop ();
  Alcotest.check_raises "runaway loop detected"
    (Failure "Scheduler.run: max_steps exhausted (runaway event loop?)")
    (fun () -> Scheduler.run ~max_steps:100 s)

let test_scheduler_past_clamped () =
  let s = Scheduler.create () in
  let log = ref [] in
  ignore
    (Scheduler.at s (Sim_time.of_ms 5) (fun () ->
         ignore (Scheduler.at s (Sim_time.of_ms 1) (fun () -> log := `Late :: !log))));
  Scheduler.run s;
  Alcotest.(check int) "past-scheduled action still runs" 1 (List.length !log);
  Alcotest.(check int) "clock does not go backwards" 5_000
    (Sim_time.to_us (Scheduler.now s))

let suites =
  [
    ( "des",
      [
        Alcotest.test_case "time arithmetic" `Quick test_time_arith;
        Alcotest.test_case "time invalid input" `Quick test_time_invalid;
        Alcotest.test_case "rng determinism" `Quick test_rng_determinism;
        Alcotest.test_case "rng split independence" `Quick
          test_rng_split_independent;
        Alcotest.test_case "rng bounds" `Quick test_rng_bounds;
        Alcotest.test_case "rng exponential" `Quick
          test_rng_exponential_positive;
        Alcotest.test_case "rng shuffle permutes" `Quick
          test_rng_shuffle_permutes;
        Alcotest.test_case "rng sampling" `Quick test_rng_sample;
        Alcotest.test_case "queue time order" `Quick test_queue_orders_by_time;
        Alcotest.test_case "queue FIFO ties" `Quick test_queue_fifo_on_ties;
        Alcotest.test_case "queue cancel" `Quick test_queue_cancel;
        Alcotest.test_case "queue stress" `Quick test_queue_many;
        Alcotest.test_case "queue heavy cancellation" `Quick
          test_queue_heavy_cancellation;
        Alcotest.test_case "scheduler executed counter" `Quick
          test_scheduler_executed_counter;
        Alcotest.test_case "scheduler order" `Quick
          test_scheduler_runs_in_order;
        Alcotest.test_case "scheduler horizon" `Quick test_scheduler_until;
        Alcotest.test_case "scheduler cancel" `Quick test_scheduler_cancel;
        Alcotest.test_case "scheduler runaway guard" `Quick
          test_scheduler_max_steps;
        Alcotest.test_case "scheduler past clamp" `Quick
          test_scheduler_past_clamped;
      ] );
  ]

(* Throughput-lane tests: batcher flush policy, pipelined consensus,
   batched-vs-reference verdict differentials, lease-path pipelining
   regressions, and model-checked outcome-set equality.

   The lane's contract: batching, pipelining and ack coalescing may change
   message counts and timings, never verdicts — and with every knob at its
   default (batch 1, pipeline 1) the runs are bit-identical to the
   pre-lane protocol. *)

open Util

let msg ~origin ~seq ~dest payload =
  Amcast.Msg.make ~id:(Runtime.Msg_id.make ~origin ~seq) ~dest payload

(* ---------- batcher flush policy (pure, fake timers) ---------- *)

type fake_batcher = {
  b : Amcast.Batcher.t;
  timers : (int, unit -> unit) Hashtbl.t;
  flushed : (Net.Topology.gid list * Amcast.Msg.t list) list ref;
}

let mk_batcher ~max ~delay =
  let timers = Hashtbl.create 4 in
  let next = ref 0 in
  let flushed = ref [] in
  let b =
    Amcast.Batcher.create ~max ~delay
      ~set_timer:(fun ~after:_ f ->
        incr next;
        Hashtbl.replace timers !next f;
        !next)
      ~cancel_timer:(Hashtbl.remove timers)
      ~flush:(fun ~key msgs -> flushed := !flushed @ [ (key, msgs) ])
  in
  { b; timers; flushed }

let fire_timers fb =
  let fs = Hashtbl.fold (fun _ f acc -> f :: acc) fb.timers [] in
  Hashtbl.reset fb.timers;
  List.iter (fun f -> f ()) fs

let ids msgs = List.map (fun (m : Amcast.Msg.t) -> m.id.Runtime.Msg_id.seq) msgs

let test_batcher_bypass () =
  let fb = mk_batcher ~max:1 ~delay:(ms 2) in
  let m0 = msg ~origin:0 ~seq:0 ~dest:[ 0; 1 ] "m0" in
  let m1 = msg ~origin:0 ~seq:1 ~dest:[ 0 ] "m1" in
  Amcast.Batcher.add fb.b m0;
  Amcast.Batcher.add fb.b m1;
  Alcotest.(check int) "two synchronous flushes" 2 (List.length !(fb.flushed));
  Alcotest.(check int) "no timer armed" 0 (Hashtbl.length fb.timers);
  Alcotest.(check int) "singletons" 1
    (List.length (snd (List.hd !(fb.flushed))));
  (* The zero counters are the observable signature of the lane being
     off — the soak summaries key on them. *)
  Alcotest.(check int) "formed stays 0" 0 (Amcast.Batcher.batches_formed fb.b);
  Alcotest.(check int) "packed stays 0" 0 (Amcast.Batcher.casts_packed fb.b)

let test_batcher_size_trigger () =
  let fb = mk_batcher ~max:3 ~delay:(ms 2) in
  List.iter
    (fun seq -> Amcast.Batcher.add fb.b (msg ~origin:0 ~seq ~dest:[ 0; 1 ] "m"))
    [ 0; 1; 2 ];
  (match !(fb.flushed) with
  | [ (key, msgs) ] ->
    Alcotest.(check (list int)) "key" [ 0; 1 ] key;
    Alcotest.(check (list int)) "cast order kept" [ 0; 1; 2 ] (ids msgs)
  | l -> Alcotest.failf "expected one batch, got %d" (List.length l));
  Alcotest.(check int) "timer cancelled after size flush" 0
    (Hashtbl.length fb.timers);
  Alcotest.(check int) "nothing pending" 0 (Amcast.Batcher.pending fb.b);
  Alcotest.(check int) "formed" 1 (Amcast.Batcher.batches_formed fb.b);
  Alcotest.(check int) "max batch" 3 (Amcast.Batcher.max_batch fb.b)

let test_batcher_timeout_trigger () =
  let fb = mk_batcher ~max:8 ~delay:(ms 2) in
  (* Three casts across two destination sets, below the size trigger. *)
  Amcast.Batcher.add fb.b (msg ~origin:0 ~seq:0 ~dest:[ 0 ] "a");
  Amcast.Batcher.add fb.b (msg ~origin:0 ~seq:1 ~dest:[ 0; 1 ] "b");
  Amcast.Batcher.add fb.b (msg ~origin:0 ~seq:2 ~dest:[ 0 ] "c");
  Alcotest.(check int) "one shared timer" 1 (Hashtbl.length fb.timers);
  Alcotest.(check (list int)) "buffered until timeout" []
    (List.map (fun _ -> 0) !(fb.flushed));
  fire_timers fb;
  (match !(fb.flushed) with
  | [ (k1, b1); (k2, b2) ] ->
    (* Oldest bucket first: [0] was opened before [0;1]. *)
    Alcotest.(check (list int)) "first bucket key" [ 0 ] k1;
    Alcotest.(check (list int)) "first bucket casts" [ 0; 2 ] (ids b1);
    Alcotest.(check (list int)) "second bucket key" [ 0; 1 ] k2;
    Alcotest.(check (list int)) "second bucket casts" [ 1 ] (ids b2)
  | l -> Alcotest.failf "expected two batches, got %d" (List.length l));
  Alcotest.(check int) "nothing pending" 0 (Amcast.Batcher.pending fb.b)

let test_batcher_size_flush_leaves_other_buckets () =
  let fb = mk_batcher ~max:2 ~delay:(ms 2) in
  Amcast.Batcher.add fb.b (msg ~origin:0 ~seq:0 ~dest:[ 0 ] "a1");
  Amcast.Batcher.add fb.b (msg ~origin:0 ~seq:1 ~dest:[ 0; 1 ] "b1");
  Amcast.Batcher.add fb.b (msg ~origin:0 ~seq:2 ~dest:[ 0 ] "a2");
  (* Bucket [0] hit the size trigger; bucket [0;1] must keep waiting. *)
  Alcotest.(check int) "one batch flushed" 1 (List.length !(fb.flushed));
  Alcotest.(check int) "other bucket still pending" 1
    (Amcast.Batcher.pending fb.b);
  Alcotest.(check int) "timer still armed for it" 1 (Hashtbl.length fb.timers);
  fire_timers fb;
  Alcotest.(check int) "flushed by timeout" 2 (List.length !(fb.flushed));
  Alcotest.(check int) "nothing pending" 0 (Amcast.Batcher.pending fb.b)

(* ---------- flush policy on a deployment ---------- *)

let batched_config =
  {
    Amcast.Protocol.Config.default with
    Amcast.Protocol.Config.batch_max = 4;
    batch_delay = ms 2;
  }

module RA1 = Harness.Runner.Make (Amcast.A1)

(* A single cast below the size trigger is flushed by the batch timer and
   still delivered everywhere. *)
let test_deploy_timeout_flush () =
  let topo = Net.Topology.symmetric ~groups:2 ~per_group:2 in
  let dep =
    RA1.deploy ~seed:0 ~latency:crisp_latency
      ~config:{ batched_config with batch_max = 8 } topo
  in
  ignore (RA1.cast_at dep ~at:(ms 10) ~origin:0 ~dest:[ 0; 1 ] ());
  let r = RA1.run_deployment dep in
  check_no_violations "timeout flush"
    (Harness.Checker.check_all ~check_quiescence:true r);
  Alcotest.(check int) "delivered" 1 (Harness.Metrics.delivered_count r);
  let stats = Amcast.A1.stats (RA1.node dep 0) in
  Alcotest.(check int) "one batch formed at the origin" 1
    (List.assoc "batches_formed" stats);
  Alcotest.(check int) "a singleton batch" 1
    (List.assoc "casts_per_batch_max" stats)

(* Eight same-instant casts with batch_max = 4: two full batches at the
   origin, every cast delivered individually. *)
let test_deploy_size_flush () =
  let topo = Net.Topology.symmetric ~groups:2 ~per_group:2 in
  let dep = RA1.deploy ~seed:0 ~latency:crisp_latency ~config:batched_config topo in
  let wl =
    List.init 8 (fun i ->
        {
          Harness.Workload.at = ms 10;
          origin = 0;
          dest = [ 0; 1 ];
          payload = Fmt.str "m%d" i;
        })
  in
  ignore (RA1.schedule dep wl);
  let r = RA1.run_deployment dep in
  check_no_violations "size flush"
    (Harness.Checker.check_all ~check_quiescence:true r);
  Alcotest.(check int) "all delivered" 8 (Harness.Metrics.delivered_count r);
  let stats = Amcast.A1.stats (RA1.node dep 0) in
  Alcotest.(check int) "two full batches" 2 (List.assoc "batches_formed" stats);
  Alcotest.(check int) "packed to the brim" 4
    (List.assoc "casts_per_batch_max" stats)

(* A crash between a cast and its batch flush loses the buffered cast with
   the caster — indistinguishable from crashing just before casting, which
   validity already exempts. The run stays clean; only the healthy cast is
   delivered. *)
let test_deploy_crash_mid_batch () =
  let topo = Net.Topology.symmetric ~groups:2 ~per_group:3 in
  let dep =
    RA1.deploy ~seed:0 ~latency:crisp_latency
      ~config:{ batched_config with batch_max = 8; batch_delay = ms 5 }
      ~faults:[ Harness.Runner.crash ~at:(ms 12) 0 ]
      topo
  in
  ignore (RA1.cast_at dep ~at:(ms 10) ~origin:0 ~dest:[ 0; 1 ] ());
  ignore (RA1.cast_at dep ~at:(ms 30) ~origin:1 ~dest:[ 0; 1 ] ());
  let r = RA1.run_deployment dep in
  check_no_violations "crash mid-batch" (Harness.Checker.check_all r);
  Alcotest.(check int) "buffered cast lost with its caster" 1
    (Harness.Metrics.delivered_count r)

(* ---------- pipelined consensus ---------- *)

let delivery_tuples (r : Harness.Run_result.t) =
  List.map
    (fun (d : Harness.Run_result.delivery_event) ->
      (d.pid, d.msg.Amcast.Msg.id, d.at))
    r.deliveries

(* With every lane knob at its default value the added fields are dead
   state: changing an unused knob (the flush delay while batching is off)
   must leave the run bit-identical. *)
let test_unused_knobs_bit_identical () =
  let topo = Net.Topology.symmetric ~groups:3 ~per_group:2 in
  let rng = Des.Rng.create 11 in
  let wl =
    Harness.Workload.generate ~rng ~topology:topo ~n:12
      ~dest:(Harness.Workload.Random_groups 3)
      ~arrival:(`Poisson (ms 8))
      ()
  in
  let run config = RA1.run ~seed:4 ~latency:wan ~config topo wl in
  let a = run Amcast.Protocol.Config.default in
  let b =
    run
      {
        Amcast.Protocol.Config.default with
        Amcast.Protocol.Config.batch_delay = ms 50;
      }
  in
  Alcotest.(check int) "events" a.events_executed b.events_executed;
  Alcotest.(check int) "inter msgs" a.inter_group_msgs b.inter_group_msgs;
  Alcotest.(check int) "intra msgs" a.intra_group_msgs b.intra_group_msgs;
  Alcotest.(check bool) "same deliveries" true
    (delivery_tuples a = delivery_tuples b)

(* Pipelining under jittery WAN latencies: decides for instance K+1 can
   arrive before K's; the window must apply them in instance order and the
   run must stay clean with every message delivered. *)
let pipelined (type a) (module P : Amcast.Protocol.S with type t = a)
    ~broadcast_only ~depth_at () =
  let module R = Harness.Runner.Make (P) in
  let topo = Net.Topology.symmetric ~groups:3 ~per_group:2 in
  let rng = Des.Rng.create 5 in
  let wl =
    Harness.Workload.generate ~rng ~topology:topo ~n:30
      ~dest:
        (if broadcast_only then Harness.Workload.To_all_groups
         else Harness.Workload.Random_groups 3)
      ~arrival:(`Poisson (ms 3))
      ()
  in
  let config =
    { Amcast.Protocol.Config.default with Amcast.Protocol.Config.pipeline = 4 }
  in
  let dep = R.deploy ~seed:5 ~latency:wan ~config topo in
  ignore (R.schedule dep wl);
  let r = R.run_deployment dep in
  check_no_violations "pipelined run"
    (Harness.Checker.check_all ~check_quiescence:true r);
  Alcotest.(check int) "all delivered" 30 (Harness.Metrics.delivered_count r);
  let depth =
    List.fold_left
      (fun acc pid -> max acc (depth_at (R.node dep pid)))
      0
      (Net.Topology.all_pids topo)
  in
  Alcotest.(check bool) "window used (depth >= 2)" true (depth >= 2)

let stat_depth stats = List.assoc "pipeline_depth_max" stats

let test_a1_pipelined () =
  pipelined
    (module Amcast.A1)
    ~broadcast_only:false
    ~depth_at:(fun n -> stat_depth (Amcast.A1.stats n))
    ()

let test_a2_pipelined () =
  pipelined
    (module Amcast.A2)
    ~broadcast_only:true
    ~depth_at:(fun n -> stat_depth (Amcast.A2.stats n))
    ()

let delivery_pids (r : Harness.Run_result.t) =
  List.map
    (fun (d : Harness.Run_result.delivery_event) ->
      (d.pid, d.msg.Amcast.Msg.id))
    r.deliveries
  |> List.sort compare

(* Ack coalescing lives in the uniform R-MCast lane: Copy acks buffer and
   merge under the same (batch_max, batch_delay) policy. Verdicts and the
   delivery set must match the per-message-ack run; some acks must
   actually have been saved. *)
let test_ack_coalescing () =
  let topo = Net.Topology.symmetric ~groups:2 ~per_group:3 in
  let uniform config =
    {
      config with
      Amcast.Protocol.Config.rm_mode = Rmcast.Reliable_multicast.Ack_uniform;
    }
  in
  (* Six same-instant casts to the same destination set: their six R-MCast
     fan-outs relay back-to-back at every process, so the Copy acks share a
     bucket and merge into one Copies message inside the delay window. *)
  let wl =
    List.init 6 (fun origin ->
        {
          Harness.Workload.at = ms 10;
          origin;
          dest = [ 0; 1 ];
          payload = Fmt.str "m%d" origin;
        })
  in
  let run config =
    let dep = RA1.deploy ~seed:3 ~latency:crisp_latency ~config topo in
    ignore (RA1.schedule dep wl);
    let r = RA1.run_deployment dep in
    let saved =
      List.fold_left
        (fun acc pid ->
          acc + List.assoc "acks_coalesced" (Amcast.A1.stats (RA1.node dep pid)))
        0
        (Net.Topology.all_pids topo)
    in
    (r, saved)
  in
  let rc, saved =
    run (uniform Amcast.Protocol.Config.throughput)
  in
  let ru, saved_u = run (uniform Amcast.Protocol.Config.default) in
  check_no_violations "coalesced acks stay uniform"
    (Harness.Checker.check_all ~check_quiescence:true rc);
  Alcotest.(check int) "all delivered" (Harness.Metrics.delivered_count ru)
    (Harness.Metrics.delivered_count rc);
  Alcotest.(check bool) "same deliverers" true
    (delivery_pids rc = delivery_pids ru);
  Alcotest.(check int) "per-message acks save nothing" 0 saved_u;
  Alcotest.(check bool) "coalescing saved ack messages" true (saved > 0)

(* ---------- lease-path pipelining regressions ---------- *)

(* Hazards fixed in the consensus lease path for the pipelining window:
   (1) GC must cancel the retry timer of an instance it prunes, (2) late
   Accepted/Decide for a retired instance must not resurrect its state,
   (3) a clock jump consumes undecided in-flight instances, whose timers
   and table entries must go with them. All three would show up here as a
   run that never quiesces or as retained instance state after the GC
   watermark passed. *)
let test_pipelined_quiescence_and_gc () =
  let topo = Net.Topology.symmetric ~groups:3 ~per_group:3 in
  let rng = Des.Rng.create 9 in
  let wl =
    Harness.Workload.generate ~rng ~topology:topo ~n:40
      ~dest:(Harness.Workload.Random_groups 3)
      ~arrival:(`Poisson (ms 3))
      ()
  in
  let dep =
    RA1.deploy ~seed:9 ~latency:wan
      ~config:Amcast.Protocol.Config.throughput topo
  in
  ignore (RA1.schedule dep wl);
  let r = RA1.run_deployment dep in
  check_no_violations "quiesces"
    (Harness.Checker.check_all ~check_quiescence:true r);
  Alcotest.(check int) "all delivered" 40 (Harness.Metrics.delivered_count r);
  List.iter
    (fun pid ->
      let retained =
        List.assoc "cons.instances" (Amcast.A1.stats (RA1.node dep pid))
      in
      if retained > 12 then
        Alcotest.failf "p%d retains %d consensus instances after GC" pid
          retained)
    (Net.Topology.all_pids topo)

(* Regression for the pipelined double-decide: two in-flight instances can
   both decide the same message at stage s0, and reprocessing the
   duplicate used to reassign the group timestamp after the (TS, m)
   fan-out had left — different groups then disagreed on the final
   timestamps and delivered [0,2]-bound messages in different orders.
   This seed + nemesis plan reproduced it before the fix. *)
let test_pipelined_double_decide_ordering () =
  let topo = Net.Topology.symmetric ~groups:3 ~per_group:3 in
  let rng = Des.Rng.create 1 in
  let wl =
    Harness.Workload.generate ~rng ~topology:topo ~n:24
      ~dest:(Harness.Workload.Zipfian_groups { kmax = 2; theta = 1.0 })
      ~arrival:(`Poisson (ms 4))
      ()
  in
  let plan = Harness.Nemesis.generate ~rng ~topology:topo () in
  let r =
    RA1.run ~seed:1 ~latency:crisp_latency
      ~config:Amcast.Protocol.Config.throughput ~nemesis:plan topo wl
  in
  check_no_violations "consistent cross-group order"
    (Harness.Checker.check_all
       ~liveness_from:(Harness.Nemesis.liveness_from plan)
       r)

(* ---------- verdict differentials (qcheck) ---------- *)

(* The lane may change counts and timings, never verdicts: on the same
   scenario — including crash schedules and nemesis plans — the batched
   config and the reference message pattern must produce identical checker
   verdicts. *)
let prop_verdict_differential proto (seed, with_nemesis) =
  let scenario =
    Harness.Campaign.random_scenario
      (Des.Rng.create seed)
      ~with_crashes:true ~with_nemesis ()
  in
  let verdicts config =
    (Harness.Campaign.run_one proto ~config scenario).Harness.Campaign
    .violations
  in
  let b = verdicts Amcast.Protocol.Config.throughput in
  let r = verdicts Amcast.Protocol.Config.reference in
  b = r
  || QCheck2.Test.fail_reportf
       "seed %d%s: batched verdicts %a, reference %a" seed
       (if with_nemesis then " (nemesis)" else "")
       Fmt.(Dump.list string)
       b
       Fmt.(Dump.list string)
       r

(* Fault-free knob grid: any (batch, delay, window) combination delivers
   exactly what the reference does, with identical verdicts. *)
let prop_knob_grid (seed, batch_max, delay_ms, pipeline) =
  let scenario =
    Harness.Campaign.random_scenario
      (Des.Rng.create seed)
      ~with_crashes:false ()
  in
  let outcome config = Harness.Campaign.run_one (module Amcast.A1 : Amcast.Protocol.S) ~config scenario in
  let b =
    outcome
      {
        Amcast.Protocol.Config.default with
        Amcast.Protocol.Config.batch_max;
        batch_delay = ms delay_ms;
        pipeline;
      }
  in
  let r = outcome Amcast.Protocol.Config.reference in
  (b.Harness.Campaign.violations = r.Harness.Campaign.violations
  && b.Harness.Campaign.delivered = r.Harness.Campaign.delivered)
  || QCheck2.Test.fail_reportf
       "seed %d batch %d delay %dms window %d: %d/%a vs %d/%a" seed batch_max
       delay_ms pipeline b.Harness.Campaign.delivered
       Fmt.(Dump.list string)
       b.Harness.Campaign.violations r.Harness.Campaign.delivered
       Fmt.(Dump.list string)
       r.Harness.Campaign.violations

let differential_gen =
  QCheck2.Gen.(pair (int_bound 10_000) bool)

let knob_gen =
  QCheck2.Gen.(
    quad (int_bound 10_000) (int_range 1 8) (int_range 0 5) (int_range 1 4))

(* ---------- model-checked outcome sets ---------- *)

module EA1 = Mc.Explorer.Make (Amcast.A1)

let mc_cast at origin dest payload =
  { Harness.Workload.at = us at; origin; dest; payload }

let subset xs ys = List.for_all (fun x -> List.mem x ys) xs

(* Different origins: batches stay singletons (the batcher is per
   process), so the batched lane must reach exactly the unbatched
   outcome set under exhaustive exploration. *)
let test_mc_outcomes_distinct_origins () =
  let casts =
    [ mc_cast 1_000 0 [ 0; 1 ] "m0"; mc_cast 2_000 2 [ 0; 1 ] "m1" ]
  in
  let explore config =
    EA1.explore
      (EA1.make_setup ~reorder_bound:1 ~config
         ~topology:(Net.Topology.make ~sizes:[ 2; 2 ])
         casts)
  in
  let b = explore Amcast.Protocol.Config.throughput in
  let u = explore Amcast.Protocol.Config.default in
  Alcotest.(check bool) "batched exhaustive" true b.EA1.stats.EA1.exhaustive;
  Alcotest.(check bool) "unbatched exhaustive" true u.EA1.stats.EA1.exhaustive;
  Alcotest.(check bool) "batched clean" true (b.EA1.violation = None);
  Alcotest.(check (list int))
    "same outcome set" u.EA1.outcome_digests b.EA1.outcome_digests

(* Same origin, same instant: the two casts pack into one batch, which
   removes interleavings but must not invent outcomes — the batched
   outcome set is a non-empty subset of the unbatched one. *)
let test_mc_outcomes_packed_batch () =
  let casts =
    [ mc_cast 1_000 0 [ 0; 1 ] "m0"; mc_cast 1_000 0 [ 0; 1 ] "m1" ]
  in
  let explore config =
    EA1.explore
      (EA1.make_setup ~reorder_bound:1 ~config
         ~topology:(Net.Topology.make ~sizes:[ 2; 2 ])
         casts)
  in
  let b =
    explore
      {
        Amcast.Protocol.Config.throughput with
        Amcast.Protocol.Config.batch_max = 2;
      }
  in
  let u = explore Amcast.Protocol.Config.default in
  Alcotest.(check bool) "batched exhaustive" true b.EA1.stats.EA1.exhaustive;
  Alcotest.(check bool) "unbatched exhaustive" true u.EA1.stats.EA1.exhaustive;
  Alcotest.(check bool) "batched clean" true (b.EA1.violation = None);
  Alcotest.(check bool) "some outcome reached" true
    (b.EA1.outcome_digests <> []);
  Alcotest.(check bool) "no invented outcomes" true
    (subset b.EA1.outcome_digests u.EA1.outcome_digests)

(* ---------- suites ---------- *)

let suites =
  [
    ( "throughput-batcher",
      [
        Alcotest.test_case "max=1 is a synchronous bypass" `Quick
          test_batcher_bypass;
        Alcotest.test_case "size-triggered flush" `Quick
          test_batcher_size_trigger;
        Alcotest.test_case "timeout-triggered flush, oldest bucket first"
          `Quick test_batcher_timeout_trigger;
        Alcotest.test_case "size flush leaves other buckets buffered" `Quick
          test_batcher_size_flush_leaves_other_buckets;
        Alcotest.test_case "deployment: timer flush delivers" `Quick
          test_deploy_timeout_flush;
        Alcotest.test_case "deployment: full batches, per-cast delivery"
          `Quick test_deploy_size_flush;
        Alcotest.test_case "deployment: crash mid-batch stays clean" `Quick
          test_deploy_crash_mid_batch;
        Alcotest.test_case "uniform rmcast: ack coalescing saves messages"
          `Quick test_ack_coalescing;
      ] );
    ( "throughput-pipeline",
      [
        Alcotest.test_case "unused knobs leave runs bit-identical" `Quick
          test_unused_knobs_bit_identical;
        Alcotest.test_case "a1: window=4 under jitter, in-order decides"
          `Quick test_a1_pipelined;
        Alcotest.test_case "a2: window=4 under jitter, in-order decides"
          `Quick test_a2_pipelined;
        Alcotest.test_case "lease path: pipelined quiescence and GC" `Quick
          test_pipelined_quiescence_and_gc;
        Alcotest.test_case "regression: pipelined double-decide ordering"
          `Quick test_pipelined_double_decide_ordering;
      ] );
    ( "throughput-differential",
      [
        qcheck_case ~count:20
          ~name:"a1: batched verdicts = reference (crashes, nemesis)"
          differential_gen
          (prop_verdict_differential (module Amcast.A1 : Amcast.Protocol.S));
        qcheck_case ~count:20
          ~name:"a2: batched verdicts = reference (crashes, nemesis)"
          differential_gen
          (fun (seed, n) ->
            let scenario =
              Harness.Campaign.random_scenario
                (Des.Rng.create seed)
                ~broadcast_only:true ~with_crashes:true ~with_nemesis:n ()
            in
            let verdicts config =
              (Harness.Campaign.run_one
                 (module Amcast.A2 : Amcast.Protocol.S)
                 ~config scenario)
                .Harness.Campaign.violations
            in
            verdicts Amcast.Protocol.Config.throughput
            = verdicts Amcast.Protocol.Config.reference);
        qcheck_case ~count:25
          ~name:"a1: any knob combination delivers the reference outcome"
          knob_gen prop_knob_grid;
      ] );
    ( "throughput-mc",
      [
        Alcotest.test_case "distinct origins: outcome sets equal" `Quick
          test_mc_outcomes_distinct_origins;
        Alcotest.test_case "packed batch: no invented outcomes" `Quick
          test_mc_outcomes_packed_batch;
      ] );
  ]

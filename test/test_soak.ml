(* Randomised soak campaigns, one per protocol family — the same engine
   bin/amcast_soak drives, kept small enough for the test suite. *)

let campaign ?(broadcast_only = false) ?(with_crashes = false)
    ?(expect_genuine = false) ?config ?conflict ?(seed = 99) name proto =
  Alcotest.test_case name `Slow (fun () ->
      let summary =
        Harness.Campaign.run proto ?config ?conflict ~expect_genuine
          ~broadcast_only ~with_crashes ~seed ~runs:12 ()
      in
      (match summary.failures with
      | [] -> ()
      | o :: _ ->
        Alcotest.failf "campaign violation: %s"
          (String.concat "; " o.violations));
      Alcotest.(check int) "all clean" summary.runs summary.clean)

(* PR 6 observed the ring target exhausting the runner's [max_steps]
   runaway guard on amcast_soak's seed-0 scenario set; the root cause
   (stale entries pinning the token queue's filter) was fixed in the
   ring rework, with the minimized repro pinned by
   [test_scale.test_ring_livelock_regression]. This re-runs the original
   soak-level repro — the exact seed-0 campaign scenarios — and asserts
   every run drains (quiescence would flag a run saved only by the step
   guard). *)
let ring_seed0_regression =
  Alcotest.test_case "ring: seed-0 soak scenarios drain (PR 6 regression)"
    `Slow (fun () ->
      let scenarios = Harness.Campaign.scenarios ~seed:0 ~runs:12 () in
      let outcomes =
        Harness.Campaign.run_scenarios
          (module Amcast.Ring : Amcast.Protocol.S)
          ~expect_genuine:true ~check_quiescence:true scenarios
      in
      List.iter
        (fun (o : Harness.Campaign.outcome) ->
          if not o.drained then
            Alcotest.failf "seed %d did not drain (%d steps)"
              o.scenario.Harness.Campaign.seed o.steps;
          match o.violations with
          | [] -> ()
          | v -> Alcotest.failf "seed %d: %s" o.scenario.seed
                   (String.concat "; " v))
        outcomes)

let generic_key_config =
  {
    Amcast.Protocol.Config.default with
    conflict = Amcast.Conflict.payload_key;
  }

let suites =
  [
    ( "soak",
      [
        campaign ~with_crashes:true ~expect_genuine:true "a1"
          (module Amcast.A1 : Amcast.Protocol.S);
        campaign ~with_crashes:true ~broadcast_only:true "a2"
          (module Amcast.A2);
        campaign ~with_crashes:true "via-broadcast"
          (module Amcast.Via_broadcast);
        campaign ~with_crashes:true ~expect_genuine:true "fritzke"
          (module Amcast.Fritzke);
        campaign ~expect_genuine:true "skeen" (module Amcast.Skeen);
        campaign ~expect_genuine:true "generic (total conflict)"
          (module Amcast.Generic);
        campaign ~expect_genuine:true ~config:generic_key_config
          ~conflict:(Harness.Workload.conflict_spec 0.5)
          "generic (keyed conflicts)" (module Amcast.Generic);
        campaign ~expect_genuine:true "ring" (module Amcast.Ring);
        ring_seed0_regression;
        campaign ~expect_genuine:true "scalable" (module Amcast.Scalable);
        campaign ~broadcast_only:true "sequencer" (module Amcast.Sequencer);
      ] );
  ]

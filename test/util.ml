(* Shared helpers for the test suites. *)

let ms = Des.Sim_time.of_ms
let us = Des.Sim_time.of_us

let check_no_violations what violations =
  Alcotest.(check (list string)) what [] violations

(* Tiny substring search helper (stdlib has none). *)
let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  if nn = 0 then true
  else begin
    let found = ref false in
    for i = 0 to nh - nn do
      if (not !found) && String.sub haystack i nn = needle then found := true
    done;
    !found
  end

(* A fast latency model for tests: keeps the intra/inter asymmetry but with
   zero jitter so expectations are exact. *)
let crisp_latency =
  Net.Latency.uniform ~intra:(us 1_000) ~inter:(us 50_000) ()

let wan = Net.Latency.wan_default

let degree_of result id =
  match Harness.Metrics.latency_degree result id with
  | Some d -> d
  | None -> Alcotest.failf "message %a was never delivered" Runtime.Msg_id.pp id

let qcheck_case ?(count = 100) ~name gen prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name ~count gen prop)

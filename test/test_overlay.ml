(* Overlay graphs over the group ids: construction, deterministic routing
   tables, cut-edge analysis, the derived latency model, and the
   validation errors for malformed overlays and clique-assuming
   configuration (Workload destinations, topology/overlay mismatch). *)

open Net
module O = Overlay

(* ---------- construction ---------- *)

let test_kind_names () =
  List.iter
    (fun k ->
      Alcotest.(check (option string))
        "kind_of_name inverts kind_name"
        (Some (O.kind_name k))
        (Option.map O.kind_name (O.kind_of_name (O.kind_name k))))
    [ O.Clique; O.Hub; O.Ring; O.Tree ];
  Alcotest.(check bool) "unknown kind rejected" true (O.kind_of_name "torus" = None)

let test_clique_shape () =
  let ov = O.clique ~groups:4 in
  Alcotest.(check int) "edge count" 6 (List.length (O.edges ov));
  Alcotest.(check bool) "is_clique" true (O.is_clique ov);
  Alcotest.(check (list int)) "every other group adjacent" [ 0; 2; 3 ] (O.neighbors ov 1)

let test_hub_shape () =
  let ov = O.hub ~groups:4 in
  Alcotest.(check int) "edge count" 3 (List.length (O.edges ov));
  Alcotest.(check bool) "not a clique" false (O.is_clique ov);
  Alcotest.(check (list int)) "hub sees every spoke" [ 1; 2; 3 ] (O.neighbors ov 0);
  Alcotest.(check (list int)) "spokes see only the hub" [ 0 ] (O.neighbors ov 2)

let test_tree_shape () =
  let ov = O.tree ~groups:7 in
  Alcotest.(check int) "edge count" 6 (List.length (O.edges ov));
  (* Binary heap layout: group g's parent is (g-1)/2. *)
  Alcotest.(check (list int)) "root's children" [ 1; 2 ] (O.neighbors ov 0);
  Alcotest.(check (list int)) "interior node" [ 0; 3; 4 ] (O.neighbors ov 1);
  Alcotest.(check (list int)) "leaf" [ 2 ] (O.neighbors ov 6)

(* ---------- routing tables ---------- *)

let test_hub_routes () =
  let ov = O.hub ~groups:4 in
  Alcotest.(check (list int)) "spoke-to-spoke via the hub" [ 1; 0; 3 ]
    (O.route ov ~src:1 ~dst:3);
  Alcotest.(check int) "two hops" 2 (O.hops ov ~src:1 ~dst:3);
  Alcotest.(check int) "summed intercontinental delay" 100_000
    (O.dist_us ov ~src:1 ~dst:3);
  Alcotest.(check int) "both links cross continents" 2
    (O.inter_crossings ov ~src:1 ~dst:3);
  Alcotest.(check int) "adjacent pair is direct" 1 (O.hops ov ~src:0 ~dst:2)

let test_ring_routes () =
  let ov = O.ring ~groups:5 in
  (* 0 -> 2: two hops via 1 beat three via 4. *)
  Alcotest.(check (list int)) "shorter arc" [ 0; 1; 2 ] (O.route ov ~src:0 ~dst:2);
  Alcotest.(check (list int)) "wraps the other way" [ 0; 4; 3 ]
    (O.route ov ~src:0 ~dst:3);
  Alcotest.(check int) "continental delay summed" 40_000 (O.dist_us ov ~src:0 ~dst:2);
  Alcotest.(check int) "no intercontinental links" 0 (O.inter_crossings ov ~src:0 ~dst:2)

(* Regression for the Floyd–Warshall next-hop corruption: with [k = i]
   admitted as an interior point, the relaxation's candidate tuple reused
   [next.(i).(i) = i], whose low id won delay/hop ties and made a group
   its own next hop — FlexCast then forwarded to itself forever. The
   first hop must always be a neighbor of the source, never the source. *)
let test_next_hop_is_a_proper_neighbor () =
  List.iter
    (fun ov ->
      let g = O.groups ov in
      for i = 0 to g - 1 do
        let nbrs = O.neighbors ov i in
        for j = 0 to g - 1 do
          if i <> j then begin
            let n = O.next_hop ov ~src:i ~dst:j in
            if n = i || not (List.mem n nbrs) then
              Alcotest.failf "next_hop %d->%d = %d is not a proper neighbor" i j n
          end
        done
      done)
    [ O.hub ~groups:5; O.ring ~groups:6; O.tree ~groups:7; O.clique ~groups:4 ]

let test_routes_are_deterministic_functions_of_edges () =
  let a = O.tree ~groups:7 and b = O.tree ~groups:7 in
  for i = 0 to 6 do
    for j = 0 to 6 do
      Alcotest.(check (list int))
        (Fmt.str "route %d->%d" i j)
        (O.route a ~src:i ~dst:j) (O.route b ~src:i ~dst:j)
    done
  done

(* ---------- participants ---------- *)

let test_participants_cover_stamp_routes () =
  let ov = O.hub ~groups:4 in
  (* src group 1 casting to {1, 3}: the data route 1-0-3 and the
     dest-pair stamp route pull in the hub. *)
  Alcotest.(check (list int)) "hub is a participant" [ 0; 1; 3 ]
    (O.participants ov ~src:1 ~dsts:[ 1; 3 ]);
  (* A cast the hub serves directly involves nobody else. *)
  Alcotest.(check (list int)) "direct cast stays minimal" [ 0; 2 ]
    (O.participants ov ~src:0 ~dsts:[ 2 ]);
  Alcotest.(check (list int)) "single-group cast involves nobody else" [ 1 ]
    (O.participants ov ~src:1 ~dsts:[ 1 ])

(* ---------- cut edges ---------- *)

let test_cut_edges () =
  Alcotest.(check (list (pair int int))) "every hub edge is a bridge"
    [ (0, 1); (0, 2); (0, 3) ]
    (O.cut_edges (O.hub ~groups:4));
  Alcotest.(check (list (pair int int))) "rings have no bridges" []
    (O.cut_edges (O.ring ~groups:5));
  Alcotest.(check (list (pair int int))) "cliques have no bridges" []
    (O.cut_edges (O.clique ~groups:3));
  Alcotest.(check int) "every tree edge is a bridge" 6
    (List.length (O.cut_edges (O.tree ~groups:7)))

let test_side_of_cut () =
  let ov = O.hub ~groups:4 in
  let a, b = O.side_of_cut ov ~cut:(0, 2) in
  Alcotest.(check (list int)) "hub keeps the other spokes" [ 0; 1; 3 ] a;
  Alcotest.(check (list int)) "the severed spoke is alone" [ 2 ] b;
  let subtree_a, subtree_b = O.side_of_cut (O.tree ~groups:7) ~cut:(1, 3) in
  Alcotest.(check (list int)) "subtree split" [ 0; 1; 2; 4; 5; 6 ] subtree_a;
  Alcotest.(check (list int)) "severed subtree" [ 3 ] subtree_b;
  match O.side_of_cut (O.ring ~groups:4) ~cut:(0, 1) with
  | _ -> Alcotest.fail "ring edge accepted as a bridge"
  | exception Invalid_argument _ -> ()

(* ---------- derived latency ---------- *)

let test_to_latency_uses_routed_delays () =
  let ov = O.hub ~groups:3 in
  let l = O.to_latency ov in
  Alcotest.(check int) "adjacent pair: one link" 50_000
    (Des.Sim_time.to_us (Latency.base l ~src_group:0 ~dst_group:1));
  Alcotest.(check int) "spoke pair: routed delay" 100_000
    (Des.Sim_time.to_us (Latency.base l ~src_group:1 ~dst_group:2));
  Alcotest.(check int) "intra-group default" 1_000
    (Des.Sim_time.to_us (Latency.base l ~src_group:1 ~dst_group:1));
  (* Zero jitter by default: the sample equals the base, so overlay
     latencies are model-checking safe. *)
  let rng = Des.Rng.create 42 in
  Alcotest.(check int) "no jitter drawn" 100_000
    (Des.Sim_time.to_us (Latency.sample l rng ~src_group:1 ~dst_group:2))

(* ---------- validation errors ---------- *)

let expect_invalid name f =
  match f () with
  | _ -> Alcotest.failf "%s: accepted" name
  | exception Invalid_argument _ -> ()

let test_malformed_overlays_rejected () =
  expect_invalid "disconnected" (fun () ->
      O.of_edges ~groups:4 [ (0, 1, O.Metro); (2, 3, O.Metro) ]);
  expect_invalid "self-loop" (fun () -> O.of_edges ~groups:2 [ (1, 1, O.Metro) ]);
  expect_invalid "out-of-range endpoint" (fun () ->
      O.of_edges ~groups:2 [ (0, 2, O.Metro) ]);
  expect_invalid "one pair, two classes" (fun () ->
      O.of_edges ~groups:2 [ (0, 1, O.Metro); (1, 0, O.Continental) ]);
  expect_invalid "no groups" (fun () -> O.of_edges ~groups:0 []);
  expect_invalid "two-group ring" (fun () -> O.ring ~groups:2);
  expect_invalid "of_kind custom" (fun () -> O.of_kind O.Custom ~groups:3)

let test_check_topology_mismatch () =
  let ov = O.hub ~groups:3 in
  O.check_topology ov (Topology.symmetric ~groups:3 ~per_group:2);
  expect_invalid "group-count mismatch" (fun () ->
      O.check_topology ov (Topology.symmetric ~groups:4 ~per_group:2))

(* ---------- Workload destination validation ---------- *)

let test_workload_fixed_groups_validated () =
  let topo = Topology.symmetric ~groups:3 ~per_group:2 in
  let gen dest =
    Harness.Workload.generate ~rng:(Des.Rng.create 1) ~topology:topo ~n:4 ~dest
      ~arrival:(`Every (Des.Sim_time.of_ms 10))
      ()
  in
  expect_invalid "empty group list" (fun () ->
      gen (Harness.Workload.Fixed_groups []));
  expect_invalid "out-of-range group" (fun () ->
      gen (Harness.Workload.Fixed_groups [ 0; 3 ]));
  expect_invalid "negative group" (fun () ->
      gen (Harness.Workload.Fixed_groups [ -1 ]));
  let w = gen (Harness.Workload.Fixed_groups [ 0; 2 ]) in
  List.iter
    (fun (c : Harness.Workload.cast) ->
      Alcotest.(check (list int)) "casts stay inside the listed groups" []
        (List.filter (fun g -> g <> 0 && g <> 2) c.dest))
    w

let suites =
  [
    ( "overlay",
      [
        Alcotest.test_case "kind names round-trip" `Quick test_kind_names;
        Alcotest.test_case "clique shape" `Quick test_clique_shape;
        Alcotest.test_case "hub shape" `Quick test_hub_shape;
        Alcotest.test_case "tree shape" `Quick test_tree_shape;
        Alcotest.test_case "hub routes via the hub" `Quick test_hub_routes;
        Alcotest.test_case "ring takes the shorter arc" `Quick test_ring_routes;
        Alcotest.test_case "next hop is a proper neighbor (FW regression)"
          `Quick test_next_hop_is_a_proper_neighbor;
        Alcotest.test_case "routing tables are deterministic" `Quick
          test_routes_are_deterministic_functions_of_edges;
        Alcotest.test_case "participants cover stamp routes" `Quick
          test_participants_cover_stamp_routes;
        Alcotest.test_case "cut edges" `Quick test_cut_edges;
        Alcotest.test_case "side_of_cut splits at a bridge" `Quick
          test_side_of_cut;
        Alcotest.test_case "to_latency uses routed delays" `Quick
          test_to_latency_uses_routed_delays;
        Alcotest.test_case "malformed overlays rejected" `Quick
          test_malformed_overlays_rejected;
        Alcotest.test_case "overlay/topology mismatch rejected" `Quick
          test_check_topology_mismatch;
        Alcotest.test_case "workload Fixed_groups validated" `Quick
          test_workload_fixed_groups_validated;
      ] );
  ]

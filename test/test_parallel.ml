(* The parallel execution layer: Harness.Pool semantics and the
   bit-identical-summary guarantee of Campaign.run_parallel. *)

let heavy i =
  (* A little CPU per item so chunks genuinely interleave across domains. *)
  let acc = ref i in
  for _ = 1 to 1_000 do
    acc := (!acc * 31) + 7
  done;
  (i, !acc)

let test_pool_matches_sequential_map () =
  let items = Array.init 37 (fun i -> i) in
  let expected = Array.map heavy items in
  List.iter
    (fun domains ->
      Alcotest.(check (array (pair int int)))
        (Fmt.str "domains=%d" domains)
        expected
        (Harness.Pool.map ~domains heavy items))
    [ 1; 2; 4; 7 ]

let test_pool_default_domains () =
  let items = Array.init 5 (fun i -> i) in
  Alcotest.(check (array (pair int int)))
    "default domain count" (Array.map heavy items)
    (Harness.Pool.map heavy items)

let test_pool_edge_sizes () =
  Alcotest.(check (array int)) "empty" [||]
    (Harness.Pool.map ~domains:4 (fun x -> x) [||]);
  Alcotest.(check (array int)) "more domains than items" [| 10; 20 |]
    (Harness.Pool.map ~domains:16 (fun x -> x * 10) [| 1; 2 |])

let test_pool_invalid_domains () =
  Alcotest.check_raises "domains = 0 rejected"
    (Invalid_argument "Pool.map: domains must be >= 1") (fun () ->
      ignore (Harness.Pool.map ~domains:0 Fun.id [| 1 |]))

let test_pool_propagates_exception () =
  Alcotest.check_raises "worker failure reaches the caller"
    (Failure "boom") (fun () ->
      ignore
        (Harness.Pool.map ~domains:3
           (fun i -> if i = 11 then failwith "boom" else i)
           (Array.init 20 Fun.id)))

let test_parallel_outcomes_in_scenario_order () =
  let ss =
    Harness.Campaign.scenarios ~with_crashes:false ~seed:5 ~runs:8 ()
  in
  let outcomes =
    Harness.Campaign.run_scenarios_parallel
      (module Amcast.Skeen : Amcast.Protocol.S)
      ~domains:4 ss
  in
  Alcotest.(check (list int))
    "outcome i belongs to scenario i"
    (List.map (fun (s : Harness.Campaign.scenario) -> s.seed) ss)
    (List.map
       (fun (o : Harness.Campaign.outcome) -> o.scenario.seed)
       outcomes)

(* The tentpole guarantee: for identical seeds, the parallel campaign's
   summary — violations, delivered counts, per-scenario outcomes, event
   counts — is structurally identical to the sequential one's, for any
   domain count. *)
let determinism ?broadcast_only ?(with_crashes = true) name proto =
  Alcotest.test_case name `Slow (fun () ->
      let seq =
        Harness.Campaign.run proto ?broadcast_only ~with_crashes ~seed:42
          ~runs:10 ()
      in
      List.iter
        (fun domains ->
          let par =
            Harness.Campaign.run_parallel proto ?broadcast_only ~with_crashes
              ~domains ~seed:42 ~runs:10 ()
          in
          Alcotest.(check bool)
            (Fmt.str "summary identical at %d domains" domains)
            true (par = seq))
        [ 1; 4 ];
      Alcotest.(check bool) "non-trivial campaign" true (seq.total_steps > 0))

let suites =
  [
    ( "parallel",
      [
        Alcotest.test_case "pool matches sequential map" `Quick
          test_pool_matches_sequential_map;
        Alcotest.test_case "pool default domain count" `Quick
          test_pool_default_domains;
        Alcotest.test_case "pool edge sizes" `Quick test_pool_edge_sizes;
        Alcotest.test_case "pool rejects bad domain count" `Quick
          test_pool_invalid_domains;
        Alcotest.test_case "pool propagates exceptions" `Quick
          test_pool_propagates_exception;
        Alcotest.test_case "parallel outcomes keep scenario order" `Quick
          test_parallel_outcomes_in_scenario_order;
        determinism ~with_crashes:true "campaign determinism: a1 (crashes)"
          (module Amcast.A1 : Amcast.Protocol.S);
        determinism ~broadcast_only:true ~with_crashes:true
          "campaign determinism: a2 (broadcast, crashes)"
          (module Amcast.A2);
        determinism ~with_crashes:false
          "campaign determinism: ring (failure-free)"
          (module Amcast.Ring);
      ] );
  ]

open Des
open Net

let test_workload_single () =
  match
    Harness.Workload.single ~at:(Sim_time.of_ms 3) ~origin:2 ~dest:[ 1 ] ()
  with
  | [ c ] ->
    Alcotest.(check int) "origin" 2 c.Harness.Workload.origin;
    Alcotest.(check (list int)) "dest" [ 1 ] c.dest;
    Alcotest.(check int) "time" 3_000 (Sim_time.to_us c.at)
  | _ -> Alcotest.fail "expected one cast"

let test_workload_generate_counts () =
  let topo = Topology.symmetric ~groups:3 ~per_group:2 in
  let rng = Rng.create 1 in
  let w =
    Harness.Workload.generate ~rng ~topology:topo ~n:50
      ~dest:(Harness.Workload.Random_groups 2)
      ~arrival:(`Every (Sim_time.of_ms 5))
      ()
  in
  Alcotest.(check int) "n casts" 50 (List.length w);
  List.iter
    (fun (c : Harness.Workload.cast) ->
      if c.dest = [] then Alcotest.fail "empty dest";
      if List.length c.dest > 2 then Alcotest.fail "dest too large";
      if c.origin < 0 || c.origin >= 6 then Alcotest.fail "bad origin")
    w;
  (* Fixed spacing: strictly increasing times. *)
  let times = List.map (fun (c : Harness.Workload.cast) -> c.at) w in
  let rec increasing = function
    | a :: (b :: _ as rest) -> Sim_time.compare a b < 0 && increasing rest
    | _ -> true
  in
  Alcotest.(check bool) "increasing times" true (increasing times)

let test_workload_poisson_positive_gaps () =
  let topo = Topology.symmetric ~groups:2 ~per_group:1 in
  let rng = Rng.create 2 in
  let w =
    Harness.Workload.generate ~rng ~topology:topo ~n:100
      ~dest:Harness.Workload.To_all_groups
      ~arrival:(`Poisson (Sim_time.of_ms 10))
      ()
  in
  let times = List.map (fun (c : Harness.Workload.cast) -> c.at) w in
  let rec nondecreasing = function
    | a :: (b :: _ as rest) -> Sim_time.compare a b <= 0 && nondecreasing rest
    | _ -> true
  in
  Alcotest.(check bool) "nondecreasing" true (nondecreasing times)

let test_workload_origins_restricted () =
  let topo = Topology.symmetric ~groups:2 ~per_group:2 in
  let rng = Rng.create 3 in
  let w =
    Harness.Workload.generate ~rng ~topology:topo ~n:20
      ~dest:Harness.Workload.To_all_groups
      ~arrival:(`Every (Sim_time.of_ms 1))
      ~origins:[ 1; 3 ] ()
  in
  List.iter
    (fun (c : Harness.Workload.cast) ->
      if not (List.mem c.origin [ 1; 3 ]) then Alcotest.fail "bad origin")
    w

(* The checker must actually detect violations: feed it a hand-built bad
   run. A violation-blind checker would silently bless every protocol. *)
let bad_run () =
  let topo = Topology.symmetric ~groups:2 ~per_group:1 in
  let id0 = Runtime.Msg_id.make ~origin:0 ~seq:0 in
  let id1 = Runtime.Msg_id.make ~origin:1 ~seq:0 in
  let m0 = Amcast.Msg.make ~id:id0 ~dest:[ 0; 1 ] "a" in
  let m1 = Amcast.Msg.make ~id:id1 ~dest:[ 0; 1 ] "b" in
  let mk_del pid msg at lc =
    { Harness.Run_result.pid; msg; at = Sim_time.of_ms at; lc }
  in
  Harness.Run_result.make ~topology:topo
    ~casts:
      [
        { msg = m0; origin = 0; at = Sim_time.of_ms 1; lc = 0 };
        { msg = m1; origin = 1; at = Sim_time.of_ms 1; lc = 0 };
      ]
    ~deliveries:
      [
        (* p0 delivers m0 then m1; p1 delivers m1 then m0: order violation.
           Also p0 delivers m0 twice: integrity violation. *)
        mk_del 0 m0 2 1;
        mk_del 0 m0 3 1;
        mk_del 0 m1 4 1;
        mk_del 1 m1 2 1;
        mk_del 1 m0 3 1;
      ]
    ~crashed:[]
    ~trace:(Runtime.Trace.create ())
    ~inter_group_msgs:0 ~intra_group_msgs:0 ~end_time:(Sim_time.of_ms 10)
    ~drained:true ~events_executed:0 ()

let test_checker_detects_duplicate () =
  let r = bad_run () in
  Alcotest.(check bool) "duplicate detected" true
    (Harness.Checker.uniform_integrity r <> [])

let test_checker_detects_order_violation () =
  let r = bad_run () in
  Alcotest.(check bool) "prefix violation detected" true
    (Harness.Checker.uniform_prefix_order r <> [])

let test_checker_detects_missing_delivery () =
  let r = bad_run () in
  (* m0 delivered somewhere, but p1 (a correct addressee) never got it. *)
  let r =
    {
      r with
      Harness.Run_result.deliveries =
        [ { pid = 0; msg = (List.hd r.casts).msg; at = Sim_time.of_ms 2; lc = 1 } ];
      index_memo = None;
    }
  in
  Alcotest.(check bool) "agreement violation detected" true
    (Harness.Checker.uniform_agreement r <> []);
  Alcotest.(check bool) "validity violation detected" true
    (Harness.Checker.validity r <> [])

let test_checker_accepts_clean_run () =
  let topo = Topology.symmetric ~groups:2 ~per_group:1 in
  let id0 = Runtime.Msg_id.make ~origin:0 ~seq:0 in
  let m0 = Amcast.Msg.make ~id:id0 ~dest:[ 0; 1 ] "a" in
  let r =
    Harness.Run_result.make ~topology:topo
      ~casts:[ { msg = m0; origin = 0; at = Sim_time.of_ms 1; lc = 0 } ]
      ~deliveries:
        [
          { pid = 0; msg = m0; at = Sim_time.of_ms 2; lc = 2 };
          { pid = 1; msg = m0; at = Sim_time.of_ms 2; lc = 2 };
        ]
      ~crashed:[]
      ~trace:(Runtime.Trace.create ())
      ~inter_group_msgs:2 ~intra_group_msgs:0 ~end_time:(Sim_time.of_ms 10)
      ~drained:true ~events_executed:0 ()
  in
  Util.check_no_violations "clean" (Harness.Checker.check_all r)

let test_metrics_latency_degree () =
  let topo = Topology.symmetric ~groups:2 ~per_group:1 in
  let id0 = Runtime.Msg_id.make ~origin:0 ~seq:0 in
  let m0 = Amcast.Msg.make ~id:id0 ~dest:[ 0; 1 ] "a" in
  let r =
    Harness.Run_result.make ~topology:topo
      ~casts:[ { msg = m0; origin = 0; at = Sim_time.of_ms 1; lc = 3 } ]
      ~deliveries:
        [
          { pid = 0; msg = m0; at = Sim_time.of_ms 2; lc = 5 };
          { pid = 1; msg = m0; at = Sim_time.of_ms 4; lc = 4 };
        ]
      ~crashed:[]
      ~trace:(Runtime.Trace.create ())
      ~inter_group_msgs:0 ~intra_group_msgs:0 ~end_time:(Sim_time.of_ms 10)
      ~drained:true ~events_executed:0 ()
  in
  Alcotest.(check (option int)) "max over deliverers" (Some 2)
    (Harness.Metrics.latency_degree r id0);
  Alcotest.(check (option int)) "wall clock to last delivery"
    (Some 3_000)
    (Option.map Sim_time.to_us (Harness.Metrics.delivery_latency r id0))

let test_lclock_module () =
  Alcotest.(check int) "local keeps" 5 (Lclock.on_local 5);
  Alcotest.(check int) "intra send keeps" 5
    (Lclock.on_send ~same_group:true 5);
  Alcotest.(check int) "inter send ticks" 6
    (Lclock.on_send ~same_group:false 5);
  Alcotest.(check int) "receive maxes" 9 (Lclock.on_receive 4 ~carried:9);
  Alcotest.(check int) "receive keeps own" 9 (Lclock.on_receive 9 ~carried:4);
  Alcotest.(check (option int)) "degree" (Some 2)
    (Lclock.latency_degree ~cast:3 ~deliveries:[ 4; 5; 4 ]);
  Alcotest.(check (option int)) "undelivered" None
    (Lclock.latency_degree ~cast:3 ~deliveries:[])

let test_msg_module () =
  let id = Runtime.Msg_id.make ~origin:1 ~seq:0 in
  let m = Amcast.Msg.make ~id ~dest:[ 2; 0; 2 ] "x" in
  Alcotest.(check (list int)) "dest normalised" [ 0; 2 ] m.dest;
  Alcotest.(check bool) "single group" false (Amcast.Msg.is_single_group m);
  Alcotest.check_raises "empty dest rejected"
    (Invalid_argument "Msg.make: empty destination set") (fun () ->
      ignore (Amcast.Msg.make ~id ~dest:[] "x"));
  let topo = Topology.symmetric ~groups:3 ~per_group:2 in
  Alcotest.(check (list int)) "dest pids" [ 0; 1; 4; 5 ]
    (Amcast.Msg.dest_pids topo m);
  Alcotest.(check bool) "ts order: ts dominates" true
    (Amcast.Msg.compare_ts_id (1, m) (2, m) < 0);
  let id2 = Runtime.Msg_id.make ~origin:0 ~seq:0 in
  let m2 = Amcast.Msg.make ~id:id2 ~dest:[ 0 ] "y" in
  Alcotest.(check bool) "ts order: id breaks ties" true
    (Amcast.Msg.compare_ts_id (1, m2) (1, m) < 0)


let test_stats_basics () =
  let xs = [ 4.; 1.; 3.; 2.; 5. ] in
  Alcotest.(check (option (float 1e-9))) "mean" (Some 3.) (Harness.Stats.mean xs);
  Alcotest.(check (option (float 1e-9))) "median" (Some 3.)
    (Harness.Stats.median xs);
  Alcotest.(check (option (float 1e-9))) "p100 = max" (Some 5.)
    (Harness.Stats.percentile 100. xs);
  Alcotest.(check (option (float 1e-9))) "p1 = min" (Some 1.)
    (Harness.Stats.percentile 1. xs);
  Alcotest.(check (option (float 1e-6))) "stddev"
    (Some (sqrt 2.5))
    (Harness.Stats.stddev xs);
  Alcotest.(check (option (pair (float 0.) (float 0.)))) "min max"
    (Some (1., 5.))
    (Harness.Stats.min_max xs);
  Alcotest.(check (option (float 0.))) "empty mean" None (Harness.Stats.mean []);
  Alcotest.(check (option (float 0.))) "singleton stddev" None
    (Harness.Stats.stddev [ 1. ])

let test_stats_histogram () =
  let h = Harness.Stats.histogram ~buckets:2 [ 0.; 1.; 9.; 10. ] in
  Alcotest.(check int) "buckets" 2 (List.length h);
  Alcotest.(check int) "total count preserved" 4
    (List.fold_left (fun acc (_, c) -> acc + c) 0 h);
  Alcotest.(check (list (pair (float 0.) int))) "empty input" []
    (Harness.Stats.histogram ~buckets:3 [])

let test_complexity_formulas () =
  (* Spot values of the closed forms. *)
  let open Harness.Complexity in
  Alcotest.(check int) "ring degree" 4 (ring ~k:3 ~d:2).latency_degree;
  Alcotest.(check int) "scalable degree" 4 (scalable ~k:3 ~d:2).latency_degree;
  Alcotest.(check int) "a1 degree" 2 (a1 ~k:3 ~d:2).latency_degree;
  Alcotest.(check int) "a2 degree" 1 (a2 ~n:6).latency_degree;
  Alcotest.(check int) "a1 = fritzke msgs" (fritzke ~k:3 ~d:2).inter_msgs
    (a1 ~k:3 ~d:2).inter_msgs;
  (* The orderings Figure 1 claims hold across a parameter sweep. *)
  List.iter
    (fun (k, d) ->
      Alcotest.(check bool)
        (Fmt.str "multicast ordering at k=%d d=%d" k d)
        true
        (Harness.Complexity.multicast_ordering_holds ~k ~d))
    [ (2, 1); (2, 2); (3, 2); (4, 3); (5, 4) ];
  List.iter
    (fun n ->
      Alcotest.(check bool)
        (Fmt.str "broadcast ordering at n=%d" n)
        true
        (Harness.Complexity.broadcast_ordering_holds ~n))
    [ 4; 6; 9; 16 ]

let test_complexity_matches_measured_a1 () =
  (* The closed form for A1's inter-group messages is exact in a
     failure-free single-message run, not just asymptotic. *)
  let module R = Harness.Runner.Make (Amcast.A1) in
  List.iter
    (fun (k, d) ->
      let topo = Topology.symmetric ~groups:4 ~per_group:d in
      let dep = R.deploy ~latency:Util.crisp_latency topo in
      let origin = List.hd (Topology.members topo (k - 1)) in
      ignore
        (R.cast_at dep ~at:(Sim_time.of_ms 1) ~origin
           ~dest:(List.init k Fun.id) ());
      let r = R.run_deployment dep in
      Alcotest.(check int)
        (Fmt.str "A1 msgs at k=%d d=%d" k d)
        (Harness.Complexity.a1 ~k ~d).inter_msgs
        r.inter_group_msgs)
    [ (2, 1); (2, 2); (3, 2); (4, 2) ]

let test_causal_single_message_agrees () =
  (* On a single-message run, the causal-path degree and the Lamport-clock
     degree must be identical. *)
  let module R = Harness.Runner.Make (Amcast.A1) in
  let topo = Topology.symmetric ~groups:3 ~per_group:2 in
  let dep = R.deploy ~latency:Util.crisp_latency topo in
  let id = R.cast_at dep ~at:(Sim_time.of_ms 1) ~origin:0 ~dest:[ 0; 1; 2 ] () in
  let r = R.run_deployment dep in
  let causal = Harness.Causal.of_trace r.trace in
  Alcotest.(check (option int)) "agree"
    (Harness.Metrics.latency_degree r id)
    (Harness.Causal.latency_degree causal id)

let test_causal_precedence () =
  (* m2 is cast by a process after it delivered m1: causally ordered. *)
  let module R = Harness.Runner.Make (Amcast.A2) in
  let topo = Topology.symmetric ~groups:2 ~per_group:1 in
  let dep = R.deploy ~latency:Util.crisp_latency topo in
  let m1 = R.cast_at dep ~at:(Sim_time.of_ms 1) ~origin:0 ~dest:[ 0; 1 ] () in
  ignore (R.run_deployment dep);
  let m2 =
    R.cast_at dep
      ~at:(Sim_time.add (Runtime.Engine.now (R.engine dep)) (Sim_time.of_ms 5))
      ~origin:1 ~dest:[ 0; 1 ] ()
  in
  let r = R.run_deployment dep in
  let causal = Harness.Causal.of_trace r.trace in
  Alcotest.(check bool) "m1 precedes m2" true
    (Harness.Causal.causally_precedes causal m1 m2);
  Alcotest.(check bool) "m2 does not precede m1" false
    (Harness.Causal.causally_precedes causal m2 m1)

let test_trace_render () =
  let module R = Harness.Runner.Make (Amcast.Skeen) in
  let topo = Topology.symmetric ~groups:2 ~per_group:1 in
  let r =
    R.run ~latency:Util.crisp_latency topo
      (Harness.Workload.single ~at:(Sim_time.of_ms 1) ~origin:0
         ~dest:[ 0; 1 ] ())
  in
  let s = Harness.Trace_render.timeline ~topology:topo r.trace in
  Alcotest.(check bool) "mentions the cast" true
    (Util.contains s "CAST m0.0");
  Alcotest.(check bool) "mentions a delivery" true
    (Util.contains s "DLVR m0.0");
  let truncated =
    Harness.Trace_render.timeline ~max_rows:2 ~topology:topo r.trace
  in
  Alcotest.(check bool) "truncation marker" true
    (Util.contains truncated "truncated")

let test_campaign_small () =
  let summary =
    Harness.Campaign.run
      (module Amcast.A1)
      ~expect_genuine:true ~with_crashes:true ~seed:17 ~runs:6 ()
  in
  Alcotest.(check int) "all clean" summary.runs summary.clean;
  Alcotest.(check bool) "delivered something" true
    (summary.delivered_total > 0)

let test_campaign_reports_scenarios () =
  (* The random scenario generator stays within its documented bounds. *)
  let rng = Rng.create 23 in
  for _ = 1 to 100 do
    let s = Harness.Campaign.random_scenario rng () in
    if s.groups < 2 || s.groups > 4 then Alcotest.fail "groups out of range";
    if s.per_group < 1 || s.per_group > 3 then
      Alcotest.fail "per_group out of range";
    if s.n_msgs < 1 || s.n_msgs > 12 then Alcotest.fail "n_msgs out of range"
  done

let suites =
  [
    ( "harness",
      [
        Alcotest.test_case "workload single" `Quick test_workload_single;
        Alcotest.test_case "workload generate" `Quick
          test_workload_generate_counts;
        Alcotest.test_case "workload poisson" `Quick
          test_workload_poisson_positive_gaps;
        Alcotest.test_case "workload origins" `Quick
          test_workload_origins_restricted;
        Alcotest.test_case "checker: duplicates" `Quick
          test_checker_detects_duplicate;
        Alcotest.test_case "checker: order violation" `Quick
          test_checker_detects_order_violation;
        Alcotest.test_case "checker: missing delivery" `Quick
          test_checker_detects_missing_delivery;
        Alcotest.test_case "checker: clean run accepted" `Quick
          test_checker_accepts_clean_run;
        Alcotest.test_case "metrics: latency degree" `Quick
          test_metrics_latency_degree;
        Alcotest.test_case "lclock rules" `Quick test_lclock_module;
        Alcotest.test_case "msg module" `Quick test_msg_module;
        Alcotest.test_case "stats basics" `Quick test_stats_basics;
        Alcotest.test_case "stats histogram" `Quick test_stats_histogram;
        Alcotest.test_case "complexity formulas" `Quick
          test_complexity_formulas;
        Alcotest.test_case "complexity matches measured (A1)" `Quick
          test_complexity_matches_measured_a1;
        Alcotest.test_case "causal agrees on single message" `Quick
          test_causal_single_message_agrees;
        Alcotest.test_case "causal precedence" `Quick test_causal_precedence;
        Alcotest.test_case "trace renderer" `Quick test_trace_render;
        Alcotest.test_case "campaign: small soak" `Quick test_campaign_small;
        Alcotest.test_case "campaign: scenario bounds" `Quick
          test_campaign_reports_scenarios;
      ] );
  ]

(* Network partitions: in the asynchronous model a partition is an
   arbitrarily long message delay, so safety must hold throughout and
   liveness must resume once the partition heals. *)

open Des
open Net
open Runtime

let test_network_partition_buffers () =
  let topo = Topology.symmetric ~groups:2 ~per_group:1 in
  let sched = Scheduler.create () in
  let received = ref [] in
  let net =
    Network.create ~sched ~topology:topo ~latency:Util.crisp_latency
      ~rng:(Rng.create 0)
      ~deliver:(fun ~src:_ ~dst:_ payload ->
        received := (payload, Scheduler.now sched) :: !received)
  in
  Network.partition net ~src_group:0 ~dst_group:1;
  Network.send net ~src:0 ~dst:1 "parked";
  Scheduler.run ~until:(Sim_time.of_ms 500) sched;
  Alcotest.(check int) "nothing through the partition" 0
    (List.length !received);
  Alcotest.(check int) "message parked, not dropped" 1 (Network.in_flight net);
  ignore
    (Scheduler.at sched (Sim_time.of_ms 600) (fun () ->
         Network.heal net ~src_group:0 ~dst_group:1));
  Scheduler.run sched;
  (match !received with
  | [ ("parked", t) ] ->
    if Sim_time.compare t (Sim_time.of_ms 600) < 0 then
      Alcotest.fail "delivered before heal"
  | _ -> Alcotest.fail "expected exactly the parked message");
  Alcotest.(check int) "drained" 0 (Network.in_flight net)

let test_network_partition_groups_and_heal_all () =
  let topo = Topology.symmetric ~groups:3 ~per_group:1 in
  let sched = Scheduler.create () in
  let received = ref 0 in
  let net =
    Network.create ~sched ~topology:topo ~latency:Util.crisp_latency
      ~rng:(Rng.create 0)
      ~deliver:(fun ~src:_ ~dst:_ _ -> incr received)
  in
  Network.partition_groups net [ 0 ] [ 1; 2 ];
  Network.send net ~src:0 ~dst:1 ();
  Network.send net ~src:1 ~dst:0 ();
  Network.send net ~src:1 ~dst:2 (); (* inside the majority side: flows *)
  Scheduler.run ~until:(Sim_time.of_ms 400) sched;
  Alcotest.(check int) "only the unpartitioned message" 1 !received;
  ignore
    (Scheduler.at sched (Sim_time.of_ms 500) (fun () -> Network.heal_all net));
  Scheduler.run sched;
  Alcotest.(check int) "all delivered after heal" 3 !received

(* A1 across a partition: the message is cast while the two destination
   groups cannot talk; each group stamps it locally but nobody can finish
   stage s1. Nothing may be delivered inconsistently meanwhile, and healing
   completes the protocol. *)
let test_a1_delivery_waits_for_heal () =
  let module R = Harness.Runner.Make (Amcast.A1) in
  let topo = Topology.symmetric ~groups:2 ~per_group:2 in
  let d = R.deploy ~latency:Util.crisp_latency topo in
  let net = Engine.network (R.engine d) in
  Engine.at (R.engine d) (Sim_time.of_us 500) (fun () ->
      Network.partition_groups net [ 0 ] [ 1 ]);
  let id = R.cast_at d ~at:(Sim_time.of_ms 1) ~origin:0 ~dest:[ 0; 1 ] () in
  (* Consensus timeouts keep firing during the partition, so run with a
     horizon rather than to quiescence. *)
  let r1 = R.run_deployment ~until:(Sim_time.of_ms 400) d in
  Alcotest.(check int) "no deliveries during the partition" 0
    (List.length (Harness.Run_result.deliveries_of r1 id));
  Engine.at (R.engine d) (Sim_time.of_ms 450) (fun () -> Network.heal_all net);
  let r2 = R.run_deployment d in
  Util.check_no_violations "safety across partition+heal"
    (Harness.Checker.check_all r2);
  Alcotest.(check int) "all four deliver after heal" 4
    (List.length (Harness.Run_result.deliveries_of r2 id))

(* Asymmetric (one-directional) partition during an in-flight multi-group
   A1 cast: group 1 -> group 0 is cut while group 0 -> group 1 still
   flows. The cast from group 0 reaches group 1, which collects both
   groups' timestamps and can finish; group 0 is missing group 1's stage
   answer and must wait for the heal. Nothing inconsistent may happen in
   between, and the heal completes the run at A1's normal latency degree 2
   (partitions are pure delay: they stretch time, not the Lamport
   degree, and the stage-skipping optimisations stay sound). *)
let test_a1_asymmetric_partition () =
  let module R = Harness.Runner.Make (Amcast.A1) in
  let topo = Topology.symmetric ~groups:2 ~per_group:2 in
  let d = R.deploy ~latency:Util.crisp_latency topo in
  let net = Engine.network (R.engine d) in
  Engine.at (R.engine d) (Sim_time.of_us 500) (fun () ->
      Network.partition net ~src_group:1 ~dst_group:0);
  let id = R.cast_at d ~at:(Sim_time.of_ms 1) ~origin:0 ~dest:[ 0; 1 ] () in
  let r1 = R.run_deployment ~until:(Sim_time.of_ms 400) d in
  let groups_delivered r =
    List.map
      (fun (ev : Harness.Run_result.delivery_event) ->
        Topology.group_of topo ev.pid)
      (Harness.Run_result.deliveries_of r id)
    |> List.sort_uniq Int.compare
  in
  Alcotest.(check (list int))
    "during the cut only the side with both timestamps delivers" [ 1 ]
    (groups_delivered r1);
  Engine.at (R.engine d) (Sim_time.of_ms 450) (fun () -> Network.heal_all net);
  let r2 = R.run_deployment d in
  Util.check_no_violations "safety across asymmetric partition"
    (Harness.Checker.check_all r2);
  Alcotest.(check int) "all four deliver after heal" 4
    (List.length (Harness.Run_result.deliveries_of r2 id));
  Alcotest.(check int) "degree 2 preserved" 2 (Util.degree_of r2 id)

(* A2: a partitioned group cannot finish any round; messages delivered
   before the partition stay consistent, and the backlog flushes after
   healing. *)
let test_a2_backlog_flushes_after_heal () =
  let module R = Harness.Runner.Make (Amcast.A2) in
  let topo = Topology.symmetric ~groups:2 ~per_group:2 in
  let d = R.deploy ~latency:Util.crisp_latency topo in
  let net = Engine.network (R.engine d) in
  let all = Topology.all_groups topo in
  (* One message before the partition, two during it. *)
  ignore (R.cast_at d ~at:(Sim_time.of_ms 1) ~origin:0 ~dest:all ());
  Engine.at (R.engine d) (Sim_time.of_ms 150) (fun () ->
      Network.partition_groups net [ 0 ] [ 1 ]);
  ignore (R.cast_at d ~at:(Sim_time.of_ms 200) ~origin:0 ~dest:all ());
  ignore (R.cast_at d ~at:(Sim_time.of_ms 210) ~origin:2 ~dest:all ());
  let r1 = R.run_deployment ~until:(Sim_time.of_ms 600) d in
  Alcotest.(check int) "only the pre-partition message delivered" 1
    (Harness.Metrics.delivered_count r1);
  Engine.at (R.engine d) (Sim_time.of_ms 700) (fun () -> Network.heal_all net);
  let r2 = R.run_deployment d in
  Util.check_no_violations "safety across partition+heal"
    (Harness.Checker.check_all r2);
  Alcotest.(check int) "backlog flushed" 3 (Harness.Metrics.delivered_count r2)

(* Repeated partition/heal cycles (a "nemesis" schedule) with traffic
   throughout: total order must survive every cycle. *)
let test_a2_nemesis_cycles () =
  let module R = Harness.Runner.Make (Amcast.A2) in
  let topo = Topology.symmetric ~groups:2 ~per_group:2 in
  let d = R.deploy ~latency:Util.crisp_latency topo in
  let net = Engine.network (R.engine d) in
  let all = Topology.all_groups topo in
  for cycle = 0 to 2 do
    let base = 400 * cycle in
    Engine.at (R.engine d)
      (Sim_time.of_ms (base + 100))
      (fun () -> Network.partition_groups net [ 0 ] [ 1 ]);
    Engine.at (R.engine d)
      (Sim_time.of_ms (base + 300))
      (fun () -> Network.heal_all net);
    ignore
      (R.cast_at d ~at:(Sim_time.of_ms (base + 50)) ~origin:0 ~dest:all ());
    ignore
      (R.cast_at d ~at:(Sim_time.of_ms (base + 150)) ~origin:2 ~dest:all ())
  done;
  let r = R.run_deployment d in
  Util.check_no_violations "safety over nemesis cycles"
    (Harness.Checker.check_all r);
  Alcotest.(check int) "all six delivered" 6 (Harness.Metrics.delivered_count r)

let suites =
  [
    ( "partitions",
      [
        Alcotest.test_case "network buffers across partition" `Quick
          test_network_partition_buffers;
        Alcotest.test_case "group partition + heal_all" `Quick
          test_network_partition_groups_and_heal_all;
        Alcotest.test_case "a1 waits for heal" `Quick
          test_a1_delivery_waits_for_heal;
        Alcotest.test_case "a1 asymmetric partition" `Quick
          test_a1_asymmetric_partition;
        Alcotest.test_case "a2 backlog flushes after heal" `Quick
          test_a2_backlog_flushes_after_heal;
        Alcotest.test_case "a2 nemesis cycles" `Quick test_a2_nemesis_cycles;
      ] );
  ]

(* Differential tests for the indexed delivery paths and single-pass
   checkers: the ordered-pending index against a sorted-list model, and
   each fast checker against the retained naive reference implementation,
   on hand-built runs with known violations and on randomised soak-style
   runs. *)

open Des
open Net
open Runtime

(* ----- Pending_index vs sorted-list model ----- *)

let prop_pending_index_model ops =
  (* Random add/remove/reposition/pop interleavings against a sorted-list
     model. Handles are issued densely, so a raw integer exercises live
     handles, already-removed ones (must be a no-op) and out-of-range
     ones. Every entry gets a distinct id, as the protocols guarantee, so
     the (ts, id) order is total and the model deterministic. *)
  let module Pi = Amcast.Pending_index in
  let q = Pi.create () in
  (* model: live (ts, id, handle) triples *)
  let model = ref [] in
  let next_id = ref 0 in
  let fresh_id () =
    let id = Msg_id.make ~origin:0 ~seq:!next_id in
    incr next_id;
    id
  in
  let sorted () =
    List.sort
      (fun (t1, i1, _) (t2, i2, _) ->
        let c = Int.compare t1 t2 in
        if c <> 0 then c else Msg_id.compare i1 i2)
      !model
  in
  let step_ok op =
    match op with
    | `Add ts ->
      let id = fresh_id () in
      let h = Pi.add q ~ts ~id () in
      model := (ts, id, h) :: !model;
      true
    | `Remove k ->
      Pi.remove q k;
      model := List.filter (fun (_, _, h) -> h <> k) !model;
      true
    | `Repos (k, ts) -> (
      (* Only live handles may be repositioned (the callers' contract). *)
      match List.find_opt (fun (_, _, h) -> h = k) !model with
      | None -> true
      | Some (_, id, _) ->
        let h' = Pi.reposition q k ~ts ~id () in
        model :=
          (ts, id, h') :: List.filter (fun (_, _, h) -> h <> k) !model;
        true)
    | `Pop -> (
      match (Pi.pop_min q, sorted ()) with
      | None, [] -> true
      | Some (ts, id, ()), (ts', id', h') :: _ ->
        model := List.filter (fun (_, _, h) -> h <> h') !model;
        ts = ts' && Msg_id.equal id id'
      | Some _, [] | None, _ :: _ -> false)
  in
  List.for_all
    (fun op ->
      step_ok op
      && Pi.size q = List.length !model
      && (match (Pi.min_elt q, sorted ()) with
         | None, [] -> true
         | Some (ts, id, ()), (ts', id', _) :: _ ->
           ts = ts' && Msg_id.equal id id'
         | _ -> false)
      && List.length (Pi.to_sorted_list q) = List.length (sorted ())
      && List.for_all2
           (fun ((ts : int), id, ()) ((ts' : int), id', (_ : int)) ->
             ts = ts' && Msg_id.equal id id')
           (Pi.to_sorted_list q) (sorted ())
      && Pi.is_empty q = (!model = []))
    ops

let pending_index_ops_gen =
  QCheck2.Gen.(
    list_size (int_range 1 120)
      (frequency
         [
           (4, map (fun t -> `Add t) (int_bound 500));
           (2, map (fun k -> `Remove k) (int_range (-2) 200));
           (2, map2 (fun k t -> `Repos (k, t)) (int_range (-2) 200) (int_bound 500));
           (3, pure `Pop);
         ]))

(* ----- Hand-built runs with known violations ----- *)

let sorted_violations vs = List.sort_uniq String.compare vs

let check_same_violations what expected_nonempty fast reference =
  let f = sorted_violations fast and n = sorted_violations reference in
  Alcotest.(check (list string)) (what ^ ": fast = reference") n f;
  if expected_nonempty then
    Alcotest.(check bool) (what ^ ": violations found") true (f <> [])

let mk_run ?(trace = Trace.create ()) ~topo ~casts ~deliveries () =
  Harness.Run_result.make ~topology:topo ~casts ~deliveries ~crashed:[]
    ~trace ~inter_group_msgs:0 ~intra_group_msgs:0
    ~end_time:(Sim_time.of_ms 10) ~drained:true ~events_executed:0 ()

let test_prefix_differential_synthetic () =
  (* p0 delivers m0 m1; p1 delivers m1 m0: a prefix-order violation both
     checkers must report identically (the fast path falls back to the
     reference on detection, so even the strings must match). *)
  let topo = Topology.symmetric ~groups:2 ~per_group:2 in
  let id0 = Msg_id.make ~origin:0 ~seq:0 in
  let id1 = Msg_id.make ~origin:1 ~seq:0 in
  let m0 = Amcast.Msg.make ~id:id0 ~dest:[ 0; 1 ] "a" in
  let m1 = Amcast.Msg.make ~id:id1 ~dest:[ 0; 1 ] "b" in
  let mk_del pid msg at lc =
    { Harness.Run_result.pid; msg; at = Sim_time.of_ms at; lc }
  in
  let r =
    mk_run ~topo
      ~casts:
        [
          { msg = m0; origin = 0; at = Sim_time.of_ms 1; lc = 0 };
          { msg = m1; origin = 1; at = Sim_time.of_ms 1; lc = 0 };
        ]
      ~deliveries:
        [
          mk_del 0 m0 2 1;
          mk_del 0 m1 3 1;
          mk_del 1 m1 2 1;
          mk_del 1 m0 3 1;
          mk_del 2 m0 2 1;
          mk_del 2 m1 3 1;
          mk_del 3 m1 2 1;
          mk_del 3 m0 3 1;
        ]
      ()
  in
  check_same_violations "prefix" true
    (Harness.Checker.uniform_prefix_order r)
    (Harness.Checker.Reference.uniform_prefix_order r)

let test_prefix_differential_clean () =
  (* Same shape, consistent order: both checkers must accept. *)
  let topo = Topology.symmetric ~groups:2 ~per_group:2 in
  let id0 = Msg_id.make ~origin:0 ~seq:0 in
  let id1 = Msg_id.make ~origin:1 ~seq:0 in
  let m0 = Amcast.Msg.make ~id:id0 ~dest:[ 0; 1 ] "a" in
  let m1 = Amcast.Msg.make ~id:id1 ~dest:[ 0; 1 ] "b" in
  let mk_del pid msg at lc =
    { Harness.Run_result.pid; msg; at = Sim_time.of_ms at; lc }
  in
  let r =
    mk_run ~topo
      ~casts:
        [
          { msg = m0; origin = 0; at = Sim_time.of_ms 1; lc = 0 };
          { msg = m1; origin = 1; at = Sim_time.of_ms 1; lc = 0 };
        ]
      ~deliveries:
        (List.concat_map
           (fun pid -> [ mk_del pid m0 2 1; mk_del pid m1 3 1 ])
           [ 0; 1; 2; 3 ])
      ()
  in
  check_same_violations "prefix-clean" false
    (Harness.Checker.uniform_prefix_order r)
    (Harness.Checker.Reference.uniform_prefix_order r);
  Alcotest.(check (list string)) "clean run accepted" []
    (Harness.Checker.uniform_prefix_order r)

let test_causal_differential_synthetic () =
  (* cast(m1) happened-before cast(m2) via an intra-group message, yet
     every process delivers m2 first: both causal checkers must flag both
     deliverers, with identical violation sets. *)
  let topo = Topology.symmetric ~groups:1 ~per_group:2 in
  let id1 = Msg_id.make ~origin:1 ~seq:0 in
  let id2 = Msg_id.make ~origin:0 ~seq:0 in
  let m1 = Amcast.Msg.make ~id:id1 ~dest:[ 0 ] "a" in
  let m2 = Amcast.Msg.make ~id:id2 ~dest:[ 0 ] "b" in
  let trace = Trace.create () in
  let t ms = Sim_time.of_ms ms in
  Trace.record trace (Trace.Cast { time = t 1; pid = 1; id = id1; lc = 1 });
  Trace.record trace
    (Trace.Send
       {
         time = t 1;
         src = 1;
         dst = 0;
         inter_group = false;
         lc = 1;
         tag = "x.data";
         env = 1;
       });
  Trace.record trace
    (Trace.Receive { time = t 2; src = 1; dst = 0; lc = 2; env = 1 });
  Trace.record trace (Trace.Cast { time = t 3; pid = 0; id = id2; lc = 3 });
  let mk_del pid msg at lc =
    { Harness.Run_result.pid; msg; at = Sim_time.of_ms at; lc }
  in
  let r =
    mk_run ~trace ~topo
      ~casts:
        [
          { msg = m1; origin = 1; at = t 1; lc = 1 };
          { msg = m2; origin = 0; at = t 3; lc = 3 };
        ]
      ~deliveries:
        [
          mk_del 0 m2 4 4;
          mk_del 1 m2 4 4;
          mk_del 0 m1 5 5;
          mk_del 1 m1 5 5;
        ]
      ()
  in
  check_same_violations "causal" true
    (Harness.Checker.causal_delivery_order r)
    (Harness.Checker.Reference.causal_delivery_order r);
  Alcotest.(check int) "one violation per deliverer" 2
    (List.length
       (sorted_violations (Harness.Checker.causal_delivery_order r)))

(* ----- Randomised soak-style differentials ----- *)

type scenario = {
  groups : int;
  per_group : int;
  seed : int;
  wseed : int;
  n_msgs : int;
  jitter : bool;
  crashes : bool;
}

let pp_scenario s =
  Fmt.str "{groups=%d; d=%d; seed=%d; wseed=%d; n=%d; jitter=%b; crashes=%b}"
    s.groups s.per_group s.seed s.wseed s.n_msgs s.jitter s.crashes

let scenario_gen =
  let open QCheck2.Gen in
  let* groups = int_range 2 4 in
  let* per_group = int_range 1 3 in
  let* seed = int_bound 1_000_000 in
  let* wseed = int_bound 1_000_000 in
  let* n_msgs = int_range 1 12 in
  let* jitter = bool in
  let+ crashes = bool in
  { groups; per_group; seed; wseed; n_msgs; jitter; crashes }

let crash_faults s topo =
  if not s.crashes then []
  else begin
    let rng = Rng.create (s.seed + 7919) in
    List.concat_map
      (fun g ->
        let members = Topology.members topo g in
        let crashable = (List.length members - 1) / 2 in
        if crashable = 0 || Rng.bool rng then []
        else
          Rng.sample_without_replacement rng crashable members
          |> List.map (fun pid ->
                 {
                   Harness.Runner.at = Sim_time.of_ms (1 + Rng.int rng 200);
                   pid;
                   drop = Runtime.Engine.Keep_inflight;
                 }))
      (Topology.all_groups topo)
  end

let run_scenario (module P : Amcast.Protocol.S) ~broadcast s =
  let module R = Harness.Runner.Make (P) in
  let topo = Topology.symmetric ~groups:s.groups ~per_group:s.per_group in
  let latency = if s.jitter then Latency.wan_default else Util.crisp_latency in
  let rng = Rng.create s.wseed in
  let workload =
    Harness.Workload.generate ~rng ~topology:topo ~n:s.n_msgs
      ~dest:
        (if broadcast then Harness.Workload.To_all_groups
         else Harness.Workload.Random_groups s.groups)
      ~arrival:(`Poisson (Sim_time.of_ms 20))
      ()
  in
  R.run ~seed:s.seed ~latency ~faults:(crash_faults s topo) topo workload

(* The indexed Run_result accessors against direct recomputation from the
   raw event lists. *)
let naive_correct (r : Harness.Run_result.t) pid =
  not (List.mem pid r.crashed)

let naive_sequence_of (r : Harness.Run_result.t) pid =
  List.filter_map
    (fun (d : Harness.Run_result.delivery_event) ->
      if d.pid = pid then Some d.msg else None)
    r.deliveries

let naive_delivered_everywhere_needed (r : Harness.Run_result.t) id =
  match
    List.find_opt
      (fun (c : Harness.Run_result.cast_event) ->
        Msg_id.equal c.msg.Amcast.Msg.id id)
      r.casts
  with
  | None -> false
  | Some c ->
    List.for_all
      (fun p ->
        (not (naive_correct r p))
        || List.exists
             (fun (d : Harness.Run_result.delivery_event) ->
               d.pid = p && Msg_id.equal d.msg.Amcast.Msg.id id)
             r.deliveries)
      (Amcast.Msg.dest_pids r.topology c.msg)

let differential_ok s r =
  let pids = Topology.all_pids r.Harness.Run_result.topology in
  let fail fmt = QCheck2.Test.fail_reportf fmt (pp_scenario s) in
  (* indexed accessors *)
  List.for_all
    (fun p ->
      Harness.Run_result.correct r p = naive_correct r p
      || fail "correct mismatch in %s")
    pids
  && List.for_all
       (fun p ->
         List.equal Amcast.Msg.equal_id
           (Harness.Run_result.sequence_of r p)
           (naive_sequence_of r p)
         || fail "sequence_of mismatch in %s")
       pids
  && List.for_all
       (fun (c : Harness.Run_result.cast_event) ->
         let id = c.msg.Amcast.Msg.id in
         Harness.Run_result.delivered_everywhere_needed r id
         = naive_delivered_everywhere_needed r id
         || fail "delivered_everywhere_needed mismatch in %s")
       r.casts
  (* fast checkers vs naive references *)
  && (sorted_violations (Harness.Checker.uniform_prefix_order r)
      = sorted_violations (Harness.Checker.Reference.uniform_prefix_order r)
     || fail "prefix differential mismatch in %s")
  && (Harness.Checker.genuineness r
      = Harness.Checker.Reference.genuineness r
     || fail "genuineness differential mismatch in %s")
  && (sorted_violations (Harness.Checker.causal_delivery_order r)
      = sorted_violations
          (Harness.Checker.Reference.causal_delivery_order r)
     || fail "causal differential mismatch in %s")

let prop_differential_a1 s =
  differential_ok s (run_scenario (module Amcast.A1) ~broadcast:false s)

let prop_differential_a2 s =
  (* A2 with crashes and tight arrivals does produce genuine causal-order
     violations (same-round chains); the differential must hold on those
     non-empty violation sets too. *)
  differential_ok s (run_scenario (module Amcast.A2) ~broadcast:true s)

let prop_differential_skeen s =
  differential_ok s
    (run_scenario (module Amcast.Skeen) ~broadcast:false
       { s with crashes = false })

let suites =
  [
    ( "checkers",
      [
        Util.qcheck_case ~count:150 ~name:"pending index matches model"
          pending_index_ops_gen prop_pending_index_model;
        Alcotest.test_case "prefix differential (violating run)" `Quick
          test_prefix_differential_synthetic;
        Alcotest.test_case "prefix differential (clean run)" `Quick
          test_prefix_differential_clean;
        Alcotest.test_case "causal differential (violating run)" `Quick
          test_causal_differential_synthetic;
        Util.qcheck_case ~count:20 ~name:"a1: fast checkers = reference"
          scenario_gen prop_differential_a1;
        Util.qcheck_case ~count:20 ~name:"a2: fast checkers = reference"
          scenario_gen prop_differential_a2;
        Util.qcheck_case ~count:15 ~name:"skeen: fast checkers = reference"
          scenario_gen prop_differential_skeen;
      ] );
  ]

(** State-machine replication over any total-order protocol of the library.

    The paper's motivating application (Section 1): data replicated across
    groups of a WAN, each group possibly holding only part of the data.
    This module turns any {!Amcast.Protocol.S} into a replication engine:

    - a {!type:spec} describes the deterministic state machine (initial
      state, apply function, command codec) and the {e placement} function
      mapping each command to the groups that must apply it;
    - {!Make.submit} atomically multicasts a command to its placement;
    - every replica applies delivered commands in its local delivery
      order. Total order on common destinations (uniform prefix order)
      plus determinism gives replica consistency: replicas of the same
      group end in identical states, whatever mix of single-group and
      multi-group commands ran — the invariant {!Make.check_consistency}
      verifies.

    Use a genuine multicast (A1) for partial replication — only the groups
    named by [placement] do any work — or a broadcast (A2, with
    [placement = all groups]) for full replication with warm-round
    latency. *)

type ('state, 'cmd) spec = {
  initial : unit -> 'state;
      (** Fresh state for one replica. Called once per process. *)
  apply : 'state -> 'cmd -> 'state;
      (** Must be deterministic: replica consistency is exactly
          "same commands in the same order + determinism". *)
  encode : 'cmd -> string;
  decode : string -> 'cmd;  (** Must invert [encode]. *)
  placement : 'cmd -> Net.Topology.gid list;
      (** The groups that must apply the command (the message's
          destination set). *)
}

val keyed_conflict :
  ?name:string ->
  spec:('state, 'cmd) spec ->
  ('cmd -> string option) ->
  Amcast.Conflict.t
(** [keyed_conflict ~spec key] lifts a per-command conflict key (e.g. the
    store key a KV command touches; [None] = the command commutes with
    everything) through the spec's codec into a wire-level
    {!Amcast.Conflict.t} for a generic-multicast deployment: commands
    conflict iff their keys are equal. Soundness requirement on the
    caller: commands mapped to different keys (or to [None]) must have
    commuting [apply] functions — then replicas that disagree only on the
    order of non-conflicting commands still converge to identical states.
    Note that under such a deployment {!Make.check_consistency} (exact
    log equality) is deliberately {e stronger} than what generic
    multicast guarantees: use it with {!Amcast.Conflict.total}
    deployments, and state-level equality plus per-key log equality for
    keyed ones. *)

val check_logs :
  topology:Net.Topology.t ->
  alive:(Net.Topology.pid -> bool) ->
  logs:string list array ->
  string list
(** The replica-consistency oracle shared by DES deployments
    ({!Make.check_consistency}) and the real KV service: per group, the
    logs of correct ([alive]) replicas must be identical and the log of a
    crashed replica must be a prefix of theirs. [logs] holds each
    replica's encoded command log, oldest first (encode once — this
    function never re-encodes). Violation messages name the first
    diverging index and the two encoded commands there. *)

module Make (P : Amcast.Protocol.S) : sig
  type ('state, 'cmd) t

  val deploy :
    ?seed:int ->
    ?latency:Net.Latency.t ->
    ?config:Amcast.Protocol.Config.t ->
    spec:('state, 'cmd) spec ->
    Net.Topology.t ->
    ('state, 'cmd) t

  val submit :
    ('state, 'cmd) t ->
    at:Des.Sim_time.t ->
    origin:Net.Topology.pid ->
    'cmd ->
    Runtime.Msg_id.t
  (** Schedules the command for atomic multicast to its placement. *)

  val run :
    ?until:Des.Sim_time.t -> ('state, 'cmd) t -> Harness.Run_result.t
  (** Runs the deployment (to quiescence by default) and returns the
      underlying run result for metrics/checking. Can be called again
      after further {!submit}s. *)

  val state_of : ('state, 'cmd) t -> Net.Topology.pid -> 'state
  (** The replica's current state. *)

  val log_of : ('state, 'cmd) t -> Net.Topology.pid -> 'cmd list
  (** Commands applied by the replica, oldest first. *)

  val check_consistency : ('state, 'cmd) t -> string list
  (** Replica-consistency violations (empty list = consistent). Correct
      replicas of the same group must have applied identical command
      logs; a {e crashed} replica's log need only be a prefix of the
      correct ones' — it legitimately stopped applying at its crash.
      Violation messages name the first diverging index and the two
      encoded commands there. *)

  val engine : ('state, 'cmd) t -> P.wire Runtime.Engine.t
  (** Escape hatch for fault injection and adversarial network control. *)
end

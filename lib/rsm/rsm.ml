open Net

type ('state, 'cmd) spec = {
  initial : unit -> 'state;
  apply : 'state -> 'cmd -> 'state;
  encode : 'cmd -> string;
  decode : string -> 'cmd;
  placement : 'cmd -> Topology.gid list;
}

(* Lift a per-command key function through the spec's codec into a wire
   level conflict relation: the generic protocol and the checker see
   messages, the state machine sees commands. *)
let keyed_conflict ?name ~spec key =
  Amcast.Conflict.keyed ?name (fun (m : Amcast.Msg.t) ->
      key (spec.decode m.payload))

module Make (P : Amcast.Protocol.S) = struct
  module Runner = Harness.Runner.Make (P)

  type ('state, 'cmd) replica = {
    mutable state : 'state;
    mutable log : 'cmd list; (* newest first *)
  }

  type ('state, 'cmd) t = {
    spec : ('state, 'cmd) spec;
    deployment : Runner.deployment;
    replicas : ('state, 'cmd) replica array;
    topology : Topology.t;
  }

  (* Replicas apply commands as the protocol delivers them. The runner
     hands deliveries to this hook in per-process delivery order, so the
     replica's log *is* the delivery sequence. *)
  let deploy ?seed ?latency ?config ~spec topology =
    let n = Topology.n_processes topology in
    let replicas =
      Array.init n (fun _ -> { state = spec.initial (); log = [] })
    in
    let deployment = Runner.deploy ?seed ?latency ?config topology in
    (* Applying on delivery: the runner already wraps deliver for metrics;
       we replay from the run result instead of hooking, to keep the
       runner's interface small — see [absorb]. *)
    { spec; deployment; replicas; topology }

  let submit t ~at ~origin cmd =
    Runner.cast_at t.deployment ~at ~origin
      ~dest:(t.spec.placement cmd)
      ~payload:(t.spec.encode cmd)
      ()

  (* Apply any deliveries the replicas have not seen yet, in the global
     delivery order of the run result (which preserves each process's
     local order). *)
  let absorb t (r : Harness.Run_result.t) =
    let applied =
      Array.map (fun replica -> List.length replica.log) t.replicas
    in
    let seen = Array.make (Array.length t.replicas) 0 in
    List.iter
      (fun (d : Harness.Run_result.delivery_event) ->
        let i = seen.(d.pid) in
        seen.(d.pid) <- i + 1;
        if i >= applied.(d.pid) then begin
          let replica = t.replicas.(d.pid) in
          let cmd = t.spec.decode d.msg.Amcast.Msg.payload in
          replica.state <- t.spec.apply replica.state cmd;
          replica.log <- cmd :: replica.log
        end)
      r.deliveries

  let run ?until t =
    let r = Runner.run_deployment ?until t.deployment in
    absorb t r;
    r

  let state_of t pid = t.replicas.(pid).state
  let log_of t pid = List.rev t.replicas.(pid).log

  let check_consistency t =
    let violations = ref [] in
    List.iter
      (fun g ->
        match Topology.members t.topology g with
        | [] | [ _ ] -> ()
        | first :: rest ->
          let ref_log = log_of t first in
          List.iter
            (fun pid ->
              let log = log_of t pid in
              if
                not
                  (List.length log = List.length ref_log
                  && List.for_all2
                       (fun a b -> t.spec.encode a = t.spec.encode b)
                       log ref_log)
              then
                violations :=
                  Fmt.str
                    "group %d: replica p%d applied a different command log \
                     than p%d (%d vs %d commands)"
                    g pid first (List.length log) (List.length ref_log)
                  :: !violations)
            rest)
      (Topology.all_groups t.topology);
    !violations

  let engine t = Runner.engine t.deployment
end

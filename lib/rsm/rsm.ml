open Net

type ('state, 'cmd) spec = {
  initial : unit -> 'state;
  apply : 'state -> 'cmd -> 'state;
  encode : 'cmd -> string;
  decode : string -> 'cmd;
  placement : 'cmd -> Topology.gid list;
}

(* Lift a per-command key function through the spec's codec into a wire
   level conflict relation: the generic protocol and the checker see
   messages, the state machine sees commands. *)
let keyed_conflict ?name ~spec key =
  Amcast.Conflict.keyed ?name (fun (m : Amcast.Msg.t) ->
      key (spec.decode m.payload))

(* The replica-consistency oracle, shared by the DES deployments below and
   the real (TCP) KV service: correct replicas of a group must hold
   identical encoded command logs, crashed replicas a prefix of them.
   [logs] holds each replica's encoded log, oldest first — computed once
   by the caller, not re-encoded per comparison. *)
let check_logs ~topology ~alive ~(logs : string list array) =
  let violations = ref [] in
  let report fmt = Fmt.kstr (fun s -> violations := s :: !violations) fmt in
  let rec divergence i l r =
    match (l, r) with
    | x :: l', y :: r' ->
      if String.equal x y then divergence (i + 1) l' r' else Some (i, x, y)
    | _ -> None
  in
  (* A correct replica must match the reference exactly; a crashed one
     ([prefix_ok]) may have stopped short of the tail, but what it did
     apply must be a prefix of what the correct replicas applied. *)
  let compare_logs ~g ~prefix_ok pid ref_pid =
    let log = logs.(pid) and ref_log = logs.(ref_pid) in
    match divergence 0 log ref_log with
    | Some (i, a, b) ->
      report "group %d: replicas p%d and p%d diverge at index %d (%S vs %S)"
        g pid ref_pid i a b
    | None ->
      let n = List.length log and n_ref = List.length ref_log in
      if n = n_ref || (prefix_ok && n < n_ref) then ()
      else
        report "group %d: replica p%d applied %d commands but p%d applied %d"
          g pid ref_pid n n_ref
  in
  List.iter
    (fun g ->
      match Topology.members topology g with
      | [] | [ _ ] -> ()
      | members ->
        let correct = List.filter alive members in
        let reference, others =
          match correct with
          | ref_pid :: _ ->
            (ref_pid, List.filter (fun p -> p <> ref_pid) members)
          | [] ->
            (* The whole group crashed: the longest log stands in as the
               reference and the rest must be prefixes of it. *)
            let longest =
              List.fold_left
                (fun best p ->
                  if List.length logs.(p) > List.length logs.(best) then p
                  else best)
                (List.hd members) (List.tl members)
            in
            (longest, List.filter (fun p -> p <> longest) members)
        in
        List.iter
          (fun pid ->
            compare_logs ~g ~prefix_ok:(not (alive pid)) pid reference)
          others)
    (Topology.all_groups topology);
  List.rev !violations

module Make (P : Amcast.Protocol.S) = struct
  module Runner = Harness.Runner.Make (P)

  type ('state, 'cmd) replica = {
    mutable state : 'state;
    mutable log : 'cmd list; (* newest first *)
  }

  type ('state, 'cmd) t = {
    spec : ('state, 'cmd) spec;
    deployment : Runner.deployment;
    replicas : ('state, 'cmd) replica array;
    topology : Topology.t;
  }

  (* Replicas apply commands as the protocol delivers them. The runner
     hands deliveries to this hook in per-process delivery order, so the
     replica's log *is* the delivery sequence. *)
  let deploy ?seed ?latency ?config ~spec topology =
    let n = Topology.n_processes topology in
    let replicas =
      Array.init n (fun _ -> { state = spec.initial (); log = [] })
    in
    let deployment = Runner.deploy ?seed ?latency ?config topology in
    (* Applying on delivery: the runner already wraps deliver for metrics;
       we replay from the run result instead of hooking, to keep the
       runner's interface small — see [absorb]. *)
    { spec; deployment; replicas; topology }

  let submit t ~at ~origin cmd =
    Runner.cast_at t.deployment ~at ~origin
      ~dest:(t.spec.placement cmd)
      ~payload:(t.spec.encode cmd)
      ()

  (* Apply any deliveries the replicas have not seen yet, in the global
     delivery order of the run result (which preserves each process's
     local order). *)
  let absorb t (r : Harness.Run_result.t) =
    let applied =
      Array.map (fun replica -> List.length replica.log) t.replicas
    in
    let seen = Array.make (Array.length t.replicas) 0 in
    List.iter
      (fun (d : Harness.Run_result.delivery_event) ->
        let i = seen.(d.pid) in
        seen.(d.pid) <- i + 1;
        if i >= applied.(d.pid) then begin
          let replica = t.replicas.(d.pid) in
          let cmd = t.spec.decode d.msg.Amcast.Msg.payload in
          replica.state <- t.spec.apply replica.state cmd;
          replica.log <- cmd :: replica.log
        end)
      r.deliveries

  let run ?until t =
    let r = Runner.run_deployment ?until t.deployment in
    absorb t r;
    r

  let state_of t pid = t.replicas.(pid).state
  let log_of t pid = List.rev t.replicas.(pid).log

  let check_consistency t =
    let engine = Runner.engine t.deployment in
    (* Encode every replica's log once up front: logs are stored newest
       first, so [rev_map] yields them oldest first, ready to compare. *)
    let logs =
      Array.map (fun r -> List.rev_map t.spec.encode r.log) t.replicas
    in
    check_logs ~topology:t.topology
      ~alive:(fun pid -> Runtime.Engine.alive engine pid)
      ~logs

  let engine t = Runner.engine t.deployment
end

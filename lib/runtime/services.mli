(** The capability record handed to every protocol instance.

    Protocols are written as event-driven state machines: they react to
    received wire messages and to timers, and act on the world exclusively
    through this record. This keeps protocol modules independent of the
    engine's internals and lets them stack (e.g. atomic multicast over
    consensus) by sharing one [Services.t] and one wire type.

    All effects are deterministic given the engine's seed. *)

type 'w t = {
  self : Net.Topology.pid;  (** The process this instance runs on. *)
  topology : Net.Topology.t;
  rng : Des.Rng.t;
      (** Private random stream of this process (split from the engine's
          root seed). *)
  send : dst:Net.Topology.pid -> 'w -> unit;
      (** Asynchronous send. Applies the modified Lamport clock rule
          (inter-group sends tick the clock), records the send in the trace
          and hands the message to the network. Silently drops if the
          sending process has crashed. *)
  send_multi : Net.Topology.pid list -> 'w -> unit;
      (** Fan-out send, observably equivalent to iterating {!field-send}
          over the list, but the whole fan-out is carried by one scheduler
          event and one envelope (the Send trace entries share an [env]
          id). The steady-state fast lanes use this on broadcast-shaped
          hot paths. *)
  now : unit -> Des.Sim_time.t;
  set_timer : after:Des.Sim_time.t -> (unit -> unit) -> int;
      (** One-shot timer; the callback is skipped if the process has crashed
          by the time it fires. Returns a handle for {!cancel_timer}. *)
  cancel_timer : int -> unit;
  lc : unit -> Lclock.t;  (** Current modified Lamport clock value. *)
  record_cast : Msg_id.t -> unit;
      (** Protocols call this at the A-XCast event of a message (a local
          event: the clock does not tick). *)
  record_deliver : Msg_id.t -> unit;
      (** Protocols call this at the A-Deliver event of a message. *)
  note : string -> unit;  (** Free-form trace annotation (debugging). *)
  alive : Net.Topology.pid -> bool;
      (** Ground-truth crash oracle. Only failure-detector implementations
          should consult it (Section 2's algorithms assume oracle-based
          consensus and reliable multicast, cf. Figure 1's cost model). *)
  on_crash_detected : delay:Des.Sim_time.t -> (Net.Topology.pid -> unit) -> unit;
      (** Subscribe to crash notifications delivered [delay] after the
          crash instant — the idealised eventually-perfect failure
          detector. The callback is skipped if the subscribing process has
          itself crashed by the time the notification fires (a dead
          detector reports nothing). *)
  on_fd_perturb : (float -> unit) -> unit;
      (** Subscribe to failure-detector timeout perturbations
          ({!Runtime.Engine.perturb_fd}, driven by the harness's [Fd_storm]
          nemesis action): the callback receives a scale factor to apply to
          the detector's adaptive timeouts. Skipped for crashed processes;
          detectors without adaptive timeouts simply don't subscribe. *)
}

val of_transport :
  ?record_cast:(Msg_id.t -> unit) ->
  ?record_deliver:(Msg_id.t -> unit) ->
  ?note:(string -> unit) ->
  rng:Des.Rng.t ->
  'w Transport.t ->
  'w t
(** Assemble the full capability record from a backend {!Transport.t} plus
    the harness-side instrumentation: the process's private random stream
    and the cast/deliver/note recording hooks (no-ops by default — a real
    deployment that keeps its own delivery log needs no trace). Every
    effectful field is the transport's own; this function adds nothing but
    the instrumentation, so protocol behaviour depends only on the
    backend. *)

val send_all : 'w t -> Net.Topology.pid list -> 'w -> unit
(** Send the same message to every listed process (including possibly
    [self]; self-sends go through the network like any other). *)

val send_multi : 'w t -> Net.Topology.pid list -> 'w -> unit
(** Like {!send_all} but through the single-event fan-out lane
    ({!field-send_multi}). *)

val send_group : 'w t -> Net.Topology.gid -> 'w -> unit
(** Send to every member of a group. *)

val send_others_in_group : 'w t -> 'w -> unit
(** Send to every member of the caller's own group except itself. *)

val my_group : 'w t -> Net.Topology.gid

type 'w t = {
  self : Net.Topology.pid;
  topology : Net.Topology.t;
  rng : Des.Rng.t;
  send : dst:Net.Topology.pid -> 'w -> unit;
  send_multi : Net.Topology.pid list -> 'w -> unit;
  now : unit -> Des.Sim_time.t;
  set_timer : after:Des.Sim_time.t -> (unit -> unit) -> int;
  cancel_timer : int -> unit;
  lc : unit -> Lclock.t;
  record_cast : Msg_id.t -> unit;
  record_deliver : Msg_id.t -> unit;
  note : string -> unit;
  alive : Net.Topology.pid -> bool;
  on_crash_detected :
    delay:Des.Sim_time.t -> (Net.Topology.pid -> unit) -> unit;
  on_fd_perturb : (float -> unit) -> unit;
      (* Registers a failure-detector timeout perturbation hook: the
         callback receives a scale factor when the harness perturbs FD
         timeouts (Engine.perturb_fd, driven by nemesis Fd_storm actions).
         Detectors without adaptive timeouts ignore it. *)
}

let nop1 _ = ()

let of_transport ?(record_cast = nop1) ?(record_deliver = nop1)
    ?(note = nop1) ~rng (tr : 'w Transport.t) =
  {
    self = tr.Transport.self;
    topology = tr.Transport.topology;
    rng;
    send = tr.Transport.send;
    send_multi = tr.Transport.send_multi;
    now = tr.Transport.now;
    set_timer = tr.Transport.set_timer;
    cancel_timer = tr.Transport.cancel_timer;
    lc = tr.Transport.lc;
    record_cast;
    record_deliver;
    note;
    alive = tr.Transport.alive;
    on_crash_detected = tr.Transport.on_crash_detected;
    on_fd_perturb = tr.Transport.on_fd_perturb;
  }

let send_all t pids w = List.iter (fun dst -> t.send ~dst w) pids
let send_multi t pids w = t.send_multi pids w
let send_group t g w = send_all t (Net.Topology.members t.topology g) w

let send_others_in_group t w =
  send_all t (Net.Topology.others_in_group t.topology t.self) w

let my_group t = Net.Topology.group_of t.topology t.self

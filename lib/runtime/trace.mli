(** Run traces.

    Every observable event of a run — sends, receives, casts (A-XCast),
    deliveries (A-Deliver), crashes — is appended to the engine's trace with
    its virtual time and the modified Lamport clock value of the process at
    that event. The harness computes latency degrees, message counts,
    genuineness and ordering properties purely from this log, so protocol
    code cannot accidentally "self-report" better numbers than it achieves. *)

type entry =
  | Send of {
      time : Des.Sim_time.t;
      src : Net.Topology.pid;
      dst : Net.Topology.pid;
      inter_group : bool;
      lc : Lclock.t; (* clock value carried by the message *)
      tag : string; (* protocol-chosen label of the wire message kind *)
      env : int;
          (* envelope id matching the Receive entry; a broadcast fan-out
             shares one envelope, so (env, dst) is the unique key *)
    }
  | Receive of {
      time : Des.Sim_time.t;
      src : Net.Topology.pid;
      dst : Net.Topology.pid;
      lc : Lclock.t; (* receiver's clock after the receive *)
      env : int; (* envelope id of the matching Send entry *)
    }
  | Cast of {
      time : Des.Sim_time.t;
      pid : Net.Topology.pid;
      id : Msg_id.t;
      lc : Lclock.t;
    }
  | Deliver of {
      time : Des.Sim_time.t;
      pid : Net.Topology.pid;
      id : Msg_id.t;
      lc : Lclock.t;
    }
  | Crash of { time : Des.Sim_time.t; pid : Net.Topology.pid }
  | Note of { time : Des.Sim_time.t; pid : Net.Topology.pid; text : string }

type t

val create : ?enabled:bool -> unit -> t
(** A fresh trace. When [enabled] is [false] (default [true]), {!record}
    is a no-op — used by throughput benchmarks to avoid unbounded memory. *)

val record : t -> entry -> unit
val entries : t -> entry list
(** All recorded entries, in chronological (append) order. *)

val entries_rev : t -> entry list
(** All recorded entries, newest first, without copying — with {!length}
    this lets incremental consumers (the model checker's fingerprint
    shadow) read just the entries appended since their last look. *)

val length : t -> int
val pp_entry : Format.formatter -> entry -> unit
val pp : Format.formatter -> t -> unit

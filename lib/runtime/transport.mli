(** The backend-facing half of the protocol capability surface.

    Everything a protocol instance needs from the world that involves
    moving messages, reading a clock or learning about crashes — the
    fields of {!Services.t} minus the harness-only instrumentation hooks
    (rng, cast/deliver/note recording). A backend provides one value of
    this type per process; {!Services.of_transport} turns it into the
    full capability record protocols are written against.

    Two backends implement it:

    - the discrete-event engine ({!Engine.transport}) — virtual time,
      deterministic given the seed; the twin every scenario, checker and
      model-checking run executes against;
    - the real one ([Transport.Tcp] in [lib/transport]) — Unix TCP
      sockets on localhost or a real network, monotonic-clock timers,
      optional per-link delay injection reproducing the WAN shapes of
      {!Net.Latency} on localhost.

    The contract both must honour, so that the same protocol code is
    correct on either:

    - [send]/[send_multi] are asynchronous, reliable to non-crashed
      destinations, FIFO per (src, dst) link, and apply the modified
      Lamport clock rule (inter-group sends carry LC+1; the sender's own
      clock never advances on a send);
    - receive handlers and timer callbacks of one process never run
      concurrently with each other (single-threaded process model);
    - [set_timer] is one-shot and the callback is skipped if the process
      has crashed by the time it fires;
    - [on_crash_detected] notifications fire [delay] after the crash
      instant and never on the crashed process itself. *)

type 'w t = {
  self : Net.Topology.pid;
  topology : Net.Topology.t;
  send : dst:Net.Topology.pid -> 'w -> unit;
  send_multi : Net.Topology.pid list -> 'w -> unit;
      (** Fan-out send, observably equivalent to iterating [send] over the
          list (backends may carry the fan-out as one event/envelope). *)
  now : unit -> Des.Sim_time.t;
      (** Virtual time on the DES; microseconds of monotonic clock since
          the deployment epoch on a real backend. *)
  set_timer : after:Des.Sim_time.t -> (unit -> unit) -> int;
  cancel_timer : int -> unit;
  lc : unit -> Lclock.t;
      (** The process's modified Lamport clock, maintained by the backend
          at message receipt. *)
  alive : Net.Topology.pid -> bool;
  on_crash_detected :
    delay:Des.Sim_time.t -> (Net.Topology.pid -> unit) -> unit;
  on_fd_perturb : (float -> unit) -> unit;
}

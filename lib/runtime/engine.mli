(** The simulation engine: wires processes, network, clocks and faults.

    An engine hosts one protocol deployment: every process runs a node with
    the same wire type ['w]. The engine owns the scheduler, the network, the
    per-process modified Lamport clocks, the trace and the crash schedule.

    Determinism: a run is a pure function of (topology, latency model, seed,
    spawned program, scheduled actions). Two engines created with the same
    arguments and driven identically produce identical traces. *)

type 'w node = { on_receive : src:Net.Topology.pid -> 'w -> unit }
(** A process's reaction to an incoming wire message. *)

(** What happens to messages a process had in flight when it crashes.
    Quasi-reliable links only guarantee delivery between correct processes,
    so a crashing process may lose any subset of its unreceived sends. *)
type drop_spec =
  | Keep_inflight  (** A "clean" crash: everything already sent arrives. *)
  | Lose_all_inflight  (** Every unreceived message from the process is lost. *)
  | Lose_to of Net.Topology.pid list
      (** Unreceived messages to the listed processes are lost. *)
  | Lose_each_with_probability of float
      (** Each unreceived message is lost independently with probability
          [p] (drawn from the engine's fault stream). *)

type 'w t

val create :
  ?seed:int ->
  ?latency:Net.Latency.t ->
  ?record_trace:bool ->
  tag:('w -> string) ->
  Net.Topology.t ->
  'w t
(** [create ~tag topology] is a fresh engine. [tag] labels wire messages in
    the trace (used for per-kind message statistics). Defaults: [seed] 0,
    {!Net.Latency.wan_default}, trace recording on. *)

val spawn : 'w t -> Net.Topology.pid -> ('w Services.t -> 'a * 'w node) -> 'a
(** [spawn t p make] creates the node for process [p]: [make] receives [p]'s
    capability record and returns the protocol state (handed back to the
    caller) and the receive handler.
    @raise Invalid_argument if [p] already has a node. *)

val services : 'w t -> Net.Topology.pid -> 'w Services.t
(** The capability record of an already-spawned process. Equal to
    {!Services.of_transport} over {!transport} with the engine's trace
    hooks and the process's private random stream. *)

val transport : 'w t -> Net.Topology.pid -> 'w Transport.t
(** The DES implementation of the backend-facing {!Transport.t} surface
    for one process: virtual-time [now]/timers, trace-recording sends
    through the simulated network, the oracle crash-notification stream.
    The protocol-visible behaviour of {!services} is exactly this
    transport. *)

val schedule_crash :
  ?drop:drop_spec -> 'w t -> at:Des.Sim_time.t -> Net.Topology.pid -> unit
(** Schedules a crash-stop failure: from the crash instant the process sends
    nothing, receives nothing, and its timers are inert. [drop] (default
    {!Keep_inflight}) selects the fate of its in-flight messages. *)

val at :
  ?tag:Des.Scheduler.Tag.t -> 'w t -> Des.Sim_time.t -> (unit -> unit) -> unit
(** Schedules an external action (e.g. an A-XCast from the workload).
    [tag] (default {!Des.Scheduler.Tag.generic}) attaches commutativity
    metadata for controlled scheduling — the runner tags workload casts
    with their origin so the model checker can commute them against
    deliveries at other processes. *)

val perturb_fd : 'w t -> float -> unit
(** [perturb_fd t s] multiplies the adaptive timeouts of every failure
    detector registered through {!Services.t}[.on_fd_perturb] by [s],
    skipping detectors whose host process has crashed. [s < 1] is an
    FD storm: shrunk timeouts force false suspicions, which the ◇P
    back-off rule then recovers from. Immediate; schedule via {!at} for a
    timed perturbation.
    @raise Invalid_argument if [s <= 0]. *)

val run : ?until:Des.Sim_time.t -> ?max_steps:int -> 'w t -> unit
(** Runs the simulation; see {!Des.Scheduler.run}. With no [until], runs to
    quiescence (empty event queue) — which every halting protocol reaches. *)

val now : 'w t -> Des.Sim_time.t
val alive : 'w t -> Net.Topology.pid -> bool
val lc : 'w t -> Net.Topology.pid -> Lclock.t
val trace : 'w t -> Trace.t
val topology : 'w t -> Net.Topology.t
type 'w envelope = { data : 'w; lc : Lclock.t; env : int }
(** What actually travels on the network: the wire payload, the modified
    Lamport value it carries, and a unique envelope id (used by the causal
    trace analysis to match sends to receives). *)

val network : 'w t -> 'w envelope Net.Network.t
(** The underlying network; exposed for counters and adversarial controls
    ({!Net.Network.hold}, {!Net.Network.partition}). *)

val scheduler : 'w t -> Des.Scheduler.t
val fault_rng : 'w t -> Des.Rng.t
(** The engine's dedicated randomness stream for fault injection. *)

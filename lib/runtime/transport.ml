type 'w t = {
  self : Net.Topology.pid;
  topology : Net.Topology.t;
  send : dst:Net.Topology.pid -> 'w -> unit;
  send_multi : Net.Topology.pid list -> 'w -> unit;
  now : unit -> Des.Sim_time.t;
  set_timer : after:Des.Sim_time.t -> (unit -> unit) -> int;
  cancel_timer : int -> unit;
  lc : unit -> Lclock.t;
  alive : Net.Topology.pid -> bool;
  on_crash_detected :
    delay:Des.Sim_time.t -> (Net.Topology.pid -> unit) -> unit;
  on_fd_perturb : (float -> unit) -> unit;
}

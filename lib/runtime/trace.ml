type entry =
  | Send of {
      time : Des.Sim_time.t;
      src : Net.Topology.pid;
      dst : Net.Topology.pid;
      inter_group : bool;
      lc : Lclock.t;
      tag : string;
      env : int;
    }
  | Receive of {
      time : Des.Sim_time.t;
      src : Net.Topology.pid;
      dst : Net.Topology.pid;
      lc : Lclock.t;
      env : int;
    }
  | Cast of {
      time : Des.Sim_time.t;
      pid : Net.Topology.pid;
      id : Msg_id.t;
      lc : Lclock.t;
    }
  | Deliver of {
      time : Des.Sim_time.t;
      pid : Net.Topology.pid;
      id : Msg_id.t;
      lc : Lclock.t;
    }
  | Crash of { time : Des.Sim_time.t; pid : Net.Topology.pid }
  | Note of { time : Des.Sim_time.t; pid : Net.Topology.pid; text : string }

type t = { mutable entries : entry list; mutable n : int; enabled : bool }

let create ?(enabled = true) () = { entries = []; n = 0; enabled }

let record t e =
  if t.enabled then begin
    t.entries <- e :: t.entries;
    t.n <- t.n + 1
  end

let entries t = List.rev t.entries
let entries_rev t = t.entries
let length t = t.n

let pp_entry ppf = function
  | Send { time; src; dst; inter_group; lc; tag; env = _ } ->
    Fmt.pf ppf "%a send  p%d -> p%d %s lc=%d%s" Des.Sim_time.pp time src dst
      tag lc
      (if inter_group then " [inter]" else "")
  | Receive { time; src; dst; lc; env = _ } ->
    Fmt.pf ppf "%a recv  p%d -> p%d lc=%d" Des.Sim_time.pp time src dst lc
  | Cast { time; pid; id; lc } ->
    Fmt.pf ppf "%a cast  p%d %a lc=%d" Des.Sim_time.pp time pid Msg_id.pp id
      lc
  | Deliver { time; pid; id; lc } ->
    Fmt.pf ppf "%a dlvr  p%d %a lc=%d" Des.Sim_time.pp time pid Msg_id.pp id
      lc
  | Crash { time; pid } -> Fmt.pf ppf "%a CRASH p%d" Des.Sim_time.pp time pid
  | Note { time; pid; text } ->
    Fmt.pf ppf "%a note  p%d: %s" Des.Sim_time.pp time pid text

let pp ppf t = Fmt.(list ~sep:(any "@\n") pp_entry) ppf (entries t)

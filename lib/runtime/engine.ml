open Des
open Net

type 'w node = { on_receive : src:Topology.pid -> 'w -> unit }

type drop_spec =
  | Keep_inflight
  | Lose_all_inflight
  | Lose_to of Topology.pid list
  | Lose_each_with_probability of float

type crash_subscription = {
  subscriber : Topology.pid;
  delay : Sim_time.t;
  callback : Topology.pid -> unit;
}

(* [lc] is the sender's RAW clock at send time; the carried value (raw, or
   raw+1 across groups) is computed per destination at delivery. This lets
   one envelope serve a whole [send_multi] fan-out even when it mixes intra-
   and inter-group destinations, and is equivalent for single sends since
   the sender's own clock never advances on a send. *)
type 'w envelope = { data : 'w; lc : Lclock.t; env : int }

type 'w t = {
  sched : Scheduler.t;
  topology : Topology.t;
  trace : Trace.t;
  tag : 'w -> string;
  mutable network : 'w envelope Network.t option; (* set in create *)
  mutable next_env : int;
  nodes : 'w node option array;
  node_rngs : Rng.t array;
  lcs : Lclock.t array;
  crashed : bool array;
  fault_rng : Rng.t;
  mutable crash_subs : crash_subscription list;
  mutable fd_subs : (Topology.pid * (float -> unit)) list;
      (* registration order; failure detectors subscribe to timed timeout
         perturbation (the nemesis Fd_storm hook) *)
}

let net t =
  match t.network with
  | Some n -> n
  | None -> assert false

let handle_delivery t ~src ~dst { data; lc; env } =
  (* A pid without a spawned node consumes nothing: advancing its Lamport
     clock or logging a Receive for it would fabricate causal events at a
     process that does not exist in the deployment. *)
  if not t.crashed.(dst) then
    match t.nodes.(dst) with
    | None -> ()
    | Some node ->
      let same_group = Topology.same_group t.topology src dst in
      let carried = Lclock.on_send ~same_group lc in
      t.lcs.(dst) <- Lclock.on_receive t.lcs.(dst) ~carried;
      Trace.record t.trace
        (Receive
           { time = Scheduler.now t.sched; src; dst; lc = t.lcs.(dst); env });
      node.on_receive ~src data

let create ?(seed = 0) ?(latency = Latency.wan_default)
    ?(record_trace = true) ~tag topology =
  let sched = Scheduler.create () in
  let root = Rng.create seed in
  let n = Topology.n_processes topology in
  let node_rngs = Array.init n (fun _ -> Rng.split root) in
  let net_rng = Rng.split root in
  let fault_rng = Rng.split root in
  let t =
    {
      sched;
      topology;
      trace = Trace.create ~enabled:record_trace ();
      tag;
      network = None;
      nodes = Array.make n None;
      next_env = 0;
      node_rngs;
      lcs = Array.make n Lclock.initial;
      crashed = Array.make n false;
      fault_rng;
      crash_subs = [];
      fd_subs = [];
    }
  in
  let network =
    Network.create ~sched ~topology ~latency ~rng:net_rng
      ~deliver:(fun ~src ~dst payload -> handle_delivery t ~src ~dst payload)
  in
  t.network <- Some network;
  t

(* The DES implementation of the backend-facing transport surface. The
   closures below are the protocol-visible behaviour of the simulator;
   [services] only adds the trace-recording hooks on top, so the factoring
   is invisible to protocols (bit-identical runs). *)
let transport t pid =
  let send ~dst payload =
    if not t.crashed.(pid) then begin
      let same_group = Topology.same_group t.topology pid dst in
      (* The carried value is LC+1 across groups (rule 2), but the sender's
         own clock does not advance: only receives move a clock forward.
         This makes a fan-out to d remote processes one causal hop, not d —
         the reading under which the paper's R-MCast has latency degree 1
         and Theorem 5.1's concurrent bundle exchange costs a single
         inter-group delay. *)
      let lc = Lclock.on_send ~same_group t.lcs.(pid) in
      let env = t.next_env in
      t.next_env <- env + 1;
      Trace.record t.trace
        (Send
           {
             time = Scheduler.now t.sched;
             src = pid;
             dst;
             inter_group = not same_group;
             lc;
             tag = t.tag payload;
             env;
           });
      Network.send (net t) ~src:pid ~dst
        { data = payload; lc = t.lcs.(pid); env }
    end
  in
  let send_multi dsts payload =
    if (not t.crashed.(pid)) && dsts <> [] then begin
      let raw = t.lcs.(pid) in
      (* One envelope (and one trace [env]) for the whole fan-out: the
         Send entries below share it, which is faithful — the fan-out is
         one causal event at the sender. *)
      let env = t.next_env in
      t.next_env <- env + 1;
      let time = Scheduler.now t.sched in
      let tag = t.tag payload in
      List.iter
        (fun dst ->
          let same_group = Topology.same_group t.topology pid dst in
          Trace.record t.trace
            (Send
               {
                 time;
                 src = pid;
                 dst;
                 inter_group = not same_group;
                 lc = Lclock.on_send ~same_group raw;
                 tag;
                 env;
               }))
        dsts;
      Network.send_multi (net t) ~src:pid ~dsts { data = payload; lc = raw; env }
    end
  in
  let set_timer ~after f =
    Scheduler.after_tagged t.sched (Scheduler.Tag.timer pid) after (fun () ->
        if not t.crashed.(pid) then f ())
  in
  let on_crash_detected ~delay callback =
    t.crash_subs <- { subscriber = pid; delay; callback } :: t.crash_subs;
    (* Already-crashed processes are reported too: find them via the flag
       array (their crash entries are in the trace, but scanning flags is
       enough since detection delay counts from now in that case). The
       subscriber guard is checked at fire time, like [set_timer]'s: a
       detector on a process that has itself died must stay silent. *)
    Array.iteri
      (fun q dead ->
        if dead then
          ignore
            (Scheduler.after_tagged t.sched (Scheduler.Tag.timer pid) delay
               (fun () -> if not t.crashed.(pid) then callback q)))
      t.crashed
  in
  let on_fd_perturb f = t.fd_subs <- t.fd_subs @ [ (pid, f) ] in
  {
    Transport.self = pid;
    topology = t.topology;
    send;
    send_multi;
    now = (fun () -> Scheduler.now t.sched);
    set_timer;
    cancel_timer = (fun h -> Scheduler.cancel t.sched h);
    lc = (fun () -> t.lcs.(pid));
    alive = (fun q -> not t.crashed.(q));
    on_crash_detected;
    on_fd_perturb;
  }

let services t pid =
  let record_cast id =
    t.lcs.(pid) <- Lclock.on_local t.lcs.(pid);
    Trace.record t.trace
      (Cast { time = Scheduler.now t.sched; pid; id; lc = t.lcs.(pid) })
  in
  let record_deliver id =
    t.lcs.(pid) <- Lclock.on_local t.lcs.(pid);
    Trace.record t.trace
      (Deliver { time = Scheduler.now t.sched; pid; id; lc = t.lcs.(pid) })
  in
  let note text =
    Trace.record t.trace (Note { time = Scheduler.now t.sched; pid; text })
  in
  Services.of_transport ~record_cast ~record_deliver ~note
    ~rng:t.node_rngs.(pid) (transport t pid)

let spawn t pid make =
  (match t.nodes.(pid) with
  | Some _ -> invalid_arg "Engine.spawn: node already exists"
  | None -> ());
  let state, node = make (services t pid) in
  t.nodes.(pid) <- Some node;
  state

let schedule_crash ?(drop = Keep_inflight) t ~at pid =
  ignore
    (Scheduler.at_tagged t.sched (Scheduler.Tag.crash pid) at (fun () ->
         if not t.crashed.(pid) then begin
           t.crashed.(pid) <- true;
           Trace.record t.trace
             (Crash { time = Scheduler.now t.sched; pid });
           let dropped =
             match drop with
             | Keep_inflight -> 0
             | Lose_all_inflight ->
               Network.drop_inflight (net t) (fun ~src ~dst:_ -> src = pid)
             | Lose_to victims ->
               Network.drop_inflight (net t) (fun ~src ~dst ->
                   src = pid && List.mem dst victims)
             | Lose_each_with_probability p ->
               Network.drop_inflight (net t) (fun ~src ~dst:_ ->
                   src = pid && Rng.float t.fault_rng 1.0 < p)
           in
           ignore dropped;
           List.iter
             (fun { subscriber; delay; callback } ->
               (* Guard at fire time, not scheduling time: the subscriber
                  may itself crash between this crash and its detection
                  delay elapsing, and a dead process must not react. *)
               ignore
                 (Scheduler.after_tagged t.sched
                    (Scheduler.Tag.timer subscriber) delay (fun () ->
                      if not t.crashed.(subscriber) then callback pid)))
             t.crash_subs
         end))

let perturb_fd t scale =
  if scale <= 0. then invalid_arg "Engine.perturb_fd: scale must be > 0";
  List.iter
    (fun (pid, f) -> if not t.crashed.(pid) then f scale)
    t.fd_subs

let at ?(tag = Scheduler.Tag.generic) t time f =
  ignore (Scheduler.at_tagged t.sched tag time f)
let run ?until ?max_steps t = Scheduler.run ?until ?max_steps t.sched
let now t = Scheduler.now t.sched
let alive t pid = not t.crashed.(pid)
let lc t pid = t.lcs.(pid)
let trace t = t.trace
let topology t = t.topology
let network t = net t
let scheduler t = t.sched
let fault_rng t = t.fault_rng

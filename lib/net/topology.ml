type pid = int
type gid = int

type t = {
  group_of : gid array; (* indexed by pid *)
  members : pid array array; (* indexed by gid *)
}

let make ~sizes =
  if sizes = [] then invalid_arg "Topology.make: no groups";
  List.iter
    (fun d -> if d <= 0 then invalid_arg "Topology.make: empty group")
    sizes;
  let n = List.fold_left ( + ) 0 sizes in
  let group_of = Array.make n 0 in
  let members =
    Array.of_list
      (List.mapi
         (fun _ d -> Array.make d 0)
         sizes)
  in
  let pid = ref 0 in
  List.iteri
    (fun g d ->
      for i = 0 to d - 1 do
        group_of.(!pid) <- g;
        members.(g).(i) <- !pid;
        incr pid
      done)
    sizes;
  { group_of; members }

let symmetric ~groups ~per_group =
  make ~sizes:(List.init groups (fun _ -> per_group))

let n_processes t = Array.length t.group_of
let n_groups t = Array.length t.members
let group_of t p = t.group_of.(p)
let members t g = Array.to_list t.members.(g)
let members_array t g = t.members.(g)
let iter_members t g f = Array.iter f t.members.(g)
let group_size t g = Array.length t.members.(g)
let all_pids t = List.init (n_processes t) Fun.id
let all_groups t = List.init (n_groups t) Fun.id
let same_group t p q = t.group_of.(p) = t.group_of.(q)

let pids_of_groups t gs =
  let gs = List.sort_uniq Int.compare gs in
  List.concat_map (members t) gs

let others_in_group t p =
  List.filter (fun q -> q <> p) (members t (group_of t p))

let pp ppf t =
  Fmt.pf ppf "@[<h>{%a}@]"
    Fmt.(list ~sep:(any "; ") (fun ppf g ->
      Fmt.pf ppf "g%d=%a" g (list ~sep:(any ",") int) (members t g)))
    (all_groups t)

(** Non-clique WAN overlays over the group graph.

    The paper's model (and every protocol up to PR 9) assumes a clique:
    any group can message any other directly, at the latency the
    {!Latency} model assigns to the pair. Real wide-area deployments are
    not cliques — sites hang off regional hubs, continents form rings —
    and the modern genuine-multicast baselines (FlexCast in particular)
    route messages {e along} such an overlay instead of across it.

    An overlay is an undirected connected graph over the group ids of a
    topology, each edge carrying a latency class. From it we derive, once
    at construction time:
    - deterministic all-pairs routing tables (shortest path by summed
      edge delay, ties broken by hop count and then lowest intermediate
      group id — every process computes the same routes);
    - a {!Latency.t} matrix in which the delay between two groups is the
      summed delay of their route, so {e every existing protocol} runs
      unchanged on the overlay geometry (its direct sends model traffic
      traversing the underlying links);
    - link-crossing metrics ({!inter_crossings}) that let benchmarks
      compare "inter-continental messages per cast" between protocols
      that send directly (crossing several links per message) and
      protocols that forward hop by hop (one link per message). *)

type edge_class =
  | Metro  (** same metropolitan area, 5 ms *)
  | Continental  (** same continent, 20 ms *)
  | Intercontinental  (** cross-continent, 50 ms *)

val class_delay_us : edge_class -> int
(** Jitter-free one-way delay modelled for a link of this class. The
    Intercontinental delay equals {!Latency.wan_default}'s inter-group
    base, so a clique overlay reproduces the classic WAN model. *)

val class_name : edge_class -> string

type kind = Clique | Hub | Ring | Tree | Custom

val kind_name : kind -> string
(** ["clique"], ["hub"], ["ring"], ["tree"], ["custom"]. *)

val kind_of_name : string -> kind option
(** Inverse of {!kind_name}; [Custom] is not parseable (a custom overlay
    is only constructible through {!of_edges}). *)

type t

val of_edges :
  ?kind:kind -> groups:int -> (Topology.gid * Topology.gid * edge_class) list -> t
(** [of_edges ~groups edges] builds an overlay over groups
    [0 .. groups-1] with the given undirected edges. [kind] defaults to
    [Custom] and is purely descriptive.
    @raise Invalid_argument if [groups <= 0], an endpoint is out of
    range, an edge is a self-loop, the same pair appears with two
    different classes, or — the validation every consumer relies on —
    some group pair is not connected. *)

val clique : groups:int -> t
(** Every pair adjacent over an {!Intercontinental} link — the classic
    model as an overlay. *)

val hub : groups:int -> t
(** Hub-and-spoke: group 0 is the hub; every other group hangs off it on
    an {!Intercontinental} link. Spoke-to-spoke routes cross two links. *)

val ring : groups:int -> t
(** A continental ring [0 - 1 - ... - m-1 - 0] of {!Continental} links.
    @raise Invalid_argument if [groups < 3] ([ring] needs a cycle; use
    {!clique} or {!hub} for smaller deployments). *)

val tree : groups:int -> t
(** A binary tree rooted at group 0 (group [i]'s parent is [(i-1)/2]):
    root edges are {!Intercontinental}, deeper edges {!Continental}. *)

val of_kind : kind -> groups:int -> t
(** The named geometry at the given size.
    @raise Invalid_argument on [Custom] (no edge list to build from) or
    when the size is invalid for the kind (e.g. a ring of 2). *)

val groups : t -> int
val kind : t -> kind

val edges : t -> (Topology.gid * Topology.gid * edge_class) list
(** Canonical edge list: each undirected edge once, lower endpoint
    first, sorted. *)

val neighbors : t -> Topology.gid -> Topology.gid list
(** Adjacent groups, ascending. *)

val is_clique : t -> bool
(** Structural: every distinct pair is adjacent (single-group overlays
    are cliques). The FlexCast-degenerates-to-Skeen property holds
    exactly on such overlays. *)

val next_hop : t -> src:Topology.gid -> dst:Topology.gid -> Topology.gid
(** First group after [src] on the route to [dst]; [dst] itself when the
    pair is adjacent, [src] when [src = dst]. *)

val route : t -> src:Topology.gid -> dst:Topology.gid -> Topology.gid list
(** The full route, inclusive of both endpoints ([[src]] when
    [src = dst]). Deterministic: shortest by summed delay, ties by hop
    count then lowest next-hop id. *)

val hops : t -> src:Topology.gid -> dst:Topology.gid -> int
(** Number of overlay links the route crosses (0 when [src = dst]). *)

val dist_us : t -> src:Topology.gid -> dst:Topology.gid -> int
(** Summed jitter-free delay of the route, in microseconds. *)

val inter_crossings : t -> src:Topology.gid -> dst:Topology.gid -> int
(** How many {!Intercontinental} links the route crosses — the unit of
    the msgpath overlay cells: a direct send between the groups costs
    this many inter-continental link traversals. *)

val path_groups : t -> src:Topology.gid -> dsts:Topology.gid list -> Topology.gid list
(** Union of the routes from [src] to each destination (sorted,
    deduplicated; includes [src] and the destinations themselves) — the
    groups FlexCast's dissemination touches. *)

val participants :
  t -> src:Topology.gid -> dsts:Topology.gid list -> Topology.gid list
(** {!path_groups} plus the routes between every destination pair (the
    stamp-exchange paths): the full set of groups allowed to take part
    in an overlay-genuine multicast from [src] to [dsts]. On a clique
    this is exactly [src :: dsts]. *)

val cut_edges : t -> (Topology.gid * Topology.gid) list
(** The bridges: edges whose removal disconnects the overlay (all of
    them on a hub or tree, none on a ring or clique of 3+). The
    overlay-aware nemesis partitions along these. *)

val side_of_cut :
  t -> cut:Topology.gid * Topology.gid -> Topology.gid list * Topology.gid list
(** The two group sets a cut edge separates (each side contains its
    endpoint of the edge).
    @raise Invalid_argument if the edge is not a bridge of the overlay. *)

val to_latency : ?jitter:Des.Sim_time.t -> ?intra:Des.Sim_time.t -> t -> Latency.t
(** The derived {!Latency.t}: a matrix whose [(a, b)] entry is
    [dist_us a b] — a direct send between two groups takes as long as
    its route through the overlay. [intra] defaults to 1 ms (the classic
    WAN intra-group delay), [jitter] to zero (crisp, the model-checking
    and differential-friendly default). *)

val check_topology : t -> Topology.t -> unit
(** @raise Invalid_argument when the overlay's group count differs from
    the topology's — the validation every deploy-time consumer calls. *)

val pp : Format.formatter -> t -> unit

(* Overlay graphs over the group ids (see overlay.mli). Everything is
   derived eagerly at construction: routing tables, per-pair distances
   and hop counts, so deploy-time consumers only do array reads. *)

type edge_class = Metro | Continental | Intercontinental

let class_delay_us = function
  | Metro -> 5_000
  | Continental -> 20_000
  | Intercontinental -> 50_000

let class_name = function
  | Metro -> "metro"
  | Continental -> "continental"
  | Intercontinental -> "intercontinental"

type kind = Clique | Hub | Ring | Tree | Custom

let kind_name = function
  | Clique -> "clique"
  | Hub -> "hub"
  | Ring -> "ring"
  | Tree -> "tree"
  | Custom -> "custom"

let kind_of_name = function
  | "clique" -> Some Clique
  | "hub" -> Some Hub
  | "ring" -> Some Ring
  | "tree" -> Some Tree
  | _ -> None

type t = {
  groups : int;
  kind : kind;
  edges : (Topology.gid * Topology.gid * edge_class) list;
  adj : (Topology.gid * edge_class) list array;
  next : Topology.gid array array; (* next.(s).(d): first hop after s *)
  dist : int array array; (* summed class delay of the route, us *)
  hop : int array array; (* links on the route *)
  crossings : int array array; (* Intercontinental links on the route *)
}

let inf = max_int / 4

(* Deterministic route preference: shortest summed delay, then fewest
   hops, then the lexicographically smallest next-hop — so every process
   (and every session) derives identical routing tables. *)
let better (d1, h1, n1) (d2, h2, n2) =
  d1 < d2 || (d1 = d2 && (h1 < h2 || (h1 = h2 && n1 < n2)))

let of_edges ?(kind = Custom) ~groups edge_list =
  if groups <= 0 then invalid_arg "Net.Overlay: groups must be positive";
  let canon (a, b, c) =
    if a < 0 || a >= groups || b < 0 || b >= groups then
      invalid_arg
        (Printf.sprintf "Net.Overlay: edge (%d, %d) outside [0, %d)" a b
           groups);
    if a = b then
      invalid_arg (Printf.sprintf "Net.Overlay: self-loop on group %d" a);
    if a < b then (a, b, c) else (b, a, c)
  in
  let edges =
    List.map canon edge_list
    |> List.sort_uniq (fun (a1, b1, c1) (a2, b2, c2) ->
           compare (a1, b1, c1) (a2, b2, c2))
  in
  (* Same pair surviving dedup twice = two different classes. *)
  let rec check_dup = function
    | (a1, b1, _) :: ((a2, b2, _) :: _ as rest) ->
      if a1 = a2 && b1 = b2 then
        invalid_arg
          (Printf.sprintf
             "Net.Overlay: edge (%d, %d) given with two latency classes" a1 b1);
      check_dup rest
    | _ -> ()
  in
  check_dup edges;
  let adj = Array.make groups [] in
  List.iter
    (fun (a, b, c) ->
      adj.(a) <- (b, c) :: adj.(a);
      adj.(b) <- (a, c) :: adj.(b))
    edges;
  Array.iteri
    (fun g l -> adj.(g) <- List.sort (fun (a, _) (b, _) -> compare a b) l)
    adj;
  let dist = Array.make_matrix groups groups inf in
  let hop = Array.make_matrix groups groups inf in
  let crossings = Array.make_matrix groups groups 0 in
  let next = Array.make_matrix groups groups (-1) in
  for g = 0 to groups - 1 do
    dist.(g).(g) <- 0;
    hop.(g).(g) <- 0;
    next.(g).(g) <- g
  done;
  List.iter
    (fun (a, b, c) ->
      let d = class_delay_us c in
      let x = if c = Intercontinental then 1 else 0 in
      dist.(a).(b) <- d;
      dist.(b).(a) <- d;
      hop.(a).(b) <- 1;
      hop.(b).(a) <- 1;
      crossings.(a).(b) <- x;
      crossings.(b).(a) <- x;
      next.(a).(b) <- b;
      next.(b).(a) <- a)
    edges;
  (* Floyd–Warshall over (delay, hops, next-hop id); the comparison makes
     the tables a pure function of the edge set. [k] must be a proper
     interior point: with [k = i] the candidate tuple reuses
     [next.(i).(i) = i] and its low id would win delay/hop ties,
     corrupting [next.(i).(j)] into the source itself. *)
  for k = 0 to groups - 1 do
    for i = 0 to groups - 1 do
      if k <> i && dist.(i).(k) < inf then
        for j = 0 to groups - 1 do
          if k <> j && dist.(k).(j) < inf then begin
            let d = dist.(i).(k) + dist.(k).(j) in
            let h = hop.(i).(k) + hop.(k).(j) in
            let n = next.(i).(k) in
            if
              i <> j
              && better (d, h, n) (dist.(i).(j), hop.(i).(j), next.(i).(j))
            then begin
              dist.(i).(j) <- d;
              hop.(i).(j) <- h;
              crossings.(i).(j) <- crossings.(i).(k) + crossings.(k).(j);
              next.(i).(j) <- n
            end
          end
        done
    done
  done;
  for i = 0 to groups - 1 do
    for j = 0 to groups - 1 do
      if dist.(i).(j) >= inf then
        invalid_arg
          (Printf.sprintf
             "Net.Overlay: groups %d and %d are not connected by the overlay"
             i j)
    done
  done;
  { groups; kind; edges; adj; next; dist; hop; crossings }

let clique ~groups =
  let edges = ref [] in
  for a = 0 to groups - 1 do
    for b = a + 1 to groups - 1 do
      edges := (a, b, Intercontinental) :: !edges
    done
  done;
  of_edges ~kind:Clique ~groups !edges

let hub ~groups =
  of_edges ~kind:Hub ~groups
    (List.init (max 0 (groups - 1)) (fun i -> (0, i + 1, Intercontinental)))

let ring ~groups =
  if groups < 3 then
    invalid_arg "Net.Overlay.ring: needs at least 3 groups to form a cycle";
  of_edges ~kind:Ring ~groups
    (List.init groups (fun i -> (i, (i + 1) mod groups, Continental)))

let tree ~groups =
  of_edges ~kind:Tree ~groups
    (List.init (max 0 (groups - 1)) (fun i ->
         let child = i + 1 in
         let parent = (child - 1) / 2 in
         ( parent,
           child,
           if parent = 0 then Intercontinental else Continental )))

let of_kind k ~groups =
  match k with
  | Clique -> clique ~groups
  | Hub -> hub ~groups
  | Ring -> ring ~groups
  | Tree -> tree ~groups
  | Custom ->
    invalid_arg "Net.Overlay.of_kind: a custom overlay needs an edge list"

let groups t = t.groups
let kind t = t.kind
let edges t = t.edges
let neighbors t g = List.map fst t.adj.(g)

let is_clique t =
  let ok = ref true in
  for i = 0 to t.groups - 1 do
    for j = 0 to t.groups - 1 do
      if i <> j && t.hop.(i).(j) > 1 then ok := false
    done
  done;
  !ok

let next_hop t ~src ~dst = t.next.(src).(dst)
let hops t ~src ~dst = t.hop.(src).(dst)
let dist_us t ~src ~dst = t.dist.(src).(dst)
let inter_crossings t ~src ~dst = t.crossings.(src).(dst)

let route t ~src ~dst =
  let rec walk g acc =
    if g = dst then List.rev (dst :: acc)
    else walk t.next.(g).(dst) (g :: acc)
  in
  walk src []

let path_groups t ~src ~dsts =
  List.concat_map (fun d -> route t ~src ~dst:d) dsts
  |> List.cons src |> List.sort_uniq Int.compare

let participants t ~src ~dsts =
  let between =
    let rec pairs = function
      | [] -> []
      | d1 :: rest ->
        List.concat_map (fun d2 -> route t ~src:d1 ~dst:d2) rest @ pairs rest
    in
    pairs (List.sort_uniq Int.compare dsts)
  in
  path_groups t ~src ~dsts @ between |> List.sort_uniq Int.compare

(* Connectivity of the overlay with one edge removed: the bridge test
   behind [cut_edges] and [side_of_cut]. Overlays are small (tens of
   groups), so a BFS per edge is fine. *)
let reachable_without t ~cut:(ca, cb) start =
  let seen = Array.make t.groups false in
  let queue = Queue.create () in
  Queue.add start queue;
  seen.(start) <- true;
  while not (Queue.is_empty queue) do
    let g = Queue.pop queue in
    List.iter
      (fun (n, _) ->
        let is_cut = (g = ca && n = cb) || (g = cb && n = ca) in
        if (not is_cut) && not seen.(n) then begin
          seen.(n) <- true;
          Queue.add n queue
        end)
      t.adj.(g)
  done;
  seen

let cut_edges t =
  List.filter_map
    (fun (a, b, _) ->
      let seen = reachable_without t ~cut:(a, b) a in
      if seen.(b) then None else Some (a, b))
    t.edges

let side_of_cut t ~cut:(a, b) =
  let seen = reachable_without t ~cut:(a, b) a in
  if seen.(b) then
    invalid_arg
      (Printf.sprintf "Net.Overlay.side_of_cut: (%d, %d) is not a bridge" a b);
  let side_a = ref [] and side_b = ref [] in
  for g = t.groups - 1 downto 0 do
    if seen.(g) then side_a := g :: !side_a else side_b := g :: !side_b
  done;
  (!side_a, !side_b)

let to_latency ?(jitter = Des.Sim_time.zero)
    ?(intra = Des.Sim_time.of_ms 1) t =
  let inter =
    Array.init t.groups (fun a ->
        Array.init t.groups (fun b ->
            Des.Sim_time.of_us t.dist.(a).(b)))
  in
  Latency.matrix ~jitter ~intra ~inter ()

let check_topology t topo =
  let m = Topology.n_groups topo in
  if m <> t.groups then
    invalid_arg
      (Printf.sprintf
         "Net.Overlay: overlay covers %d groups but the topology has %d"
         t.groups m)

let pp ppf t =
  Fmt.pf ppf "@[<v>overlay %s over %d groups@," (kind_name t.kind) t.groups;
  List.iter
    (fun (a, b, c) -> Fmt.pf ppf "  %d -- %d (%s)@," a b (class_name c))
    t.edges;
  Fmt.pf ppf "@]"

open Des

type 'w single = {
  src : Topology.pid;
  dst : Topology.pid;
  payload : 'w;
  handle : Scheduler.handle;
}

(* A whole fan-out kept as one slab entry: per-destination arrivals are
   pre-sampled at send time and walked by a single scheduler event that
   re-arms itself for the next destination at pop time. This is the
   [send_multi] fast lane — a broadcast costs one event in the queue at any
   instant instead of one per destination. *)
type 'w multi = {
  m_src : Topology.pid;
  m_payload : 'w;
  arrivals : (Sim_time.t * Topology.pid) array;
      (* sorted by arrival, stable, so equal arrivals keep the order a
         per-destination send loop would deliver them in *)
  mutable pos : int;
  mutable m_handle : Scheduler.handle;
}

type 'w slot = Single of 'w single | Multi of 'w multi

(* In-flight messages live in a free-list slab instead of a Hashtbl: [send]
   is the hottest call in the simulator and the slab turns its bookkeeping
   into two array writes (acquire a slot index, store the record). The
   adversarial controls ([hold]/[heal]/[drop_inflight]) scan the slab — they
   are rare, and they sort by scheduler handle anyway for determinism, so
   losing the hash table costs them nothing. Invariant: [slots.(i) = None]
   iff [i] is on the free stack ([free.(0 .. free_top-1)]). *)
type 'w t = {
  sched : Scheduler.t;
  topology : Topology.t;
  latency : Latency.t;
  rng : Rng.t;
  deliver : src:Topology.pid -> dst:Topology.pid -> 'w -> unit;
  mutable slots : 'w slot option array;
  mutable free : int array;
  mutable free_top : int;
  n_groups : int;
  holds : Sim_time.t array;
      (* dense (src_group, dst_group) -> release floor, [Sim_time.zero] =
         link unheld. [hold_floor] sits on the admission hot path, so the
         lookup must stay an array read even at hundred-group scale —
         g*g entries is small (10k words at 100 groups) next to the
         per-process state. *)
  scales : float array; (* dense link latency scales, 1.0 = base model *)
  mutable send_filter : (src:Topology.pid -> dst:Topology.pid -> bool) option;
  mutable taps : (src:Topology.pid -> dst:Topology.pid -> 'w -> unit) list;
  mutable explode_fanout : bool;
      (* controlled-scheduling mode: give every fan-out destination its own
         scheduler event so a model checker can reorder them individually *)
  mutable tx_cost : Sim_time.t;
      (* per-message egress serialization at the sender's NIC: each
         admitted message occupies the source for [tx_cost] before its
         propagation delay starts, so fan-outs and high offered rates
         queue at the sender instead of enjoying infinite bandwidth. Zero
         (the default) keeps the pure-latency model byte for byte. *)
  mutable next_free : Sim_time.t array; (* per-source egress availability *)
  mutable sent_total : int;
  mutable sent_inter : int;
  mutable sent_intra : int;
}

let create ~sched ~topology ~latency ~rng ~deliver =
  let g = Topology.n_groups topology in
  {
    sched;
    topology;
    latency;
    rng;
    deliver;
    slots = [||];
    free = [||];
    free_top = 0;
    n_groups = g;
    holds = Array.make (g * g) Sim_time.zero;
    scales = Array.make (g * g) 1.0;
    send_filter = None;
    taps = [];
    explode_fanout = false;
    tx_cost = Sim_time.zero;
    next_free = Array.make (Topology.n_processes topology) Sim_time.zero;
    sent_total = 0;
    sent_inter = 0;
    sent_intra = 0;
  }

let link t ~src_group ~dst_group = (src_group * t.n_groups) + dst_group
let hold_floor t ~src_group ~dst_group = t.holds.(link t ~src_group ~dst_group)

let acquire_slot t =
  if t.free_top = 0 then begin
    let cap = Array.length t.slots in
    let ncap = if cap = 0 then 64 else cap * 2 in
    let ns = Array.make ncap None in
    Array.blit t.slots 0 ns 0 cap;
    t.slots <- ns;
    let nf = Array.make ncap 0 in
    t.free <- nf;
    (* Push new indices high-to-low so low indices are handed out first. *)
    for i = ncap - 1 downto cap do
      t.free.(t.free_top) <- i;
      t.free_top <- t.free_top + 1
    done
  end;
  t.free_top <- t.free_top - 1;
  t.free.(t.free_top)

let release_slot t i =
  t.slots.(i) <- None;
  t.free.(t.free_top) <- i;
  t.free_top <- t.free_top + 1

let rec fire t i =
  match t.slots.(i) with
  | None -> ()
  | Some (Single s) ->
    release_slot t i;
    t.deliver ~src:s.src ~dst:s.dst s.payload
  | Some (Multi m) ->
    let _, dst = m.arrivals.(m.pos) in
    m.pos <- m.pos + 1;
    (* Re-arm (or release) before delivering: the delivery can send, and a
       released slot must be reusable from inside it. *)
    if m.pos < Array.length m.arrivals then begin
      let at, next_dst = m.arrivals.(m.pos) in
      m.m_handle <-
        Scheduler.at_tagged t.sched (Scheduler.Tag.deliver next_dst) at
          (fun () -> fire t i)
    end
    else release_slot t i;
    t.deliver ~src:m.m_src ~dst m.m_payload

let schedule_delivery t ~src ~dst ~arrival payload =
  let i = acquire_slot t in
  let handle =
    Scheduler.at_tagged t.sched (Scheduler.Tag.deliver dst) arrival
      (fun () -> fire t i)
  in
  t.slots.(i) <- Some (Single { src; dst; payload; handle })

(* Per-destination admission, bookkeeping and latency sampling, shared
   between [send] and [send_multi] so the two paths are observably
   equivalent (filter, counters, taps and rng draws happen in the same
   order). Returns [None] when the filter rejects the destination. *)
(* One latency draw on a link, with any active spike scale applied — shared
   by admission and by [heal]'s re-scheduling so a spiked link stays spiked
   for messages released from a partition. *)
let sample_delay t ~src_group ~dst_group =
  let delay = Latency.sample t.latency t.rng ~src_group ~dst_group in
  let s = t.scales.(link t ~src_group ~dst_group) in
  if s = 1.0 then delay
  else
    Sim_time.of_us
      (max 0 (int_of_float (s *. float_of_int (Sim_time.to_us delay))))

let admit t ~src ~src_group ~dst payload =
  let admitted =
    match t.send_filter with
    | None -> true
    | Some f -> f ~src ~dst
  in
  if not admitted then None
  else begin
    let dst_group = Topology.group_of t.topology dst in
    t.sent_total <- t.sent_total + 1;
    if src_group = dst_group then t.sent_intra <- t.sent_intra + 1
    else t.sent_inter <- t.sent_inter + 1;
    List.iter (fun tap -> tap ~src ~dst payload) t.taps;
    let delay = sample_delay t ~src_group ~dst_group in
    let departure =
      if Sim_time.compare t.tx_cost Sim_time.zero > 0 then begin
        (* Serialize at the sender's NIC: this message departs once the
           egress is free, and occupies it for [tx_cost]. *)
        let d = Sim_time.max (Scheduler.now t.sched) t.next_free.(src) in
        t.next_free.(src) <- Sim_time.add d t.tx_cost;
        d
      end
      else Scheduler.now t.sched
    in
    let arrival = Sim_time.add departure delay in
    Some (Sim_time.max arrival (hold_floor t ~src_group ~dst_group))
  end

let send t ~src ~dst payload =
  let src_group = Topology.group_of t.topology src in
  match admit t ~src ~src_group ~dst payload with
  | None -> ()
  | Some arrival -> schedule_delivery t ~src ~dst ~arrival payload

let send_multi t ~src ~dsts payload =
  let src_group = Topology.group_of t.topology src in
  let entries =
    List.filter_map
      (fun dst ->
        match admit t ~src ~src_group ~dst payload with
        | None -> None
        | Some arrival -> Some (arrival, dst))
      dsts
  in
  match entries with
  | [] -> ()
  | [ (arrival, dst) ] -> schedule_delivery t ~src ~dst ~arrival payload
  | entries when t.explode_fanout ->
    (* Controlled mode: every destination gets its own event so the
       explorer can reorder the fan-out's deliveries independently. The
       admission above already drew latencies in the same order as the
       slab path, so the two modes stay observably equivalent. *)
    List.iter
      (fun (arrival, dst) -> schedule_delivery t ~src ~dst ~arrival payload)
      entries
  | entries ->
    let arrivals = Array.of_list entries in
    Array.stable_sort (fun (a, _) (b, _) -> Sim_time.compare a b) arrivals;
    let i = acquire_slot t in
    let at, dst0 = arrivals.(0) in
    let handle =
      Scheduler.at_tagged t.sched (Scheduler.Tag.deliver dst0) at
        (fun () -> fire t i)
    in
    t.slots.(i) <-
      Some (Multi { m_src = src; m_payload = payload; arrivals; pos = 0;
                    m_handle = handle })

(* The adversarial controls below reason about one (src, dst, arrival)
   triple per slot; dissolve multi slots into singles first. They only run
   on rare control events, so the cost is irrelevant. Indices are collected
   before any slot is touched: releasing/acquiring mid-iteration can swap
   the slab array out from under [Array.iteri]. *)
let explode t =
  let multis = ref [] in
  Array.iteri
    (fun i s ->
      match s with Some (Multi m) -> multis := (i, m) :: !multis | _ -> ())
    t.slots;
  List.iter
    (fun (i, m) ->
      Scheduler.cancel t.sched m.m_handle;
      release_slot t i;
      for j = m.pos to Array.length m.arrivals - 1 do
        let arrival, dst = m.arrivals.(j) in
        schedule_delivery t ~src:m.m_src ~dst ~arrival m.m_payload
      done)
    (List.sort (fun (a, _) (b, _) -> Int.compare a b) !multis)

(* In-flight messages on the [src_group]→[dst_group] link, sorted by
   scheduler handle (i.e. scheduling order) for determinism. *)
let inflight_on_link t ~src_group ~dst_group =
  explode t;
  let acc = ref [] in
  Array.iteri
    (fun i s ->
      match s with
      | Some (Single m)
        when Topology.group_of t.topology m.src = src_group
             && Topology.group_of t.topology m.dst = dst_group ->
        acc := (i, m) :: !acc
      | _ -> ())
    t.slots;
  List.sort (fun (_, a) (_, b) -> Int.compare a.handle b.handle) !acc

let hold t ~src_group ~dst_group ~until =
  let l = link t ~src_group ~dst_group in
  t.holds.(l) <- Sim_time.max t.holds.(l) until;
  (* Push back messages already in flight on that link. *)
  List.iter
    (fun (i, m) ->
      Scheduler.cancel t.sched m.handle;
      release_slot t i;
      schedule_delivery t ~src:m.src ~dst:m.dst ~arrival:until m.payload)
    (inflight_on_link t ~src_group ~dst_group)

let partition t ~src_group ~dst_group =
  hold t ~src_group ~dst_group ~until:Sim_time.infinity

let heal t ~src_group ~dst_group =
  let l = link t ~src_group ~dst_group in
  if not (Sim_time.equal t.holds.(l) Sim_time.zero) then begin
    t.holds.(l) <- Sim_time.zero;
    (* Re-schedule everything that was parked on this link with a fresh
       latency sample from the healing instant. *)
    List.iter
      (fun (i, m) ->
        Scheduler.cancel t.sched m.handle;
        release_slot t i;
        let delay = sample_delay t ~src_group ~dst_group in
        let arrival = Sim_time.add (Scheduler.now t.sched) delay in
        schedule_delivery t ~src:m.src ~dst:m.dst ~arrival m.payload)
      (inflight_on_link t ~src_group ~dst_group)
  end

let partition_groups t side_a side_b =
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          partition t ~src_group:a ~dst_group:b;
          partition t ~src_group:b ~dst_group:a)
        side_b)
    side_a

let heal_all t =
  (* Rare control event: a g*g scan beats maintaining a held-link set. *)
  for src_group = 0 to t.n_groups - 1 do
    for dst_group = 0 to t.n_groups - 1 do
      if
        not
          (Sim_time.equal
             t.holds.(link t ~src_group ~dst_group)
             Sim_time.zero)
      then heal t ~src_group ~dst_group
    done
  done

let drop_inflight t pred =
  explode t;
  let victims = ref [] in
  Array.iteri
    (fun i s ->
      match s with
      | Some (Single m) when pred ~src:m.src ~dst:m.dst ->
        victims := (i, m) :: !victims
      | _ -> ())
    t.slots;
  List.iter
    (fun (i, m) ->
      Scheduler.cancel t.sched m.handle;
      release_slot t i)
    !victims;
  List.length !victims

let latency_scale t ~src_group ~dst_group scale =
  if scale <= 0. then invalid_arg "Network.latency_scale: scale must be > 0";
  t.scales.(link t ~src_group ~dst_group) <- scale

let set_send_filter t f = t.send_filter <- f
let set_explode_fanout t b = t.explode_fanout <- b

let set_tx_cost t c =
  if Sim_time.compare c Sim_time.zero < 0 then
    invalid_arg "Network.set_tx_cost: cost must be >= 0";
  t.tx_cost <- c

let tx_cost t = t.tx_cost
let on_send t tap = t.taps <- t.taps @ [ tap ]
let sent_total t = t.sent_total
let sent_inter_group t = t.sent_inter
let sent_intra_group t = t.sent_intra

let in_flight t =
  let n = ref 0 in
  Array.iter
    (fun s ->
      match s with
      | None -> ()
      | Some (Single _) -> incr n
      | Some (Multi m) -> n := !n + (Array.length m.arrivals - m.pos))
    t.slots;
  !n

let topology t = t.topology

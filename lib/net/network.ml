open Des

type 'w slot = {
  src : Topology.pid;
  dst : Topology.pid;
  payload : 'w;
  handle : Scheduler.handle;
}

(* In-flight messages live in a free-list slab instead of a Hashtbl: [send]
   is the hottest call in the simulator and the slab turns its bookkeeping
   into two array writes (acquire a slot index, store the record). The
   adversarial controls ([hold]/[heal]/[drop_inflight]) scan the slab — they
   are rare, and they sort by scheduler handle anyway for determinism, so
   losing the hash table costs them nothing. Invariant: [slots.(i) = None]
   iff [i] is on the free stack ([free.(0 .. free_top-1)]). *)
type 'w t = {
  sched : Scheduler.t;
  topology : Topology.t;
  latency : Latency.t;
  rng : Rng.t;
  deliver : src:Topology.pid -> dst:Topology.pid -> 'w -> unit;
  mutable slots : 'w slot option array;
  mutable free : int array;
  mutable free_top : int;
  holds : (Topology.gid * Topology.gid, Sim_time.t) Hashtbl.t;
  mutable send_filter : (src:Topology.pid -> dst:Topology.pid -> bool) option;
  mutable taps : (src:Topology.pid -> dst:Topology.pid -> 'w -> unit) list;
  mutable sent_total : int;
  mutable sent_inter : int;
  mutable sent_intra : int;
}

let create ~sched ~topology ~latency ~rng ~deliver =
  {
    sched;
    topology;
    latency;
    rng;
    deliver;
    slots = [||];
    free = [||];
    free_top = 0;
    holds = Hashtbl.create 8;
    send_filter = None;
    taps = [];
    sent_total = 0;
    sent_inter = 0;
    sent_intra = 0;
  }

let hold_floor t ~src_group ~dst_group =
  match Hashtbl.find_opt t.holds (src_group, dst_group) with
  | None -> Sim_time.zero
  | Some u -> u

let acquire_slot t =
  if t.free_top = 0 then begin
    let cap = Array.length t.slots in
    let ncap = if cap = 0 then 64 else cap * 2 in
    let ns = Array.make ncap None in
    Array.blit t.slots 0 ns 0 cap;
    t.slots <- ns;
    let nf = Array.make ncap 0 in
    t.free <- nf;
    (* Push new indices high-to-low so low indices are handed out first. *)
    for i = ncap - 1 downto cap do
      t.free.(t.free_top) <- i;
      t.free_top <- t.free_top + 1
    done
  end;
  t.free_top <- t.free_top - 1;
  t.free.(t.free_top)

let release_slot t i =
  t.slots.(i) <- None;
  t.free.(t.free_top) <- i;
  t.free_top <- t.free_top + 1

let fire t i =
  match t.slots.(i) with
  | None -> ()
  | Some s ->
    release_slot t i;
    t.deliver ~src:s.src ~dst:s.dst s.payload

let schedule_delivery t ~src ~dst ~arrival payload =
  let i = acquire_slot t in
  let handle = Scheduler.at t.sched arrival (fun () -> fire t i) in
  t.slots.(i) <- Some { src; dst; payload; handle }

let send t ~src ~dst payload =
  let admitted =
    match t.send_filter with
    | None -> true
    | Some f -> f ~src ~dst
  in
  if admitted then begin
    let src_group = Topology.group_of t.topology src in
    let dst_group = Topology.group_of t.topology dst in
    t.sent_total <- t.sent_total + 1;
    if src_group = dst_group then t.sent_intra <- t.sent_intra + 1
    else t.sent_inter <- t.sent_inter + 1;
    List.iter (fun tap -> tap ~src ~dst payload) t.taps;
    let delay = Latency.sample t.latency t.rng ~src_group ~dst_group in
    let arrival = Sim_time.add (Scheduler.now t.sched) delay in
    let arrival =
      Sim_time.max arrival (hold_floor t ~src_group ~dst_group)
    in
    schedule_delivery t ~src ~dst ~arrival payload
  end

(* In-flight messages on the [src_group]→[dst_group] link, sorted by
   scheduler handle (i.e. scheduling order) for determinism. *)
let inflight_on_link t ~src_group ~dst_group =
  let acc = ref [] in
  Array.iteri
    (fun i s ->
      match s with
      | Some m
        when Topology.group_of t.topology m.src = src_group
             && Topology.group_of t.topology m.dst = dst_group ->
        acc := (i, m) :: !acc
      | _ -> ())
    t.slots;
  List.sort (fun (_, a) (_, b) -> Int.compare a.handle b.handle) !acc

let hold t ~src_group ~dst_group ~until =
  let prev = hold_floor t ~src_group ~dst_group in
  Hashtbl.replace t.holds (src_group, dst_group) (Sim_time.max prev until);
  (* Push back messages already in flight on that link. *)
  List.iter
    (fun (i, m) ->
      Scheduler.cancel t.sched m.handle;
      release_slot t i;
      schedule_delivery t ~src:m.src ~dst:m.dst ~arrival:until m.payload)
    (inflight_on_link t ~src_group ~dst_group)

let partition t ~src_group ~dst_group =
  hold t ~src_group ~dst_group ~until:Sim_time.infinity

let heal t ~src_group ~dst_group =
  if Hashtbl.mem t.holds (src_group, dst_group) then begin
    Hashtbl.remove t.holds (src_group, dst_group);
    (* Re-schedule everything that was parked on this link with a fresh
       latency sample from the healing instant. *)
    List.iter
      (fun (i, m) ->
        Scheduler.cancel t.sched m.handle;
        release_slot t i;
        let delay = Latency.sample t.latency t.rng ~src_group ~dst_group in
        let arrival = Sim_time.add (Scheduler.now t.sched) delay in
        schedule_delivery t ~src:m.src ~dst:m.dst ~arrival m.payload)
      (inflight_on_link t ~src_group ~dst_group)
  end

let partition_groups t side_a side_b =
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          partition t ~src_group:a ~dst_group:b;
          partition t ~src_group:b ~dst_group:a)
        side_b)
    side_a

let heal_all t =
  let links = Hashtbl.fold (fun link _ acc -> link :: acc) t.holds [] in
  List.iter
    (fun (src_group, dst_group) -> heal t ~src_group ~dst_group)
    (List.sort compare links)

let drop_inflight t pred =
  let victims = ref [] in
  Array.iteri
    (fun i s ->
      match s with
      | Some m when pred ~src:m.src ~dst:m.dst -> victims := (i, m) :: !victims
      | _ -> ())
    t.slots;
  List.iter
    (fun (i, m) ->
      Scheduler.cancel t.sched m.handle;
      release_slot t i)
    !victims;
  List.length !victims

let set_send_filter t f = t.send_filter <- f
let on_send t tap = t.taps <- t.taps @ [ tap ]
let sent_total t = t.sent_total
let sent_inter_group t = t.sent_inter
let sent_intra_group t = t.sent_intra
let in_flight t = Array.length t.slots - t.free_top
let topology t = t.topology

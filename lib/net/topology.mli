(** Process groups and their layout.

    The system is a set [Pi = {0, ..., n-1}] of processes partitioned into
    disjoint, non-empty groups [Gamma = {0, ..., m-1}], mirroring Section 2.1
    of the paper. Processes in the same group model one geographical site. *)

type pid = int
(** A process identifier, dense in [\[0, n)]. *)

type gid = int
(** A group identifier, dense in [\[0, m)]. *)

type t

val make : sizes:int list -> t
(** [make ~sizes:[d0; d1; ...]] is a topology with [List.length sizes]
    groups, group [i] holding [di] processes. Pids are assigned densely,
    group 0 first.
    @raise Invalid_argument if any size is non-positive or the list is
    empty. *)

val symmetric : groups:int -> per_group:int -> t
(** [symmetric ~groups:m ~per_group:d] is [make] with [m] groups of [d]. *)

val n_processes : t -> int
val n_groups : t -> int

val group_of : t -> pid -> gid
(** The group a process belongs to ([group(p)] in the paper). *)

val members : t -> gid -> pid list
(** Processes of a group, in increasing pid order. *)

val members_array : t -> gid -> pid array
(** The group's members as the topology's own backing array (no copy):
    allocation-free access for hot paths and scale-sized topologies. The
    caller must not mutate it. *)

val iter_members : t -> gid -> (pid -> unit) -> unit
(** Allocation-free iteration over a group's members, in pid order. *)

val group_size : t -> gid -> int

val all_pids : t -> pid list
(** All processes, in increasing order. *)

val all_groups : t -> gid list
(** All groups, in increasing order. *)

val same_group : t -> pid -> pid -> bool

val pids_of_groups : t -> gid list -> pid list
(** Union of the given groups' members, in increasing pid order. Duplicated
    group ids are ignored. *)

val others_in_group : t -> pid -> pid list
(** Members of [group_of p] except [p] itself. *)

val pp : Format.formatter -> t -> unit

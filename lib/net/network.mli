(** The simulated wide-area network.

    Implements the quasi-reliable asynchronous links of Section 2.1: messages
    are never corrupted or duplicated, experience arbitrary (but finite)
    delays, and a message from a correct process to a correct process is
    eventually received. Crashes are modelled above this layer (the runtime
    stops a crashed process from sending and discards its deliveries), but
    the network exposes two adversarial controls the experiments need:

    - {!drop_inflight} removes selected messages that are still in flight —
      this is how a "dirty" crash loses the tail of a faulty process's sends
      (quasi-reliability only protects correct-to-correct pairs);
    - {!hold} delays all traffic between two groups until a given instant —
      this is how the lower-bound experiments (Section 3) build the delayed
      schedules used in the indistinguishability arguments.

    The payload type is a type parameter: each protocol instantiates the
    network with its own wire type, so no runtime tagging is needed. *)

type 'w t

val create :
  sched:Des.Scheduler.t ->
  topology:Topology.t ->
  latency:Latency.t ->
  rng:Des.Rng.t ->
  deliver:(src:Topology.pid -> dst:Topology.pid -> 'w -> unit) ->
  'w t
(** [create ~sched ~topology ~latency ~rng ~deliver] is a network that calls
    [deliver] once per message at its (virtual) arrival time. *)

val send : 'w t -> src:Topology.pid -> dst:Topology.pid -> 'w -> unit
(** Queues one message. Self-sends are allowed and take the intra-group
    delay. Delivery order between two processes is not FIFO (jitter may
    reorder), matching the asynchronous model. *)

val send_multi :
  'w t -> src:Topology.pid -> dsts:Topology.pid list -> 'w -> unit
(** [send_multi t ~src ~dsts w] queues one copy of [w] for every destination
    in [dsts], observably like [List.iter (fun dst -> send t ~src ~dst w)]
    (send filter, counters, taps and per-destination latency samples are all
    applied in list order), but the whole fan-out occupies a single
    scheduler event that walks the pre-sampled arrival times in order,
    re-arming itself at pop time. Broadcast-heavy protocols use this to keep
    the event queue at one entry per fan-out instead of one per
    destination. *)

val hold :
  'w t -> src_group:Topology.gid -> dst_group:Topology.gid ->
  until:Des.Sim_time.t -> unit
(** [hold t ~src_group ~dst_group ~until] delays every message (current and
    future) from [src_group] to [dst_group] so that it arrives no earlier
    than [until]. Messages already in flight are pushed back. *)

val partition :
  'w t -> src_group:Topology.gid -> dst_group:Topology.gid -> unit
(** One-directional partition: messages from [src_group] to [dst_group]
    are held indefinitely (buffered, not dropped — the links stay
    quasi-reliable, a partition is just an arbitrarily long delay in the
    asynchronous model). Use {!heal} to release the buffered traffic. *)

val heal :
  'w t -> src_group:Topology.gid -> dst_group:Topology.gid -> unit
(** Removes a partition/hold between two groups; buffered messages are
    re-scheduled with a fresh link-latency sample from now. *)

val partition_groups : 'w t -> Topology.gid list -> Topology.gid list -> unit
(** Bidirectional partition between two sets of groups ([partition] in both
    directions for every pair). *)

val heal_all : 'w t -> unit
(** Removes every partition and hold. *)

val latency_scale :
  'w t -> src_group:Topology.gid -> dst_group:Topology.gid -> float -> unit
(** [latency_scale t ~src_group ~dst_group s] multiplies every delay sampled
    on the [src_group]→[dst_group] link by [s] from now on (a latency spike
    for [s > 1], an anomalously fast link for [s < 1]). Messages already in
    flight keep their arrival times — the scale perturbs the link's delay
    distribution at admission, not the queue. [s = 1.0] resets the link to
    the base model. Delays stay finite, so quasi-reliability is preserved.
    @raise Invalid_argument if [s <= 0]. *)

val drop_inflight :
  'w t -> (src:Topology.pid -> dst:Topology.pid -> bool) -> int
(** Cancels in-flight messages matching the predicate; returns how many were
    dropped. *)

val set_send_filter :
  'w t -> (src:Topology.pid -> dst:Topology.pid -> bool) option -> unit
(** When set, messages for which the filter returns [false] are silently
    discarded at send time. Used by the runtime to mute crashed processes. *)

val set_explode_fanout : 'w t -> bool -> unit
(** Controlled-scheduling mode (default off): when on, {!send_multi}
    schedules one event per destination instead of one self-re-arming slab
    event for the whole fan-out, so each delivery is an independently
    reorderable choice for the model checker. Latency draws, counters and
    taps are unchanged — only the event-queue shape differs. *)

val set_tx_cost : 'w t -> Des.Sim_time.t -> unit
(** Per-message egress serialization cost at the sender (default zero).
    When positive, each admitted message departs only once the source's
    egress is free and occupies it for this long, so fan-outs and high
    offered rates queue at the sender — the saturation model the
    throughput benchmarks need. Zero keeps the pure-latency model byte
    for byte (no extra state is read or written).
    @raise Invalid_argument if the cost is negative. *)

val tx_cost : 'w t -> Des.Sim_time.t
(** The current egress serialization cost. *)

val on_send :
  'w t ->
  (src:Topology.pid -> dst:Topology.pid -> 'w -> unit) ->
  unit
(** Registers a tap invoked for every message actually admitted to the
    network (after the send filter). Used for tracing and counting. *)

(** Message counters, cumulative since creation. *)

val sent_total : 'w t -> int
val sent_inter_group : 'w t -> int
val sent_intra_group : 'w t -> int
val in_flight : 'w t -> int

val topology : 'w t -> Topology.t

(* FlexCast-style overlay-routed atomic multicast (see flexcast.mli).

   The delivery machinery (pending table, stamp rows, the (final, id)
   index and the root-finalised delivery test) is Skeen's, verbatim: the
   two protocols must produce identical per-pid sequences on a clique
   overlay, and the differential suite asserts they do. What changes is
   the message path: Data and Stamp traffic is routed along the overlay,
   with interior relays timestamping Data in transit. *)

open Net
open Runtime

let name = "flexcast"

type wire =
  | Data of { msg : Msg.t; path_ts : int }
      (* Final hop of dissemination: fans out to an addressee group's
         members. [path_ts] folds the clocks of the interior relays the
         message crossed; 0 when the route had none (always on a
         clique). *)
  | Fwd of { msg : Msg.t; path_ts : int; targets : Topology.gid list }
      (* Interior hop: [targets] are the destination groups this branch
         of the routing tree is responsible for. *)
  | Stamp of { id : Msg_id.t; ts : int; from : Topology.pid }
      (* [from] is the stamping addressee — the transport source is a
         relay when the stamp was routed. *)
  | Fwd_stamp of {
      id : Msg_id.t;
      ts : int;
      from : Topology.pid;
      targets : Topology.gid list;
    }

let tag = function
  | Data _ -> "flexcast.data"
  | Fwd _ -> "flexcast.fwd"
  | Stamp _ -> "flexcast.stamp"
  | Fwd_stamp _ -> "flexcast.fwdstamp"

type pending = {
  msg : Msg.t;
  own_ts : int;
  stamps : int Slab.Row.t;
  n_addr : int;
  mutable stamp_max : int;
  mutable final : int option;
  mutable handle : Pending_index.handle;
}

type t = {
  services : wire Services.t;
  deliver : Msg.t -> unit;
  overlay : Overlay.t;
  my_group : Topology.gid;
  mutable clock : int;
  pending : pending Msg_id.Tbl.t;
  ord : pending Pending_index.t;
  delivered : unit Msg_id.Tbl.t;
  early_stamps : (Topology.pid * int) list Msg_id.Tbl.t;
  stamp_pool : int Slab.Row.pool;
  mutable relayed : int; (* Fwd/Fwd_stamp hops this process forwarded *)
}

let relay_of t g = (Topology.members_array t.services.Services.topology g).(0)

let adjacent t g =
  g = t.my_group || Overlay.next_hop t.overlay ~src:t.my_group ~dst:g = g

(* Split a set of destination groups by how they are reached from here:
   direct groups (own or adjacent — their members get the payload
   straight away, in ascending order, which on a clique is exactly
   Skeen's pid-ascending fan-out) and forwarding buckets keyed by next
   hop, ascending. *)
let routes t dests =
  let dests = List.sort_uniq Int.compare dests in
  let direct = List.filter (adjacent t) dests in
  let buckets = ref [] in
  List.iter
    (fun d ->
      if not (adjacent t d) then begin
        let nh = Overlay.next_hop t.overlay ~src:t.my_group ~dst:d in
        match List.assoc_opt nh !buckets with
        | Some b -> b := d :: !b
        | None -> buckets := !buckets @ [ (nh, ref [ d ]) ]
      end)
    dests;
  ( direct,
    List.map (fun (nh, b) -> (nh, List.rev !b)) !buckets
    |> List.sort (fun (a, _) (b, _) -> compare a b) )

let add_stamp (p : pending) q ts =
  if not (Slab.Row.mem p.stamps q) then begin
    Slab.Row.set p.stamps q ts;
    if ts > p.stamp_max then p.stamp_max <- ts
  end

(* Identical to Skeen's: a finalised root is deliverable, an unfinalised
   root blocks (its final is at least its own stamp, the index key). *)
let delivery_test t =
  let rec loop () =
    match Pending_index.min_elt t.ord with
    | Some (_, _, p) when p.final <> None ->
      ignore (Pending_index.pop_min t.ord);
      Slab.Row.release t.stamp_pool p.stamps;
      Msg_id.Tbl.remove t.pending p.msg.id;
      Msg_id.Tbl.replace t.delivered p.msg.id ();
      t.deliver p.msg;
      loop ()
    | Some _ | None -> ()
  in
  loop ()

let maybe_finalize t p =
  if p.final = None then begin
    if Slab.Row.count p.stamps = p.n_addr then begin
      let f = p.stamp_max in
      p.final <- Some f;
      p.handle <- Pending_index.reposition t.ord p.handle ~ts:f ~id:p.msg.id p;
      t.clock <- max t.clock f;
      delivery_test t
    end
  end

(* Send my stamp for [m] to every other addressee: directly to the
   members of own/adjacent destination groups (ascending — Skeen's
   fan-out order on a clique), routed via the next hop's relay
   otherwise. *)
let send_stamps t (m : Msg.t) ts =
  let direct, buckets = routes t m.dest in
  List.iter
    (fun g ->
      Topology.iter_members t.services.Services.topology g (fun q ->
          if q <> t.services.Services.self then
            t.services.Services.send ~dst:q
              (Stamp { id = m.id; ts; from = t.services.Services.self })))
    direct;
  List.iter
    (fun (nh, targets) ->
      t.services.Services.send ~dst:(relay_of t nh)
        (Fwd_stamp
           { id = m.id; ts; from = t.services.Services.self; targets }))
    buckets

let on_data t (m : Msg.t) ~path_ts =
  if
    (not (Msg_id.Tbl.mem t.pending m.id))
    && not (Msg_id.Tbl.mem t.delivered m.id)
  then begin
    (* [max t.clock path_ts] keeps the stamp above every interior clock
       crossed on the way here; with [path_ts = 0] (clique) this is
       Skeen's plain [clock + 1]. *)
    t.clock <- max t.clock path_ts + 1;
    let addressees = Msg.dest_pids t.services.Services.topology m in
    let p =
      {
        msg = m;
        own_ts = t.clock;
        stamps = Slab.Row.acquire t.stamp_pool;
        n_addr = List.length addressees;
        stamp_max = 0;
        final = None;
        handle = -1;
      }
    in
    p.handle <- Pending_index.add t.ord ~ts:p.own_ts ~id:m.id p;
    add_stamp p t.services.Services.self t.clock;
    (match Msg_id.Tbl.find_opt t.early_stamps m.id with
    | Some stamps ->
      List.iter (fun (q, ts) -> add_stamp p q ts) stamps;
      Msg_id.Tbl.remove t.early_stamps m.id
    | None -> ());
    Msg_id.Tbl.replace t.pending m.id p;
    send_stamps t m t.clock;
    maybe_finalize t p
  end

(* Fan a routed payload out from this group: deliver locally when own
   group is a target, send Data to adjacent targets' members, forward
   the rest. Interior relays timestamp the message in transit — the
   clock bump folded into [path_ts]. *)
let forward_data t (m : Msg.t) ~path_ts targets =
  let direct, buckets = routes t targets in
  List.iter
    (fun g ->
      if g = t.my_group then
        Topology.iter_members t.services.Services.topology g (fun q ->
            if q <> t.services.Services.self then
              t.services.Services.send ~dst:q (Data { msg = m; path_ts }))
      else
        Topology.iter_members t.services.Services.topology g (fun q ->
            t.services.Services.send ~dst:q (Data { msg = m; path_ts })))
    direct;
  List.iter
    (fun (nh, targets) ->
      t.relayed <- t.relayed + 1;
      t.services.Services.send ~dst:(relay_of t nh)
        (Fwd { msg = m; path_ts; targets }))
    buckets;
  if List.mem t.my_group direct then on_data t m ~path_ts

let cast t (m : Msg.t) = forward_data t m ~path_ts:0 m.dest

(* An interior relay receiving a Fwd: timestamp the transit, then fan
   out/forward. Only reached on non-clique overlays. *)
let on_fwd t (m : Msg.t) ~path_ts targets =
  t.clock <- t.clock + 1;
  let path_ts = max path_ts t.clock in
  forward_data t m ~path_ts targets

let on_stamp t ~from ~ts id =
  t.clock <- max t.clock ts;
  (match Msg_id.Tbl.find_opt t.pending id with
  | Some p ->
    add_stamp p from ts;
    maybe_finalize t p
  | None ->
    if not (Msg_id.Tbl.mem t.delivered id) then begin
      let prev =
        Option.value ~default:[] (Msg_id.Tbl.find_opt t.early_stamps id)
      in
      Msg_id.Tbl.replace t.early_stamps id ((from, ts) :: prev)
    end);
  delivery_test t

(* Stamps are forwarded unmodified: every addressee must fold the same
   stamp values into its final maximum, whatever route they took. *)
let on_fwd_stamp t ~from ~ts id targets =
  let direct, buckets = routes t targets in
  List.iter
    (fun g ->
      Topology.iter_members t.services.Services.topology g (fun q ->
          if q <> t.services.Services.self then
            t.services.Services.send ~dst:q (Stamp { id; ts; from })))
    direct;
  List.iter
    (fun (nh, targets) ->
      t.relayed <- t.relayed + 1;
      t.services.Services.send ~dst:(relay_of t nh)
        (Fwd_stamp { id; ts; from; targets }))
    buckets;
  if List.mem t.my_group direct then on_stamp t ~from ~ts id

let on_receive t ~src:_ w =
  match w with
  | Data { msg; path_ts } -> on_data t msg ~path_ts
  | Fwd { msg; path_ts; targets } -> on_fwd t msg ~path_ts targets
  | Stamp { id; ts; from } -> on_stamp t ~from ~ts id
  | Fwd_stamp { id; ts; from; targets } -> on_fwd_stamp t ~from ~ts id targets

let create ~services ~config ~deliver =
  let topo = services.Services.topology in
  let overlay =
    match config.Protocol.Config.overlay with
    | Some o ->
      Overlay.check_topology o topo;
      o
    | None -> Overlay.clique ~groups:(Topology.n_groups topo)
  in
  {
    services;
    deliver;
    overlay;
    my_group = Services.my_group services;
    clock = 0;
    pending = Msg_id.Tbl.create 32;
    ord = Pending_index.create ();
    delivered = Msg_id.Tbl.create 32;
    early_stamps = Msg_id.Tbl.create 8;
    stamp_pool =
      Slab.Row.pool ~width:(Topology.n_processes topo) ~default:0;
    relayed = 0;
  }

let pending_count t = Msg_id.Tbl.length t.pending
let stats t = if t.relayed = 0 then [] else [ ("relayed_hops", t.relayed) ]

(** Ordered-pending index: the shared fast path of the timestamp-based
    delivery tests.

    Every protocol in this library that delivers in [(timestamp, id)]
    order keeps a pending table and repeatedly asks "which pending message
    is minimal, and is it ready?" — a fold over the whole table per event
    in the naive implementations, which made a-delivery quadratic in the
    number of in-flight messages. This index keeps the live pending set in
    a binary min-heap keyed by [(ts, id)] so the minimum is O(log n) and a
    full ordered snapshot is O(n log n) {e in the live count}, not in the
    all-time message count.

    Key updates (A1's stage transitions move a message's timestamp, Skeen
    finalisation replaces the own-stamp key by the final one) reuse the
    {!Des.Event_queue} cancellation trick: a flag byte per issued handle
    marks an entry dead in O(1), dead entries are skipped lazily at the
    top of the heap, and the heap is compacted whenever dead entries
    outnumber live ones, so no operation ever degrades past the live
    size. *)

type 'a t

type handle = int
(** Dense (0, 1, 2, ...) per-index entry handles, like
    {!Des.Event_queue} event handles. A handle is live from {!add} until
    it is {!remove}d, {!reposition}ed away or popped. *)

val create : unit -> 'a t

val add : 'a t -> ts:int -> id:Runtime.Msg_id.t -> 'a -> handle
(** Insert a payload under key [(ts, id)]. O(log n). *)

val remove : 'a t -> handle -> unit
(** Cancel an entry. O(1) amortised; unknown/dead handles are a no-op. *)

val reposition : 'a t -> handle -> ts:int -> id:Runtime.Msg_id.t -> 'a -> handle
(** [reposition t h ~ts ~id v] is [remove t h] followed by
    [add t ~ts ~id v]: the decrease/increase-key of this structure. *)

val min_elt : 'a t -> (int * Runtime.Msg_id.t * 'a) option
(** Smallest live [(ts, id)] key with its payload. Amortised O(log n):
    dead entries reaching the top are discarded on the way. *)

val pop_min : 'a t -> (int * Runtime.Msg_id.t * 'a) option
(** Remove and return what {!min_elt} returns. *)

val size : 'a t -> int
(** Live entries. O(1). *)

val is_empty : 'a t -> bool

val to_sorted_list : 'a t -> (int * Runtime.Msg_id.t * 'a) list
(** All live entries in ascending [(ts, id)] order. O(n log n) in the live
    count (A2's proposal snapshot: the pending set, not the all-time
    R-Delivered set). *)

(** Generic (conflict-aware) atomic multicast.

    Skeen's timestamp scheme relaxed to a {e partial} delivery order
    (generic broadcast, Pedone & Schiper; generic multicast, Bolina et
    al. 2024): only message pairs that {e conflict} under the deployment's
    {!Protocol.Config.t.conflict} relation are delivered in a consistent
    relative order by their common addressees. The stamp exchange is
    unchanged — every non-solo message is stamped by all its addressees
    and finalised at the maximum stamp — but the delivery test only holds
    a finalised message behind {e conflicting} pending messages, so
    independent conflict classes drain concurrently instead of queueing
    behind one global [(ts, id)] frontier.

    Two bypass tiers, by how much the relation reveals:

    - {e solo} messages ({!Conflict.solo}: they conflict with nothing)
      skip ordering entirely — delivered at Data arrival, no stamps, no
      clock traffic. Reliable-multicast cost, latency degree 1.
    - messages with a conflict {e class} ({!Conflict.class_of}) wait only
      for their own class: the pending set is partitioned into per-class
      {!Pending_index} heaps and each class is an independent Skeen
      instance sharing the process clock. [Conflict.total] collapses to a
      single class — the delivery order (and every checker verdict) is
      then exactly Skeen's.
    - under a bare {!Conflict.Commute} predicate there is no class
      structure; the delivery test falls back to a pairwise conflict scan
      of the pending set (correct for any symmetric relation, quadratic
      in the in-flight count).

    Soundness of the relaxed test: if addressee [q] delivers [m2] before
    first seeing a conflicting [m1], then [q]'s clock is at least
    [final m2] from that point on, so [q]'s stamp for [m1] — hence
    [final m1] — exceeds [final m2]; every common addressee therefore
    agrees on the [(final, id)] order of any conflicting pair it holds
    both members of. Failure-free model, like {!Skeen}. *)

include Protocol.S

val pending_count : t -> int

open Net
open Runtime

let name = "sequencer"

type wire =
  | Data of Msg.t
  | Assign of { id : Msg_id.t; sn : int }
  | Validate of { id : Msg_id.t; sn : int } (* uniformity acknowledgment *)

let tag = function
  | Data _ -> "seq.data"
  | Assign _ -> "seq.assign"
  | Validate _ -> "seq.validate"

type slot = {
  mutable msg : Msg.t option;
  mutable sn : int option;
  acks : (Topology.pid, unit) Hashtbl.t;
  mutable opt_delivered : bool;
  mutable validated : bool;
}

type t = {
  services : wire Services.t;
  deliver : Msg.t -> unit;
  sequencer : Topology.pid;
  mutable next_sn : int; (* sequencer-side counter *)
  mutable next_final : int; (* next sequence number to deliver finally *)
  slots : slot Msg_id.Tbl.t;
  by_sn : (int, Msg_id.t) Hashtbl.t;
  mutable opt_log : (Msg_id.t * int) list; (* newest first *)
}

let slot_of t id =
  match Msg_id.Tbl.find_opt t.slots id with
  | Some s -> s
  | None ->
    let s =
      {
        msg = None;
        sn = None;
        acks = Hashtbl.create 8;
        opt_delivered = false;
        validated = false;
      }
    in
    Msg_id.Tbl.replace t.slots id s;
    s

let majority t =
  (Topology.n_processes t.services.Services.topology / 2) + 1

let try_opt_deliver t id s =
  match (s.msg, s.sn) with
  | Some _, Some sn when not s.opt_delivered ->
    s.opt_delivered <- true;
    t.opt_log <- (id, sn) :: t.opt_log;
    (* Acknowledge the assignment to everyone: the uniformity votes. *)
    Services.send_all t.services
      (Topology.all_pids t.services.Services.topology)
      (Validate { id; sn })
  | _ -> ()

(* Final delivery: contiguous sequence numbers, each validated by a
   majority and with its payload at hand. *)
let rec try_final_deliver t =
  match Hashtbl.find_opt t.by_sn t.next_final with
  | None -> ()
  | Some id ->
    let s = slot_of t id in
    (match (s.msg, s.validated) with
    | Some m, true ->
      t.next_final <- t.next_final + 1;
      t.deliver m;
      try_final_deliver t
    | _ -> ())

let on_ack t id ~sn ~src =
  let s = slot_of t id in
  if s.sn = None then s.sn <- Some sn;
  if not (Hashtbl.mem t.by_sn sn) then Hashtbl.replace t.by_sn sn id;
  Hashtbl.replace s.acks src ();
  if (not s.validated) && Hashtbl.length s.acks >= majority t then begin
    s.validated <- true;
    try_final_deliver t
  end

let on_data t (m : Msg.t) =
  let s = slot_of t m.id in
  if s.msg = None then begin
    s.msg <- Some m;
    (* The sequencer assigns the next number and tells everyone. *)
    if t.services.Services.self = t.sequencer && s.sn = None then begin
      let sn = t.next_sn in
      t.next_sn <- sn + 1;
      s.sn <- Some sn;
      Hashtbl.replace t.by_sn sn m.id;
      Services.send_all t.services
        (List.filter
           (fun q -> q <> t.sequencer)
           (Topology.all_pids t.services.Services.topology))
        (Assign { id = m.id; sn })
    end;
    try_opt_deliver t m.id s;
    try_final_deliver t
  end

let cast t (m : Msg.t) =
  Services.send_all t.services
    (List.filter
       (fun q -> q <> t.services.Services.self)
       (Topology.all_pids t.services.Services.topology))
    (Data m);
  on_data t m

let on_receive t ~src w =
  match w with
  | Data m -> on_data t m
  | Assign { id; sn } ->
    let s = slot_of t id in
    if s.sn = None then begin
      s.sn <- Some sn;
      Hashtbl.replace t.by_sn sn id
    end;
    try_opt_deliver t id s;
    try_final_deliver t
  | Validate { id; sn } -> on_ack t id ~sn ~src

let create ~services ~config:_ ~deliver =
  {
    services;
    deliver;
    sequencer = List.hd (Topology.members services.Services.topology 0);
    next_sn = 0;
    next_final = 0;
    slots = Msg_id.Tbl.create 32;
    by_sn = Hashtbl.create 32;
    opt_log = [];
  }

let optimistic_deliveries t = List.rev t.opt_log

let stats _ = []

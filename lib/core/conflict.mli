(** Conflict relations for generic (conflict-aware) multicast.

    Generic multicast (Bolina et al. 2024, PAPERS.md; generic broadcast,
    Pedone & Schiper) relaxes total order to a {e partial} order: only
    {e conflicting} messages need to be delivered in the same relative
    order by their common addressees. Commands that commute — reads,
    writes to different keys, increments of independent counters — can
    skip ordering cost entirely while replica consistency is preserved,
    because applying commuting commands in either order yields the same
    state.

    A relation here is symmetric and agreed by every process (it is part
    of the deployment's {!Protocol.Config}, like the state-machine spec
    itself): all processes must answer the same for any message pair,
    which the payload-derived constructors guarantee by construction.

    Three shapes, by how much structure the delivery path can exploit:

    - {!Total} — every pair conflicts. Recovers classic total order; the
      conflict-aware protocol then behaves exactly like its total-order
      twin.
    - {!Keyed} — each message maps to an optional conflict class; two
      messages conflict iff they map to the same class, and a message
      mapping to [None] conflicts with {e nothing} (it commutes with
      every other command and may bypass ordering altogether). Covers
      per-key conflicts of a KV store. {!Never} is the degenerate
      all-[None] case.
    - {!Commute} — an arbitrary symmetric commutativity predicate, for
      state machines whose conflicts are not an equivalence relation
      (e.g. read/write: reads commute with reads but not with writes).
      The delivery path falls back to pairwise tests against the pending
      set. *)

type t =
  | Total  (** Every pair of messages conflicts: total order. *)
  | Keyed of { name : string; key : Msg.t -> string option }
      (** Conflict classes: [key m1 = key m2 = Some k] conflicts;
          [key m = None] means [m] conflicts with nothing at all. *)
  | Commute of { name : string; commutes : Msg.t -> Msg.t -> bool }
      (** General relation: [m1] and [m2] conflict iff
          [not (commutes m1 m2)]. Must be symmetric. *)

val total : t
val never : t
(** {!Keyed} with [key _ = None]: nothing conflicts — pure reliable
    multicast ordering-wise. *)

val keyed : ?name:string -> (Msg.t -> string option) -> t
val commute : ?name:string -> (Msg.t -> Msg.t -> bool) -> t

val payload_key : t
(** The workload convention: payloads of the form ["k=<key>;<rest>"]
    conflict per [<key>]; any other payload is a commuting command
    (class [None]). {!Harness.Workload}'s conflict knob emits exactly
    this shape, so a generated workload and this relation agree on which
    casts conflict. *)

val payload_class : string -> string option
(** The parser behind {!payload_key}, usable on raw payloads. *)

val name : t -> string

val conflicts : t -> Msg.t -> Msg.t -> bool
(** Whether the pair must be ordered. Irreflexive by convention: a
    message never conflicts with itself (dedup is integrity's job). *)

val solo : t -> Msg.t -> bool
(** [solo t m] = [m] conflicts with {e no} message under [t]: delivery
    may bypass ordering entirely. Conservative [false] for {!Commute}
    (the predicate cannot be quantified over all messages). *)

val class_of : t -> Msg.t -> string option option
(** The independence-class view, when the relation is a partition:
    [Some cls] for {!Total} (one global class) and {!Keyed};
    [None] for {!Commute} (no class structure — callers must fall back
    to pairwise {!conflicts}). The inner option is the class itself
    ([None] = solo). *)

open Net
open Runtime

let name = "a2"

type wire =
  | Rm of Msg.t list Rmcast.Reliable_multicast.msg
      (* The R-MCast payload is a batch of casts (a singleton when
         batching is off; the batch id is the first message's id, so the
         unbatched wire pattern is unchanged). *)
  | Bundle of { round : int; msgs : Msg.t list }
  | Cons of Msg.t list Consensus.Paxos.msg
  | Hb of Fd.Heartbeat.msg (* only with Config.fd_mode = Heartbeat *)

let tag = function
  | Rm m -> Rmcast.Reliable_multicast.tag m
  | Bundle _ -> "a2.bundle"
  | Cons c -> Consensus.Paxos.tag c
  | Hb _ -> "fd.ping"

type round_state = {
  mutable own : Msg.t list option; (* our group's decided bundle *)
  mutable own_sent : bool;
  foreign : Msg.t list Slab.Row.t;
      (* first copy wins, indexed by gid; the presence flag distinguishes
         a received empty bundle from no bundle. Pooled — released when
         the round closes. *)
}

type t = {
  services : wire Services.t;
  deliver : Msg.t -> unit;
  round_grace : Des.Sim_time.t;
  prediction : Protocol.Config.prediction;
  fast_lanes : bool;
  mutable empty_streak : int; (* consecutive useless rounds *)
  mutable grace_timer : int option;
  my_group : Topology.gid;
  other_groups : Topology.gid list;
  n_other : int; (* |other_groups|: round completeness is a count check *)
  foreign_pool : Msg.t list Slab.Row.pool; (* bundle rows, width n_groups *)
  outside_pids : Topology.pid list;
  mutable k : int; (* current round *)
  mutable prop_k : int;
  mutable barrier : int;
  rdelivered : Msg.t Msg_id.Tbl.t;
  und : Msg.t Pending_index.t;
      (* R-Delivered but not yet A-Delivered, ordered by id (all keys 0):
         the proposal snapshot, linear in the live backlog rather than in
         every message the run has ever R-Delivered *)
  und_handles : Pending_index.handle Msg_id.Tbl.t;
  adelivered : unit Msg_id.Tbl.t;
  rounds : (int, round_state) Hashtbl.t;
  pipeline : int;
  inflight : int Msg_id.Tbl.t;
      (* highest instance each undelivered message was proposed to; the
         pipelining window skips messages with mark >= k (already riding
         an undecided instance). Unused (empty) when [pipeline = 1]. *)
  mutable rm : (Msg.t list, wire) Rmcast.Reliable_multicast.t option;
  mutable cons : (Msg.t list, wire) Consensus.Paxos.t option;
  mutable hb : wire Fd.Heartbeat.t option;
  mutable batcher : Batcher.t option;
  mutable rounds_executed : int;
  mutable depth_max : int; (* max in-flight instances (pipelining) *)
}

let rm t = Option.get t.rm
let cons t = Option.get t.cons
let batcher t = Option.get t.batcher

let round_state t r =
  match Hashtbl.find_opt t.rounds r with
  | Some s -> s
  | None ->
    let s =
      {
        own = None;
        own_sent = false;
        foreign = Slab.Row.acquire t.foreign_pool;
      }
    in
    Hashtbl.replace t.rounds r s;
    s

let undelivered t =
  List.map (fun (_, _, m) -> m) (Pending_index.to_sorted_list t.und)

let has_undelivered t = not (Pending_index.is_empty t.und)

(* Line 11-13: start round K when there is something to order or the
   barrier says the round must run anyway. A barrier-mandated round with an
   *empty* proposal waits [round_grace] before proposing, so a broadcast
   landing just after the round opened still joins its bundle — that slack
   is what realises Theorem 5.1's latency-degree-1 schedule, and the
   pseudocode's "When" guards allow any such scheduling. *)
(* Pipelining (w > 1): once instance K is in flight, propose up to w-1
   further instances, each carrying the undelivered messages not already
   riding an undecided instance (mark < K). A message whose instance loses
   it (decided without it) becomes proposable again as soon as K advances
   past its mark, so leftovers ride the next free instance. Decisions
   still apply strictly in round order — [maybe_finish_round] consumes
   exactly round K; [round_state] buffers out-of-order decides. *)
let pipeline_extend t =
  if t.pipeline > 1 then begin
    let continue = ref true in
    while !continue && t.prop_k <= t.k + t.pipeline - 1 do
      let snapshot =
        List.filter
          (fun (m : Msg.t) ->
            match Msg_id.Tbl.find_opt t.inflight m.id with
            | Some mark -> mark < t.k
            | None -> true)
          (undelivered t)
      in
      if snapshot = [] then continue := false
      else begin
        List.iter
          (fun (m : Msg.t) -> Msg_id.Tbl.replace t.inflight m.id t.prop_k)
          snapshot;
        Consensus.Paxos.propose (cons t) ~instance:t.prop_k snapshot;
        t.prop_k <- t.prop_k + 1;
        let depth = t.prop_k - t.k in
        if depth > t.depth_max then t.depth_max <- depth
      end
    done
  end

let propose_now t =
  (match t.grace_timer with
  | Some h ->
    t.services.Services.cancel_timer h;
    t.grace_timer <- None
  | None -> ());
  let snapshot = undelivered t in
  if t.pipeline > 1 then
    List.iter
      (fun (m : Msg.t) -> Msg_id.Tbl.replace t.inflight m.id t.k)
      snapshot;
  Consensus.Paxos.propose (cons t) ~instance:t.k snapshot;
  t.prop_k <- t.k + 1;
  pipeline_extend t

let try_propose t =
  if t.prop_k <= t.k then begin
    if
      has_undelivered t
      (* Catching up — another group's bundle for this round has already
         arrived (cf. Theorem 5.2's run, where g2 decides instance r as
         soon as it receives g1's bundle): nothing to gain by waiting. *)
      || Slab.Row.count (round_state t t.k).foreign > 0
    then propose_now t
    else if t.k <= t.barrier && t.grace_timer = None then
      t.grace_timer <-
        Some
          (t.services.Services.set_timer ~after:t.round_grace (fun () ->
               t.grace_timer <- None;
               (* Re-check the full guard: the round may have completed
                  without our proposal while we were waiting. *)
               if
                 t.prop_k <= t.k
                 && (has_undelivered t || t.k <= t.barrier)
               then propose_now t))
  end
  else pipeline_extend t

(* Line 14-23: close round K once our bundle is decided and a bundle from
   every other group has arrived. *)
let rec maybe_finish_round t =
  let s = round_state t t.k in
  match s.own with
  | None -> ()
  | Some own_bundle ->
    if not s.own_sent then begin
      s.own_sent <- true;
      (if t.fast_lanes then Services.send_multi else Services.send_all)
        t.services t.outside_pids
        (Bundle { round = t.k; msgs = own_bundle })
    end;
    (* Only other groups' bundles land in [foreign] (bundles fan out to
       [outside_pids]), so a full count means one from each. *)
    let complete = Slab.Row.count s.foreign = t.n_other in
    if complete then begin
      let bundles =
        own_bundle
        :: List.map
             (fun g -> Slab.Row.get s.foreign ~default:[] g)
             t.other_groups
      in
      let to_deliver =
        List.concat bundles
        |> List.filter (fun (m : Msg.t) ->
               not (Msg_id.Tbl.mem t.adelivered m.id))
        |> List.sort_uniq Msg.compare_id
      in
      (* Deterministic order: sorted by message id. *)
      List.iter
        (fun (m : Msg.t) ->
          Msg_id.Tbl.replace t.adelivered m.id ();
          (match Msg_id.Tbl.find_opt t.und_handles m.id with
          | Some h ->
            Pending_index.remove t.und h;
            Msg_id.Tbl.remove t.und_handles m.id
          | None -> ());
          Msg_id.Tbl.remove t.inflight m.id;
          t.deliver m)
        to_deliver;
      Slab.Row.release t.foreign_pool s.foreign;
      Hashtbl.remove t.rounds t.k;
      t.k <- t.k + 1;
      t.rounds_executed <- t.rounds_executed + 1;
      (* Line 22-23: a useful round schedules one more (proactive) round;
         a useless one leaves the barrier alone — the paper's quiescence
         rule. The Linger strategy (Section 5.3's suggested refinement)
         tolerates a bounded streak of useless rounds before stopping. *)
      if to_deliver <> [] then begin
        t.empty_streak <- 0;
        t.barrier <- max t.barrier t.k
      end
      else begin
        t.empty_streak <- t.empty_streak + 1;
        match t.prediction with
        | Protocol.Config.Linger { rounds } when t.empty_streak < rounds ->
          t.barrier <- max t.barrier t.k
        | Protocol.Config.Linger _ | Protocol.Config.Stop_when_idle -> ()
      end;
      try_propose t;
      maybe_finish_round t
    end

let note_rdelivered t (m : Msg.t) =
  if not (Msg_id.Tbl.mem t.rdelivered m.id) then begin
    Msg_id.Tbl.replace t.rdelivered m.id m;
    if not (Msg_id.Tbl.mem t.adelivered m.id) then
      Msg_id.Tbl.replace t.und_handles m.id
        (Pending_index.add t.und ~ts:0 ~id:m.id m);
    true
  end
  else false

(* R-Delivery of a batch: every message joins the undelivered backlog
   {e before} the single proposal attempt, so the whole batch rides one
   round instead of the first message triggering a proposal that splits
   it. *)
let on_rdeliver t msgs =
  let fresh =
    List.fold_left
      (fun acc m ->
        let f = note_rdelivered t m in
        f || acc)
      false msgs
  in
  if fresh then try_propose t

let cast_payload_only t (m : Msg.t) = Batcher.add (batcher t) m

let cast t (m : Msg.t) =
  if
    List.length m.dest
    <> Topology.n_groups t.services.Services.topology
  then
    invalid_arg
      "A2.cast: atomic broadcast requires dest = all groups (use A1 or \
       Via_broadcast for multicast)";
  cast_payload_only t m

let on_receive t ~src w =
  match w with
  | Rm rmsg -> Rmcast.Reliable_multicast.handle (rm t) ~src rmsg
  | Bundle { round; msgs } ->
    (* Line 8-10: store the bundle and raise the barrier. *)
    let g = Topology.group_of t.services.Services.topology src in
    if round >= t.k then begin
      let s = round_state t round in
      if not (Slab.Row.mem s.foreign g) then Slab.Row.set s.foreign g msgs
    end;
    t.barrier <- max t.barrier round;
    try_propose t;
    maybe_finish_round t
  | Cons cmsg -> Consensus.Paxos.handle (cons t) ~src cmsg
  | Hb m -> (
    match t.hb with
    | Some hb -> Fd.Heartbeat.handle hb ~src m
    | None -> ())

let create ~services ~config ~deliver =
  let topology = services.Services.topology in
  let my_group = Services.my_group services in
  let other_groups =
    List.filter (fun g -> g <> my_group) (Topology.all_groups topology)
  in
  let t =
    {
      services;
      deliver;
      round_grace = config.Protocol.Config.round_grace;
      prediction = config.Protocol.Config.prediction;
      fast_lanes = config.Protocol.Config.fast_lanes;
      empty_streak = 0;
      grace_timer = None;
      my_group;
      other_groups;
      n_other = List.length other_groups;
      foreign_pool =
        Slab.Row.pool ~width:(Topology.n_groups topology) ~default:[];
      outside_pids = Topology.pids_of_groups topology other_groups;
      k = 1;
      prop_k = 1;
      barrier = 0;
      rdelivered = Msg_id.Tbl.create 64;
      und = Pending_index.create ();
      und_handles = Msg_id.Tbl.create 64;
      adelivered = Msg_id.Tbl.create 64;
      rounds = Hashtbl.create 16;
      pipeline = max 1 config.Protocol.Config.pipeline;
      inflight = Msg_id.Tbl.create 64;
      rm = None;
      cons = None;
      hb = None;
      batcher = None;
      rounds_executed = 0;
      depth_max = 0;
    }
  in
  let detector =
    match config.Protocol.Config.fd_mode with
    | Protocol.Config.Oracle ->
      Fd.Detector.oracle ~delay:config.Protocol.Config.oracle_delay services
    | Protocol.Config.Heartbeat { period; timeout } ->
      let hb =
        Fd.Heartbeat.create ~services
          ~wrap:(fun m -> Hb m)
          ~monitored:(Topology.members topology my_group)
          ~period ~timeout ()
      in
      t.hb <- Some hb;
      Fd.Heartbeat.detector hb
  in
  t.rm <-
    Some
      (Rmcast.Reliable_multicast.create ~services
         ~wrap:(fun m -> Rm m)
         ~mode:config.Protocol.Config.rm_mode
         ~oracle_delay:config.Protocol.Config.oracle_delay
         ~fast_lanes:config.Protocol.Config.fast_lanes
         ?coalesce:
           (if Protocol.Config.batching config then
              Some
                ( config.Protocol.Config.batch_max,
                  config.Protocol.Config.batch_delay )
            else None)
         ~on_deliver:(fun ~id:_ ~origin:_ ~dest:_ msgs -> on_rdeliver t msgs)
         ());
  t.batcher <-
    Some
      (Batcher.create ~max:config.Protocol.Config.batch_max
         ~delay:config.Protocol.Config.batch_delay
         ~set_timer:services.Services.set_timer
         ~cancel_timer:services.Services.cancel_timer
         ~flush:(fun ~key:_ msgs ->
           (* Line 4-5: R-MCast to the caster's own group only. One
              R-MCast carries the whole batch; its id is the first
              message's (globally unique), so a singleton batch is exactly
              the unbatched dissemination. *)
           let first = List.hd msgs in
           Rmcast.Reliable_multicast.rmcast (rm t) ~id:first.Msg.id
             ~dest:(Topology.members topology my_group)
             msgs));
  t.cons <-
    Some
      (Consensus.Paxos.create ~services
         ~wrap:(fun m -> Cons m)
         ~participants:(Topology.members topology my_group)
         ~detector
         ~timeout:config.Protocol.Config.consensus_timeout
         ~fast_lanes:config.Protocol.Config.fast_lanes
         ~on_decide:(fun ~instance v ->
           let s = round_state t instance in
           if s.own = None then s.own <- Some v;
           maybe_finish_round t)
         ());
  t

let round t = t.k
let barrier t = t.barrier
let rounds_executed t = t.rounds_executed

let stats t =
  [
    ("cons.instances", Consensus.Paxos.retained_instances (cons t));
    ("rm.entries", Rmcast.Reliable_multicast.retained_entries (rm t));
    ("rm.tombstones", Rmcast.Reliable_multicast.reclaimed_entries (rm t));
    ("pending", Pending_index.size t.und);
    ("rounds", Hashtbl.length t.rounds);
    ("batches_formed", Batcher.batches_formed (batcher t));
    ("batched_casts", Batcher.casts_packed (batcher t));
    ("casts_per_batch_max", Batcher.max_batch (batcher t));
    ("pipeline_depth_max", t.depth_max);
    ("acks_coalesced", Rmcast.Reliable_multicast.acks_coalesced (rm t));
  ]

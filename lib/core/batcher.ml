(* Cast batcher for the high-throughput lane.

   Application casts are buffered per destination-group set and flushed as
   one batch — one R-MCast dissemination, one ordering payload — under a
   size-or-timeout policy: a batch is flushed as soon as it holds
   [batch_max] casts, or [batch_delay] after its first cast, whichever
   comes first. Batches are transparent at delivery: the host protocol
   unbatches before handing messages to its ordering layer, so checkers
   and [Run_result] see individual casts unchanged.

   With [batch_max = 1] the batcher is a strict bypass: every cast is
   flushed synchronously as a singleton, no buffer and no timer, so the
   message pattern is byte-identical to the pre-batching protocol (and the
   formed/packed counters stay at zero — a zero [batches_formed] in the
   stats is the signature of the lane being off).

   Casts buffered at a process that crashes before the flush are lost with
   it — indistinguishable from the process crashing just before casting,
   which the validity specification already exempts. *)

type key = Net.Topology.gid list

type t = {
  max : int;
  delay : Des.Sim_time.t;
  set_timer : after:Des.Sim_time.t -> (unit -> unit) -> int;
  cancel_timer : int -> unit;
  flush : key:key -> Msg.t list -> unit;
  mutable buckets : (key * Msg.t list ref) list; (* insertion order *)
  mutable timer : int option;
  (* observability *)
  mutable formed : int; (* batches flushed with the lane on *)
  mutable packed : int; (* casts that travelled in those batches *)
  mutable max_batch : int; (* largest batch flushed *)
}

let create ~max ~delay ~set_timer ~cancel_timer ~flush =
  if max < 1 then invalid_arg "Batcher.create: max must be >= 1";
  {
    max;
    delay;
    set_timer;
    cancel_timer;
    flush;
    buckets = [];
    timer = None;
    formed = 0;
    packed = 0;
    max_batch = 0;
  }

let enabled t = t.max > 1

let flush_bucket t key msgs =
  let n = List.length msgs in
  t.formed <- t.formed + 1;
  t.packed <- t.packed + n;
  if n > t.max_batch then t.max_batch <- n;
  t.flush ~key msgs

(* Flush every bucket, oldest first. The timer is cancelled (not merely
   forgotten) so a size-triggered flush does not leave a stale timeout
   behind to fire on an empty buffer. *)
let flush_all t =
  (match t.timer with
  | Some h ->
    t.cancel_timer h;
    t.timer <- None
  | None -> ());
  let buckets = t.buckets in
  t.buckets <- [];
  List.iter (fun (key, msgs) -> flush_bucket t key (List.rev !msgs)) buckets

let add t (m : Msg.t) =
  if not (enabled t) then t.flush ~key:m.dest [ m ]
  else begin
    let key = m.dest (* [Msg.make] sorts and dedups destinations *) in
    let bucket =
      match List.assoc_opt key t.buckets with
      | Some b -> b
      | None ->
        let b = ref [] in
        t.buckets <- t.buckets @ [ (key, b) ];
        b
    in
    bucket := m :: !bucket;
    if List.length !bucket >= t.max then begin
      (* Size-triggered: flush this destination set now; other buckets
         keep waiting for their own trigger. *)
      t.buckets <- List.filter (fun (k, _) -> k <> key) t.buckets;
      flush_bucket t key (List.rev !bucket);
      if t.buckets = [] then
        match t.timer with
        | Some h ->
          t.cancel_timer h;
          t.timer <- None
        | None -> ()
    end
    else if t.timer = None then
      t.timer <-
        Some
          (t.set_timer ~after:t.delay (fun () ->
               t.timer <- None;
               flush_all t))
  end

let pending t = List.fold_left (fun acc (_, b) -> acc + List.length !b) 0 t.buckets
let batches_formed t = t.formed
let casts_packed t = t.packed
let max_batch t = t.max_batch

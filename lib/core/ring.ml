open Net
open Runtime

let name = "ring"

(* What a group agrees on when it stamps a message: the message itself and
   the timestamp proposed by the deciding proposal. *)
type stamp = { msg : Msg.t; ts : int }

type wire =
  | Rm of Msg.t Rmcast.Reliable_multicast.msg
  | Handoff of { msg : Msg.t; ts : int } (* from my predecessor group *)
  | Final of { msg : Msg.t; ts : int } (* from the last group of the chain *)
  | Cons of stamp Consensus.Paxos.msg

let tag = function
  | Rm m -> Rmcast.Reliable_multicast.tag m
  | Handoff _ -> "ring.handoff"
  | Final _ -> "ring.final"
  | Cons c -> Consensus.Paxos.tag c

type pending = {
  msg : Msg.t;
  mutable known_ts : int; (* best lower bound on the final timestamp *)
  mutable final : int option;
  mutable stamped : bool; (* my group already ran consensus on it *)
}

type t = {
  services : wire Services.t;
  deliver : Msg.t -> unit;
  fast_lanes : bool;
  my_group : Topology.gid;
  mutable clock : int;
  mutable instance : int; (* group-local: next consensus instance *)
  mutable prop_instance : int;
  mutable outstanding : Msg_id.t option; (* stamped, awaiting Final *)
  queue : Msg_id.t list ref; (* ids waiting for my group's stamp *)
  decisions : (int, stamp) Hashtbl.t; (* decided stamps, by instance *)
  pending : pending Msg_id.Tbl.t;
  delivered : unit Msg_id.Tbl.t;
  mutable rm : (Msg.t, wire) Rmcast.Reliable_multicast.t option;
  mutable cons : (stamp, wire) Consensus.Paxos.t option;
}

let rm t = Option.get t.rm
let cons t = Option.get t.cons
let chain (m : Msg.t) = m.dest (* dest is sorted: the chain order *)
let first_group m = List.hd (chain m)
let is_last_group t m = List.nth (chain m) (List.length (chain m) - 1) = t.my_group

let next_group t (m : Msg.t) =
  let rec find = function
    | g :: next :: _ when g = t.my_group -> Some next
    | _ :: rest -> find rest
    | [] -> None
  in
  find (chain m)

let delivery_test t =
  let rec loop () =
    let best =
      Msg_id.Tbl.fold
        (fun _ p best ->
          match p.final with
          | None -> best
          | Some f -> (
            match best with
            | Some (f', p') when Msg.compare_ts_id (f', p'.msg) (f, p.msg) < 0
              ->
              best
            | _ -> Some (f, p)))
        t.pending None
    in
    match best with
    | None -> ()
    | Some (f, p) ->
      let blocked =
        Msg_id.Tbl.fold
          (fun _ q acc ->
            acc
            || q.final = None
               && Msg.compare_ts_id (q.known_ts, q.msg) (f, p.msg) < 0)
          t.pending false
      in
      if not blocked then begin
        Msg_id.Tbl.remove t.pending p.msg.id;
        Msg_id.Tbl.replace t.delivered p.msg.id ();
        t.deliver p.msg;
        loop ()
      end
  in
  loop ()

(* Propose my queue head for the group's next stamping instance; the group
   handles one message at a time (waits for the Final acknowledgment). *)
let try_propose t =
  if t.outstanding = None && t.prop_instance <= t.instance then begin
    let queue =
      List.filter
        (fun id ->
          match Msg_id.Tbl.find_opt t.pending id with
          (* [final <> None] means every group of the chain — ours included,
             via an instance decided at another member — has stamped the
             message: its timestamp is fixed and it needs nothing more from
             this group. Keeping it here would re-propose it forever when a
             Final overtakes our own Decide while delivery is blocked
             behind a slower message (a livelock: each re-proposal burns a
             full consensus instance without ever stamping the blocker). *)
          | Some p -> (not p.stamped) && p.final = None
          | None -> false)
        !(t.queue)
    in
    t.queue := queue;
    match queue with
    | [] -> ()
    | id :: _ ->
      let p = Msg_id.Tbl.find t.pending id in
      let ts = max t.clock p.known_ts + 1 in
      Consensus.Paxos.propose (cons t) ~instance:t.instance
        { msg = p.msg; ts };
      t.prop_instance <- t.instance + 1
  end

let get_pending t (m : Msg.t) ~known_ts =
  match Msg_id.Tbl.find_opt t.pending m.id with
  | Some p ->
    p.known_ts <- max p.known_ts known_ts;
    p
  | None ->
    let p = { msg = m; known_ts; final = None; stamped = false } in
    Msg_id.Tbl.replace t.pending m.id p;
    p

(* A message enters my group's queue (via reliable multicast to the first
   group of its chain, or a hand-off from my predecessor). *)
let enqueue t (m : Msg.t) ~known_ts =
  if not (Msg_id.Tbl.mem t.delivered m.id) then begin
    let p = get_pending t m ~known_ts in
    if (not p.stamped) && not (List.mem m.id !(t.queue)) then begin
      t.queue := !(t.queue) @ [ m.id ];
      try_propose t
    end
  end

(* Decisions are buffered per instance and consumed strictly in instance
   order: a lagging member may receive Decide messages out of order. *)
let rec process_decisions t =
  if t.outstanding = None then begin
    match Hashtbl.find_opt t.decisions t.instance with
    | None -> try_propose t
    | Some stamp -> begin
      Hashtbl.remove t.decisions t.instance;
      apply_stamp t stamp
    end
  end

and apply_stamp t (stamp : stamp) =
  let m = stamp.msg in
  t.clock <- max t.clock stamp.ts;
  let already_done =
    Msg_id.Tbl.mem t.delivered m.id
    ||
    match Msg_id.Tbl.find_opt t.pending m.id with
    | Some p -> p.final <> None
    | None -> false
  in
  if already_done then begin
    (* The Final overtook our Decide message: the instance is complete. *)
    t.instance <- t.instance + 1;
    process_decisions t
  end
  else begin
    let p = get_pending t m ~known_ts:stamp.ts in
    p.stamped <- true;
    t.outstanding <- Some m.id;
    if is_last_group t m then begin
      (* The chain ends here: my group's stamp is the final timestamp. *)
      (if t.fast_lanes then Services.send_multi else Services.send_all)
        t.services
        (List.filter
           (fun q -> q <> t.services.Services.self)
           (Msg.dest_pids t.services.Services.topology m))
        (Final { msg = m; ts = stamp.ts });
      on_final t m ~ts:stamp.ts
    end
    else begin
      match next_group t m with
      | Some g ->
        Services.send_group t.services g (Handoff { msg = m; ts = stamp.ts })
      | None -> assert false
    end
  end

and on_final t (m : Msg.t) ~ts =
  t.clock <- max t.clock ts;
  (match t.outstanding with
  | Some id when Msg_id.equal id m.id ->
    t.outstanding <- None;
    t.instance <- t.instance + 1
  | Some _ | None -> ());
  if not (Msg_id.Tbl.mem t.delivered m.id) then begin
    let p = get_pending t m ~known_ts:ts in
    p.final <- Some ts
  end;
  delivery_test t;
  process_decisions t

let cast t (m : Msg.t) =
  Rmcast.Reliable_multicast.rmcast (rm t) ~id:m.id
    ~dest:(Topology.members t.services.Services.topology (first_group m))
    m

let on_receive t ~src w =
  match w with
  | Rm rmsg -> Rmcast.Reliable_multicast.handle (rm t) ~src rmsg
  | Handoff { msg; ts } -> enqueue t msg ~known_ts:ts
  | Final { msg; ts } -> on_final t msg ~ts
  | Cons cmsg -> Consensus.Paxos.handle (cons t) ~src cmsg

let create ~services ~config ~deliver =
  let t =
    {
      services;
      deliver;
      fast_lanes = config.Protocol.Config.fast_lanes;
      my_group = Services.my_group services;
      clock = 0;
      instance = 1;
      prop_instance = 1;
      outstanding = None;
      queue = ref [];
      decisions = Hashtbl.create 8;
      pending = Msg_id.Tbl.create 32;
      delivered = Msg_id.Tbl.create 32;
      rm = None;
      cons = None;
    }
  in
  let detector =
    Fd.Detector.oracle ~delay:config.Protocol.Config.oracle_delay services
  in
  t.rm <-
    Some
      (Rmcast.Reliable_multicast.create ~services
         ~wrap:(fun m -> Rm m)
         ~mode:Rmcast.Reliable_multicast.Eager_nonuniform
         ~oracle_delay:config.Protocol.Config.oracle_delay
         ~fast_lanes:config.Protocol.Config.fast_lanes
         ~on_deliver:(fun ~id:_ ~origin:_ ~dest:_ m ->
           enqueue t m ~known_ts:0)
         ());
  t.cons <-
    Some
      (Consensus.Paxos.create ~services
         ~wrap:(fun m -> Cons m)
         ~participants:
           (Topology.members services.Services.topology t.my_group)
         ~detector
         ~timeout:config.Protocol.Config.consensus_timeout
           (* Decide timing gates the inter-group Handoff/Final fan-outs
              here: with the coordinator-only Decide of the fast lane, the
              first member's Final overtakes the others' Decide and
              suppresses their (redundant) fan-outs, changing the
              inter-group message pattern. The fast lanes must stay an
              intra-group economy, so this consensus always runs the
              reference pattern. *)
         ~fast_lanes:false
         ~on_decide:(fun ~instance v ->
           Hashtbl.replace t.decisions instance v;
           process_decisions t)
         ());
  t

let pending_count t = Msg_id.Tbl.length t.pending

let stats t =
  [
    ("cons.instances", Consensus.Paxos.retained_instances (cons t));
    ("rm.entries", Rmcast.Reliable_multicast.retained_entries (rm t));
    ("rm.tombstones", Rmcast.Reliable_multicast.reclaimed_entries (rm t));
    ("pending", Msg_id.Tbl.length t.pending);
  ]

module Config = struct
  type fd_mode =
    | Oracle
    | Heartbeat of { period : Des.Sim_time.t; timeout : Des.Sim_time.t }

  type prediction =
    | Stop_when_idle
    | Linger of { rounds : int }

  type t = {
    consensus_timeout : Des.Sim_time.t;
    oracle_delay : Des.Sim_time.t;
    skip_single_group : bool;
    skip_max_group : bool;
    rm_mode : Rmcast.Reliable_multicast.mode;
    fd_mode : fd_mode;
    prediction : prediction;
    round_grace : Des.Sim_time.t;
    null_period : Des.Sim_time.t;
    opt_window : Des.Sim_time.t;
    fast_lanes : bool;
  }

  let default =
    {
      consensus_timeout = Des.Sim_time.of_ms 200;
      oracle_delay = Des.Sim_time.of_ms 50;
      skip_single_group = true;
      skip_max_group = true;
      rm_mode = Rmcast.Reliable_multicast.Eager_nonuniform;
      fd_mode = Oracle;
      prediction = Stop_when_idle;
      round_grace = Des.Sim_time.of_ms 10;
      null_period = Des.Sim_time.of_ms 10;
      opt_window = Des.Sim_time.of_ms 5;
      fast_lanes = true;
    }

  let reference = { default with fast_lanes = false }

  let fritzke =
    {
      default with
      skip_single_group = false;
      skip_max_group = false;
    }
end

module type S = sig
  type t
  type wire

  val name : string
  val tag : wire -> string

  val create :
    services:wire Runtime.Services.t ->
    config:Config.t ->
    deliver:(Msg.t -> unit) ->
    t

  val cast : t -> Msg.t -> unit
  val on_receive : t -> src:Net.Topology.pid -> wire -> unit
  val stats : t -> (string * int) list
end

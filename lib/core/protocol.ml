module Config = struct
  type fd_mode =
    | Oracle
    | Heartbeat of { period : Des.Sim_time.t; timeout : Des.Sim_time.t }

  type prediction =
    | Stop_when_idle
    | Linger of { rounds : int }

  type t = {
    consensus_timeout : Des.Sim_time.t;
    oracle_delay : Des.Sim_time.t;
    skip_single_group : bool;
    skip_max_group : bool;
    rm_mode : Rmcast.Reliable_multicast.mode;
    fd_mode : fd_mode;
    prediction : prediction;
    round_grace : Des.Sim_time.t;
    null_period : Des.Sim_time.t;
    opt_window : Des.Sim_time.t;
    fast_lanes : bool;
    batch_max : int;
        (* Throughput lane: maximum application casts packed into one
           batch (one R-MCast dissemination / one ordering payload).
           1 disables batching entirely — the cast path is byte-identical
           to the pre-batching protocol. *)
    batch_delay : Des.Sim_time.t;
        (* Flush timeout: a partially filled batch is flushed this long
           after its first cast (size-or-timeout policy). Irrelevant when
           [batch_max = 1]. Also the ack-coalescing window of the uniform
           R-MCast Copy lane. *)
    pipeline : int;
        (* In-flight consensus instance window: up to this many ordering
           instances may be undecided at once (instance i+1 is proposed
           before i decides; decisions are applied in order). 1 preserves
           the sequential instance-per-round behaviour bit-for-bit. *)
    conflict : Conflict.t;
        (* Conflict relation for the generic (conflict-aware) multicast:
           which message pairs must be delivered in a consistent relative
           order. Conflict.total (the default) recovers classic total
           order; total-order protocols ignore this field. *)
    overlay : Net.Overlay.t option;
        (* The WAN overlay the deployment runs on. None (the default)
           means the classic clique model. The overlay-routed protocols
           (flexcast) read it to derive routes; the clique-model
           protocols ignore it — deploy them over
           [Net.Overlay.to_latency] so their direct sends pay the
           routed-path delay. *)
  }

  let default =
    {
      consensus_timeout = Des.Sim_time.of_ms 200;
      oracle_delay = Des.Sim_time.of_ms 50;
      skip_single_group = true;
      skip_max_group = true;
      rm_mode = Rmcast.Reliable_multicast.Eager_nonuniform;
      fd_mode = Oracle;
      prediction = Stop_when_idle;
      round_grace = Des.Sim_time.of_ms 10;
      null_period = Des.Sim_time.of_ms 10;
      opt_window = Des.Sim_time.of_ms 5;
      fast_lanes = true;
      batch_max = 1;
      batch_delay = Des.Sim_time.of_ms 2;
      pipeline = 1;
      conflict = Conflict.total;
      overlay = None;
    }

  let reference = { default with fast_lanes = false }

  (* The high-throughput lane: batch casts, keep several consensus
     instances in flight, coalesce uniform-mode acks. Safety-equivalent to
     [default] and [reference] (asserted by the batching differentials);
     trades per-cast latency slack for saturation throughput. *)
  let throughput =
    { default with batch_max = 8; batch_delay = Des.Sim_time.of_ms 2;
      pipeline = 4 }

  (* The batching/pipelining lane is on iff any knob departs from its
     neutral value. *)
  let batching t = t.batch_max > 1
  let pipelined t = t.pipeline > 1

  let fritzke =
    {
      default with
      skip_single_group = false;
      skip_max_group = false;
    }
end

module type S = sig
  type t
  type wire

  val name : string
  val tag : wire -> string

  val create :
    services:wire Runtime.Services.t ->
    config:Config.t ->
    deliver:(Msg.t -> unit) ->
    t

  val cast : t -> Msg.t -> unit
  val on_receive : t -> src:Net.Topology.pid -> wire -> unit
  val stats : t -> (string * int) list
end

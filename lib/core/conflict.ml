type t =
  | Total
  | Keyed of { name : string; key : Msg.t -> string option }
  | Commute of { name : string; commutes : Msg.t -> Msg.t -> bool }

let total = Total
let never = Keyed { name = "never"; key = (fun _ -> None) }
let keyed ?(name = "keyed") key = Keyed { name; key }
let commute ?(name = "commute") commutes = Commute { name; commutes }

(* "k=<key>;<rest>" -> Some "<key>"; anything else is a commuting
   command. The key may not contain ';'. *)
let payload_class payload =
  if String.length payload >= 2 && String.sub payload 0 2 = "k=" then
    match String.index_opt payload ';' with
    | Some i when i > 2 -> Some (String.sub payload 2 (i - 2))
    | Some _ | None -> None
  else None

let payload_key =
  Keyed
    {
      name = "payload-key";
      key = (fun (m : Msg.t) -> payload_class m.payload);
    }

let name = function
  | Total -> "total"
  | Keyed { name; _ } -> name
  | Commute { name; _ } -> name

let conflicts t m1 m2 =
  (not (Msg.equal_id m1 m2))
  &&
  match t with
  | Total -> true
  | Keyed { key; _ } -> (
    match (key m1, key m2) with
    | Some k1, Some k2 -> String.equal k1 k2
    | None, _ | _, None -> false)
  | Commute { commutes; _ } -> not (commutes m1 m2)

let solo t m =
  match t with
  | Total -> false
  | Keyed { key; _ } -> key m = None
  | Commute _ -> false

let class_of t m =
  match t with
  | Total -> Some (Some "")
  | Keyed { key; _ } -> Some (key m)
  | Commute _ -> None

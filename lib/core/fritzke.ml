type t = A1.t
type wire = A1.wire

let name = "fritzke"
let tag = A1.tag

let create ~services ~config:_ ~deliver =
  (* The baseline ignores the caller's optimisation flags: it *is* the
     configuration with every optimisation off. *)
  A1.create ~services ~config:Protocol.Config.fritzke ~deliver

let cast = A1.cast
let on_receive = A1.on_receive
let consensus_instances_executed = A1.consensus_instances_executed

let stats _ = []

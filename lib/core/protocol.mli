(** The common shape of every total-order protocol in this library.

    A protocol instance lives on one process. It is created with the
    process's {!Runtime.Services.t}, reacts to wire messages via
    [on_receive], initiates messages via [cast] and reports agreed
    deliveries through the [deliver] upcall. The harness
    ({!module:Harness.Runner} in the sibling library) instantiates one
    engine per protocol deployment and wraps [cast]/[deliver] with the
    Lamport-clock trace events, so latency degrees are measured uniformly
    and outside protocol code. *)

(** Tuning knobs shared by the protocols; every field has a sensible
    default ({!Config.default}). *)
module Config : sig
  (** Which failure detector drives consensus and the reliable-multicast
      relay rule. *)
  type fd_mode =
    | Oracle
        (** The idealised detector built on the engine's ground truth —
            no messages, no false suspicions; the cost model Figure 1
            assumes. *)
    | Heartbeat of { period : Des.Sim_time.t; timeout : Des.Sim_time.t }
        (** The real thing: periodic heartbeats inside each group, ◇P by
            adaptive timeouts. Note that a heartbeat detector never stops
            probing, so deployments using it are never quiescent — run
            them under a horizon. *)

  (** A2's quiescence-prediction strategy: when does a process decide that
      no more messages will be broadcast and stop executing rounds?
      Section 5.3 notes the paper's rule is deliberately simple and that
      "more elaborate prediction strategies based on application behavior
      could be used" — this is that extension point. *)
  type prediction =
    | Stop_when_idle
        (** The paper's rule: a round that delivers nothing does not raise
            the barrier, so rounds stop after the first useless one. *)
    | Linger of { rounds : int }
        (** Keep running up to [rounds] consecutive {e empty} rounds after
            the last useful one before going quiescent. Buys the degree-1
            delivery window for broadcast gaps up to roughly
            [rounds × round duration], at the cost of that many wasted
            rounds per lull; still quiescent, still indulgent. *)

  type t = {
    consensus_timeout : Des.Sim_time.t;
        (** Decision timeout before coordinator rotation. *)
    oracle_delay : Des.Sim_time.t;
        (** Detection delay of the idealised failure detector. *)
    skip_single_group : bool;
        (** A1: single-group messages jump from stage s0 to s3 (paper's
            first optimisation over Fritzke et al.). *)
    skip_max_group : bool;
        (** A1: the group whose proposal equals the final timestamp skips
            stage s2 (paper's second optimisation). *)
    rm_mode : Rmcast.Reliable_multicast.mode;
        (** Reliable-multicast flavour for the initial dissemination. *)
    fd_mode : fd_mode;
        (** Failure detector driving A1's and A2's group consensus. *)
    prediction : prediction;
        (** A2's quiescence prediction (ignored by other protocols). *)
    round_grace : Des.Sim_time.t;
        (** A2: how long a process whose proposal for a barrier-mandated
            round would be {e empty} waits before proposing, so that a
            broadcast landing in an already-running round can still join
            its bundle (the schedule behind Theorem 5.1's degree-1 run).
            A message arriving within the window cancels the wait and
            proposes immediately; the pseudocode's "When" guard permits
            any such scheduling. *)
    null_period : Des.Sim_time.t;
        (** Deterministic-merge baseline ([1]): period of the null messages
            every publisher emits to keep subscriber streams advancing. *)
    opt_window : Des.Sim_time.t;
        (** Optimistic total order ([12]): compensation window receivers
            wait before optimistically delivering, to absorb latency
            differences between links. *)
    fast_lanes : bool;
        (** Steady-state message-path fast lanes (default on): Multi-Paxos
            coordinator lease + coordinator-only [Accepted]/[Decide] and
            decided-instance GC in consensus, payload-free [Copy] acks in
            the uniform reliable multicast, and single-event [send_multi]
            fan-outs on broadcast-shaped hot paths. Off = reference mode:
            the original (chattier) message pattern, kept for differential
            testing. Both modes implement the same protocols — only
            {e intra-group} message complexity changes, so Figure 1
            inter-group counts and Section 2.3 latency degrees are
            unaffected. *)
    batch_max : int;
        (** Throughput lane: maximum application casts packed into one
            batch — one R-MCast dissemination and one ordering payload.
            [1] (the default) disables batching; the cast path is then
            byte-identical to the pre-batching protocol. *)
    batch_delay : Des.Sim_time.t;
        (** Flush timeout of the size-or-timeout batching policy: a
            partially filled batch is flushed this long after its first
            cast. Also the ack-coalescing window of the uniform R-MCast
            Copy lane. Irrelevant when [batch_max = 1]. *)
    pipeline : int;
        (** In-flight consensus instance window: up to this many ordering
            instances may be undecided at once (instance [i+1] is proposed
            before [i] decides; decisions apply in order). [1] (the
            default) preserves the sequential behaviour bit-for-bit. *)
    conflict : Conflict.t;
        (** Conflict relation for the generic (conflict-aware) multicast
            protocol: which message pairs must be delivered in a consistent
            relative order by common addressees. {!Conflict.total} (the
            default) makes every pair conflict — classic total order.
            Total-order protocols ignore this field. *)
    overlay : Net.Overlay.t option;
        (** The WAN overlay the deployment runs on; [None] (the default)
            is the classic clique model. The overlay-routed protocols
            ({!Flexcast}) read it to route dissemination and stamps; the
            clique-model protocols ignore it and should be deployed over
            {!Net.Overlay.to_latency} so their direct sends pay the
            routed-path delay. *)
  }

  val default : t
  (** A1 as published: both skips on, non-uniform reliable multicast,
      200ms consensus timeout, 50ms oracle delay. *)

  val reference : t
  (** {!default} with [fast_lanes = false] — the pre-fast-lane message
      pattern, for differential runs. *)

  val throughput : t
  (** The high-throughput lane: {!default} with [batch_max = 8],
      [batch_delay = 2ms], [pipeline = 4]. Safety-equivalent to {!default}
      and {!reference} (asserted by the batching differentials); trades
      per-cast latency slack for saturation throughput. *)

  val batching : t -> bool
  (** [batch_max > 1]. *)

  val pipelined : t -> bool
  (** [pipeline > 1]. *)

  val fritzke : t
  (** The Fritzke et al. [5] baseline: no stage skipping. The initial
      dissemination keeps the eager (oracle-relayed) reliable multicast:
      Figure 1 analyses [5] with the oracle-based uniform primitive of
      Frolund & Pedone [6], whose latency degree is 1 and whose
      failure-free message pattern is exactly the eager one. (The
      {!Rmcast.Reliable_multicast.Ack_uniform} mode remains available as a
      no-oracle uniform multicast, at one extra message delay.) *)
end

module type S = sig
  type t

  type wire
  (** The protocol's wire message type (one engine payload type per
      deployment). *)

  val name : string

  val tag : wire -> string
  (** Trace label of a wire message's kind. *)

  val create :
    services:wire Runtime.Services.t ->
    config:Config.t ->
    deliver:(Msg.t -> unit) ->
    t
  (** One instance per process. [deliver] is called exactly once per
      A-Delivered message, in the local delivery order. *)

  val cast : t -> Msg.t -> unit
  (** A-XCast a message (A-MCast or A-BCast depending on [msg.dest]).
      Must be called on a process allowed by the protocol (any process for
      the multicast protocols; any process for broadcast protocols, with
      [dest] covering all groups). *)

  val on_receive : t -> src:Net.Topology.pid -> wire -> unit

  val stats : t -> (string * int) list
  (** Retained-state counters for this process (e.g. undecided consensus
      instances kept live, reliable-multicast entries not yet reclaimed).
      Labels are protocol-defined; the harness sums them across processes
      so soaks can report state growth. Protocols without retained state
      report []. *)
end

open Net
open Runtime

let name = "detmerge"

type wire =
  | Pub of { msg : Msg.t; ts : int }
  | Null of { ts : int }

let tag = function Pub _ -> "dm.pub" | Null _ -> "dm.null"

type t = {
  services : wire Services.t;
  deliver : Msg.t -> unit;
  null_period : Des.Sim_time.t;
  mutable own_ts : int; (* publisher stream position *)
  last_ts : int array; (* per-publisher stream watermark *)
  ord : Msg.t Pending_index.t; (* buffered, ordered by (publisher ts, id) *)
  buffered : Pending_index.handle Msg_id.Tbl.t; (* membership + handles *)
  delivered : unit Msg_id.Tbl.t;
}

let watermark t = Array.fold_left min max_int t.last_ts

(* Deliver buffered messages up to the watermark, in (ts, publisher)
   order. Any future message from publisher q carries ts > last_ts.(q) >=
   watermark, so nothing can sneak in below. The index pops them in key
   order directly, so a flush costs O(log buffered) per delivered message
   instead of a fold over the whole buffer. *)
let merge_flush t =
  let wm = watermark t in
  let rec loop () =
    match Pending_index.min_elt t.ord with
    | Some (ts, _, m) when ts <= wm ->
      ignore (Pending_index.pop_min t.ord);
      Msg_id.Tbl.remove t.buffered m.id;
      if not (Msg_id.Tbl.mem t.delivered m.id) then begin
        Msg_id.Tbl.replace t.delivered m.id ();
        if
          Msg.addressed_to_pid t.services.Services.topology m
            t.services.Services.self
        then t.deliver m
      end;
      loop ()
    | Some _ | None -> ()
  in
  loop ()

let buffer_msg t ~ts (m : Msg.t) =
  match Msg_id.Tbl.find_opt t.buffered m.id with
  | Some h ->
    Msg_id.Tbl.replace t.buffered m.id
      (Pending_index.reposition t.ord h ~ts ~id:m.id m)
  | None ->
    Msg_id.Tbl.replace t.buffered m.id
      (Pending_index.add t.ord ~ts ~id:m.id m)

let advance t ~publisher ~ts =
  if ts > t.last_ts.(publisher) then begin
    t.last_ts.(publisher) <- ts;
    merge_flush t
  end

(* Stream stamps are derived from (virtual) time, kept strictly monotone
   per publisher: [1]'s merge needs the streams to advance at comparable
   rates, which physical-time stamps with a known null rate provide. With
   per-publisher event counters instead, a slow publisher would stall the
   watermark arbitrarily. *)
let next_ts t =
  let now_us = Des.Sim_time.to_us (t.services.Services.now ()) in
  t.own_ts <- max (t.own_ts + 1) now_us;
  t.own_ts

let cast t (m : Msg.t) =
  let ts = next_ts t in
  ignore ts;
  let self = t.services.Services.self in
  (* The payload goes to the addressees only; everyone else learns that
     the stream advanced from the next null. *)
  List.iter
    (fun q ->
      if q <> self then
        t.services.Services.send ~dst:q (Pub { msg = m; ts = t.own_ts }))
    (Msg.dest_pids t.services.Services.topology m);
  buffer_msg t ~ts:t.own_ts m;
  advance t ~publisher:self ~ts:t.own_ts

let on_receive t ~src w =
  match w with
  | Pub { msg; ts } ->
    if
      (not (Msg_id.Tbl.mem t.buffered msg.id))
      && not (Msg_id.Tbl.mem t.delivered msg.id)
    then buffer_msg t ~ts msg;
    advance t ~publisher:src ~ts
  | Null { ts } -> advance t ~publisher:src ~ts

let rec null_tick t =
  let ts = next_ts t in
  let self = t.services.Services.self in
  List.iter
    (fun q ->
      if q <> self then t.services.Services.send ~dst:q (Null { ts }))
    (Topology.all_pids t.services.Services.topology);
  advance t ~publisher:self ~ts;
  ignore
    (t.services.Services.set_timer ~after:t.null_period (fun () ->
         null_tick t))

let create ~services ~config ~deliver =
  let t =
    {
      services;
      deliver;
      null_period = config.Protocol.Config.null_period;
      own_ts = 0;
      last_ts =
        Array.make (Topology.n_processes services.Services.topology) 0;
      ord = Pending_index.create ();
      buffered = Msg_id.Tbl.create 32;
      delivered = Msg_id.Tbl.create 32;
    }
  in
  null_tick t;
  t

let stats _ = []

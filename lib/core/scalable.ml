open Net
open Runtime

let name = "scalable"

type wire =
  | Rm of Msg.t Rmcast.Reliable_multicast.msg
  | Stamp of { msg : Msg.t; ts : int }
  | Cons of { id : Msg_id.t; inner : int Consensus.Paxos.msg }

let tag = function
  | Rm m -> Rmcast.Reliable_multicast.tag m
  | Stamp _ -> "scalable.stamp"
  | Cons { inner; _ } -> Consensus.Paxos.tag inner

type pending = {
  msg : Msg.t;
  own_ts : int;
  stamps : (Topology.pid, int) Hashtbl.t;
  mutable proposed : bool;
  mutable final : int option;
  mutable cons : (int, wire) Consensus.Paxos.t option;
      (* per-message consensus across all destination processes *)
}

type t = {
  services : wire Services.t;
  config : Protocol.Config.t;
  deliver : Msg.t -> unit;
  detector : Fd.Detector.t;
  mutable clock : int;
  pending : pending Msg_id.Tbl.t;
  delivered : unit Msg_id.Tbl.t;
  early_stamps : (Topology.pid * int) list Msg_id.Tbl.t;
  mutable rm : (Msg.t, wire) Rmcast.Reliable_multicast.t option;
}

let rm t = Option.get t.rm

let delivery_test t =
  let rec loop () =
    let best =
      Msg_id.Tbl.fold
        (fun _ p best ->
          match p.final with
          | None -> best
          | Some f -> (
            match best with
            | Some (f', p') when Msg.compare_ts_id (f', p'.msg) (f, p.msg) < 0
              ->
              best
            | _ -> Some (f, p)))
        t.pending None
    in
    match best with
    | None -> ()
    | Some (f, p) ->
      let blocked =
        Msg_id.Tbl.fold
          (fun _ q acc ->
            acc
            || q.final = None
               && Msg.compare_ts_id (q.own_ts, q.msg) (f, p.msg) < 0)
          t.pending false
      in
      if not blocked then begin
        Msg_id.Tbl.remove t.pending p.msg.id;
        Msg_id.Tbl.replace t.delivered p.msg.id ();
        t.deliver p.msg;
        loop ()
      end
  in
  loop ()

let consensus_for t (p : pending) =
  match p.cons with
  | Some c -> c
  | None ->
    let id = p.msg.id in
    let c =
      Consensus.Paxos.create ~services:t.services
        ~wrap:(fun inner -> Cons { id; inner })
        ~participants:(Msg.dest_pids t.services.Services.topology p.msg)
        ~detector:t.detector
        ~timeout:t.config.Protocol.Config.consensus_timeout
          (* The participants here span groups: the fast lanes are an
             intra-group economy and would alter the protocol's inter-group
             message counts, so this consensus always runs the reference
             pattern. *)
        ~fast_lanes:false
        ~on_decide:(fun ~instance:_ ts ->
          if p.final = None then begin
            p.final <- Some ts;
            t.clock <- max t.clock ts;
            delivery_test t
          end)
        ()
    in
    p.cons <- Some c;
    c

(* Once every addressee's stamp is in, propose the maximum to the
   cross-group consensus. *)
let maybe_propose t (p : pending) =
  if (not p.proposed) && p.final = None then begin
    let addressees = Msg.dest_pids t.services.Services.topology p.msg in
    if List.for_all (fun q -> Hashtbl.mem p.stamps q) addressees then begin
      p.proposed <- true;
      let max_ts = Hashtbl.fold (fun _ ts acc -> max acc ts) p.stamps 0 in
      Consensus.Paxos.propose (consensus_for t p) ~instance:0 max_ts
    end
  end

let on_data t (m : Msg.t) =
  if
    (not (Msg_id.Tbl.mem t.pending m.id))
    && not (Msg_id.Tbl.mem t.delivered m.id)
  then begin
    t.clock <- t.clock + 1;
    let p =
      {
        msg = m;
        own_ts = t.clock;
        stamps = Hashtbl.create 8;
        proposed = false;
        final = None;
        cons = None;
      }
    in
    Hashtbl.replace p.stamps t.services.Services.self t.clock;
    (match Msg_id.Tbl.find_opt t.early_stamps m.id with
    | Some stamps ->
      List.iter (fun (q, ts) -> Hashtbl.replace p.stamps q ts) stamps;
      Msg_id.Tbl.remove t.early_stamps m.id
    | None -> ());
    Msg_id.Tbl.replace t.pending m.id p;
    let addressees = Msg.dest_pids t.services.Services.topology m in
    List.iter
      (fun q ->
        if q <> t.services.Services.self then
          t.services.Services.send ~dst:q (Stamp { msg = m; ts = p.own_ts }))
      addressees;
    maybe_propose t p
  end

let cast t (m : Msg.t) =
  Rmcast.Reliable_multicast.rmcast (rm t) ~id:m.id
    ~dest:(Msg.dest_pids t.services.Services.topology m)
    m

let on_receive t ~src w =
  match w with
  | Rm rmsg -> Rmcast.Reliable_multicast.handle (rm t) ~src rmsg
  | Stamp { msg; ts } ->
    t.clock <- max t.clock ts;
    on_data t msg;
    (match Msg_id.Tbl.find_opt t.pending msg.id with
    | Some p ->
      if not (Hashtbl.mem p.stamps src) then Hashtbl.replace p.stamps src ts;
      maybe_propose t p
    | None ->
      if not (Msg_id.Tbl.mem t.delivered msg.id) then begin
        let prev =
          Option.value ~default:[]
            (Msg_id.Tbl.find_opt t.early_stamps msg.id)
        in
        Msg_id.Tbl.replace t.early_stamps msg.id ((src, ts) :: prev)
      end)
  | Cons { id; inner } -> (
    match Msg_id.Tbl.find_opt t.pending id with
    | Some p -> Consensus.Paxos.handle (consensus_for t p) ~src inner
    | None -> () (* already delivered: the endpoint has done its work *))

let create ~services ~config ~deliver =
  let detector =
    Fd.Detector.oracle ~delay:config.Protocol.Config.oracle_delay services
  in
  let t =
    {
      services;
      config;
      deliver;
      detector;
      clock = 0;
      pending = Msg_id.Tbl.create 32;
      delivered = Msg_id.Tbl.create 32;
      early_stamps = Msg_id.Tbl.create 8;
      rm = None;
    }
  in
  t.rm <-
    Some
      (Rmcast.Reliable_multicast.create ~services
         ~wrap:(fun m -> Rm m)
         ~mode:Rmcast.Reliable_multicast.Eager_nonuniform
         ~oracle_delay:config.Protocol.Config.oracle_delay
         ~fast_lanes:config.Protocol.Config.fast_lanes
         ~on_deliver:(fun ~id:_ ~origin:_ ~dest:_ m -> on_data t m)
         ());
  t

let pending_count t = Msg_id.Tbl.length t.pending

let stats t =
  [
    ("rm.entries", Rmcast.Reliable_multicast.retained_entries (rm t));
    ("rm.tombstones", Rmcast.Reliable_multicast.reclaimed_entries (rm t));
    ("pending", Msg_id.Tbl.length t.pending);
  ]

(* White-Box Atomic Multicast (see whitebox.mli). The stage machinery,
   pipelined proposing and decision processing are A1's; the inter-group
   exchange is leader-to-leader convoy stamps. *)

open Net
open Runtime

module Stage = struct
  type t = S0 | S1 | S2 | S3
end

let name = "whitebox"

type entry = { msg : Msg.t; ts : int; stage : Stage.t }

type wire =
  | Rm of Msg.t list Rmcast.Reliable_multicast.msg
  | Stamp of { msg : Msg.t; ts : int; from_group : Topology.gid }
      (* The convoy stamp: carries the message itself (like A1's [Ts])
         so a leader that has not yet R-delivered the batch can still
         note the message into stage s0. *)
  | Cons of entry list Consensus.Paxos.msg
  | Hb of Fd.Heartbeat.msg

let tag = function
  | Rm m -> Rmcast.Reliable_multicast.tag m
  | Stamp _ -> "whitebox.stamp"
  | Cons c -> Consensus.Paxos.tag c
  | Hb _ -> "fd.ping"

type pending = {
  msg : Msg.t;
  mutable ts : int;
  mutable stage : Stage.t;
  mutable handle : Pending_index.handle;
  mutable inflight : int;
  proposals : int Slab.Row.t; (* foreign stamps, indexed by gid *)
}

type t = {
  services : wire Services.t;
  config : Protocol.Config.t;
  deliver : Msg.t -> unit;
  my_group : Topology.gid;
  mutable k : int;
  mutable prop_k : int;
  pending : pending Msg_id.Tbl.t;
  ord : pending Pending_index.t;
  proposable : pending Msg_id.Tbl.t;
  adelivered : unit Msg_id.Tbl.t;
  decisions : entry list Slab.Window.t;
  prop_pool : int Slab.Row.pool;
  crashed : bool array;
      (* Local view of the oracle failure detector, one flag per pid;
         the leader of a group is its first non-crashed member. *)
  stamp_log : (Msg.t * int * Topology.gid list) Msg_id.Tbl.t;
      (* Own-group decided stamps: id -> (msg, ts, other dest groups).
         Every member logs deterministically at the s0 decide; the log
         is the re-send source for leader rotation, so it is retained
         for the whole run (reported via [stats]) and keeps the message
         itself — a foreign group may need our stamp long after we
         delivered and dropped the pending entry. *)
  mutable stamps_resent : int;
  mutable rm : (Msg.t list, wire) Rmcast.Reliable_multicast.t option;
  mutable cons : (entry list, wire) Consensus.Paxos.t option;
  mutable hb : wire Fd.Heartbeat.t option;
  mutable batcher : Batcher.t option;
  mutable cons_executed : int;
  mutable depth_max : int;
}

let rm t = Option.get t.rm
let cons t = Option.get t.cons
let batcher t = Option.get t.batcher

let other_dest_groups t (m : Msg.t) =
  List.filter (fun g -> g <> t.my_group) m.dest

(* The convoy leader of a group: its first member the local detector has
   not reported crashed. Falls back to the first member if the whole
   group is reported crashed (then nobody acts on the result anyway). *)
let leader_of t g =
  let members = Topology.members_array t.services.Services.topology g in
  let rec first i =
    if i >= Array.length members then members.(0)
    else if t.crashed.(members.(i)) then first (i + 1)
    else members.(i)
  in
  first 0

let is_leader t = leader_of t t.my_group = t.services.Services.self

let sync_proposable t (p : pending) =
  match p.stage with
  | Stage.S0 | Stage.S2 -> Msg_id.Tbl.replace t.proposable p.msg.id p
  | Stage.S1 | Stage.S3 -> Msg_id.Tbl.remove t.proposable p.msg.id

let move t (p : pending) ~ts ~stage =
  if ts <> p.ts then begin
    p.ts <- ts;
    p.handle <- Pending_index.reposition t.ord p.handle ~ts ~id:p.msg.id p
  end;
  p.stage <- stage;
  sync_proposable t p

let get_or_create_pending t (m : Msg.t) =
  match Msg_id.Tbl.find_opt t.pending m.id with
  | Some p -> p
  | None ->
    let p =
      {
        msg = m;
        ts = t.k;
        stage = Stage.S0;
        handle = -1;
        inflight = -1;
        proposals = Slab.Row.acquire t.prop_pool;
      }
    in
    p.handle <- Pending_index.add t.ord ~ts:p.ts ~id:m.id p;
    Msg_id.Tbl.replace t.pending m.id p;
    sync_proposable t p;
    p

let adelivery_test t =
  let rec loop () =
    match Pending_index.min_elt t.ord with
    | Some (_, _, p) when p.stage = Stage.S3 ->
      ignore (Pending_index.pop_min t.ord);
      Slab.Row.release t.prop_pool p.proposals;
      Msg_id.Tbl.remove t.pending p.msg.id;
      Msg_id.Tbl.replace t.adelivered p.msg.id ();
      t.deliver p.msg;
      loop ()
    | Some _ | None -> ()
  in
  loop ()

let try_propose t =
  let w = max 1 t.config.Protocol.Config.pipeline in
  if t.prop_k < t.k then t.prop_k <- t.k;
  let continue = ref true in
  while !continue && t.prop_k <= t.k + w - 1 do
    let snapshot =
      Msg_id.Tbl.fold
        (fun _ p acc ->
          if p.inflight < t.k then
            ({ msg = p.msg; ts = p.ts; stage = p.stage }, p) :: acc
          else acc)
        t.proposable []
    in
    if snapshot = [] then continue := false
    else begin
      let snapshot =
        List.sort
          (fun ((a : entry), _) ((b : entry), _) ->
            Msg.compare_id a.msg b.msg)
          snapshot
      in
      List.iter (fun (_, p) -> p.inflight <- t.prop_k) snapshot;
      Consensus.Paxos.propose (cons t) ~instance:t.prop_k
        (List.map fst snapshot);
      t.prop_k <- t.prop_k + 1;
      let depth = t.prop_k - t.k in
      if depth > t.depth_max then t.depth_max <- depth
    end
  done

(* Send our group's stamp for [m] to the leaders of the other
   destination groups — the whole wide-area exchange of this protocol. *)
let send_stamp_to_leaders t (m : Msg.t) ~ts ~others =
  List.iter
    (fun g ->
      t.services.Services.send ~dst:(leader_of t g)
        (Stamp { msg = m; ts; from_group = t.my_group }))
    others

(* Stage s1 completion. Unlike A1, [skip_max_group] never applies: only
   the leader holds the foreign stamps, so the final timestamp must go
   through the second consensus to reach the other members. *)
let check_s1 t id =
  match Msg_id.Tbl.find_opt t.pending id with
  | Some p when p.stage = Stage.S1 ->
    let others = other_dest_groups t p.msg in
    if List.for_all (fun g -> Slab.Row.mem p.proposals g) others then begin
      let max_other =
        List.fold_left
          (fun acc g -> max acc (Slab.Row.get p.proposals ~default:min_int g))
          min_int others
      in
      move t p ~ts:(max p.ts max_other) ~stage:Stage.S2;
      try_propose t
    end
  | Some _ | None -> ()

let rec process_decisions t =
  match Slab.Window.take t.decisions t.k with
  | None -> ()
  | Some entries ->
    let k = t.k in
    t.cons_executed <- t.cons_executed + 1;
    let max_ts = ref 0 in
    let moved_to_s1 = ref [] in
    List.iter
      (fun (e : entry) ->
        if Msg_id.Tbl.mem t.adelivered e.msg.id then
          max_ts := max !max_ts e.ts
        else begin
          let p = get_or_create_pending t e.msg in
          let multi = not (Msg.is_single_group e.msg) in
          if e.stage = Stage.S0 && p.stage <> Stage.S0 then
            (* Pipelined duplicate — see A1's process_decisions. *)
            max_ts := max !max_ts e.ts
          else if multi || not t.config.skip_single_group then begin
            match e.stage with
            | Stage.S0 ->
              move t p ~ts:k ~stage:Stage.S1;
              max_ts := max !max_ts k;
              let others = other_dest_groups t e.msg in
              (* Every member logs the decided stamp (deterministic:
                 decisions apply in the same order everywhere) so any
                 member promoted to leader can re-send it; only the
                 current leader sends now. *)
              Msg_id.Tbl.replace t.stamp_log e.msg.id (e.msg, k, others);
              if is_leader t then
                send_stamp_to_leaders t e.msg ~ts:k ~others;
              moved_to_s1 := e.msg.id :: !moved_to_s1
            | Stage.S2 ->
              move t p ~ts:e.ts ~stage:Stage.S3;
              max_ts := max !max_ts e.ts
            | Stage.S1 | Stage.S3 -> assert false
          end
          else begin
            move t p ~ts:k ~stage:Stage.S3;
            max_ts := max !max_ts k
          end
        end)
      entries;
    t.k <- max !max_ts t.k + 1;
    for i = k + 1 to t.k - 1 do
      Slab.Window.drop t.decisions i
    done;
    Consensus.Paxos.note_consumed (cons t) ~upto:(t.k - 1);
    List.iter (fun id -> check_s1 t id) !moved_to_s1;
    adelivery_test t;
    try_propose t;
    process_decisions t

let note_one t (m : Msg.t) =
  if
    (not (Msg_id.Tbl.mem t.pending m.id))
    && not (Msg_id.Tbl.mem t.adelivered m.id)
  then begin
    ignore (get_or_create_pending t m);
    true
  end
  else false

let note_message t (m : Msg.t) = if note_one t m then try_propose t

let note_batch t msgs =
  let fresh =
    List.fold_left
      (fun acc m ->
        let f = note_one t m in
        f || acc)
      false msgs
  in
  if fresh then try_propose t

let cast t (m : Msg.t) = Batcher.add (batcher t) m

let handle_stamp t ~from_group ~ts (msg : Msg.t) =
  if not (Msg_id.Tbl.mem t.adelivered msg.id) then begin
    note_message t msg;
    (match Msg_id.Tbl.find_opt t.pending msg.id with
    | Some p ->
      if not (Slab.Row.mem p.proposals from_group) then
        Slab.Row.set p.proposals from_group ts
    | None -> ());
    check_s1 t msg.id
  end

(* A crash notification: update the leader view, then — if we are (now)
   our group's leader — re-send the logged stamps the crash could have
   orphaned. A crash in our own group means the old leader may have died
   mid-fanout (or held the leadership the stamps were sent under):
   re-send everything undelivered. A crash in a foreign destination
   group means stamps sent to its old leader may be gone: re-send the
   stamps of messages destined there to its new leader. Receivers
   record stamps idempotently and ignore delivered ids, so duplicate
   re-sends are harmless. *)
let on_crash t q =
  t.crashed.(q) <- true;
  if is_leader t then begin
    let gq = Topology.group_of t.services.Services.topology q in
    Msg_id.Tbl.iter
      (fun _id (msg, ts, others) ->
        (* No local-delivery guard: we may have delivered [msg] long ago
           while a foreign group is still waiting for this stamp. *)
        let resend_to =
          if gq = t.my_group then others
          else if List.mem gq others then [ gq ]
          else []
        in
        if resend_to <> [] then begin
          t.stamps_resent <- t.stamps_resent + List.length resend_to;
          send_stamp_to_leaders t msg ~ts ~others:resend_to
        end)
      t.stamp_log
  end

let on_receive t ~src w =
  match w with
  | Rm rmsg -> Rmcast.Reliable_multicast.handle (rm t) ~src rmsg
  | Stamp { msg; ts; from_group } -> handle_stamp t ~from_group ~ts msg
  | Cons cmsg -> Consensus.Paxos.handle (cons t) ~src cmsg
  | Hb m -> (
    match t.hb with
    | Some hb -> Fd.Heartbeat.handle hb ~src m
    | None -> ())

let create ~services ~config ~deliver =
  let t =
    {
      services;
      config;
      deliver;
      my_group = Services.my_group services;
      k = 1;
      prop_k = 1;
      pending = Msg_id.Tbl.create 64;
      ord = Pending_index.create ();
      proposable = Msg_id.Tbl.create 64;
      adelivered = Msg_id.Tbl.create 64;
      decisions = Slab.Window.create ();
      prop_pool =
        Slab.Row.pool
          ~width:(Topology.n_groups services.Services.topology)
          ~default:0;
      crashed =
        Array.make (Topology.n_processes services.Services.topology) false;
      stamp_log = Msg_id.Tbl.create 64;
      stamps_resent = 0;
      rm = None;
      cons = None;
      hb = None;
      batcher = None;
      cons_executed = 0;
      depth_max = 0;
    }
  in
  let detector =
    match config.Protocol.Config.fd_mode with
    | Protocol.Config.Oracle ->
      Fd.Detector.oracle ~delay:config.Protocol.Config.oracle_delay services
    | Protocol.Config.Heartbeat { period; timeout } ->
      let hb =
        Fd.Heartbeat.create ~services
          ~wrap:(fun m -> Hb m)
          ~monitored:
            (Topology.members services.Services.topology t.my_group)
          ~period ~timeout ()
      in
      t.hb <- Some hb;
      Fd.Heartbeat.detector hb
  in
  (* The leader view and the re-send rule listen to the oracle directly:
     leadership spans groups, so the subscription covers every pid. *)
  services.Services.on_crash_detected
    ~delay:config.Protocol.Config.oracle_delay (fun q -> on_crash t q);
  t.rm <-
    Some
      (Rmcast.Reliable_multicast.create ~services
         ~wrap:(fun m -> Rm m)
         ~mode:config.Protocol.Config.rm_mode
         ~oracle_delay:config.Protocol.Config.oracle_delay
         ~fast_lanes:config.Protocol.Config.fast_lanes
         ?coalesce:
           (if Protocol.Config.batching config then
              Some
                ( config.Protocol.Config.batch_max,
                  config.Protocol.Config.batch_delay )
            else None)
         ~on_deliver:(fun ~id:_ ~origin:_ ~dest:_ msgs -> note_batch t msgs)
         ());
  t.batcher <-
    Some
      (Batcher.create ~max:config.Protocol.Config.batch_max
         ~delay:config.Protocol.Config.batch_delay
         ~set_timer:services.Services.set_timer
         ~cancel_timer:services.Services.cancel_timer
         ~flush:(fun ~key msgs ->
           let first = List.hd msgs in
           Rmcast.Reliable_multicast.rmcast (rm t) ~id:first.Msg.id
             ~dest:(Topology.pids_of_groups services.Services.topology key)
             msgs));
  t.cons <-
    Some
      (Consensus.Paxos.create ~services
         ~wrap:(fun m -> Cons m)
         ~participants:
           (Topology.members services.Services.topology
              (Services.my_group services))
         ~detector
         ~timeout:config.Protocol.Config.consensus_timeout
         ~fast_lanes:config.Protocol.Config.fast_lanes
         ~on_decide:(fun ~instance v ->
           if instance >= t.k then begin
             Slab.Window.set t.decisions instance v;
             process_decisions t
           end)
         ());
  t

let pending_count t = Msg_id.Tbl.length t.pending
let clock t = t.k

let stats t =
  [
    ("cons.instances", Consensus.Paxos.retained_instances (cons t));
    ("rm.entries", Rmcast.Reliable_multicast.retained_entries (rm t));
    ("rm.tombstones", Rmcast.Reliable_multicast.reclaimed_entries (rm t));
    ("pending", Msg_id.Tbl.length t.pending);
    ("stamp_log", Msg_id.Tbl.length t.stamp_log);
    ("stamps_resent", t.stamps_resent);
    ("pipeline_depth_max", t.depth_max);
  ]

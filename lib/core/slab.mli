(** Flat, reusable protocol-state containers for the delivery hot path.

    Replaces the per-pending [Hashtbl]s in the protocol cores with
    preallocated arrays + presence flags, pooled so the steady state
    allocates nothing per cast. *)

module Row : sig
  type 'a t
  (** A fixed-width slot array with a one-byte presence mask per slot.
      Typical use: one slot per group (proposals) or per process
      (timestamps), acquired when a message becomes pending and released
      back to the pool at delivery. *)

  type 'a pool

  val pool : width:int -> default:'a -> 'a pool
  (** A pool of rows of [width] slots. [default] fills vacant slots (it is
      never observable through {!get}/{!find} while absent, but must be a
      value safe to retain, e.g. [0] or a static sentinel).
      @raise Invalid_argument if [width <= 0]. *)

  val width : 'a pool -> int

  val acquire : 'a pool -> 'a t
  (** A cleared row: reuses a released one when available. *)

  val release : 'a pool -> 'a t -> unit
  (** Scrubs only the slots that were set (O(set slots), not O(width)) and
      returns the row to the free list. The caller must drop its reference. *)

  val set : 'a t -> int -> 'a -> unit
  val mem : 'a t -> int -> bool
  val get : 'a t -> default:'a -> int -> 'a
  val find : 'a t -> int -> 'a option

  val count : 'a t -> int
  (** Number of distinct slots set since acquire. *)
end

module Window : sig
  type 'a t
  (** Values keyed by a monotonically advancing instance number whose live
      span stays small (the consensus pipeline window): a power-of-two ring
      indexed by [key land (capacity - 1)], grown only on a live-key
      collision. *)

  val create : unit -> 'a t

  val set : 'a t -> int -> 'a -> unit
  (** @raise Invalid_argument on a negative key. *)

  val take : 'a t -> int -> 'a option
  (** Removes and returns the value at the key, if present. *)

  val drop : 'a t -> int -> unit
  val mem : 'a t -> int -> bool
  val find : 'a t -> int -> 'a option

  val live : 'a t -> int
  (** Number of keys currently present. *)
end

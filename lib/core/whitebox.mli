(** White-Box Atomic Multicast (leader/convoy-based, PAPERS.md).

    A1's group-timestamp scheme with the inter-group traffic collapsed
    onto per-group leaders. As in A1, each destination group runs
    consensus to agree on a group timestamp for every message (stage
    s0), and the final timestamp is the maximum over the destination
    groups' proposals, agreed by a second consensus (stage s2). The
    difference is the exchange in between: instead of every member
    fanning its group's proposal out to {e every process} of every other
    destination group, only the group's {e leader} — its lowest
    non-crashed pid under the oracle failure detector — sends the convoy
    stamp, and only to the {e leaders} of the other destination groups.
    Per message and per destination-group pair the wide-area exchange is
    one message instead of [d * d] (for groups of [d] processes).

    Fault tolerance: every member logs its group's decided stamps
    ([stamp_log], retained for the run and reported via [stats]). On a
    crash notification, the current leader of each group re-sends the
    logged stamps that the crash could have orphaned — its own group's
    crash promotes a new leader who re-sends everything undelivered to
    the other groups' leaders; a foreign group's crash makes leaders
    re-send the stamps of messages destined to that group to its new
    leader. Stamp recording is idempotent and delivered messages ignore
    late stamps, so duplicate re-sends are harmless.

    The second consensus always runs ([Config.skip_max_group] is
    ignored): non-leader members never see foreign stamps, so the final
    timestamp must reach them through a decided value.
    [Config.skip_single_group] is honoured — single-group messages go
    straight to s3, as in A1. Delivery verdicts match A1's across the
    differential scenario grid (asserted by the property suite). *)

include Protocol.S

val pending_count : t -> int
val clock : t -> int

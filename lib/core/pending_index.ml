type handle = int

type 'a entry = {
  ts : int;
  id : Runtime.Msg_id.t;
  handle : int;
  payload : 'a;
}

(* Same liveness scheme as Des.Event_queue: [flags] holds one byte per
   issued handle (1 = live), [live] counts the set bits. Removal flips the
   byte; the heap slot stays behind as a dead entry and is discarded when
   it surfaces at the root — or swept out wholesale by [compact] once dead
   entries outnumber live ones, which keeps [to_sorted_list] linear in the
   live set rather than in the all-time insert count. *)
type 'a t = {
  mutable heap : 'a entry array;
  mutable len : int;
  mutable next_handle : int;
  mutable flags : Bytes.t;
  mutable live : int;
}

let create () =
  { heap = [||]; len = 0; next_handle = 0;
    flags = Bytes.make 64 '\000'; live = 0 }

let entry_lt a b =
  let c = Int.compare a.ts b.ts in
  if c <> 0 then c < 0 else Runtime.Msg_id.compare a.id b.id < 0

let is_live q (e : _ entry) = Bytes.unsafe_get q.flags e.handle = '\001'

let grow q =
  let cap = Array.length q.heap in
  let ncap = if cap = 0 then 16 else cap * 2 in
  let dummy = q.heap.(0) in
  let nh = Array.make ncap dummy in
  Array.blit q.heap 0 nh 0 q.len;
  q.heap <- nh

let sift_up q i e =
  let i = ref i in
  let moving = ref true in
  while !moving && !i > 0 do
    let parent = (!i - 1) / 2 in
    if entry_lt e q.heap.(parent) then begin
      q.heap.(!i) <- q.heap.(parent);
      i := parent
    end
    else moving := false
  done;
  q.heap.(!i) <- e

let sift_down_from q start e =
  let i = ref start in
  let moving = ref true in
  while !moving do
    let l = (2 * !i) + 1 in
    if l >= q.len then moving := false
    else begin
      let r = l + 1 in
      let c = if r < q.len && entry_lt q.heap.(r) q.heap.(l) then r else l in
      if entry_lt q.heap.(c) e then begin
        q.heap.(!i) <- q.heap.(c);
        i := c
      end
      else moving := false
    end
  done;
  q.heap.(!i) <- e

(* Drop every dead slot and re-heapify bottom-up: O(live). Called only
   when dead > live + threshold, so the cost amortises to O(1) per
   removal. *)
let compact q =
  let w = ref 0 in
  for r = 0 to q.len - 1 do
    let e = q.heap.(r) in
    if is_live q e then begin
      q.heap.(!w) <- e;
      incr w
    end
  done;
  q.len <- !w;
  for i = (q.len / 2) - 1 downto 0 do
    sift_down_from q i q.heap.(i)
  done

let maybe_compact q = if q.len > (2 * q.live) + 16 then compact q

let add q ~ts ~id payload =
  let handle = q.next_handle in
  q.next_handle <- handle + 1;
  let e = { ts; id; handle; payload } in
  if q.len = 0 && Array.length q.heap = 0 then q.heap <- Array.make 16 e;
  if q.len >= Array.length q.heap then grow q;
  q.len <- q.len + 1;
  sift_up q (q.len - 1) e;
  if handle >= Bytes.length q.flags then begin
    let ncap = max (2 * Bytes.length q.flags) (handle + 1) in
    let nf = Bytes.make ncap '\000' in
    Bytes.blit q.flags 0 nf 0 (Bytes.length q.flags);
    q.flags <- nf
  end;
  Bytes.unsafe_set q.flags handle '\001';
  q.live <- q.live + 1;
  handle

let remove q handle =
  if handle >= 0 && handle < q.next_handle
     && Bytes.unsafe_get q.flags handle = '\001'
  then begin
    Bytes.unsafe_set q.flags handle '\000';
    q.live <- q.live - 1;
    maybe_compact q
  end

let reposition q handle ~ts ~id payload =
  remove q handle;
  add q ~ts ~id payload

let pop_entry q =
  let e = q.heap.(0) in
  q.len <- q.len - 1;
  if q.len > 0 then sift_down_from q 0 q.heap.(q.len);
  e

let rec min_elt q =
  if q.len = 0 then None
  else begin
    let e = q.heap.(0) in
    if is_live q e then Some (e.ts, e.id, e.payload)
    else begin
      ignore (pop_entry q);
      min_elt q
    end
  end

let rec pop_min q =
  if q.len = 0 then None
  else begin
    let e = pop_entry q in
    if is_live q e then begin
      Bytes.unsafe_set q.flags e.handle '\000';
      q.live <- q.live - 1;
      Some (e.ts, e.id, e.payload)
    end
    else pop_min q
  end

let size q = q.live
let is_empty q = q.live = 0

let to_sorted_list q =
  let acc = ref [] in
  for i = 0 to q.len - 1 do
    let e = q.heap.(i) in
    if is_live q e then acc := e :: !acc
  done;
  List.sort
    (fun a b ->
      let c = Int.compare a.ts b.ts in
      if c <> 0 then c else Runtime.Msg_id.compare a.id b.id)
    !acc
  |> List.map (fun e -> (e.ts, e.id, e.payload))

(** FlexCast-style genuine atomic multicast over a WAN overlay.

    Skeen's decentralised timestamping, generalised to route along a
    non-clique overlay ({!Net.Overlay}) instead of assuming every group
    pair is directly connected. Dissemination forwards the message hop
    by hop through the overlay: each interior group's relay (its lowest
    pid) timestamps the message in transit — it bumps its logical clock
    and folds it into the carried [path_ts], so an addressee's stamp
    dominates every interior clock on its path (Lamport monotonicity
    along routes). Addressee stamps are exchanged over the same overlay
    (forwarded unmodified — every addressee must fold the {e same} stamp
    values into the final maximum), and delivery is in
    [(final ts, id)] order exactly as in Skeen.

    Genuine {e relative to the overlay}: only the origin, the addressees
    and the relays of groups on the routing paths (origin-to-destination
    routes plus destination-pair stamp routes —
    {!Net.Overlay.participants}) ever send or receive a message. Groups
    off those paths stay silent, which the overlay-aware checker
    asserts.

    On a clique overlay every group pair is adjacent, no interior relay
    exists and [path_ts] stays 0 — the protocol's sends, clocks and
    delivery sequences are identical to {!Skeen}'s, per-pid and
    bit-for-bit (asserted by the differential suite).

    Failure-free like {!Skeen}: the relays are deterministic single
    processes, so this baseline assumes the crash-free model of the
    FlexCast evaluation. The overlay comes from
    [config.overlay]; [None] defaults to a clique over the topology's
    groups. *)

include Protocol.S

val pending_count : t -> int

open Net
open Runtime

module Stage = struct
  type t = S0 | S1 | S2 | S3

  let to_string = function
    | S0 -> "s0"
    | S1 -> "s1"
    | S2 -> "s2"
    | S3 -> "s3"

  let pp ppf s = Fmt.string ppf (to_string s)
end

let name = "a1"

(* A consensus proposal is a snapshot of pending messages in stages s0/s2,
   with the fields the deciders need to interpret them. *)
type entry = { msg : Msg.t; ts : int; stage : Stage.t }

type wire =
  | Rm of Msg.t Rmcast.Reliable_multicast.msg
  | Ts of { msg : Msg.t; ts : int; from_group : Topology.gid }
  | Cons of entry list Consensus.Paxos.msg
  | Hb of Fd.Heartbeat.msg (* only with Config.fd_mode = Heartbeat *)

let tag = function
  | Rm m -> Rmcast.Reliable_multicast.tag m
  | Ts _ -> "a1.ts"
  | Cons c -> Consensus.Paxos.tag c
  | Hb _ -> "fd.ping"

type pending = {
  msg : Msg.t;
  mutable ts : int;
  mutable stage : Stage.t;
  mutable handle : Pending_index.handle; (* slot in the ordered index *)
  proposals : (Topology.gid, int) Hashtbl.t;
      (* timestamp proposals received in (TS, m) messages, per group *)
}

type t = {
  services : wire Services.t;
  config : Protocol.Config.t;
  deliver : Msg.t -> unit;
  my_group : Topology.gid;
  mutable k : int; (* K: group-clock copy = next consensus instance *)
  mutable prop_k : int; (* no two proposals for the same instance *)
  pending : pending Msg_id.Tbl.t;
  ord : pending Pending_index.t; (* pending, ordered by (ts, id) *)
  proposable : pending Msg_id.Tbl.t; (* the s0/s2 subset of [pending] *)
  adelivered : unit Msg_id.Tbl.t;
  decisions : (int, entry list) Hashtbl.t; (* decided, not yet processed *)
  mutable rm : (Msg.t, wire) Rmcast.Reliable_multicast.t option;
  mutable cons : (entry list, wire) Consensus.Paxos.t option;
  mutable hb : wire Fd.Heartbeat.t option;
  mutable cons_executed : int;
}

let rm t = Option.get t.rm
let cons t = Option.get t.cons

let other_dest_groups t (m : Msg.t) =
  List.filter (fun g -> g <> t.my_group) m.dest

let sync_proposable t (p : pending) =
  match p.stage with
  | Stage.S0 | Stage.S2 -> Msg_id.Tbl.replace t.proposable p.msg.id p
  | Stage.S1 | Stage.S3 -> Msg_id.Tbl.remove t.proposable p.msg.id

(* Every stage/timestamp transition goes through here so the ordered index
   and the proposable subset can never drift from the pending table. *)
let move t (p : pending) ~ts ~stage =
  if ts <> p.ts then begin
    p.ts <- ts;
    p.handle <- Pending_index.reposition t.ord p.handle ~ts ~id:p.msg.id p
  end;
  p.stage <- stage;
  sync_proposable t p

let get_or_create_pending t (m : Msg.t) =
  match Msg_id.Tbl.find_opt t.pending m.id with
  | Some p -> p
  | None ->
    let p =
      {
        msg = m;
        ts = t.k;
        stage = Stage.S0;
        handle = -1;
        proposals = Hashtbl.create 4;
      }
    in
    p.handle <- Pending_index.add t.ord ~ts:p.ts ~id:m.id p;
    Msg_id.Tbl.replace t.pending m.id p;
    sync_proposable t p;
    p

(* Line 4-7: deliver every s3 message whose (ts, id) is minimal among all
   pending messages (any stage). The index keeps that minimum at its root,
   so each attempt is O(log pending) instead of a full fold. *)
let adelivery_test t =
  let rec loop () =
    match Pending_index.min_elt t.ord with
    | Some (_, _, p) when p.stage = Stage.S3 ->
      ignore (Pending_index.pop_min t.ord);
      Msg_id.Tbl.remove t.pending p.msg.id;
      Msg_id.Tbl.replace t.adelivered p.msg.id ();
      t.deliver p.msg;
      loop ()
    | Some _ | None -> ()
  in
  loop ()

(* Line 14-17: propose all pending s0/s2 messages to instance K. The
   [proposable] table holds exactly that subset, so the snapshot is linear
   in the proposal size, not in the whole pending table. *)
let try_propose t =
  if t.prop_k <= t.k then begin
    let msg_set =
      Msg_id.Tbl.fold
        (fun _ p acc -> { msg = p.msg; ts = p.ts; stage = p.stage } :: acc)
        t.proposable []
    in
    if msg_set <> [] then begin
      let msg_set =
        List.sort
          (fun (a : entry) (b : entry) -> Msg.compare_id a.msg b.msg)
          msg_set
      in
      Consensus.Paxos.propose (cons t) ~instance:t.k msg_set;
      t.prop_k <- t.k + 1
    end
  end

(* Line 33-40: once (TS, m) proposals from every other destination group
   are in, either skip to s3 (our proposal is the maximum) or adopt the
   maximum and run a second consensus (stage s2). *)
let check_s1 t id =
  match Msg_id.Tbl.find_opt t.pending id with
  | Some p when p.stage = Stage.S1 ->
    let others = other_dest_groups t p.msg in
    if List.for_all (fun g -> Hashtbl.mem p.proposals g) others then begin
      let max_other =
        List.fold_left
          (fun acc g -> max acc (Hashtbl.find p.proposals g))
          min_int others
      in
      if t.config.skip_max_group && p.ts >= max_other then begin
        move t p ~ts:p.ts ~stage:Stage.S3; (* second consensus not needed *)
        adelivery_test t
      end
      else begin
        move t p ~ts:(max p.ts max_other) ~stage:Stage.S2;
        try_propose t
      end
    end
  | Some _ | None -> ()

(* Line 18-32: interpret the decision of instance K. *)
let rec process_decisions t =
  match Hashtbl.find_opt t.decisions t.k with
  | None -> ()
  | Some entries ->
    Hashtbl.remove t.decisions t.k;
    let k = t.k in
    t.cons_executed <- t.cons_executed + 1;
    let max_ts = ref 0 in
    let moved_to_s1 = ref [] in
    List.iter
      (fun (e : entry) ->
        if Msg_id.Tbl.mem t.adelivered e.msg.id then
          max_ts := max !max_ts e.ts
        else begin
          let p = get_or_create_pending t e.msg in
          let multi = not (Msg.is_single_group e.msg) in
          if multi || not t.config.skip_single_group then begin
            match e.stage with
            | Stage.S0 ->
              (* Group proposal for m's timestamp is the instance number. *)
              move t p ~ts:k ~stage:Stage.S1;
              max_ts := max !max_ts k;
              let dest_outside =
                Topology.pids_of_groups t.services.Services.topology
                  (other_dest_groups t e.msg)
              in
              (if t.config.fast_lanes then Services.send_multi
               else Services.send_all)
                t.services dest_outside
                (Ts { msg = e.msg; ts = k; from_group = t.my_group });
              moved_to_s1 := e.msg.id :: !moved_to_s1
            | Stage.S2 ->
              (* Clock pushed past the final timestamp: m is ready. *)
              move t p ~ts:e.ts ~stage:Stage.S3;
              max_ts := max !max_ts e.ts
            | Stage.S1 | Stage.S3 -> assert false
          end
          else begin
            (* Single-group message: its group is the only proposer, the
               instance number is final — straight to s3 (line 28-29). *)
            move t p ~ts:k ~stage:Stage.S3;
            max_ts := max !max_ts k
          end
        end)
      entries;
    (* Line 31: K <- max(max ts decided, K) + 1. *)
    t.k <- max !max_ts t.k + 1;
    (* The group clock can jump past unproposed instance numbers (every
       member follows the same K sequence, so the gaps are never filled);
       let the consensus GC watermark advance across them. *)
    Consensus.Paxos.note_consumed (cons t) ~upto:(t.k - 1);
    (* Proposals buffered while we were deciding may complete stage s1. *)
    List.iter (fun id -> check_s1 t id) !moved_to_s1;
    adelivery_test t;
    try_propose t;
    process_decisions t

(* Line 10-13: first sight of a message (R-Delivered or piggybacked on a
   TS message) puts it in stage s0 with the current clock as timestamp. *)
let note_message t (m : Msg.t) =
  if
    (not (Msg_id.Tbl.mem t.pending m.id))
    && not (Msg_id.Tbl.mem t.adelivered m.id)
  then begin
    ignore (get_or_create_pending t m);
    try_propose t
  end

let cast t (m : Msg.t) =
  Rmcast.Reliable_multicast.rmcast (rm t) ~id:m.id
    ~dest:(Msg.dest_pids t.services.Services.topology m)
    m

let on_receive t ~src w =
  match w with
  | Rm rmsg -> Rmcast.Reliable_multicast.handle (rm t) ~src rmsg
  | Ts { msg; ts; from_group } ->
    if not (Msg_id.Tbl.mem t.adelivered msg.id) then begin
      note_message t msg;
      (match Msg_id.Tbl.find_opt t.pending msg.id with
      | Some p ->
        if not (Hashtbl.mem p.proposals from_group) then
          Hashtbl.replace p.proposals from_group ts
      | None -> ());
      check_s1 t msg.id
    end
  | Cons cmsg -> Consensus.Paxos.handle (cons t) ~src cmsg
  | Hb m -> (
    match t.hb with
    | Some hb -> Fd.Heartbeat.handle hb ~src m
    | None -> ())

let create ~services ~config ~deliver =
  let t =
    {
      services;
      config;
      deliver;
      my_group = Services.my_group services;
      k = 1;
      prop_k = 1;
      pending = Msg_id.Tbl.create 64;
      ord = Pending_index.create ();
      proposable = Msg_id.Tbl.create 64;
      adelivered = Msg_id.Tbl.create 64;
      decisions = Hashtbl.create 16;
      rm = None;
      cons = None;
      hb = None;
      cons_executed = 0;
    }
  in
  let detector =
    match config.Protocol.Config.fd_mode with
    | Protocol.Config.Oracle ->
      Fd.Detector.oracle ~delay:config.Protocol.Config.oracle_delay services
    | Protocol.Config.Heartbeat { period; timeout } ->
      let hb =
        Fd.Heartbeat.create ~services
          ~wrap:(fun m -> Hb m)
          ~monitored:
            (Topology.members services.Services.topology t.my_group)
          ~period ~timeout ()
      in
      t.hb <- Some hb;
      Fd.Heartbeat.detector hb
  in
  t.rm <-
    Some
      (Rmcast.Reliable_multicast.create ~services
         ~wrap:(fun m -> Rm m)
         ~mode:config.Protocol.Config.rm_mode
         ~oracle_delay:config.Protocol.Config.oracle_delay
         ~fast_lanes:config.Protocol.Config.fast_lanes
         ~on_deliver:(fun ~id:_ ~origin:_ ~dest:_ m -> note_message t m)
         ());
  t.cons <-
    Some
      (Consensus.Paxos.create ~services
         ~wrap:(fun m -> Cons m)
         ~participants:
           (Topology.members services.Services.topology
              (Services.my_group services))
         ~detector
         ~timeout:config.Protocol.Config.consensus_timeout
         ~fast_lanes:config.Protocol.Config.fast_lanes
         ~on_decide:(fun ~instance v ->
           Hashtbl.replace t.decisions instance v;
           process_decisions t)
         ());
  t

let pending_count t = Msg_id.Tbl.length t.pending
let clock t = t.k
let consensus_instances_executed t = t.cons_executed

let stats t =
  [
    ("cons.instances", Consensus.Paxos.retained_instances (cons t));
    ("rm.entries", Rmcast.Reliable_multicast.retained_entries (rm t));
    ("rm.tombstones", Rmcast.Reliable_multicast.reclaimed_entries (rm t));
    ("pending", Msg_id.Tbl.length t.pending);
  ]

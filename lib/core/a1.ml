open Net
open Runtime

module Stage = struct
  type t = S0 | S1 | S2 | S3

  let to_string = function
    | S0 -> "s0"
    | S1 -> "s1"
    | S2 -> "s2"
    | S3 -> "s3"

  let pp ppf s = Fmt.string ppf (to_string s)
end

let name = "a1"

(* A consensus proposal is a snapshot of pending messages in stages s0/s2,
   with the fields the deciders need to interpret them. *)
type entry = { msg : Msg.t; ts : int; stage : Stage.t }

type wire =
  | Rm of Msg.t list Rmcast.Reliable_multicast.msg
      (* The R-MCast payload is a batch of casts sharing a destination
         set; a singleton when batching is off (the batch id is the first
         message's id, so the unbatched wire pattern is unchanged). *)
  | Ts of { msg : Msg.t; ts : int; from_group : Topology.gid }
  | Tsb of { msgs : Msg.t list; ts : int; from_group : Topology.gid }
      (* Throughput lane: the (TS, m) proposals of one consensus instance
         for every message bound to the same foreign groups, in one
         fan-out (they all propose the same timestamp — the instance
         number). Only sent when batching is on. *)
  | Cons of entry list Consensus.Paxos.msg
  | Hb of Fd.Heartbeat.msg (* only with Config.fd_mode = Heartbeat *)

let tag = function
  | Rm m -> Rmcast.Reliable_multicast.tag m
  | Ts _ -> "a1.ts"
  | Tsb _ -> "a1.tsb"
  | Cons c -> Consensus.Paxos.tag c
  | Hb _ -> "fd.ping"

type pending = {
  msg : Msg.t;
  mutable ts : int;
  mutable stage : Stage.t;
  mutable handle : Pending_index.handle; (* slot in the ordered index *)
  mutable inflight : int;
      (* highest consensus instance this message was proposed to while in
         its current proposable stage; the pipelining window skips entries
         with [inflight >= k] (already riding an undecided instance) *)
  proposals : int Slab.Row.t;
      (* timestamp proposals received in (TS, m) messages, indexed by gid;
         pooled — released back to [prop_pool] at adelivery *)
}

type t = {
  services : wire Services.t;
  config : Protocol.Config.t;
  deliver : Msg.t -> unit;
  my_group : Topology.gid;
  mutable k : int; (* K: group-clock copy = next consensus instance *)
  mutable prop_k : int; (* no two proposals for the same instance *)
  pending : pending Msg_id.Tbl.t;
  ord : pending Pending_index.t; (* pending, ordered by (ts, id) *)
  proposable : pending Msg_id.Tbl.t; (* the s0/s2 subset of [pending] *)
  adelivered : unit Msg_id.Tbl.t;
  decisions : entry list Slab.Window.t; (* decided, not yet processed *)
  prop_pool : int Slab.Row.pool; (* proposal rows, width = n_groups *)
  mutable rm : (Msg.t list, wire) Rmcast.Reliable_multicast.t option;
  mutable cons : (entry list, wire) Consensus.Paxos.t option;
  mutable hb : wire Fd.Heartbeat.t option;
  mutable batcher : Batcher.t option;
  mutable cons_executed : int;
  mutable depth_max : int; (* max in-flight instances (pipelining) *)
}

let rm t = Option.get t.rm
let cons t = Option.get t.cons
let batcher t = Option.get t.batcher

let other_dest_groups t (m : Msg.t) =
  List.filter (fun g -> g <> t.my_group) m.dest

let sync_proposable t (p : pending) =
  match p.stage with
  | Stage.S0 | Stage.S2 -> Msg_id.Tbl.replace t.proposable p.msg.id p
  | Stage.S1 | Stage.S3 -> Msg_id.Tbl.remove t.proposable p.msg.id

(* Every stage/timestamp transition goes through here so the ordered index
   and the proposable subset can never drift from the pending table. *)
let move t (p : pending) ~ts ~stage =
  if ts <> p.ts then begin
    p.ts <- ts;
    p.handle <- Pending_index.reposition t.ord p.handle ~ts ~id:p.msg.id p
  end;
  p.stage <- stage;
  sync_proposable t p

let get_or_create_pending t (m : Msg.t) =
  match Msg_id.Tbl.find_opt t.pending m.id with
  | Some p -> p
  | None ->
    let p =
      {
        msg = m;
        ts = t.k;
        stage = Stage.S0;
        handle = -1;
        inflight = -1;
        proposals = Slab.Row.acquire t.prop_pool;
      }
    in
    p.handle <- Pending_index.add t.ord ~ts:p.ts ~id:m.id p;
    Msg_id.Tbl.replace t.pending m.id p;
    sync_proposable t p;
    p

(* Line 4-7: deliver every s3 message whose (ts, id) is minimal among all
   pending messages (any stage). The index keeps that minimum at its root,
   so each attempt is O(log pending) instead of a full fold. *)
let adelivery_test t =
  let rec loop () =
    match Pending_index.min_elt t.ord with
    | Some (_, _, p) when p.stage = Stage.S3 ->
      ignore (Pending_index.pop_min t.ord);
      Slab.Row.release t.prop_pool p.proposals;
      Msg_id.Tbl.remove t.pending p.msg.id;
      Msg_id.Tbl.replace t.adelivered p.msg.id ();
      t.deliver p.msg;
      loop ()
    | Some _ | None -> ()
  in
  loop ()

(* Line 14-17: propose all pending s0/s2 messages to instance K. The
   [proposable] table holds exactly that subset, so the snapshot is linear
   in the proposal size, not in the whole pending table.

   With [pipeline = w > 1], up to [w] instances K..K+w-1 may be undecided
   at once: each further instance proposes the proposable entries not
   already riding an in-flight instance ([inflight < K]), so instance i+1
   starts before i decides. Decisions still apply strictly in K order
   (process_decisions consumes exactly instance K), and a clock jump
   abandons overtaken instances via the consensus [note_consumed]
   contract. With [w = 1] the loop body runs at most once, proposing the
   full proposable set to instance K — the pre-pipelining behaviour. *)
let try_propose t =
  let w = max 1 t.config.Protocol.Config.pipeline in
  if t.prop_k < t.k then t.prop_k <- t.k;
  let continue = ref true in
  while !continue && t.prop_k <= t.k + w - 1 do
    let snapshot =
      Msg_id.Tbl.fold
        (fun _ p acc ->
          if p.inflight < t.k then
            ({ msg = p.msg; ts = p.ts; stage = p.stage }, p) :: acc
          else acc)
        t.proposable []
    in
    if snapshot = [] then continue := false
    else begin
      let snapshot =
        List.sort
          (fun ((a : entry), _) ((b : entry), _) ->
            Msg.compare_id a.msg b.msg)
          snapshot
      in
      List.iter (fun (_, p) -> p.inflight <- t.prop_k) snapshot;
      Consensus.Paxos.propose (cons t) ~instance:t.prop_k
        (List.map fst snapshot);
      t.prop_k <- t.prop_k + 1;
      let depth = t.prop_k - t.k in
      if depth > t.depth_max then t.depth_max <- depth
    end
  done

(* Line 33-40: once (TS, m) proposals from every other destination group
   are in, either skip to s3 (our proposal is the maximum) or adopt the
   maximum and run a second consensus (stage s2). *)
let check_s1 t id =
  match Msg_id.Tbl.find_opt t.pending id with
  | Some p when p.stage = Stage.S1 ->
    let others = other_dest_groups t p.msg in
    if List.for_all (fun g -> Slab.Row.mem p.proposals g) others then begin
      let max_other =
        List.fold_left
          (fun acc g -> max acc (Slab.Row.get p.proposals ~default:min_int g))
          min_int others
      in
      if t.config.skip_max_group && p.ts >= max_other then begin
        move t p ~ts:p.ts ~stage:Stage.S3; (* second consensus not needed *)
        adelivery_test t
      end
      else begin
        move t p ~ts:(max p.ts max_other) ~stage:Stage.S2;
        try_propose t
      end
    end
  | Some _ | None -> ()

(* Line 18-32: interpret the decision of instance K. *)
let rec process_decisions t =
  match Slab.Window.take t.decisions t.k with
  | None -> ()
  | Some entries ->
    let k = t.k in
    t.cons_executed <- t.cons_executed + 1;
    let max_ts = ref 0 in
    let moved_to_s1 = ref [] in
    (* Throughput lane: every s0 entry of this instance proposes the same
       timestamp k, so the (TS, m) fan-outs to a given foreign-group set
       merge into one [Tsb] per set (sent after the loop). *)
    let batch_ts = Protocol.Config.batching t.config in
    let ts_buckets = ref [] in
    List.iter
      (fun (e : entry) ->
        if Msg_id.Tbl.mem t.adelivered e.msg.id then
          max_ts := max !max_ts e.ts
        else begin
          let p = get_or_create_pending t e.msg in
          let multi = not (Msg.is_single_group e.msg) in
          if e.stage = Stage.S0 && p.stage <> Stage.S0 then
            (* Pipelined duplicate: two in-flight instances can both carry
               m at stage s0 (proposed by members with different
               R-delivery timing). Only the first decide assigns the
               group timestamp; reprocessing would advance it after the
               (TS, m) fan-out already left and desynchronise the final
               timestamps across groups. Every member skips identically:
               stage >= s1 holds iff an earlier instance s0-decided m,
               and decisions apply in the same order everywhere. [e.ts]
               is part of the decided value, so the clock-jump
               contribution is deterministic too. *)
            max_ts := max !max_ts e.ts
          else if multi || not t.config.skip_single_group then begin
            match e.stage with
            | Stage.S0 ->
              (* Group proposal for m's timestamp is the instance number. *)
              move t p ~ts:k ~stage:Stage.S1;
              max_ts := max !max_ts k;
              (if batch_ts then begin
                 let key = other_dest_groups t e.msg in
                 match List.assoc_opt key !ts_buckets with
                 | Some b -> b := e.msg :: !b
                 | None -> ts_buckets := !ts_buckets @ [ (key, ref [ e.msg ]) ]
               end
               else
                 let dest_outside =
                   Topology.pids_of_groups t.services.Services.topology
                     (other_dest_groups t e.msg)
                 in
                 (if t.config.fast_lanes then Services.send_multi
                  else Services.send_all)
                   t.services dest_outside
                   (Ts { msg = e.msg; ts = k; from_group = t.my_group }));
              moved_to_s1 := e.msg.id :: !moved_to_s1
            | Stage.S2 ->
              (* Clock pushed past the final timestamp: m is ready. *)
              move t p ~ts:e.ts ~stage:Stage.S3;
              max_ts := max !max_ts e.ts
            | Stage.S1 | Stage.S3 -> assert false
          end
          else begin
            (* Single-group message: its group is the only proposer, the
               instance number is final — straight to s3 (line 28-29). *)
            move t p ~ts:k ~stage:Stage.S3;
            max_ts := max !max_ts k
          end
        end)
      entries;
    List.iter
      (fun (key, b) ->
        let dest_outside =
          Topology.pids_of_groups t.services.Services.topology key
        in
        (if t.config.fast_lanes then Services.send_multi
         else Services.send_all)
          t.services dest_outside
          (Tsb { msgs = List.rev !b; ts = k; from_group = t.my_group }))
      !ts_buckets;
    (* Line 31: K <- max(max ts decided, K) + 1. *)
    t.k <- max !max_ts t.k + 1;
    (* A clock jump abandons any decided-but-unprocessed instances it
       overtakes (pipelining): every member jumps identically, so these
       decisions are consumed by nobody — drop them before they leak. *)
    for i = k + 1 to t.k - 1 do
      Slab.Window.drop t.decisions i
    done;
    (* The group clock can jump past unproposed instance numbers (every
       member follows the same K sequence, so the gaps are never filled);
       let the consensus GC watermark advance across them. *)
    Consensus.Paxos.note_consumed (cons t) ~upto:(t.k - 1);
    (* Proposals buffered while we were deciding may complete stage s1. *)
    List.iter (fun id -> check_s1 t id) !moved_to_s1;
    adelivery_test t;
    try_propose t;
    process_decisions t

(* Line 10-13: first sight of a message (R-Delivered or piggybacked on a
   TS message) puts it in stage s0 with the current clock as timestamp. *)
let note_one t (m : Msg.t) =
  if
    (not (Msg_id.Tbl.mem t.pending m.id))
    && not (Msg_id.Tbl.mem t.adelivered m.id)
  then begin
    ignore (get_or_create_pending t m);
    true
  end
  else false

let note_message t (m : Msg.t) = if note_one t m then try_propose t

(* R-Delivery of a batch: every message enters stage s0 {e before} the
   single proposal attempt, so the whole batch rides one consensus
   snapshot instead of the first message triggering a proposal that
   splits it. *)
let note_batch t msgs =
  let fresh =
    List.fold_left
      (fun acc m ->
        let f = note_one t m in
        f || acc)
      false msgs
  in
  if fresh then try_propose t

let cast t (m : Msg.t) = Batcher.add (batcher t) m

let handle_ts t ~from_group ~ts (msg : Msg.t) =
  if not (Msg_id.Tbl.mem t.adelivered msg.id) then begin
    note_message t msg;
    (match Msg_id.Tbl.find_opt t.pending msg.id with
    | Some p ->
      if not (Slab.Row.mem p.proposals from_group) then
        Slab.Row.set p.proposals from_group ts
    | None -> ());
    check_s1 t msg.id
  end

let on_receive t ~src w =
  match w with
  | Rm rmsg -> Rmcast.Reliable_multicast.handle (rm t) ~src rmsg
  | Ts { msg; ts; from_group } -> handle_ts t ~from_group ~ts msg
  | Tsb { msgs; ts; from_group } ->
    List.iter (fun m -> handle_ts t ~from_group ~ts m) msgs
  | Cons cmsg -> Consensus.Paxos.handle (cons t) ~src cmsg
  | Hb m -> (
    match t.hb with
    | Some hb -> Fd.Heartbeat.handle hb ~src m
    | None -> ())

let create ~services ~config ~deliver =
  let t =
    {
      services;
      config;
      deliver;
      my_group = Services.my_group services;
      k = 1;
      prop_k = 1;
      pending = Msg_id.Tbl.create 64;
      ord = Pending_index.create ();
      proposable = Msg_id.Tbl.create 64;
      adelivered = Msg_id.Tbl.create 64;
      decisions = Slab.Window.create ();
      prop_pool =
        Slab.Row.pool
          ~width:(Topology.n_groups services.Services.topology)
          ~default:0;
      rm = None;
      cons = None;
      hb = None;
      batcher = None;
      cons_executed = 0;
      depth_max = 0;
    }
  in
  let detector =
    match config.Protocol.Config.fd_mode with
    | Protocol.Config.Oracle ->
      Fd.Detector.oracle ~delay:config.Protocol.Config.oracle_delay services
    | Protocol.Config.Heartbeat { period; timeout } ->
      let hb =
        Fd.Heartbeat.create ~services
          ~wrap:(fun m -> Hb m)
          ~monitored:
            (Topology.members services.Services.topology t.my_group)
          ~period ~timeout ()
      in
      t.hb <- Some hb;
      Fd.Heartbeat.detector hb
  in
  t.rm <-
    Some
      (Rmcast.Reliable_multicast.create ~services
         ~wrap:(fun m -> Rm m)
         ~mode:config.Protocol.Config.rm_mode
         ~oracle_delay:config.Protocol.Config.oracle_delay
         ~fast_lanes:config.Protocol.Config.fast_lanes
         ?coalesce:
           (if Protocol.Config.batching config then
              Some
                ( config.Protocol.Config.batch_max,
                  config.Protocol.Config.batch_delay )
            else None)
         ~on_deliver:(fun ~id:_ ~origin:_ ~dest:_ msgs -> note_batch t msgs)
         ());
  t.batcher <-
    Some
      (Batcher.create ~max:config.Protocol.Config.batch_max
         ~delay:config.Protocol.Config.batch_delay
         ~set_timer:services.Services.set_timer
         ~cancel_timer:services.Services.cancel_timer
         ~flush:(fun ~key msgs ->
           (* One R-MCast carries the whole batch; its id is the first
              message's (globally unique, and with a singleton batch this
              is exactly the unbatched dissemination). [key] is the shared
              normalized destination-group list, so the pid fan-out equals
              each message's own [Msg.dest_pids]. *)
           let first = List.hd msgs in
           Rmcast.Reliable_multicast.rmcast (rm t) ~id:first.Msg.id
             ~dest:(Topology.pids_of_groups services.Services.topology key)
             msgs));
  t.cons <-
    Some
      (Consensus.Paxos.create ~services
         ~wrap:(fun m -> Cons m)
         ~participants:
           (Topology.members services.Services.topology
              (Services.my_group services))
         ~detector
         ~timeout:config.Protocol.Config.consensus_timeout
         ~fast_lanes:config.Protocol.Config.fast_lanes
         ~on_decide:(fun ~instance v ->
           (* A decide for an instance the group clock already jumped past
              is for an abandoned instance — consumed by nobody. *)
           if instance >= t.k then begin
             Slab.Window.set t.decisions instance v;
             process_decisions t
           end)
         ());
  t

let pending_count t = Msg_id.Tbl.length t.pending
let clock t = t.k
let consensus_instances_executed t = t.cons_executed

let stats t =
  [
    ("cons.instances", Consensus.Paxos.retained_instances (cons t));
    ("rm.entries", Rmcast.Reliable_multicast.retained_entries (rm t));
    ("rm.tombstones", Rmcast.Reliable_multicast.reclaimed_entries (rm t));
    ("pending", Msg_id.Tbl.length t.pending);
    ("batches_formed", Batcher.batches_formed (batcher t));
    ("batched_casts", Batcher.casts_packed (batcher t));
    ("casts_per_batch_max", Batcher.max_batch (batcher t));
    ("pipeline_depth_max", t.depth_max);
    ("acks_coalesced", Rmcast.Reliable_multicast.acks_coalesced (rm t));
  ]

(* Flat, reusable protocol-state containers for the steady-state delivery
   hot path. The per-pending [Hashtbl]s the protocols started with allocate
   buckets on every insert and churn the minor heap at hundred-group scale;
   these replace them with the flag-byte + slab idiom the DES already uses
   (Des.Event_queue, Network's in-flight slab): presence is one byte, values
   live in preallocated arrays, and released rows go back to a free list so
   the steady state allocates nothing. *)

module Row = struct
  type 'a t = {
    vals : 'a array; (* [width] slots, meaningful only where present *)
    present : Bytes.t; (* '\001' = slot holds a value *)
    mutable touched : int array; (* first [count] entries: set slot indices *)
    mutable count : int;
  }

  type 'a pool = {
    width : int;
    default : 'a;
    mutable free : 'a t array;
    mutable free_top : int;
  }

  let pool ~width ~default =
    if width <= 0 then invalid_arg "Slab.Row.pool: width must be > 0";
    { width; default; free = [||]; free_top = 0 }

  let width p = p.width

  let acquire p =
    if p.free_top > 0 then begin
      p.free_top <- p.free_top - 1;
      p.free.(p.free_top)
    end
    else
      {
        vals = Array.make p.width p.default;
        present = Bytes.make p.width '\000';
        touched = Array.make 8 0;
        count = 0;
      }

  (* Clearing walks only the touched slots, so release is O(values set),
     not O(width) — a row that collected 3 proposals out of 100 groups
     costs 3 writes to scrub. *)
  let release p r =
    for i = 0 to r.count - 1 do
      let slot = r.touched.(i) in
      Bytes.unsafe_set r.present slot '\000';
      r.vals.(slot) <- p.default
    done;
    r.count <- 0;
    if p.free_top >= Array.length p.free then begin
      let cap = Array.length p.free in
      let nf = Array.make (if cap = 0 then 8 else 2 * cap) r in
      Array.blit p.free 0 nf 0 cap;
      p.free <- nf
    end;
    p.free.(p.free_top) <- r;
    p.free_top <- p.free_top + 1

  let mem r i = Bytes.unsafe_get r.present i = '\001'

  let set r i v =
    if not (mem r i) then begin
      Bytes.unsafe_set r.present i '\001';
      if r.count >= Array.length r.touched then begin
        let nt = Array.make (2 * Array.length r.touched) 0 in
        Array.blit r.touched 0 nt 0 r.count;
        r.touched <- nt
      end;
      r.touched.(r.count) <- i;
      r.count <- r.count + 1
    end;
    r.vals.(i) <- v

  let get r ~default i = if mem r i then r.vals.(i) else default
  let find r i = if mem r i then Some r.vals.(i) else None
  let count r = r.count
end

module Window = struct
  (* Decided-but-unconsumed values keyed by a monotonically advancing
     instance number. The live keys span at most the protocol's pipeline
     window (decisions apply in instance order; overtaken instances are
     dropped by the same clock jump at every member, mirroring the
     consensus layer's [decided_upto] GC), so a small power-of-two ring
     indexed by [instance land (capacity - 1)] replaces the per-instance
     Hashtbl churn. The ring only grows if a configuration ever exceeds
     its capacity with live entries — then it doubles and re-seats. *)
  type 'a t = {
    mutable keys : int array; (* -1 = slot empty *)
    mutable vals : 'a option array;
    mutable live : int;
  }

  let create () =
    { keys = Array.make 8 (-1); vals = Array.make 8 None; live = 0 }

  let rec grow t =
    let cap = Array.length t.keys in
    let nkeys = Array.make (2 * cap) (-1) in
    let nvals = Array.make (2 * cap) None in
    let old_keys = t.keys and old_vals = t.vals in
    t.keys <- nkeys;
    t.vals <- nvals;
    t.live <- 0;
    Array.iteri
      (fun i k -> if k >= 0 then set t k (Option.get old_vals.(i)))
      old_keys

  and set t k v =
    if k < 0 then invalid_arg "Slab.Window.set: negative key";
    let slot = k land (Array.length t.keys - 1) in
    if t.keys.(slot) >= 0 && t.keys.(slot) <> k then begin
      grow t;
      set t k v
    end
    else begin
      if t.keys.(slot) < 0 then t.live <- t.live + 1;
      t.keys.(slot) <- k;
      t.vals.(slot) <- Some v
    end

  let take t k =
    if k < 0 then None
    else begin
      let slot = k land (Array.length t.keys - 1) in
      if t.keys.(slot) = k then begin
        let v = t.vals.(slot) in
        t.keys.(slot) <- -1;
        t.vals.(slot) <- None;
        t.live <- t.live - 1;
        v
      end
      else None
    end

  let drop t k = ignore (take t k)

  let mem t k =
    k >= 0 && t.keys.(k land (Array.length t.keys - 1)) = k

  let find t k =
    if mem t k then t.vals.(k land (Array.length t.keys - 1)) else None

  let live t = t.live
end

open Net
open Runtime

let name = "skeen"

type wire =
  | Data of Msg.t
  | Stamp of { id : Msg_id.t; ts : int }

let tag = function Data _ -> "skeen.data" | Stamp _ -> "skeen.stamp"

type pending = {
  msg : Msg.t;
  own_ts : int;
  stamps : int Slab.Row.t;
      (* per-stamper timestamps indexed by pid; pooled, released at
         delivery. Only addressees ever stamp (Data fans out to the
         destination pids and each stamps once), so a count equal to
         [n_addr] means every stamp is in — no addressee-list scan. *)
  n_addr : int; (* |dest_pids msg|, fixed at first sight *)
  mutable stamp_max : int; (* running max of received stamps *)
  mutable final : int option;
  mutable handle : Pending_index.handle;
      (* slot in [ord]; keyed by own_ts until finalised, then by final *)
}

type t = {
  services : wire Services.t;
  deliver : Msg.t -> unit;
  mutable clock : int;
  pending : pending Msg_id.Tbl.t;
  ord : pending Pending_index.t;
      (* pending ordered by the lower bound of each message's final
         timestamp: own_ts while unfinalised (the final is at least the
         own stamp), the final stamp once known *)
  delivered : unit Msg_id.Tbl.t;
  early_stamps : (Topology.pid * int) list Msg_id.Tbl.t;
      (* stamps that outran their Data message (triangle inequality does
         not hold under jitter or asymmetric latency matrices) *)
  stamp_pool : int Slab.Row.pool; (* stamp rows, width = n_processes *)
}

let add_stamp (p : pending) q ts =
  if not (Slab.Row.mem p.stamps q) then begin
    Slab.Row.set p.stamps q ts;
    if ts > p.stamp_max then p.stamp_max <- ts
  end

(* Deliver every finalised message whose (final, id) is minimal: no other
   finalised message precedes it, and no unfinalised message could still
   get a smaller final stamp (its final is at least its own stamp here).
   With the index keyed by that lower bound, both conditions collapse into
   one question about the root: a finalised root is deliverable (nothing —
   finalised or not — can precede it), an unfinalised root blocks
   delivery (whatever the minimal finalised message is, the root could
   still finalise below it). *)
let delivery_test t =
  let rec loop () =
    match Pending_index.min_elt t.ord with
    | Some (_, _, p) when p.final <> None ->
      ignore (Pending_index.pop_min t.ord);
      Slab.Row.release t.stamp_pool p.stamps;
      Msg_id.Tbl.remove t.pending p.msg.id;
      Msg_id.Tbl.replace t.delivered p.msg.id ();
      t.deliver p.msg;
      loop ()
    | Some _ | None -> ()
  in
  loop ()

let maybe_finalize t p =
  if p.final = None then begin
    if Slab.Row.count p.stamps = p.n_addr then begin
      let f = p.stamp_max in
      p.final <- Some f;
      p.handle <- Pending_index.reposition t.ord p.handle ~ts:f ~id:p.msg.id p;
      t.clock <- max t.clock f;
      delivery_test t
    end
  end

let on_data t (m : Msg.t) =
  if
    (not (Msg_id.Tbl.mem t.pending m.id))
    && not (Msg_id.Tbl.mem t.delivered m.id)
  then begin
    t.clock <- t.clock + 1;
    let addressees = Msg.dest_pids t.services.Services.topology m in
    let p =
      {
        msg = m;
        own_ts = t.clock;
        stamps = Slab.Row.acquire t.stamp_pool;
        n_addr = List.length addressees;
        stamp_max = 0;
        final = None;
        handle = -1;
      }
    in
    p.handle <- Pending_index.add t.ord ~ts:p.own_ts ~id:m.id p;
    add_stamp p t.services.Services.self t.clock;
    (match Msg_id.Tbl.find_opt t.early_stamps m.id with
    | Some stamps ->
      List.iter (fun (q, ts) -> add_stamp p q ts) stamps;
      Msg_id.Tbl.remove t.early_stamps m.id
    | None -> ());
    Msg_id.Tbl.replace t.pending m.id p;
    List.iter
      (fun q ->
        if q <> t.services.Services.self then
          t.services.Services.send ~dst:q (Stamp { id = m.id; ts = t.clock }))
      addressees;
    maybe_finalize t p
  end

let cast t (m : Msg.t) =
  let addressees = Msg.dest_pids t.services.Services.topology m in
  List.iter
    (fun q ->
      if q <> t.services.Services.self then
        t.services.Services.send ~dst:q (Data m))
    addressees;
  (* The caster participates directly when it is itself an addressee. *)
  if Msg.addressed_to_pid t.services.Services.topology m t.services.Services.self
  then on_data t m

let on_receive t ~src w =
  match w with
  | Data m -> on_data t m
  | Stamp { id; ts } ->
    t.clock <- max t.clock ts;
    (match Msg_id.Tbl.find_opt t.pending id with
    | Some p ->
      add_stamp p src ts;
      maybe_finalize t p
    | None ->
      if not (Msg_id.Tbl.mem t.delivered id) then begin
        (* Stamp outran the Data message: buffer until Data arrives. *)
        let prev =
          Option.value ~default:[] (Msg_id.Tbl.find_opt t.early_stamps id)
        in
        Msg_id.Tbl.replace t.early_stamps id ((src, ts) :: prev)
      end);
    delivery_test t

let create ~services ~config:_ ~deliver =
  {
    services;
    deliver;
    clock = 0;
    pending = Msg_id.Tbl.create 32;
    ord = Pending_index.create ();
    delivered = Msg_id.Tbl.create 32;
    early_stamps = Msg_id.Tbl.create 8;
    stamp_pool =
      Slab.Row.pool
        ~width:(Topology.n_processes services.Services.topology)
        ~default:0;
  }

let pending_count t = Msg_id.Tbl.length t.pending

let stats _ = []

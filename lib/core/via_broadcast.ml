let name = "via-broadcast"

type t = { a2 : A2.t }
type wire = A2.wire

let tag = A2.tag

let create ~services ~config ~deliver =
  let topology = services.Runtime.Services.topology in
  let my_group =
    Net.Topology.group_of topology services.Runtime.Services.self
  in
  let filtered (m : Msg.t) =
    if Msg.addressed_to_group m my_group then deliver m
  in
  { a2 = A2.create ~services ~config ~deliver:filtered }

let cast t m = A2.cast_payload_only t.a2 m
let on_receive t ~src w = A2.on_receive t.a2 ~src w

let stats t = A2.stats t.a2

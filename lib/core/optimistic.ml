open Net
open Runtime

let name = "optimistic"

type wire =
  | Data of { msg : Msg.t; sent_at : int } (* microseconds of virtual time *)
  | Order of { index : int; id : Msg_id.t } (* the sequencer's final order *)

let tag = function Data _ -> "opt.data" | Order _ -> "opt.order"

type slot = {
  msg : Msg.t;
  sent_at : int;
  mutable opt_delivered : bool;
}

type t = {
  services : wire Services.t;
  deliver : Msg.t -> unit;
  window : Des.Sim_time.t;
  sequencer : Topology.pid;
  slots : slot Msg_id.Tbl.t;
  mutable opt_log : Msg_id.t list; (* newest first *)
  mutable final_log : Msg_id.t list; (* newest first *)
  mutable seq_index : int; (* sequencer-side: next index to assign *)
  mutable next_final : int; (* next index to deliver finally *)
  order : (int, Msg_id.t) Hashtbl.t;
}

let am_sequencer t = t.services.Services.self = t.sequencer

(* Optimistic delivery: messages whose compensation window has elapsed, in
   (send timestamp, id) order. The window absorbs latency differences so
   that concurrent messages come out in the same spontaneous order
   everywhere (usually). *)
let opt_flush t =
  let now_us = Des.Sim_time.to_us (t.services.Services.now ()) in
  let window = Des.Sim_time.to_us t.window in
  let ready =
    Msg_id.Tbl.fold
      (fun _ s acc ->
        if (not s.opt_delivered) && s.sent_at + window <= now_us then s :: acc
        else acc)
      t.slots []
    |> List.sort (fun a b ->
           Msg.compare_ts_id (a.sent_at, a.msg) (b.sent_at, b.msg))
  in
  List.iter
    (fun s ->
      s.opt_delivered <- true;
      t.opt_log <- s.msg.id :: t.opt_log;
      if am_sequencer t then begin
        (* The sequencer's optimistic order is the final order. *)
        let index = t.seq_index in
        t.seq_index <- index + 1;
        Hashtbl.replace t.order index s.msg.id;
        Services.send_all t.services
          (List.filter
             (fun q -> q <> t.sequencer)
             (Topology.all_pids t.services.Services.topology))
          (Order { index; id = s.msg.id })
      end)
    ready

let rec final_flush t =
  match Hashtbl.find_opt t.order t.next_final with
  | None -> ()
  | Some id -> (
    match Msg_id.Tbl.find_opt t.slots id with
    | Some s ->
      t.next_final <- t.next_final + 1;
      t.final_log <- id :: t.final_log;
      t.deliver s.msg;
      final_flush t
    | None -> () (* payload not here yet *))

let on_data t (m : Msg.t) ~sent_at =
  if not (Msg_id.Tbl.mem t.slots m.id) then begin
    Msg_id.Tbl.replace t.slots m.id
      { msg = m; sent_at; opt_delivered = false };
    (* Wake up when this message's compensation window elapses. *)
    let now_us = Des.Sim_time.to_us (t.services.Services.now ()) in
    let fire_in =
      max 0 (sent_at + Des.Sim_time.to_us t.window - now_us)
    in
    ignore
      (t.services.Services.set_timer ~after:(Des.Sim_time.of_us fire_in)
         (fun () ->
           opt_flush t;
           final_flush t));
    final_flush t
  end

let cast t (m : Msg.t) =
  let sent_at = Des.Sim_time.to_us (t.services.Services.now ()) in
  Services.send_all t.services
    (List.filter
       (fun q -> q <> t.services.Services.self)
       (Topology.all_pids t.services.Services.topology))
    (Data { msg = m; sent_at });
  on_data t m ~sent_at

let on_receive t ~src:_ w =
  match w with
  | Data { msg; sent_at } -> on_data t msg ~sent_at
  | Order { index; id } ->
    Hashtbl.replace t.order index id;
    final_flush t

let create ~services ~config ~deliver =
  {
    services;
    deliver;
    window = config.Protocol.Config.opt_window;
    sequencer = List.hd (Topology.members services.Services.topology 0);
    slots = Msg_id.Tbl.create 32;
    opt_log = [];
    final_log = [];
    seq_index = 0;
    next_final = 0;
    order = Hashtbl.create 32;
  }

let optimistic_deliveries t = List.rev t.opt_log

(* Pairwise inversions between the optimistic and the final local orders:
   the mistake count [12] tries to minimise via the compensation window. *)
let optimistic_mistakes t =
  let opt = Array.of_list (List.rev t.opt_log) in
  let pos = Msg_id.Tbl.create 32 in
  Array.iteri (fun i id -> Msg_id.Tbl.replace pos id i) opt;
  let final = List.rev t.final_log in
  let rec count acc = function
    | [] | [ _ ] -> acc
    | a :: (b :: _ as rest) ->
      let inverted =
        match (Msg_id.Tbl.find_opt pos a, Msg_id.Tbl.find_opt pos b) with
        | Some ia, Some ib -> ia > ib
        | _ -> false
      in
      count (if inverted then acc + 1 else acc) rest
  in
  count 0 final

let stats _ = []

open Net
open Runtime

let name = "generic"

type wire =
  | Data of Msg.t
  | Stamp of { id : Msg_id.t; ts : int }

let tag = function Data _ -> "generic.data" | Stamp _ -> "generic.stamp"

type pending = {
  msg : Msg.t;
  own_ts : int;
  cls : string; (* conflict class, "" under Total / Scan mode *)
  stamps : int Slab.Row.t;
  n_addr : int;
  mutable stamp_max : int;
  mutable final : int option;
  mutable handle : Pending_index.handle;
}

(* How the pending set is ordered, decided once from the conflict
   relation's shape. *)
type ord_state =
  | Classes of (string, pending Pending_index.t) Hashtbl.t
      (* partition relations (Total, Keyed): one independent (ts, id)
         frontier per conflict class; Total has the single class "" and
         degenerates to plain Skeen *)
  | Scan of pending Pending_index.t
      (* bare Commute predicate: one index ordered by the final-stamp
         lower bound, delivery by pairwise conflict scan *)

type t = {
  services : wire Services.t;
  conflict : Conflict.t;
  deliver : Msg.t -> unit;
  mutable clock : int;
  pending : pending Msg_id.Tbl.t;
  ord : ord_state;
  delivered : unit Msg_id.Tbl.t;
  early_stamps : (Topology.pid * int) list Msg_id.Tbl.t;
  stamp_pool : int Slab.Row.pool;
  mutable bypassed : int; (* solo messages delivered at Data arrival *)
  mutable ordered : int; (* messages that went through stamping *)
}

let add_stamp (p : pending) q ts =
  if not (Slab.Row.mem p.stamps q) then begin
    Slab.Row.set p.stamps q ts;
    if ts > p.stamp_max then p.stamp_max <- ts
  end

let deliver_pending t (p : pending) =
  Slab.Row.release t.stamp_pool p.stamps;
  Msg_id.Tbl.remove t.pending p.msg.id;
  Msg_id.Tbl.replace t.delivered p.msg.id ();
  t.deliver p.msg

(* Per-class delivery test: within one class the index is exactly Skeen's
   — a finalised root is deliverable, an unfinalised root (key = own-stamp
   lower bound) blocks the class. Other classes never block. *)
let class_delivery_test t classes cls =
  match Hashtbl.find_opt classes cls with
  | None -> ()
  | Some idx ->
    let rec loop () =
      match Pending_index.min_elt idx with
      | Some (_, _, p) when p.final <> None ->
        ignore (Pending_index.pop_min idx);
        deliver_pending t p;
        loop ()
      | Some _ | None -> ()
    in
    loop ();
    if Pending_index.is_empty idx then Hashtbl.remove classes cls

(* Pairwise-scan delivery test for bare Commute relations: deliver the
   first (in (lower-bound, id) order) finalised message that no earlier
   pending message conflicts with; repeat until none qualifies. An
   earlier conflicting message blocks whether finalised (it must go
   first) or not (it could still finalise below). *)
let scan_delivery_test t idx =
  let rec pass () =
    let entries = Pending_index.to_sorted_list idx in
    let rec find before = function
      | [] -> None
      | (_, _, p) :: rest ->
        if
          p.final <> None
          && not
               (List.exists
                  (fun q -> Conflict.conflicts t.conflict q.msg p.msg)
                  before)
        then Some p
        else find (p :: before) rest
    in
    match find [] entries with
    | Some p ->
      Pending_index.remove idx p.handle;
      deliver_pending t p;
      pass ()
    | None -> ()
  in
  pass ()

let delivery_test t cls =
  match t.ord with
  | Classes classes -> class_delivery_test t classes cls
  | Scan idx -> scan_delivery_test t idx

let index_for t (cls : string) =
  match t.ord with
  | Scan idx -> idx
  | Classes classes -> (
    match Hashtbl.find_opt classes cls with
    | Some idx -> idx
    | None ->
      let idx = Pending_index.create () in
      Hashtbl.replace classes cls idx;
      idx)

let maybe_finalize t p =
  if p.final = None then begin
    if Slab.Row.count p.stamps = p.n_addr then begin
      let f = p.stamp_max in
      p.final <- Some f;
      p.handle <-
        Pending_index.reposition (index_for t p.cls) p.handle ~ts:f
          ~id:p.msg.id p;
      t.clock <- max t.clock f;
      delivery_test t p.cls
    end
  end

let on_data t (m : Msg.t) =
  if
    (not (Msg_id.Tbl.mem t.pending m.id))
    && not (Msg_id.Tbl.mem t.delivered m.id)
  then
    if Conflict.solo t.conflict m then begin
      (* Conflicts with nothing: deliverable the moment it arrives, no
         stamps, no clock traffic — reliable-multicast cost. *)
      Msg_id.Tbl.replace t.delivered m.id ();
      t.bypassed <- t.bypassed + 1;
      t.deliver m
    end
    else begin
      t.clock <- t.clock + 1;
      t.ordered <- t.ordered + 1;
      let addressees = Msg.dest_pids t.services.Services.topology m in
      let cls =
        match Conflict.class_of t.conflict m with
        | Some (Some c) -> c
        | Some None ->
          (* solo under a partition relation — handled above *)
          assert false
        | None -> "" (* Scan mode: classes unused *)
      in
      let p =
        {
          msg = m;
          own_ts = t.clock;
          cls;
          stamps = Slab.Row.acquire t.stamp_pool;
          n_addr = List.length addressees;
          stamp_max = 0;
          final = None;
          handle = -1;
        }
      in
      p.handle <- Pending_index.add (index_for t cls) ~ts:p.own_ts ~id:m.id p;
      add_stamp p t.services.Services.self t.clock;
      (match Msg_id.Tbl.find_opt t.early_stamps m.id with
      | Some stamps ->
        List.iter (fun (q, ts) -> add_stamp p q ts) stamps;
        Msg_id.Tbl.remove t.early_stamps m.id
      | None -> ());
      Msg_id.Tbl.replace t.pending m.id p;
      List.iter
        (fun q ->
          if q <> t.services.Services.self then
            t.services.Services.send ~dst:q (Stamp { id = m.id; ts = t.clock }))
        addressees;
      maybe_finalize t p
    end

let cast t (m : Msg.t) =
  let addressees = Msg.dest_pids t.services.Services.topology m in
  List.iter
    (fun q ->
      if q <> t.services.Services.self then
        t.services.Services.send ~dst:q (Data m))
    addressees;
  if Msg.addressed_to_pid t.services.Services.topology m t.services.Services.self
  then on_data t m

let on_receive t ~src w =
  match w with
  | Data m -> on_data t m
  | Stamp { id; ts } -> (
    t.clock <- max t.clock ts;
    match Msg_id.Tbl.find_opt t.pending id with
    | Some p ->
      add_stamp p src ts;
      maybe_finalize t p
    | None ->
      if not (Msg_id.Tbl.mem t.delivered id) then begin
        let prev =
          Option.value ~default:[] (Msg_id.Tbl.find_opt t.early_stamps id)
        in
        Msg_id.Tbl.replace t.early_stamps id ((src, ts) :: prev)
      end)

let create ~services ~config ~deliver =
  let conflict = config.Protocol.Config.conflict in
  let ord =
    match conflict with
    | Conflict.Commute _ -> Scan (Pending_index.create ())
    | Conflict.Total | Conflict.Keyed _ -> Classes (Hashtbl.create 16)
  in
  {
    services;
    conflict;
    deliver;
    clock = 0;
    pending = Msg_id.Tbl.create 32;
    ord;
    delivered = Msg_id.Tbl.create 32;
    early_stamps = Msg_id.Tbl.create 8;
    stamp_pool =
      Slab.Row.pool
        ~width:(Topology.n_processes services.Services.topology)
        ~default:0;
    bypassed = 0;
    ordered = 0;
  }

let pending_count t = Msg_id.Tbl.length t.pending

let stats t =
  [ ("generic.bypassed", t.bypassed); ("generic.ordered", t.ordered) ]

open Des
open Net
open Runtime

type fault = { at : Sim_time.t; pid : Topology.pid; drop : Engine.drop_spec }

let crash ?(drop = Engine.Keep_inflight) ~at pid = { at; pid; drop }

module Make (P : Amcast.Protocol.S) = struct
  type deployment = {
    engine : P.wire Engine.t;
    nodes : P.t option array;
    next_seq : int array; (* per-origin message sequence numbers *)
    casts : Run_result.cast_event Vec.t; (* in cast order *)
    deliveries : Run_result.delivery_event Vec.t; (* in occurrence order *)
  }

  let deploy ?(seed = 0) ?(latency = Latency.wan_default)
      ?(config = Amcast.Protocol.Config.default) ?(record_trace = true)
      ?(faults = []) ?nemesis topology =
    let engine = Engine.create ~seed ~latency ~record_trace ~tag:P.tag topology in
    let n = Topology.n_processes topology in
    let d =
      {
        engine;
        nodes = Array.make n None;
        next_seq = Array.make n 0;
        casts = Vec.create ();
        deliveries = Vec.create ();
      }
    in
    List.iter
      (fun pid ->
        let node =
          Engine.spawn engine pid (fun services ->
              let deliver msg =
                services.Services.record_deliver msg.Amcast.Msg.id;
                Vec.push d.deliveries
                  {
                    Run_result.pid;
                    msg;
                    at = services.Services.now ();
                    lc = services.Services.lc ();
                  }
              in
              let state = P.create ~services ~config ~deliver in
              ( state,
                {
                  Engine.on_receive =
                    (fun ~src w -> P.on_receive state ~src w);
                } ))
        in
        d.nodes.(pid) <- Some node)
      (Topology.all_pids topology);
    List.iter
      (fun { at; pid; drop } -> Engine.schedule_crash ~drop engine ~at pid)
      faults;
    Option.iter (fun plan -> Nemesis.apply plan engine) nemesis;
    d

  let engine d = d.engine
  let node d pid = Option.get d.nodes.(pid)

  let cast_at d ~at ~origin ~dest ?(payload = "m") () =
    let seq = d.next_seq.(origin) in
    d.next_seq.(origin) <- seq + 1;
    let id = Msg_id.make ~origin ~seq in
    let msg = Amcast.Msg.make ~id ~dest payload in
    Engine.at ~tag:(Scheduler.Tag.cast origin) d.engine at (fun () ->
        let services = Engine.services d.engine origin in
        services.Services.record_cast id;
        Vec.push d.casts
          {
            Run_result.msg;
            origin;
            at = services.Services.now ();
            lc = services.Services.lc ();
          };
        P.cast (Option.get d.nodes.(origin)) msg);
    id

  let schedule d (workload : Workload.t) =
    List.map
      (fun (c : Workload.cast) ->
        cast_at d ~at:c.at ~origin:c.origin ~dest:c.dest ~payload:c.payload
          ())
      workload

  let run_deployment ?until ?(max_steps = 50_000_000) d =
    Engine.run ?until ~max_steps d.engine;
    let trace = Engine.trace d.engine in
    let crashed =
      List.filter_map
        (function Trace.Crash { pid; _ } -> Some pid | _ -> None)
        (Trace.entries trace)
    in
    let network = Engine.network d.engine in
    let sched = Engine.scheduler d.engine in
    Run_result.make ~topology:(Engine.topology d.engine)
      ~casts:(Vec.to_list d.casts)
      ~deliveries:(Vec.to_list d.deliveries)
      ~crashed ~trace
      ~inter_group_msgs:(Network.sent_inter_group network)
      ~intra_group_msgs:(Network.sent_intra_group network)
      ~end_time:(Engine.now d.engine)
      ~drained:(Scheduler.pending sched = 0)
      ~events_executed:(Scheduler.executed sched) ()

  let run ?seed ?latency ?config ?record_trace ?faults ?nemesis ?until
      ?max_steps topology workload =
    let d =
      deploy ?seed ?latency ?config ?record_trace ?faults ?nemesis topology
    in
    ignore (schedule d workload);
    run_deployment ?until ?max_steps d
  end

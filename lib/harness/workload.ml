open Des
open Net

type cast = {
  at : Sim_time.t;
  origin : Topology.pid;
  dest : Topology.gid list;
  payload : string;
}

type t = cast list

let single ?(payload = "m") ~at ~origin ~dest () =
  [ { at; origin; dest; payload } ]

let broadcast_single ?(payload = "m") ~at ~origin topology =
  [ { at; origin; dest = Topology.all_groups topology; payload } ]

type dest_kind =
  | To_all_groups
  | Random_groups of int
  | Fixed_groups of Topology.gid list
  | Zipfian_groups of { kmax : int; theta : float }

(* Zipf-weighted index in [0, n): rank r has weight 1/(r+1)^theta, so low
   ranks are hot and theta tunes the skew (0 = uniform). Linear scan —
   topology-scale n only. *)
let zipf_index ~rng ~theta n =
  if n <= 1 then 0
  else begin
    let w = Array.init n (fun i -> 1.0 /. (float_of_int (i + 1) ** theta)) in
    let total = Array.fold_left ( +. ) 0.0 w in
    let x = Rng.float rng total in
    let acc = ref 0.0 in
    let idx = ref (n - 1) in
    (try
       for i = 0 to n - 1 do
         acc := !acc +. w.(i);
         if x < !acc then begin
           idx := i;
           raise Exit
         end
       done
     with Exit -> ());
    !idx
  end

let pick_dest ~rng ~topology = function
  | To_all_groups -> Topology.all_groups topology
  | Fixed_groups [] ->
    invalid_arg "Workload: Fixed_groups requires a non-empty group list"
  | Fixed_groups gs ->
    let m = Topology.n_groups topology in
    List.iter
      (fun g ->
        if g < 0 || g >= m then
          invalid_arg
            (Fmt.str
               "Workload: Fixed_groups includes group %d, outside the \
                topology's %d groups"
               g m))
      gs;
    gs
  | Random_groups k ->
    let m = Topology.n_groups topology in
    let k = max 1 (min k m) in
    let size = 1 + Rng.int rng k in
    Rng.sample_without_replacement rng size (Topology.all_groups topology)
    |> List.sort_uniq Int.compare
  | Zipfian_groups { kmax; theta } ->
    (* Placement skew: destination sets concentrate on low-ranked (hot)
       groups, like a workload with popular partitions. Distinct draws by
       rejection — deterministic under the seeded rng. *)
    let all = Array.of_list (Topology.all_groups topology) in
    let m = Array.length all in
    let kmax = max 1 (min kmax m) in
    let size = 1 + Rng.int rng kmax in
    let chosen = Hashtbl.create 4 in
    while Hashtbl.length chosen < size do
      let g = all.(zipf_index ~rng ~theta m) in
      if not (Hashtbl.mem chosen g) then Hashtbl.replace chosen g ()
    done;
    Hashtbl.fold (fun g () acc -> g :: acc) chosen []
    |> List.sort_uniq Int.compare

type conflict_spec = { rate : float; keys : int; theta : float }

let conflict_spec ?(keys = 16) ?(theta = 0.8) rate =
  { rate = Float.min 1.0 (Float.max 0.0 rate); keys = max 1 keys; theta }

let generate ~rng ~topology ~n ~dest ~arrival ?(start = Sim_time.of_ms 1)
    ?origins ?origin_zipf ?conflict () =
  let origins =
    match origins with
    | Some (_ :: _ as l) -> Array.of_list l
    | Some [] | None -> Array.of_list (Topology.all_pids topology)
  in
  let pick_origin =
    match origin_zipf with
    | None -> fun () -> Rng.pick rng origins
    | Some theta ->
      (* Hot-origin skew: a few processes produce most of the load. *)
      fun () -> origins.(zipf_index ~rng ~theta (Array.length origins))
  in
  let payload_of i =
    match conflict with
    | None -> Fmt.str "m%d" i
    | Some { rate; keys; theta } ->
      (* The Conflict.payload_key convention: "k=<key>;<rest>" payloads
         conflict per key, anything else commutes with everything. Keys
         are Zipf-ranked so skew concentrates conflicts on hot keys. *)
      if Rng.float rng 1.0 < rate then
        Fmt.str "k=key%d;m%d" (zipf_index ~rng ~theta keys) i
      else Fmt.str "m%d" i
  in
  let time = ref start in
  let burst_left = ref 0 in
  List.init n (fun i ->
      let at = !time in
      (match arrival with
      | `Every gap -> time := Sim_time.add !time gap
      | `Poisson mean ->
        let gap =
          Rng.exponential rng ~mean:(float_of_int (Sim_time.to_us mean))
        in
        time := Sim_time.add_us !time (max 1 (int_of_float gap))
      | `Bursty (mean_gap, burst_max) ->
        (* Open-loop bursty arrivals: bursts of 1..burst_max casts land at
           the same instant, with exponentially distributed gaps between
           bursts — the arrival shape that stresses batching. *)
        if !burst_left > 0 then decr burst_left
        else begin
          burst_left := Rng.int rng (max 1 burst_max);
          let gap =
            Rng.exponential rng
              ~mean:(float_of_int (Sim_time.to_us mean_gap))
          in
          time := Sim_time.add_us !time (max 1 (int_of_float gap))
        end);
      {
        at;
        origin = pick_origin ();
        dest = pick_dest ~rng ~topology dest;
        payload = payload_of i;
      })

let span t =
  List.fold_left (fun acc c -> Sim_time.max acc c.at) Sim_time.zero t

let pp ppf t =
  let pp_cast ppf c =
    Fmt.pf ppf "%a p%d->[%a] %S" Sim_time.pp c.at c.origin
      Fmt.(list ~sep:(any ",") int)
      c.dest c.payload
  in
  Fmt.(list ~sep:(any "@\n") pp_cast) ppf t

(** The observable outcome of one simulated run.

    Everything the metrics and the correctness checkers need: the cast
    events (with Lamport values), the delivery events in order of
    occurrence, per-process delivery sequences, message counters and the
    full trace. *)

type cast_event = {
  msg : Amcast.Msg.t;
  origin : Net.Topology.pid;
  at : Des.Sim_time.t;
  lc : Lclock.t;  (** Clock value at the A-XCast event. *)
}

type delivery_event = {
  pid : Net.Topology.pid;
  msg : Amcast.Msg.t;
  at : Des.Sim_time.t;
  lc : Lclock.t;  (** Clock value at the A-Deliver event. *)
}

type index = {
  correct_arr : bool array;  (** pid -> not crashed. *)
  seqs : Amcast.Msg.t array array;
      (** pid -> its delivery sequence, oldest first. *)
  pos : int Runtime.Msg_id.Tbl.t array;
      (** pid -> (id -> position of that process's first delivery of the
          message). Keyed per-pid so the index is O(deliveries) in memory
          rather than O(distinct ids * n_processes). *)
  casts_by_id : cast_event Runtime.Msg_id.Tbl.t;
      (** First cast event per id. *)
}
(** Per-run lookup structures built in one pass over the event lists.
    Everything the checkers consult repeatedly — who crashed, who delivered
    what and in which position — as O(1) arrays and hash tables instead of
    list scans. *)

type t = {
  topology : Net.Topology.t;
  casts : cast_event list;  (** In cast order. *)
  deliveries : delivery_event list;  (** In global order of occurrence. *)
  crashed : Net.Topology.pid list;
      (** Processes that crashed during the run (faulty); the rest are
          correct. *)
  trace : Runtime.Trace.t;
  inter_group_msgs : int;
  intra_group_msgs : int;
  end_time : Des.Sim_time.t;
  drained : bool;
      (** Whether the run ended because the event queue drained (the
          deployment became quiescent) rather than because the horizon was
          reached. *)
  events_executed : int;
      (** Scheduler actions executed during the run — the simulation's raw
          event count, the unit benchmarks normalise throughput by. *)
  mutable index_memo : index option;
      (** Lazily built by {!index}; construct values with {!make} (which
          seeds it with [None]) rather than a record literal. *)
}

val make :
  topology:Net.Topology.t ->
  casts:cast_event list ->
  deliveries:delivery_event list ->
  crashed:Net.Topology.pid list ->
  trace:Runtime.Trace.t ->
  inter_group_msgs:int ->
  intra_group_msgs:int ->
  end_time:Des.Sim_time.t ->
  drained:bool ->
  events_executed:int ->
  unit ->
  t

val index : t -> index
(** The memoised per-run index: built on first use, shared by every
    subsequent accessor and checker on the same run. *)

val correct : t -> Net.Topology.pid -> bool

val sequence_of : t -> Net.Topology.pid -> Amcast.Msg.t list
(** The delivery sequence of a process, oldest first. *)

val cast_of : t -> Runtime.Msg_id.t -> cast_event option
val deliveries_of : t -> Runtime.Msg_id.t -> delivery_event list

val delivered_by : t -> Runtime.Msg_id.t -> Net.Topology.pid -> bool
(** Whether the process delivered the message, in O(1) after indexing. *)

val delivered_everywhere_needed : t -> Runtime.Msg_id.t -> bool
(** True when every correct addressee delivered the message. *)

val pp_summary : Format.formatter -> t -> unit

(** Quantities the paper reports, computed from run results.

    The central one is the {e latency degree} ∆(m, R) of Section 2.3: the
    difference between the largest modified-Lamport-clock value at an
    A-Deliver(m) event and the clock value at the A-XCast(m) event. Since
    the runtime maintains the modified clocks itself, this is measured, not
    self-reported by protocols. *)

val latency_degree : Run_result.t -> Runtime.Msg_id.t -> int option
(** ∆(m, R) over the processes that delivered [m]; [None] if nobody did. *)

val latency_degrees : Run_result.t -> (Runtime.Msg_id.t * int option) list
(** One entry per cast message, in cast order. *)

val max_latency_degree : Run_result.t -> int option
(** Largest ∆ over all delivered messages of the run. *)

val min_latency_degree : Run_result.t -> int option

val delivery_latency :
  Run_result.t -> Runtime.Msg_id.t -> Des.Sim_time.t option
(** Wall-clock (virtual) time from cast to last delivery. *)

val mean_delivery_latency_ms : Run_result.t -> float option
(** Mean over delivered messages of cast-to-last-delivery, milliseconds. *)

val delivery_latencies_ms : Run_result.t -> float list
(** Per-message cast-to-last-delivery latencies in milliseconds, in cast
    order (messages never delivered are skipped). *)

val percentile : float -> float list -> float option
(** [percentile p samples] is the nearest-rank p-th percentile
    ([p] in [0, 100]) of the sample list, [None] on the empty list. *)

val delivery_latency_percentile_ms : Run_result.t -> float -> float option
(** Nearest-rank percentile of {!delivery_latencies_ms} — e.g. p50/p99
    saturation-curve points. *)

val inter_group_messages : Run_result.t -> int
val intra_group_messages : Run_result.t -> int

val messages_by_tag : Run_result.t -> (string * int) list
(** Inter-group send counts per wire-message kind, sorted by tag. *)

val last_send_time : Run_result.t -> Des.Sim_time.t option
(** Instant of the last send in the run; [None] if nothing was sent. The
    quiescence experiments check that this stabilises once casts stop. *)

val sends_after : Run_result.t -> Des.Sim_time.t -> int
(** Number of sends strictly after a given instant. *)

val delivered_count : Run_result.t -> int
(** Number of distinct messages delivered by at least one process. *)

(** Causal analysis of run traces.

    An independent implementation of the latency-degree metric: instead of
    reading the modified Lamport clocks maintained by the runtime, this
    module reconstructs Lamport's happened-before relation from the trace
    (program order per process + send/receive matching) and computes, for
    each delivery of a message, the maximum number of {e inter-group} sends
    on any causal path from the A-XCast event.

    Cross-checking the two implementations is itself a test: on a
    single-message run they must agree exactly, and in general the clock
    measurement can only exceed the path measurement (concurrent traffic
    inflates clock values but never creates causal paths). The property
    suite asserts both.

    The reconstruction matches a receive to its send by (src, dst, carried
    clock value, order of occurrence), which is unambiguous because the
    runtime logs sends and receives in global virtual-time order and the
    network never duplicates messages. *)

type t

val of_trace : Runtime.Trace.t -> t
(** Builds the happened-before DAG of a recorded run. Cost is linear in the
    trace for construction; queries run a DAG traversal. *)

val latency_degree : t -> Runtime.Msg_id.t -> int option
(** [latency_degree t id] is the causal-path latency degree of message
    [id]: the maximum over its A-Deliver events of the largest number of
    inter-group sends on any causal path from the A-XCast event. [None] if
    the message was never cast or never delivered, or if delivery is not
    causally reachable from the cast (which would indicate a protocol that
    delivers out of thin air — the checker treats that separately). *)

val causally_precedes :
  t -> Runtime.Msg_id.t -> Runtime.Msg_id.t -> bool
(** [causally_precedes t a b] is whether the A-XCast of [a] happened-before
    the A-XCast of [b]. Each query runs a full DAG traversal; for all-pairs
    questions build a {!reachability} instead. *)

type reachability = {
  r_ids : Runtime.Msg_id.t array;  (** Cast ids, in index order. *)
  r_index : (Runtime.Msg_id.t, int) Hashtbl.t;  (** Id -> index. *)
  r_words : int;  (** Words per row; 63 indices per word. *)
  r_succ : int array array;
      (** Row [a]: bit [b] set iff the A-XCast of [r_ids.(a)]
          happened-before the A-XCast of [r_ids.(b)]. *)
}
(** The happened-before relation restricted to A-XCast events, as one
    bitset row per cast. *)

val cast_reachability : t -> Runtime.Msg_id.t list -> reachability
(** [cast_reachability t ids] builds the relation over the (deduplicated)
    ids that were actually cast, with one DAG traversal per cast — O(casts
    * trace) total, versus O(casts^2 * trace) for pairwise
    {!causally_precedes} queries. *)

(** A chunked work-distribution pool over OCaml 5 domains.

    Built for the campaign/soak workload: many independent, seeded,
    CPU-bound simulations with no shared mutable state. Workers claim
    chunks of the input with an atomic counter; each result is written to
    its input's index, so [map] preserves input order and is therefore
    deterministic regardless of how domains interleave. *)

val recommended_domains : unit -> int
(** [Domain.recommended_domain_count ()] — the sensible upper bound for
    [?domains] on this machine. *)

val tabulate : ?domains:int -> int -> (int -> 'b) -> 'b array
(** [tabulate ~domains n f] is [Array.init n f], computed on [domains]
    domains with the same chunked self-scheduling and index-placement
    guarantees as {!map}. Because workers receive only an index, the
    *input* of each task can be generated inside the claiming domain —
    this is what lets sharded campaigns derive scenario [i] from a pure
    per-index RNG substream instead of materialising every input up
    front on the coordinating domain. [f] must be safe to call from any
    domain and must not share mutable state across indices.

    @raise Invalid_argument when [domains < 1]. *)

val map : ?domains:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map ~domains f items] is [Array.map f items], computed on [domains]
    domains (default {!recommended_domains}; clamped to the item count;
    [~domains:1] runs sequentially in the calling domain with no domain
    spawned). [f] must not share mutable state across items. If any
    application of [f] raises, the first exception observed is re-raised
    after all domains have been joined.

    @raise Invalid_argument when [domains < 1]. *)

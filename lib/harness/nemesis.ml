(* Declarative, deterministic fault plans (see nemesis.mli).

   A plan is pure data: the runner replays it against a deployment by
   scheduling one engine action per step, so a run under a nemesis plan
   stays a pure function of (topology, latency, seed, program, plan). The
   validation in [make] encodes the one structural invariant the harness
   depends on: every partition is eventually healed, because partitioned
   traffic is parked at [Sim_time.infinity] and a run-to-quiescence over an
   unhealed plan would simply pop those events at the end of time. *)

open Des
open Net

type action =
  | Partition of { side_a : Topology.gid list; side_b : Topology.gid list }
  | Heal_all
  | Crash of { pid : Topology.pid; drop : Runtime.Engine.drop_spec }
  | Latency_spike of {
      src_group : Topology.gid;
      dst_group : Topology.gid;
      factor : float;
      duration : Sim_time.t;
    }
  | Fd_storm of { scale : float }

type step = { at : Sim_time.t; action : action }
type t = { steps : step list }

(* The instant a step stops acting on the system: a latency spike occupies
   a window, everything else is instantaneous. *)
let step_end { at; action } =
  match action with
  | Latency_spike { duration; _ } -> Sim_time.add at duration
  | Partition _ | Heal_all | Crash _ | Fd_storm _ -> at

let make steps =
  let steps =
    List.stable_sort (fun a b -> Sim_time.compare a.at b.at) steps
  in
  let healed_after at =
    List.exists
      (fun s ->
        match s.action with
        | Heal_all -> Sim_time.( < ) at s.at
        | _ -> false)
      steps
  in
  List.iter
    (fun s ->
      match s.action with
      | Partition _ when not (healed_after s.at) ->
        invalid_arg
          "Nemesis.make: a Partition step has no Heal_all strictly after \
           it; the plan would park cross-cut traffic forever"
      | _ -> ())
    steps;
  { steps }

let steps t = t.steps
let is_empty t = t.steps = []

let liveness_from t =
  List.fold_left (fun acc s -> Sim_time.max acc (step_end s)) Sim_time.zero
    t.steps

let apply t eng =
  let net = Runtime.Engine.network eng in
  List.iter
    (fun { at; action } ->
      match action with
      | Partition { side_a; side_b } ->
        Runtime.Engine.at eng at (fun () ->
            Network.partition_groups net side_a side_b)
      | Heal_all -> Runtime.Engine.at eng at (fun () -> Network.heal_all net)
      | Crash { pid; drop } -> Runtime.Engine.schedule_crash ~drop eng ~at pid
      | Latency_spike { src_group; dst_group; factor; duration } ->
        Runtime.Engine.at eng at (fun () ->
            Network.latency_scale net ~src_group ~dst_group factor);
        Runtime.Engine.at eng (Sim_time.add at duration) (fun () ->
            Network.latency_scale net ~src_group ~dst_group 1.0)
      | Fd_storm { scale } ->
        Runtime.Engine.at eng at (fun () ->
            Runtime.Engine.perturb_fd eng scale))
    t.steps

(* Seeded plan generation. All draws come from the caller's [rng] in a
   fixed order, so the plan is a pure function of the rng state and the
   topology shape. Times are scaled to [horizon] so small smoke plans and
   long soak plans share one recipe. *)
let generate ~rng ~topology ?(with_crashes = true) ?(with_storms = true)
    ?overlay ?(horizon = Sim_time.of_ms 400) () =
  (match overlay with
  | Some ov -> Net.Overlay.check_topology ov topology
  | None -> ());
  let h = Sim_time.to_us horizon in
  let h = max h 10_000 in
  let groups = Topology.all_groups topology in
  let m = List.length groups in
  let steps = ref [] in
  let push at action = steps := { at = Sim_time.of_us at; action } :: !steps in
  (* Partition/heal windows: only meaningful across groups. Each window
     cuts a random non-trivial group split, then heals everything. Over
     an overlay with bridges the splits follow its cut edges — the
     partitions a real hub/tree deployment actually suffers (severing a
     spoke severs everything behind it); the window count scales with
     how many bridges there are to exercise. Bridgeless overlays (rings,
     cliques) keep the random group splits. *)
  if m >= 2 then begin
    let cuts = match overlay with Some ov -> Net.Overlay.cut_edges ov | None -> [] in
    let windows =
      1 + Rng.int rng (match cuts with [] -> 2 | c -> max 2 (List.length c))
    in
    for _ = 1 to windows do
      (match cuts with
      | [] ->
        let k = 1 + Rng.int rng (m - 1) in
        let side_a = Rng.sample_without_replacement rng k groups in
        let side_b =
          List.filter (fun g -> not (List.mem g side_a)) groups
        in
        let start = 1_000 + Rng.int rng (h * 3 / 4) in
        let len = (h / 20) + Rng.int rng (h * 3 / 8) in
        push start (Partition { side_a; side_b });
        push (start + len) Heal_all
      | cuts ->
        let ov = Option.get overlay in
        let cut = List.nth cuts (Rng.int rng (List.length cuts)) in
        let side_a, side_b = Net.Overlay.side_of_cut ov ~cut in
        let start = 1_000 + Rng.int rng (h * 3 / 4) in
        let len = (h / 20) + Rng.int rng (h * 3 / 8) in
        push start (Partition { side_a; side_b });
        push (start + len) Heal_all)
    done
  end;
  (* Latency spikes: factor in [2, 8), window sized to the horizon. *)
  let spikes = Rng.int rng 3 in
  for _ = 1 to spikes do
    let src_group = Rng.int rng m and dst_group = Rng.int rng m in
    let factor = 2.0 +. Rng.float rng 6.0 in
    let start = 1_000 + Rng.int rng (h * 3 / 4) in
    let duration = Sim_time.of_us ((h / 20) + Rng.int rng (h / 4)) in
    push start (Latency_spike { src_group; dst_group; factor; duration })
  done;
  (* FD storm: shrink timeouts hard enough to force false suspicions.
     Harmless (a no-op) under the oracle detector. *)
  if with_storms && Rng.bool rng then begin
    let scale = 0.05 +. Rng.float rng 0.15 in
    let start = 1_000 + Rng.int rng (h * 3 / 4) in
    push start (Fd_storm { scale })
  end;
  (* Crashes: at most a minority of each group, so per-group consensus
     keeps a correct majority and the run stays live after the heal. *)
  if with_crashes then
    List.iter
      (fun g ->
        let members = Topology.members topology g in
        let max_crash = (List.length members - 1) / 2 in
        if max_crash > 0 then begin
          let n = Rng.int rng (max_crash + 1) in
          let victims = Rng.sample_without_replacement rng n members in
          List.iter
            (fun pid ->
              let drop =
                match Rng.int rng 3 with
                | 0 -> Runtime.Engine.Keep_inflight
                | 1 -> Runtime.Engine.Lose_all_inflight
                | _ -> Runtime.Engine.Lose_each_with_probability 0.5
              in
              let at = 1_000 + Rng.int rng (h * 3 / 4) in
              push at (Crash { pid; drop }))
            victims
        end)
      groups;
  (* Terminal heal, strictly after every other step's end: the instant
     from which the run owes liveness again. *)
  let provisional = make !steps in
  let last = Sim_time.to_us (liveness_from provisional) in
  push (last + 1_000) Heal_all;
  make !steps

let pp_action ppf = function
  | Partition { side_a; side_b } ->
    Fmt.pf ppf "partition %a | %a"
      Fmt.(list ~sep:comma int)
      side_a
      Fmt.(list ~sep:comma int)
      side_b
  | Heal_all -> Fmt.string ppf "heal-all"
  | Crash { pid; drop } ->
    let drop_s =
      match drop with
      | Runtime.Engine.Keep_inflight -> "keep-inflight"
      | Runtime.Engine.Lose_all_inflight -> "lose-all-inflight"
      | Runtime.Engine.Lose_to _ -> "lose-to"
      | Runtime.Engine.Lose_each_with_probability p ->
        Printf.sprintf "lose-each-p=%.2f" p
    in
    Fmt.pf ppf "crash p%d (%s)" pid drop_s
  | Latency_spike { src_group; dst_group; factor; duration } ->
    Fmt.pf ppf "spike g%d->g%d x%.1f for %a" src_group dst_group factor
      Sim_time.pp duration
  | Fd_storm { scale } -> Fmt.pf ppf "fd-storm x%.2f" scale

let pp ppf t =
  Fmt.pf ppf "@[<v>%a@]"
    Fmt.(
      list ~sep:cut (fun ppf s ->
          pf ppf "%a: %a" Sim_time.pp s.at pp_action s.action))
    t.steps

(** Randomised soak campaigns.

    Runs many independently-seeded scenarios — random topology, workload,
    latency model, crash schedule — through one protocol, checks every run
    with {!Checker}, and aggregates. This is the library's "chaos testing"
    entry point: the test suite runs small campaigns, and
    [bin/amcast_soak] runs large ones from the command line.

    Scenarios are independent (each owns its seed), so a campaign can be
    fanned out across domains with {!run_parallel}; the aggregate summary
    is bit-identical to the sequential {!run} for any domain count. *)

type scenario = {
  seed : int;
  groups : int;
  per_group : int;
  n_msgs : int;
  broadcast_only : bool;  (** Force [dest = all groups]. *)
  with_crashes : bool;
      (** Crash up to a minority of each group at random instants, with
          random in-flight-loss patterns. *)
  jitter : bool;  (** WAN jitter vs crisp deterministic latencies. *)
  nemesis : bool;
      (** Replay a seeded {!Nemesis} plan against the run: partition/heal
          windows, latency spikes, FD storms, and — when [with_crashes] —
          the crash schedule (which then {e replaces} the [faults_for]
          schedule, keeping the crashed set a minority of each group).
          Liveness checks are gated on the plan's final heal
          ({!Checker.check_all}'s [liveness_from]); safety checks stay
          unconditional. *)
}

type outcome = {
  scenario : scenario;
  violations : string list;
  delivered : int;
  max_degree : int option;
  drained : bool;
  steps : int;  (** Simulation events executed by this run. *)
  retained : (string * int) list;
      (** End-of-run {!Amcast.Protocol.S.stats} counters, merged over all
          processes and sorted by label: counts sum, [*_max] labels
          (high-water marks, e.g. the throughput lane's
          [pipeline_depth_max]) take the maximum. *)
}

type summary = {
  runs : int;
  clean : int;
  total_violations : int;
  failures : outcome list;  (** Outcomes with at least one violation. *)
  delivered_total : int;
  total_steps : int;  (** Simulation events executed across all runs. *)
  retained_total : (string * int) list;
      (** Label-wise merge of every outcome's [retained] counters (sums,
          maxima for [*_max] labels) — how much protocol state survived
          to the end of the runs (a growth check for the fast-lane GC),
          plus the throughput-lane batching/pipelining counters. *)
}

val random_scenario :
  Des.Rng.t ->
  ?broadcast_only:bool ->
  ?with_crashes:bool ->
  ?with_nemesis:bool ->
  unit ->
  scenario

val scenario_at :
  ?broadcast_only:bool ->
  ?with_crashes:bool ->
  ?with_nemesis:bool ->
  seed:int ->
  int ->
  scenario
(** [scenario_at ~seed i] is scenario [i] of campaign [seed] — a pure
    function of [(seed, i)] via {!Des.Rng.substream}, so a sharded worker
    can derive its scenarios locally and still agree with every other
    driver on what campaign [seed] contains. *)

val scenarios :
  ?broadcast_only:bool ->
  ?with_crashes:bool ->
  ?with_nemesis:bool ->
  seed:int ->
  runs:int ->
  unit ->
  scenario list
(** The deterministic scenario list campaign [seed] expands to — the one
    {!run}, {!run_parallel} and {!run_sharded} all execute:
    [List.init runs (scenario_at ~seed)]. *)

val run_one :
  (module Amcast.Protocol.S) ->
  ?config:Amcast.Protocol.Config.t ->
  ?conflict:Workload.conflict_spec ->
  ?overlay_kind:Net.Overlay.kind ->
  ?expect_genuine:bool ->
  ?check_causal:bool ->
  ?check_quiescence:bool ->
  scenario ->
  outcome
(** [conflict] turns the generated workload's payloads into the
    keyed/commuting mix of {!Workload.conflict_spec} (omitted = the plain
    payloads, bit-identical to older campaigns). Independently, when
    [config] carries a non-[Total] conflict relation the ordering check
    becomes {!Checker.conflict_order} under that relation — what a
    generic-multicast deployment owes — instead of the total-order prefix
    check.

    [overlay_kind] runs the scenario over that {!Net.Overlay} geometry
    instead of the clique: the group count is bumped to the geometry's
    minimum if needed (a ring needs three groups), the latency model is
    derived from the overlay's routed path delays
    ({!Net.Overlay.to_latency}), the protocol config carries the overlay
    (FlexCast routes along it; clique-model protocols ignore it), nemesis
    partitions follow the overlay's cut edges, and the genuineness check
    becomes overlay-aware. Omitted, everything is bit-identical to older
    campaigns. *)

val run_scenarios :
  (module Amcast.Protocol.S) ->
  ?config:Amcast.Protocol.Config.t ->
  ?conflict:Workload.conflict_spec ->
  ?overlay_kind:Net.Overlay.kind ->
  ?expect_genuine:bool ->
  ?check_causal:bool ->
  ?check_quiescence:bool ->
  scenario list ->
  outcome list
(** Runs a fixed scenario list sequentially, outcomes in scenario order. *)

val run_scenarios_parallel :
  (module Amcast.Protocol.S) ->
  ?config:Amcast.Protocol.Config.t ->
  ?conflict:Workload.conflict_spec ->
  ?overlay_kind:Net.Overlay.kind ->
  ?expect_genuine:bool ->
  ?check_causal:bool ->
  ?check_quiescence:bool ->
  ?domains:int ->
  scenario list ->
  outcome list
(** Same outcomes as {!run_scenarios} (scenario order, identical values),
    computed on [domains] domains via {!Pool.map}. *)

val summarize : outcome list -> summary

val run :
  (module Amcast.Protocol.S) ->
  ?config:Amcast.Protocol.Config.t ->
  ?conflict:Workload.conflict_spec ->
  ?overlay_kind:Net.Overlay.kind ->
  ?expect_genuine:bool ->
  ?check_causal:bool ->
  ?check_quiescence:bool ->
  ?broadcast_only:bool ->
  ?with_crashes:bool ->
  ?with_nemesis:bool ->
  seed:int ->
  runs:int ->
  unit ->
  summary

val run_parallel :
  (module Amcast.Protocol.S) ->
  ?config:Amcast.Protocol.Config.t ->
  ?conflict:Workload.conflict_spec ->
  ?overlay_kind:Net.Overlay.kind ->
  ?expect_genuine:bool ->
  ?check_causal:bool ->
  ?check_quiescence:bool ->
  ?broadcast_only:bool ->
  ?with_crashes:bool ->
  ?with_nemesis:bool ->
  ?domains:int ->
  seed:int ->
  runs:int ->
  unit ->
  summary
(** [run_parallel ~domains proto ... ~seed ~runs ()] fans the campaign's
    scenarios out across [domains] domains (default
    {!Pool.recommended_domains}) and produces a summary bit-identical to
    [run proto ... ~seed ~runs ()]. *)

val run_sharded :
  (module Amcast.Protocol.S) ->
  ?config:Amcast.Protocol.Config.t ->
  ?conflict:Workload.conflict_spec ->
  ?overlay_kind:Net.Overlay.kind ->
  ?expect_genuine:bool ->
  ?check_causal:bool ->
  ?check_quiescence:bool ->
  ?broadcast_only:bool ->
  ?with_crashes:bool ->
  ?with_nemesis:bool ->
  ?domains:int ->
  seed:int ->
  runs:int ->
  unit ->
  summary
(** Like {!run_parallel}, but nothing is materialised up front: the
    domain that claims run [i] derives scenario [i] locally from its
    {!Des.Rng.substream} ({!scenario_at}) and runs it, so the campaign
    scales to run counts where serially pre-generating the scenario list
    would itself be a bottleneck. The summary is bit-identical to {!run}
    and {!run_parallel} at every domain count. *)

val pp_summary : Format.formatter -> summary -> unit

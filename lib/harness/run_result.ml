open Net

type cast_event = {
  msg : Amcast.Msg.t;
  origin : Topology.pid;
  at : Des.Sim_time.t;
  lc : Lclock.t;
}

type delivery_event = {
  pid : Topology.pid;
  msg : Amcast.Msg.t;
  at : Des.Sim_time.t;
  lc : Lclock.t;
}

type index = {
  correct_arr : bool array; (* pid -> not crashed *)
  seqs : Amcast.Msg.t array array; (* pid -> delivery sequence, oldest first *)
  pos : int Runtime.Msg_id.Tbl.t array;
      (* pid -> (id -> position of pid's first delivery of id). Keyed
         per-pid rather than per-id so the index costs O(deliveries),
         not O(distinct ids * n) — the latter is ~1 GB at the scale
         cells (100k casts * 1000 processes). *)
  casts_by_id : cast_event Runtime.Msg_id.Tbl.t; (* first cast wins *)
}

type t = {
  topology : Topology.t;
  casts : cast_event list;
  deliveries : delivery_event list;
  crashed : Topology.pid list;
  trace : Runtime.Trace.t;
  inter_group_msgs : int;
  intra_group_msgs : int;
  end_time : Des.Sim_time.t;
  drained : bool;
  events_executed : int;
  mutable index_memo : index option;
}

let make ~topology ~casts ~deliveries ~crashed ~trace ~inter_group_msgs
    ~intra_group_msgs ~end_time ~drained ~events_executed () =
  {
    topology;
    casts;
    deliveries;
    crashed;
    trace;
    inter_group_msgs;
    intra_group_msgs;
    end_time;
    drained;
    events_executed;
    index_memo = None;
  }

(* One pass over casts + deliveries builds every per-run lookup the
   checkers need; [index] memoises it so the whole checker suite shares a
   single construction. *)
let build_index t =
  let n = Topology.n_processes t.topology in
  let correct_arr = Array.make n true in
  List.iter
    (fun pid -> if pid >= 0 && pid < n then correct_arr.(pid) <- false)
    t.crashed;
  let casts_by_id = Runtime.Msg_id.Tbl.create 64 in
  List.iter
    (fun (c : cast_event) ->
      let id = c.msg.Amcast.Msg.id in
      if not (Runtime.Msg_id.Tbl.mem casts_by_id id) then
        Runtime.Msg_id.Tbl.replace casts_by_id id c)
    t.casts;
  let counts = Array.make n 0 in
  List.iter (fun (d : delivery_event) -> counts.(d.pid) <- counts.(d.pid) + 1)
    t.deliveries;
  let seqs =
    Array.init n (fun pid ->
        Array.make counts.(pid)
          (Amcast.Msg.make
             ~id:(Runtime.Msg_id.make ~origin:0 ~seq:0)
             ~dest:[ 0 ] ""))
  in
  let fill = Array.make n 0 in
  let pos =
    Array.init n (fun pid ->
        Runtime.Msg_id.Tbl.create (max 16 counts.(pid)))
  in
  List.iter
    (fun (d : delivery_event) ->
      let id = d.msg.Amcast.Msg.id in
      let i = fill.(d.pid) in
      seqs.(d.pid).(i) <- d.msg;
      fill.(d.pid) <- i + 1;
      if not (Runtime.Msg_id.Tbl.mem pos.(d.pid) id) then
        Runtime.Msg_id.Tbl.replace pos.(d.pid) id i)
    t.deliveries;
  { correct_arr; seqs; pos; casts_by_id }

let index t =
  match t.index_memo with
  | Some idx -> idx
  | None ->
    let idx = build_index t in
    t.index_memo <- Some idx;
    idx

let correct t pid = (index t).correct_arr.(pid)

let sequence_of t pid = Array.to_list (index t).seqs.(pid)

let cast_of t id = Runtime.Msg_id.Tbl.find_opt (index t).casts_by_id id

let deliveries_of t id =
  List.filter
    (fun (d : delivery_event) ->
      Runtime.Msg_id.equal d.msg.Amcast.Msg.id id)
    t.deliveries

let delivered_by t id pid = Runtime.Msg_id.Tbl.mem (index t).pos.(pid) id

let delivered_everywhere_needed t id =
  let idx = index t in
  match Runtime.Msg_id.Tbl.find_opt idx.casts_by_id id with
  | None -> false
  | Some c ->
    let addressees = Amcast.Msg.dest_pids t.topology c.msg in
    List.for_all
      (fun p -> (not idx.correct_arr.(p)) || delivered_by t id p)
      addressees

let pp_summary ppf t =
  Fmt.pf ppf
    "@[<v>casts: %d@ deliveries: %d@ crashed: [%a]@ inter-group msgs: %d@ \
     intra-group msgs: %d@ end: %a (%s)@]"
    (List.length t.casts)
    (List.length t.deliveries)
    Fmt.(list ~sep:(any ",") int)
    t.crashed t.inter_group_msgs t.intra_group_msgs Des.Sim_time.pp
    t.end_time
    (if t.drained then "quiescent" else "horizon reached")

open Net

type cast_event = {
  msg : Amcast.Msg.t;
  origin : Topology.pid;
  at : Des.Sim_time.t;
  lc : Lclock.t;
}

type delivery_event = {
  pid : Topology.pid;
  msg : Amcast.Msg.t;
  at : Des.Sim_time.t;
  lc : Lclock.t;
}

type t = {
  topology : Topology.t;
  casts : cast_event list;
  deliveries : delivery_event list;
  crashed : Topology.pid list;
  trace : Runtime.Trace.t;
  inter_group_msgs : int;
  intra_group_msgs : int;
  end_time : Des.Sim_time.t;
  drained : bool;
  events_executed : int;
}

let correct t pid = not (List.mem pid t.crashed)

let sequence_of t pid =
  List.filter_map
    (fun d -> if d.pid = pid then Some d.msg else None)
    t.deliveries

let cast_of t id =
  List.find_opt
    (fun (c : cast_event) -> Runtime.Msg_id.equal c.msg.Amcast.Msg.id id)
    t.casts

let deliveries_of t id =
  List.filter
    (fun (d : delivery_event) ->
      Runtime.Msg_id.equal d.msg.Amcast.Msg.id id)
    t.deliveries

let delivered_everywhere_needed t id =
  match cast_of t id with
  | None -> false
  | Some c ->
    let addressees = Amcast.Msg.dest_pids t.topology c.msg in
    List.for_all
      (fun p ->
        (not (correct t p))
        || List.exists (fun (d : delivery_event) -> d.pid = p)
             (deliveries_of t id))
      addressees

let pp_summary ppf t =
  Fmt.pf ppf
    "@[<v>casts: %d@ deliveries: %d@ crashed: [%a]@ inter-group msgs: %d@ \
     intra-group msgs: %d@ end: %a (%s)@]"
    (List.length t.casts)
    (List.length t.deliveries)
    Fmt.(list ~sep:(any ",") int)
    t.crashed t.inter_group_msgs t.intra_group_msgs Des.Sim_time.pp
    t.end_time
    (if t.drained then "quiescent" else "horizon reached")

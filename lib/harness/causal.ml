open Runtime

(* Event nodes are trace indices; the trace is chronological, so all edges
   point forward and a single left-to-right pass computes longest paths. *)

type node_kind =
  | Send of { env : int; inter : bool }
  | Receive of { env : int; dst : int }
  | Cast of Msg_id.t
  | Deliver of Msg_id.t
  | Other

type t = {
  kinds : node_kind array;
  (* program-order predecessor of each node (same process), -1 if first *)
  prev_on_pid : int array;
  (* for a Receive node, the index of the matching Send. A broadcast
     fan-out shares one envelope across its destinations, so the key is
     (env, dst), which is unique per delivery. *)
  send_of_env : (int * int, int) Hashtbl.t;
  casts : (Msg_id.t, int) Hashtbl.t;
  delivers : (Msg_id.t, int list) Hashtbl.t;
}

let pid_of_entry = function
  | Trace.Send { src; _ } -> Some src
  | Trace.Receive { dst; _ } -> Some dst
  | Trace.Cast { pid; _ } -> Some pid
  | Trace.Deliver { pid; _ } -> Some pid
  | Trace.Crash { pid; _ } -> Some pid
  | Trace.Note { pid; _ } -> Some pid

let of_trace trace =
  let entries = Array.of_list (Trace.entries trace) in
  let n = Array.length entries in
  let kinds = Array.make n Other in
  let prev_on_pid = Array.make n (-1) in
  let send_of_env = Hashtbl.create (max 16 n) in
  let casts = Hashtbl.create 16 in
  let delivers = Hashtbl.create 16 in
  let last_of_pid = Hashtbl.create 16 in
  Array.iteri
    (fun i entry ->
      (match pid_of_entry entry with
      | Some pid ->
        (match Hashtbl.find_opt last_of_pid pid with
        | Some j -> prev_on_pid.(i) <- j
        | None -> ());
        Hashtbl.replace last_of_pid pid i
      | None -> ());
      match entry with
      | Trace.Send { env; dst; inter_group; _ } ->
        kinds.(i) <- Send { env; inter = inter_group };
        Hashtbl.replace send_of_env (env, dst) i
      | Trace.Receive { env; dst; _ } -> kinds.(i) <- Receive { env; dst }
      | Trace.Cast { id; _ } ->
        kinds.(i) <- Cast id;
        if not (Hashtbl.mem casts id) then Hashtbl.replace casts id i
      | Trace.Deliver { id; _ } ->
        kinds.(i) <- Deliver id;
        Hashtbl.replace delivers id
          (i :: Option.value ~default:[] (Hashtbl.find_opt delivers id))
      | Trace.Crash _ | Trace.Note _ -> ())
    entries;
  { kinds; prev_on_pid; send_of_env; casts; delivers }

(* Longest inter-group-hop distance from [root] to every node; [None] for
   causally unreachable nodes. *)
let distances t root =
  let n = Array.length t.kinds in
  let dist = Array.make n None in
  dist.(root) <- Some 0;
  let relax target candidate =
    match (dist.(target), candidate) with
    | _, None -> ()
    | None, Some d -> dist.(target) <- Some d
    | Some cur, Some d -> if d > cur then dist.(target) <- Some d
  in
  for i = 0 to n - 1 do
    (* program-order edge from the previous event of the same process *)
    let p = t.prev_on_pid.(i) in
    if p >= 0 then relax i dist.(p);
    (* message edge into a receive, weighted by the send's group crossing *)
    match t.kinds.(i) with
    | Receive { env; dst } -> (
      match Hashtbl.find_opt t.send_of_env (env, dst) with
      | Some s ->
        relax i
          (match (dist.(s), t.kinds.(s)) with
          | Some d, Send { inter; _ } -> Some (if inter then d + 1 else d)
          | _ -> None)
      | None -> ())
    | Send _ | Cast _ | Deliver _ | Other -> ()
  done;
  dist

let latency_degree t id =
  match Hashtbl.find_opt t.casts id with
  | None -> None
  | Some root -> (
    let dist = distances t root in
    match Hashtbl.find_opt t.delivers id with
    | None | Some [] -> None
    | Some ds ->
      List.fold_left
        (fun acc i ->
          match (acc, dist.(i)) with
          | None, d -> d
          | Some a, Some d -> Some (max a d)
          | Some a, None -> Some a)
        None ds)

(* All-pairs cast reachability as bitset rows: one [distances] pass per
   cast root instead of one per ordered pair, so building the whole
   relation costs O(casts * trace) rather than O(casts^2 * trace). Rows
   pack 63 cast indices per word, which lets the causal checker intersect
   "everything this cast precedes" with "everything delivered so far" a
   word at a time. *)

type reachability = {
  r_ids : Msg_id.t array;
  r_index : (Msg_id.t, int) Hashtbl.t;
  r_words : int;
  r_succ : int array array;
}

let cast_reachability t ids =
  let dedup = Hashtbl.create 16 in
  let nodes = ref [] in
  List.iter
    (fun id ->
      if not (Hashtbl.mem dedup id) then begin
        Hashtbl.replace dedup id ();
        match Hashtbl.find_opt t.casts id with
        | Some node -> nodes := (id, node) :: !nodes
        | None -> ()
      end)
    ids;
  let pairs = Array.of_list (List.rev !nodes) in
  let n = Array.length pairs in
  let r_ids = Array.map fst pairs in
  let r_index = Hashtbl.create (max 16 n) in
  Array.iteri (fun i id -> Hashtbl.replace r_index id i) r_ids;
  let r_words = (n + 62) / 63 in
  let r_succ = Array.init n (fun _ -> Array.make r_words 0) in
  for i = 0 to n - 1 do
    let _, root = pairs.(i) in
    let dist = distances t root in
    let row = r_succ.(i) in
    for j = 0 to n - 1 do
      if j <> i && dist.(snd pairs.(j)) <> None then
        row.(j / 63) <- row.(j / 63) lor (1 lsl (j mod 63))
    done
  done;
  { r_ids; r_index; r_words; r_succ }

let causally_precedes t a b =
  match (Hashtbl.find_opt t.casts a, Hashtbl.find_opt t.casts b) with
  | Some ra, Some rb ->
    let dist = distances t ra in
    dist.(rb) <> None
  | _ -> false

let recommended_domains () = Domain.recommended_domain_count ()

(* Chunked self-scheduling: workers repeatedly claim [chunk] consecutive
   indices with one fetch-and-add, so contention on the shared counter is
   O(items / chunk) rather than O(items), while chunks stay small enough
   that an unlucky worker cannot end up holding a long tail. Results land
   at their input index, so the output order is the input order no matter
   how the chunks interleave — determinism costs nothing here. *)
let generic ~who ?domains n f =
  let domains =
    match domains with
    | Some d ->
      if d < 1 then invalid_arg (who ^ ": domains must be >= 1");
      d
    | None -> recommended_domains ()
  in
  let domains = min domains (max 1 n) in
  if n = 0 then [||]
  else if domains = 1 then Array.init n f
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let first_exn = Atomic.make None in
    let chunk = max 1 (n / (domains * 4)) in
    let worker () =
      try
        let continue = ref true in
        while !continue do
          let start = Atomic.fetch_and_add next chunk in
          if start >= n then continue := false
          else
            for i = start to min n (start + chunk) - 1 do
              results.(i) <- Some (f i)
            done
        done
      with e ->
        (* Keep the first failure; let every worker drain so joins return. *)
        ignore (Atomic.compare_and_set first_exn None (Some e));
        Atomic.set next n
    in
    let spawned = Array.init (domains - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join spawned;
    match Atomic.get first_exn with
    | Some e -> raise e
    | None ->
      Array.map
        (function
          | Some v -> v
          | None -> assert false (* every index was claimed exactly once *))
        results
  end

let tabulate ?domains n f = generic ~who:"Pool.tabulate" ?domains n f

let map ?domains f items =
  generic ~who:"Pool.map" ?domains (Array.length items) (fun i ->
      f items.(i))

(** Deploys a protocol on a simulated WAN and runs workloads against it.

    [Runner.Make (P)] instantiates one engine with [P]'s wire type, spawns
    one protocol instance per process, and wraps the protocol's [cast] and
    [deliver] with the Lamport-clock trace events, so every protocol is
    measured by exactly the same instrumentation.

    Two usage levels:
    - {!Make.run} — one-shot: deploy, schedule a workload and faults, run
      to quiescence (or a horizon), return the {!Run_result.t};
    - {!Make.deploy} + the deployment accessors — for experiments that need
      to interleave casts with manual control (link holds, mid-run casts,
      warm-up phases), e.g. the Theorem 5.1/5.2 runs. *)

type fault = {
  at : Des.Sim_time.t;
  pid : Net.Topology.pid;
  drop : Runtime.Engine.drop_spec;
}

val crash :
  ?drop:Runtime.Engine.drop_spec ->
  at:Des.Sim_time.t ->
  Net.Topology.pid ->
  fault
(** Convenience constructor; [drop] defaults to [Keep_inflight]. *)

module Make (P : Amcast.Protocol.S) : sig
  type deployment

  val deploy :
    ?seed:int ->
    ?latency:Net.Latency.t ->
    ?config:Amcast.Protocol.Config.t ->
    ?record_trace:bool ->
    ?faults:fault list ->
    ?nemesis:Nemesis.t ->
    Net.Topology.t ->
    deployment
  (** Creates the engine and spawns every process. [nemesis] (default
      none) is a fault plan replayed against the deployment
      ({!Nemesis.apply}); check the resulting run with
      [Checker.check_all ~liveness_from:(Nemesis.liveness_from plan)]. *)

  val engine : deployment -> P.wire Runtime.Engine.t
  val node : deployment -> Net.Topology.pid -> P.t

  val cast_at :
    deployment ->
    at:Des.Sim_time.t ->
    origin:Net.Topology.pid ->
    dest:Net.Topology.gid list ->
    ?payload:string ->
    unit ->
    Runtime.Msg_id.t
  (** Schedules an A-XCast; returns the id the message will carry. *)

  val schedule : deployment -> Workload.t -> Runtime.Msg_id.t list
  (** Schedules every cast of a workload; returns their ids in order. *)

  val run_deployment :
    ?until:Des.Sim_time.t -> ?max_steps:int -> deployment -> Run_result.t
  (** Runs the simulation and snapshots the observable outcome. Can be
      called again after scheduling more casts; counters are cumulative.
      [max_steps] defaults to 50M as a runaway guard: a deployment whose
      liveness assumptions are violated (e.g. no correct majority in a
      group) retries forever, and the guard turns that into a failure
      instead of a hang. *)

  val run :
    ?seed:int ->
    ?latency:Net.Latency.t ->
    ?config:Amcast.Protocol.Config.t ->
    ?record_trace:bool ->
    ?faults:fault list ->
    ?nemesis:Nemesis.t ->
    ?until:Des.Sim_time.t ->
    ?max_steps:int ->
    Net.Topology.t ->
    Workload.t ->
    Run_result.t
  (** [run topology workload] = deploy, schedule, run to quiescence. *)
end

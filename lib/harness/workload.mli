(** Workloads: timed sequences of A-XCasts.

    A workload is what an experiment injects into a deployment: who casts,
    when, and to which groups. Message ids are assigned by the runner
    (per-origin sequence numbers), so workloads stay declarative. *)

type cast = {
  at : Des.Sim_time.t;
  origin : Net.Topology.pid;
  dest : Net.Topology.gid list;
  payload : string;
}

type t = cast list
(** Sorted or not — the runner schedules each cast at its own instant. *)

val single :
  ?payload:string ->
  at:Des.Sim_time.t ->
  origin:Net.Topology.pid ->
  dest:Net.Topology.gid list ->
  unit ->
  t
(** One cast. *)

val broadcast_single :
  ?payload:string ->
  at:Des.Sim_time.t ->
  origin:Net.Topology.pid ->
  Net.Topology.t ->
  t
(** One cast addressed to every group. *)

(** Destination-set shapes for generated workloads. *)
type dest_kind =
  | To_all_groups  (** Broadcast. *)
  | Random_groups of int
      (** A uniformly random non-empty subset of at most [k] groups. *)
  | Fixed_groups of Net.Topology.gid list
      (** Every cast goes to exactly these groups. {!generate} raises
          [Invalid_argument] if the list is empty or names a group outside
          the topology — destination sets must stay inside the deployment
          whatever overlay it runs on. *)
  | Zipfian_groups of { kmax : int; theta : float }
      (** Placement skew: a non-empty subset of at most [kmax] groups,
          drawn (distinct) with Zipf([theta]) popularity over group rank —
          low-numbered groups are hot. [theta = 0] degenerates to uniform;
          [theta ~ 1] is the classic hot-partition shape. *)

type conflict_spec = { rate : float; keys : int; theta : float }
(** The conflict knob for generic-multicast workloads: each cast is a
    keyed (conflicting) command with probability [rate], in which case its
    key is drawn Zipf([theta]) over [keys] ranked keys (hot keys
    concentrate conflicts); otherwise it is a commuting command. Keyed
    casts get payloads of the shape ["k=<key>;m<i>"] — exactly what
    {!Amcast.Conflict.payload_key} parses — so the generated workload and
    the deployment's conflict relation agree by construction. [rate = 1]
    with [keys = 1] makes every pair conflict: the total-order limit. *)

val conflict_spec : ?keys:int -> ?theta:float -> float -> conflict_spec
(** [conflict_spec rate] with [rate] clamped to [0, 1]; defaults
    [keys = 16], [theta = 0.8]. *)

val generate :
  rng:Des.Rng.t ->
  topology:Net.Topology.t ->
  n:int ->
  dest:dest_kind ->
  arrival:
    [ `Every of Des.Sim_time.t
    | `Poisson of Des.Sim_time.t
    | `Bursty of Des.Sim_time.t * int ] ->
  ?start:Des.Sim_time.t ->
  ?origins:Net.Topology.pid list ->
  ?origin_zipf:float ->
  ?conflict:conflict_spec ->
  unit ->
  t
(** [n] casts from random origins (drawn from [origins], default: all
    processes), starting at [start] (default 1ms). [`Every gap] spaces
    casts evenly; [`Poisson mean] draws exponentially distributed gaps;
    [`Bursty (mean_gap, burst_max)] is the open-loop saturation shape —
    bursts of 1..[burst_max] simultaneous casts separated by exponential
    gaps of the given mean. [origin_zipf] skews origin choice with
    Zipf(theta) popularity over the origins list's order (hot producers);
    omitted = uniform. [conflict] turns payloads into the keyed/commuting
    mix described at {!conflict_spec}; omitted = the plain ["m<i>"]
    payloads (no rng draws, bit-identical to older workloads). *)

val span : t -> Des.Sim_time.t
(** Instant of the last cast ({!Des.Sim_time.zero} for the empty
    workload). *)

val pp : Format.formatter -> t -> unit

(** A minimal growable array.

    [Runner] appends one record per cast and per delivery on the
    simulation's hot path; a vector keeps that to an amortised O(1) array
    write instead of a cons per event plus a final [List.rev]. (OCaml 5.2's
    [Dynarray] would do, but this repo targets 5.1.) *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val push : 'a t -> 'a -> unit

val get : 'a t -> int -> 'a
(** @raise Invalid_argument when out of bounds. *)

val to_list : 'a t -> 'a list
(** Elements in push order. *)

val iter : ('a -> unit) -> 'a t -> unit

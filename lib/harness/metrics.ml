open Runtime

let latency_degree (r : Run_result.t) id =
  match Run_result.cast_of r id with
  | None -> None
  | Some c ->
    let lcs =
      List.map
        (fun (d : Run_result.delivery_event) -> d.lc)
        (Run_result.deliveries_of r id)
    in
    Lclock.latency_degree ~cast:c.lc ~deliveries:lcs

let latency_degrees (r : Run_result.t) =
  List.map
    (fun (c : Run_result.cast_event) ->
      (c.msg.Amcast.Msg.id, latency_degree r c.msg.Amcast.Msg.id))
    r.casts

let fold_degrees f init r =
  List.fold_left
    (fun acc (_, d) -> match d with None -> acc | Some d -> f acc d)
    init (latency_degrees r)

let max_latency_degree r =
  fold_degrees (fun acc d -> Some (match acc with None -> d | Some a -> max a d)) None r

let min_latency_degree r =
  fold_degrees (fun acc d -> Some (match acc with None -> d | Some a -> min a d)) None r

let delivery_latency (r : Run_result.t) id =
  match Run_result.cast_of r id with
  | None -> None
  | Some c -> (
    match Run_result.deliveries_of r id with
    | [] -> None
    | ds ->
      let last =
        List.fold_left
          (fun acc (d : Run_result.delivery_event) ->
            Des.Sim_time.max acc d.at)
          Des.Sim_time.zero ds
      in
      Some (Des.Sim_time.of_us (Des.Sim_time.diff last c.at)))

let mean_delivery_latency_ms (r : Run_result.t) =
  let lats =
    List.filter_map
      (fun (c : Run_result.cast_event) ->
        delivery_latency r c.msg.Amcast.Msg.id)
      r.casts
  in
  match lats with
  | [] -> None
  | _ ->
    let sum =
      List.fold_left (fun acc l -> acc +. Des.Sim_time.to_ms_float l) 0. lats
    in
    Some (sum /. float_of_int (List.length lats))

let delivery_latencies_ms (r : Run_result.t) =
  List.filter_map
    (fun (c : Run_result.cast_event) ->
      Option.map Des.Sim_time.to_ms_float
        (delivery_latency r c.msg.Amcast.Msg.id))
    r.casts

(* Nearest-rank percentile (p in [0, 100]) over an unsorted sample. *)
let percentile p samples =
  match samples with
  | [] -> None
  | _ ->
    let a = Array.of_list samples in
    Array.sort compare a;
    let n = Array.length a in
    let rank =
      int_of_float (ceil (p /. 100. *. float_of_int n)) - 1
    in
    Some a.(max 0 (min (n - 1) rank))

let delivery_latency_percentile_ms r p = percentile p (delivery_latencies_ms r)

let inter_group_messages (r : Run_result.t) = r.inter_group_msgs
let intra_group_messages (r : Run_result.t) = r.intra_group_msgs

let messages_by_tag (r : Run_result.t) =
  let tbl = Hashtbl.create 16 in
  List.iter
    (function
      | Trace.Send { inter_group = true; tag; _ } ->
        Hashtbl.replace tbl tag
          (1 + Option.value ~default:0 (Hashtbl.find_opt tbl tag))
      | _ -> ())
    (Trace.entries r.trace);
  Hashtbl.fold (fun tag n acc -> (tag, n) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let last_send_time (r : Run_result.t) =
  List.fold_left
    (fun acc e ->
      match e with
      | Trace.Send { time; _ } -> (
        match acc with
        | None -> Some time
        | Some t -> Some (Des.Sim_time.max t time))
      | _ -> acc)
    None
    (Trace.entries r.trace)

let sends_after (r : Run_result.t) cutoff =
  List.fold_left
    (fun acc e ->
      match e with
      | Trace.Send { time; _ } when Des.Sim_time.compare time cutoff > 0 ->
        acc + 1
      | _ -> acc)
    0
    (Trace.entries r.trace)

let delivered_count (r : Run_result.t) =
  List.fold_left
    (fun acc (d : Run_result.delivery_event) ->
      Msg_id.Set.add d.msg.Amcast.Msg.id acc)
    Msg_id.Set.empty r.deliveries
  |> Msg_id.Set.cardinal

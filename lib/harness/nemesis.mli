(** Declarative, deterministic fault plans ("nemesis schedules").

    A plan is a timed list of adversarial actions replayed against a
    deployment: group-set partitions and heals, crash-stop failures with
    in-flight-loss patterns, latency spikes that scale a link's delay
    distribution for a window, and FD storms that shrink heartbeat
    timeouts to force false suspicions. The same plan applied to the same
    deployment yields the same run — plans are data, not callbacks, so a
    campaign can generate, log and replay them from a scenario seed.

    The model discipline: every action preserves the asynchronous model's
    safety assumptions (partitions buffer rather than drop, spikes keep
    delays finite, storms only mistune detectors), so safety — order,
    integrity, genuineness — must hold at every instant of a nemesis run,
    while liveness is only owed after the plan's {!liveness_from} instant
    (its final heal). {!Checker.check_all}'s [liveness_from] argument
    implements exactly that split. *)

open Des
open Net

type action =
  | Partition of { side_a : Topology.gid list; side_b : Topology.gid list }
      (** Bidirectional partition between two group sets
          ({!Net.Network.partition_groups}): traffic across the cut is
          buffered until a heal. *)
  | Heal_all
      (** Remove every partition and hold; buffered traffic is released
          with fresh latency samples ({!Net.Network.heal_all}). *)
  | Crash of { pid : Topology.pid; drop : Runtime.Engine.drop_spec }
      (** Crash-stop failure with the given in-flight-loss pattern. *)
  | Latency_spike of {
      src_group : Topology.gid;
      dst_group : Topology.gid;
      factor : float;
      duration : Sim_time.t;
    }
      (** Scale the link's sampled delays by [factor] for [duration]
          ({!Net.Network.latency_scale}); the link reverts to the base
          distribution when the window closes. *)
  | Fd_storm of { scale : float }
      (** Multiply every live heartbeat detector's adaptive timeouts by
          [scale] ({!Runtime.Engine.perturb_fd}). [scale < 1] forces false
          suspicions; the ◇P back-off then walks the timeouts back up, so
          a storm needs no explicit end action. No-op under the oracle
          detector. *)

type step = { at : Sim_time.t; action : action }

type t
(** A validated plan: steps sorted by time, every partition eventually
    healed. *)

val make : step list -> t
(** [make steps] sorts the steps by time (stable for equal instants) and
    validates them.
    @raise Invalid_argument if some [Partition] step has no [Heal_all]
    strictly after it — such a plan would leave traffic parked forever and
    no liveness instant would exist. *)

val steps : t -> step list
(** The plan's steps in execution order. *)

val is_empty : t -> bool

val liveness_from : t -> Sim_time.t
(** The instant from which the run owes liveness again: the latest end of
    any step (a [Latency_spike] ends at [at + duration], everything else
    at [at]). [Sim_time.zero] for the empty plan. Validation guarantees
    the final heal is at or before this instant. *)

val apply : t -> 'w Runtime.Engine.t -> unit
(** Schedules every step of the plan against the engine (via
    {!Runtime.Engine.at}); the simulation replays them as it runs. Call
    after the deployment is spawned and before running. *)

val generate :
  rng:Rng.t ->
  topology:Topology.t ->
  ?with_crashes:bool ->
  ?with_storms:bool ->
  ?overlay:Overlay.t ->
  ?horizon:Sim_time.t ->
  unit ->
  t
(** [generate ~rng ~topology ()] derives a random-but-seeded plan sized to
    the topology: one or two partition/heal windows over random group
    splits (multi-group topologies only), up to two latency spikes, an
    optional FD storm (unless [with_storms] is [false]), and — when
    [with_crashes] (default [true]) — crashes of at most a minority of
    each group with random drop specs, so group consensus stays live.
    Every action lands within [horizon] (default 400ms) and a terminal
    [Heal_all] strictly after every other step closes the plan. The same
    [rng] state yields the same plan.

    [overlay] makes the partition windows overlay-aware: when the overlay
    has bridges ({!Net.Overlay.cut_edges}), every window severs one
    random bridge and partitions the two group sets it separates — the
    faults a hub/tree geometry actually suffers — and the window count
    scales with the number of bridges. Bridgeless overlays (rings,
    cliques) fall back to the random splits.
    @raise Invalid_argument if the overlay's group count differs from
    the topology's. *)

val pp : Format.formatter -> t -> unit

(** Correctness oracles for the agreement properties of Section 2.2.

    Each check inspects a finished run and returns human-readable violation
    descriptions (empty list = property holds on this run). The property
    tests feed randomised runs through {!check_all}.

    The prefix-order check exploits a closure property: per-process
    delivery sequences only grow, so if the {e final} projected sequences
    of two processes are prefix-related, the projected sequences at every
    earlier instant were prefix-related too. Checking the end state
    therefore checks the property at all times [t]. *)

type violation = string

val uniform_integrity : Run_result.t -> violation list
(** Each process delivers a message at most once, only if addressed to its
    group, and only if the message was cast. *)

val validity : Run_result.t -> violation list
(** If a correct process casts [m], every correct addressee delivers [m].
    Only meaningful on runs that reached quiescence ([drained]); on
    horizon-bounded runs this check is skipped. *)

val uniform_agreement : Run_result.t -> violation list
(** If {e any} process (even one that later crashed) delivers [m], every
    correct addressee delivers [m]. Skipped on horizon-bounded runs. *)

val uniform_prefix_order : Run_result.t -> violation list
(** For any two processes, the delivery sequences projected on their common
    messages are prefix-related. *)

val conflict_order : conflict:Amcast.Conflict.t -> Run_result.t -> violation list
(** The relaxed {e partial}-order check of generic multicast: only pairs
    that conflict under [conflict] must be delivered in a consistent
    relative order by their common addressees. For each conflicting cast
    pair and each pair of common addressees, a violation is a
    disagreement (both delivered both, in opposite orders), a hole (one
    delivered both, the other delivered the later without the earlier —
    it skipped a conflicting predecessor) or a crossed pair (each
    delivered only one side — whichever way the pair is ordered, someone
    already skipped a conflicting predecessor). Non-conflicting pairs are
    unconstrained. Like the prefix check this is a safety property closed
    under sequence extension, so checking the end state checks every
    earlier instant; with [Conflict.total] it flags exactly the runs the
    prefix check flags (the violation strings differ). *)

val genuineness : ?overlay:Net.Overlay.t -> Run_result.t -> violation list
(** Only addressees and casters take part: every process that appears as
    the source or destination of any network send must be the caster or an
    addressee of some cast message. (Prop. 3.2's premise; holds for A1 and
    trivially fails for broadcast-based multicast.)

    [overlay] relaxes the property to {e overlay genuineness} (FlexCast's
    guarantee): for each cast, the relays — the lowest pid — of the groups
    on its routing paths ({!Net.Overlay.participants}: origin-to-
    destination routes plus destination-pair stamp routes) are also
    allowed. Groups off those paths must still be completely silent. *)

val quiescence : Run_result.t -> violation list
(** The run drained: after finitely many casts the deployment stopped
    sending. Only meaningful for runs executed without a horizon. *)

val causal_delivery_order : Run_result.t -> violation list
(** If the A-XCast of [m1] happened-before the A-XCast of [m2] (e.g. the
    caster of [m2] had already delivered [m1]), then no process delivers
    [m2] before [m1]. Not part of the Section 2.2 specification — and
    {e not} guaranteed by timestamp-based multicast in general: in A1, a
    message causally after [m1] but addressed to other groups can pick up
    a smaller final timestamp. Atomic {e broadcast} with A2 does provide
    it (a causally later message lands in a strictly later round, and
    same-origin messages in one round are ordered by sequence number), so
    the A2 suites check it as a derived guarantee. Requires the trace. *)

val check_all :
  ?expect_genuine:bool ->
  ?check_causal:bool ->
  ?check_quiescence:bool ->
  ?liveness_from:Des.Sim_time.t ->
  ?conflict:Amcast.Conflict.t ->
  ?overlay:Net.Overlay.t ->
  Run_result.t ->
  violation list
(** Integrity + validity + agreement + prefix order, plus genuineness when
    [expect_genuine], causal delivery order when [check_causal] and
    quiescence when [check_quiescence] (all default false). [check_causal]
    needs the trace; [check_quiescence] only makes sense on runs executed
    without a horizon by a protocol that stops scheduling when idle.

    [conflict] selects the ordering property: absent or
    {!Amcast.Conflict.Total}, the total-order prefix check (byte-identical
    verdicts either way); any other relation, the relaxed
    {!conflict_order} check — what a generic-multicast deployment owes.

    [overlay] makes the genuineness check overlay-aware (see
    {!genuineness}); it only matters when [expect_genuine] is set.

    [liveness_from] (default {!Des.Sim_time.zero}) is the safety/liveness
    split for runs under a fault plan: the liveness checks — validity,
    agreement and quiescence — are only applied if the run's [end_time]
    reached [liveness_from] (pass {!Nemesis.liveness_from} of the plan,
    i.e. its final heal). The safety checks are applied unconditionally:
    no fault schedule excuses an ordering, integrity or genuineness
    violation. *)

(** The pre-index quadratic checkers, kept verbatim as differential
    oracles for the fast paths above: on every run, each reference checker
    and its indexed replacement must find the same violation set (the
    property suite asserts this on randomised runs, [verify_bench] on
    soak-scale ones). The fast prefix check also falls back to
    {!Reference.uniform_prefix_order} once it detects a violation, so the
    violation strings match byte for byte. *)
module Reference : sig
  val uniform_prefix_order : Run_result.t -> violation list

  val conflict_order :
    conflict:Amcast.Conflict.t -> Run_result.t -> violation list

  val genuineness : ?overlay:Net.Overlay.t -> Run_result.t -> violation list
  val causal_delivery_order : Run_result.t -> violation list
end

open Net
open Runtime

type violation = string

let cast_ids (r : Run_result.t) =
  List.fold_left
    (fun acc (c : Run_result.cast_event) ->
      Msg_id.Set.add c.msg.Amcast.Msg.id acc)
    Msg_id.Set.empty r.casts

let uniform_integrity (r : Run_result.t) =
  let casts = cast_ids r in
  let seen = Hashtbl.create 64 in
  List.fold_left
    (fun acc (d : Run_result.delivery_event) ->
      let id = d.msg.Amcast.Msg.id in
      let acc =
        if Hashtbl.mem seen (d.pid, id) then
          Fmt.str "p%d delivered %a twice" d.pid Msg_id.pp id :: acc
        else begin
          Hashtbl.replace seen (d.pid, id) ();
          acc
        end
      in
      let acc =
        if not (Msg_id.Set.mem id casts) then
          Fmt.str "p%d delivered %a which was never cast" d.pid Msg_id.pp id
          :: acc
        else acc
      in
      if not (Amcast.Msg.addressed_to_pid r.topology d.msg d.pid) then
        Fmt.str "p%d delivered %a but is not an addressee" d.pid Msg_id.pp id
        :: acc
      else acc)
    [] r.deliveries

let validity (r : Run_result.t) =
  if not r.drained then []
  else
    List.fold_left
      (fun acc (c : Run_result.cast_event) ->
        let id = c.msg.Amcast.Msg.id in
        if Run_result.correct r c.origin then
          if Run_result.delivered_everywhere_needed r id then acc
          else
            Fmt.str
              "validity: %a cast by correct p%d not delivered by every \
               correct addressee"
              Msg_id.pp id c.origin
            :: acc
        else acc)
      [] r.casts

let uniform_agreement (r : Run_result.t) =
  if not r.drained then []
  else
    let delivered_somewhere =
      List.fold_left
        (fun acc (d : Run_result.delivery_event) ->
          Msg_id.Set.add d.msg.Amcast.Msg.id acc)
        Msg_id.Set.empty r.deliveries
    in
    Msg_id.Set.fold
      (fun id acc ->
        if Run_result.delivered_everywhere_needed r id then acc
        else
          Fmt.str
            "uniform agreement: %a delivered somewhere but not by every \
             correct addressee"
            Msg_id.pp id
          :: acc)
      delivered_somewhere []

(* How one process's delivery sequence relates to an ordered message pair
   (m1, m2), from the first-delivery positions of the two ids. *)
type pair_obs = Both_fwd | Both_rev | Only_fst | Only_snd | Neither

let pair_obs p1 p2 =
  match (p1, p2) with
  | Some a, Some b -> if (a : int) < b then Both_fwd else Both_rev
  | Some _, None -> Only_fst
  | None, Some _ -> Only_snd
  | None, None -> Neither

(* The conflicting-pair consistency test behind the relaxed partial-order
   checker, shared by the reference and indexed implementations so the
   two can only diverge in enumeration, never in semantics. For a
   conflicting pair and two common addressees p, q, a violation is:

   - disagreement: p and q delivered both messages in opposite orders;
   - a hole: p delivered both in some order, q delivered the later one
     without the earlier — q skipped a conflicting predecessor (if q
     delivers it later the pair becomes a disagreement, if never an
     agreement violation; either way q already delivered out of order);
   - crossed: p delivered only m1 and q only m2 — whichever way the pair
     is ordered, one of them has already skipped a conflicting
     predecessor, even though neither completion exists yet.

   Pairs where one process is simply behind (same order so far, or one
   delivery missing on the trailing side) are fine: safety holds at every
   prefix, so the end state testifies for all earlier instants exactly as
   in the total-order prefix check. *)
let conflict_pair_violation (m1 : Amcast.Msg.t) (m2 : Amcast.Msg.t) p op q oq =
  let id1 = m1.Amcast.Msg.id and id2 = m2.Amcast.Msg.id in
  let disagree a first second b =
    Some
      (Fmt.str
         "conflict order: p%d delivered %a before %a but p%d delivered %a \
          before %a"
         a Msg_id.pp first Msg_id.pp second b Msg_id.pp second Msg_id.pp
         first)
  in
  let hole a first second b =
    Some
      (Fmt.str
         "conflict order: p%d delivered %a before %a but p%d delivered %a \
          without %a"
         a Msg_id.pp first Msg_id.pp second b Msg_id.pp second Msg_id.pp
         first)
  in
  let crossed a ida b idb =
    Some
      (Fmt.str
         "conflict order: p%d delivered only %a and p%d delivered only %a \
          of a conflicting pair"
         a Msg_id.pp ida b Msg_id.pp idb)
  in
  match (op, oq) with
  | Both_fwd, Both_rev -> disagree p id1 id2 q
  | Both_rev, Both_fwd -> disagree p id2 id1 q
  | Both_fwd, Only_snd -> hole p id1 id2 q
  | Only_snd, Both_fwd -> hole q id1 id2 p
  | Both_rev, Only_fst -> hole p id2 id1 q
  | Only_fst, Both_rev -> hole q id2 id1 p
  | Only_fst, Only_snd -> crossed p id1 q id2
  | Only_snd, Only_fst -> crossed p id2 q id1
  | _ -> None

(* Distinct cast messages in cast order (ids are unique per cast in
   practice; dedup defensively). *)
let cast_msgs (r : Run_result.t) =
  let seen = Msg_id.Tbl.create 32 in
  List.filter_map
    (fun (c : Run_result.cast_event) ->
      let id = c.msg.Amcast.Msg.id in
      if Msg_id.Tbl.mem seen id then None
      else begin
        Msg_id.Tbl.replace seen id ();
        Some c.msg
      end)
    r.casts

(* Naive reference implementations, retained verbatim as differential
   oracles for the indexed fast paths below (and as the fallback that
   reproduces the exact violation strings once a fast path detects a
   violation). Quadratic in processes / casts — fine for unit tests,
   not for soak-scale traces. *)
module Reference = struct
  (* Projected prefix order: for each pair (p, q), restrict both sequences
     to the messages addressed to both p's and q's group, and require one
     to be a prefix of the other. *)
  let uniform_prefix_order (r : Run_result.t) =
    let pids = Topology.all_pids r.topology in
    let seqs =
      List.map (fun p -> (p, Array.of_list (Run_result.sequence_of r p))) pids
    in
    let project gp gq seq =
      Array.to_list seq
      |> List.filter (fun (m : Amcast.Msg.t) ->
             Amcast.Msg.addressed_to_group m gp
             && Amcast.Msg.addressed_to_group m gq)
    in
    let rec is_prefix a b =
      match (a, b) with
      | [], _ -> true
      | _, [] -> false
      | x :: a', y :: b' -> Amcast.Msg.equal_id x y && is_prefix a' b'
    in
    let violations = ref [] in
    List.iter
      (fun (p, sp) ->
        List.iter
          (fun (q, sq) ->
            if p < q then begin
              let gp = Topology.group_of r.topology p in
              let gq = Topology.group_of r.topology q in
              let pp_ = project gp gq sp in
              let pq = project gp gq sq in
              if not (is_prefix pp_ pq || is_prefix pq pp_) then
                violations :=
                  Fmt.str
                    "prefix order violated between p%d [%a] and p%d [%a]" p
                    Fmt.(list ~sep:(any " ") Amcast.Msg.pp)
                    pp_ q
                    Fmt.(list ~sep:(any " ") Amcast.Msg.pp)
                    pq
                  :: !violations
            end)
          seqs)
      seqs;
    !violations

  (* Relaxed partial-order check, naively: every conflicting cast pair ×
     every common-addressee pid pair, with positions found by scanning the
     delivery sequences. *)
  let conflict_order ~conflict (r : Run_result.t) =
    let msgs = cast_msgs r in
    let position_of seq id =
      let rec find i = function
        | [] -> None
        | (m : Amcast.Msg.t) :: rest ->
          if Msg_id.equal m.id id then Some i else find (i + 1) rest
      in
      find 0 seq
    in
    let violations = ref [] in
    let rec pairs = function
      | [] -> ()
      | m1 :: rest ->
        List.iter
          (fun m2 ->
            if Amcast.Conflict.conflicts conflict m1 m2 then begin
              let common =
                List.filter
                  (fun p -> Amcast.Msg.addressed_to_pid r.topology m2 p)
                  (Amcast.Msg.dest_pids r.topology m1)
              in
              let obs =
                List.map
                  (fun p ->
                    let seq = Run_result.sequence_of r p in
                    ( p,
                      pair_obs
                        (position_of seq m1.Amcast.Msg.id)
                        (position_of seq m2.Amcast.Msg.id) ))
                  common
              in
              let rec pid_pairs = function
                | [] -> ()
                | (p, op) :: later ->
                  List.iter
                    (fun (q, oq) ->
                      match conflict_pair_violation m1 m2 p op q oq with
                      | Some v -> violations := v :: !violations
                      | None -> ())
                    later;
                  pid_pairs later
              in
              pid_pairs obs
            end)
          rest;
        pairs rest
    in
    pairs msgs;
    List.rev !violations

  let genuineness ?overlay (r : Run_result.t) =
    let allowed =
      List.fold_left
        (fun acc (c : Run_result.cast_event) ->
          let acc =
            List.fold_left
              (fun acc p -> p :: acc)
              (c.origin :: acc)
              (Amcast.Msg.dest_pids r.topology c.msg)
          in
          match overlay with
          | None -> acc
          | Some ov ->
            (* Overlay-genuine runs may additionally use the relays (the
               lowest pid) of the groups on the routing paths. *)
            let src = Topology.group_of r.topology c.origin in
            List.fold_left
              (fun acc g ->
                (Topology.members_array r.topology g).(0) :: acc)
              acc
              (Overlay.participants ov ~src ~dsts:c.msg.Amcast.Msg.dest))
        [] r.casts
      |> List.sort_uniq Int.compare
    in
    let check pid role time acc =
      if List.mem pid allowed then acc
      else
        Fmt.str
          "genuineness: p%d %s a message at %a but is neither caster nor \
           addressee of any cast"
          pid role Des.Sim_time.pp time
        :: acc
    in
    List.fold_left
      (fun acc entry ->
        match entry with
        | Trace.Send { src; dst; time; _ } ->
          check src "sent" time (check dst "was sent" time acc)
        | _ -> acc)
      []
      (Trace.entries r.trace)
    |> List.sort_uniq String.compare

  (* Causal order: cast(m1) -> cast(m2) implies m1 before m2 at every
     process delivering both. Pairwise over cast messages using the
     happened-before DAG reconstructed from the trace. *)
  let causal_delivery_order (r : Run_result.t) =
    let causal = Causal.of_trace r.trace in
    let ids =
      List.map
        (fun (c : Run_result.cast_event) -> c.msg.Amcast.Msg.id)
        r.casts
    in
    let position_of seq id =
      let rec find i = function
        | [] -> None
        | (m : Amcast.Msg.t) :: rest ->
          if Msg_id.equal m.id id then Some i else find (i + 1) rest
      in
      find 0 seq
    in
    let violations = ref [] in
    List.iter
      (fun id1 ->
        List.iter
          (fun id2 ->
            if
              (not (Msg_id.equal id1 id2))
              && Causal.causally_precedes causal id1 id2
            then
              List.iter
                (fun p ->
                  let seq = Run_result.sequence_of r p in
                  match (position_of seq id1, position_of seq id2) with
                  | Some i1, Some i2 when i2 < i1 ->
                    violations :=
                      Fmt.str
                        "causal order: p%d delivered %a before %a although \
                         cast(%a) happened-before cast(%a)"
                        p Msg_id.pp id2 Msg_id.pp id1 Msg_id.pp id1
                        Msg_id.pp id2
                      :: !violations
                  | _ -> ())
                (Topology.all_pids r.topology))
          ids)
      ids;
    !violations
end

(* Indexed prefix-order check, O(deliveries * dest-size) instead of
   O(groups^2 * deliveries): one pass over the delivery sequences buckets
   each delivery into the group pairs whose projection contains it. A
   delivery of [m] at a process of group [g_p] appears in pid's (ga, gb)
   projection exactly when {ga, gb} = {g_p, gx} for some gx in dest(m)
   and g_p is itself in dest(m) (the projection keeps messages addressed
   to both groups, and pid is a member of one of them) — so instead of
   scanning every pair, each delivery fans out to |dest(m)| buckets and
   pairs never touched by any delivery are vacuously prefix-ordered
   (every projection in them is empty). Within a bucket, sort the per-pid
   projections by length and prefix-compare consecutive pairs only.
   Sound and complete for *detection*:

   - all consecutive pairs prefix-related => all pairs prefix-related
     (length-sorted prefixes chain by transitivity), which covers every
     cross-group pid pair the naive checker tests;
   - a same-group pair failing on the (ga, gb) projection implies the
     same pair fails on the coarser (ga, ga) projection too (projection
     preserves the prefix relation), which the naive checker also flags;
   - a pid absent from a bucket has an empty projection there, and the
     empty sequence is a prefix of every other, so dropping it loses
     nothing.

   On detection we fall back to the reference checker so callers see the
   exact same violation strings the naive implementation produces. *)
let uniform_prefix_order (r : Run_result.t) =
  let idx = Run_result.index r in
  let ng = Topology.n_groups r.topology in
  (* (min gid * ng + max gid) -> pid -> that pid's projection, reversed *)
  let pairs : (int, (int, Msg_id.t list ref) Hashtbl.t) Hashtbl.t =
    Hashtbl.create 64
  in
  Array.iteri
    (fun pid seq ->
      let gp = Topology.group_of r.topology pid in
      Array.iter
        (fun (m : Amcast.Msg.t) ->
          if Amcast.Msg.addressed_to_group m gp then
            List.iter
              (fun gx ->
                let key = (min gp gx * ng) + max gp gx in
                let per_pid =
                  match Hashtbl.find_opt pairs key with
                  | Some h -> h
                  | None ->
                    let h = Hashtbl.create 8 in
                    Hashtbl.replace pairs key h;
                    h
                in
                match Hashtbl.find_opt per_pid pid with
                | Some l -> l := m.Amcast.Msg.id :: !l
                | None ->
                  Hashtbl.replace per_pid pid (ref [ m.Amcast.Msg.id ]))
              m.Amcast.Msg.dest)
        seq)
    idx.Run_result.seqs;
  let is_prefix (a : Msg_id.t array) (b : Msg_id.t array) =
    (* caller guarantees |a| <= |b| *)
    let ok = ref true in
    Array.iteri (fun i x -> if !ok && not (Msg_id.equal x b.(i)) then ok := false) a;
    !ok
  in
  let violated = ref false in
  Hashtbl.iter
    (fun _ per_pid ->
      if not !violated then begin
        let projs =
          Hashtbl.fold
            (fun _ l acc -> Array.of_list (List.rev !l) :: acc)
            per_pid []
        in
        let sorted =
          List.sort
            (fun a b -> Int.compare (Array.length a) (Array.length b))
            projs
        in
        let rec chain = function
          | a :: (b :: _ as rest) ->
            if is_prefix a b then chain rest else violated := true
          | [ _ ] | [] -> ()
        in
        chain sorted
      end)
    pairs;
  if !violated then Reference.uniform_prefix_order r else []

(* Indexed conflict-order check: first-delivery positions come from the
   per-pid position tables (O(1) per lookup instead of a sequence scan),
   and message pairs are enumerated per conflict class when the relation
   is a partition — only same-class pairs can conflict, so the quadratic
   enumeration shrinks to the class sizes; solo messages drop out
   entirely. Bare Commute relations keep the pairwise enumeration.
   Detection-only: on the first violation we fall back to the reference
   checker so callers see its exact violation strings. *)
let conflict_order ~conflict (r : Run_result.t) =
  let idx = Run_result.index r in
  let msgs = cast_msgs r in
  let pids_memo = Msg_id.Tbl.create 32 in
  let pids_of (m : Amcast.Msg.t) =
    match Msg_id.Tbl.find_opt pids_memo m.id with
    | Some ps -> ps
    | None ->
      let ps = Amcast.Msg.dest_pids r.topology m in
      Msg_id.Tbl.replace pids_memo m.id ps;
      ps
  in
  let violated = ref false in
  let check_pair (m1 : Amcast.Msg.t) (m2 : Amcast.Msg.t) =
    if not !violated then begin
      let common =
        List.filter
          (fun p -> Amcast.Msg.addressed_to_pid r.topology m2 p)
          (pids_of m1)
      in
      let obs =
        List.map
          (fun p ->
            let pos = idx.Run_result.pos.(p) in
            ( p,
              pair_obs
                (Msg_id.Tbl.find_opt pos m1.id)
                (Msg_id.Tbl.find_opt pos m2.id) ))
          common
      in
      let rec pid_pairs = function
        | [] -> ()
        | (p, op) :: later ->
          List.iter
            (fun (q, oq) ->
              if conflict_pair_violation m1 m2 p op q oq <> None then
                violated := true)
            later;
          if not !violated then pid_pairs later
      in
      pid_pairs obs
    end
  in
  (match conflict with
  | Amcast.Conflict.Commute _ ->
    let rec pairs = function
      | [] -> ()
      | m1 :: rest ->
        List.iter
          (fun m2 ->
            if Amcast.Conflict.conflicts conflict m1 m2 then check_pair m1 m2)
          rest;
        pairs rest
    in
    pairs msgs
  | Amcast.Conflict.Total | Amcast.Conflict.Keyed _ ->
    let classes : (string, Amcast.Msg.t list ref) Hashtbl.t =
      Hashtbl.create 16
    in
    List.iter
      (fun m ->
        match Amcast.Conflict.class_of conflict m with
        | Some (Some c) -> (
          match Hashtbl.find_opt classes c with
          | Some l -> l := m :: !l
          | None -> Hashtbl.replace classes c (ref [ m ]))
        | Some None -> () (* solo: conflicts with nothing *)
        | None -> assert false)
      msgs;
    Hashtbl.iter
      (fun _ members ->
        let rec pairs = function
          | [] -> ()
          | m1 :: rest ->
            List.iter (fun m2 -> check_pair m1 m2) rest;
            pairs rest
        in
        pairs !members)
      classes);
  if !violated then Reference.conflict_order ~conflict r else []

(* Indexed genuineness: the allowed set as a per-pid bool array, so each
   trace entry costs O(1) instead of a List.mem over the allowed list.
   [overlay] widens the set to overlay genuineness: the relays (lowest
   pid) of every group on the cast's routing paths —
   {!Net.Overlay.participants}, i.e. origin-to-destination routes plus
   destination-pair stamp routes — may also take part. Groups off those
   paths must stay silent. *)
let genuineness ?overlay (r : Run_result.t) =
  let allowed = Array.make (Topology.n_processes r.topology) false in
  List.iter
    (fun (c : Run_result.cast_event) ->
      allowed.(c.origin) <- true;
      List.iter
        (fun p -> allowed.(p) <- true)
        (Amcast.Msg.dest_pids r.topology c.msg);
      match overlay with
      | None -> ()
      | Some ov ->
        let src = Topology.group_of r.topology c.origin in
        List.iter
          (fun g -> allowed.((Topology.members_array r.topology g).(0)) <- true)
          (Overlay.participants ov ~src ~dsts:c.msg.Amcast.Msg.dest))
    r.casts;
  let check pid role time acc =
    if allowed.(pid) then acc
    else
      Fmt.str
        "genuineness: p%d %s a message at %a but is neither caster nor \
         addressee of any cast"
        pid role Des.Sim_time.pp time
      :: acc
  in
  List.fold_left
    (fun acc entry ->
      match entry with
      | Trace.Send { src; dst; time; _ } ->
        check src "sent" time (check dst "was sent" time acc)
      | _ -> acc)
    []
    (Trace.entries r.trace)
  |> List.sort_uniq String.compare

(* Indexed causal order: build the all-pairs cast reachability bitsets
   once, then scan each delivery sequence left to right keeping a "seen"
   bitset — a delivery of [m] whose successor row intersects [seen] is a
   violation (some causally later message was delivered first). Total
   cost O(casts * trace + deliveries * casts/63) instead of
   O(casts^2 * trace). *)
let causal_delivery_order (r : Run_result.t) =
  let causal = Causal.of_trace r.trace in
  let ids =
    List.map (fun (c : Run_result.cast_event) -> c.msg.Amcast.Msg.id) r.casts
  in
  let reach = Causal.cast_reachability causal ids in
  let idx = Run_result.index r in
  let words = reach.Causal.r_words in
  let violations = ref [] in
  Array.iteri
    (fun p seq ->
      let seen = Array.make words 0 in
      Array.iter
        (fun (m : Amcast.Msg.t) ->
          match Hashtbl.find_opt reach.Causal.r_index m.Amcast.Msg.id with
          | None -> ()
          | Some ia ->
            if seen.(ia / 63) land (1 lsl (ia mod 63)) = 0 then begin
              let row = reach.Causal.r_succ.(ia) in
              for w = 0 to words - 1 do
                let inter = row.(w) land seen.(w) in
                if inter <> 0 then
                  for b = 0 to 62 do
                    if inter land (1 lsl b) <> 0 then begin
                      let id2 = reach.Causal.r_ids.((w * 63) + b) in
                      violations :=
                        Fmt.str
                          "causal order: p%d delivered %a before %a \
                           although cast(%a) happened-before cast(%a)"
                          p Msg_id.pp id2 Msg_id.pp m.Amcast.Msg.id
                          Msg_id.pp m.Amcast.Msg.id Msg_id.pp id2
                        :: !violations
                    end
                  done
              done;
              seen.(ia / 63) <- seen.(ia / 63) lor (1 lsl (ia mod 63))
            end)
        seq)
    idx.Run_result.seqs;
  !violations

let quiescence (r : Run_result.t) =
  if r.drained then []
  else [ "run did not drain: the deployment kept scheduling events" ]

let check_all ?(expect_genuine = false) ?(check_causal = false)
    ?(check_quiescence = false) ?(liveness_from = Des.Sim_time.zero) ?conflict
    ?overlay r =
  (* Safety (integrity, prefix order, genuineness, causal order) is owed at
     every instant of every run, faults or not. Liveness (validity,
     agreement, quiescence) is only owed once the fault plan is over: a run
     cut short inside a partition window legitimately has undelivered
     messages, so those checks gate on the run having reached
     [liveness_from] — the nemesis plan's final heal. *)
  let liveness_due = Des.Sim_time.( >= ) r.Run_result.end_time liveness_from in
  let order_violations =
    (* A Total conflict relation demands exactly total order — keep the
       prefix checker (and its verdict strings) bit-identical to the
       no-conflict path. *)
    match conflict with
    | None | Some Amcast.Conflict.Total -> uniform_prefix_order r
    | Some c -> conflict_order ~conflict:c r
  in
  uniform_integrity r
  @ (if liveness_due then validity r else [])
  @ (if liveness_due then uniform_agreement r else [])
  @ order_violations
  @ (if expect_genuine then genuineness ?overlay r else [])
  @ (if check_causal then causal_delivery_order r else [])
  @ if check_quiescence && liveness_due then quiescence r else []

open Des
open Net

type scenario = {
  seed : int;
  groups : int;
  per_group : int;
  n_msgs : int;
  broadcast_only : bool;
  with_crashes : bool;
  jitter : bool;
  nemesis : bool;
}

type outcome = {
  scenario : scenario;
  violations : string list;
  delivered : int;
  max_degree : int option;
  drained : bool;
  steps : int;
  retained : (string * int) list;
}

type summary = {
  runs : int;
  clean : int;
  total_violations : int;
  failures : outcome list;
  delivered_total : int;
  total_steps : int;
  retained_total : (string * int) list;
}

let random_scenario rng ?(broadcast_only = false) ?(with_crashes = true)
    ?(with_nemesis = false) () =
  {
    seed = Rng.int rng 1_000_000_000;
    groups = 2 + Rng.int rng 3;
    per_group = 1 + Rng.int rng 3;
    n_msgs = 1 + Rng.int rng 12;
    broadcast_only;
    with_crashes;
    jitter = Rng.bool rng;
    nemesis = with_nemesis;
  }

(* Scenario [i] of campaign [seed] draws from its own RNG substream, a
   pure function of [(seed, i)]: any driver — sequential, Pool.map over a
   pre-built list, or a sharded worker that generates scenario [i] inside
   whichever domain claims index [i] — expands the same campaign to the
   same scenarios without coordinating over a shared walking rng. Each
   run then re-seeds everything from its scenario, so outcomes are
   independent of who generated the scenario where. *)
let scenario_at ?broadcast_only ?with_crashes ?with_nemesis ~seed i =
  random_scenario
    (Rng.substream seed i)
    ?broadcast_only ?with_crashes ?with_nemesis ()

let scenarios ?broadcast_only ?with_crashes ?with_nemesis ~seed ~runs () =
  List.init runs
    (scenario_at ?broadcast_only ?with_crashes ?with_nemesis ~seed)

let faults_for s topo =
  if not s.with_crashes then []
  else begin
    let rng = Rng.create (s.seed + 104729) in
    List.concat_map
      (fun g ->
        let members = Topology.members topo g in
        let crashable = (List.length members - 1) / 2 in
        if crashable = 0 || Rng.bool rng then []
        else
          Rng.sample_without_replacement rng crashable members
          |> List.map (fun pid ->
                 let drop =
                   match Rng.int rng 3 with
                   | 0 -> Runtime.Engine.Keep_inflight
                   | 1 -> Runtime.Engine.Lose_all_inflight
                   | _ -> Runtime.Engine.Lose_each_with_probability 0.5
                 in
                 {
                   Runner.at = Sim_time.of_ms (1 + Rng.int rng 300);
                   pid;
                   drop;
                 }))
      (Topology.all_groups topo)
  end

(* Label-wise merge of assoc lists, result sorted by label so the merge is
   order-insensitive. Labels ending in "_max" are high-water marks and
   combine by max; everything else is a count and sums. *)
let is_max_label label =
  let suffix = "_max" in
  let ls = String.length suffix and ll = String.length label in
  ll >= ls && String.sub label (ll - ls) ls = suffix

let sum_retained lists =
  let tbl = Hashtbl.create 8 in
  List.iter
    (List.iter (fun (label, n) ->
         let prev = Option.value ~default:0 (Hashtbl.find_opt tbl label) in
         Hashtbl.replace tbl label
           (if is_max_label label then max prev n else prev + n)))
    lists;
  Hashtbl.fold (fun label n acc -> (label, n) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let run_one (module P : Amcast.Protocol.S) ?config ?conflict ?overlay_kind
    ?(expect_genuine = false) ?(check_causal = false)
    ?(check_quiescence = false) s =
  let module R = Runner.Make (P) in
  (* Overlay campaigns keep the scenario stream but may bump the group
     count to the geometry's minimum (a ring needs a cycle). *)
  let groups =
    match overlay_kind with
    | Some Overlay.Ring -> max 3 s.groups
    | _ -> s.groups
  in
  let topo = Topology.symmetric ~groups ~per_group:s.per_group in
  let overlay = Option.map (fun k -> Overlay.of_kind k ~groups) overlay_kind in
  (* On an overlay the latency model is derived from it — every direct
     send pays its routed-path delay — with jitter scaled to the
     scenario's flag. Without one, the classic clique models. *)
  let latency =
    match overlay with
    | Some ov ->
      Overlay.to_latency
        ~jitter:(if s.jitter then Sim_time.of_ms 2 else Sim_time.zero)
        ov
    | None -> if s.jitter then Latency.wan_default else Latency.lan_only
  in
  let config =
    match overlay with
    | None -> config
    | Some ov ->
      let base = Option.value ~default:Amcast.Protocol.Config.default config in
      Some { base with Amcast.Protocol.Config.overlay = Some ov }
  in
  let rng = Rng.create (s.seed + 1) in
  let workload =
    Workload.generate ~rng ~topology:topo ~n:s.n_msgs
      ~dest:
        (if s.broadcast_only then Workload.To_all_groups
         else Workload.Random_groups groups)
      ~arrival:(`Poisson (Sim_time.of_ms 25))
      ?conflict ()
  in
  (* Under a nemesis plan the crash schedule comes from the plan itself
     (same minority-per-group policy, so group consensus keeps a correct
     majority), and [faults_for] is skipped — otherwise the two schedules
     would compound and could crash a majority. *)
  let nemesis =
    if not s.nemesis then None
    else
      Some
        (Nemesis.generate
           ~rng:(Rng.create (s.seed + 7919))
           ~topology:topo ~with_crashes:s.with_crashes ?overlay ())
  in
  let faults = if s.nemesis then [] else faults_for s topo in
  let dep = R.deploy ~seed:s.seed ~latency ?config ~faults ?nemesis topo in
  ignore (R.schedule dep workload);
  let r = R.run_deployment dep in
  let retained =
    sum_retained
      (List.map (fun pid -> P.stats (R.node dep pid)) (Topology.all_pids topo))
  in
  (* The ordering property follows the deployment's conflict relation (a
     constructor match, not structural equality — the relation holds
     closures): Total keeps the prefix check, anything else owes only the
     relaxed conflict order. *)
  let order_conflict =
    match config with
    | Some { Amcast.Protocol.Config.conflict = Amcast.Conflict.Total; _ }
    | None ->
      None
    | Some { Amcast.Protocol.Config.conflict = c; _ } -> Some c
  in
  {
    scenario = s;
    violations =
      Checker.check_all
        ~expect_genuine:(expect_genuine && not s.with_crashes)
        ~check_causal ~check_quiescence
        ?liveness_from:(Option.map Nemesis.liveness_from nemesis)
        ?conflict:order_conflict ?overlay r;
    delivered = Metrics.delivered_count r;
    max_degree = Metrics.max_latency_degree r;
    drained = r.drained;
    steps = r.events_executed;
    retained;
  }

let summarize outcomes =
  let failures = List.filter (fun o -> o.violations <> []) outcomes in
  {
    runs = List.length outcomes;
    clean = List.length outcomes - List.length failures;
    total_violations =
      List.fold_left (fun acc o -> acc + List.length o.violations) 0 outcomes;
    failures;
    delivered_total =
      List.fold_left (fun acc o -> acc + o.delivered) 0 outcomes;
    total_steps = List.fold_left (fun acc o -> acc + o.steps) 0 outcomes;
    retained_total = sum_retained (List.map (fun o -> o.retained) outcomes);
  }

let run_scenarios proto ?config ?conflict ?overlay_kind ?expect_genuine
    ?check_causal ?check_quiescence ss =
  List.map
    (run_one proto ?config ?conflict ?overlay_kind ?expect_genuine
       ?check_causal ?check_quiescence)
    ss

(* Each scenario owns its seed, so runs are independent; the pool writes
   outcome [i] at index [i], so the outcome list — and therefore the
   summary — is bit-identical to the sequential driver's for any domain
   count. *)
let run_scenarios_parallel proto ?config ?conflict ?overlay_kind
    ?expect_genuine ?check_causal ?check_quiescence ?domains ss =
  Pool.map ?domains
    (fun s ->
      run_one proto ?config ?conflict ?overlay_kind ?expect_genuine
        ?check_causal ?check_quiescence s)
    (Array.of_list ss)
  |> Array.to_list

let run proto ?config ?conflict ?overlay_kind ?expect_genuine ?check_causal
    ?check_quiescence ?broadcast_only ?with_crashes ?with_nemesis ~seed ~runs
    () =
  scenarios ?broadcast_only ?with_crashes ?with_nemesis ~seed ~runs ()
  |> run_scenarios proto ?config ?conflict ?overlay_kind ?expect_genuine
       ?check_causal ?check_quiescence
  |> summarize

let run_parallel proto ?config ?conflict ?overlay_kind ?expect_genuine
    ?check_causal ?check_quiescence ?broadcast_only ?with_crashes
    ?with_nemesis ?domains ~seed ~runs () =
  scenarios ?broadcast_only ?with_crashes ?with_nemesis ~seed ~runs ()
  |> run_scenarios_parallel proto ?config ?conflict ?overlay_kind
       ?expect_genuine ?check_causal ?check_quiescence ?domains
  |> summarize

(* Fully sharded driver: nothing is materialised up front — the domain
   that claims index [i] derives scenario [i] from its substream and runs
   it, so the coordinating domain does O(1) work per run instead of
   generating [runs] scenarios serially. Outcome [i] still lands at index
   [i], so the summary is bit-identical to [run] at every domain count. *)
let run_sharded proto ?config ?conflict ?overlay_kind ?expect_genuine
    ?check_causal ?check_quiescence ?broadcast_only ?with_crashes
    ?with_nemesis ?domains ~seed ~runs () =
  Pool.tabulate ?domains runs (fun i ->
      run_one proto ?config ?conflict ?overlay_kind ?expect_genuine
        ?check_causal ?check_quiescence
        (scenario_at ?broadcast_only ?with_crashes ?with_nemesis ~seed i))
  |> Array.to_list |> summarize

let pp_scenario ppf s =
  Fmt.pf ppf
    "seed=%d groups=%d d=%d msgs=%d%s%s%s%s" s.seed s.groups s.per_group
    s.n_msgs
    (if s.broadcast_only then " broadcast" else "")
    (if s.with_crashes then " crashes" else "")
    (if s.jitter then " jitter" else "")
    (if s.nemesis then " nemesis" else "")

let pp_summary ppf t =
  Fmt.pf ppf "@[<v>%d runs, %d clean, %d messages delivered, %d events@,"
    t.runs t.clean t.delivered_total t.total_steps;
  if t.retained_total <> [] then begin
    Fmt.pf ppf "end-of-run retained state:";
    List.iter
      (fun (label, n) -> Fmt.pf ppf " %s=%d" label n)
      t.retained_total;
    Fmt.pf ppf "@,"
  end;
  if t.failures = [] then Fmt.pf ppf "no violations.@]"
  else begin
    Fmt.pf ppf "%d VIOLATIONS across %d runs:@," t.total_violations
      (List.length t.failures);
    List.iter
      (fun o ->
        Fmt.pf ppf "  [%a]@," pp_scenario o.scenario;
        List.iter (fun v -> Fmt.pf ppf "    %s@," v) o.violations)
      t.failures;
    Fmt.pf ppf "@]"
  end

open Des

type choice = {
  handle : Scheduler.handle;
  time : Sim_time.t;
  tag : Scheduler.Tag.t;
}

type t = {
  sched : Scheduler.t;
  budget : int;
  reorder_bound : int;
  mutable spurious_fired : int;
  mutable reorders : int;
  mutable steps : int;
}

let create ?(spurious_timers = 0) ?(reorder_bound = max_int) sched =
  {
    sched;
    budget = spurious_timers;
    reorder_bound;
    spurious_fired = 0;
    reorders = 0;
    steps = 0;
  }

let choices t =
  let live = Scheduler.enabled t.sched in
  (* The one eligible timed-class event: earliest in (time, seq) order.
     [Scheduler.enabled] returns that order, so it is the first non-anytime
     entry. *)
  let rec first_timed = function
    | [] -> None
    | (h, _, tag) :: rest ->
      if Scheduler.Tag.anytime tag then first_timed rest else Some (h, tag)
  in
  let ft = first_timed live in
  let eligible =
    List.filter_map
      (fun (handle, time, tag) ->
        let keep =
          Scheduler.Tag.anytime tag
          || (match ft with Some (h, _) -> h = handle | None -> false)
        in
        if keep then Some { handle; time; tag } else None)
      live
  in
  let eligible =
    match ft with
    | Some (h, tag)
      when Scheduler.Tag.kind tag = `Timer
           && t.spurious_fired >= t.budget
           && List.exists (fun c -> c.handle <> h) eligible ->
      (* Over budget: the timer may not preempt pending anytime events
         (every other eligible choice is one), but stays eligible when
         alone. *)
      List.filter (fun c -> c.handle <> h) eligible
    | _ -> eligible
  in
  (* Out of reorders: only the default (earliest) choice remains. *)
  if t.reorders >= t.reorder_bound then
    match eligible with [] -> [] | c :: _ -> [ c ]
  else eligible

let step_idx t i =
  let cs = choices t in
  match cs with
  | [] -> invalid_arg "Drive.step: deployment is quiescent"
  | _ ->
    let n = List.length cs in
    let i = if i < 0 then 0 else if i >= n then n - 1 else i in
    let c = List.nth cs i in
    if
      Scheduler.Tag.kind c.tag = `Timer
      && List.exists (fun c' -> Scheduler.Tag.anytime c'.tag) cs
    then t.spurious_fired <- t.spurious_fired + 1;
    if i > 0 then t.reorders <- t.reorders + 1;
    let executed = Scheduler.step_handle t.sched c.handle in
    assert executed;
    t.steps <- t.steps + 1;
    (i, c)

let step t i = snd (step_idx t i)
let steps t = t.steps
let finished t = Scheduler.pending t.sched = 0

let run ?(max_steps = 200_000) t cs =
  let executed = ref [] in
  let count = ref 0 in
  let exec i =
    if !count >= max_steps then failwith "Drive.run: max_steps exceeded";
    incr count;
    let j, _ = step_idx t i in
    executed := j :: !executed
  in
  List.iter (fun i -> if not (finished t) then exec i) cs;
  while not (finished t) do
    exec 0
  done;
  List.rev !executed

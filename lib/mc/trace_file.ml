open Des

type t = {
  protocol : string;
  sizes : int list;
  seed : int;
  intra_us : int;
  inter_us : int;
  config : string;
  overlay : Net.Overlay.kind option;
  spurious_timers : int;
  reorder_bound : int;
  casts : (int * int * int list * string) list;
  faults : (int * int) list;
  mutation : Mutant.spec option;
  choices : int list;
  note : string;
}

let make ?(seed = 0) ?(intra_us = 1_000) ?(inter_us = 50_000)
    ?(config = "default") ?overlay ?(spurious_timers = 0)
    ?(reorder_bound = max_int) ?(casts = []) ?(faults = []) ?mutation
    ?(choices = []) ?(note = "") ~protocol ~sizes () =
  {
    protocol;
    sizes;
    seed;
    intra_us;
    inter_us;
    config;
    overlay;
    spurious_timers;
    reorder_bound;
    casts;
    faults;
    mutation;
    choices;
    note;
  }

let magic = "amcast-mc-trace/v1"
let csv l = String.concat "," (List.map string_of_int l)

let to_string t =
  let b = Buffer.create 256 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "%s" magic;
  line "protocol %s" t.protocol;
  line "sizes %s" (csv t.sizes);
  line "seed %d" t.seed;
  line "latency %d %d" t.intra_us t.inter_us;
  line "config %s" t.config;
  (match t.overlay with
  | Some k -> line "overlay %s" (Net.Overlay.kind_name k)
  | None -> ());
  line "spurious %d" t.spurious_timers;
  if t.reorder_bound <> max_int then line "reorder %d" t.reorder_bound;
  List.iter
    (fun (at, origin, dest, payload) ->
      line "cast %d %d %s %s" at origin (csv dest) payload)
    t.casts;
  List.iter (fun (at, pid) -> line "fault %d %d" at pid) t.faults;
  (match t.mutation with
  | Some spec -> line "mutation %s" (Mutant.spec_to_string spec)
  | None -> ());
  line "choices %s" (csv t.choices);
  if t.note <> "" then line "note %s" t.note;
  Buffer.contents b

exception Bad of string

let fail fmt = Printf.ksprintf (fun m -> raise (Bad m)) fmt

let int_field name v =
  match int_of_string_opt v with
  | Some i -> i
  | None -> fail "bad %s %S" name v

let ints_field name v =
  if String.trim v = "" then []
  else
    List.map (int_field name) (String.split_on_char ',' (String.trim v))

(* First word and the rest of the line (or ""). *)
let cut line =
  match String.index_opt line ' ' with
  | Some i ->
    ( String.sub line 0 i,
      String.sub line (i + 1) (String.length line - i - 1) )
  | None -> (line, "")

let of_string s =
  let lines =
    String.split_on_char '\n' s
    |> List.map String.trim
    |> List.filter (fun l -> l <> "")
  in
  match lines with
  | m :: rest when m = magic -> (
    let protocol = ref "" in
    let sizes = ref [] in
    let seed = ref 0 in
    let intra_us = ref 1_000 in
    let inter_us = ref 50_000 in
    let config = ref "default" in
    let overlay = ref None in
    let spurious = ref 0 in
    let reorder = ref max_int in
    let casts = ref [] in
    let faults = ref [] in
    let mutation = ref None in
    let choices = ref [] in
    let note = ref "" in
    try
      List.iter
        (fun line ->
          let key, rest = cut line in
          match key with
          | "protocol" -> protocol := String.trim rest
          | "sizes" -> sizes := ints_field "sizes" rest
          | "seed" -> seed := int_field "seed" rest
          | "latency" -> (
            match String.split_on_char ' ' (String.trim rest) with
            | [ a; b ] ->
              intra_us := int_field "latency" a;
              inter_us := int_field "latency" b
            | _ -> fail "bad latency line %S" line)
          | "config" -> config := String.trim rest
          | "overlay" -> (
            match Net.Overlay.kind_of_name (String.trim rest) with
            | Some k -> overlay := Some k
            | None -> fail "unknown overlay kind %S" (String.trim rest))
          | "spurious" -> spurious := int_field "spurious" rest
          | "reorder" -> reorder := int_field "reorder" rest
          | "cast" -> (
            let at, rest = cut rest in
            let origin, rest = cut rest in
            let dest, payload = cut rest in
            match payload with
            | "" -> fail "bad cast line %S" line
            | _ ->
              casts :=
                ( int_field "cast at" at,
                  int_field "cast origin" origin,
                  ints_field "cast dest" dest,
                  payload )
                :: !casts)
          | "fault" -> (
            match String.split_on_char ' ' (String.trim rest) with
            | [ a; p ] ->
              faults := (int_field "fault at" a, int_field "fault pid" p) :: !faults
            | _ -> fail "bad fault line %S" line)
          | "mutation" -> (
            match Mutant.spec_of_string rest with
            | Ok spec -> mutation := Some spec
            | Error e -> fail "%s" e)
          | "choices" -> choices := ints_field "choices" rest
          | "note" -> note := rest
          | _ -> fail "unknown line %S" line)
        rest;
      if !protocol = "" then fail "missing protocol line";
      if !sizes = [] then fail "missing sizes line";
      Ok
        {
          protocol = !protocol;
          sizes = !sizes;
          seed = !seed;
          intra_us = !intra_us;
          inter_us = !inter_us;
          config = !config;
          overlay = !overlay;
          spurious_timers = !spurious;
          reorder_bound = !reorder;
          casts = List.rev !casts;
          faults = List.rev !faults;
          mutation = !mutation;
          choices = !choices;
          note = !note;
        }
    with Bad m -> Error m)
  | _ -> Error (Printf.sprintf "not an %s file" magic)

let save path t =
  let oc = open_out path in
  output_string oc (to_string t);
  close_out oc

let load path =
  match
    let ic = open_in path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  with
  | s -> of_string s
  | exception Sys_error e -> Error e

let protocols : (string * (module Amcast.Protocol.S)) list =
  [
    ("a1", (module Amcast.A1));
    ("a2", (module Amcast.A2));
    ("via-broadcast", (module Amcast.Via_broadcast));
    ("fritzke", (module Amcast.Fritzke));
    ("skeen", (module Amcast.Skeen));
    ("generic", (module Amcast.Generic));
    ("ring", (module Amcast.Ring));
    ("scalable", (module Amcast.Scalable));
    ("sequencer", (module Amcast.Sequencer));
    ("optimistic", (module Amcast.Optimistic));
    ("detmerge", (module Amcast.Detmerge));
    ("whitebox", (module Amcast.Whitebox));
    ("flexcast", (module Amcast.Flexcast));
  ]

let config_of_name = function
  | "default" -> Some Amcast.Protocol.Config.default
  | "reference" -> Some Amcast.Protocol.Config.reference
  | "fritzke" -> Some Amcast.Protocol.Config.fritzke
  | "generic-key" ->
    (* The generic protocol under per-key payload conflicts — traces cast
       "k=<key>;..." payloads to make messages conflict. *)
    Some
      {
        Amcast.Protocol.Config.default with
        conflict = Amcast.Conflict.payload_key;
      }
  | _ -> None

let replay ?max_steps t =
  match List.assoc_opt t.protocol protocols with
  | None -> Error (Printf.sprintf "unknown protocol %S" t.protocol)
  | Some pm -> (
    match config_of_name t.config with
    | None -> Error (Printf.sprintf "unknown config preset %S" t.config)
    | Some config ->
      let (module Base : Amcast.Protocol.S) = pm in
      let (module P : Amcast.Protocol.S) =
        match t.mutation with
        | None -> (module Base : Amcast.Protocol.S)
        | Some spec ->
          let module Sp = struct
            let spec = spec
          end in
          let module M = Mutant.Make (Base) (Sp) in
          (module M : Amcast.Protocol.S)
      in
      let module E = Explorer.Make (P) in
      let topology = Net.Topology.make ~sizes:t.sizes in
      (* An overlay line replaces the uniform latency pair with the
         geometry's routed-path delays and hands the overlay to the
         protocol config (FlexCast routes along it); without one the
         classic clique replay is byte-identical to older traces. *)
      let overlay =
        Option.map
          (fun k -> Net.Overlay.of_kind k ~groups:(List.length t.sizes))
          t.overlay
      in
      let latency =
        match overlay with
        | Some ov ->
          Net.Overlay.to_latency ~intra:(Sim_time.of_us t.intra_us) ov
        | None ->
          Net.Latency.uniform
            ~intra:(Sim_time.of_us t.intra_us)
            ~inter:(Sim_time.of_us t.inter_us)
            ()
      in
      let config =
        match overlay with
        | None -> config
        | Some ov -> { config with Amcast.Protocol.Config.overlay = Some ov }
      in
      let workload =
        List.map
          (fun (at, origin, dest, payload) ->
            { Harness.Workload.at = Sim_time.of_us at; origin; dest; payload })
          t.casts
      in
      let faults =
        List.map
          (fun (at, pid) -> Harness.Runner.crash ~at:(Sim_time.of_us at) pid)
          t.faults
      in
      let setup =
        E.make_setup ~seed:t.seed ~latency ~config ~faults
          ~spurious_timers:t.spurious_timers ~reorder_bound:t.reorder_bound
          ~topology workload
      in
      let r = E.replay ?max_steps setup t.choices in
      let order_conflict =
        match config.Amcast.Protocol.Config.conflict with
        | Amcast.Conflict.Total -> None
        | c -> Some c
      in
      Ok (r, Harness.Checker.check_all ?conflict:order_conflict ?overlay r))

(** DPOR-style exhaustive schedule exploration over the DES.

    The explorer runs a depth-first search over the interleavings the
    {!Drive} choice policy admits for one deployment: at each state it
    branches on every eligible choice, reaching terminal (quiescent)
    states that it validates with a checker. Two reductions:

    - {b Sleep sets} (Godefroid): after exploring a subtree rooted at
      choice [a], siblings explored later put [a] to sleep as long as only
      events {e independent} of [a] execute — schedules that merely
      commute [a] past independent events re-derive a Mazurkiewicz trace
      already covered by [a]'s subtree. Two choices are treated as
      independent iff both are process-local event kinds (delivery, timer,
      cast) at {e different} processes; crashes and generic events are
      conservatively dependent with everything (a crash can cancel other
      processes' in-flight messages). This is sound for the delivery
      interleavings of interest, with one documented approximation: timer
      and cast handlers that read the simulated clock may observe
      different readings in commuted schedules (the DES clock advances to
      each executed event's nominal time). The [mc_bench] differential
      asserts naive-vs-POR terminal-outcome equality on the benched
      configurations as an empirical check.
    - {b Fingerprint pruning} (separate flag): subtrees rooted at an
      already-seen {!Fingerprint.state} are skipped. On top of sleep sets
      this is the classic state-caching + sleep-set interaction, which can
      prune schedules a fresh visit would explore (and hashes can in
      principle collide), so it is off by default and meant for
      state-space measurement and smoke-level sweeps, not proofs.

    Counterexamples are reported as choice-index sequences that replay
    bit-identically through {!Make.replay} ({!Harness.Runner} underneath),
    and can be {!Make.minimize}d to their non-default core. *)

val crisp_latency : Net.Latency.t
(** Zero-jitter WAN latencies (1ms intra-group, 50ms inter-group): with no
    jitter the latency model draws nothing from the RNG, so commuted
    schedules keep identical arrival times — the default model-checking
    latency. *)

val digest : Harness.Run_result.t -> int
(** Order-sensitive hash of a run's observable outcome: per-process
    delivery sequences (by message id) plus the crash set. Two terminal
    states with equal digests delivered the same messages in the same
    per-process orders. *)

module Make (P : Amcast.Protocol.S) : sig
  type setup = {
    topology : Net.Topology.t;
    workload : Harness.Workload.t;
    seed : int;
    latency : Net.Latency.t;
    config : Amcast.Protocol.Config.t;
    faults : Harness.Runner.fault list;
    spurious_timers : int;
    reorder_bound : int;  (** {!Drive}'s delay-bounding budget. *)
  }

  val make_setup :
    ?seed:int ->
    ?latency:Net.Latency.t ->
    ?config:Amcast.Protocol.Config.t ->
    ?faults:Harness.Runner.fault list ->
    ?spurious_timers:int ->
    ?reorder_bound:int ->
    topology:Net.Topology.t ->
    Harness.Workload.t ->
    setup
  (** Defaults: seed 0, {!crisp_latency}, default config, no faults,
      spurious-timer budget 0, unlimited reorder bound. Schedule faults [~at:Sim_time.zero]: a
      crash choice executed late would otherwise drag the virtual clock to
      its nominal time. *)

  val replay : ?max_steps:int -> setup -> int list -> Harness.Run_result.t
  (** Deploy, execute the choice sequence (clamped and zero-padded as in
      {!Drive.run}) to quiescence, and snapshot the run. Deterministic:
      equal inputs give bit-identical results. *)

  type opts = {
    por : bool;  (** Sleep-set partial-order reduction. *)
    fingerprints : bool;  (** State-hash pruning (see module doc). *)
    max_interleavings : int;
    max_path_steps : int;  (** Depth bound per schedule. *)
    max_total_steps : int;  (** Global executed-event budget. *)
    check : Harness.Run_result.t -> string list;
        (** Terminal-state oracle; non-empty = violation. *)
    stop_on_violation : bool;
  }

  val default_opts : opts
  (** POR on, fingerprints off, 200k interleavings, 10k steps per path,
      50M total steps, {!Harness.Checker.check_all} with its defaults,
      stop on first violation. *)

  type violation = {
    choices : int list;  (** Schedule reaching the violating terminal. *)
    messages : string list;  (** The checker's verdict there. *)
  }

  type stats = {
    interleavings : int;  (** Terminal states reached. *)
    events : int;  (** Scheduler events executed, including replays. *)
    replays : int;  (** Deployments created (DFS backtracks by replay). *)
    peak_depth : int;
    sleep_prunes : int;
    fingerprint_prunes : int;
    exhaustive : bool;
        (** No budget was hit (and no violation cut the search short):
            every schedule the policy admits was covered. *)
  }

  type outcome = {
    stats : stats;
    outcome_digests : int list;
        (** Sorted distinct {!digest}s of all terminal states — the
            naive-vs-POR equality oracle. *)
    violation : violation option;  (** First violation found, if any. *)
  }

  val explore :
    ?opts:opts ->
    ?on_terminal:(int list -> Harness.Run_result.t -> unit) ->
    setup ->
    outcome
  (** Runs the DFS. [on_terminal] observes every terminal state with the
      schedule that reached it (used to harvest corpus traces). *)

  val minimize :
    ?check:(Harness.Run_result.t -> string list) ->
    ?max_steps:int ->
    setup ->
    int list ->
    int list * string list
  (** [minimize setup choices] greedily shrinks a violating schedule:
      left to right, each non-default choice is set back to 0 if the
      violation (per [check], default {!Harness.Checker.check_all})
      survives; trailing defaults are then dropped. Returns the shrunk
      schedule and its checker verdict. If [choices] does not violate
      [check] in the first place, returns it unshrunk with []. *)
end

(** Seeded protocol mutations for explorer self-tests.

    A mutant wraps a protocol with one deliberate, deterministic bug. The
    harness point is falsifiability: an explorer that never finds anything
    proves little, so the test suite checks that known-broken protocols
    {e are} caught, and that the reported counterexample replays to the
    same verdict. *)

type spec =
  | Drop_receive of { pid : int; nth : int; tag_prefix : string }
      (** Process [pid] silently drops the [nth] (0-based) incoming wire
          message whose trace tag starts with [tag_prefix] — e.g. losing a
          consensus decision. Counting is per-process and deterministic
          for a fixed schedule. *)
  | Drop_deliver of { pid : int; nth : int }
      (** Process [pid] swallows its [nth] (0-based) A-Deliver upcall:
          the protocol believes it delivered, the application never sees
          it — a direct agreement/prefix-order violation. *)

val spec_to_string : spec -> string
val spec_of_string : string -> (spec, string) result
(** Round-trips {!spec_to_string}; [Error] explains the parse failure. *)

module Make (P : Amcast.Protocol.S) (S : sig
  val spec : spec
end) : Amcast.Protocol.S with type wire = P.wire
(** The mutated protocol; its [name] is [P.name] with a mutation suffix. *)

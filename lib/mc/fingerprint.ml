open Des
open Runtime

type t = {
  slots : int; (* one per process + one for generic (actor -1) events *)
  mutable trace_seen : int;
  env_cid : (int, int) Hashtbl.t; (* envelope id -> per-source ordinal *)
  sends_by : int array; (* per-source envelope count *)
  actor_hash : int array;
}

let create ~n_processes =
  {
    slots = n_processes + 1;
    trace_seen = 0;
    env_cid = Hashtbl.create 64;
    sends_by = Array.make n_processes 0;
    actor_hash = Array.make (n_processes + 1) 0x2545f4914f6cdd1d;
  }

(* FNV-1a-style 62-bit rolling hash; [+ 1] keeps zero inputs active. *)
let mix h v = ((h * 0x100000001b3) + v + 1) land max_int

let bump t slot v = t.actor_hash.(slot) <- mix t.actor_hash.(slot) v

let cid t ~src ~env =
  match Hashtbl.find_opt t.env_cid env with
  | Some c -> c
  | None ->
    let c = t.sends_by.(src) in
    t.sends_by.(src) <- c + 1;
    Hashtbl.add t.env_cid env c;
    c

let note_entry t (e : Trace.entry) =
  match e with
  | Send { src; dst; tag; env; _ } ->
    let c = cid t ~src ~env in
    bump t src 1;
    bump t src dst;
    bump t src (Hashtbl.hash tag);
    bump t src c
  | Receive { src; dst; env; _ } ->
    (* The matching Send always precedes the Receive in append order, so
       the envelope's canonical id exists by now. *)
    let c = cid t ~src ~env in
    bump t dst 2;
    bump t dst src;
    bump t dst c
  | Cast { pid; id; _ } ->
    bump t pid 3;
    bump t pid id.Msg_id.origin;
    bump t pid id.Msg_id.seq
  | Deliver { pid; id; _ } ->
    bump t pid 4;
    bump t pid id.Msg_id.origin;
    bump t pid id.Msg_id.seq
  | Crash { pid; _ } -> bump t pid 5
  | Note _ -> ()

let kind_code tag =
  match Scheduler.Tag.kind tag with
  | `Generic -> 6
  | `Deliver -> 7
  | `Timer -> 8
  | `Crash -> 9
  | `Cast -> 10

let note_step t ~tag ~trace =
  let actor = Scheduler.Tag.actor tag in
  let slot = if actor < 0 then t.slots - 1 else actor in
  (* Mix the step itself (its kind) so steps with no trace output — e.g. a
     timer whose guard was false — still distinguish states. *)
  bump t slot (kind_code tag);
  let n = Trace.length trace in
  let fresh = n - t.trace_seen in
  if fresh > 0 then begin
    let rec take acc k l =
      if k = 0 then acc
      else
        match l with [] -> acc | e :: rest -> take (e :: acc) (k - 1) rest
    in
    (* newest-first suffix, re-reversed to append order *)
    let entries = take [] fresh (Trace.entries_rev trace) in
    List.iter (note_entry t) entries;
    t.trace_seen <- n
  end

let state t =
  let h = ref 0x9e3779b97f4a7c1 in
  for i = 0 to t.slots - 1 do
    h := mix !h t.actor_hash.(i)
  done;
  !h land max_int

(** Controlled stepping of a deployment's scheduler.

    The model checker replaces the scheduler's time-ordered pop with an
    enumerable {e choice set}: at each step the adversary picks one of the
    currently eligible events. The policy separates two classes by their
    {!Des.Scheduler.Tag}:

    - {e anytime} events (message deliveries, crashes) model asynchrony the
      adversary controls — a pending delivery may be executed at any step,
      regardless of its nominal arrival time;
    - {e timed} events (timers, workload casts, generic actions) are
      anchored to the local clocks, which the adversary does not control:
      only the earliest pending timed event (in [(time, seq)] order) is
      eligible, so timed events execute in timestamp order among
      themselves.

    Choices are listed in canonical [(time, seq)] order, so {e choice 0 is
    exactly the event the normal scheduler would pop}: an all-zeros choice
    sequence replays the natural run, and a counterexample is fully
    described by its non-default prefix ({!run} pads with zeros).

    Breadth is bounded by a {e reorder bound} (delay-bounded scheduling):
    each execution of a non-default choice (index > 0 — the adversary
    delays every eligible event ahead of it) spends one unit of a per-path
    budget; once spent, only the default choice remains eligible. With an
    unlimited bound (the default) the admitted schedule space is every
    interleaving of pending anytime events — combinatorial in the number
    of messages per process; with bound [k] it is every schedule reachable
    with at most [k] scheduling deviations, which is what makes exhaustive
    exploration of realistic configurations tractable.

    Timeout races are bounded by a {e spurious-timer budget}: a timer
    choice taken while deliveries are still pending is "spurious" (the
    timeout fired before the message it guards). Each path may contain at
    most [spurious_timers] such firings; past the budget, timer choices are
    suppressed whenever an anytime choice exists. Timers remain eligible
    when they are all that is left, so runs always drain. The suppression
    state is a pure function of the choice prefix, keeping replay
    deterministic. *)

type choice = {
  handle : Des.Scheduler.handle;
  time : Des.Sim_time.t;  (** Nominal (scheduled) time of the event. *)
  tag : Des.Scheduler.Tag.t;
}

type t

val create :
  ?spurious_timers:int -> ?reorder_bound:int -> Des.Scheduler.t -> t
(** A driver over [sched]. [spurious_timers] (default 0) is the per-path
    budget of timer firings taken while anytime events were pending;
    [reorder_bound] (default unlimited) the per-path budget of
    non-default choices. *)

val choices : t -> choice list
(** The current choice set, in canonical [(time, seq)] order. Empty iff
    the deployment is quiescent. *)

val step : t -> int -> choice
(** [step t i] executes choice [i] of {!choices} and returns it. Indices
    out of range are clamped to the valid interval (so any [int list] is a
    runnable schedule — used by the random-schedule differential tests);
    on a clamped index the {e clamped} choice is executed.
    @raise Invalid_argument if the deployment is quiescent. *)

val steps : t -> int
(** Choices executed so far. *)

val finished : t -> bool

val run : ?max_steps:int -> t -> int list -> int list
(** [run t cs] executes the choices [cs] (clamped as in {!step}), then
    pads with choice 0 until the deployment drains; returns the full
    executed index sequence (after clamping). [max_steps] (default
    200_000) bounds runaway schedules.
    @raise Failure if the deployment is still live after [max_steps]. *)

open Des
open Net
open Runtime

let crisp_latency =
  Latency.uniform ~intra:(Sim_time.of_ms 1) ~inter:(Sim_time.of_ms 50) ()

let mix h v = ((h * 0x100000001b3) + v + 1) land max_int

let digest (r : Harness.Run_result.t) =
  let h = ref 17 in
  let n = Topology.n_processes r.topology in
  for pid = 0 to n - 1 do
    h := mix !h (-1);
    List.iter
      (fun (m : Amcast.Msg.t) ->
        h := mix !h m.id.Msg_id.origin;
        h := mix !h m.id.Msg_id.seq)
      (Harness.Run_result.sequence_of r pid)
  done;
  List.iter
    (fun pid -> h := mix !h (1000 + pid))
    (List.sort Int.compare r.crashed);
  !h

(* Independence for sleep sets: process-local event kinds at different
   processes commute; crashes and generic events are conservatively
   dependent with everything. *)
let commutes (a : Drive.choice) (b : Drive.choice) =
  let local t =
    match Scheduler.Tag.kind t with
    | `Deliver | `Timer | `Cast -> true
    | `Crash | `Generic -> false
  in
  local a.Drive.tag && local b.Drive.tag
  && Scheduler.Tag.actor a.Drive.tag <> Scheduler.Tag.actor b.Drive.tag

module Make (P : Amcast.Protocol.S) = struct
  module R = Harness.Runner.Make (P)

  type setup = {
    topology : Topology.t;
    workload : Harness.Workload.t;
    seed : int;
    latency : Latency.t;
    config : Amcast.Protocol.Config.t;
    faults : Harness.Runner.fault list;
    spurious_timers : int;
    reorder_bound : int;
  }

  let make_setup ?(seed = 0) ?(latency = crisp_latency)
      ?(config = Amcast.Protocol.Config.default) ?(faults = [])
      ?(spurious_timers = 0) ?(reorder_bound = max_int) ~topology workload =
    {
      topology;
      workload;
      seed;
      latency;
      config;
      faults;
      spurious_timers;
      reorder_bound;
    }

  let fresh s =
    let d =
      R.deploy ~seed:s.seed ~latency:s.latency ~config:s.config
        ~faults:s.faults s.topology
    in
    Network.set_explode_fanout (Engine.network (R.engine d)) true;
    ignore (R.schedule d s.workload);
    let drv =
      Drive.create ~spurious_timers:s.spurious_timers
        ~reorder_bound:s.reorder_bound
        (Engine.scheduler (R.engine d))
    in
    (d, drv)

  let replay ?max_steps s choices =
    let d, drv = fresh s in
    ignore (Drive.run ?max_steps drv choices);
    R.run_deployment d

  type opts = {
    por : bool;
    fingerprints : bool;
    max_interleavings : int;
    max_path_steps : int;
    max_total_steps : int;
    check : Harness.Run_result.t -> string list;
    stop_on_violation : bool;
  }

  let default_opts =
    {
      por = true;
      fingerprints = false;
      max_interleavings = 200_000;
      max_path_steps = 10_000;
      max_total_steps = 50_000_000;
      check = (fun r -> Harness.Checker.check_all r);
      stop_on_violation = true;
    }

  type violation = { choices : int list; messages : string list }

  type stats = {
    interleavings : int;
    events : int;
    replays : int;
    peak_depth : int;
    sleep_prunes : int;
    fingerprint_prunes : int;
    exhaustive : bool;
  }

  type outcome = {
    stats : stats;
    outcome_digests : int list;
    violation : violation option;
  }

  type ctx = {
    o : opts;
    s : setup;
    on_terminal : (int list -> Harness.Run_result.t -> unit) option;
    seen : (int, unit) Hashtbl.t;
    outcomes : (int, unit) Hashtbl.t;
    mutable interleavings : int;
    mutable events : int;
    mutable replays : int;
    mutable peak_depth : int;
    mutable sleep_prunes : int;
    mutable fingerprint_prunes : int;
    mutable truncated : bool;
    mutable violation : violation option;
  }

  exception Stop

  let exec ctx drv fp trace i =
    if ctx.events >= ctx.o.max_total_steps then begin
      ctx.truncated <- true;
      raise Stop
    end;
    let c = Drive.step drv i in
    ctx.events <- ctx.events + 1;
    Fingerprint.note_step fp ~tag:c.Drive.tag ~trace;
    c

  (* Backtracking is replay-based: the DES has no state snapshots, so each
     non-first sibling re-deploys and fast-forwards through the prefix.
     Deterministic handle allocation makes the recorded handles valid
     across replays of the same prefix. *)
  let spawn ctx forward_prefix =
    ctx.replays <- ctx.replays + 1;
    let d, drv = fresh ctx.s in
    let fp =
      Fingerprint.create ~n_processes:(Topology.n_processes ctx.s.topology)
    in
    let trace = Engine.trace (R.engine d) in
    List.iter (fun i -> ignore (exec ctx drv fp trace i)) forward_prefix;
    (d, drv, fp)

  let rec dfs ctx d drv fp depth prefix_rev sleep =
    if depth > ctx.peak_depth then ctx.peak_depth <- depth;
    let cs = Drive.choices drv in
    if cs = [] then begin
      ctx.interleavings <- ctx.interleavings + 1;
      let r = R.run_deployment d in
      Hashtbl.replace ctx.outcomes (digest r) ();
      (match ctx.on_terminal with
      | Some f -> f (List.rev prefix_rev) r
      | None -> ());
      let msgs = ctx.o.check r in
      if msgs <> [] then begin
        if ctx.violation = None then
          ctx.violation <-
            Some { choices = List.rev prefix_rev; messages = msgs };
        if ctx.o.stop_on_violation then raise Stop
      end;
      if ctx.interleavings >= ctx.o.max_interleavings then begin
        ctx.truncated <- true;
        raise Stop
      end
    end
    else if depth >= ctx.o.max_path_steps then ctx.truncated <- true
    else
      let proceed =
        (not ctx.o.fingerprints)
        ||
        let st = Fingerprint.state fp in
        if Hashtbl.mem ctx.seen st then begin
          ctx.fingerprint_prunes <- ctx.fingerprint_prunes + 1;
          false
        end
        else begin
          Hashtbl.add ctx.seen st ();
          true
        end
      in
      if proceed then begin
        let slept c =
          List.exists (fun sc -> sc.Drive.handle = c.Drive.handle) sleep
        in
        let avail =
          List.mapi (fun idx c -> (idx, c)) cs
          |> List.filter (fun (_, c) -> not (slept c))
        in
        if avail = [] then ctx.sleep_prunes <- ctx.sleep_prunes + 1
        else begin
          let explored = ref [] in
          let first = ref true in
          List.iter
            (fun (idx, c) ->
              let d', drv', fp' =
                if !first then begin
                  first := false;
                  (d, drv, fp)
                end
                else spawn ctx (List.rev prefix_rev)
              in
              let trace' = Engine.trace (R.engine d') in
              ignore (exec ctx drv' fp' trace' idx);
              let sleep' =
                if ctx.o.por then
                  List.filter (fun sc -> commutes c sc) (sleep @ !explored)
                else []
              in
              dfs ctx d' drv' fp' (depth + 1) (idx :: prefix_rev) sleep';
              explored := c :: !explored)
            avail
        end
      end

  let explore ?(opts = default_opts) ?on_terminal s =
    let ctx =
      {
        o = opts;
        s;
        on_terminal;
        seen = Hashtbl.create 4096;
        outcomes = Hashtbl.create 256;
        interleavings = 0;
        events = 0;
        replays = 0;
        peak_depth = 0;
        sleep_prunes = 0;
        fingerprint_prunes = 0;
        truncated = false;
        violation = None;
      }
    in
    (try
       ctx.replays <- 1;
       let d, drv = fresh s in
       let fp =
         Fingerprint.create ~n_processes:(Topology.n_processes s.topology)
       in
       dfs ctx d drv fp 0 [] []
     with Stop -> ());
    let exhaustive =
      (not ctx.truncated)
      && (ctx.violation = None || not opts.stop_on_violation)
    in
    {
      stats =
        {
          interleavings = ctx.interleavings;
          events = ctx.events;
          replays = ctx.replays;
          peak_depth = ctx.peak_depth;
          sleep_prunes = ctx.sleep_prunes;
          fingerprint_prunes = ctx.fingerprint_prunes;
          exhaustive;
        };
      outcome_digests =
        Hashtbl.fold (fun k () acc -> k :: acc) ctx.outcomes []
        |> List.sort Int.compare;
      violation = ctx.violation;
    }

  let minimize ?check ?max_steps s choices =
    let check =
      match check with
      | Some f -> f
      | None -> fun r -> Harness.Checker.check_all r
    in
    let expand cs =
      let d, drv = fresh s in
      let executed = Drive.run ?max_steps drv cs in
      (executed, R.run_deployment d)
    in
    let full, r0 = expand choices in
    if check r0 = [] then (choices, [])
    else begin
      let cur = ref (Array.of_list full) in
      let len = Array.length !cur in
      for k = 0 to len - 1 do
        if !cur.(k) <> 0 then begin
          let cand = Array.copy !cur in
          cand.(k) <- 0;
          let _, r = expand (Array.to_list cand) in
          if check r <> [] then cur := cand
        end
      done;
      let l = ref (Array.length !cur) in
      while !l > 0 && !cur.(!l - 1) = 0 do
        decr l
      done;
      let final = Array.to_list (Array.sub !cur 0 !l) in
      let _, r = expand final in
      (final, check r)
    end
end

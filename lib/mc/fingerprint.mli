(** Canonical state fingerprints for interleaving deduplication.

    Two interleavings that merely commute independent events reach the
    same protocol state; the explorer prunes revisits by hashing a
    {e canonical} view of the run so far: one history stream per actor
    (process, plus one slot for generic events), insensitive to how the
    streams interleave globally.

    Canonicalisation rules:
    - every trace entry is attributed to its natural actor (sends to the
      source, receives to the destination, casts/deliveries/crashes to
      their process) and mixed into that actor's rolling hash, so the
      global interleaving of independent steps does not matter while the
      per-actor order does;
    - envelope ids (a global counter, interleaving-dependent) are replaced
      by the canonical message id [(src, per-source send ordinal)];
    - event {e times} and [Note] entries are excluded — commuted schedules
      reach the same state at different clock readings.

    The fingerprint is a 62-bit hash, not the state itself: pruning on it
    assumes no collisions (astronomically unlikely at model-checking
    scales, but unsound in principle), which is one reason fingerprint
    pruning is a separate opt-in flag in the explorer. *)

type t

val create : n_processes:int -> t
(** A fresh fingerprint shadow for a deployment of [n_processes]. *)

val note_step :
  t -> tag:Des.Scheduler.Tag.t -> trace:Runtime.Trace.t -> unit
(** Records one executed scheduler choice: mixes the choice's tag into its
    actor's stream and consumes the trace entries appended since the last
    call. Must be called after {e every} {!Drive.step} on the deployment,
    with the deployment's live trace. *)

val state : t -> int
(** The current state hash (combines all actor streams). *)

type spec =
  | Drop_receive of { pid : int; nth : int; tag_prefix : string }
  | Drop_deliver of { pid : int; nth : int }

let spec_to_string = function
  | Drop_receive { pid; nth; tag_prefix } ->
    Printf.sprintf "drop-receive %d %d %s" pid nth tag_prefix
  | Drop_deliver { pid; nth } -> Printf.sprintf "drop-deliver %d %d" pid nth

let spec_of_string s =
  let int name v =
    match int_of_string_opt v with
    | Some i -> Ok i
    | None -> Error (Printf.sprintf "mutation: bad %s %S" name v)
  in
  match String.split_on_char ' ' (String.trim s) with
  | [ "drop-receive"; pid; nth; tag_prefix ] -> (
    match (int "pid" pid, int "nth" nth) with
    | Ok pid, Ok nth -> Ok (Drop_receive { pid; nth; tag_prefix })
    | Error e, _ | _, Error e -> Error e)
  | [ "drop-deliver"; pid; nth ] -> (
    match (int "pid" pid, int "nth" nth) with
    | Ok pid, Ok nth -> Ok (Drop_deliver { pid; nth })
    | Error e, _ | _, Error e -> Error e)
  | _ -> Error (Printf.sprintf "mutation: cannot parse %S" s)

module Make (P : Amcast.Protocol.S) (S : sig
  val spec : spec
end) =
struct
  type wire = P.wire
  type t = { inner : P.t; self : Net.Topology.pid; mutable matched : int }

  let name =
    P.name ^ "+"
    ^
    match S.spec with
    | Drop_receive _ -> "drop-receive"
    | Drop_deliver _ -> "drop-deliver"

  let tag = P.tag

  let create ~services ~config ~deliver =
    let self = services.Runtime.Services.self in
    let delivered = ref 0 in
    let deliver' =
      match S.spec with
      | Drop_deliver { pid; nth } when pid = self ->
        fun m ->
          let k = !delivered in
          incr delivered;
          if k <> nth then deliver m
      | _ -> deliver
    in
    {
      inner = P.create ~services ~config ~deliver:deliver';
      self;
      matched = 0;
    }

  let cast t m = P.cast t.inner m

  let on_receive t ~src w =
    match S.spec with
    | Drop_receive { pid; nth; tag_prefix }
      when pid = t.self && String.starts_with ~prefix:tag_prefix (P.tag w) ->
      let k = t.matched in
      t.matched <- k + 1;
      if k <> nth then P.on_receive t.inner ~src w
    | _ -> P.on_receive t.inner ~src w

  let stats t = P.stats t.inner
end

(** Replayable counterexample traces.

    A trace file captures everything needed to reproduce one explored
    schedule bit-identically: the protocol (by registry name), topology
    sizes, seed, zero-jitter latency pair, config preset, spurious-timer
    budget, workload, faults, optional seeded mutation and the choice
    sequence. The format is line-based and versioned
    ([amcast-mc-trace/v1]) so counterexamples can be checked into the
    corpus, attached to CI failures and replayed by [amcast_mc --replay].

    {v
    amcast-mc-trace/v1
    protocol a1
    sizes 2,2
    seed 0
    latency 1000 50000
    config default
    spurious 0
    cast 1000 0 0,1 m
    fault 0 3
    mutation drop-deliver 1 0
    choices 2,0,1
    note stage-skip path counterexample
    v} *)

type t = {
  protocol : string;  (** Registry name, e.g. ["a1"]. *)
  sizes : int list;  (** Group sizes ({!Net.Topology.make}). *)
  seed : int;
  intra_us : int;  (** Intra-group latency, microseconds, no jitter. *)
  inter_us : int;  (** Inter-group latency, microseconds, no jitter. *)
  config : string;  (** Config preset: "default" | "reference" | "fritzke". *)
  overlay : Net.Overlay.kind option;
      (** Overlay geometry ([overlay hub] line; absent = clique model,
          byte-identical to older traces). On replay the latency matrix
          becomes the overlay's routed-path delays
          ({!Net.Overlay.to_latency}, built over [sizes]'s group count at
          [intra_us]) and the protocol config carries the overlay, so
          FlexCast traces reproduce their routing bit-identically. *)
  spurious_timers : int;  (** {!Drive} budget. *)
  reorder_bound : int;
      (** {!Drive}'s delay bound; [max_int] (the default) means unlimited
          and is omitted from the file. *)
  casts : (int * int * int list * string) list;
      (** (at_us, origin pid, destination gids, payload), in cast order. *)
  faults : (int * int) list;  (** (at_us, pid) clean crash-stops. *)
  mutation : Mutant.spec option;
  choices : int list;  (** The schedule; zero-padded on replay. *)
  note : string;  (** Free-form provenance line. *)
}

val make :
  ?seed:int ->
  ?intra_us:int ->
  ?inter_us:int ->
  ?config:string ->
  ?overlay:Net.Overlay.kind ->
  ?spurious_timers:int ->
  ?reorder_bound:int ->
  ?casts:(int * int * int list * string) list ->
  ?faults:(int * int) list ->
  ?mutation:Mutant.spec ->
  ?choices:int list ->
  ?note:string ->
  protocol:string ->
  sizes:int list ->
  unit ->
  t
(** Defaults: seed 0, 1ms intra / 50ms inter, "default" config, budget 0,
    no casts, no faults, no mutation, empty (= natural) schedule. *)

val to_string : t -> string
val of_string : string -> (t, string) result
(** Round-trips {!to_string}; [Error] names the offending line. *)

val save : string -> t -> unit
val load : string -> (t, string) result

val protocols : (string * (module Amcast.Protocol.S)) list
(** The replay registry: every multicast/broadcast protocol of the
    library by its [amcast_soak] name. *)

val replay : ?max_steps:int -> t -> (Harness.Run_result.t * string list, string) result
(** Resolves the protocol (applying the mutation, if any), replays the
    schedule through {!Explorer.Make.replay} and runs
    {!Harness.Checker.check_all} with its defaults on the result — except
    that a config preset carrying a non-total conflict relation (the
    ["generic-key"] preset) switches the ordering property to the relaxed
    {!Harness.Checker.conflict_order}. [Ok (run, violations)] — an empty
    violation list means the replayed schedule satisfies the checked
    properties. *)

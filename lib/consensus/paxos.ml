open Des
open Net

type 'v msg =
  | Suggest of { instance : int; value : 'v }
      (* Proposal forwarding: a non-coordinator hands its input to the
         current coordinator so that a coordinator with no local input can
         still drive the instance. *)
  | Prepare of { instance : int; ballot : int }
  | Promise of {
      instance : int;
      ballot : int;
      accepted : (int * 'v) option;
    }
  | Accept of { instance : int; ballot : int; value : 'v }
  | Accepted of { instance : int; ballot : int; wm : int }
      (* [wm]: the sender's decided-prefix watermark, piggybacked so the
         coordinator can compute a safe garbage-collection floor. *)
  | Decide of { instance : int; value : 'v; floor : int }
      (* [floor]: every participant may prune decided instances up to
         [min floor own_watermark] (fast lanes only; 0 in reference mode). *)
  | Lease_prepare of { ballot : int }
      (* Multi-Paxos coordinator lease: one prepare covering ALL instances.
         A majority of promises lets the leader skip phase 1 per instance. *)
  | Lease_promise of { ballot : int; accepted : (int * int * 'v) list }
      (* Per-instance accepted state ((instance, ballot, value)) of the
         promising acceptor, for every undecided instance it knows. *)

let tag = function
  | Suggest _ -> "cons.suggest"
  | Prepare _ -> "cons.prepare"
  | Promise _ -> "cons.promise"
  | Accept _ -> "cons.accept"
  | Accepted _ -> "cons.accepted"
  | Decide _ -> "cons.decide"
  | Lease_prepare _ -> "cons.lease_prepare"
  | Lease_promise _ -> "cons.lease_promise"

let pp_msg ppf m =
  match m with
  | Suggest { instance; _ } -> Fmt.pf ppf "suggest(i%d)" instance
  | Prepare { instance; ballot } ->
    Fmt.pf ppf "prepare(i%d,b%d)" instance ballot
  | Promise { instance; ballot; accepted } ->
    Fmt.pf ppf "promise(i%d,b%d,%s)" instance ballot
      (match accepted with None -> "-" | Some (b, _) -> Fmt.str "acc@%d" b)
  | Accept { instance; ballot; _ } ->
    Fmt.pf ppf "accept(i%d,b%d)" instance ballot
  | Accepted { instance; ballot; wm } ->
    Fmt.pf ppf "accepted(i%d,b%d,wm%d)" instance ballot wm
  | Decide { instance; floor; _ } ->
    Fmt.pf ppf "decide(i%d,f%d)" instance floor
  | Lease_prepare { ballot } -> Fmt.pf ppf "lease_prepare(b%d)" ballot
  | Lease_promise { ballot; accepted } ->
    Fmt.pf ppf "lease_promise(b%d,%d inst)" ballot (List.length accepted)

module Int_tbl = Hashtbl.Make (Int)

type 'v instance = {
  mutable proposal : 'v option; (* local input or adopted suggestion *)
  mutable suggested : bool; (* we already forwarded our input *)
  mutable promised : int; (* acceptor: highest ballot promised *)
  mutable accepted : (int * 'v) option; (* acceptor: last accepted *)
  mutable decided : 'v option;
  (* Coordinator state for the ballot we lead (leading >= 0). *)
  mutable leading : int;
  mutable phase1_done : bool;
  mutable pushed : bool; (* Accept for ballot [leading] was sent *)
  promises : (Topology.pid, (int * 'v) option) Hashtbl.t;
  votes : (int, (Topology.pid, unit) Hashtbl.t) Hashtbl.t;
  ballot_values : (int, 'v) Hashtbl.t;
  mutable timer : int option;
  mutable engaged : bool;
}

type ('v, 'w) t = {
  services : 'w Runtime.Services.t;
  wrap : 'v msg -> 'w;
  participants : Topology.pid array; (* sorted *)
  participants_list : Topology.pid list; (* cached Array.to_list *)
  self_rank : int; (* cached rank of the local process; -1 if not one *)
  detector : Fd.Detector.t;
  timeout : Sim_time.t;
  fast : bool;
  on_decide : instance:int -> 'v -> unit;
  instances : 'v instance Int_tbl.t;
  mutable highest_decided : int option;
  (* --- fast-lane state (unused in reference mode) --- *)
  mutable decided_upto : int;
      (* watermark: every instance <= this is locally decided or (per the
         host's [note_consumed] contract) will never be proposed *)
  mutable pruned_upto : int; (* instances <= this removed from the table *)
  mutable remote_floor : int; (* highest floor advertised in a [Decide] *)
  peer_wm : int array; (* per-rank watermark gleaned from [Accepted] *)
  mutable lease_ballot : int; (* ballot we hold a coordinator lease for *)
  mutable lease_pending : int; (* ballot we are acquiring a lease for *)
  lease_promises : (Topology.pid, unit) Hashtbl.t;
  mutable promise_floor : int;
      (* acceptor: lease promise, applies to every instance *)
  mutable max_ballot_seen : int;
}

let n t = Array.length t.participants
let majority t = (n t / 2) + 1

let rank t pid =
  let r = ref (-1) in
  Array.iteri (fun i p -> if p = pid then r := i) t.participants;
  !r

let leader t = Fd.Detector.leader t.detector t.participants_list
let self t = t.services.Runtime.Services.self
let is_leader t = leader t = Some (self t)
let coordinator_of t ballot = t.participants.(ballot mod n t)

(* Witness a ballot owned by someone else's message: a strictly higher
   ballot in the system invalidates any coordinator lease we hold or are
   acquiring (its phase-1 guarantee no longer covers new instances). *)
let note_ballot t b =
  if b > t.max_ballot_seen then t.max_ballot_seen <- b;
  if t.lease_ballot >= 0 && b > t.lease_ballot then t.lease_ballot <- -1;
  if t.lease_pending >= 0 && b > t.lease_pending then t.lease_pending <- -1

let get_instance t i =
  match Int_tbl.find_opt t.instances i with
  | Some inst -> inst
  | None ->
    let inst =
      {
        proposal = None;
        suggested = false;
        promised = -1;
        accepted = None;
        decided = None;
        leading = -1;
        phase1_done = false;
        pushed = false;
        promises = Hashtbl.create 4;
        votes = Hashtbl.create 4;
        ballot_values = Hashtbl.create 4;
        timer = None;
        engaged = false;
      }
    in
    Int_tbl.replace t.instances i inst;
    inst

(* Acceptor's effective promise: the per-instance one, raised to the lease
   floor in fast mode (a lease promise covers every instance). *)
let eff_promised t inst =
  if t.fast then max inst.promised t.promise_floor else inst.promised

let send_participants t m =
  let w = t.wrap m in
  if t.fast then Runtime.Services.send_multi t.services t.participants_list w
  else Runtime.Services.send_all t.services t.participants_list w

let cancel_timer t inst =
  match inst.timer with
  | Some h ->
    t.services.cancel_timer h;
    inst.timer <- None
  | None -> ()

(* Contiguous decided prefix (instances are numbered from 1 by the hosts
   that enable fast lanes; gaps stall the watermark until the host calls
   [note_consumed]). *)
let advance_decided_upto t =
  let continue = ref true in
  while !continue do
    match Int_tbl.find_opt t.instances (t.decided_upto + 1) with
    | Some inst when inst.decided <> None ->
      t.decided_upto <- t.decided_upto + 1
    | _ -> continue := false
  done

(* Highest instance every non-suspected participant is known to have
   decided past — the only safe pruning bound: under an accurate detector
   no live peer can still need an instance at or below it. *)
let gc_floor t =
  let m = ref t.decided_upto in
  Array.iteri
    (fun r p ->
      if p <> self t && not (t.detector.Fd.Detector.suspects p) then
        m := min !m t.peer_wm.(r))
    t.participants;
  min t.decided_upto (max !m t.remote_floor)

let maybe_gc t =
  if t.fast then begin
    let f = gc_floor t in
    while t.pruned_upto < f do
      let i = t.pruned_upto + 1 in
      (* An instance can still carry a live timer here when a pipelining
         host abandoned it mid-flight; dropping the record without
         cancelling would leave an orphan timer re-arming forever. *)
      (match Int_tbl.find_opt t.instances i with
      | Some inst -> cancel_timer t inst
      | None -> ());
      Int_tbl.remove t.instances i;
      t.pruned_upto <- i
    done
  end

let decide ?(announce = true) t i inst v =
  if inst.decided = None then begin
    inst.decided <- Some v;
    cancel_timer t inst;
    (match t.highest_decided with
    | Some h when h >= i -> ()
    | _ -> t.highest_decided <- Some i);
    if t.fast then advance_decided_upto t;
    if announce then
      (* Reference mode: one Decide broadcast per decider, then silence —
         keeps the protocol halting while guaranteeing uniform agreement
         under lossy crashes. Fast mode: only the coordinator (the unique
         vote counter) announces; stragglers recover through their timers
         and point-to-point Decide replies. *)
      send_participants t
        (Decide
           { instance = i; value = v; floor = (if t.fast then gc_floor t else 0) });
    t.on_decide ~instance:i v;
    maybe_gc t
  end

(* Value a coordinator must push after phase 1: the accepted value carried
   by the highest ballot among the promises, else its own input. *)
let choose_value inst =
  let best =
    Hashtbl.fold
      (fun _ acc best ->
        match (acc, best) with
        | None, b -> b
        | Some (b, v), Some (b', _) when b > b' -> Some (b, v)
        | Some _, Some _ -> best
        | Some (b, v), None -> Some (b, v))
      inst.promises None
  in
  match best with Some (_, v) -> Some v | None -> inst.proposal

let votes_for inst ballot =
  match Hashtbl.find_opt inst.votes ballot with
  | Some tbl -> tbl
  | None ->
    let tbl = Hashtbl.create 4 in
    Hashtbl.replace inst.votes ballot tbl;
    tbl

let maybe_decide_from_votes t i inst ballot =
  if inst.decided = None && Hashtbl.length (votes_for inst ballot) >= majority t
  then
    match Hashtbl.find_opt inst.ballot_values ballot with
    | Some v -> decide t i inst v
    | None -> () (* value not learned yet; the Accept will arrive *)

let accept_locally t i inst ~ballot ~value =
  inst.promised <- max inst.promised ballot;
  inst.accepted <- Some (ballot, value);
  Hashtbl.replace inst.ballot_values ballot value;
  inst.engaged <- true;
  let m = Accepted { instance = i; ballot; wm = t.decided_upto } in
  if t.fast then
    (* Single-shot vote: only the ballot's coordinator counts votes and
       announces, so an instance costs n Accepted messages, not n². *)
    t.services.Runtime.Services.send ~dst:(coordinator_of t ballot) (t.wrap m)
  else send_participants t m

let start_accept_phase t i inst ~value =
  inst.pushed <- true;
  Hashtbl.replace inst.ballot_values inst.leading value;
  send_participants t (Accept { instance = i; ballot = inst.leading; value })

(* Push the accept phase if phase 1 is complete and a value is available. *)
let try_push t i inst =
  if inst.phase1_done && not inst.pushed && inst.decided = None then
    match choose_value inst with
    | Some v -> start_accept_phase t i inst ~value:v
    | None -> ()

(* Take over coordination with a fresh ballot owned by the local process. *)
let start_new_ballot t i inst =
  if inst.decided = None then begin
    let r = t.self_rank in
    if r >= 0 then begin
      let floor = max inst.promised inst.leading in
      let floor =
        if t.fast then max floor (max t.promise_floor t.max_ballot_seen)
        else floor
      in
      let b =
        (* smallest ballot > floor with b mod n = r *)
        let rec find k =
          let candidate = (k * n t) + r in
          if candidate > floor then candidate else find (k + 1)
        in
        find 0
      in
      inst.leading <- b;
      inst.phase1_done <- false;
      inst.pushed <- false;
      Hashtbl.reset inst.promises;
      if b = 0 then begin
        (* Ballot 0 fast path: no smaller ballot exists, so phase 1 is
           vacuous; push straight away if we have an input. *)
        inst.phase1_done <- true;
        try_push t i inst
      end
      else send_participants t (Prepare { instance = i; ballot = b })
    end
  end

let suggest_to_leader t i inst =
  match leader t with
  | Some l when l <> self t -> (
    let v =
      match inst.proposal with
      | Some _ as v -> v
      | None ->
        (* Fast mode: an acceptor stuck with accepted-but-undecided state
           (e.g. the coordinator's Decide was lost) re-offers that value so
           the leader can finish the instance — in reference mode the
           all-to-all Accepted/Decide pattern covers this case. *)
        if t.fast then Option.map snd inst.accepted else None
    in
    match v with
    | Some v ->
      inst.suggested <- true;
      t.services.send ~dst:l (t.wrap (Suggest { instance = i; value = v }))
    | None -> ())
  | _ -> ()

let rec arm_timer t i inst =
  if inst.timer = None && inst.decided = None then
    inst.timer <-
      Some
        (t.services.set_timer ~after:t.timeout (fun () ->
             inst.timer <- None;
             if inst.decided = None then begin
               if is_leader t then begin
                 (* A stalled lease acquisition must not block recovery:
                    abandon it and fall back to a classic per-instance
                    ballot (a later drive re-acquires the lease). *)
                 if t.fast && t.lease_pending >= 0 then t.lease_pending <- -1;
                 start_new_ballot t i inst
               end
               else suggest_to_leader t i inst;
               arm_timer t i inst
             end))

(* --- Multi-Paxos coordinator lease (fast mode only) ------------------- *)

(* Drive an instance under the held lease: phase 1 is already covered by
   the lease's majority promise, so push the accept phase directly. Falls
   back to a classic ballot when this instance has individually promised
   past the lease. *)
let lease_push t i inst =
  if inst.decided = None && t.lease_ballot >= 0 then begin
    let b = t.lease_ballot in
    if b >= max inst.promised inst.leading then begin
      if not (inst.pushed && inst.leading = b) then begin
        inst.leading <- b;
        inst.phase1_done <- true;
        inst.pushed <- false;
        if inst.accepted <> None then
          Hashtbl.replace inst.promises (self t) inst.accepted;
        (match choose_value inst with
        | Some v -> start_accept_phase t i inst ~value:v
        | None -> ());
        arm_timer t i inst
      end
    end
    else start_new_ballot t i inst
  end

(* Hold (or start acquiring) a coordinator lease. Returns true iff a lease
   is currently held; false while an acquisition is in flight (instances
   are driven when the grant arrives, and per-instance timers cover loss). *)
let ensure_lease t =
  t.fast
  && (t.lease_ballot >= 0
     ||
     if t.lease_pending >= 0 || t.self_rank < 0 || not (is_leader t) then
       false
     else begin
       let floor = max t.max_ballot_seen t.promise_floor in
       let b =
         let rec find k =
           let candidate = (k * n t) + t.self_rank in
           if candidate > floor then candidate else find (k + 1)
         in
         find 0
       in
       if b = 0 then begin
         (* Vacuous lease: no smaller ballot can exist anywhere, so the
            phase-1 guarantee holds without any messages — this generalizes
            the per-instance ballot-0 fast path. *)
         t.lease_ballot <- 0;
         t.promise_floor <- max t.promise_floor 0;
         true
       end
       else begin
         t.lease_pending <- b;
         Hashtbl.reset t.lease_promises;
         (* Self-grant locally; own accepted state joins per-instance
            [promises] at push time. *)
         t.promise_floor <- max t.promise_floor b;
         Hashtbl.replace t.lease_promises (self t) ();
         let others =
           List.filter (fun p -> p <> self t) t.participants_list
         in
         Runtime.Services.send_multi t.services others
           (t.wrap (Lease_prepare { ballot = b }));
         if Hashtbl.length t.lease_promises >= majority t then begin
           t.lease_pending <- -1;
           t.lease_ballot <- b;
           true
         end
         else false
       end
     end)

(* Engaged undecided instances with a pushable value source, in instance
   order; collected before iterating because pushes can decide and prune. *)
let drivable t =
  Int_tbl.fold
    (fun i inst acc ->
      if
        inst.decided = None
        && (inst.proposal <> None || inst.accepted <> None
           || Hashtbl.length inst.promises > 0)
      then (i, inst) :: acc
      else acc)
    t.instances []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

(* Leader-side drive of one instance, used by propose/Suggest paths. *)
let drive_as_leader t i inst =
  if t.fast then begin
    if ensure_lease t then lease_push t i inst
    else if t.lease_pending >= 0 then ()
      (* grant in flight: the instance is driven when it lands *)
    else if inst.leading < 0 then start_new_ballot t i inst
    else try_push t i inst
  end
  else if inst.leading < 0 then start_new_ballot t i inst
  else try_push t i inst

let propose t ~instance v =
  if not (t.fast && instance <= t.pruned_upto) then begin
    let inst = get_instance t instance in
    if inst.decided = None && inst.proposal = None then begin
      inst.proposal <- Some v;
      inst.engaged <- true;
      arm_timer t instance inst;
      if is_leader t then drive_as_leader t instance inst
      else suggest_to_leader t instance inst
    end
  end

let on_suspicion_change t =
  if is_leader t then
    if t.fast then begin
      match drivable t with
      | [] -> ()
      | targets ->
        if ensure_lease t then
          List.iter (fun (i, inst) -> lease_push t i inst) targets
        (* else: acquisition in flight (instances driven at grant) or we
           cannot lead; per-instance timers cover both. *)
    end
    else
      Int_tbl.iter
        (fun i inst ->
          if inst.engaged && inst.decided = None then
            if inst.proposal <> None || inst.accepted <> None then
              start_new_ballot t i inst)
        t.instances
  else
    (* Re-route pending inputs to the new coordinator. *)
    Int_tbl.iter
      (fun i inst ->
        if inst.decided = None && inst.proposal <> None then
          suggest_to_leader t i inst)
      t.instances

(* Fast mode: an instance the lane has moved past — pruned, or at/below
   the consumed watermark without a recorded decision. The latter covers
   instances the host abandoned mid-flight (a pipelining window skipped
   past by a clock jump) and never-proposed gaps: per the [note_consumed]
   contract they will never be consumed, so stray messages for them must
   be dropped — [get_instance] would otherwise resurrect acceptor state
   and timers for an instance nobody will ever finish. *)
let retired t instance =
  t.fast
  && (instance <= t.pruned_upto
     || (instance <= t.decided_upto
        &&
        match Int_tbl.find_opt t.instances instance with
        | Some { decided = Some _; _ } -> false
        | Some _ | None -> true))

(* Fast mode: drive traffic for an already-decided instance is answered
   with a point-to-point Decide (the reference mode's all-to-all Decide
   makes this unnecessary there). Returns true when the message is fully
   handled. Messages for retired instances are dropped: pruning only
   happens once every non-suspected participant's watermark passed the
   instance, so under an accurate detector no live peer still needs it,
   and abandoned instances will never be consumed by anyone. *)
let fast_handled t ~src instance =
  t.fast
  && (retired t instance
     ||
     match Int_tbl.find_opt t.instances instance with
     | Some { decided = Some v; _ } ->
       if src <> self t then
         t.services.send ~dst:src
           (t.wrap (Decide { instance; value = v; floor = gc_floor t }));
       true
     | _ -> false)

let handle t ~src m =
  match m with
  | Suggest { instance; value } ->
    if not (fast_handled t ~src instance) then begin
      let inst = get_instance t instance in
      if inst.decided = None then begin
        if inst.proposal = None then inst.proposal <- Some value;
        inst.engaged <- true;
        arm_timer t instance inst;
        if is_leader t then drive_as_leader t instance inst
      end
    end
  | Prepare { instance; ballot } ->
    note_ballot t ballot;
    if not (fast_handled t ~src instance) then begin
      let inst = get_instance t instance in
      if ballot > eff_promised t inst then begin
        inst.promised <- ballot;
        inst.engaged <- true;
        arm_timer t instance inst;
        t.services.send ~dst:src
          (t.wrap (Promise { instance; ballot; accepted = inst.accepted }))
      end
    end
  | Promise { instance; ballot; accepted } ->
    if not (fast_handled t ~src instance) then begin
      let inst = get_instance t instance in
      if inst.leading = ballot && not inst.phase1_done then begin
        Hashtbl.replace inst.promises src accepted;
        if Hashtbl.length inst.promises >= majority t then begin
          inst.phase1_done <- true;
          try_push t instance inst
        end
      end
    end
  | Accept { instance; ballot; value } ->
    note_ballot t ballot;
    if not (fast_handled t ~src instance) then begin
      let inst = get_instance t instance in
      if ballot >= eff_promised t inst then begin
        accept_locally t instance inst ~ballot ~value;
        arm_timer t instance inst;
        maybe_decide_from_votes t instance inst ballot
      end
      else if not (Hashtbl.mem inst.ballot_values ballot) then
        (* Stale, but remember the ballot's value for learner counting. *)
        Hashtbl.replace inst.ballot_values ballot value
    end
  | Accepted { instance; ballot; wm } ->
    note_ballot t ballot;
    if t.fast then begin
      let r = rank t src in
      if r >= 0 && wm > t.peer_wm.(r) then t.peer_wm.(r) <- wm
    end;
    if not (retired t instance) then begin
      let inst = get_instance t instance in
      Hashtbl.replace (votes_for inst ballot) src ();
      maybe_decide_from_votes t instance inst ballot
    end;
    maybe_gc t
  | Decide { instance; value; floor } ->
    if t.fast && floor > t.remote_floor then t.remote_floor <- floor;
    if not (retired t instance) then begin
      let inst = get_instance t instance in
      (* Fast mode: the announcing coordinator already reached everyone;
         re-broadcasting would reinstate the O(n²) decide storm. *)
      decide ~announce:(not t.fast) t instance inst value
    end
    else maybe_gc t
  | Lease_prepare { ballot } ->
    note_ballot t ballot;
    if t.fast && ballot > t.promise_floor then begin
      t.promise_floor <- ballot;
      let accepted =
        Int_tbl.fold
          (fun i inst acc ->
            match inst.accepted with
            | Some (b, v) when inst.decided = None -> (i, b, v) :: acc
            | _ -> acc)
          t.instances []
        |> List.sort (fun (a, _, _) (b, _, _) -> Int.compare a b)
      in
      t.services.send ~dst:src (t.wrap (Lease_promise { ballot; accepted }))
    end
  | Lease_promise { ballot; accepted } ->
    if t.fast && t.lease_pending = ballot then begin
      List.iter
        (fun (i, b, v) ->
          (* Skip instances at/below our consumed watermark: locally they
             are decided (nothing to re-drive) or abandoned (re-driving
             would resurrect them). *)
          if i > t.decided_upto && i > t.pruned_upto then begin
            let inst = get_instance t i in
            inst.engaged <- true;
            Hashtbl.replace inst.promises src (Some (b, v))
          end)
        accepted;
      Hashtbl.replace t.lease_promises src ();
      if Hashtbl.length t.lease_promises >= majority t then begin
        t.lease_pending <- -1;
        t.lease_ballot <- ballot;
        List.iter (fun (i, inst) -> lease_push t i inst) (drivable t)
      end
    end

let note_consumed t ~upto =
  if t.fast && upto > t.decided_upto then begin
    (* Abandon in-flight instances the host skipped past (pipelining: a
       clock jump can overtake proposed-but-undecided instances). Their
       timers would otherwise re-arm forever — the instance can never
       decide once a majority retires it — so quiescence requires dropping
       them now; [retired] keeps stray messages from resurrecting them. *)
    for i = t.decided_upto + 1 to upto do
      match Int_tbl.find_opt t.instances i with
      | Some inst when inst.decided = None ->
        cancel_timer t inst;
        Int_tbl.remove t.instances i
      | Some _ | None -> ()
    done;
    t.decided_upto <- upto;
    maybe_gc t
  end

let create ~services ~wrap ~participants ~detector
    ?(timeout = Sim_time.of_ms 200) ?(fast_lanes = true) ~on_decide () =
  let participants =
    Array.of_list (List.sort_uniq Int.compare participants)
  in
  if Array.length participants = 0 then
    invalid_arg "Paxos.create: no participants";
  let self = services.Runtime.Services.self in
  let self_rank = ref (-1) in
  Array.iteri (fun i p -> if p = self then self_rank := i) participants;
  let t =
    {
      services;
      wrap;
      participants;
      participants_list = Array.to_list participants;
      self_rank = !self_rank;
      detector;
      timeout;
      fast = fast_lanes;
      on_decide;
      instances = Int_tbl.create 64;
      highest_decided = None;
      decided_upto = 0;
      pruned_upto = 0;
      remote_floor = 0;
      peer_wm = Array.make (Array.length participants) 0;
      lease_ballot = -1;
      lease_pending = -1;
      lease_promises = Hashtbl.create 4;
      promise_floor = -1;
      max_ballot_seen = -1;
    }
  in
  detector.subscribe (fun () -> on_suspicion_change t);
  t

let decided_value t ~instance =
  match Int_tbl.find_opt t.instances instance with
  | None -> None
  | Some inst -> inst.decided

let highest_decided t = t.highest_decided
let retained_instances t = Int_tbl.length t.instances
let pruned_upto t = t.pruned_upto
let decided_upto t = t.decided_upto
let holds_lease t = t.lease_ballot >= 0

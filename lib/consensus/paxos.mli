(** Uniform consensus inside a set of participants.

    The paper assumes that "in each group consensus is solvable" and builds
    both algorithms on a uniform consensus black box satisfying uniform
    integrity, termination and uniform agreement (Section 2.2). This module
    provides that black box: multi-instance single-decree Paxos with a
    rotating coordinator driven by a {!Fd.Detector.t}.

    Structure per instance (ballot [b] is coordinated by participant
    [b mod n]):

    - ballot 0 skips the prepare phase (no smaller ballot can exist);
    - a participant that proposed (or adopted acceptor state) arms a
      decision timeout; on expiry — or on a suspicion change — the smallest
      non-suspected participant takes over with a higher ballot of its own.

    The module runs in one of two modes, selected by [?fast_lanes]:

    {b Reference mode} ([fast_lanes = false]) is the original message
    pattern: every acceptor broadcasts [Accepted] to all participants and
    every decider broadcasts [Decide] once, so a failure-free instance
    costs an [Accept] fan-out plus an all-to-all [Accepted] and an
    all-to-all [Decide] (2n² + 2n − 1 messages) — maximally robust to
    partial message loss under crashes, and kept as the differential-test
    baseline.

    {b Fast mode} ([fast_lanes = true], the default) is the Multi-Paxos
    steady state:

    - {e coordinator lease}: a stable leader pre-promises a ballot once for
      {e all} instances ([Lease_prepare]/[Lease_promise], generalizing the
      ballot-0 fast path to any leader) and skips phase 1 per instance;
    - {e single-shot vote and decide}: acceptors send [Accepted] only to
      the ballot's coordinator, which alone counts votes and broadcasts
      [Decide] — 4n − 1 messages per steady-state instance; stragglers
      recover via their decision timers, answered by point-to-point
      [Decide] replies from any decided participant;
    - {e decided-instance GC}: watermarks piggybacked on [Accepted] let the
      coordinator compute a floor below which every non-suspected
      participant has decided; the floor rides on [Decide] and each process
      prunes its instance table up to [min floor own_watermark]. With an
      accurate detector (the oracle) pruning is always safe; under a
      wrongly-suspecting ◇P a falsely suspected process may have to wait
      for its next instances instead of back-filling a pruned one.

    Both modes decide the same values (Paxos safety is mode-independent —
    the lease majority intersects every chosen quorum); only the
    {e intra-group} message complexity differs, so the paper's inter-group
    metrics are unaffected.

    Instances are independent; decisions may be reported out of order and
    callers sequence them as they see fit (both A1 and A2 consume decisions
    strictly in their own instance order).

    The implementation halts: once an instance decides, every timer for it
    is cancelled and each process sends at most one more [Decide], so runs
    with finitely many proposals are quiescent — a property Proposition A.9
    (quiescence of Algorithm A2) relies on. *)

type 'v msg
(** Wire messages exchanged by the protocol, carrying values of type ['v].
    Embed in the host protocol's wire type and route back via {!handle}. *)

val tag : 'v msg -> string
(** Short label of the message kind (["cons.accept"], ...) for traces. *)

val pp_msg : Format.formatter -> 'v msg -> unit

type ('v, 'w) t

val create :
  services:'w Runtime.Services.t ->
  wrap:('v msg -> 'w) ->
  participants:Net.Topology.pid list ->
  detector:Fd.Detector.t ->
  ?timeout:Des.Sim_time.t ->
  ?fast_lanes:bool ->
  on_decide:(instance:int -> 'v -> unit) ->
  unit ->
  ('v, 'w) t
(** One consensus endpoint on the local process. [participants] (which must
    include the local process and be identical everywhere) fixes the quorum
    system: a majority of participants. [on_decide] fires exactly once per
    instance, with the decided value. [timeout] (default 200ms) is the
    decision timeout that triggers coordinator rotation. [fast_lanes]
    (default true) selects the Multi-Paxos steady-state message pattern
    (see the module docs); pass [false] for the reference pattern. *)

val propose : ('v, 'w) t -> instance:int -> 'v -> unit
(** Submit the local proposal for an instance. At most one proposal per
    instance per process is used (later ones are ignored); proposing on a
    decided instance is a no-op. *)

val handle : ('v, 'w) t -> src:Net.Topology.pid -> 'v msg -> unit
(** Feed an incoming consensus message. *)

val decided_value : ('v, 'w) t -> instance:int -> 'v option
(** The locally decided value of an instance, if still retained — in fast
    mode, garbage-collected instances report [None] (hosts consume
    decisions through [on_decide], which fires before any pruning). *)

val highest_decided : ('v, 'w) t -> int option
(** Largest instance number the local process has decided, if any. *)

val note_consumed : ('v, 'w) t -> upto:int -> unit
(** Fast-lane watermark hook for hosts whose instance numbering skips
    (A1's group clock can jump): declares that every instance [<= upto] is
    either locally decided or will never be proposed by anyone, letting the
    GC watermark advance across the gaps. No-op in reference mode. *)

val retained_instances : ('v, 'w) t -> int
(** Number of instance records currently held (decided-but-unpruned plus
    in-progress) — the state-growth figure soak summaries report. *)

val pruned_upto : ('v, 'w) t -> int
(** Instances [1..pruned_upto] have been decided and reclaimed. *)

val decided_upto : ('v, 'w) t -> int
(** The local contiguous-decided watermark (fast mode; 0 in reference). *)

val holds_lease : ('v, 'w) t -> bool
(** Whether the local process currently holds a coordinator lease. *)

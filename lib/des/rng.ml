type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix64 (Int64.of_int seed) }

let int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let seed = int64 t in
  { state = seed }

let substream seed i =
  if i < 0 then invalid_arg "Rng.substream: index must be >= 0";
  (* Mix the seed before combining with the stream index so neighbouring
     (seed, i) pairs land far apart in the state space; the golden-gamma
     multiple is the same stream spacing SplitMix64 itself uses. *)
  { state = mix64 (Int64.add (mix64 (Int64.of_int seed))
                     (Int64.mul golden_gamma (Int64.of_int (i + 1)))) }

let copy t = { state = t.state }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection-free modulo is fine here: bounds are tiny relative to 2^62. *)
  let v = Int64.to_int (Int64.shift_right_logical (int64 t) 2) in
  v mod bound

let float t bound =
  let v = Int64.to_float (Int64.shift_right_logical (int64 t) 11) in
  bound *. (v /. 9007199254740992.0 (* 2^53 *))

let bool t = Int64.logand (int64 t) 1L = 1L

let exponential t ~mean =
  let u = float t 1.0 in
  let u = if u <= 0. then 1e-12 else u in
  -.mean *. log u

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick: empty array";
  arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let sample_without_replacement t n xs =
  let arr = Array.of_list xs in
  shuffle t arr;
  let n = Stdlib.min n (Array.length arr) in
  Array.to_list (Array.sub arr 0 n)

(** The discrete-event simulation loop.

    A scheduler owns a virtual clock and a queue of pending actions (thunks).
    Running the scheduler repeatedly pops the earliest action, advances the
    clock to its timestamp, and executes it; actions typically schedule
    further actions (message deliveries, timer expirations).

    The loop is single-threaded and deterministic: for a fixed seed and a
    fixed program, every run executes the same actions in the same order. *)

type t

type handle = int
(** Identifies a scheduled action, for cancellation. *)

(** Commutativity metadata attached to scheduled actions, for controlled
    (model-checking) scheduling. A tag names the {e kind} of an action and
    the {e actor} (process) whose state it mutates:

    - [deliver p] — a network message delivery to process [p]; the
      adversary controls message delays, so deliveries may execute at any
      point after their send ("anytime" events);
    - [crash p] — a crash injection; also adversary-placed, hence anytime;
    - [timer p] — a local timer at [p]: anchored to the process clock, so
      it keeps its timestamp order against other timed events;
    - [cast p] — a workload A-XCast injection at [p], also wall-clock
      anchored;
    - [generic] — infrastructure with no single actor (nemesis steps,
      manual {!Runtime.Engine.at} hooks); conservatively treated as
      dependent on everything by the explorer.

    Two actions commute (their execution order cannot be observed by any
    process) when both carry non-generic tags with {e different} actors:
    each mutates only its own actor's protocol state. Tags are packed
    integers, so tagging the per-send hot path allocates nothing. *)
module Tag : sig
  type t = private int

  val generic : t
  val deliver : int -> t
  val timer : int -> t
  val crash : int -> t
  val cast : int -> t
  val kind : t -> [ `Generic | `Deliver | `Timer | `Crash | `Cast ]

  val actor : t -> int
  (** The process whose state the action mutates; [-1] for {!generic}. *)

  val anytime : t -> bool
  (** Whether the adversary may execute the action at any point rather
      than in timestamp order ([`Deliver] and [`Crash]). *)

  val pp : Format.formatter -> t -> unit
end

val create : unit -> t
(** A scheduler with the clock at {!Sim_time.zero} and no pending actions. *)

val now : t -> Sim_time.t
(** Current virtual time. *)

val at : t -> Sim_time.t -> (unit -> unit) -> handle
(** [at t time f] schedules [f] to run at absolute [time]. Scheduling in the
    past is clamped to the current instant (the action still runs strictly
    after the currently-executing one). *)

val after : t -> Sim_time.t -> (unit -> unit) -> handle
(** [after t d f] schedules [f] to run [d] after the current instant. *)

val at_tagged : t -> Tag.t -> Sim_time.t -> (unit -> unit) -> handle
(** [at] with commutativity metadata. [at t] = [at_tagged t Tag.generic].
    Plain positional arguments (no optional label) keep the per-event hot
    path free of option allocations. *)

val after_tagged : t -> Tag.t -> Sim_time.t -> (unit -> unit) -> handle

val cancel : t -> handle -> unit
(** Cancels a pending action; no-op if it already ran. *)

val pending : t -> int
(** Number of actions still scheduled. *)

val executed : t -> int
(** Total number of actions executed since creation — the event count of
    the simulation so far, used to normalise benchmark throughput. *)

val step : t -> bool
(** Executes the single earliest pending action. Returns [false] if the
    queue was empty (and the clock did not move). *)

val enabled : t -> (handle * Sim_time.t * Tag.t) list
(** The live pending actions as [(handle, time, tag)], in [(time,
    insertion)] order — the enabled set a controlled scheduler picks from.
    Element 0 is exactly what {!step} would execute next. O(pending log
    pending): exploration-loop API, not a hot path. *)

val step_handle : t -> handle -> bool
(** [step_handle t h] executes the pending action [h] {e regardless of its
    position in the time order} — the pluggable pick policy behind the
    model checker. The clock advances to [max now (time h)] (executing an
    action early never moves time backwards; executing it late models the
    adversary having delayed it). Returns [false] if [h] is not live. *)

val run : ?until:Sim_time.t -> ?max_steps:int -> t -> unit
(** [run t] executes actions until no action remains, the optional [until]
    horizon is crossed (actions scheduled later stay pending), or
    [max_steps] actions have run. The default horizon is
    {!Sim_time.infinity} and the default step budget is unlimited.
    @raise Failure if [max_steps] is exhausted — runaway protocol loops are
    a bug, not a normal termination. *)

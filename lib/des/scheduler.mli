(** The discrete-event simulation loop.

    A scheduler owns a virtual clock and a queue of pending actions (thunks).
    Running the scheduler repeatedly pops the earliest action, advances the
    clock to its timestamp, and executes it; actions typically schedule
    further actions (message deliveries, timer expirations).

    The loop is single-threaded and deterministic: for a fixed seed and a
    fixed program, every run executes the same actions in the same order. *)

type t

type handle = int
(** Identifies a scheduled action, for cancellation. *)

val create : unit -> t
(** A scheduler with the clock at {!Sim_time.zero} and no pending actions. *)

val now : t -> Sim_time.t
(** Current virtual time. *)

val at : t -> Sim_time.t -> (unit -> unit) -> handle
(** [at t time f] schedules [f] to run at absolute [time]. Scheduling in the
    past is clamped to the current instant (the action still runs strictly
    after the currently-executing one). *)

val after : t -> Sim_time.t -> (unit -> unit) -> handle
(** [after t d f] schedules [f] to run [d] after the current instant. *)

val cancel : t -> handle -> unit
(** Cancels a pending action; no-op if it already ran. *)

val pending : t -> int
(** Number of actions still scheduled. *)

val executed : t -> int
(** Total number of actions executed since creation — the event count of
    the simulation so far, used to normalise benchmark throughput. *)

val step : t -> bool
(** Executes the single earliest pending action. Returns [false] if the
    queue was empty (and the clock did not move). *)

val run : ?until:Sim_time.t -> ?max_steps:int -> t -> unit
(** [run t] executes actions until no action remains, the optional [until]
    horizon is crossed (actions scheduled later stay pending), or
    [max_steps] actions have run. The default horizon is
    {!Sim_time.infinity} and the default step budget is unlimited.
    @raise Failure if [max_steps] is exhausted — runaway protocol loops are
    a bug, not a normal termination. *)

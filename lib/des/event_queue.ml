type 'a entry = {
  time : Sim_time.t;
  seq : int;
  handle : int;
  tag : int; (* caller-defined metadata; 0 = untagged *)
  payload : 'a;
}

(* Cancellation is O(1): [flags] is a byte per issued handle (1 = live,
   0 = popped/cancelled/never issued) and [live] counts the set bits, so
   [pop]/[peek_time]/[size] never touch a hash table. Handles are dense
   (allocated 0,1,2,...), which makes a flat byte array both smaller and
   much faster than the Hashtbl it replaces on the per-event hot path. *)
type 'a t = {
  mutable heap : 'a entry array;
  mutable len : int;
  mutable next_seq : int;
  mutable next_handle : int;
  mutable flags : Bytes.t;
  mutable live : int;
}

let create () =
  { heap = [||]; len = 0; next_seq = 0; next_handle = 0;
    flags = Bytes.make 64 '\000'; live = 0 }

let entry_lt a b =
  let c = Sim_time.compare a.time b.time in
  if c <> 0 then c < 0 else a.seq < b.seq

let grow q =
  let cap = Array.length q.heap in
  let ncap = if cap = 0 then 16 else cap * 2 in
  let dummy = q.heap.(0) in
  let nh = Array.make ncap dummy in
  Array.blit q.heap 0 nh 0 q.len;
  q.heap <- nh

(* Hole-based sifts: carry the moving entry in [e] and write it exactly
   once at its final slot, instead of a three-write swap per level. *)
let sift_up q i e =
  let i = ref i in
  let moving = ref true in
  while !moving && !i > 0 do
    let parent = (!i - 1) / 2 in
    if entry_lt e q.heap.(parent) then begin
      q.heap.(!i) <- q.heap.(parent);
      i := parent
    end
    else moving := false
  done;
  q.heap.(!i) <- e

let sift_down q e =
  let i = ref 0 in
  let moving = ref true in
  while !moving do
    let l = (2 * !i) + 1 in
    if l >= q.len then moving := false
    else begin
      let r = l + 1 in
      let c = if r < q.len && entry_lt q.heap.(r) q.heap.(l) then r else l in
      if entry_lt q.heap.(c) e then begin
        q.heap.(!i) <- q.heap.(c);
        i := c
      end
      else moving := false
    end
  done;
  q.heap.(!i) <- e

let add_tagged q ~time ~tag payload =
  let handle = q.next_handle in
  q.next_handle <- handle + 1;
  let e = { time; seq = q.next_seq; handle; tag; payload } in
  q.next_seq <- q.next_seq + 1;
  if q.len = 0 && Array.length q.heap = 0 then q.heap <- Array.make 16 e;
  if q.len >= Array.length q.heap then grow q;
  q.len <- q.len + 1;
  sift_up q (q.len - 1) e;
  if handle >= Bytes.length q.flags then begin
    let ncap = max (2 * Bytes.length q.flags) (handle + 1) in
    let nf = Bytes.make ncap '\000' in
    Bytes.blit q.flags 0 nf 0 (Bytes.length q.flags);
    q.flags <- nf
  end;
  Bytes.unsafe_set q.flags handle '\001';
  q.live <- q.live + 1;
  handle

let add q ~time payload = add_tagged q ~time ~tag:0 payload

let cancel q handle =
  if handle >= 0 && handle < q.next_handle
     && Bytes.unsafe_get q.flags handle = '\001'
  then begin
    Bytes.unsafe_set q.flags handle '\000';
    q.live <- q.live - 1
  end

let pop_entry q =
  let e = q.heap.(0) in
  q.len <- q.len - 1;
  if q.len > 0 then sift_down q q.heap.(q.len);
  e

let rec pop q =
  if q.len = 0 then None
  else begin
    let e = pop_entry q in
    if Bytes.unsafe_get q.flags e.handle = '\001' then begin
      Bytes.unsafe_set q.flags e.handle '\000';
      q.live <- q.live - 1;
      Some (e.time, e.payload)
    end
    else pop q (* cancelled: skip *)
  end

let rec peek_time q =
  if q.len = 0 then None
  else begin
    let e = q.heap.(0) in
    if Bytes.unsafe_get q.flags e.handle = '\001' then Some e.time
    else begin
      ignore (pop_entry q);
      peek_time q
    end
  end

let size q = q.live
let is_empty q = q.live = 0

(* Controlled-scheduling support (the model checker's view). These walk the
   raw heap array, so they are O(len) / O(len log len) — irrelevant next to
   the cost of exploring an interleaving, and they leave the hot-path
   representation untouched. *)

let live q =
  let acc = ref [] in
  for i = q.len - 1 downto 0 do
    let e = q.heap.(i) in
    if Bytes.unsafe_get q.flags e.handle = '\001' then acc := e :: !acc
  done;
  List.sort
    (fun a b ->
      let c = Sim_time.compare a.time b.time in
      if c <> 0 then c else Int.compare a.seq b.seq)
    !acc
  |> List.map (fun e -> (e.handle, e.time, e.tag))

let take q handle =
  if
    handle < 0 || handle >= q.next_handle
    || Bytes.unsafe_get q.flags handle <> '\001'
  then None
  else begin
    (* The entry stays in the heap as a dead record; [pop]/[peek_time]
       already skip those lazily. *)
    Bytes.unsafe_set q.flags handle '\000';
    q.live <- q.live - 1;
    let found = ref None in
    for i = 0 to q.len - 1 do
      let e = q.heap.(i) in
      if !found = None && e.handle = handle then
        found := Some (e.time, e.payload)
    done;
    !found
  end

type handle = int

type t = {
  queue : (unit -> unit) Event_queue.t;
  mutable clock : Sim_time.t;
  mutable executed : int;
}

let create () =
  { queue = Event_queue.create (); clock = Sim_time.zero; executed = 0 }

let now t = t.clock

let at t time f =
  let time = Sim_time.max time t.clock in
  Event_queue.add t.queue ~time f

let after t d f = at t (Sim_time.add t.clock d) f

let cancel t h = Event_queue.cancel t.queue h

let pending t = Event_queue.size t.queue

let executed t = t.executed

let step t =
  match Event_queue.pop t.queue with
  | None -> false
  | Some (time, f) ->
    t.clock <- Sim_time.max t.clock time;
    t.executed <- t.executed + 1;
    f ();
    true

let run ?(until = Sim_time.infinity) ?(max_steps = max_int) t =
  let steps = ref 0 in
  let continue = ref true in
  while !continue do
    match Event_queue.peek_time t.queue with
    | None -> continue := false
    | Some next when Sim_time.compare next until > 0 -> continue := false
    | Some _ ->
      if !steps >= max_steps then
        failwith "Scheduler.run: max_steps exhausted (runaway event loop?)";
      incr steps;
      ignore (step t)
  done

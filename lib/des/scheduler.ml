type handle = int

module Tag = struct
  (* Packed as [actor lsl 3 lor kind] so a tag is an immediate int: tagging
     every network delivery costs no allocation. Actor -1 (generic) packs
     to a negative int, which is fine — only [kind]/[actor] ever unpack. *)
  type t = int

  let k_generic = 0
  let k_deliver = 1
  let k_timer = 2
  let k_crash = 3
  let k_cast = 4
  let generic = (-1 lsl 3) lor k_generic
  let deliver pid = (pid lsl 3) lor k_deliver
  let timer pid = (pid lsl 3) lor k_timer
  let crash pid = (pid lsl 3) lor k_crash
  let cast pid = (pid lsl 3) lor k_cast

  let kind t =
    match t land 7 with
    | 0 -> `Generic
    | 1 -> `Deliver
    | 2 -> `Timer
    | 3 -> `Crash
    | 4 -> `Cast
    | _ -> `Generic

  let actor t = t asr 3

  let anytime t =
    let k = t land 7 in
    k = k_deliver || k = k_crash

  let pp ppf t =
    let k =
      match kind t with
      | `Generic -> "generic"
      | `Deliver -> "deliver"
      | `Timer -> "timer"
      | `Crash -> "crash"
      | `Cast -> "cast"
    in
    if actor t < 0 then Format.fprintf ppf "%s" k
    else Format.fprintf ppf "%s@p%d" k (actor t)
end

type t = {
  queue : (unit -> unit) Event_queue.t;
  mutable clock : Sim_time.t;
  mutable executed : int;
}

let create () =
  { queue = Event_queue.create (); clock = Sim_time.zero; executed = 0 }

let now t = t.clock

let at_tagged t tag time f =
  let time = Sim_time.max time t.clock in
  Event_queue.add_tagged t.queue ~time ~tag f

let at t time f = at_tagged t Tag.generic time f
let after_tagged t tag d f = at_tagged t tag (Sim_time.add t.clock d) f
let after t d f = at t (Sim_time.add t.clock d) f

let cancel t h = Event_queue.cancel t.queue h

let pending t = Event_queue.size t.queue

let executed t = t.executed

let enabled t = Event_queue.live t.queue

let step t =
  match Event_queue.pop t.queue with
  | None -> false
  | Some (time, f) ->
    t.clock <- Sim_time.max t.clock time;
    t.executed <- t.executed + 1;
    f ();
    true

let step_handle t h =
  match Event_queue.take t.queue h with
  | None -> false
  | Some (time, f) ->
    t.clock <- Sim_time.max t.clock time;
    t.executed <- t.executed + 1;
    f ();
    true

let run ?(until = Sim_time.infinity) ?(max_steps = max_int) t =
  let steps = ref 0 in
  let continue = ref true in
  while !continue do
    match Event_queue.peek_time t.queue with
    | None -> continue := false
    | Some next when Sim_time.compare next until > 0 -> continue := false
    | Some _ ->
      if !steps >= max_steps then
        failwith "Scheduler.run: max_steps exhausted (runaway event loop?)";
      incr steps;
      ignore (step t)
  done

(** Priority queue of timed events.

    A binary min-heap keyed by [(time, sequence)] where the sequence number
    is the insertion order. The secondary key makes extraction deterministic:
    two events scheduled for the same instant pop in insertion order, so a
    simulation never depends on heap-internal tie-breaking. *)

type 'a t
(** A queue of events carrying payloads of type ['a]. *)

val create : unit -> 'a t
(** An empty queue. *)

val add : 'a t -> time:Sim_time.t -> 'a -> int
(** [add q ~time payload] schedules [payload] at [time] and returns a unique
    handle that identifies this entry (usable with {!cancel}). *)

val add_tagged : 'a t -> time:Sim_time.t -> tag:int -> 'a -> int
(** [add] carrying an integer metadata tag, reported back by {!live}. Tags
    mean nothing to the queue itself; the scheduler uses them to classify
    events for controlled (model-checking) extraction. [add] is
    [add_tagged ~tag:0]. *)

val cancel : 'a t -> int -> unit
(** [cancel q handle] marks the entry as cancelled; it is skipped on
    extraction. Cancelling an unknown or already-popped handle is a no-op. *)

val pop : 'a t -> (Sim_time.t * 'a) option
(** Removes and returns the earliest non-cancelled event, or [None] if the
    queue has no live entries. *)

val peek_time : 'a t -> Sim_time.t option
(** The timestamp of the earliest live event, without removing it. *)

val size : 'a t -> int
(** Number of live (non-cancelled) entries. *)

val is_empty : 'a t -> bool

val live : 'a t -> (int * Sim_time.t * int) list
(** All live entries as [(handle, time, tag)], sorted by [(time, insertion
    order)] — the order {!pop} would drain them in. This is the enabled set
    a controlled scheduler enumerates; it walks the whole heap, so it is for
    exploration loops, not hot paths. *)

val take : 'a t -> int -> (Sim_time.t * 'a) option
(** [take q handle] removes and returns the live entry with that handle
    regardless of its position in the time order — the controlled-scheduling
    primitive. [None] if the handle is unknown, cancelled or already
    popped. *)

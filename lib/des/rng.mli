(** Deterministic pseudo-random number generator (SplitMix64).

    Every source of randomness in the simulator flows through an explicit
    [Rng.t] so that a run is a pure function of its seed. SplitMix64 is
    small, fast, passes BigCrush, and supports cheap splitting, which lets
    each simulated component own an independent stream derived from the
    root seed. *)

type t
(** A mutable generator state. *)

val create : int -> t
(** [create seed] is a fresh generator. Two generators created with the same
    seed produce identical streams. *)

val split : t -> t
(** [split t] derives a new independent generator from [t], advancing [t].
    Used to give each process / link its own stream so that adding a draw in
    one component does not perturb the others. *)

val copy : t -> t
(** [copy t] duplicates the current state (same future stream). *)

val substream : int -> int -> t
(** [substream seed i] is the [i]-th independent stream of the generator
    family rooted at [seed], a pure function of [(seed, i)]. Unlike
    {!split} it needs no sequential walk over streams [0..i-1], so sharded
    drivers can hand stream [i] to whichever domain processes item [i] and
    stay bit-identical to a sequential driver.
    @raise Invalid_argument if [i < 0]. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. @raise Invalid_argument if
    [bound <= 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val exponential : t -> mean:float -> float
(** [exponential t ~mean] draws from the exponential distribution with the
    given mean; used for Poisson arrival processes in workloads. *)

val pick : t -> 'a array -> 'a
(** Uniformly random element. @raise Invalid_argument on empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val sample_without_replacement : t -> int -> 'a list -> 'a list
(** [sample_without_replacement t n xs] is a uniformly random subset of [xs]
    of size [min n (List.length xs)], in a random order. *)

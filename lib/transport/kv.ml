(* The replicated key-value state machine: SET/GET/DEL commands over
   Rsm.spec, with per-key placement (a key's group is a stable hash of the
   key) so single-key commands are genuine single-group multicasts and the
   service exercises partial replication exactly like the paper's
   motivating application.

   GET is a command too — it goes through the ordering layer like a write,
   which is what makes a read linearizable in a replicated service (the
   reply reflects every write ordered before it at its shard). *)

module SMap = Map.Make (String)

type cmd = Set of string * string | Get of string | Del of string
type state = string SMap.t

let key_of = function Set (k, _) | Get k | Del k -> k

(* Stable across runs, processes and backends (unlike Hashtbl.hash, which
   is only morally stable): the DES twin and the TCP deployment must place
   a key on the same group. *)
let string_hash s =
  let h = ref 5381 in
  String.iter (fun c -> h := (((!h lsl 5) + !h) + Char.code c) land 0x3FFFFFFF) s;
  !h

let group_of_key ~groups k = string_hash k mod groups

(* Wire/WAL codec. Keys must not contain NUL (enforced by [parse]); the
   value may contain anything. *)
let encode = function
  | Set (k, v) -> "S" ^ k ^ "\x00" ^ v
  | Get k -> "G" ^ k
  | Del k -> "D" ^ k

let decode s =
  if String.length s = 0 then invalid_arg "Kv.decode: empty"
  else
    let rest = String.sub s 1 (String.length s - 1) in
    match s.[0] with
    | 'S' -> (
      match String.index_opt rest '\x00' with
      | None -> invalid_arg "Kv.decode: malformed SET"
      | Some i ->
        Set
          ( String.sub rest 0 i,
            String.sub rest (i + 1) (String.length rest - i - 1) ))
    | 'G' -> Get rest
    | 'D' -> Del rest
    | _ -> invalid_arg "Kv.decode: unknown tag"

let spec ~groups : (state, cmd) Rsm.spec =
  {
    Rsm.initial = (fun () -> SMap.empty);
    apply =
      (fun state cmd ->
        match cmd with
        | Set (k, v) -> SMap.add k v state
        | Del k -> SMap.remove k state
        | Get _ -> state);
    encode;
    decode;
    placement = (fun cmd -> [ group_of_key ~groups (key_of cmd) ]);
  }

let conflict ~groups =
  Rsm.keyed_conflict ~name:"kv-key" ~spec:(spec ~groups) (fun cmd ->
      Some (key_of cmd))

let query state k = SMap.find_opt k state

(* The reply a replica computes when it applies [cmd] to [state] (state
   {e before} application for GET — equivalent either way, a GET does not
   write). *)
let reply_of state = function
  | Get k -> (
    match query state k with None -> (false, "") | Some v -> (true, v))
  | Set _ | Del _ -> (true, "OK")

(* ---------- the client text protocol ---------- *)

let valid_key k =
  k <> "" && not (String.exists (fun c -> c = '\x00' || c = ' ') k)

(* "SET <key> <value>" | "GET <key>" | "DEL <key>"; the value is the rest
   of the line, spaces included. *)
let parse line =
  let sp = String.index_opt line ' ' in
  match sp with
  | None -> None
  | Some i -> (
    let verb = String.sub line 0 i in
    let rest = String.sub line (i + 1) (String.length line - i - 1) in
    match verb with
    | "SET" | "set" -> (
      match String.index_opt rest ' ' with
      | None -> None
      | Some j ->
        let k = String.sub rest 0 j in
        let v = String.sub rest (j + 1) (String.length rest - j - 1) in
        if valid_key k then Some (Set (k, v)) else None)
    | "GET" | "get" -> if valid_key rest then Some (Get rest) else None
    | "DEL" | "del" -> if valid_key rest then Some (Del rest) else None
    | _ -> None)

let print = function
  | Set (k, v) -> "SET " ^ k ^ " " ^ v
  | Get k -> "GET " ^ k
  | Del k -> "DEL " ^ k

(** Write-ahead command log — the durability layer under a replica.

    A flat file of length-prefixed records (4-byte big-endian length +
    encoded command), appended at delivery before the command is applied
    and flushed per record. {!recover} replays the durable prefix on
    restart; a torn tail (killed mid-append) is detected and dropped —
    that command was never acknowledged as applied. The failure model is
    crash-stop of the process (the simulator's); power-loss-grade fsync is
    out of scope. *)

type t

val create : string -> t
(** Open (or create) the log at a path for appending. *)

val append : t -> string -> unit
(** Append one record and flush.
    @raise Invalid_argument on a closed log. *)

val close : t -> unit

val replay_file : string -> string list
(** The durable records of a log file, oldest first, torn tail dropped.
    [[]] if the file does not exist. Read-only (no handle needed). *)

val recover : string -> string list * t
(** Replay, atomically rewrite the file without any torn tail, and reopen
    for appending — the restart path. Returns the durable records, oldest
    first, and the reopened log. *)

val path : t -> string

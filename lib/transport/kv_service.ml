(* The replicated KV service: what lib/rsm was built for, deployed for
   real. Every replica is one Tcp node (own sockets, own loop thread)
   running a protocol instance of [P] plus the KV state machine; commands
   arrive from clients over TCP, are atomically multicast to the key's
   group, WAL-appended and applied at delivery, and the client is answered
   by the replica it contacted once that replica delivers the command.

   The cluster object below holds all replicas of one deployment in this
   process (tests, bench, differential) — [amcast_kv serve] simply builds
   a cluster and exposes it; nothing here assumes colocation beyond the
   shared event-collection vectors, which exist to assemble a
   [Harness.Run_result.t] the simulator's checkers can audit.

   Crash/restart: a crashed replica's process state is gone; on restart it
   comes back as a LEARNER — it replays its WAL, drops protocol frames
   (rejoining consensus after amnesia would be unsafe: its promises died
   with it) and catches up through service-level anti-entropy, pulling the
   committed log suffix from a live group peer. Prefix-aware
   [Rsm.check_logs] is the oracle for both phases. *)

open Net

module Make (P : Amcast.Protocol.S) = struct
  type wire =
    | Proto of P.wire
    | Sync_req of { learner : Topology.pid }
        (* learner -> peer: send me your committed log *)
    | Sync_resp of { log : string list }
        (* peer -> learner: full encoded log, oldest first *)

  type replica = {
    pid : Topology.pid;
    mutable tcp : wire Tcp.t;
    mutable raw : wire Runtime.Transport.t; (* service-level sends *)
    mutable proto : P.t option; (* None while a learner *)
    mutable record_cast : Runtime.Msg_id.t -> unit;
    mutable record_deliver : Runtime.Msg_id.t -> unit;
    mutable state : Kv.state;
    mutable log : Kv.cmd list; (* newest first *)
    mutable wal : Wal.t;
    pending : (Tcp.client * int) Runtime.Msg_id.Tbl.t;
        (* commands this replica submitted for a connected client, keyed
           by message id; answered at delivery *)
    mutable learner : bool;
    mutable synced : bool; (* learner caught up with a peer *)
  }

  type t = {
    topology : Topology.t;
    spec : (Kv.state, Kv.cmd) Rsm.spec;
    config : Amcast.Protocol.Config.t;
    inject : Latency.t option;
    seed : int;
    epoch : float;
    dir : string;
    addrs : (string * int) array;
    codec : wire Tcp.codec;
    replicas : replica array;
    crashed : bool array; (* currently down *)
    mutable crash_log : Topology.pid list; (* ever crashed (faulty) *)
    mu : Mutex.t; (* guards vecs, next_seq, crash bookkeeping *)
    next_seq : int array;
    casts : Harness.Run_result.cast_event Harness.Vec.t;
    deliveries : Harness.Run_result.delivery_event Harness.Vec.t;
    (* counters of replaced (restarted) tcp nodes, so totals survive *)
    mutable base_intra : int;
    mutable base_inter : int;
    mutable base_events : int;
  }

  let wal_path t pid = Filename.concat t.dir (Printf.sprintf "kv-p%d.wal" pid)

  let ensure_dir dir =
    if not (Sys.file_exists dir) then
      try Unix.mkdir dir 0o755
      with Unix.Unix_error (Unix.EEXIST, _, _) -> ()

  (* The protocol sees a [P.wire] transport; the service wraps its frames
     in [Proto] so sync traffic can share the sockets. *)
  let proto_transport (tr : wire Runtime.Transport.t) :
      P.wire Runtime.Transport.t =
    let open Runtime.Transport in
    {
      self = tr.self;
      topology = tr.topology;
      send = (fun ~dst w -> tr.send ~dst (Proto w));
      send_multi = (fun dsts w -> tr.send_multi dsts (Proto w));
      now = tr.now;
      set_timer = tr.set_timer;
      cancel_timer = tr.cancel_timer;
      lc = tr.lc;
      alive = tr.alive;
      on_crash_detected = tr.on_crash_detected;
      on_fd_perturb = tr.on_fd_perturb;
    }

  (* ---------- delivery: WAL, apply, reply ---------- *)

  let deliver t r (msg : Amcast.Msg.t) =
    r.record_deliver msg.Amcast.Msg.id;
    Mutex.lock t.mu;
    Harness.Vec.push t.deliveries
      {
        Harness.Run_result.pid = r.pid;
        msg;
        at = r.raw.Runtime.Transport.now ();
        lc = Tcp.lc r.tcp;
      };
    Mutex.unlock t.mu;
    let cmd = t.spec.Rsm.decode msg.Amcast.Msg.payload in
    Wal.append r.wal msg.Amcast.Msg.payload;
    let ok, value = Kv.reply_of r.state cmd in
    r.state <- t.spec.Rsm.apply r.state cmd;
    r.log <- cmd :: r.log;
    match Runtime.Msg_id.Tbl.find_opt r.pending msg.Amcast.Msg.id with
    | None -> ()
    | Some (client, req) ->
      Runtime.Msg_id.Tbl.remove r.pending msg.Amcast.Msg.id;
      Tcp.reply client ~req ~ok value

  (* ---------- submission ---------- *)

  let fresh_id t ~origin =
    Mutex.lock t.mu;
    let seq = t.next_seq.(origin) in
    t.next_seq.(origin) <- seq + 1;
    Mutex.unlock t.mu;
    Runtime.Msg_id.make ~origin ~seq

  (* Loop-thread half of a submission (mirrors Runner.cast_at). *)
  let do_cast t r (msg : Amcast.Msg.t) =
    match r.proto with
    | None -> () (* learner: nothing to order with; clients are refused *)
    | Some p ->
      r.record_cast msg.Amcast.Msg.id;
      Mutex.lock t.mu;
      Harness.Vec.push t.casts
        {
          Harness.Run_result.msg;
          origin = r.pid;
          at = r.raw.Runtime.Transport.now ();
          lc = Tcp.lc r.tcp;
        };
      Mutex.unlock t.mu;
      P.cast p msg

  let submit t ~origin cmd =
    let r = t.replicas.(origin) in
    let id = fresh_id t ~origin in
    let msg =
      Amcast.Msg.make ~id ~dest:(t.spec.Rsm.placement cmd)
        (t.spec.Rsm.encode cmd)
    in
    Tcp.post r.tcp (fun () -> do_cast t r msg);
    id

  (* ---------- anti-entropy (learner catch-up) ---------- *)

  let encoded_log r = List.rev_map Kv.encode r.log

  let absorb_sync t r peer_log =
    let mine = encoded_log r in
    let rec split l p =
      (* drop [l] (the learner's prefix) off [p]; None on divergence *)
      match (l, p) with
      | [], rest -> Some rest
      | x :: l', y :: p' when String.equal x y -> split l' p'
      | _ -> None
    in
    match split mine peer_log with
    | None -> () (* not a prefix: leave it to check_consistency to flag *)
    | Some tail ->
      List.iter
        (fun enc ->
          Wal.append r.wal enc;
          let cmd = t.spec.Rsm.decode enc in
          r.state <- t.spec.Rsm.apply r.state cmd;
          r.log <- cmd :: r.log)
        tail;
      r.synced <- true

  (* ---------- wiring one node ---------- *)

  let set_receiver t r =
    Tcp.set_receiver r.tcp (fun ~src w ->
        match w with
        | Proto pw -> (
          match r.proto with
          | Some p when not r.learner -> P.on_receive p ~src pw
          | _ -> () (* learner: protocol frames die here *))
        | Sync_req { learner } ->
          r.raw.Runtime.Transport.send ~dst:learner
            (Sync_resp { log = encoded_log r })
        | Sync_resp { log } -> if r.learner then absorb_sync t r log)

  let group_of_key t k = Kv.group_of_key ~groups:(Topology.n_groups t.topology) k

  (* A client may ask any replica; only a live protocol-running member of
     the key's group can answer (it replies when it delivers). Others
     redirect. *)
  let set_client_handler t r =
    Tcp.set_client_handler r.tcp (fun client ~req line ->
        match Kv.parse line with
        | None -> Tcp.reply client ~req ~ok:false "ERR parse"
        | Some cmd ->
          if r.learner then Tcp.reply client ~req ~ok:false "ERR learner"
          else
            let g = group_of_key t (Kv.key_of cmd) in
            if Topology.group_of t.topology r.pid <> g then begin
              let target =
                List.find_opt
                  (fun p ->
                    (not t.crashed.(p)) && not t.replicas.(p).learner)
                  (Topology.members t.topology g)
              in
              match target with
              | None -> Tcp.reply client ~req ~ok:false "ERR unavailable"
              | Some p ->
                let host, port = t.addrs.(p) in
                Tcp.reply client ~req ~ok:false
                  (Printf.sprintf "REDIRECT %d %s %d" p host port)
            end
            else begin
              let id = fresh_id t ~origin:r.pid in
              let msg =
                Amcast.Msg.make ~id ~dest:(t.spec.Rsm.placement cmd)
                  (t.spec.Rsm.encode cmd)
              in
              Runtime.Msg_id.Tbl.add r.pending id (client, req);
              do_cast t r msg
            end)

  let make_tcp t pid =
    Tcp.create ?inject:t.inject ~seed:t.seed ~epoch:t.epoch ~codec:t.codec
      ~topology:t.topology ~self:pid ~addrs:t.addrs ()

  let attach_protocol t r =
    let tcp = r.tcp in
    r.record_cast <- (fun _ -> Tcp.bump_lc tcp Lclock.on_local);
    r.record_deliver <- (fun _ -> Tcp.bump_lc tcp Lclock.on_local);
    let services =
      Runtime.Services.of_transport ~record_cast:r.record_cast
        ~record_deliver:r.record_deliver
        ~rng:(Des.Rng.substream t.seed r.pid)
        (proto_transport r.raw)
    in
    let proto =
      P.create ~services ~config:t.config ~deliver:(fun msg ->
          deliver t r msg)
    in
    r.proto <- Some proto;
    r.learner <- false

  (* ---------- cluster lifecycle ---------- *)

  let create ?inject ?(seed = 0) ?(config = Amcast.Protocol.Config.default)
      ?(base_port = 7400) ~dir topology =
    ensure_dir dir;
    let n = Topology.n_processes topology in
    let groups = Topology.n_groups topology in
    let addrs = Tcp.localhost_addrs ~base_port topology in
    let codec = Tcp.marshal_codec () in
    let epoch = Unix.gettimeofday () in
    let dummy_replica tcp raw pid =
      let wal_file = Filename.concat dir (Printf.sprintf "kv-p%d.wal" pid) in
      (* a fresh cluster starts from an empty store *)
      (try Sys.remove wal_file with Sys_error _ -> ());
      {
        pid;
        tcp;
        raw;
        proto = None;
        record_cast = ignore;
        record_deliver = ignore;
        state = Kv.SMap.empty;
        log = [];
        wal = Wal.create wal_file;
        pending = Runtime.Msg_id.Tbl.create 64;
        learner = true;
        synced = false;
      }
    in
    let t =
      {
        topology;
        spec = Kv.spec ~groups;
        config = { config with conflict = Kv.conflict ~groups };
        inject;
        seed;
        epoch;
        dir;
        addrs;
        codec;
        replicas = [||];
        crashed = Array.make n false;
        crash_log = [];
        mu = Mutex.create ();
        next_seq = Array.make n 0;
        casts = Harness.Vec.create ();
        deliveries = Harness.Vec.create ();
        base_intra = 0;
        base_inter = 0;
        base_events = 0;
      }
    in
    let replicas =
      Array.init n (fun pid ->
          let tcp =
            Tcp.create ?inject ~seed ~epoch ~codec ~topology ~self:pid ~addrs
              ()
          in
          dummy_replica tcp (Tcp.transport tcp) pid)
    in
    let t = { t with replicas } in
    Array.iter
      (fun r ->
        attach_protocol t r;
        set_receiver t r;
        set_client_handler t r)
      replicas;
    Array.iter (fun r -> Tcp.start r.tcp) replicas;
    t

  let addr_of t pid = t.addrs.(pid)

  let contact_for t key =
    let g = group_of_key t key in
    match
      List.find_opt
        (fun p -> (not t.crashed.(p)) && not t.replicas.(p).learner)
        (Topology.members t.topology g)
    with
    | Some p -> p
    | None -> List.hd (Topology.members t.topology g)

  (* ---------- fault injection ---------- *)

  let crash t pid =
    let r = t.replicas.(pid) in
    Tcp.stop r.tcp;
    Wal.close r.wal;
    Mutex.lock t.mu;
    t.crashed.(pid) <- true;
    if not (List.mem pid t.crash_log) then t.crash_log <- pid :: t.crash_log;
    Mutex.unlock t.mu;
    Array.iter
      (fun other ->
        if other.pid <> pid && not t.crashed.(other.pid) then
          Tcp.announce_crash other.tcp pid)
      t.replicas

  let restart t pid =
    let r = t.replicas.(pid) in
    (* retire the old node's counters before replacing it *)
    Mutex.lock t.mu;
    t.base_intra <- t.base_intra + Tcp.sent_intra r.tcp;
    t.base_inter <- t.base_inter + Tcp.sent_inter r.tcp;
    t.base_events <- t.base_events + Tcp.events_processed r.tcp;
    Mutex.unlock t.mu;
    (* durable state back from the WAL (torn tail dropped) *)
    let records, wal = Wal.recover (wal_path t pid) in
    r.wal <- wal;
    r.state <- t.spec.Rsm.initial ();
    r.log <- [];
    List.iter
      (fun enc ->
        let cmd = t.spec.Rsm.decode enc in
        r.state <- t.spec.Rsm.apply r.state cmd;
        r.log <- cmd :: r.log)
      records;
    Runtime.Msg_id.Tbl.reset r.pending;
    r.proto <- None;
    r.learner <- true;
    r.synced <- false;
    r.record_cast <- ignore;
    r.record_deliver <- ignore;
    let tcp = make_tcp t pid in
    r.tcp <- tcp;
    r.raw <- Tcp.transport tcp;
    set_receiver t r;
    set_client_handler t r;
    (* the new node must know who is still down *)
    Array.iteri
      (fun q down -> if down && q <> pid then Tcp.announce_crash tcp q)
      (Array.copy t.crashed);
    Tcp.start tcp;
    Mutex.lock t.mu;
    t.crashed.(pid) <- false;
    Mutex.unlock t.mu;
    Array.iter
      (fun other ->
        if other.pid <> pid && not t.crashed.(other.pid) then
          Tcp.announce_recovery other.tcp pid)
      t.replicas;
    (* periodic anti-entropy: nag a live group peer every 50 ms, for the
       initial catch-up and then to keep following commands the group
       commits while this replica sits out of consensus. Retry also
       covers frames lost while links re-form after the restart. *)
    let peer () =
      List.find_opt
        (fun p ->
          p <> pid && (not t.crashed.(p)) && not t.replicas.(p).learner)
        (Topology.members t.topology (Topology.group_of t.topology pid))
    in
    let rec kick () =
      if Tcp.running r.tcp then begin
        (match peer () with
        | Some q ->
          r.raw.Runtime.Transport.send ~dst:q (Sync_req { learner = pid })
        | None -> ());
        ignore
          (r.raw.Runtime.Transport.set_timer ~after:(Des.Sim_time.of_ms 50)
             kick)
      end
    in
    Tcp.post tcp kick

  (* ---------- observation ---------- *)

  let synced t pid = t.replicas.(pid).synced
  let state_of t pid = t.replicas.(pid).state
  let log_of t pid = List.rev t.replicas.(pid).log
  let applied t pid = List.length t.replicas.(pid).log

  let await ?(timeout = 10.0) cond =
    let deadline = Unix.gettimeofday () +. timeout in
    let rec go () =
      if cond () then true
      else if Unix.gettimeofday () > deadline then cond ()
      else begin
        Thread.delay 0.002;
        go ()
      end
    in
    go ()

  let check_consistency t =
    let logs = Array.map encoded_log t.replicas in
    Rsm.check_logs ~topology:t.topology
      ~alive:(fun pid -> not (List.mem pid t.crash_log))
      ~logs

  let run_result t =
    Mutex.lock t.mu;
    let casts = Harness.Vec.to_list t.casts in
    let deliveries = Harness.Vec.to_list t.deliveries in
    let crashed = List.rev t.crash_log in
    Mutex.unlock t.mu;
    let sum f base = Array.fold_left (fun acc r -> acc + f r.tcp) base t.replicas in
    Harness.Run_result.make ~topology:t.topology ~casts ~deliveries ~crashed
      ~trace:(Runtime.Trace.create ~enabled:false ())
      ~inter_group_msgs:(sum Tcp.sent_inter t.base_inter)
      ~intra_group_msgs:(sum Tcp.sent_intra t.base_intra)
      ~end_time:(t.replicas.(0).raw.Runtime.Transport.now ())
      ~drained:true
      ~events_executed:(sum Tcp.events_processed t.base_events)
      ()

  let stop t =
    Array.iter
      (fun r ->
        if Tcp.running r.tcp then Tcp.stop r.tcp;
        Wal.close r.wal)
      t.replicas
end

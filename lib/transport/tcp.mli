(** The real backend of {!Runtime.Transport}: Unix TCP sockets plus a
    per-node event-loop thread.

    Each node owns a listening socket, dials unidirectional connections to
    the peers it sends to, and runs one loop thread on which {e all} node
    state is touched: socket reads, timer callbacks, protocol handlers and
    {!post}ed thunks. Protocol code therefore keeps the single-threaded
    process model of the simulator. Frames are length-prefixed (4-byte
    big-endian), payloads go through the node's {!type:codec}, and every
    data frame carries the sender's modified Lamport clock exactly like
    the DES envelope does.

    With [?inject], sends are held in the timer heap for a delay sampled
    from a {!Net.Latency} shape before the bytes hit the socket — the WAN
    geometry of a simulated scenario reproduced on localhost.

    Several nodes of one "cluster" may live in a single OS process, each
    with its own loop thread and sockets — how the tests, the load bench
    and [amcast_kv serve] drive multi-replica deployments. Nothing in the
    wire protocol assumes colocation: peers are reached by [addrs], not by
    shared memory. *)

type 'w codec = { encode : 'w -> string; decode : string -> 'w }
(** Wire codec for the protocol's message type. [decode] must invert
    [encode]. *)

val marshal_codec : unit -> 'w codec
(** The default codec: [Marshal] on the wire variant (safe here — wire
    messages are closed data types). *)

type 'w t

type client
(** Handle on one in-flight client request (connection + framing), given
    to the {!set_client_handler} callback; reply with {!reply} — now or
    later (the KV service replies at command delivery). *)

val localhost_addrs :
  base_port:int -> Net.Topology.t -> (string * int) array
(** [127.0.0.1:base_port+pid] for every pid. *)

val create :
  ?inject:Net.Latency.t ->
  ?seed:int ->
  ?epoch:float ->
  codec:'w codec ->
  topology:Net.Topology.t ->
  self:Net.Topology.pid ->
  addrs:(string * int) array ->
  unit ->
  'w t
(** Binds the node's listening socket (reusable address, so a restarted
    node reclaims its port). [epoch] anchors {!Runtime.Transport.now} so
    all nodes of a cluster share a time origin; [seed] feeds the delay
    -injection stream. The node is inert until {!start}. *)

val start : 'w t -> unit
(** Spawns the event-loop thread. *)

val stop : 'w t -> unit
(** Posts shutdown and joins the loop thread; all sockets are closed from
    the loop (a crash, from the peers' point of view: connections die,
    unacked frames are lost). Idempotent. *)

val running : 'w t -> bool

val post : 'w t -> (unit -> unit) -> unit
(** Runs a thunk on the node's loop thread — the only way for an external
    thread to touch node state (submit a cast, read protocol state...).
    Silently dropped after {!stop}. *)

val set_receiver : 'w t -> (src:Net.Topology.pid -> 'w -> unit) -> unit
(** The node's reaction to decoded protocol frames (the
    {!Runtime.Engine.node} analogue). Swap it to re-route frames — the KV
    service's restarted-learner mode replaces it with a drop handler. *)

val set_client_handler :
  'w t -> (client -> req:int -> string -> unit) -> unit
(** Called on the loop thread for every client request frame. *)

val reply : client -> req:int -> ok:bool -> string -> unit
(** Frame and write a reply on the client's connection (loop thread
    only). *)

val transport : 'w t -> 'w Runtime.Transport.t
(** The {!Runtime.Transport} surface of this node. Its closures must only
    be invoked on the loop thread (protocol handlers and timers already
    are; use {!post} from outside). *)

val announce_crash : 'w t -> Net.Topology.pid -> unit
(** Oracle crash notification (the {!Runtime.Engine.schedule_crash}
    analogue, driven by whoever injected the crash): marks the pid dead in
    this node's [alive] view and fires each {!Runtime.Transport.t}
    [.on_crash_detected] subscription after its delay. *)

val announce_recovery : 'w t -> Net.Topology.pid -> unit
(** Marks a restarted pid alive again in this node's view. *)

val perturb_fd : 'w t -> float -> unit
(** Applies a failure-detector timeout scale to this node's subscribers
    (the {!Runtime.Engine.perturb_fd} analogue). *)

val self : 'w t -> Net.Topology.pid

val lc : 'w t -> Lclock.t

val bump_lc : 'w t -> (Lclock.t -> Lclock.t) -> unit
(** Advance the node's Lamport clock by a local rule (the engine's
    cast/deliver instrumentation analogue). Loop thread only. *)

val sent_intra : 'w t -> int
val sent_inter : 'w t -> int

val events_processed : 'w t -> int
(** Frames handled + timers fired + thunks run — the loop's analogue of
    the scheduler's executed-events counter. *)

(** Synchronous (blocking) client connection — what the closed-loop load
    driver runs: one request in flight per client, measure the reply. *)
module Client : sig
  type t

  val connect : string * int -> t
  (** TCP-connect to a replica and send the client hello. *)

  val request : t -> string -> bool * string
  (** [request c payload] writes one request frame and blocks until its
      reply: [(ok, value)].
      @raise Failure if the connection dies first. *)

  val close : t -> unit
end

(** Closed-loop multi-client load driver for the replicated KV service.

    Each client is one OS thread with one request in flight: route the
    key, send, block on the reply, record the round-trip. Closed-loop
    load is self-clocking, so the reported throughput is what the service
    sustains at this concurrency and the latencies are free of
    coordinated-omission artefacts. Results serialise to the
    [BENCH_kv.json] schema documented in EXPERIMENTS.md. *)

type params = {
  clients : int;
  duration : float;  (** seconds of measured load *)
  keyspace : int;  (** distinct keys, [k0 .. k<keyspace-1>] *)
  value_bytes : int;
  get_ratio : float;  (** fraction of GETs *)
  del_ratio : float;  (** fraction of DELs; the rest are SETs *)
  seed : int;
}

val default : params
(** 8 clients, 3 s, 64 keys, 32-byte values, 50% GET / 5% DEL, seed 0. *)

type result = {
  ops : int;  (** replies received *)
  errors : int;  (** transport failures (reconnected and carried on) *)
  redirects : int;  (** mis-routed requests that followed a redirect *)
  wall_s : float;
  throughput : float;  (** [ops /. wall_s] *)
  mean_ms : float option;
  p50_ms : float option;
  p99_ms : float option;  (** [None] when no op completed *)
}

val run : route:(string -> string * int) -> params -> result
(** Drive the cluster. [route key] is the address of the replica to send
    that key's commands to (normally a member of
    [Kv.group_of_key ~groups key]'s group — a wrong answer still works
    via one redirect per request, and is counted). Blocks for
    [params.duration] plus stragglers. *)

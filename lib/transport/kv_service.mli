(** The replicated KV service over real TCP — what {!Rsm} was built for,
    deployed: one {!Tcp} node per replica running a protocol instance of
    [P] plus the SET/GET/DEL state machine of {!Kv}, WAL durability
    ({!Wal}), per-key placement, and client request/reply over the same
    sockets.

    A client's command is atomically multicast to its key's group; the
    contacted replica (which must be a member of that group, others
    redirect) answers when {e it} delivers the command — so a reply
    certifies the command is ordered and applied at the shard.

    Crash/restart: {!crash} kills a replica (sockets die, unacked frames
    are lost, peers get an oracle notification). {!restart} brings it back
    as a {e learner}: it replays its WAL, drops protocol frames — a
    consensus participant that lost its promises must not rejoin — and
    catches up through service-level anti-entropy: every 50 ms it asks a
    live group peer for its committed log and absorbs the missing suffix,
    first to {!synced} and from then on to follow what the group keeps
    committing without it. The prefix-aware {!Rsm.check_logs} is the
    consistency oracle throughout. *)

module Make (P : Amcast.Protocol.S) : sig
  type t

  val create :
    ?inject:Net.Latency.t ->
    ?seed:int ->
    ?config:Amcast.Protocol.Config.t ->
    ?base_port:int ->
    dir:string ->
    Net.Topology.t ->
    t
  (** Boots every replica (sockets bound and loops running on return) on
      [127.0.0.1:base_port+pid]. [dir] holds one WAL file per replica;
      stale WALs from earlier clusters are removed — a fresh cluster
      starts empty. [config]'s conflict relation is replaced by the
      per-key {!Kv.conflict}. [inject] adds sampled per-link delays so a
      WAN geometry can be reproduced on localhost. *)

  val addr_of : t -> Net.Topology.pid -> string * int
  val group_of_key : t -> string -> Net.Topology.gid

  val contact_for : t -> string -> Net.Topology.pid
  (** A live, protocol-running member of the key's group — the replica a
      well-routed client should talk to. *)

  val submit : t -> origin:Net.Topology.pid -> Kv.cmd -> Runtime.Msg_id.t
  (** In-process submission at a replica (the test/differential path;
      clients over TCP take the same code path). [origin] must be a
      member of the command's placement group for delivery to be
      observable there. *)

  val crash : t -> Net.Topology.pid -> unit
  (** Stop the replica's node: sockets close, in-flight frames to/from it
      are lost, live peers get the oracle crash notification. *)

  val restart : t -> Net.Topology.pid -> unit
  (** WAL-recover the replica and bring it back as a learner (see module
      doc). Requires a preceding {!crash}. *)

  val synced : t -> Net.Topology.pid -> bool
  (** Whether a restarted learner has caught up with a group peer. *)

  val await : ?timeout:float -> (unit -> bool) -> bool
  (** Poll a condition (2 ms period) until true or [timeout] (default
      10 s) elapses; returns the condition's final value. *)

  val state_of : t -> Net.Topology.pid -> Kv.state
  val log_of : t -> Net.Topology.pid -> Kv.cmd list
  (** Commands applied by the replica, oldest first. *)

  val applied : t -> Net.Topology.pid -> int
  (** [List.length (log_of t pid)] — the usual {!await} condition. *)

  val check_consistency : t -> string list
  (** {!Rsm.check_logs} over the live cluster: ever-crashed replicas are
      held to the prefix standard, the rest to equality. *)

  val run_result : t -> Harness.Run_result.t
  (** The run so far assembled for the simulator's checkers/metrics
      (trace disabled; counters aggregated across restarts). *)

  val stop : t -> unit
  (** Stop every node and close every WAL. Idempotent. *)
end

(** The replicated key-value state machine: SET/GET/DEL over {!Rsm.spec}.

    Commands are placed per key — a stable hash of the key names the one
    group that stores it — so the service exercises genuine (partial
    -replication) multicast: only the key's group orders and applies the
    command. GET is ordered like a write, which is what makes reads
    linearizable. *)

module SMap : Map.S with type key = string

type cmd = Set of string * string | Get of string | Del of string
type state = string SMap.t

val key_of : cmd -> string

val group_of_key : groups:int -> string -> Net.Topology.gid
(** Stable (process- and backend-independent) placement hash. *)

val encode : cmd -> string
(** Wire/WAL codec. Keys must be NUL-free (see {!parse}). *)

val decode : string -> cmd
(** @raise Invalid_argument on malformed input. *)

val spec : groups:int -> (state, cmd) Rsm.spec

val conflict : groups:int -> Amcast.Conflict.t
(** Per-key conflict relation for generic-multicast deployments: commands
    on different keys commute. *)

val query : state -> string -> string option

val reply_of : state -> cmd -> bool * string
(** The reply a replica computes when applying [cmd] to [state]:
    [(found, value)] for GET, [(true, "OK")] for SET/DEL. *)

val parse : string -> cmd option
(** Client text protocol: ["SET <key> <value>"] (value may contain
    spaces), ["GET <key>"], ["DEL <key>"]. Keys must be nonempty and
    contain no space or NUL. *)

val print : cmd -> string
(** Inverse of {!parse} (canonical, upper-case verbs). *)

(* Closed-loop multi-client load driver for the replicated KV service.

   Each client is one OS thread with one request in flight: pick a key,
   route to the key's replica, send, block on the reply, record the
   round-trip. Closed-loop load is self-clocking — throughput is whatever
   the service sustains at this concurrency, and the recorded latencies
   are honest service latencies, not coordinated-omission artefacts of an
   open-loop schedule the service cannot keep up with. *)

type params = {
  clients : int;
  duration : float; (* seconds of measured load *)
  keyspace : int; (* distinct keys, k0 .. k<keyspace-1> *)
  value_bytes : int;
  get_ratio : float; (* fraction of GETs *)
  del_ratio : float; (* fraction of DELs; the rest are SETs *)
  seed : int;
}

let default =
  {
    clients = 8;
    duration = 3.0;
    keyspace = 64;
    value_bytes = 32;
    get_ratio = 0.5;
    del_ratio = 0.05;
    seed = 0;
  }

type result = {
  ops : int; (* replies received (ok or application-level not-found) *)
  errors : int; (* transport failures *)
  redirects : int; (* mis-routed requests that had to follow a redirect *)
  wall_s : float;
  throughput : float; (* ops / wall_s *)
  mean_ms : float option;
  p50_ms : float option;
  p99_ms : float option;
}

(* One client's connection cache: the driver routes per key, so a client
   talks to one replica per group it touches. *)
type conns = (string * int, Tcp.Client.t) Hashtbl.t

let conn_to (conns : conns) addr =
  match Hashtbl.find_opt conns addr with
  | Some c -> c
  | None ->
    let c = Tcp.Client.connect addr in
    Hashtbl.replace conns addr c;
    c

let drop_conn (conns : conns) addr =
  match Hashtbl.find_opt conns addr with
  | None -> ()
  | Some c ->
    Hashtbl.remove conns addr;
    (try Tcp.Client.close c with _ -> ())

type client_tally = {
  mutable c_ops : int;
  mutable c_errors : int;
  mutable c_redirects : int;
  mutable c_lat : float list; (* round-trips, seconds *)
}

let parse_redirect reply =
  match String.split_on_char ' ' reply with
  | [ "REDIRECT"; _pid; host; port ] -> (
    match int_of_string_opt port with
    | Some p -> Some (host, p)
    | None -> None)
  | _ -> None

let client_loop ~route ~deadline ~params ~index (tally : client_tally) =
  let rng = Des.Rng.substream params.seed (index + 7001) in
  let conns : conns = Hashtbl.create 8 in
  let value = String.make (max 1 params.value_bytes) 'v' in
  let op_line () =
    let key = Printf.sprintf "k%d" (Des.Rng.int rng (max 1 params.keyspace)) in
    let p = Des.Rng.float rng 1.0 in
    let line =
      if p < params.get_ratio then "GET " ^ key
      else if p < params.get_ratio +. params.del_ratio then "DEL " ^ key
      else "SET " ^ key ^ " " ^ value
    in
    (key, line)
  in
  while Unix.gettimeofday () < deadline do
    let key, line = op_line () in
    let addr = route key in
    let started = Unix.gettimeofday () in
    match
      let c = conn_to conns addr in
      Tcp.Client.request c line
    with
    | exception _ ->
      (* connection died (replica crash, shutdown race): reconnect on the
         next iteration, after a beat so a dead cluster can't spin us *)
      drop_conn conns addr;
      tally.c_errors <- tally.c_errors + 1;
      Thread.delay 0.005
    | ok, reply -> (
      match (ok, parse_redirect reply) with
      | false, Some addr' -> (
        (* follow one redirect; count it so mis-routing is visible *)
        tally.c_redirects <- tally.c_redirects + 1;
        match
          let c = conn_to conns addr' in
          Tcp.Client.request c line
        with
        | exception _ ->
          drop_conn conns addr';
          tally.c_errors <- tally.c_errors + 1
        | _ ->
          tally.c_ops <- tally.c_ops + 1;
          tally.c_lat <- (Unix.gettimeofday () -. started) :: tally.c_lat)
      | _ ->
        tally.c_ops <- tally.c_ops + 1;
        tally.c_lat <- (Unix.gettimeofday () -. started) :: tally.c_lat)
  done;
  Hashtbl.iter (fun _ c -> try Tcp.Client.close c with _ -> ()) conns

let run ~route params =
  let tallies =
    Array.init params.clients (fun _ ->
        { c_ops = 0; c_errors = 0; c_redirects = 0; c_lat = [] })
  in
  let t0 = Unix.gettimeofday () in
  let deadline = t0 +. params.duration in
  let threads =
    Array.mapi
      (fun index tally ->
        Thread.create
          (fun () -> client_loop ~route ~deadline ~params ~index tally)
          ())
      tallies
  in
  Array.iter Thread.join threads;
  let wall_s = Unix.gettimeofday () -. t0 in
  let ops = Array.fold_left (fun a t -> a + t.c_ops) 0 tallies in
  let errors = Array.fold_left (fun a t -> a + t.c_errors) 0 tallies in
  let redirects = Array.fold_left (fun a t -> a + t.c_redirects) 0 tallies in
  let lat_ms =
    Array.fold_left
      (fun acc t -> List.rev_append (List.rev_map (fun s -> s *. 1e3) t.c_lat) acc)
      [] tallies
  in
  let mean_ms =
    match lat_ms with
    | [] -> None
    | l -> Some (List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l))
  in
  {
    ops;
    errors;
    redirects;
    wall_s;
    throughput = (if wall_s > 0.0 then float_of_int ops /. wall_s else 0.0);
    mean_ms;
    p50_ms = Harness.Stats.percentile 50.0 lat_ms;
    p99_ms = Harness.Stats.percentile 99.0 lat_ms;
  }

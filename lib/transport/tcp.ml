(* Real async backend: Unix TCP sockets on localhost (or a real network)
   behind the same Runtime.Transport surface the DES engine implements.

   Concurrency model — one event-loop thread per node, and *everything*
   that touches node state runs on it: socket reads, timer callbacks,
   protocol handlers and externally [post]ed thunks. Protocol code
   therefore keeps the single-threaded process model it was written
   against in the simulator; no protocol-visible state needs a lock.
   External threads communicate exclusively through [post] (a mutex-guarded
   mailbox drained by the loop, with a self-pipe to interrupt [select]).

   Wire format — every frame is length-prefixed (4-byte big-endian body
   length), body = 1 kind byte + fields:

     'H' node hello      : 4-byte BE pid (sent once per outgoing connection)
     'D' protocol data   : 8-byte BE Lamport clock + codec-encoded payload
     'C' client hello    : empty
     'Q' client request  : 8-byte BE request id + payload
     'R' client reply    : 8-byte BE request id + 1 status byte + payload

   Node-to-node connections are unidirectional: node i dials node j and
   uses that socket only for i->j frames; j reads them from its accepted
   side. Dead peers are detected at write time (EPIPE/ECONNRESET with
   SIGPIPE ignored) and redialed once per transmit; a frame to a crashed
   process is dropped, which matches the quasi-reliable link model.

   Clocks — [now] is a monotonized wall clock in microseconds since the
   deployment epoch, shared by every node of an in-process cluster so
   cross-node timestamps are comparable. Timers reuse the DES event queue
   as a plain min-heap (same cancellation semantics protocols rely on).

   Delay injection — with [?inject], every send samples the configured
   Net.Latency shape (per-link base + jitter, intra vs inter group) from
   the node's private SplitMix stream and sits in the timer heap for that
   long before the bytes hit the socket: the WAN geometry of a simulated
   scenario reproduced on loopback. Like the simulator's network, injected
   jitter may reorder two frames on one link. *)

open Net

type peer = Unknown | Node of Topology.pid | Client

type conn = {
  fd : Unix.file_descr;
  buf : Buffer.t;
  mutable peer : peer;
  mutable open_ : bool;
}

type 'w codec = { encode : 'w -> string; decode : string -> 'w }

let marshal_codec () =
  {
    encode = (fun w -> Marshal.to_string w []);
    decode = (fun s -> Marshal.from_string s 0);
  }

type 'w t = {
  self : Topology.pid;
  topology : Topology.t;
  addrs : (string * int) array;
  codec : 'w codec;
  inject : Latency.t option;
  rng : Des.Rng.t;
  epoch : float;
  mutable last_wall : float;
  mutable listen_fd : Unix.file_descr option;
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  mailbox : (unit -> unit) Queue.t;
  mbox_mu : Mutex.t;
  timers : (unit -> unit) Des.Event_queue.t;
  mutable conns : conn list; (* accepted sockets *)
  outgoing : conn option array; (* dialed sockets, indexed by dst pid *)
  mutable receiver : src:Topology.pid -> 'w -> unit;
  mutable on_client : client -> req:int -> string -> unit;
  mutable lc : Lclock.t;
  mutable running : bool;
  mutable stopped : bool;
  mutable thread : Thread.t option;
  alive_view : bool array;
  mutable crash_subs :
    (Des.Sim_time.t * (Topology.pid -> unit)) list;
  mutable fd_subs : (float -> unit) list;
  mutable sent_intra : int;
  mutable sent_inter : int;
  mutable events : int;
}

and client = { c_conn : conn; c_node_write : conn -> string -> unit }

(* ---------- byte-level helpers ---------- *)

let ignore_sigpipe =
  lazy
    (match Sys.os_type with
    | "Unix" -> Sys.set_signal Sys.sigpipe Sys.Signal_ignore
    | _ -> ())

let frame body =
  let n = String.length body in
  let b = Bytes.create (4 + n) in
  Bytes.set_int32_be b 0 (Int32.of_int n);
  Bytes.blit_string body 0 b 4 n;
  Bytes.unsafe_to_string b

let put_int64 s pos v = Bytes.set_int64_be s pos (Int64.of_int v)
let get_int64 s pos = Int64.to_int (String.get_int64_be s pos)

let hello_body pid =
  let b = Bytes.create 5 in
  Bytes.set b 0 'H';
  Bytes.set_int32_be b 1 (Int32.of_int pid);
  Bytes.unsafe_to_string b

let data_body ~lc payload =
  let n = String.length payload in
  let b = Bytes.create (9 + n) in
  Bytes.set b 0 'D';
  put_int64 b 1 lc;
  Bytes.blit_string payload 0 b 9 n;
  Bytes.unsafe_to_string b

let request_body ~req payload =
  let n = String.length payload in
  let b = Bytes.create (9 + n) in
  Bytes.set b 0 'Q';
  put_int64 b 1 req;
  Bytes.blit_string payload 0 b 9 n;
  Bytes.unsafe_to_string b

let reply_body ~req ~ok payload =
  let n = String.length payload in
  let b = Bytes.create (10 + n) in
  Bytes.set b 0 'R';
  put_int64 b 1 req;
  Bytes.set b 9 (if ok then '\001' else '\000');
  Bytes.blit_string payload 0 b 10 n;
  Bytes.unsafe_to_string b

(* Blocking exact write; raises on a dead peer. *)
let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let n = Bytes.length b in
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write fd b !off (n - !off)
  done

(* ---------- clocks ---------- *)

let mono_wall t =
  let w = Unix.gettimeofday () in
  if w > t.last_wall then t.last_wall <- w;
  t.last_wall

let now_time t =
  Des.Sim_time.of_us
    (max 0 (int_of_float ((mono_wall t -. t.epoch) *. 1e6)))

(* ---------- construction ---------- *)

let localhost_addrs ~base_port topology =
  Array.init (Topology.n_processes topology) (fun pid ->
      ("127.0.0.1", base_port + pid))

let create ?inject ?(seed = 0) ?epoch ~codec ~topology ~self ~addrs () =
  Lazy.force ignore_sigpipe;
  if Array.length addrs <> Topology.n_processes topology then
    invalid_arg "Tcp.create: addrs must cover every pid";
  let listen_fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
  let host, port = addrs.(self) in
  Unix.bind listen_fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
  Unix.listen listen_fd 64;
  let wake_r, wake_w = Unix.pipe () in
  Unix.set_nonblock wake_w;
  let epoch = match epoch with Some e -> e | None -> Unix.gettimeofday () in
  {
    self;
    topology;
    addrs;
    codec;
    inject;
    rng = Des.Rng.substream seed (self + 1);
    epoch;
    last_wall = epoch;
    listen_fd = Some listen_fd;
    wake_r;
    wake_w;
    mailbox = Queue.create ();
    mbox_mu = Mutex.create ();
    timers = Des.Event_queue.create ();
    conns = [];
    outgoing = Array.make (Topology.n_processes topology) None;
    receiver = (fun ~src:_ _ -> ());
    on_client = (fun _ ~req:_ _ -> ());
    lc = Lclock.initial;
    running = false;
    stopped = false;
    thread = None;
    alive_view = Array.make (Topology.n_processes topology) true;
    crash_subs = [];
    fd_subs = [];
    sent_intra = 0;
    sent_inter = 0;
    events = 0;
  }

let set_receiver t f = t.receiver <- f
let set_client_handler t f = t.on_client <- f

(* ---------- mailbox ---------- *)

let post t f =
  Mutex.lock t.mbox_mu;
  let accepted = not t.stopped in
  if accepted then Queue.push f t.mailbox;
  Mutex.unlock t.mbox_mu;
  if accepted then
    try ignore (Unix.write t.wake_w (Bytes.make 1 'x') 0 1) with
    | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EBADF), _, _)
    -> ()
    | Unix.Unix_error (Unix.EPIPE, _, _) -> ()

let drain_mailbox t =
  let thunks = ref [] in
  Mutex.lock t.mbox_mu;
  while not (Queue.is_empty t.mailbox) do
    thunks := Queue.pop t.mailbox :: !thunks
  done;
  Mutex.unlock t.mbox_mu;
  List.iter
    (fun f ->
      t.events <- t.events + 1;
      f ())
    (List.rev !thunks)

(* ---------- outgoing connections / transmit ---------- *)

let close_conn t c =
  if c.open_ then begin
    c.open_ <- false;
    (try Unix.close c.fd with Unix.Unix_error _ -> ());
    t.conns <- List.filter (fun c' -> c' != c) t.conns
  end

let dial t dst =
  let host, port = t.addrs.(dst) in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  try
    Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
    Unix.setsockopt fd Unix.TCP_NODELAY true;
    write_all fd (frame (hello_body t.self));
    let c = { fd; buf = Buffer.create 64; peer = Node dst; open_ = true } in
    t.outgoing.(dst) <- Some c;
    Some c
  with Unix.Unix_error _ ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    t.outgoing.(dst) <- None;
    None

let drop_outgoing t dst =
  match t.outgoing.(dst) with
  | None -> ()
  | Some c ->
    (try Unix.close c.fd with Unix.Unix_error _ -> ());
    c.open_ <- false;
    t.outgoing.(dst) <- None

(* Write a framed body to [dst], dialing (or redialing once, to pick up a
   restarted peer) as needed. A destination that cannot be reached is a
   crashed process: the frame is dropped. *)
let transmit t ~dst body =
  let s = frame body in
  let conn_to dst =
    match t.outgoing.(dst) with Some c -> Some c | None -> dial t dst
  in
  match conn_to dst with
  | None -> ()
  | Some c -> (
    try write_all c.fd s
    with Unix.Unix_error _ -> (
      drop_outgoing t dst;
      match dial t dst with
      | None -> ()
      | Some c -> (
        try write_all c.fd s
        with Unix.Unix_error _ -> drop_outgoing t dst)))

(* ---------- timers ---------- *)

let set_timer_at t time f = Des.Event_queue.add t.timers ~time f

let set_timer t ~after f =
  set_timer_at t (Des.Sim_time.add (now_time t) after) f

let cancel_timer t h = Des.Event_queue.cancel t.timers h

let fire_due_timers t =
  let rec go () =
    match Des.Event_queue.peek_time t.timers with
    | Some due when Des.Sim_time.compare due (now_time t) <= 0 -> (
      match Des.Event_queue.pop t.timers with
      | None -> ()
      | Some (_, f) ->
        t.events <- t.events + 1;
        f ();
        go ())
    | _ -> ()
  in
  go ()

(* ---------- the protocol-facing send path ---------- *)

let send_wire t ~dst w =
  if t.running then begin
    let src_group = Topology.group_of t.topology t.self in
    let dst_group = Topology.group_of t.topology dst in
    if src_group = dst_group then t.sent_intra <- t.sent_intra + 1
    else t.sent_inter <- t.sent_inter + 1;
    (* Like the DES envelope: carry the sender's RAW clock; the receiver
       applies the inter-group +1 rule from its own view of the groups. *)
    let body = data_body ~lc:t.lc (t.codec.encode w) in
    match t.inject with
    | None -> transmit t ~dst body
    | Some lat ->
      let delay = Latency.sample lat t.rng ~src_group ~dst_group in
      if Des.Sim_time.equal delay Des.Sim_time.zero then
        transmit t ~dst body
      else ignore (set_timer t ~after:delay (fun () -> transmit t ~dst body))
  end

let transport t : 'w Runtime.Transport.t =
  {
    Runtime.Transport.self = t.self;
    topology = t.topology;
    send = (fun ~dst w -> send_wire t ~dst w);
    send_multi = (fun dsts w -> List.iter (fun dst -> send_wire t ~dst w) dsts);
    now = (fun () -> now_time t);
    set_timer =
      (fun ~after f ->
        set_timer t ~after (fun () -> if t.running then f ()));
    cancel_timer = (fun h -> cancel_timer t h);
    lc = (fun () -> t.lc);
    alive = (fun q -> t.alive_view.(q));
    on_crash_detected =
      (fun ~delay callback ->
        t.crash_subs <- (delay, callback) :: t.crash_subs;
        (* Like the engine's oracle: processes already known dead are
           reported too, [delay] after the subscription. *)
        Array.iteri
          (fun q alive ->
            if not alive then
              ignore
                (set_timer t ~after:delay (fun ()
                     -> if t.running then callback q)))
          t.alive_view);
    on_fd_perturb = (fun f -> t.fd_subs <- f :: t.fd_subs);
  }

(* Oracle crash notification, driven by whoever injected the crash (the
   bench harness or the test): mirrors Engine.schedule_crash's fan-out to
   subscribers, [delay] after the announcement. *)
let announce_crash t dead =
  post t (fun () ->
      if t.alive_view.(dead) then begin
        t.alive_view.(dead) <- false;
        List.iter
          (fun (delay, callback) ->
            ignore
              (set_timer t ~after:delay (fun () ->
                   if t.running then callback dead)))
          t.crash_subs
      end)

let announce_recovery t pid = post t (fun () -> t.alive_view.(pid) <- true)

let perturb_fd t scale =
  if scale <= 0. then invalid_arg "Tcp.perturb_fd: scale must be > 0";
  post t (fun () -> List.iter (fun f -> f scale) t.fd_subs)

(* ---------- frame dispatch ---------- *)

let handle_body t (c : conn) body =
  if String.length body = 0 then ()
  else
    match body.[0] with
    | 'H' when String.length body >= 5 ->
      let pid = Int32.to_int (String.get_int32_be body 1) in
      c.peer <- Node pid
    | 'C' -> c.peer <- Client
    | 'D' when String.length body >= 9 -> (
      match c.peer with
      | Node src ->
        let lc_raw = get_int64 body 1 in
        let payload = String.sub body 9 (String.length body - 9) in
        let same_group = Topology.same_group t.topology src t.self in
        let carried = Lclock.on_send ~same_group lc_raw in
        t.lc <- Lclock.on_receive t.lc ~carried;
        t.receiver ~src (t.codec.decode payload)
      | Unknown | Client -> ())
    | 'Q' when String.length body >= 9 -> (
      match c.peer with
      | Client | Unknown ->
        c.peer <- Client;
        let req = get_int64 body 1 in
        let payload = String.sub body 9 (String.length body - 9) in
        t.on_client
          {
            c_conn = c;
            c_node_write =
              (fun conn s ->
                if conn.open_ then
                  try write_all conn.fd s
                  with Unix.Unix_error _ -> close_conn t conn);
          }
          ~req payload
      | Node _ -> ())
    | _ -> ()

let reply client ~req ~ok payload =
  client.c_node_write client.c_conn (frame (reply_body ~req ~ok payload))

let feed t c bytes len =
  Buffer.add_subbytes c.buf bytes 0 len;
  let progress = ref true in
  while !progress do
    progress := false;
    let have = Buffer.length c.buf in
    if have >= 4 then begin
      let contents = Buffer.contents c.buf in
      let n = Int32.to_int (String.get_int32_be contents 0) in
      if n >= 0 && have >= 4 + n then begin
        let body = String.sub contents 4 n in
        Buffer.clear c.buf;
        Buffer.add_substring c.buf contents (4 + n) (have - 4 - n);
        t.events <- t.events + 1;
        handle_body t c body;
        progress := true
      end
    end
  done

(* ---------- the event loop ---------- *)

let read_buf_size = 65536

let loop t =
  let scratch = Bytes.create read_buf_size in
  while t.running do
    drain_mailbox t;
    fire_due_timers t;
    let timeout =
      match Des.Event_queue.peek_time t.timers with
      | None -> 0.2
      | Some due ->
        let d = Des.Sim_time.to_us due - Des.Sim_time.to_us (now_time t) in
        if d <= 0 then 0.0 else Float.min 0.2 (float_of_int d /. 1e6)
    in
    let listen_fds =
      match t.listen_fd with Some fd -> [ fd ] | None -> []
    in
    let fds =
      (t.wake_r :: listen_fds) @ List.map (fun c -> c.fd) t.conns
    in
    let readable, _, _ =
      try Unix.select fds [] [] timeout
      with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
    in
    List.iter
      (fun fd ->
        if fd = t.wake_r then begin
          try ignore (Unix.read fd scratch 0 read_buf_size)
          with Unix.Unix_error _ -> ()
        end
        else if Some fd = t.listen_fd then begin
          try
            let cfd, _ = Unix.accept fd in
            Unix.setsockopt cfd Unix.TCP_NODELAY true;
            t.conns <-
              { fd = cfd; buf = Buffer.create 256; peer = Unknown;
                open_ = true }
              :: t.conns
          with Unix.Unix_error _ -> ()
        end
        else
          match List.find_opt (fun c -> c.fd = fd) t.conns with
          | None -> ()
          | Some c -> (
            match Unix.read fd scratch 0 read_buf_size with
            | 0 -> close_conn t c
            | n -> feed t c scratch n
            | exception Unix.Unix_error _ -> close_conn t c))
      readable
  done;
  (* Teardown in the loop thread, so no reader races a close. *)
  (match t.listen_fd with
  | Some fd ->
    t.listen_fd <- None;
    (try Unix.close fd with Unix.Unix_error _ -> ())
  | None -> ());
  List.iter (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ())
    t.conns;
  t.conns <- [];
  Array.iteri (fun i _ -> drop_outgoing t i) t.outgoing;
  Mutex.lock t.mbox_mu;
  t.stopped <- true;
  Queue.clear t.mailbox;
  Mutex.unlock t.mbox_mu;
  (try Unix.close t.wake_r with Unix.Unix_error _ -> ());
  (try Unix.close t.wake_w with Unix.Unix_error _ -> ())

let start t =
  if t.thread <> None then invalid_arg "Tcp.start: already started";
  t.running <- true;
  t.thread <- Some (Thread.create loop t)

let stop t =
  match t.thread with
  | None -> ()
  | Some th ->
    post t (fun () -> t.running <- false);
    Thread.join th;
    t.thread <- None

let running t = t.running && not t.stopped
let self t = t.self
let sent_intra t = t.sent_intra
let sent_inter t = t.sent_inter
let events_processed t = t.events
let lc t = t.lc
let bump_lc t f = t.lc <- f t.lc

(* ---------- synchronous client side ---------- *)

module Client = struct
  type t = {
    fd : Unix.file_descr;
    mutable next_req : int;
    mutable residue : string;
  }

  let connect (host, port) =
    Lazy.force ignore_sigpipe;
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
    Unix.setsockopt fd Unix.TCP_NODELAY true;
    write_all fd (frame "C");
    { fd; next_req = 0; residue = "" }

  let read_exact t n =
    let b = Bytes.create n in
    let have = String.length t.residue in
    let from_residue = min have n in
    Bytes.blit_string t.residue 0 b 0 from_residue;
    t.residue <-
      String.sub t.residue from_residue (have - from_residue);
    let off = ref from_residue in
    while !off < n do
      match Unix.read t.fd b !off (n - !off) with
      | 0 -> failwith "Tcp.Client: connection closed"
      | k -> off := !off + k
    done;
    Bytes.unsafe_to_string b

  let read_frame t =
    let hdr = read_exact t 4 in
    let n = Int32.to_int (String.get_int32_be hdr 0) in
    read_exact t n

  (* Closed-loop request: write, then block until the matching reply. *)
  let request t payload =
    let req = t.next_req in
    t.next_req <- req + 1;
    write_all t.fd (frame (request_body ~req payload));
    let rec await () =
      let body = read_frame t in
      if String.length body >= 10 && body.[0] = 'R' then begin
        let r = get_int64 body 1 in
        let ok = body.[9] = '\001' in
        let v = String.sub body 10 (String.length body - 10) in
        if r = req then (ok, v) else await ()
      end
      else await ()
    in
    await ()

  let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()
end

(* Write-ahead command log: the durability layer under a replica.

   One file per replica, a flat sequence of length-prefixed records
   (4-byte big-endian length + the encoded command). A replica appends
   the encoded command at delivery, before applying it; on restart,
   [replay] rebuilds the applied prefix. A torn tail (the process died
   mid-append) is detected by the length prefix running past EOF and
   dropped — the command was not acknowledged as applied, so dropping it
   is safe.

   Appends are flushed to the OS on every record: a replica that stops
   (or is killed) loses at most the record being written. Fsync-level
   durability against whole-machine power loss is out of scope — the
   failure model here is crash-stop of the process, matching the
   simulator's. *)

type t = { path : string; mutable chan : out_channel option }

let append_channel path =
  open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 path

let create path = { path; chan = Some (append_channel path) }

let append t record =
  match t.chan with
  | None -> invalid_arg "Wal.append: closed"
  | Some oc ->
    let n = String.length record in
    let hdr = Bytes.create 4 in
    Bytes.set_int32_be hdr 0 (Int32.of_int n);
    output_bytes oc hdr;
    output_string oc record;
    flush oc

let close t =
  match t.chan with
  | None -> ()
  | Some oc ->
    t.chan <- None;
    close_out_noerr oc

let replay_file path =
  if not (Sys.file_exists path) then []
  else begin
    let ic = open_in_bin path in
    let len = in_channel_length ic in
    let records = ref [] in
    let pos = ref 0 in
    (try
       while !pos + 4 <= len do
         let hdr = really_input_string ic 4 in
         let n = Int32.to_int (String.get_int32_be hdr 0) in
         if n < 0 || !pos + 4 + n > len then raise Exit (* torn tail *)
         else begin
           records := really_input_string ic n :: !records;
           pos := !pos + 4 + n
         end
       done
     with Exit | End_of_file -> ());
    close_in_noerr ic;
    List.rev !records
  end

(* Reopen for appending after a replay — the restart path. A torn tail is
   dropped by rewriting the good records to a temporary file and renaming
   it into place (atomic on POSIX), so a crash during recovery never loses
   a durable record. *)
let recover path =
  let records = replay_file path in
  let tmp = path ^ ".tmp" in
  let t0 =
    {
      path = tmp;
      chan =
        Some
          (open_out_gen
             [ Open_wronly; Open_trunc; Open_creat; Open_binary ]
             0o644 tmp);
    }
  in
  List.iter (fun r -> append t0 r) records;
  close t0;
  Sys.rename tmp path;
  (records, { path; chan = Some (append_channel path) })

let path t = t.path

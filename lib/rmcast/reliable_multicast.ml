open Net
open Runtime

type 'p msg =
  | Data of {
      id : Msg_id.t;
      origin : Topology.pid;
      dest : Topology.pid list;
      payload : 'p;
    }
  | Copy of { id : Msg_id.t; origin : Topology.pid; dest : Topology.pid list }
      (* Fast-lane ack: "I hold the payload and vouch for it" without
         re-sending the payload — the uniform mode's majority evidence at
         O(|dest|²) small acks instead of O(|dest|²) payload copies. *)
  | Fetch of { id : Msg_id.t }
      (* Fast-lane payload pull, for the rare race where a Copy beats every
         payload-bearing Data to a process. Answered point-to-point. *)
  | Copies of { acks : (Msg_id.t * Topology.pid * Topology.pid list) list }
      (* Throughput lane: several Copy acks with the same recipients merged
         into one fan-out, so a batch of uniform casts costs O(1) ack
         messages instead of one per cast. Each (id, origin, dest) triple
         is processed exactly as a standalone Copy would be; delaying the
         acks inside the coalescing window is indistinguishable from
         network latency. *)

let tag = function
  | Data _ -> "rm.data"
  | Copy _ -> "rm.copy"
  | Fetch _ -> "rm.fetch"
  | Copies _ -> "rm.copies"

let pp_msg ppf m =
  match m with
  | Data { id; _ } -> Fmt.pf ppf "rm.data(%a)" Msg_id.pp id
  | Copy { id; _ } -> Fmt.pf ppf "rm.copy(%a)" Msg_id.pp id
  | Fetch { id } -> Fmt.pf ppf "rm.fetch(%a)" Msg_id.pp id
  | Copies { acks } -> Fmt.pf ppf "rm.copies(%d)" (List.length acks)

type mode = Eager_nonuniform | Ack_uniform

type 'p known = {
  origin : Topology.pid;
  mutable dest : Topology.pid list;
  mutable payload : 'p option; (* None: only a Copy seen (or reclaimed) *)
  copies : (Topology.pid, unit) Hashtbl.t; (* distinct vouchers seen *)
  mutable relayed : bool;
  mutable delivered : bool;
  mutable fetched : bool; (* a Fetch for the payload is outstanding *)
  mutable reclaimed : bool;
      (* tombstone: bulk state dropped, entry kept for at-most-once *)
}

type ('p, 'w) t = {
  services : 'w Services.t;
  wrap : 'p msg -> 'w;
  mode : mode;
  fast : bool;
  known : 'p known Msg_id.Tbl.t;
  mutable reclaimed_count : int;
  coalesce : (int * Des.Sim_time.t) option;
      (* (max acks per Copies, flush timeout); None sends plain Copy —
         byte-identical to the pre-coalescing protocol *)
  mutable ack_buf :
    (Topology.pid list * (Msg_id.t * Topology.pid * Topology.pid list) list ref)
    list; (* buffered acks keyed by recipient set, insertion order *)
  mutable ack_timer : int option;
  mutable acks_merged : int; (* acks that travelled in a Copies message *)
  mutable copies_sent : int; (* Copies fan-outs those acks collapsed into *)
  on_deliver :
    id:Msg_id.t ->
    origin:Topology.pid ->
    dest:Topology.pid list ->
    'p ->
    unit;
}

let majority dest = (List.length dest / 2) + 1

let find_known t ~id ~origin ~dest =
  match Msg_id.Tbl.find_opt t.known id with
  | Some k -> k
  | None ->
    let k =
      {
        origin;
        dest;
        payload = None;
        copies = Hashtbl.create 4;
        relayed = false;
        delivered = false;
        fetched = false;
        reclaimed = false;
      }
    in
    Msg_id.Tbl.replace t.known id k;
    k

let fan_out t pids w =
  if t.fast then Services.send_multi t.services pids w
  else Services.send_all t.services pids w

let flush_ack_bucket t pids acks =
  t.acks_merged <- t.acks_merged + List.length acks;
  t.copies_sent <- t.copies_sent + 1;
  fan_out t pids (t.wrap (Copies { acks }))

let flush_acks t =
  (match t.ack_timer with
  | Some h ->
    t.services.Services.cancel_timer h;
    t.ack_timer <- None
  | None -> ());
  let buf = t.ack_buf in
  t.ack_buf <- [];
  List.iter (fun (pids, acks) -> flush_ack_bucket t pids (List.rev !acks)) buf

(* Queue one Copy-equivalent ack for [pids]; flush the bucket when it
   reaches the coalescing cap, or [delay] after its first ack. *)
let buffer_ack t ~max ~delay pids ack =
  let bucket =
    match List.assoc_opt pids t.ack_buf with
    | Some b -> b
    | None ->
      let b = ref [] in
      t.ack_buf <- t.ack_buf @ [ (pids, b) ];
      b
  in
  bucket := ack :: !bucket;
  if List.length !bucket >= max then begin
    t.ack_buf <- List.filter (fun (p, _) -> p <> pids) t.ack_buf;
    flush_ack_bucket t pids (List.rev !bucket);
    if t.ack_buf = [] then
      match t.ack_timer with
      | Some h ->
        t.services.Services.cancel_timer h;
        t.ack_timer <- None
      | None -> ()
  end
  else if t.ack_timer = None then
    t.ack_timer <-
      Some
        (t.services.Services.set_timer ~after:delay (fun () ->
             t.ack_timer <- None;
             flush_acks t))

let rec relay t id k =
  if (not k.relayed) && not k.reclaimed then
    match k.payload with
    | None -> () (* fast lane: no payload yet — the Fetch is in flight *)
    | Some payload ->
      k.relayed <- true;
      let self = t.services.Services.self in
      (* Relaying vouches for the message: the relayer counts as one of the
         copy holders the uniform mode's majority test looks for. *)
      Hashtbl.replace k.copies self ();
      let others = List.filter (fun q -> q <> self) k.dest in
      (match t.mode with
      | Ack_uniform when t.fast -> (
        (* The payload travelled once (origin fan-out or Fetch reply);
           vouch with a payload-free Copy — buffered for merging when the
           coalescing lane is on. *)
        match t.coalesce with
        | Some (max, delay) ->
          buffer_ack t ~max ~delay others (id, k.origin, k.dest)
        | None ->
          fan_out t others
            (t.wrap (Copy { id; origin = k.origin; dest = k.dest })))
      | Ack_uniform | Eager_nonuniform ->
        fan_out t others
          (t.wrap (Data { id; origin = k.origin; dest = k.dest; payload })));
      maybe_deliver t id k

and maybe_deliver t id k =
  if
    (not k.delivered) && (not k.reclaimed)
    && List.mem t.services.Services.self k.dest
  then begin
    let ready =
      match t.mode with
      | Eager_nonuniform -> k.payload <> None
      | Ack_uniform ->
        k.payload <> None && Hashtbl.length k.copies >= majority k.dest
    in
    if ready then begin
      k.delivered <- true;
      match k.payload with
      | Some p -> t.on_deliver ~id ~origin:k.origin ~dest:k.dest p
      | None -> assert false
    end
  end

let reclaim t k =
  k.reclaimed <- true;
  k.payload <- None;
  Hashtbl.reset k.copies;
  k.dest <- [];
  t.reclaimed_count <- t.reclaimed_count + 1

(* A Copy/Data from q proves q holds the payload, so once every addressee
   has vouched (and we are done with the message locally) nobody can ever
   Fetch from us again: drop payload, copies and dest. The tombstone stays
   because the origin's payload-bearing Data to us can still be in flight
   (we may have learned the payload through a Fetch reply that overtook
   it) — at-most-once needs the [delivered] flag to survive. *)
let maybe_reclaim t k =
  if
    t.fast && t.mode = Ack_uniform && (not k.reclaimed) && k.relayed
    && (k.delivered || not (List.mem t.services.Services.self k.dest))
    && List.for_all (fun q -> Hashtbl.mem k.copies q) k.dest
  then reclaim t k

let learn t ~id ~origin ~dest ~payload ~from =
  let k = find_known t ~id ~origin ~dest in
  if not k.reclaimed then begin
    if k.payload = None then k.payload <- Some payload;
    Hashtbl.replace k.copies from ();
    (match t.mode with
    | Ack_uniform ->
      (* Uniformity needs everyone to echo before anyone is sure. *)
      relay t id k
    | Eager_nonuniform ->
      (* Origin already down when we learn the message: relay immediately,
         the crash-detection callback has already fired (or soon will, with
         this message not yet known). *)
      if not (t.services.Services.alive k.origin) then relay t id k);
    maybe_deliver t id k;
    maybe_reclaim t k
  end;
  k

let rmcast t ~id ~dest payload =
  let dest = List.sort_uniq Int.compare dest in
  let origin = t.services.Services.self in
  if t.fast then begin
    (* The origin's initial fan-out IS its relay: mark it as such before
       learning so the Ack_uniform path does not fan out twice. *)
    let k = find_known t ~id ~origin ~dest in
    if not k.reclaimed then begin
      if k.payload = None then k.payload <- Some payload;
      Hashtbl.replace k.copies origin ();
      k.relayed <- true;
      fan_out t
        (List.filter (fun q -> q <> origin) dest)
        (t.wrap (Data { id; origin; dest; payload }));
      maybe_deliver t id k;
      maybe_reclaim t k
    end
  end
  else begin
    let k = learn t ~id ~origin ~dest ~payload ~from:origin in
    (* The origin's initial fan-out counts as its relay; it learns its own
       message directly, so no self-send. *)
    k.relayed <- true;
    Services.send_all t.services
      (List.filter (fun q -> q <> origin) dest)
      (t.wrap (Data { id; origin; dest; payload }))
  end

let note_copy t ~from ~id ~origin ~dest =
  let k = find_known t ~id ~origin ~dest in
  if not k.reclaimed then begin
    Hashtbl.replace k.copies from ();
    if k.payload = None && not k.fetched then begin
      (* The payload is still on its way (or its carrier crashed): pull
         it from the voucher, who necessarily holds it. *)
      k.fetched <- true;
      t.services.send ~dst:from (t.wrap (Fetch { id }))
    end;
    maybe_deliver t id k;
    maybe_reclaim t k
  end

let handle t ~src:from m =
  match m with
  | Data { id; origin; dest; payload } ->
    ignore (learn t ~id ~origin ~dest ~payload ~from)
  | Copy { id; origin; dest } -> note_copy t ~from ~id ~origin ~dest
  | Copies { acks } ->
    List.iter
      (fun (id, origin, dest) -> note_copy t ~from ~id ~origin ~dest)
      acks
  | Fetch { id } -> (
    match Msg_id.Tbl.find_opt t.known id with
    | Some ({ payload = Some p; _ } as k) when not k.reclaimed ->
      t.services.send ~dst:from
        (t.wrap (Data { id; origin = k.origin; dest = k.dest; payload = p }))
    | _ -> ())

let delivered t id =
  match Msg_id.Tbl.find_opt t.known id with
  | Some k -> k.delivered
  | None -> false

let retained_entries t = Msg_id.Tbl.length t.known - t.reclaimed_count
let reclaimed_entries t = t.reclaimed_count

(* Acks saved by coalescing: acks carried in Copies fan-outs, minus the
   fan-outs they collapsed into. Zero when the lane is off. *)
let acks_coalesced t = t.acks_merged - t.copies_sent

let create ~services ~wrap ?(mode = Eager_nonuniform)
    ?(oracle_delay = Des.Sim_time.of_ms 50) ?(fast_lanes = true) ?coalesce
    ~on_deliver () =
  let t =
    {
      services;
      wrap;
      mode;
      fast = fast_lanes;
      known = Msg_id.Tbl.create 64;
      reclaimed_count = 0;
      coalesce = (if fast_lanes then coalesce else None);
      ack_buf = [];
      ack_timer = None;
      acks_merged = 0;
      copies_sent = 0;
      on_deliver;
    }
  in
  (match mode with
  | Eager_nonuniform ->
    (* Crash-relay rule: when the origin of a delivered message is reported
       crashed, re-forward once so every correct addressee gets a copy.
       After the relay the payload's local obligations are over — fast mode
       reclaims the bulk state (the tombstone keeps at-most-once intact
       against relays arriving from other deliverers). *)
    services.Services.on_crash_detected ~delay:oracle_delay (fun dead ->
        Msg_id.Tbl.iter
          (fun id k ->
            if k.origin = dead && k.delivered && not k.reclaimed then begin
              relay t id k;
              if t.fast then reclaim t k
            end)
          t.known)
  | Ack_uniform -> ());
  t

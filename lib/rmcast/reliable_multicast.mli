(** Reliable multicast (Section 2.2).

    [R-MCast m] / [R-Deliver m] with per-message destination sets,
    satisfying uniform integrity (deliver at most once, only addressees,
    only if cast), validity (a correct caster's message is delivered by all
    correct addressees) and agreement.

    Two variants:

    - {!Eager_nonuniform} — the paper's default primitive (its multicast
      algorithm deliberately uses a {e non-uniform} reliable multicast,
      Section 4.1). Delivery happens on first receipt — latency degree 1,
      [|dest| - 1] messages in the failure-free case, exactly the
      oracle-based cost Figure 1 assumes for the primitive of Frolund &
      Pedone [6]. Agreement for correct processes is ensured by a
      crash-triggered relay: when the failure oracle reports the origin
      crashed, every process that delivered re-forwards once.

    - {!Ack_uniform} — a uniform variant (used by the Fritzke et al. [5]
      baseline, which relies on uniform reliable multicast): every receiver
      relays on first receipt and delivers only once copies from a majority
      of the destination set have arrived, so a delivery by {e any} process
      (even one about to crash) implies every correct addressee eventually
      delivers. Costs one extra message delay and O(|dest|²) messages.

    The caster need not belong to the destination set; it then sends but
    never delivers.

    {b Fast lanes} (default on, [~fast_lanes:false] restores the reference
    behavior byte for byte):

    - {!Ack_uniform} relays the payload only once. The origin fans out the
      payload-bearing [Data]; every receiver then vouches with a
      payload-free [Copy] ack instead of re-sending the payload, turning
      O(|dest|²) payload copies into O(|dest|²) small acks plus O(|dest|)
      payloads. A process whose [Copy] arrives before any payload pulls it
      point-to-point with [Fetch] (the voucher necessarily holds it).
    - Entry state is garbage-collected: once every addressee has vouched
      and the message is locally settled, the payload, copy set and
      destination list are dropped, leaving a small tombstone that keeps
      delivery at-most-once. In {!Eager_nonuniform}, bulk state is
      reclaimed after the crash-relay obligation fires.
    - Fan-outs ride a single broadcast network event
      ({!Runtime.Services.send_multi}) instead of one event per addressee;
      per-destination arrival times and delivery order are unchanged. *)

type 'p msg

val tag : 'p msg -> string
val pp_msg : Format.formatter -> 'p msg -> unit

type mode = Eager_nonuniform | Ack_uniform

type ('p, 'w) t

val create :
  services:'w Runtime.Services.t ->
  wrap:('p msg -> 'w) ->
  ?mode:mode ->
  ?oracle_delay:Des.Sim_time.t ->
  ?fast_lanes:bool ->
  ?coalesce:int * Des.Sim_time.t ->
  on_deliver:
    (id:Runtime.Msg_id.t ->
    origin:Net.Topology.pid ->
    dest:Net.Topology.pid list ->
    'p ->
    unit) ->
  unit ->
  ('p, 'w) t
(** [create ~services ~wrap ~on_deliver ()] is an endpoint. [mode] defaults
    to {!Eager_nonuniform}; [oracle_delay] (default 50ms) is the detection
    delay of the crash-relay rule; [fast_lanes] (default [true]) enables
    the Copy/Fetch ack relaying and state reclamation described above.
    [coalesce] (default off; requires [fast_lanes]) is the throughput
    lane's [(max, delay)] ack-coalescing policy: {!Ack_uniform} [Copy]
    acks destined to the same recipient set are buffered and merged into
    one [Copies] fan-out, flushed when [max] acks accumulate or [delay]
    after the first. Delaying an ack is indistinguishable from network
    latency, so uniform-delivery safety is unaffected. [on_deliver] fires
    exactly once per R-Delivered message. *)

val rmcast :
  ('p, 'w) t ->
  id:Runtime.Msg_id.t ->
  dest:Net.Topology.pid list ->
  'p ->
  unit
(** Casts a message to [dest] (duplicates ignored). The id must be globally
    unique; {!Runtime.Msg_id} ids qualify. *)

val handle : ('p, 'w) t -> src:Net.Topology.pid -> 'p msg -> unit
(** Feed an incoming reliable-multicast wire message. *)

val delivered : ('p, 'w) t -> Runtime.Msg_id.t -> bool

val retained_entries : ('p, 'w) t -> int
(** Entries still holding bulk state (payload/copy set) or awaiting it. *)

val reclaimed_entries : ('p, 'w) t -> int
(** Entries reduced to at-most-once tombstones by the fast-lane GC. *)

val acks_coalesced : ('p, 'w) t -> int
(** Ack messages saved by coalescing: acks carried inside merged [Copies]
    fan-outs minus the fan-outs themselves. Zero when the lane is off. *)

open Des

type msg = Ping of { seq : int }

let pp_msg ppf (Ping { seq }) = Fmt.pf ppf "ping(%d)" seq

type peer = {
  mutable deadline_timer : int option;
  mutable timeout : Sim_time.t;
  mutable suspected : bool;
}

type 'w t = {
  services : 'w Runtime.Services.t;
  wrap : msg -> 'w;
  peers : (Net.Topology.pid, peer) Hashtbl.t;
  period : Sim_time.t;
  max_timeout : Sim_time.t;
  mutable seq : int;
  mutable listeners : (unit -> unit) list;
  mutable stopped : bool;
  mutable beat_timer : int option;
}

let notify t = List.iter (fun f -> f ()) t.listeners

let rec arm_deadline t _pid peer =
  peer.deadline_timer <-
    Some
      (t.services.set_timer ~after:peer.timeout (fun () ->
           peer.deadline_timer <- None;
           if (not t.stopped) && not peer.suspected then begin
             peer.suspected <- true;
             notify t
           end))

and handle t ~src (Ping _) =
  if not t.stopped then
    match Hashtbl.find_opt t.peers src with
    | None -> ()
    | Some peer ->
      (match peer.deadline_timer with
      | Some h -> t.services.cancel_timer h
      | None -> ());
      if peer.suspected then begin
        (* False suspicion: revoke and back off, the ◇P adaptation rule.
           The doubling is capped at [max_timeout] — unbounded back-off
           would let an FD storm (repeated false suspicions) push the
           timeout past any run horizon, turning the detector inert. *)
        peer.suspected <- false;
        peer.timeout <-
          Sim_time.min t.max_timeout (Sim_time.add peer.timeout peer.timeout);
        notify t
      end;
      arm_deadline t src peer

let rec beat t =
  if not t.stopped then begin
    t.seq <- t.seq + 1;
    let ping = t.wrap (Ping { seq = t.seq }) in
    Hashtbl.iter (fun pid _ -> t.services.send ~dst:pid ping) t.peers;
    t.beat_timer <- Some (t.services.set_timer ~after:t.period (fun () -> beat t))
  end

(* Timed FD perturbation (the nemesis Fd_storm hook): rescale every peer's
   current timeout and re-arm any pending deadline under the new value, so
   a shrink takes effect immediately rather than at the next heartbeat.
   Clamped to [1us, max_timeout]; the ◇P back-off rule then walks a shrunk
   timeout back up as the resulting false suspicions are revoked. *)
let perturb t scale =
  if not t.stopped then
    Hashtbl.iter
      (fun pid peer ->
        let scaled =
          Sim_time.of_us
            (max 1 (int_of_float (scale *. float_of_int (Sim_time.to_us peer.timeout))))
        in
        peer.timeout <- Sim_time.min t.max_timeout scaled;
        match peer.deadline_timer with
        | Some h ->
          t.services.cancel_timer h;
          arm_deadline t pid peer
        | None -> ())
      t.peers

let create ?max_timeout ~services ~wrap ~monitored ~period ~timeout () =
  let max_timeout =
    match max_timeout with
    | Some m -> m
    | None -> Sim_time.of_us (32 * Sim_time.to_us timeout)
  in
  let t =
    {
      services;
      wrap;
      peers = Hashtbl.create 8;
      period;
      max_timeout;
      seq = 0;
      listeners = [];
      stopped = false;
      beat_timer = None;
    }
  in
  List.iter
    (fun pid ->
      if pid <> services.Runtime.Services.self then begin
        let peer = { deadline_timer = None; timeout; suspected = false } in
        Hashtbl.replace t.peers pid peer;
        arm_deadline t pid peer
      end)
    monitored;
  services.Runtime.Services.on_fd_perturb (fun scale -> perturb t scale);
  beat t;
  t

let detector t =
  {
    Detector.suspects =
      (fun q ->
        match Hashtbl.find_opt t.peers q with
        | None -> false
        | Some peer -> peer.suspected);
    subscribe = (fun f -> t.listeners <- t.listeners @ [ f ]);
  }

let stop t =
  t.stopped <- true;
  (match t.beat_timer with
  | Some h -> t.services.cancel_timer h
  | None -> ());
  Hashtbl.iter
    (fun _ peer ->
      match peer.deadline_timer with
      | Some h ->
        t.services.cancel_timer h;
        peer.deadline_timer <- None
      | None -> ())
    t.peers

(** A message-based eventually-perfect failure detector (◇P).

    Every monitored process periodically sends heartbeats to its monitors; a
    monitor suspects a peer whose heartbeat is overdue, and — on discovering
    a false suspicion — revokes it and enlarges that peer's timeout, so in
    any run with bounded (if unknown) delays suspicions are eventually
    accurate and complete.

    The detector is generic over the host protocol's wire type: the host
    embeds {!msg} in its wire variant via [wrap] and routes incoming
    heartbeat messages back with {!handle}.

    Note: a heartbeat detector never becomes quiescent (that is inherent —
    it must keep probing), so the quiescence experiments use the oracle
    detector instead; see {!Detector.oracle}. *)

type msg = Ping of { seq : int }

val pp_msg : Format.formatter -> msg -> unit

type 'w t

val create :
  ?max_timeout:Des.Sim_time.t ->
  services:'w Runtime.Services.t ->
  wrap:(msg -> 'w) ->
  monitored:Net.Topology.pid list ->
  period:Des.Sim_time.t ->
  timeout:Des.Sim_time.t ->
  unit ->
  'w t
(** [create ~services ~wrap ~monitored ~period ~timeout ()] starts emitting
    heartbeats to [monitored] every [period] and monitoring heartbeats from
    them with the initial [timeout]. The local process is ignored if listed
    in [monitored].

    [max_timeout] (default [32 × timeout]) caps the ◇P back-off: each false
    suspicion still doubles the peer's timeout, but never beyond the cap, so
    a storm of false suspicions cannot push detection latency past the run
    horizon. For eventual accuracy the cap must exceed the network's real
    (unknown) delay bound — the default's 32 doublings of headroom is ample
    for the simulated WAN models.

    The detector also registers with the engine's FD-perturbation hook
    ({!Runtime.Services.t}[.on_fd_perturb]): a perturbation rescales every
    peer's current timeout (clamped to [\[1us, max_timeout\]]) and re-arms
    pending deadlines, which is how the harness's [Fd_storm] nemesis action
    forces false suspicions. *)

val handle : 'w t -> src:Net.Topology.pid -> msg -> unit
(** Feed an incoming heartbeat to the detector. *)

val detector : 'w t -> Detector.t
(** The suspicion interface consumed by consensus. *)

val stop : 'w t -> unit
(** Cancels all timers and stops sending heartbeats (used to end tests). *)

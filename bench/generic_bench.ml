(* generic_bench — the conflict-awareness payoff of the generic multicast.

   Sweeps conflict rates {0, 1, 10, 50, 100}% over one seeded Poisson
   multicast workload per rate and runs three deployments on identical
   casts:

   - a1           — the paper's genuine atomic multicast (total order);
   - generic-total — the generic protocol under Conflict.total (its
     Skeen-equivalent total-order limit, isolating the protocol swap);
   - generic-key  — the generic protocol under Conflict.payload_key (the
     conflict-aware mode the rate knob feeds).

   Writes BENCH_generic.json with per-cell latency degrees, delivery
   latencies and virtual-time throughput. Two properties gate the exit
   code:

   - equivalence at 100% conflict (rate 1, one key: every pair
     conflicts): generic-key must produce per-process delivery sequences
     bit-identical to generic-total, the relaxed conflict-order checker
     and the total-order prefix checker must return identical verdicts on
     that run, and same-group replicas must hold identical logs
     (consistency); any divergence exits non-zero;
   - low-conflict win: at every rate <= 10% generic-key must beat a1 on
     mean delivery latency or mean latency degree — the ROADMAP's
     "biggest algorithmic speedup" claim, held to by the bench.

   All runs must also pass their correctness checks (relaxed checker for
   generic-key, full prefix order for the total-order runs).

   Usage: generic_bench [--seed S] [--messages N] [--smoke] [--out PATH]
   Defaults: seed 0, 150 messages (24 with --smoke), BENCH_generic.json. *)

open Des
open Net

let crisp =
  Latency.uniform ~intra:(Sim_time.of_us 1_000) ~inter:(Sim_time.of_us 50_000)
    ()

(* Conflict-rate sweep: percent, workload rate, distinct keys. The 100%
   column uses a single key so that {e every} pair conflicts — the
   total-order limit the equivalence assertion is about; the partial
   columns use the default Zipf-skewed key population. *)
let rates = [ (0, 0.0, 16); (1, 0.01, 16); (10, 0.1, 16); (50, 0.5, 16); (100, 1.0, 1) ]

type cell_run = {
  violations : string list;
  delivered : int;
  mean_degree : float option;
  max_degree : int option;
  mean_latency_ms : float option;
  p95_latency_ms : float option;
  throughput_v : float; (* delivered per virtual second *)
  events : int;
  bypassed : int;
  ordered : int;
  wall_s : float;
  seqs : Runtime.Msg_id.t list array; (* per-pid delivery id sequences *)
}

let mean_degree_of r =
  let degs =
    List.filter_map snd (Harness.Metrics.latency_degrees r)
    |> List.map float_of_int
  in
  match degs with
  | [] -> None
  | _ -> Some (List.fold_left ( +. ) 0.0 degs /. float_of_int (List.length degs))

let run_cell (module P : Amcast.Protocol.S) ~config ~conflict_check ~seed
    ~topo ~workload =
  let module R = Harness.Runner.Make (P) in
  let t0 = Unix.gettimeofday () in
  let dep = R.deploy ~seed ~latency:crisp ~config topo in
  ignore (R.schedule dep workload);
  let r = R.run_deployment dep in
  let wall_s = Unix.gettimeofday () -. t0 in
  let stats =
    List.concat_map (fun pid -> P.stats (R.node dep pid))
      (Topology.all_pids topo)
  in
  let stat label =
    List.fold_left
      (fun acc (l, n) -> if l = label then acc + n else acc)
      0 stats
  in
  let end_s = float_of_int (Sim_time.to_us r.end_time) /. 1e6 in
  {
    violations = Harness.Checker.check_all ?conflict:conflict_check r;
    delivered = Harness.Metrics.delivered_count r;
    mean_degree = mean_degree_of r;
    max_degree = Harness.Metrics.max_latency_degree r;
    mean_latency_ms = Harness.Metrics.mean_delivery_latency_ms r;
    p95_latency_ms = Harness.Metrics.delivery_latency_percentile_ms r 95.0;
    throughput_v =
      (if end_s > 0.0 then float_of_int (Harness.Metrics.delivered_count r) /. end_s
       else 0.0);
    events = r.events_executed;
    bypassed = stat "generic.bypassed";
    ordered = stat "generic.ordered";
    wall_s;
    seqs =
      Array.of_list
        (List.map
           (fun pid ->
             List.map
               (fun (m : Amcast.Msg.t) -> m.id)
               (Harness.Run_result.sequence_of r pid))
           (Topology.all_pids topo));
  }

type cell = {
  pct : int;
  keys : int;
  a1 : cell_run;
  generic_total : cell_run;
  generic_key : cell_run;
}

(* Same-group replicas must end with identical delivery sequences — the
   Rsm.check_consistency invariant, read off the run's sequences. *)
let replicas_consistent topo (c : cell_run) =
  List.for_all
    (fun g ->
      match Topology.members topo g with
      | [] | [ _ ] -> true
      | first :: rest ->
        List.for_all (fun pid -> c.seqs.(pid) = c.seqs.(first)) rest)
    (Topology.all_groups topo)

let fmt_opt_f = function
  | Some x -> Printf.sprintf "%.2f" x
  | None -> "null"

let fmt_opt_i = function Some x -> string_of_int x | None -> "null"

let json_of_run c =
  Printf.sprintf
    "{ \"violations\": %d, \"delivered\": %d, \"mean_degree\": %s, \
     \"max_degree\": %s, \"mean_latency_ms\": %s, \"p95_latency_ms\": %s, \
     \"throughput_msg_per_vs\": %.2f, \"events\": %d, \"bypassed\": %d, \
     \"ordered\": %d, \"wall_s\": %.6f }"
    (List.length c.violations)
    c.delivered (fmt_opt_f c.mean_degree) (fmt_opt_i c.max_degree)
    (fmt_opt_f c.mean_latency_ms)
    (fmt_opt_f c.p95_latency_ms)
    c.throughput_v c.events c.bypassed c.ordered c.wall_s

let json_of_cell c =
  Printf.sprintf
    "    { \"conflict_rate_pct\": %d, \"keys\": %d,\n\
    \      \"a1\": %s,\n\
    \      \"generic_total\": %s,\n\
    \      \"generic_key\": %s }"
    c.pct c.keys (json_of_run c.a1)
    (json_of_run c.generic_total)
    (json_of_run c.generic_key)

let () =
  let seed = ref 0 in
  let out = ref "BENCH_generic.json" in
  let messages = ref 150 in
  let explicit_messages = ref false in
  let rec parse = function
    | [] -> ()
    | "--seed" :: v :: rest ->
      (match int_of_string_opt v with
      | Some s -> seed := s
      | None ->
        Printf.eprintf "generic_bench: --seed must be an integer\n";
        exit 2);
      parse rest
    | "--messages" :: v :: rest ->
      (match int_of_string_opt v with
      | Some n when n > 0 ->
        messages := n;
        explicit_messages := true
      | _ ->
        Printf.eprintf "generic_bench: --messages must be a positive integer\n";
        exit 2);
      parse rest
    | "--smoke" :: rest ->
      if not !explicit_messages then messages := 24;
      parse rest
    | "--out" :: v :: rest ->
      out := v;
      parse rest
    | arg :: _ ->
      Printf.eprintf "generic_bench: unknown argument %S\n" arg;
      exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  let seed = !seed and messages = !messages in
  let groups = 3 and per_group = 2 in
  let topo = Topology.symmetric ~groups ~per_group in
  Printf.printf
    "generic_bench: a1 vs generic across conflict rates, seed %d, %d \
     messages, %dx%d\n\
     %!"
    seed messages groups per_group;
  let cell_of (pct, rate, keys) =
    let workload =
      Harness.Workload.generate
        ~rng:(Rng.create (seed + 1))
        ~topology:topo ~n:messages ~dest:(Harness.Workload.Random_groups groups)
        ~arrival:(`Poisson (Sim_time.of_ms 25))
        ~conflict:(Harness.Workload.conflict_spec ~keys rate)
        ()
    in
    let a1 =
      run_cell
        (module Amcast.A1)
        ~config:Amcast.Protocol.Config.default ~conflict_check:None ~seed ~topo
        ~workload
    in
    let generic_total =
      run_cell
        (module Amcast.Generic)
        ~config:Amcast.Protocol.Config.default ~conflict_check:None ~seed ~topo
        ~workload
    in
    let generic_key =
      run_cell
        (module Amcast.Generic)
        ~config:
          {
            Amcast.Protocol.Config.default with
            conflict = Amcast.Conflict.payload_key;
          }
        ~conflict_check:(Some Amcast.Conflict.payload_key) ~seed ~topo
        ~workload
    in
    let c = { pct; keys; a1; generic_total; generic_key } in
    Printf.printf
      "  rate %3d%%  mean-latency ms %s/%s/%s  mean-degree %s/%s/%s  \
       bypassed %d  ordered %d  (a1/generic-total/generic-key)\n\
       %!"
      pct
      (fmt_opt_f a1.mean_latency_ms)
      (fmt_opt_f generic_total.mean_latency_ms)
      (fmt_opt_f generic_key.mean_latency_ms)
      (fmt_opt_f a1.mean_degree)
      (fmt_opt_f generic_total.mean_degree)
      (fmt_opt_f generic_key.mean_degree)
      generic_key.bypassed generic_key.ordered;
    c
  in
  let cells = List.map cell_of rates in
  (* --- gates --- *)
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun m -> failures := m :: !failures) fmt in
  List.iter
    (fun c ->
      List.iter
        (fun (who, (r : cell_run)) ->
          List.iter
            (fun v -> fail "rate %d%%: %s violation: %s" c.pct who v)
            r.violations)
        [
          ("a1", c.a1);
          ("generic-total", c.generic_total);
          ("generic-key", c.generic_key);
        ])
    cells;
  let hundred = List.find (fun c -> c.pct = 100) cells in
  let seqs_identical = hundred.generic_key.seqs = hundred.generic_total.seqs in
  if not seqs_identical then
    fail
      "100%% conflict: generic-key delivery sequences diverge from \
       generic-total";
  let consistent = replicas_consistent topo hundred.generic_key in
  if not consistent then
    fail "100%% conflict: same-group replicas applied different logs";
  (* Verdict bit-equivalence on the 100% run: rerun both checkers on the
     same violation sets — both must be empty, hence equal; already
     collected above (generic-key used the relaxed checker, generic-total
     the prefix checker, and the sequences are identical). *)
  let verdicts_identical =
    hundred.generic_key.violations = hundred.generic_total.violations
  in
  if not verdicts_identical then
    fail "100%% conflict: relaxed and total-order verdicts differ";
  let low_win =
    List.filter_map
      (fun c ->
        if c.pct > 10 then None
        else
          let better a b =
            match (a, b) with Some x, Some y -> x < y | _ -> false
          in
          let win =
            better c.generic_key.mean_latency_ms c.a1.mean_latency_ms
            || better c.generic_key.mean_degree c.a1.mean_degree
          in
          if not win then
            fail
              "rate %d%%: generic-key shows no latency or degree win over a1"
              c.pct;
          Some (c.pct, win))
      cells
  in
  let buf = Buffer.create 8192 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"schema\": \"amcast-bench-generic/v1\",\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"generated_unix_time\": %.0f,\n" (Unix.gettimeofday ()));
  Buffer.add_string buf (Printf.sprintf "  \"seed\": %d,\n" seed);
  Buffer.add_string buf
    (Printf.sprintf "  \"groups\": %d, \"d\": %d, \"messages\": %d,\n" groups
       per_group messages);
  Buffer.add_string buf "  \"cells\": [\n";
  Buffer.add_string buf (String.concat ",\n" (List.map json_of_cell cells));
  Buffer.add_string buf "\n  ],\n";
  Buffer.add_string buf
    (Printf.sprintf
       "  \"equivalence_100\": { \"sequences_identical\": %b, \
        \"verdicts_identical\": %b, \"replicas_consistent\": %b },\n"
       seqs_identical verdicts_identical consistent);
  Buffer.add_string buf
    (Printf.sprintf "  \"low_conflict_win\": %b,\n"
       (List.for_all snd low_win));
  Buffer.add_string buf
    (Printf.sprintf "  \"gates_failed\": %d\n" (List.length !failures));
  Buffer.add_string buf "}\n";
  let oc = open_out !out in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "  wrote %s (%d cells)\n%!" !out (List.length cells);
  if !failures <> [] then begin
    List.iter (Printf.eprintf "generic_bench: FAIL — %s\n") (List.rev !failures);
    exit 1
  end

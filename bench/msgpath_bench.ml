(* msgpath_bench — steady-state message-path economy of the fast lanes.

   Replays the Figure 1(a)/1(b) workloads (crisp latencies, the exact
   origin placements of bench/main.ml, cast at 300ms) once through the
   fast lanes (Protocol.Config.default) and once through the reference
   message pattern (Protocol.Config.reference), and writes
   BENCH_msgpath.json with per-cell message counts, events, modeled bytes
   and wall clock.

   Two properties are checked; any failure exits non-zero:

   - identity: the fast lanes are an intra-group economy, so on every
     Figure 1 cell the inter-group message count and the latency degree
     must be bit-identical between the two modes;
   - economy: on a steady-state broadcast stream at d >= 3 the intra-group
     consensus messages per executed instance must drop by at least 2x
     (Multi-Paxos lease + coordinator-only Accepted/Decide: 4d-1 vs
     2d^2+2d-1 per instance once the lease is held).

   Usage: msgpath_bench [--seed S] [--out PATH]
   Defaults: seed 0, ./BENCH_msgpath.json. *)

open Des
open Net

let crisp =
  Latency.uniform ~intra:(Sim_time.of_us 1_000) ~inter:(Sim_time.of_us 50_000)
    ()

let ms = Sim_time.of_ms

(* Modeled wire sizes (bytes): a fixed envelope plus a per-kind body. Only
   the relative weights matter; the model prices what the fast lanes
   change — payload-bearing kinds against small acks. *)
let bytes_of_tag tag =
  let envelope = 40 in
  let body =
    match tag with
    | "rm.data" -> 256 (* carries the application payload *)
    | "rm.copy" | "rm.fetch" -> 8
    | "cons.suggest" | "cons.accept" | "cons.decide" | "cons.promise"
    | "cons.lease_promise" ->
      256 (* carry (or may carry) a proposal value *)
    | "cons.prepare" | "cons.accepted" | "cons.lease_prepare" -> 16
    | "a2.bundle" -> 512 (* a whole round's message set *)
    | "a1.ts" | "ring.handoff" | "ring.final" | "scalable.stamp" -> 264
    | _ -> 64
  in
  envelope + body

let trace_bytes trace =
  List.fold_left
    (fun acc entry ->
      match entry with
      | Runtime.Trace.Send { tag; _ } -> acc + bytes_of_tag tag
      | _ -> acc)
    0
    (Runtime.Trace.entries trace)

let has_prefix prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let intra_cons_msgs trace =
  List.fold_left
    (fun acc entry ->
      match entry with
      | Runtime.Trace.Send { tag; inter_group = false; _ }
        when has_prefix "cons." tag ->
        acc + 1
      | _ -> acc)
    0
    (Runtime.Trace.entries trace)

type mode_run = {
  degree : int option;
  inter : int;
  intra : int;
  events : int;
  bytes : int;
  wall_s : float;
}

let mode_run_of (r : Harness.Run_result.t) id wall_s =
  {
    degree = Harness.Metrics.latency_degree r id;
    inter = r.inter_group_msgs;
    intra = r.intra_group_msgs;
    events = r.events_executed;
    bytes = trace_bytes r.trace;
    wall_s;
  }

type cell = {
  experiment : string;
  algorithm : string;
  c_groups : int;
  c_d : int;
  c_k : int;
  fast : mode_run;
  reference : mode_run;
}

let diverges c =
  c.fast.inter <> c.reference.inter || c.fast.degree <> c.reference.degree

(* One multicast to groups [0..k-1]; caster in the last destination group
   (the Figure 1(a) placement of bench/main.ml). *)
let run_multicast (type a) (module P : Amcast.Protocol.S with type t = a)
    ~config ?until ~seed ~groups ~d ~k () =
  let module R = Harness.Runner.Make (P) in
  let topo = Topology.symmetric ~groups ~per_group:d in
  let origin = List.hd (Topology.members topo (k - 1)) in
  let t0 = Unix.gettimeofday () in
  let dep = R.deploy ~seed ~latency:crisp ~config topo in
  let id = R.cast_at dep ~at:(ms 300) ~origin ~dest:(List.init k Fun.id) () in
  let r = R.run_deployment ?until dep in
  mode_run_of r id (Unix.gettimeofday () -. t0)

let run_broadcast (type a) (module P : Amcast.Protocol.S with type t = a)
    ~config ?until ~seed ~groups ~d ~origin () =
  let module R = Harness.Runner.Make (P) in
  let topo = Topology.symmetric ~groups ~per_group:d in
  let t0 = Unix.gettimeofday () in
  let dep = R.deploy ~seed ~latency:crisp ~config topo in
  let id =
    R.cast_at dep ~at:(ms 300) ~origin ~dest:(Topology.all_groups topo) ()
  in
  let r = R.run_deployment ?until dep in
  mode_run_of r id (Unix.gettimeofday () -. t0)

(* A2 with a warm round: discover the warm-up delivery instant, re-run the
   same seed and cast the probe inside the next round (bench/main.ml's
   Theorem 5.1 replication, parameterised by config). *)
let a2_warm ~config ~seed ~groups ~d =
  let module R = Harness.Runner.Make (Amcast.A2) in
  let topo = Topology.symmetric ~groups ~per_group:d in
  let all = Topology.all_groups topo in
  let warm_delivery =
    let dep = R.deploy ~seed ~latency:crisp ~config topo in
    let warm = R.cast_at dep ~at:(ms 1) ~origin:0 ~dest:all () in
    let r = R.run_deployment dep in
    List.find_map
      (fun (e : Harness.Run_result.delivery_event) ->
        if e.pid = 0 && Runtime.Msg_id.equal e.msg.Amcast.Msg.id warm then
          Some e.at
        else None)
      r.deliveries
    |> Option.get
  in
  let t0 = Unix.gettimeofday () in
  let dep = R.deploy ~seed ~latency:crisp ~config topo in
  ignore (R.cast_at dep ~at:(ms 1) ~origin:0 ~dest:all ());
  let probe =
    R.cast_at dep
      ~at:(Sim_time.add warm_delivery (ms 2))
      ~origin:0 ~dest:all ()
  in
  let r = R.run_deployment dep in
  mode_run_of r probe (Unix.gettimeofday () -. t0)

let both ~name ~experiment ~groups ~d ~k run =
  let fast = run Amcast.Protocol.Config.default in
  let reference = run Amcast.Protocol.Config.reference in
  let c =
    {
      experiment;
      algorithm = name;
      c_groups = groups;
      c_d = d;
      c_k = k;
      fast;
      reference;
    }
  in
  Printf.printf
    "  %-9s %-10s g=%d d=%d k=%d  deg %s/%s  inter %d/%d  intra %d/%d  \
     bytes %d/%d%s\n\
     %!"
    c.experiment c.algorithm groups d k
    (match fast.degree with Some x -> string_of_int x | None -> "-")
    (match reference.degree with Some x -> string_of_int x | None -> "-")
    fast.inter reference.inter fast.intra reference.intra fast.bytes
    reference.bytes
    (if diverges c then "  DIVERGENT" else "");
  c

(* The deterministic-merge baseline never quiesces (null stream); a single
   probe under a horizon is enough for the fast-vs-reference identity
   check — it uses neither consensus nor the uniform reliable multicast,
   so both modes must coincide everywhere. *)
let detmerge_config config =
  { config with Amcast.Protocol.Config.null_period = ms 200 }

let figure_1a_cells ~seed =
  let cells = [ (2, 1); (2, 2); (2, 3); (3, 2); (4, 2) ] in
  let groups = 4 in
  List.concat_map
    (fun (k, d) ->
      let mk name run = both ~name ~experiment:"figure-1a" ~groups ~d ~k run in
      [
        mk "ring" (fun config ->
            run_multicast (module Amcast.Ring) ~config ~seed ~groups ~d ~k ());
        mk "scalable" (fun config ->
            run_multicast
              (module Amcast.Scalable)
              ~config ~seed ~groups ~d ~k ());
        mk "fritzke" (fun config ->
            run_multicast
              (module Amcast.Fritzke)
              ~config ~seed ~groups ~d ~k ());
        mk "a1" (fun config ->
            run_multicast (module Amcast.A1) ~config ~seed ~groups ~d ~k ());
        mk "detmerge" (fun config ->
            run_multicast
              (module Amcast.Detmerge)
              ~config:(detmerge_config config)
              ~until:(Sim_time.of_sec 2.) ~seed ~groups ~d ~k ());
      ])
    cells

let figure_1b_cells ~seed =
  let cells = [ (2, 2); (3, 2); (4, 2); (3, 3) ] in
  List.concat_map
    (fun (groups, d) ->
      let mk name run =
        both ~name ~experiment:"figure-1b" ~groups ~d ~k:groups run
      in
      [
        mk "optimistic" (fun config ->
            run_broadcast
              (module Amcast.Optimistic)
              ~config ~seed ~groups ~d ~origin:d ());
        mk "sequencer" (fun config ->
            let origin = if d > 1 then 1 else 0 in
            run_broadcast
              (module Amcast.Sequencer)
              ~config ~seed ~groups ~d ~origin ());
        mk "a2-cold" (fun config ->
            run_broadcast (module Amcast.A2) ~config ~seed ~groups ~d
              ~origin:0 ());
        mk "a2-warm" (fun config -> a2_warm ~config ~seed ~groups ~d);
        mk "detmerge" (fun config ->
            run_broadcast
              (module Amcast.Detmerge)
              ~config:(detmerge_config config)
              ~until:(Sim_time.of_sec 2.) ~seed ~groups ~d ~origin:0 ());
      ])
    cells

(* ------------------------------------------------------------------ *)
(* Steady state: a stream of broadcasts, intra-group consensus messages
   per executed consensus instance, fast vs reference. Instances are
   summed over one representative node per group (every group decides the
   same instance sequence for a broadcast workload), so the per-instance
   figure is the average across groups. *)

type steady = {
  s_protocol : string;
  s_groups : int;
  s_d : int;
  s_msgs : int;
  s_instances : int;
  fast_cons_intra : int;
  ref_cons_intra : int;
  fast_per_instance : float;
  ref_per_instance : float;
  ratio : float;
}

let steady_stream (type a) (module P : Amcast.Protocol.S with type t = a)
    ~(instances_at : a -> int) ~config ~seed ~groups ~d ~n =
  let module R = Harness.Runner.Make (P) in
  let topo = Topology.symmetric ~groups ~per_group:d in
  let dep = R.deploy ~seed ~latency:crisp ~config topo in
  let pids = Array.of_list (Topology.all_pids topo) in
  for i = 0 to n - 1 do
    ignore
      (R.cast_at dep
         ~at:(ms (300 + (20 * i)))
         ~origin:pids.(i mod Array.length pids)
         ~dest:(Topology.all_groups topo) ())
  done;
  let r = R.run_deployment dep in
  let instances =
    List.fold_left
      (fun acc g ->
        acc + instances_at (R.node dep (List.hd (Topology.members topo g))))
      0
      (Topology.all_groups topo)
  in
  (intra_cons_msgs r.trace, instances)

let steady_cell (type a) name (module P : Amcast.Protocol.S with type t = a)
    ~(instances_at : a -> int) ~seed ~groups ~d ~n =
  let run config =
    steady_stream (module P) ~instances_at ~config ~seed ~groups ~d ~n
  in
  let fast_cons_intra, fast_inst = run Amcast.Protocol.Config.default in
  let ref_cons_intra, ref_inst = run Amcast.Protocol.Config.reference in
  let per i inst = float_of_int i /. float_of_int (max 1 inst) in
  let fast_per_instance = per fast_cons_intra fast_inst in
  let ref_per_instance = per ref_cons_intra ref_inst in
  let s =
    {
      s_protocol = name;
      s_groups = groups;
      s_d = d;
      s_msgs = n;
      s_instances = fast_inst;
      fast_cons_intra;
      ref_cons_intra;
      fast_per_instance;
      ref_per_instance;
      ratio = ref_per_instance /. Float.max fast_per_instance 1e-9;
    }
  in
  Printf.printf
    "  steady %-3s g=%d d=%d n=%d  instances %d/%d  cons-intra/inst %.1f -> \
     %.1f  (%.2fx)\n\
     %!"
    name groups d n fast_inst ref_inst ref_per_instance fast_per_instance
    s.ratio;
  s

(* ------------------------------------------------------------------ *)
(* Overlay cells: one multicast over a non-clique WAN geometry, per
   protocol. The overlay's routed-path delays are the latency model, so a
   clique-model protocol's direct spoke-to-spoke send models traffic that
   physically traverses every link on the route — it is charged
   [Overlay.hops] link crossings ([Overlay.inter_crossings] of them
   inter-continental) — while flexcast forwards hop by hop and pays one
   link per send. Genuineness (overlay-aware: off-path groups silent) is
   asserted by the checker on every genuine-protocol cell. *)

type overlay_cell = {
  o_topology : string;
  o_algorithm : string;
  o_groups : int;
  o_d : int;
  o_k : int;
  o_degree : int option;
  o_inter_msgs : int;
  o_link_crossings : int; (* overlay links traversed, all classes *)
  o_intercontinental : int; (* Intercontinental links traversed *)
  o_latency_ms : float option;
  o_violations : string list;
}

let overlay_crossings ov topo trace =
  List.fold_left
    (fun ((links, inter) as acc) entry ->
      match entry with
      | Runtime.Trace.Send { src; dst; inter_group = true; _ } ->
        let sg = Topology.group_of topo src
        and dg = Topology.group_of topo dst in
        ( links + Overlay.hops ov ~src:sg ~dst:dg,
          inter + Overlay.inter_crossings ov ~src:sg ~dst:dg )
      | _ -> acc)
    (0, 0)
    (Runtime.Trace.entries trace)

let run_overlay_cell (module P : Amcast.Protocol.S) ~name ~ov_name ~ov ~seed
    ~d ~dest ~origin ~expect_genuine =
  let module R = Harness.Runner.Make (P) in
  let groups = Overlay.groups ov in
  let topo = Topology.symmetric ~groups ~per_group:d in
  let latency = Overlay.to_latency ov in
  let config = { Amcast.Protocol.Config.default with overlay = Some ov } in
  let dep = R.deploy ~seed ~latency ~config topo in
  let id = R.cast_at dep ~at:(ms 300) ~origin ~dest () in
  let r = R.run_deployment dep in
  let links, inter_c = overlay_crossings ov topo r.trace in
  let violations =
    Harness.Checker.check_all ~expect_genuine ~check_quiescence:true
      ~overlay:ov r
  in
  let c =
    {
      o_topology = ov_name;
      o_algorithm = name;
      o_groups = groups;
      o_d = d;
      o_k = List.length dest;
      o_degree = Harness.Metrics.latency_degree r id;
      o_inter_msgs = r.inter_group_msgs;
      o_link_crossings = links;
      o_intercontinental = inter_c;
      o_latency_ms = Harness.Metrics.mean_delivery_latency_ms r;
      o_violations = violations;
    }
  in
  Printf.printf
    "  overlay %-5s %-9s g=%d d=%d k=%d  deg %s  inter %d  links %d  \
     intercontinental %d  lat %s%s\n\
     %!"
    ov_name name groups d (List.length dest)
    (match c.o_degree with Some x -> string_of_int x | None -> "-")
    c.o_inter_msgs links inter_c
    (match c.o_latency_ms with
    | Some l -> Printf.sprintf "%.0fms" l
    | None -> "-")
    (if violations = [] then "" else "  VIOLATIONS");
  c

(* Hub: spokes 1 and 3 multicast (origin in the last destination group,
   the Figure 1(a) placement), so every clique-model direct send between
   the two spokes crosses the hub's two inter-continental links. Ring:
   groups 2 and 4 of a 5-ring, with group 3 an interior relay group on
   the 2--4 stamp route. A2 is broadcast-only: its cells cast to every
   group from group 0. *)
let overlay_cells ~seed =
  let multicast (ov_name, ov, dest) =
    let d = 2 in
    let topo = Topology.symmetric ~groups:(Overlay.groups ov) ~per_group:d in
    let origin =
      List.hd (Topology.members topo (List.nth dest (List.length dest - 1)))
    in
    let mk name proto expect_genuine =
      run_overlay_cell proto ~name ~ov_name ~ov ~seed ~d ~dest ~origin
        ~expect_genuine
    in
    let all = Topology.all_groups topo in
    [
      mk "a1" (module Amcast.A1 : Amcast.Protocol.S) true;
      mk "skeen" (module Amcast.Skeen) true;
      mk "whitebox" (module Amcast.Whitebox) true;
      mk "flexcast" (module Amcast.Flexcast) true;
      run_overlay_cell
        (module Amcast.A2)
        ~name:"a2" ~ov_name ~ov ~seed ~d ~dest:all ~origin:0
        ~expect_genuine:false;
    ]
  in
  List.concat_map multicast
    [
      ("hub", Overlay.hub ~groups:4, [ 1; 3 ]);
      ("ring", Overlay.ring ~groups:5, [ 2; 4 ]);
    ]

(* ------------------------------------------------------------------ *)

let json_of_mode m =
  Printf.sprintf
    "{ \"degree\": %s, \"inter_msgs\": %d, \"intra_msgs\": %d, \"events\": \
     %d, \"bytes_modeled\": %d, \"wall_s\": %.6f }"
    (match m.degree with Some x -> string_of_int x | None -> "null")
    m.inter m.intra m.events m.bytes m.wall_s

let json_of_cell c =
  Printf.sprintf
    "    { \"experiment\": \"%s\", \"algorithm\": \"%s\", \"groups\": %d, \
     \"d\": %d, \"k\": %d,\n\
    \      \"fast\": %s,\n\
    \      \"reference\": %s,\n\
    \      \"inter_identical\": %b, \"degree_identical\": %b }"
    c.experiment c.algorithm c.c_groups c.c_d c.c_k (json_of_mode c.fast)
    (json_of_mode c.reference)
    (c.fast.inter = c.reference.inter)
    (c.fast.degree = c.reference.degree)

let json_of_overlay c =
  Printf.sprintf
    "    { \"topology\": \"%s\", \"algorithm\": \"%s\", \"groups\": %d, \
     \"d\": %d, \"k\": %d,\n\
    \      \"degree\": %s, \"inter_msgs\": %d, \"link_crossings\": %d, \
     \"intercontinental_msgs\": %d,\n\
    \      \"latency_ms\": %s, \"violations\": %d }"
    c.o_topology c.o_algorithm c.o_groups c.o_d c.o_k
    (match c.o_degree with Some x -> string_of_int x | None -> "null")
    c.o_inter_msgs c.o_link_crossings c.o_intercontinental
    (match c.o_latency_ms with
    | Some l -> Printf.sprintf "%.1f" l
    | None -> "null")
    (List.length c.o_violations)

let json_of_steady s =
  Printf.sprintf
    "    { \"protocol\": \"%s\", \"groups\": %d, \"d\": %d, \"msgs\": %d, \
     \"instances\": %d,\n\
    \      \"fast_cons_intra_msgs\": %d, \"reference_cons_intra_msgs\": %d,\n\
    \      \"fast_cons_intra_per_instance\": %.2f, \
     \"reference_cons_intra_per_instance\": %.2f, \"reduction\": %.2f }"
    s.s_protocol s.s_groups s.s_d s.s_msgs s.s_instances s.fast_cons_intra
    s.ref_cons_intra s.fast_per_instance s.ref_per_instance s.ratio

let () =
  let seed = ref 0 in
  let out = ref "BENCH_msgpath.json" in
  let rec parse = function
    | [] -> ()
    | "--seed" :: v :: rest ->
      seed := int_of_string v;
      parse rest
    | "--out" :: v :: rest ->
      out := v;
      parse rest
    | arg :: _ ->
      Printf.eprintf "msgpath_bench: unknown argument %S\n" arg;
      exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  let seed = !seed in
  Printf.printf
    "msgpath_bench: Figure 1 identity + steady-state economy, seed %d\n%!"
    seed;
  let cells = figure_1a_cells ~seed @ figure_1b_cells ~seed in
  let overlays = overlay_cells ~seed in
  let steadies =
    [
      steady_cell "a1"
        (module Amcast.A1)
        ~instances_at:Amcast.A1.consensus_instances_executed ~seed ~groups:2
        ~d:3 ~n:20;
      steady_cell "a2"
        (module Amcast.A2)
        ~instances_at:Amcast.A2.rounds_executed ~seed ~groups:2 ~d:3 ~n:20;
    ]
  in
  let divergent = List.filter diverges cells in
  let min_ratio =
    List.fold_left (fun acc s -> Float.min acc s.ratio) infinity steadies
  in
  (* Overlay gates: every overlay cell passes its checks (including
     overlay genuineness), and on the hub geometry flexcast's hop-by-hop
     routing crosses strictly fewer inter-continental links per cast than
     a1's direct sends. *)
  let overlay_violations =
    List.fold_left (fun acc c -> acc + List.length c.o_violations) 0 overlays
  in
  let intercontinental ~topology ~algorithm =
    List.find_map
      (fun c ->
        if c.o_topology = topology && c.o_algorithm = algorithm then
          Some c.o_intercontinental
        else None)
      overlays
    |> Option.get
  in
  let hub_flexcast = intercontinental ~topology:"hub" ~algorithm:"flexcast" in
  let hub_a1 = intercontinental ~topology:"hub" ~algorithm:"a1" in
  let buf = Buffer.create 16384 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"schema\": \"amcast-bench-msgpath/v1\",\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"generated_unix_time\": %.0f,\n"
       (Unix.gettimeofday ()));
  Buffer.add_string buf (Printf.sprintf "  \"seed\": %d,\n" seed);
  Buffer.add_string buf "  \"cells\": [\n";
  Buffer.add_string buf (String.concat ",\n" (List.map json_of_cell cells));
  Buffer.add_string buf "\n  ],\n";
  Buffer.add_string buf "  \"steady_state\": [\n";
  Buffer.add_string buf
    (String.concat ",\n" (List.map json_of_steady steadies));
  Buffer.add_string buf "\n  ],\n";
  Buffer.add_string buf "  \"overlay_cells\": [\n";
  Buffer.add_string buf
    (String.concat ",\n" (List.map json_of_overlay overlays));
  Buffer.add_string buf "\n  ],\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"divergent_cells\": %d,\n" (List.length divergent));
  Buffer.add_string buf
    (Printf.sprintf "  \"overlay_violations\": %d,\n" overlay_violations);
  Buffer.add_string buf
    (Printf.sprintf
       "  \"hub_intercontinental_flexcast\": %d,\n\
       \  \"hub_intercontinental_a1\": %d,\n"
       hub_flexcast hub_a1);
  Buffer.add_string buf
    (Printf.sprintf "  \"min_steady_state_reduction\": %.2f\n"
       (if min_ratio = infinity then 0. else min_ratio));
  Buffer.add_string buf "}\n";
  let oc = open_out !out in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf
    "  wrote %s (%d cells, %d divergent; min steady-state reduction %.2fx)\n\
     %!"
    !out (List.length cells) (List.length divergent)
    (if min_ratio = infinity then 0. else min_ratio);
  if divergent <> [] then begin
    Printf.eprintf
      "msgpath_bench: FAIL — %d cell(s) where fast lanes change inter-group \
       counts or latency degrees\n"
      (List.length divergent);
    exit 1
  end;
  if min_ratio < 2.0 then begin
    Printf.eprintf
      "msgpath_bench: FAIL — steady-state consensus-message reduction %.2fx \
       < 2x at d >= 3\n"
      min_ratio;
    exit 1
  end;
  if overlay_violations > 0 then begin
    Printf.eprintf
      "msgpath_bench: FAIL — %d violation(s) in overlay cells (overlay \
       genuineness or agreement broken)\n"
      overlay_violations;
    exit 1
  end;
  if hub_flexcast >= hub_a1 then begin
    Printf.eprintf
      "msgpath_bench: FAIL — flexcast crossed %d inter-continental links \
       per cast on the hub, a1 %d; hop-by-hop routing must be strictly \
       cheaper\n"
      hub_flexcast hub_a1;
    exit 1
  end

(* verify_bench — machine-readable verification-path baselines.

   Generates seeded runs at several message scales, times (a) the
   simulation itself (protocol-event throughput) and (b) the checker
   suite over the finished run, both through the indexed fast paths and
   through the retained naive reference implementations, and writes
   BENCH_verify.json so the verification-perf trajectory is tracked
   across PRs alongside BENCH_campaign.json.

   At every compared scale the two checker paths must report identical
   violation sets (the differential guarantee the unit suite asserts at
   small scale); any mismatch exits non-zero. The naive causal checker
   is O(casts^2 * trace), so the comparison matrix stops at --scales
   while the fast path continues alone through --fast-scales to show its
   wall time stays near-linear in deliveries.

   Usage: verify_bench [--seed S] [--scales N,N,..] [--fast-scales N,N,..]
                       [--repeats R] [--out PATH]
   Defaults: seed 7, scales 25,50,100,200, fast-scales 400,800,
   3 repeats, ./BENCH_verify.json. *)

open Net

type target = {
  name : string;
  proto : (module Amcast.Protocol.S);
  broadcast_only : bool;
}

let matrix =
  [
    { name = "a1"; proto = (module Amcast.A1 : Amcast.Protocol.S);
      broadcast_only = false };
    { name = "a2"; proto = (module Amcast.A2); broadcast_only = true };
    { name = "skeen"; proto = (module Amcast.Skeen); broadcast_only = false };
  ]

type row = {
  protocol : string;
  n_msgs : int;
  deliveries : int;
  casts : int;
  trace_len : int;
  events : int;
  run_wall_s : float;
  fast_core_s : float;
      (* integrity + validity + agreement + prefix + genuineness: the
         single-pass suite, near-linear in deliveries + trace *)
  fast_causal_s : float;  (* bitset reachability: O(casts * trace) *)
  fast_check_s : float;  (* core + causal *)
  naive_check_s : float option;  (* None beyond the comparison matrix *)
  violations_fast : int;
  differential_ok : bool option;
}

let generate_run t ~seed ~n =
  let module P = (val t.proto : Amcast.Protocol.S) in
  let module R = Harness.Runner.Make (P) in
  let topo = Topology.symmetric ~groups:3 ~per_group:3 in
  let rng = Des.Rng.create (seed + n) in
  let workload =
    Harness.Workload.generate ~rng ~topology:topo ~n
      ~dest:
        (if t.broadcast_only then Harness.Workload.To_all_groups
         else Harness.Workload.Random_groups 3)
      ~arrival:(`Poisson (Des.Sim_time.of_ms 10))
      ()
  in
  let t0 = Unix.gettimeofday () in
  let r = R.run ~seed ~latency:Latency.wan_default topo workload in
  (r, Unix.gettimeofday () -. t0)

let fast_core (r : Harness.Run_result.t) =
  (* Reset the memoised index so every repetition pays the full indexed
     cost, construction included. *)
  r.Harness.Run_result.index_memo <- None;
  Harness.Checker.uniform_integrity r
  @ Harness.Checker.validity r
  @ Harness.Checker.uniform_agreement r
  @ Harness.Checker.uniform_prefix_order r
  @ Harness.Checker.genuineness r

let fast_causal (r : Harness.Run_result.t) =
  Harness.Checker.causal_delivery_order r

let naive_suite (r : Harness.Run_result.t) =
  r.Harness.Run_result.index_memo <- None;
  Harness.Checker.Reference.uniform_prefix_order r
  @ Harness.Checker.Reference.genuineness r
  @ Harness.Checker.Reference.causal_delivery_order r

let time_suite ~repeats suite r =
  let result = ref [] in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to repeats do
    result := suite r
  done;
  ((Unix.gettimeofday () -. t0) /. float_of_int repeats, !result)

let sorted = List.sort_uniq String.compare

let bench_row ~seed ~repeats ~compare_naive t n =
  let r, run_wall_s = generate_run t ~seed ~n in
  let fast_core_s, _ = time_suite ~repeats fast_core r in
  let fast_causal_s, causal_v = time_suite ~repeats fast_causal r in
  let fast_check_s = fast_core_s +. fast_causal_s in
  let fast_v =
    Harness.Checker.uniform_prefix_order r
    @ Harness.Checker.genuineness r
    @ causal_v
  in
  let naive =
    if compare_naive then Some (time_suite ~repeats:1 naive_suite r)
    else None
  in
  let differential_ok =
    Option.map (fun (_, naive_v) -> sorted fast_v = sorted naive_v) naive
  in
  {
    protocol = t.name;
    n_msgs = n;
    deliveries = List.length r.Harness.Run_result.deliveries;
    casts = List.length r.Harness.Run_result.casts;
    trace_len = Runtime.Trace.length r.Harness.Run_result.trace;
    events = r.Harness.Run_result.events_executed;
    run_wall_s;
    fast_core_s;
    fast_causal_s;
    fast_check_s;
    naive_check_s = Option.map fst naive;
    violations_fast = List.length fast_v;
    differential_ok;
  }

let json_of_row r =
  let opt_f = function
    | Some v -> Printf.sprintf "%.6f" v
    | None -> "null"
  in
  let speedup =
    match r.naive_check_s with
    | Some n when r.fast_check_s > 0. ->
      Printf.sprintf "%.2f" (n /. r.fast_check_s)
    | _ -> "null"
  in
  Printf.sprintf
    {|    {
      "protocol": "%s",
      "n_msgs": %d,
      "deliveries": %d,
      "casts": %d,
      "trace_len": %d,
      "events": %d,
      "run_wall_s": %.6f,
      "events_per_s": %.0f,
      "fast_core_s": %.6f,
      "fast_core_us_per_delivery": %.3f,
      "fast_causal_s": %.6f,
      "fast_check_s": %.6f,
      "naive_check_s": %s,
      "checker_speedup": %s,
      "violations_fast": %d,
      "differential_ok": %s
    }|}
    r.protocol r.n_msgs r.deliveries r.casts r.trace_len r.events
    r.run_wall_s
    (float_of_int r.events /. r.run_wall_s)
    r.fast_core_s
    (1e6 *. r.fast_core_s /. float_of_int (max 1 r.deliveries))
    r.fast_causal_s r.fast_check_s
    (opt_f r.naive_check_s) speedup r.violations_fast
    (match r.differential_ok with
    | Some b -> string_of_bool b
    | None -> "null")

let parse_scales s = String.split_on_char ',' s |> List.map int_of_string

let () =
  let seed = ref 7 in
  let scales = ref [ 25; 50; 100; 200 ] in
  let fast_scales = ref [ 400; 800 ] in
  let repeats = ref 3 in
  let out = ref "BENCH_verify.json" in
  let rec parse = function
    | "--seed" :: v :: rest -> seed := int_of_string v; parse rest
    | "--scales" :: v :: rest -> scales := parse_scales v; parse rest
    | "--fast-scales" :: v :: rest ->
      fast_scales := (if v = "" then [] else parse_scales v);
      parse rest
    | "--repeats" :: v :: rest -> repeats := int_of_string v; parse rest
    | "--out" :: v :: rest -> out := v; parse rest
    | [] -> ()
    | a :: _ ->
      Printf.eprintf
        "verify_bench: unknown argument %s\n\
         usage: verify_bench [--seed S] [--scales N,..] [--fast-scales \
         N,..] [--repeats R] [--out PATH]\n"
        a;
      exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  let seed = !seed and repeats = max 1 !repeats in
  Printf.printf
    "verify_bench: %d protocols, compared scales [%s], fast-only [%s], \
     seed %d\n\
     %!"
    (List.length matrix)
    (String.concat "," (List.map string_of_int !scales))
    (String.concat "," (List.map string_of_int !fast_scales))
    seed;
  let rows =
    List.concat_map
      (fun t ->
        List.map
          (fun (n, compare_naive) ->
            let row = bench_row ~seed ~repeats ~compare_naive t n in
            Printf.printf
              "  %-6s n=%4d  del=%5d  run %7.3fs  core %8.5fs  causal \
               %8.5fs  %s\n%!"
              row.protocol row.n_msgs row.deliveries row.run_wall_s
              row.fast_core_s row.fast_causal_s
              (match row.naive_check_s with
              | Some s ->
                Printf.sprintf "naive %8.5fs  %7.1fx%s" s
                  (s /. row.fast_check_s)
                  (match row.differential_ok with
                  | Some true -> ""
                  | Some false -> "  DIFFERENTIAL MISMATCH"
                  | None -> "")
              | None -> "naive skipped");
            row)
          (List.map (fun n -> (n, true)) !scales
          @ List.map (fun n -> (n, false)) !fast_scales))
      matrix
  in
  (* The headline number: the worst checker speedup among the rows of the
     largest compared scale. *)
  let largest = List.fold_left max 0 !scales in
  let speedup_at_largest =
    List.filter_map
      (fun r ->
        match r.naive_check_s with
        | Some n when r.n_msgs = largest && r.fast_check_s > 0. ->
          Some (n /. r.fast_check_s)
        | _ -> None)
      rows
    |> List.fold_left min infinity
  in
  let mismatches =
    List.filter (fun r -> r.differential_ok = Some false) rows
  in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"schema\": \"amcast-bench-verify/v1\",\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"generated_unix_time\": %.0f,\n"
       (Unix.gettimeofday ()));
  Buffer.add_string buf
    (Printf.sprintf
       "  \"matrix\": { \"seed\": %d, \"repeats\": %d, \"scales\": [%s], \
        \"fast_only_scales\": [%s], \"protocols\": [%s] },\n"
       seed repeats
       (String.concat ", " (List.map string_of_int !scales))
       (String.concat ", " (List.map string_of_int !fast_scales))
       (String.concat ", "
          (List.map (fun t -> Printf.sprintf "\"%s\"" t.name) matrix)));
  Buffer.add_string buf "  \"results\": [\n";
  Buffer.add_string buf (String.concat ",\n" (List.map json_of_row rows));
  Buffer.add_string buf "\n  ],\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"checker_speedup_at_largest_compared\": %s,\n"
       (if speedup_at_largest = infinity then "null"
        else Printf.sprintf "%.2f" speedup_at_largest));
  Buffer.add_string buf
    (Printf.sprintf "  \"differential_mismatches\": %d\n"
       (List.length mismatches));
  Buffer.add_string buf "}\n";
  let oc = open_out !out in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "  wrote %s (speedup at n=%d: %s)\n%!" !out largest
    (if speedup_at_largest = infinity then "n/a"
     else Printf.sprintf "%.1fx" speedup_at_largest);
  if mismatches <> [] then begin
    Printf.eprintf
      "verify_bench: FAIL — %d scale(s) where fast and naive checkers \
       disagree\n"
      (List.length mismatches);
    exit 1
  end

(* Reproduction harness: one experiment per table, figure and theorem of the
   paper, printed as paper-vs-measured rows, plus a Bechamel timing bench per
   experiment. See DESIGN.md section 5 for the experiment index and
   EXPERIMENTS.md for recorded outcomes.

   Usage: dune exec bench/main.exe [-- --only ID] [-- --no-bechamel]
   where ID is one of: figure-1a figure-1b theorem-4-1 theorem-5-1
   theorem-5-2 lower-bound quiescence tradeoff a2-frequency a1-ablation. *)

open Des
open Net

let crisp =
  Latency.uniform ~intra:(Sim_time.of_us 1_000) ~inter:(Sim_time.of_us 50_000)
    ()

let ms = Sim_time.of_ms

(* ------------------------------------------------------------------ *)
(* Small table printer *)

let hr width = print_endline (String.make width '-')

let print_table ~title ~header rows =
  (* Materialise rows as arrays: the List.nth-per-cell version was
     O(cols^2) per row, noticeable on the wide Figure 1 tables. *)
  let all = List.map Array.of_list (header :: rows) in
  let cols = List.length header in
  let widths = Array.make cols 0 in
  List.iter
    (fun row ->
      Array.iteri
        (fun i cell -> widths.(i) <- max widths.(i) (String.length cell))
        row)
    all;
  let render row =
    String.concat "  "
      (Array.to_list
         (Array.mapi
            (fun i cell ->
              cell ^ String.make (widths.(i) - String.length cell) ' ')
            row))
  in
  let header = Array.of_list header in
  let rows = List.map Array.of_list rows in
  let total = Array.fold_left ( + ) (2 * (cols - 1)) widths in
  print_newline ();
  print_endline title;
  hr total;
  print_endline (render header);
  hr total;
  List.iter (fun row -> print_endline (render row)) rows;
  hr total

let stri = string_of_int
let str_deg = function None -> "-" | Some d -> stri d

(* ------------------------------------------------------------------ *)
(* Generic protocol driving via first-class modules *)

type mrun = {
  degree : int option;
  inter : int;
  intra : int;
  by_tag : (string * int) list;
  wall_ms : float option;
}

(* One multicast to groups [0..k-1] of a [groups]×[d] topology. The caster
   sits in the *last* destination group — the placement under which every
   algorithm meets its Figure 1 row (a caster in the first group would give
   the ring algorithm a head start, for instance). *)
let run_multicast (type a) (module P : Amcast.Protocol.S with type t = a)
    ?(config = Amcast.Protocol.Config.default) ?until ?(seed = 0) ~groups ~d
    ~k () =
  let module R = Harness.Runner.Make (P) in
  let topo = Topology.symmetric ~groups ~per_group:d in
  let dest = List.init k Fun.id in
  let origin = List.hd (Topology.members topo (k - 1)) in
  let dep = R.deploy ~seed ~latency:crisp ~config topo in
  let id = R.cast_at dep ~at:(ms 300) ~origin ~dest () in
  let r = R.run_deployment ?until dep in
  {
    degree = Harness.Metrics.latency_degree r id;
    inter = r.inter_group_msgs;
    intra = r.intra_group_msgs;
    by_tag = Harness.Metrics.messages_by_tag r;
    wall_ms =
      Option.map Sim_time.to_ms_float (Harness.Metrics.delivery_latency r id);
  }

(* One broadcast on a [groups]×[d] topology, caster chosen per protocol
   (see each experiment). *)
let run_broadcast (type a) (module P : Amcast.Protocol.S with type t = a)
    ?(config = Amcast.Protocol.Config.default) ?until ?(seed = 0) ~groups ~d
    ~origin () =
  let module R = Harness.Runner.Make (P) in
  let topo = Topology.symmetric ~groups ~per_group:d in
  let dep = R.deploy ~seed ~latency:crisp ~config topo in
  let id =
    R.cast_at dep ~at:(ms 300) ~origin ~dest:(Topology.all_groups topo) ()
  in
  let r = R.run_deployment ?until dep in
  {
    degree = Harness.Metrics.latency_degree r id;
    inter = r.inter_group_msgs;
    intra = r.intra_group_msgs;
    by_tag = Harness.Metrics.messages_by_tag r;
    wall_ms =
      Option.map Sim_time.to_ms_float (Harness.Metrics.delivery_latency r id);
  }

(* A2 with warm rounds: phase 1 discovers (deterministically) when a warm-up
   broadcast is delivered at the prospective caster; phase 2 re-runs the
   same seed and casts the probe inside the next round's proposal grace. *)
let a2_warm ~groups ~d =
  let module R = Harness.Runner.Make (Amcast.A2) in
  let topo = Topology.symmetric ~groups ~per_group:d in
  let all = Topology.all_groups topo in
  let warm_delivery =
    let dep = R.deploy ~seed:0 ~latency:crisp topo in
    let warm = R.cast_at dep ~at:(ms 1) ~origin:0 ~dest:all () in
    let r = R.run_deployment dep in
    List.find_map
      (fun (e : Harness.Run_result.delivery_event) ->
        if e.pid = 0 && Runtime.Msg_id.equal e.msg.Amcast.Msg.id warm then
          Some e.at
        else None)
      r.deliveries
    |> Option.get
  in
  let dep = R.deploy ~seed:0 ~latency:crisp topo in
  ignore (R.cast_at dep ~at:(ms 1) ~origin:0 ~dest:all ());
  let probe =
    R.cast_at dep
      ~at:(Sim_time.add warm_delivery (ms 2))
      ~origin:0 ~dest:all ()
  in
  let r = R.run_deployment dep in
  {
    degree = Harness.Metrics.latency_degree r probe;
    inter = r.inter_group_msgs;
    intra = r.intra_group_msgs;
    by_tag = Harness.Metrics.messages_by_tag r;
    wall_ms =
      Option.map Sim_time.to_ms_float
        (Harness.Metrics.delivery_latency r probe);
  }

let tag_count tags prefix =
  List.fold_left
    (fun acc (tag, n) ->
      if
        String.length tag >= String.length prefix
        && String.sub tag 0 (String.length prefix) = prefix
      then acc + n
      else acc)
    0 tags

let detmerge_config =
  { Amcast.Protocol.Config.default with null_period = ms 200 }

(* The deterministic-merge baseline is only degree-1 under its own model:
   publishers cast infinitely many messages, so the stream entries that
   gate a message's merge were already in flight when it was cast (not
   causally after it). We therefore measure it on a saturated workload —
   every process multicasts to the same destination set every 20ms — and
   report the *minimum* degree over mid-stream messages, which is exactly
   the paper's definition of an algorithm's latency degree (the minimum of
   ∆(m, R) over admissible runs and messages). *)
let run_detmerge_stream ~groups ~d ~k =
  let module R = Harness.Runner.Make (Amcast.Detmerge) in
  let topo = Topology.symmetric ~groups ~per_group:d in
  let dest = List.init k Fun.id in
  let dep = R.deploy ~seed:0 ~latency:crisp ~config:detmerge_config topo in
  let ids = ref [] in
  List.iter
    (fun origin ->
      for i = 0 to 4 do
        ids :=
          R.cast_at dep
            ~at:(ms (300 + (20 * i) + origin))
            ~origin ~dest ()
          :: !ids
      done)
    (Topology.all_pids topo);
  let r = R.run_deployment ~until:(Sim_time.of_sec 1.5) dep in
  let degrees =
    List.filter_map (fun id -> Harness.Metrics.latency_degree r id) !ids
  in
  let min_deg = List.fold_left min max_int degrees in
  let n_msgs = List.length !ids in
  let pub_msgs = tag_count (Harness.Metrics.messages_by_tag r) "dm.pub" in
  {
    degree = (if degrees = [] then None else Some min_deg);
    inter = pub_msgs / max 1 n_msgs (* marginal inter-group copies/message *);
    intra = r.intra_group_msgs;
    by_tag = Harness.Metrics.messages_by_tag r;
    wall_ms = None;
  }

(* ------------------------------------------------------------------ *)
(* F1a — Figure 1(a): atomic multicast comparison *)

let figure_1a () =
  let cells = [ (2, 1); (2, 2); (2, 3); (3, 2); (4, 2) ] in
  let groups = 4 in
  let rows = ref [] in
  let add name paper_deg paper_msgs formula measure =
    List.iter
      (fun (k, d) ->
        let m = measure ~k ~d in
        rows :=
          [
            name;
            stri k;
            stri d;
            paper_deg k;
            str_deg m.degree;
            paper_msgs;
            stri (formula ~k ~d).Harness.Complexity.inter_msgs;
            stri m.inter;
          ]
          :: !rows)
      cells
  in
  add "[4] ring"
    (fun k -> stri (k + 1))
    "O(kd^2)" Harness.Complexity.ring
    (fun ~k ~d -> run_multicast (module Amcast.Ring) ~groups ~d ~k ());
  add "[10] scalable"
    (fun _ -> "4")
    "O(k^2d^2)" Harness.Complexity.scalable
    (fun ~k ~d -> run_multicast (module Amcast.Scalable) ~groups ~d ~k ());
  add "[5] fritzke"
    (fun _ -> "2")
    "O(k^2d^2)" Harness.Complexity.fritzke
    (fun ~k ~d -> run_multicast (module Amcast.Fritzke) ~groups ~d ~k ());
  add "A1"
    (fun _ -> "2")
    "O(k^2d^2)" Harness.Complexity.a1
    (fun ~k ~d -> run_multicast (module Amcast.A1) ~groups ~d ~k ());
  add "[1] detmerge"
    (fun _ -> "1")
    "O(kd)" Harness.Complexity.detmerge_multicast
    (fun ~k ~d ->
      (* Measured on a saturated stream (its own model); min degree and
         marginal per-message copies. *)
      ignore groups;
      run_detmerge_stream ~groups:4 ~d ~k);
  print_table
    ~title:
      "Figure 1(a) — atomic multicast: latency degree and inter-group \
       messages (4 groups; caster in the last destination group)"
    ~header:
      [
        "algorithm"; "k"; "d"; "paper deg"; "measured"; "paper msgs";
        "formula"; "inter msgs";
      ]
    (List.rev !rows)

(* ------------------------------------------------------------------ *)
(* F1b — Figure 1(b): atomic broadcast comparison *)

let figure_1b () =
  let cells = [ (2, 2); (3, 2); (4, 2); (3, 3) ] in
  let rows = ref [] in
  let add name paper_deg paper_msgs measure =
    List.iter
      (fun (groups, d) ->
        let m = measure ~groups ~d in
        rows :=
          [
            name;
            stri groups;
            stri d;
            stri (groups * d);
            paper_deg;
            str_deg m.degree;
            paper_msgs;
            stri m.inter;
          ]
          :: !rows)
      cells
  in
  add "[12] optimistic" "2" "O(n)" (fun ~groups ~d ->
      (* Caster outside the sequencer's group: the general case. *)
      run_broadcast (module Amcast.Optimistic) ~groups ~d ~origin:d ());
  add "[13] sequencer" "2" "O(n^2)" (fun ~groups ~d ->
      (* Best case: caster shares the sequencer's group. *)
      let origin = if d > 1 then 1 else 0 in
      run_broadcast (module Amcast.Sequencer) ~groups ~d ~origin ());
  add "A2 (cold)" "2" "O(n^2)" (fun ~groups ~d ->
      run_broadcast (module Amcast.A2) ~groups ~d ~origin:0 ());
  add "A2 (warm)" "1" "O(n^2)" (fun ~groups ~d -> a2_warm ~groups ~d);
  add "[1] detmerge" "1" "O(n)" (fun ~groups ~d ->
      (* Saturated stream; min degree, marginal per-message copies. *)
      run_detmerge_stream ~groups ~d ~k:groups);
  print_table
    ~title:
      "Figure 1(b) — atomic broadcast: latency degree and inter-group \
       messages"
    ~header:
      [
        "algorithm"; "groups"; "d"; "n"; "paper deg"; "measured";
        "paper msgs"; "inter msgs";
      ]
    (List.rev !rows)

(* ------------------------------------------------------------------ *)
(* T41 / T51 / T52 — the theorems' runs *)

let theorem_4_1 () =
  let m = run_multicast (module Amcast.A1) ~groups:2 ~d:2 ~k:2 () in
  print_table
    ~title:
      "Theorem 4.1 — a run of A1 with m A-MCast to two groups has latency \
       degree 2"
    ~header:[ "claimed"; "measured"; "wall clock (2 inter hops @50ms)" ]
    [
      [
        "2";
        str_deg m.degree;
        (match m.wall_ms with Some w -> Fmt.str "%.1fms" w | None -> "-");
      ];
    ]

let theorem_5_1 () =
  let m = a2_warm ~groups:2 ~d:2 in
  print_table
    ~title:
      "Theorem 5.1 — a run of A2 where m is A-BCast into a running round \
       has latency degree 1"
    ~header:[ "claimed"; "measured"; "wall clock" ]
    [
      [
        "1";
        str_deg m.degree;
        (match m.wall_ms with Some w -> Fmt.str "%.1fms" w | None -> "-");
      ];
    ]

let theorem_5_2 () =
  (* Cold start: the algorithm is quiescent when the message is cast, the
     reactive case of the theorem. *)
  let m = run_broadcast (module Amcast.A2) ~groups:2 ~d:2 ~origin:0 () in
  print_table
    ~title:
      "Theorem 5.2 — a run of A2 where m is A-BCast while processes are \
       reactive (quiescent) has latency degree 2"
    ~header:[ "claimed"; "measured"; "wall clock" ]
    [
      [
        "2";
        str_deg m.degree;
        (match m.wall_ms with Some w -> Fmt.str "%.1fms" w | None -> "-");
      ];
    ]

(* ------------------------------------------------------------------ *)
(* P31 — empirical side of the genuine-multicast lower bound *)

let lower_bound () =
  let module R = Harness.Runner.Make (Amcast.A1) in
  let degrees = ref [] in
  for seed = 0 to 39 do
    let topo = Topology.symmetric ~groups:2 ~per_group:2 in
    let dep = R.deploy ~seed ~latency:Latency.wan_default topo in
    let id =
      R.cast_at dep
        ~at:(Sim_time.of_us (1_000 + (seed * 137)))
        ~origin:(seed mod 4) ~dest:[ 0; 1 ] ()
    in
    let r = R.run_deployment dep in
    match Harness.Metrics.latency_degree r id with
    | Some d -> degrees := d :: !degrees
    | None -> ()
  done;
  let min_d = List.fold_left min max_int !degrees in
  let max_d = List.fold_left max 0 !degrees in
  print_table
    ~title:
      "Propositions 3.1/3.2 — no genuine atomic multicast can deliver a \
       message addressed to two groups with latency degree < 2: minimum \
       over 40 jittered schedules of A1"
    ~header:[ "runs"; "claimed min"; "measured min"; "measured max" ]
    [ [ stri (List.length !degrees); ">= 2"; stri min_d; stri max_d ] ]

(* ------------------------------------------------------------------ *)
(* P39 — quiescence of A2 *)

let quiescence () =
  let module R = Harness.Runner.Make (Amcast.A2) in
  let topo = Topology.symmetric ~groups:3 ~per_group:2 in
  let rng = Rng.create 5 in
  let w =
    Harness.Workload.generate ~rng ~topology:topo ~n:20
      ~dest:Harness.Workload.To_all_groups
      ~arrival:(`Every (ms 10))
      ()
  in
  let r = R.run ~latency:crisp topo w in
  let last_cast =
    List.fold_left
      (fun acc (c : Harness.Run_result.cast_event) -> Sim_time.max acc c.at)
      Sim_time.zero r.casts
  in
  let last_delivery =
    List.fold_left
      (fun acc (d : Harness.Run_result.delivery_event) ->
        Sim_time.max acc d.at)
      Sim_time.zero r.deliveries
  in
  let last_send =
    Option.value ~default:Sim_time.zero (Harness.Metrics.last_send_time r)
  in
  print_table
    ~title:
      "Proposition A.9 — quiescence: after finitely many A-BCasts the \
       deployment stops sending (20 broadcasts, then silence)"
    ~header:
      [
        "casts"; "last cast"; "last delivery"; "last send";
        "sends after last delivery"; "drained";
      ]
    [
      [
        stri (List.length r.casts);
        Sim_time.to_string last_cast;
        Sim_time.to_string last_delivery;
        Sim_time.to_string last_send;
        stri (Harness.Metrics.sends_after r last_delivery);
        string_of_bool r.drained;
      ];
    ]

(* ------------------------------------------------------------------ *)
(* TRD — the latency/message-complexity tradeoff (Sections 1 and 6) *)

let tradeoff () =
  let groups = 8 and d = 2 in
  let rows =
    List.map
      (fun k ->
        let a1 = run_multicast (module Amcast.A1) ~groups ~d ~k () in
        let via =
          run_multicast (module Amcast.Via_broadcast) ~groups ~d ~k ()
        in
        [
          stri k;
          str_deg a1.degree;
          stri a1.inter;
          str_deg via.degree;
          stri via.inter;
        ])
      [ 1; 2; 3; 4; 5; 6; 7; 8 ]
  in
  print_table
    ~title:
      "Tradeoff — genuine multicast (A1) vs broadcast-to-all (A2-based), 8 \
       groups of 2: latency degree and inter-group messages as the \
       destination set grows"
    ~header:
      [
        "k"; "A1 degree"; "A1 inter msgs"; "via-bcast degree";
        "via-bcast inter msgs";
      ]
    rows

(* ------------------------------------------------------------------ *)
(* OPT — Section 5.3's remark: broadcast frequency vs round duration *)

let a2_frequency () =
  let module R = Harness.Runner.Make (Amcast.A2) in
  let topo = Topology.symmetric ~groups:2 ~per_group:2 in
  let rows =
    List.map
      (fun gap_ms ->
        let rng = Rng.create 11 in
        let w =
          Harness.Workload.generate ~rng ~topology:topo ~n:30
            ~dest:Harness.Workload.To_all_groups
            ~arrival:(`Poisson (ms gap_ms))
            ()
        in
        let dep = R.deploy ~seed:3 ~latency:crisp topo in
        ignore (R.schedule dep w);
        let r = R.run_deployment dep in
        let degs = List.filter_map snd (Harness.Metrics.latency_degrees r) in
        let avg =
          float_of_int (List.fold_left ( + ) 0 degs)
          /. float_of_int (max 1 (List.length degs))
        in
        let rounds = Amcast.A2.rounds_executed (R.node dep 0) in
        let latencies =
          List.filter_map
            (fun (c : Harness.Run_result.cast_event) ->
              Option.map Sim_time.to_ms_float
                (Harness.Metrics.delivery_latency r c.msg.Amcast.Msg.id))
            r.casts
        in
        let pct p =
          match Harness.Stats.percentile p latencies with
          | Some v -> Fmt.str "%.0fms" v
          | None -> "-"
        in
        let wall =
          match Harness.Stats.mean latencies with
          | Some w -> Fmt.str "%.0fms" w
          | None -> "-"
        in
        [
          stri gap_ms;
          Fmt.str "%.2f" avg;
          stri
            (List.fold_left
               (fun acc d -> if d <= 1 then acc + 1 else acc)
               0 degs);
          stri (List.length degs);
          stri rounds;
          wall;
          pct 50.;
          pct 95.;
        ])
      [ 200; 100; 50; 25; 10; 5 ]
  in
  print_table
    ~title:
      "Section 5.3 — A2 stays warm when the broadcast interval drops below \
       the round duration (~52ms here): mean latency degree over 30 \
       broadcasts"
    ~header:
      [
        "mean gap (ms)"; "mean degree"; "degree<=1 msgs"; "delivered";
        "rounds at p0"; "mean latency"; "p50"; "p95";
      ]
    rows

(* ------------------------------------------------------------------ *)
(* ABL — A1's stage-skipping ablation *)

let a1_ablation () =
  let run_with config ~k =
    let module R = Harness.Runner.Make (Amcast.A1) in
    let topo = Topology.symmetric ~groups:4 ~per_group:2 in
    let dep = R.deploy ~seed:0 ~latency:crisp ~config topo in
    (* A mixed workload: one single-group and one k-group multicast from
       each group. *)
    List.iteri
      (fun i g ->
        ignore
          (R.cast_at dep
             ~at:(ms (300 + (40 * i)))
             ~origin:(List.hd (Topology.members topo g))
             ~dest:[ g ] ());
        ignore
          (R.cast_at dep
             ~at:(ms (320 + (40 * i)))
             ~origin:(List.hd (Topology.members topo g))
             ~dest:(List.init k (fun j -> (g + j) mod 4))
             ()))
      (Topology.all_groups topo);
    let r = R.run_deployment dep in
    let instances =
      List.fold_left
        (fun acc pid ->
          acc + Amcast.A1.consensus_instances_executed (R.node dep pid))
        0
        (Topology.all_pids topo)
    in
    (instances, r.intra_group_msgs, Harness.Metrics.max_latency_degree r)
  in
  let rows =
    List.concat_map
      (fun k ->
        let skip = run_with Amcast.Protocol.Config.default ~k in
        let noskip = run_with Amcast.Protocol.Config.fritzke ~k in
        let render name (instances, intra, deg) =
          [ stri k; name; stri instances; stri intra; str_deg deg ]
        in
        [ render "skips on (A1)" skip; render "skips off ([5])" noskip ])
      [ 2; 3 ]
  in
  print_table
    ~title:
      "Ablation (Section 4.1) — A1's stage skipping: consensus instances \
       executed and intra-group messages, same workload (8 messages, half \
       single-group)"
    ~header:
      [ "k"; "configuration"; "consensus instances"; "intra msgs"; "max deg" ]
    rows

(* ------------------------------------------------------------------ *)
(* PRD — Section 5.3's future-work sentence, implemented: quiescence
   prediction strategies. The paper's rule stops rounds after the first
   useless one; Linger(n) tolerates n useless rounds before stopping,
   widening the window in which a broadcast rides a warm round (degree 1 /
   one round of latency) at the price of wasted rounds during lulls. *)

let prediction () =
  let module R = Harness.Runner.Make (Amcast.A2) in
  let run ~gap_ms ~prediction =
    let topo = Topology.symmetric ~groups:2 ~per_group:2 in
    let config = { Amcast.Protocol.Config.default with prediction } in
    let rng = Rng.create 21 in
    let w =
      Harness.Workload.generate ~rng ~topology:topo ~n:20
        ~dest:Harness.Workload.To_all_groups
        ~arrival:(`Poisson (ms gap_ms))
        ()
    in
    let dep = R.deploy ~seed:6 ~latency:crisp ~config topo in
    ignore (R.schedule dep w);
    let r = R.run_deployment dep in
    let latencies =
      List.filter_map
        (fun (c : Harness.Run_result.cast_event) ->
          Option.map Sim_time.to_ms_float
            (Harness.Metrics.delivery_latency r c.msg.Amcast.Msg.id))
        r.casts
    in
    let mean =
      match Harness.Stats.mean latencies with
      | Some m -> Fmt.str "%.0fms" m
      | None -> "-"
    in
    (mean, Amcast.A2.rounds_executed (R.node dep 0))
  in
  let rows =
    List.concat_map
      (fun gap_ms ->
        let mk name prediction =
          let mean, rounds = run ~gap_ms ~prediction in
          [ stri gap_ms; name; mean; stri rounds ]
        in
        [
          mk "stop-when-idle (paper)" Amcast.Protocol.Config.Stop_when_idle;
          mk "linger 3" (Amcast.Protocol.Config.Linger { rounds = 3 });
          mk "linger 6" (Amcast.Protocol.Config.Linger { rounds = 6 });
        ])
      [ 60; 100; 150 ]
  in
  print_table
    ~title:
      "Section 5.3 (future work) — quiescence prediction strategies: mean \
       delivery latency vs rounds executed, 20 Poisson broadcasts on 2x2"
    ~header:[ "mean gap (ms)"; "strategy"; "mean latency"; "rounds at p0" ]
    rows

(* ------------------------------------------------------------------ *)
(* FLV — extension study: failover cost.

   Figure 1 is failure-free; the reason A1 exists at all (vs Skeen's 1987
   algorithm, equally degree-2) is fault tolerance. This experiment prices
   it: the ballot-0 coordinator of the remote destination group crashes
   right after the cast, losing its in-flight messages, and delivery then
   waits for the consensus timeout + detection before the next coordinator
   takes over. Delivery latency degrades linearly with the recovery knobs
   and correctness is untouched. *)

let failover () =
  let run ~detect_ms ~crash =
    let module R = Harness.Runner.Make (Amcast.A1) in
    let topo = Topology.symmetric ~groups:2 ~per_group:3 in
    let config =
      {
        Amcast.Protocol.Config.default with
        consensus_timeout = ms 500;
        oracle_delay = ms detect_ms;
      }
    in
    let faults =
      if crash then
        [
          (* Mid-instance: p3 (remote group's ballot-0 coordinator) has
             received m at ~351ms and its Accept fan-out is in flight. *)
          Harness.Runner.crash ~drop:Runtime.Engine.Lose_all_inflight
            ~at:(Sim_time.of_us 350_200) 3;
        ]
      else []
    in
    let dep = R.deploy ~seed:0 ~latency:crisp ~config ~faults topo in
    let id = R.cast_at dep ~at:(ms 300) ~origin:0 ~dest:[ 0; 1 ] () in
    let r = R.run_deployment dep in
    match
      ( Harness.Metrics.latency_degree r id,
        Harness.Metrics.delivery_latency r id )
    with
    | deg, Some wall -> (deg, Sim_time.to_ms_float wall)
    | deg, None -> (deg, nan)
  in
  let rows =
    List.map
      (fun detect_ms ->
        let _, clean = run ~detect_ms ~crash:false in
        let deg, crashed = run ~detect_ms ~crash:true in
        [
          stri detect_ms;
          Fmt.str "%.0fms" clean;
          Fmt.str "%.0fms" crashed;
          Fmt.str "+%.0fms" (crashed -. clean);
          str_deg deg;
        ])
      [ 10; 50; 150 ]
  in
  print_table
    ~title:
      "Extension — failover: the remote group's coordinator crashes \
       mid-instance before its Accept fan-out lands (all in-flight \
       messages lost); recovery = failure detection + coordinator rotation"
    ~header:
      [
        "detection delay (ms)"; "failure-free"; "with crash"; "overhead";
        "degree (crash run)";
      ]
    rows

(* ------------------------------------------------------------------ *)
(* ASY — extension study: asymmetric WANs.

   Figure 1 assumes uniform inter-group latency. Real WANs are lopsided;
   with an asymmetric latency matrix the *shape* predictions change per
   algorithm: the ring's wall-clock latency depends on where its chain
   runs (it serialises over specific links), while A1's two symmetric
   phases always pay for the slowest destination pair. Latency degrees
   are unchanged — they count hops, not milliseconds — which this
   experiment also confirms. *)

let asymmetric () =
  (* Three sites: 0-1 close (20ms), 2 far from both (120ms). *)
  let inter_of a b =
    if (a = 0 && b = 1) || (a = 1 && b = 0) then ms 20
    else if a = b then ms 1
    else ms 120
  in
  let matrix =
    Array.init 3 (fun a -> Array.init 3 (fun b -> inter_of a b))
  in
  let latency = Latency.matrix ~intra:(ms 1) ~inter:matrix () in
  let run (type a) (module P : Amcast.Protocol.S with type t = a) ~k =
    let module R = Harness.Runner.Make (P) in
    let topo = Topology.symmetric ~groups:3 ~per_group:2 in
    let dep = R.deploy ~seed:0 ~latency topo in
    let origin = List.hd (Topology.members topo (k - 1)) in
    let id =
      R.cast_at dep ~at:(ms 300) ~origin ~dest:(List.init k Fun.id) ()
    in
    let r = R.run_deployment dep in
    ( Harness.Metrics.latency_degree r id,
      Harness.Metrics.delivery_latency r id )
  in
  let rows =
    List.concat_map
      (fun k ->
        let mk name (deg, wall) =
          [
            name;
            stri k;
            str_deg deg;
            (match wall with
            | Some w -> Fmt.str "%.0fms" (Sim_time.to_ms_float w)
            | None -> "-");
          ]
        in
        [
          mk "A1" (run (module Amcast.A1) ~k);
          mk "[4] ring" (run (module Amcast.Ring) ~k);
        ])
      [ 2; 3 ]
  in
  print_table
    ~title:
      "Extension — asymmetric WAN (sites 0-1 at 20ms, site 2 at 120ms): \
       latency degree is latency-model-independent, wall clock is not"
    ~header:[ "algorithm"; "k"; "degree"; "wall clock" ]
    rows

(* ------------------------------------------------------------------ *)
(* Bechamel timing benches: one per experiment, measuring the underlying
   simulation so regressions in the protocols' algorithmic complexity are
   visible. *)

let bechamel_benches () =
  let open Bechamel in
  let mk name f = Test.make ~name (Staged.stage f) in
  let tests =
    [
      mk "figure-1a:a1-cell" (fun () ->
          ignore (run_multicast (module Amcast.A1) ~groups:4 ~d:2 ~k:3 ()));
      mk "figure-1a:ring-cell" (fun () ->
          ignore (run_multicast (module Amcast.Ring) ~groups:4 ~d:2 ~k:3 ()));
      mk "figure-1a:scalable-cell" (fun () ->
          ignore
            (run_multicast (module Amcast.Scalable) ~groups:4 ~d:2 ~k:3 ()));
      mk "figure-1b:a2-cold-cell" (fun () ->
          ignore
            (run_broadcast (module Amcast.A2) ~groups:3 ~d:2 ~origin:0 ()));
      mk "figure-1b:a2-warm-cell" (fun () -> ignore (a2_warm ~groups:2 ~d:2));
      mk "theorem-4-1" (fun () ->
          ignore (run_multicast (module Amcast.A1) ~groups:2 ~d:2 ~k:2 ()));
      mk "quiescence:20-broadcasts" (fun () ->
          let module R = Harness.Runner.Make (Amcast.A2) in
          let topo = Topology.symmetric ~groups:3 ~per_group:2 in
          let rng = Rng.create 5 in
          let w =
            Harness.Workload.generate ~rng ~topology:topo ~n:20
              ~dest:Harness.Workload.To_all_groups
              ~arrival:(`Every (ms 10))
              ()
          in
          ignore (R.run ~latency:crisp ~record_trace:false topo w));
      mk "tradeoff:k4-cell" (fun () ->
          ignore (run_multicast (module Amcast.A1) ~groups:8 ~d:2 ~k:4 ()));
      mk "a1-ablation:cell" (fun () ->
          ignore
            (run_multicast (module Amcast.Fritzke) ~groups:4 ~d:2 ~k:2 ()));
    ]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:50 ~quota:(Time.second 0.5) ~kde:None
      ~stabilize:false ()
  in
  let raw =
    Benchmark.all cfg instances (Test.make_grouped ~name:"amcast" tests)
  in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  print_newline ();
  print_endline "Bechamel timings (simulated-run cost, monotonic clock)";
  hr 72;
  let rows =
    Hashtbl.fold (fun name res acc -> (name, res) :: acc) results []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  List.iter
    (fun (name, ols_result) ->
      match Analyze.OLS.estimates ols_result with
      | Some [ est ] -> Fmt.pr "%-40s %12.1f us/run@." name (est /. 1_000.)
      | _ -> Fmt.pr "%-40s (no estimate)@." name)
    rows;
  hr 72

(* ------------------------------------------------------------------ *)

let experiments =
  [
    ("figure-1a", figure_1a);
    ("figure-1b", figure_1b);
    ("theorem-4-1", theorem_4_1);
    ("theorem-5-1", theorem_5_1);
    ("theorem-5-2", theorem_5_2);
    ("lower-bound", lower_bound);
    ("quiescence", quiescence);
    ("tradeoff", tradeoff);
    ("a2-frequency", a2_frequency);
    ("a1-ablation", a1_ablation);
    ("asymmetric", asymmetric);
    ("failover", failover);
    ("prediction", prediction);
  ]

let () =
  let args = Array.to_list Sys.argv in
  let only =
    let rec find = function
      | "--only" :: id :: _ -> Some id
      | _ :: rest -> find rest
      | [] -> None
    in
    find args
  in
  let with_bechamel = not (List.mem "--no-bechamel" args) in
  match only with
  | Some id -> (
    match List.assoc_opt id experiments with
    | Some f -> f ()
    | None ->
      Fmt.epr "unknown experiment %S; known: %a@." id
        Fmt.(list ~sep:(any ", ") string)
        (List.map fst experiments);
      exit 1)
  | None ->
    List.iter (fun (_, f) -> f ()) experiments;
    if with_bechamel then bechamel_benches ()

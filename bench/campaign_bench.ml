(* campaign_bench — machine-readable campaign throughput baselines.

   Two cell families:

   - Campaign cells: a fixed, seeded scenario matrix (the same scenario
     list Harness.Campaign expands a seed to) through the sequential
     driver and through the sharded driver at every domain count in a
     {1, 2, 4, ...} sweep up to the machine's recommended count (always
     at least {1, 2}, so the cross-domain identity assertion runs even
     on a single-core host). Exits non-zero if any sharded summary
     differs from the sequential one at any swept domain count.

   - Scale cells (--scale full|smoke|off, default smoke): one large
     deployment — hundred-group topology, n=1000 processes at full
     scale — driven to quiescence with the trace recorder off, tracking
     events/sec, minor words allocated per delivery (the zero-alloc
     hot-path regression metric) and peak heap words, plus the wall time
     of the full checker pass over the run. Exits non-zero on a checker
     violation or a blown minor-words budget.

   Usage: campaign_bench [--runs N] [--seed S] [--scale full|smoke|off]
                         [--out PATH]
   Defaults: 128 runs per protocol, seed 7, --scale smoke,
   ./BENCH_campaign.json. *)

type target = {
  name : string;
  proto : (module Amcast.Protocol.S);
  broadcast_only : bool;
  with_crashes : bool;
  expect_genuine : bool;
}

let matrix =
  [
    {
      name = "a1";
      proto = (module Amcast.A1 : Amcast.Protocol.S);
      broadcast_only = false;
      with_crashes = true;
      expect_genuine = true;
    };
    {
      name = "a2";
      proto = (module Amcast.A2);
      broadcast_only = true;
      with_crashes = true;
      expect_genuine = false;
    };
    {
      name = "fritzke";
      proto = (module Amcast.Fritzke);
      broadcast_only = false;
      with_crashes = true;
      expect_genuine = true;
    };
  ]

type measurement = {
  driver : string;
  domains : int;
  wall_s : float;
  scenarios_run : int;
  events : int;
  summaries : (string * Harness.Campaign.summary) list;
}

let measure ~driver ~domains ~runs ~seed =
  let t0 = Unix.gettimeofday () in
  let summaries =
    List.map
      (fun t ->
        let summary =
          match driver with
          | `Sequential ->
            Harness.Campaign.run t.proto ~broadcast_only:t.broadcast_only
              ~with_crashes:t.with_crashes ~expect_genuine:t.expect_genuine
              ~seed ~runs ()
          | `Sharded ->
            Harness.Campaign.run_sharded t.proto
              ~broadcast_only:t.broadcast_only ~with_crashes:t.with_crashes
              ~expect_genuine:t.expect_genuine ~domains ~seed ~runs ()
        in
        (t.name, summary))
      matrix
  in
  let wall_s = Unix.gettimeofday () -. t0 in
  {
    driver = (match driver with `Sequential -> "sequential" | `Sharded -> "sharded");
    domains;
    wall_s;
    scenarios_run = List.length matrix * runs;
    events =
      List.fold_left
        (fun acc (_, s) -> acc + s.Harness.Campaign.total_steps)
        0 summaries;
    summaries;
  }

(* {1, 2, 4, ...} up to the recommended domain count, but never less than
   {1, 2}: the whole point of the sweep is to check sharded summaries
   against sequential ones with real domain interleaving, and a
   single-core host would otherwise silently degrade the sweep to the
   sequential case (which is exactly the bug this replaces — the old
   bench ran "parallel" at whatever the generating host recommended,
   i.e. 1). *)
let sweep_domains () =
  let hi = max 2 (Harness.Pool.recommended_domains ()) in
  let rec go d acc = if d >= hi then List.rev (hi :: acc) else go (2 * d) (d :: acc) in
  go 1 []

let json_of_measurement ~baseline_wall m =
  Printf.sprintf
    {|    {
      "driver": "%s",
      "domains": %d,
      "wall_s": %.6f,
      "scenarios": %d,
      "events": %d,
      "scenarios_per_s": %.2f,
      "events_per_s": %.0f,
      "speedup_vs_sequential": %.3f
    }|}
    m.driver m.domains m.wall_s m.scenarios_run m.events
    (float_of_int m.scenarios_run /. m.wall_s)
    (float_of_int m.events /. m.wall_s)
    (baseline_wall /. m.wall_s)

(* ------------------------------------------------------------------ *)
(* Scale cells. *)

type scale_cell = {
  sname : string;
  groups : int;
  per_group : int;
  casts : int;
  max_dest : int; (* dest-set size drawn uniformly in [1, max_dest] *)
}

let scale_full =
  { sname = "scale_100x10_100k"; groups = 100; per_group = 10;
    casts = 100_000; max_dest = 3 }

let scale_smoke =
  { sname = "scale_20x5_5k"; groups = 20; per_group = 5; casts = 5_000;
    max_dest = 3 }

(* Steady-state allocation ceiling, in minor-heap words per delivery
   event, for A1 under the throughput config on the scale topologies.
   This covers everything a delivery costs end to end — wire envelopes,
   consensus instances, R-MCast bookkeeping, harness delivery records —
   so it is nowhere near zero; what the slab refactor guarantees is that
   it stays *flat* as topologies grow (no per-delivery Hashtbl churn
   proportional to group count). Measured ~1720 w/delivery on the 20x5
   cell and ~2170 on the 100x10 cell (the modest growth is deeper
   consensus pipelining, not table churn); the ceiling leaves ~2x
   headroom over the worst cell. *)
let minor_words_budget = 4_000.0

type scale_result = {
  cell : scale_cell;
  n_processes : int;
  deliveries : int;
  s_events : int;
  s_wall : float;
  minor_words_per_delivery : float;
  top_heap_words : int;
  check_s : float;
  s_violations : string list;
  s_drained : bool;
}

let run_scale cell =
  let module R = Harness.Runner.Make (Amcast.A1) in
  let topo =
    Net.Topology.symmetric ~groups:cell.groups ~per_group:cell.per_group
  in
  let rng = Des.Rng.create 42 in
  let workload =
    Harness.Workload.generate ~rng ~topology:topo ~n:cell.casts
      ~dest:(Harness.Workload.Random_groups cell.max_dest)
      ~arrival:(`Poisson (Des.Sim_time.of_ms 5))
      ()
  in
  (* No trace at scale: the trace would dwarf the simulation's own
     memory (every send/receive event), and the only checkers that need
     it (genuineness, causal order) are covered at campaign scale. *)
  let dep =
    R.deploy ~seed:42 ~latency:Net.Latency.wan_default ~record_trace:false
      ~config:Amcast.Protocol.Config.throughput topo
  in
  ignore (R.schedule dep workload);
  Gc.full_major ();
  let g0 = Gc.quick_stat () in
  let t0 = Unix.gettimeofday () in
  let r = R.run_deployment ~max_steps:500_000_000 dep in
  let s_wall = Unix.gettimeofday () -. t0 in
  let g1 = Gc.quick_stat () in
  let deliveries = List.length r.Harness.Run_result.deliveries in
  let t1 = Unix.gettimeofday () in
  let s_violations = Harness.Checker.check_all ~check_quiescence:true r in
  let check_s = Unix.gettimeofday () -. t1 in
  {
    cell;
    n_processes = Net.Topology.n_processes topo;
    deliveries;
    s_events = r.Harness.Run_result.events_executed;
    s_wall;
    minor_words_per_delivery =
      (g1.Gc.minor_words -. g0.Gc.minor_words)
      /. float_of_int (max 1 deliveries);
    top_heap_words = g1.Gc.top_heap_words;
    check_s;
    s_violations;
    s_drained = r.Harness.Run_result.drained;
  }

let json_of_scale s =
  Printf.sprintf
    {|    {
      "name": "%s",
      "protocol": "a1",
      "config": "throughput",
      "groups": %d,
      "per_group": %d,
      "n_processes": %d,
      "casts": %d,
      "deliveries": %d,
      "events": %d,
      "wall_s": %.6f,
      "events_per_s": %.0f,
      "minor_words_per_delivery": %.1f,
      "minor_words_budget": %.1f,
      "top_heap_words": %d,
      "check_s": %.6f,
      "drained": %b,
      "violations": %d
    }|}
    s.cell.sname s.cell.groups s.cell.per_group s.n_processes s.cell.casts
    s.deliveries s.s_events s.s_wall
    (float_of_int s.s_events /. s.s_wall)
    s.minor_words_per_delivery minor_words_budget s.top_heap_words s.check_s
    s.s_drained
    (List.length s.s_violations)

let () =
  let runs = ref 128 in
  let seed = ref 7 in
  let scale = ref `Smoke in
  let out = ref "BENCH_campaign.json" in
  let rec parse = function
    | "--runs" :: v :: rest -> runs := int_of_string v; parse rest
    | "--seed" :: v :: rest -> seed := int_of_string v; parse rest
    | "--scale" :: v :: rest ->
      (scale :=
         match v with
         | "full" -> `Full
         | "smoke" -> `Smoke
         | "off" -> `Off
         | _ ->
           Printf.eprintf "campaign_bench: bad --scale %s\n" v;
           exit 2);
      parse rest
    | "--out" :: v :: rest -> out := v; parse rest
    | [] -> ()
    | a :: _ ->
      Printf.eprintf
        "campaign_bench: unknown argument %s\n\
         usage: campaign_bench [--runs N] [--seed S] [--scale \
         full|smoke|off] [--out PATH]\n"
        a;
      exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  let runs = !runs and seed = !seed in
  let sweep = sweep_domains () in
  Printf.printf
    "campaign_bench: %d protocols x %d scenarios, seed %d, domains {%s}\n%!"
    (List.length matrix) runs seed
    (String.concat "," (List.map string_of_int sweep));
  let seq = measure ~driver:`Sequential ~domains:1 ~runs ~seed in
  Printf.printf "  sequential      : %7.3fs  %8d events\n%!" seq.wall_s
    seq.events;
  let sharded =
    List.map
      (fun d ->
        let m = measure ~driver:`Sharded ~domains:d ~runs ~seed in
        Printf.printf "  sharded (%2dd)   : %7.3fs  %8d events  %.2fx%s\n%!"
          d m.wall_s m.events
          (seq.wall_s /. m.wall_s)
          (if m.summaries = seq.summaries then "" else "  <-- DIVERGES");
        m)
      sweep
  in
  let identical =
    List.for_all (fun m -> m.summaries = seq.summaries) sharded
  in
  let violations =
    List.fold_left
      (fun acc (_, s) -> acc + s.Harness.Campaign.total_violations)
      0 seq.summaries
  in
  let scale_cells =
    match !scale with
    | `Off -> []
    | `Smoke -> [ scale_smoke ]
    | `Full -> [ scale_smoke; scale_full ]
  in
  let scale_results =
    List.map
      (fun c ->
        Printf.printf "  scale %-18s: running (%d procs, %d casts)...\n%!"
          c.sname
          (c.groups * c.per_group)
          c.casts;
        let s = run_scale c in
        Printf.printf
          "  scale %-18s: %7.3fs  %9d events  %.0f ev/s  %.0f w/delivery\n%!"
          c.sname s.s_wall s.s_events
          (float_of_int s.s_events /. s.s_wall)
          s.minor_words_per_delivery;
        s)
      scale_cells
  in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"schema\": \"amcast-bench-campaign/v2\",\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"generated_unix_time\": %.0f,\n"
       (Unix.gettimeofday ()));
  Buffer.add_string buf
    (Printf.sprintf
       "  \"host\": { \"recommended_domains\": %d, \"swept_domains\": [%s] \
        },\n"
       (Harness.Pool.recommended_domains ())
       (String.concat ", " (List.map string_of_int sweep)));
  Buffer.add_string buf
    (Printf.sprintf
       "  \"matrix\": { \"seed\": %d, \"runs_per_protocol\": %d, \
        \"protocols\": [%s] },\n"
       seed runs
       (String.concat ", "
          (List.map (fun t -> Printf.sprintf "\"%s\"" t.name) matrix)));
  Buffer.add_string buf "  \"results\": [\n";
  Buffer.add_string buf
    (String.concat ",\n"
       (List.map
          (json_of_measurement ~baseline_wall:seq.wall_s)
          (seq :: sharded)));
  Buffer.add_string buf "\n  ],\n";
  Buffer.add_string buf "  \"scale\": [\n";
  Buffer.add_string buf
    (String.concat ",\n" (List.map json_of_scale scale_results));
  Buffer.add_string buf "\n  ],\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"summaries_identical\": %b,\n" identical);
  Buffer.add_string buf
    (Printf.sprintf "  \"total_violations\": %d\n" violations);
  Buffer.add_string buf "}\n";
  let oc = open_out !out in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "  wrote %s\n%!" !out;
  if not identical then begin
    prerr_endline
      "campaign_bench: FAIL — a sharded summary differs from sequential";
    exit 1
  end;
  if violations > 0 then begin
    Printf.eprintf "campaign_bench: FAIL — %d violations\n" violations;
    exit 1
  end;
  List.iter
    (fun s ->
      if s.s_violations <> [] then begin
        Printf.eprintf "campaign_bench: FAIL — scale cell %s: %s\n"
          s.cell.sname
          (String.concat "; " s.s_violations);
        exit 1
      end;
      if not s.s_drained then begin
        Printf.eprintf
          "campaign_bench: FAIL — scale cell %s did not drain\n"
          s.cell.sname;
        exit 1
      end;
      if s.minor_words_per_delivery > minor_words_budget then begin
        Printf.eprintf
          "campaign_bench: FAIL — scale cell %s allocates %.1f minor \
           words/delivery (budget %.1f)\n"
          s.cell.sname s.minor_words_per_delivery minor_words_budget;
        exit 1
      end)
    scale_results

(* campaign_bench — machine-readable campaign throughput baselines.

   Runs a fixed, seeded scenario matrix (the same scenario list
   Harness.Campaign expands a seed to) through the sequential driver and
   through the Pool-based parallel driver, checks the summaries are
   bit-identical, and writes BENCH_campaign.json with events/sec and
   scenarios/sec per driver so the perf trajectory is tracked across PRs.

   Usage: campaign_bench [--runs N] [--seed S] [--domains D] [--out PATH]
   Defaults: 128 runs per protocol, seed 7, D = recommended domain count,
   ./BENCH_campaign.json. Exits non-zero if any summary disagrees between
   drivers or any scenario produced a violation. *)

type target = {
  name : string;
  proto : (module Amcast.Protocol.S);
  broadcast_only : bool;
  with_crashes : bool;
  expect_genuine : bool;
}

let matrix =
  [
    {
      name = "a1";
      proto = (module Amcast.A1 : Amcast.Protocol.S);
      broadcast_only = false;
      with_crashes = true;
      expect_genuine = true;
    };
    {
      name = "a2";
      proto = (module Amcast.A2);
      broadcast_only = true;
      with_crashes = true;
      expect_genuine = false;
    };
    {
      name = "fritzke";
      proto = (module Amcast.Fritzke);
      broadcast_only = false;
      with_crashes = true;
      expect_genuine = true;
    };
  ]

type measurement = {
  driver : string;
  domains : int;
  wall_s : float;
  scenarios_run : int;
  events : int;
  summaries : (string * Harness.Campaign.summary) list;
}

let measure ~driver ~domains ~runs ~seed =
  let t0 = Unix.gettimeofday () in
  let summaries =
    List.map
      (fun t ->
        let ss =
          Harness.Campaign.scenarios ~broadcast_only:t.broadcast_only
            ~with_crashes:t.with_crashes ~seed ~runs ()
        in
        let outcomes =
          if driver = "sequential" then
            Harness.Campaign.run_scenarios t.proto
              ~expect_genuine:t.expect_genuine ss
          else
            Harness.Campaign.run_scenarios_parallel t.proto
              ~expect_genuine:t.expect_genuine ~domains ss
        in
        (t.name, Harness.Campaign.summarize outcomes))
      matrix
  in
  let wall_s = Unix.gettimeofday () -. t0 in
  {
    driver;
    domains;
    wall_s;
    scenarios_run = List.length matrix * runs;
    events =
      List.fold_left
        (fun acc (_, s) -> acc + s.Harness.Campaign.total_steps)
        0 summaries;
    summaries;
  }

let json_of_measurement ~baseline_wall m =
  Printf.sprintf
    {|    {
      "driver": "%s",
      "domains": %d,
      "wall_s": %.6f,
      "scenarios": %d,
      "events": %d,
      "scenarios_per_s": %.2f,
      "events_per_s": %.0f,
      "speedup_vs_sequential": %.3f
    }|}
    m.driver m.domains m.wall_s m.scenarios_run m.events
    (float_of_int m.scenarios_run /. m.wall_s)
    (float_of_int m.events /. m.wall_s)
    (baseline_wall /. m.wall_s)

let () =
  let runs = ref 128 in
  let seed = ref 7 in
  let domains = ref (Harness.Pool.recommended_domains ()) in
  let out = ref "BENCH_campaign.json" in
  let rec parse = function
    | "--runs" :: v :: rest -> runs := int_of_string v; parse rest
    | "--seed" :: v :: rest -> seed := int_of_string v; parse rest
    | "--domains" :: v :: rest -> domains := int_of_string v; parse rest
    | "--out" :: v :: rest -> out := v; parse rest
    | [] -> ()
    | a :: _ ->
      Printf.eprintf
        "campaign_bench: unknown argument %s\n\
         usage: campaign_bench [--runs N] [--seed S] [--domains D] [--out \
         PATH]\n"
        a;
      exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  let runs = !runs and seed = !seed and domains = max 1 !domains in
  Printf.printf "campaign_bench: %d protocols x %d scenarios, seed %d\n%!"
    (List.length matrix) runs seed;
  let seq = measure ~driver:"sequential" ~domains:1 ~runs ~seed in
  Printf.printf "  sequential      : %7.3fs  %8d events\n%!" seq.wall_s
    seq.events;
  let par = measure ~driver:"parallel" ~domains ~runs ~seed in
  Printf.printf "  parallel (%2dd)  : %7.3fs  %8d events  %.2fx\n%!" domains
    par.wall_s par.events
    (seq.wall_s /. par.wall_s);
  let identical = seq.summaries = par.summaries in
  let violations =
    List.fold_left
      (fun acc (_, s) -> acc + s.Harness.Campaign.total_violations)
      0 seq.summaries
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"schema\": \"amcast-bench-campaign/v1\",\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"generated_unix_time\": %.0f,\n"
       (Unix.gettimeofday ()));
  Buffer.add_string buf
    (Printf.sprintf
       "  \"host\": { \"recommended_domains\": %d },\n"
       (Harness.Pool.recommended_domains ()));
  Buffer.add_string buf
    (Printf.sprintf
       "  \"matrix\": { \"seed\": %d, \"runs_per_protocol\": %d, \
        \"protocols\": [%s] },\n"
       seed runs
       (String.concat ", "
          (List.map (fun t -> Printf.sprintf "\"%s\"" t.name) matrix)));
  Buffer.add_string buf "  \"results\": [\n";
  Buffer.add_string buf
    (String.concat ",\n"
       (List.map
          (json_of_measurement ~baseline_wall:seq.wall_s)
          [ seq; par ]));
  Buffer.add_string buf "\n  ],\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"summaries_identical\": %b,\n" identical);
  Buffer.add_string buf
    (Printf.sprintf "  \"total_violations\": %d\n" violations);
  Buffer.add_string buf "}\n";
  let oc = open_out !out in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "  wrote %s\n%!" !out;
  if not identical then begin
    prerr_endline
      "campaign_bench: FAIL — parallel summary differs from sequential";
    exit 1
  end;
  if violations > 0 then begin
    Printf.eprintf "campaign_bench: FAIL — %d violations\n" violations;
    exit 1
  end

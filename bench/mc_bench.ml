(* mc_bench — model-checker exploration baselines.

   Runs the DPOR explorer over a fixed matrix of tiny configurations and
   writes BENCH_mc.json so the exploration-perf trajectory (states/sec,
   interleavings, POR reduction factor) is tracked across PRs alongside
   the other BENCH_*.json files.

   On the compared configurations the explorer runs twice — naive (no
   reduction) and with sleep-set POR — and the bench asserts the
   soundness differential: both runs are exhaustive, reach the same set
   of distinct terminal outcomes, find no violation, and the reduction
   factor is at least MIN_REDUCTION (5x). The naive enumeration is
   exponential, so larger configurations run POR-only for breadth. Any
   assertion failure exits non-zero.

   Usage: mc_bench [--out PATH]   (default ./BENCH_mc.json) *)

let min_reduction = 5.0

type config = {
  name : string;
  protocol : string;
  proto : (module Amcast.Protocol.S);
  sizes : int list;
  casts : (int * int * int list * string) list;  (* at_us, origin, gids, payload *)
  reorder : int;  (* delay bound; max_int = unlimited *)
  compare_naive : bool;
}

let global_cast at origin payload = (at, origin, [ 0; 1 ], payload)

let matrix =
  [
    (* Small enough for the unreduced enumeration: the POR differential. *)
    {
      name = "a1_1x1_c1";
      protocol = "a1";
      proto = (module Amcast.A1 : Amcast.Protocol.S);
      sizes = [ 1; 1 ];
      casts = [ global_cast 1_000 0 "m0" ];
      reorder = max_int;
      compare_naive = true;
    };
    (* The acceptance configuration: 2 groups x 2 processes, 2 global
       casts, exhaustive under delay bound 2 — the headline reduction. *)
    {
      name = "a1_2x2_c2_d2";
      protocol = "a1";
      proto = (module Amcast.A1);
      sizes = [ 2; 2 ];
      casts = [ global_cast 1_000 0 "m0"; global_cast 2_000 0 "m1" ];
      reorder = 2;
      compare_naive = true;
    };
    (* Breadth rows, POR only. *)
    {
      name = "a2_2x2_c2_d2";
      protocol = "a2";
      proto = (module Amcast.A2);
      sizes = [ 2; 2 ];
      casts = [ global_cast 1_000 0 "m0"; global_cast 2_000 0 "m1" ];
      reorder = 2;
      compare_naive = false;
    };
    {
      name = "fritzke_1x1_c1";
      protocol = "fritzke";
      proto = (module Amcast.Fritzke);
      sizes = [ 1; 1 ];
      casts = [ global_cast 1_000 0 "m0" ];
      reorder = max_int;
      compare_naive = false;
    };
    {
      name = "optimistic_1x2_c2";
      protocol = "optimistic";
      proto = (module Amcast.Optimistic);
      sizes = [ 1; 2 ];
      casts = [ global_cast 1_000 0 "m0"; global_cast 2_000 1 "m1" ];
      reorder = max_int;
      compare_naive = false;
    };
  ]

type side = {
  interleavings : int;
  events : int;
  replays : int;
  sleep_prunes : int;
  peak_depth : int;
  exhaustive : bool;
  violated : bool;
  outcomes : int list;  (* sorted distinct terminal-outcome digests *)
  wall_s : float;
}

let run_side c ~por =
  let (module P : Amcast.Protocol.S) = c.proto in
  let module E = Mc.Explorer.Make (P) in
  let topology = Net.Topology.make ~sizes:c.sizes in
  let workload =
    List.map
      (fun (at, origin, dest, payload) ->
        { Harness.Workload.at = Des.Sim_time.of_us at; origin; dest; payload })
      c.casts
  in
  let s = E.make_setup ~reorder_bound:c.reorder ~topology workload in
  let opts = { E.default_opts with E.por } in
  let t0 = Unix.gettimeofday () in
  let o = E.explore ~opts s in
  let wall_s = Unix.gettimeofday () -. t0 in
  {
    interleavings = o.E.stats.E.interleavings;
    events = o.E.stats.E.events;
    replays = o.E.stats.E.replays;
    sleep_prunes = o.E.stats.E.sleep_prunes;
    peak_depth = o.E.stats.E.peak_depth;
    exhaustive = o.E.stats.E.exhaustive;
    violated = o.E.violation <> None;
    outcomes = o.E.outcome_digests;
    wall_s;
  }

type row = {
  config : config;
  por : side;
  naive : side option;
}

let rate n wall = float_of_int n /. Float.max wall 1e-9

let json_of_side s =
  Printf.sprintf
    "{ \"interleavings\": %d, \"events\": %d, \"replays\": %d, \
     \"sleep_prunes\": %d, \"peak_depth\": %d, \"exhaustive\": %b, \
     \"wall_s\": %.6f, \"states_per_s\": %.0f, \"events_per_s\": %.0f }"
    s.interleavings s.events s.replays s.sleep_prunes s.peak_depth
    s.exhaustive s.wall_s
    (rate s.interleavings s.wall_s)
    (rate s.events s.wall_s)

let json_of_row r =
  let c = r.config in
  let reduction =
    match r.naive with
    | Some n ->
      Printf.sprintf "%.2f"
        (float_of_int n.interleavings /. float_of_int (max 1 r.por.interleavings))
    | None -> "null"
  in
  let outcomes_equal =
    match r.naive with
    | Some n -> string_of_bool (n.outcomes = r.por.outcomes)
    | None -> "null"
  in
  Printf.sprintf
    {|    {
      "name": "%s",
      "protocol": "%s",
      "sizes": [%s],
      "casts": %d,
      "reorder_bound": %s,
      "por": %s,
      "naive": %s,
      "reduction_factor": %s,
      "outcomes_equal": %s,
      "distinct_outcomes": %d,
      "violation": %b
    }|}
    c.name c.protocol
    (String.concat ", " (List.map string_of_int c.sizes))
    (List.length c.casts)
    (if c.reorder = max_int then "null" else string_of_int c.reorder)
    (json_of_side r.por)
    (match r.naive with
    | Some n -> json_of_side n
    | None -> "null")
    reduction outcomes_equal
    (List.length r.por.outcomes)
    r.por.violated

let () =
  let out = ref "BENCH_mc.json" in
  let rec parse = function
    | "--out" :: v :: rest ->
      out := v;
      parse rest
    | [] -> ()
    | a :: _ ->
      Printf.eprintf "mc_bench: unknown argument %s\nusage: mc_bench [--out PATH]\n" a;
      exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  Printf.printf "mc_bench: %d configurations (%d with naive comparison)\n%!"
    (List.length matrix)
    (List.length (List.filter (fun c -> c.compare_naive) matrix));
  let failures = ref [] in
  let fail fmt =
    Printf.ksprintf
      (fun m ->
        failures := m :: !failures;
        Printf.printf "  ASSERT FAILED: %s\n%!" m)
      fmt
  in
  let rows =
    List.map
      (fun c ->
        let por = run_side c ~por:true in
        let naive = if c.compare_naive then Some (run_side c ~por:false) else None in
        Printf.printf
          "  %-18s por %6d states %8.3fs (%7.0f states/s, %7.0f events/s)%s\n%!"
          c.name por.interleavings por.wall_s
          (rate por.interleavings por.wall_s)
          (rate por.events por.wall_s)
          (match naive with
          | Some n ->
            Printf.sprintf "  naive %6d states %8.3fs  %.0fx" n.interleavings
              n.wall_s
              (float_of_int n.interleavings /. float_of_int (max 1 por.interleavings))
          | None -> "");
        if not por.exhaustive then fail "%s: POR exploration not exhaustive" c.name;
        if por.violated then fail "%s: unexpected violation" c.name;
        (match naive with
        | Some n ->
          if not n.exhaustive then fail "%s: naive exploration not exhaustive" c.name;
          if n.outcomes <> por.outcomes then
            fail "%s: naive and POR terminal outcomes differ" c.name;
          let red =
            float_of_int n.interleavings /. float_of_int (max 1 por.interleavings)
          in
          if red < min_reduction then
            fail "%s: POR reduction %.2fx below the %.0fx floor" c.name red
              min_reduction
        | None -> ());
        { config = c; por; naive })
      matrix
  in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"schema\": \"amcast-bench-mc/v1\",\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"generated_unix_time\": %.0f,\n" (Unix.gettimeofday ()));
  Buffer.add_string buf
    (Printf.sprintf "  \"min_reduction_floor\": %.0f,\n" min_reduction);
  Buffer.add_string buf "  \"results\": [\n";
  Buffer.add_string buf (String.concat ",\n" (List.map json_of_row rows));
  Buffer.add_string buf "\n  ],\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"assertion_failures\": %d\n" (List.length !failures));
  Buffer.add_string buf "}\n";
  let oc = open_out !out in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "  wrote %s\n%!" !out;
  if !failures <> [] then begin
    Printf.eprintf "mc_bench: FAIL — %d assertion(s)\n" (List.length !failures);
    exit 1
  end

(* throughput_bench — saturation curves for the high-throughput lane.

   Drives A1 (Zipfian multicast with hot origins) and A2 (broadcast) with
   open-loop bursty arrivals over a grid of offered rates, on a network
   with a per-sender egress serialization cost (Network.set_tx_cost) so
   that load actually queues at the NIC instead of vanishing into the
   pure-latency model. Each cell runs twice — unbatched
   (Protocol.Config.default) and batched (Protocol.Config.throughput:
   cast batching + pipelined consensus + ack coalescing) — and reports
   delivered msgs/sec of sim time plus p50/p99 cast-to-delivery latency.

   Two properties are checked; any failure exits non-zero:

   - floor: at the top offered rate the batched A1 lane must deliver at
     least 2x the messages of the unbatched lane within the same sim-time
     window (the saturation win the lane exists for);
   - safety: on faulty runs (deterministic crash schedules and generated
     nemesis plans) the batched lane and Config.reference must produce
     the same checker verdicts — batching, pipelining and ack coalescing
     may change counts and timings, never correctness.

   Usage: throughput_bench [--seed S] [--out PATH] [--smoke]
   Defaults: seed 0, ./BENCH_throughput.json, full grid. *)

open Des
open Net

let crisp =
  Latency.uniform ~intra:(Sim_time.of_us 1_000) ~inter:(Sim_time.of_us 50_000)
    ()

let ms = Sim_time.of_ms
let start = ms 1 (* Workload.generate default first-cast instant *)
let tx_cost = Sim_time.of_us 100
let burst_max = 4

(* ------------------------------------------------------------------ *)
(* Saturation cells. *)

type cell = {
  protocol : string;
  mode : string; (* "unbatched" | "batched" *)
  offered_rate : int; (* casts per second of sim time *)
  casts : int;
  delivered : int;
  delivered_rate : float; (* distinct delivered msgs / sec of sim window *)
  p50_ms : float option;
  p99_ms : float option;
  batches_formed : int;
  batched_casts : int;
  casts_per_batch_max : int;
  pipeline_depth_max : int;
  acks_coalesced : int;
  wall_s : float;
}

(* Open-loop bursty arrivals at a target offered rate: bursts of
   1..burst_max simultaneous casts, exponential gaps. Mean burst size is
   (1 + burst_max) / 2, so the mean gap is that over the rate. *)
let mk_workload ~seed ~topo ~dest ~origins ~rate ~duration_s =
  let rng = Rng.create seed in
  let n = int_of_float (float_of_int rate *. duration_s) in
  let mean_burst = float_of_int (1 + burst_max) /. 2. in
  let mean_gap =
    Sim_time.of_us
      (max 1 (int_of_float (mean_burst *. 1e6 /. float_of_int rate)))
  in
  Harness.Workload.generate ~rng ~topology:topo ~n ~dest
    ~arrival:(`Bursty (mean_gap, burst_max))
    ~origins ~origin_zipf:1.5 ()

let run_cell (type a) (module P : Amcast.Protocol.S with type t = a)
    ~protocol ~mode ~config ~seed ~offered_rate ~window ~topo
    ~(workload : Harness.Workload.t) () =
  let module R = Harness.Runner.Make (P) in
  let t0 = Unix.gettimeofday () in
  (* No trace: saturation runs are large and the metrics below only need
     the cast/delivery event lists. *)
  let dep = R.deploy ~seed ~latency:crisp ~config ~record_trace:false topo in
  Network.set_tx_cost (Runtime.Engine.network (R.engine dep)) tx_cost;
  ignore (R.schedule dep workload);
  let until = Sim_time.add start window in
  let r = R.run_deployment ~until dep in
  let wall_s = Unix.gettimeofday () -. t0 in
  let delivered = Harness.Metrics.delivered_count r in
  let stat name =
    List.fold_left
      (fun acc pid ->
        acc
        + Option.value ~default:0
            (List.assoc_opt name (P.stats (R.node dep pid))))
      0 (Topology.all_pids topo)
  in
  let stat_max name =
    List.fold_left
      (fun acc pid ->
        max acc
          (Option.value ~default:0
             (List.assoc_opt name (P.stats (R.node dep pid)))))
      0 (Topology.all_pids topo)
  in
  let c =
    {
      protocol;
      mode;
      offered_rate;
      casts = List.length workload;
      delivered;
      delivered_rate =
        float_of_int delivered /. (Sim_time.to_ms_float window /. 1000.);
      p50_ms = Harness.Metrics.delivery_latency_percentile_ms r 50.;
      p99_ms = Harness.Metrics.delivery_latency_percentile_ms r 99.;
      batches_formed = stat "batches_formed";
      batched_casts = stat "batched_casts";
      casts_per_batch_max = stat_max "casts_per_batch_max";
      pipeline_depth_max = stat_max "pipeline_depth_max";
      acks_coalesced = stat "acks_coalesced";
      wall_s;
    }
  in
  Printf.printf
    "  %-3s %-9s offered %5d/s  delivered %5d/%d (%7.0f/s)  p50 %s p99 %s  \
     batches %d depth %d\n\
     %!"
    protocol mode offered_rate delivered c.casts c.delivered_rate
    (match c.p50_ms with Some x -> Printf.sprintf "%6.1fms" x | None -> "-")
    (match c.p99_ms with Some x -> Printf.sprintf "%6.1fms" x | None -> "-")
    c.batches_formed c.pipeline_depth_max;
  c

(* ------------------------------------------------------------------ *)
(* Safety differentials: batched lane vs Config.reference under faults.
   Verdicts (checker violation lists) must coincide — delivered counts
   may legitimately differ (a crash mid-batch can lose buffered casts of
   the crashed origin, which validity exempts). *)

type differential = {
  d_protocol : string;
  scenario : string; (* "crash" | "nemesis" *)
  d_seed : int;
  batched_violations : string list;
  reference_violations : string list;
}

let d_diverges d = d.batched_violations <> d.reference_violations

let run_differential (type a) (module P : Amcast.Protocol.S with type t = a)
    ~protocol ~scenario ~seed ~dest () =
  let module R = Harness.Runner.Make (P) in
  let topo = Topology.symmetric ~groups:3 ~per_group:3 in
  let rng = Rng.create seed in
  let workload =
    Harness.Workload.generate ~rng ~topology:topo ~n:24 ~dest
      ~arrival:(`Poisson (ms 4)) ()
  in
  let check =
    match scenario with
    | `Crash ->
      (* One crash per group stays a minority everywhere; one origin dies
         mid-stream so batched buffers can be lost in flight. *)
      let faults =
        [
          Harness.Runner.crash ~at:(ms 20) 1;
          Harness.Runner.crash ~at:(ms 45) 4;
        ]
      in
      fun config ->
        Harness.Checker.check_all
          (R.run ~seed ~latency:crisp ~config ~faults topo workload)
    | `Nemesis ->
      let plan = Harness.Nemesis.generate ~rng ~topology:topo () in
      fun config ->
        Harness.Checker.check_all
          ~liveness_from:(Harness.Nemesis.liveness_from plan)
          (R.run ~seed ~latency:crisp ~config ~nemesis:plan topo workload)
  in
  let d =
    {
      d_protocol = protocol;
      scenario = (match scenario with `Crash -> "crash" | `Nemesis -> "nemesis");
      d_seed = seed;
      batched_violations = check Amcast.Protocol.Config.throughput;
      reference_violations = check Amcast.Protocol.Config.reference;
    }
  in
  Printf.printf "  diff %-3s %-7s seed %d  batched %d violation(s), \
                 reference %d%s\n%!"
    d.d_protocol d.scenario d.d_seed
    (List.length d.batched_violations)
    (List.length d.reference_violations)
    (if d_diverges d then "  DIVERGENT" else "");
  if d_diverges d then
    List.iter
      (fun v -> Printf.printf "    batched: %s\n%!" v)
      d.batched_violations;
  d

(* ------------------------------------------------------------------ *)

let json_opt_float = function
  | Some x -> Printf.sprintf "%.3f" x
  | None -> "null"

let json_string_list l =
  "[" ^ String.concat ", " (List.map (Printf.sprintf "%S") l) ^ "]"

let json_of_cell c =
  Printf.sprintf
    "    { \"protocol\": \"%s\", \"mode\": \"%s\", \"offered_rate\": %d, \
     \"casts\": %d,\n\
    \      \"delivered\": %d, \"delivered_rate\": %.1f, \"p50_ms\": %s, \
     \"p99_ms\": %s,\n\
    \      \"batches_formed\": %d, \"batched_casts\": %d, \
     \"casts_per_batch_max\": %d,\n\
    \      \"pipeline_depth_max\": %d, \"acks_coalesced\": %d, \"wall_s\": \
     %.6f }"
    c.protocol c.mode c.offered_rate c.casts c.delivered c.delivered_rate
    (json_opt_float c.p50_ms) (json_opt_float c.p99_ms) c.batches_formed
    c.batched_casts c.casts_per_batch_max c.pipeline_depth_max
    c.acks_coalesced c.wall_s

let json_of_differential d =
  Printf.sprintf
    "    { \"protocol\": \"%s\", \"scenario\": \"%s\", \"seed\": %d,\n\
    \      \"batched_violations\": %s, \"reference_violations\": %s, \
     \"divergent\": %b }"
    d.d_protocol d.scenario d.d_seed
    (json_string_list d.batched_violations)
    (json_string_list d.reference_violations)
    (d_diverges d)

let () =
  let seed = ref 0 in
  let out = ref "BENCH_throughput.json" in
  let smoke = ref false in
  let rec parse = function
    | [] -> ()
    | "--seed" :: v :: rest ->
      seed := int_of_string v;
      parse rest
    | "--out" :: v :: rest ->
      out := v;
      parse rest
    | "--smoke" :: rest ->
      smoke := true;
      parse rest
    | arg :: _ ->
      Printf.eprintf "throughput_bench: unknown argument %S\n" arg;
      exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  let seed = !seed in
  let smoke = !smoke in
  let rates = if smoke then [ 1_000; 8_000 ] else [ 1_000; 2_000; 4_000; 8_000 ] in
  let duration_s = if smoke then 0.25 else 1.0 in
  (* Measurement window: the load span plus a grace period for in-flight
     tails. Saturated modes keep a growing backlog, so what they deliver
     inside the window is their saturation throughput. *)
  let grace = ms 500 in
  let window = Sim_time.add (Sim_time.of_sec duration_s) grace in
  let topo = Topology.symmetric ~groups:3 ~per_group:3 in
  (* Hot origins: all load from group 0, Zipf-skewed towards pid 0, so a
     few NICs carry the stream — the shape batching exists for. *)
  let origins = Topology.members topo 0 in
  Printf.printf
    "throughput_bench: saturation grid, seed %d, tx %dus, %s grid\n%!" seed
    (Sim_time.to_us tx_cost)
    (if smoke then "smoke" else "full");
  let cells =
    List.concat_map
      (fun rate ->
        let a1_wl =
          mk_workload ~seed ~topo
            ~dest:(Harness.Workload.Zipfian_groups { kmax = 2; theta = 1.0 })
            ~origins ~rate ~duration_s
        in
        let a2_wl =
          mk_workload ~seed ~topo ~dest:Harness.Workload.To_all_groups
            ~origins ~rate ~duration_s
        in
        let cell (module P : Amcast.Protocol.S) protocol workload mode config
            =
          let (module P) = (module P : Amcast.Protocol.S) in
          run_cell (module P) ~protocol ~mode ~config ~seed
            ~offered_rate:rate ~window ~topo ~workload ()
        in
        [
          cell (module Amcast.A1) "a1" a1_wl "unbatched"
            Amcast.Protocol.Config.default;
          cell (module Amcast.A1) "a1" a1_wl "batched"
            Amcast.Protocol.Config.throughput;
          cell (module Amcast.A2) "a2" a2_wl "unbatched"
            Amcast.Protocol.Config.default;
          cell (module Amcast.A2) "a2" a2_wl "batched"
            Amcast.Protocol.Config.throughput;
        ])
      rates
  in
  let zipf2 = Harness.Workload.Zipfian_groups { kmax = 2; theta = 1.0 } in
  let differentials =
    [
      run_differential (module Amcast.A1) ~protocol:"a1" ~scenario:`Crash
        ~seed ~dest:zipf2 ();
      run_differential (module Amcast.A1) ~protocol:"a1" ~scenario:`Nemesis
        ~seed:(seed + 1) ~dest:zipf2 ();
      run_differential (module Amcast.A2) ~protocol:"a2" ~scenario:`Crash
        ~seed ~dest:Harness.Workload.To_all_groups ();
      run_differential (module Amcast.A2) ~protocol:"a2" ~scenario:`Nemesis
        ~seed:(seed + 1) ~dest:Harness.Workload.To_all_groups ();
    ]
  in
  let top_rate = List.fold_left max 0 rates in
  let top_cell mode =
    List.find
      (fun c ->
        c.protocol = "a1" && c.mode = mode && c.offered_rate = top_rate)
      cells
  in
  let saturation_ratio =
    let b = top_cell "batched" and u = top_cell "unbatched" in
    float_of_int b.delivered /. float_of_int (max 1 u.delivered)
  in
  let divergent = List.filter d_diverges differentials in
  let buf = Buffer.create 16384 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"schema\": \"amcast-bench-throughput/v1\",\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"generated_unix_time\": %.0f,\n"
       (Unix.gettimeofday ()));
  Buffer.add_string buf (Printf.sprintf "  \"seed\": %d,\n" seed);
  Buffer.add_string buf (Printf.sprintf "  \"smoke\": %b,\n" smoke);
  Buffer.add_string buf
    (Printf.sprintf "  \"tx_cost_us\": %d,\n" (Sim_time.to_us tx_cost));
  Buffer.add_string buf
    (Printf.sprintf "  \"window_ms\": %.0f,\n" (Sim_time.to_ms_float window));
  Buffer.add_string buf "  \"cells\": [\n";
  Buffer.add_string buf (String.concat ",\n" (List.map json_of_cell cells));
  Buffer.add_string buf "\n  ],\n";
  Buffer.add_string buf "  \"differentials\": [\n";
  Buffer.add_string buf
    (String.concat ",\n" (List.map json_of_differential differentials));
  Buffer.add_string buf "\n  ],\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"divergent_differentials\": %d,\n"
       (List.length divergent));
  Buffer.add_string buf
    (Printf.sprintf "  \"a1_saturation_ratio\": %.2f\n" saturation_ratio);
  Buffer.add_string buf "}\n";
  let oc = open_out !out in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf
    "  wrote %s (%d cells; a1 saturation ratio %.2fx; %d divergent \
     differential(s))\n\
     %!"
    !out (List.length cells) saturation_ratio (List.length divergent);
  if divergent <> [] then begin
    Printf.eprintf
      "throughput_bench: FAIL — %d differential(s) where the batched lane \
       changes checker verdicts vs the reference mode\n"
      (List.length divergent);
    exit 1
  end;
  if saturation_ratio < 2.0 then begin
    Printf.eprintf
      "throughput_bench: FAIL — batched A1 delivered only %.2fx the \
       unbatched lane at %d casts/s (floor: 2x)\n"
      saturation_ratio top_rate;
    exit 1
  end

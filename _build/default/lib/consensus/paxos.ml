open Des
open Net

type 'v msg =
  | Suggest of { instance : int; value : 'v }
      (* Proposal forwarding: a non-coordinator hands its input to the
         current coordinator so that a coordinator with no local input can
         still drive the instance. *)
  | Prepare of { instance : int; ballot : int }
  | Promise of {
      instance : int;
      ballot : int;
      accepted : (int * 'v) option;
    }
  | Accept of { instance : int; ballot : int; value : 'v }
  | Accepted of { instance : int; ballot : int }
  | Decide of { instance : int; value : 'v }

let tag = function
  | Suggest _ -> "cons.suggest"
  | Prepare _ -> "cons.prepare"
  | Promise _ -> "cons.promise"
  | Accept _ -> "cons.accept"
  | Accepted _ -> "cons.accepted"
  | Decide _ -> "cons.decide"

let pp_msg ppf m =
  match m with
  | Suggest { instance; _ } -> Fmt.pf ppf "suggest(i%d)" instance
  | Prepare { instance; ballot } ->
    Fmt.pf ppf "prepare(i%d,b%d)" instance ballot
  | Promise { instance; ballot; accepted } ->
    Fmt.pf ppf "promise(i%d,b%d,%s)" instance ballot
      (match accepted with None -> "-" | Some (b, _) -> Fmt.str "acc@%d" b)
  | Accept { instance; ballot; _ } ->
    Fmt.pf ppf "accept(i%d,b%d)" instance ballot
  | Accepted { instance; ballot } ->
    Fmt.pf ppf "accepted(i%d,b%d)" instance ballot
  | Decide { instance; _ } -> Fmt.pf ppf "decide(i%d)" instance

module Int_tbl = Hashtbl.Make (Int)

type 'v instance = {
  mutable proposal : 'v option; (* local input or adopted suggestion *)
  mutable suggested : bool; (* we already forwarded our input *)
  mutable promised : int; (* acceptor: highest ballot promised *)
  mutable accepted : (int * 'v) option; (* acceptor: last accepted *)
  mutable decided : 'v option;
  (* Coordinator state for the ballot we lead (leading >= 0). *)
  mutable leading : int;
  mutable phase1_done : bool;
  mutable pushed : bool; (* Accept for ballot [leading] was sent *)
  promises : (Topology.pid, (int * 'v) option) Hashtbl.t;
  votes : (int, (Topology.pid, unit) Hashtbl.t) Hashtbl.t;
  ballot_values : (int, 'v) Hashtbl.t;
  mutable timer : int option;
  mutable engaged : bool;
}

type ('v, 'w) t = {
  services : 'w Runtime.Services.t;
  wrap : 'v msg -> 'w;
  participants : Topology.pid array; (* sorted *)
  detector : Fd.Detector.t;
  timeout : Sim_time.t;
  on_decide : instance:int -> 'v -> unit;
  instances : 'v instance Int_tbl.t;
  mutable highest_decided : int option;
}

let n t = Array.length t.participants
let majority t = (n t / 2) + 1

let rank t pid =
  let r = ref (-1) in
  Array.iteri (fun i p -> if p = pid then r := i) t.participants;
  !r

let leader t = Fd.Detector.leader t.detector (Array.to_list t.participants)
let self t = t.services.Runtime.Services.self
let is_leader t = leader t = Some (self t)

let get_instance t i =
  match Int_tbl.find_opt t.instances i with
  | Some inst -> inst
  | None ->
    let inst =
      {
        proposal = None;
        suggested = false;
        promised = -1;
        accepted = None;
        decided = None;
        leading = -1;
        phase1_done = false;
        pushed = false;
        promises = Hashtbl.create 4;
        votes = Hashtbl.create 4;
        ballot_values = Hashtbl.create 4;
        timer = None;
        engaged = false;
      }
    in
    Int_tbl.replace t.instances i inst;
    inst

let send_participants t m =
  Runtime.Services.send_all t.services
    (Array.to_list t.participants)
    (t.wrap m)

let cancel_timer t inst =
  match inst.timer with
  | Some h ->
    t.services.cancel_timer h;
    inst.timer <- None
  | None -> ()

let decide t i inst v =
  if inst.decided = None then begin
    inst.decided <- Some v;
    cancel_timer t inst;
    (* One Decide broadcast per decider, then silence: keeps the protocol
       halting while guaranteeing uniform agreement under lossy crashes. *)
    send_participants t (Decide { instance = i; value = v });
    (match t.highest_decided with
    | Some h when h >= i -> ()
    | _ -> t.highest_decided <- Some i);
    t.on_decide ~instance:i v
  end

(* Value a coordinator must push after phase 1: the accepted value carried
   by the highest ballot among the promises, else its own input. *)
let choose_value inst =
  let best =
    Hashtbl.fold
      (fun _ acc best ->
        match (acc, best) with
        | None, b -> b
        | Some (b, v), Some (b', _) when b > b' -> Some (b, v)
        | Some _, Some _ -> best
        | Some (b, v), None -> Some (b, v))
      inst.promises None
  in
  match best with Some (_, v) -> Some v | None -> inst.proposal

let votes_for inst ballot =
  match Hashtbl.find_opt inst.votes ballot with
  | Some tbl -> tbl
  | None ->
    let tbl = Hashtbl.create 4 in
    Hashtbl.replace inst.votes ballot tbl;
    tbl

let maybe_decide_from_votes t i inst ballot =
  if inst.decided = None && Hashtbl.length (votes_for inst ballot) >= majority t
  then
    match Hashtbl.find_opt inst.ballot_values ballot with
    | Some v -> decide t i inst v
    | None -> () (* value not learned yet; the Accept will arrive *)

let accept_locally t i inst ~ballot ~value =
  inst.promised <- max inst.promised ballot;
  inst.accepted <- Some (ballot, value);
  Hashtbl.replace inst.ballot_values ballot value;
  inst.engaged <- true;
  send_participants t (Accepted { instance = i; ballot })

let start_accept_phase t i inst ~value =
  inst.pushed <- true;
  Hashtbl.replace inst.ballot_values inst.leading value;
  send_participants t (Accept { instance = i; ballot = inst.leading; value })

(* Push the accept phase if phase 1 is complete and a value is available. *)
let try_push t i inst =
  if inst.phase1_done && not inst.pushed && inst.decided = None then
    match choose_value inst with
    | Some v -> start_accept_phase t i inst ~value:v
    | None -> ()

(* Take over coordination with a fresh ballot owned by the local process. *)
let start_new_ballot t i inst =
  if inst.decided = None then begin
    let r = rank t (self t) in
    if r >= 0 then begin
      let floor = max inst.promised inst.leading in
      let b =
        (* smallest ballot > floor with b mod n = r *)
        let rec find k =
          let candidate = (k * n t) + r in
          if candidate > floor then candidate else find (k + 1)
        in
        find 0
      in
      inst.leading <- b;
      inst.phase1_done <- false;
      inst.pushed <- false;
      Hashtbl.reset inst.promises;
      if b = 0 then begin
        (* Ballot 0 fast path: no smaller ballot exists, so phase 1 is
           vacuous; push straight away if we have an input. *)
        inst.phase1_done <- true;
        try_push t i inst
      end
      else send_participants t (Prepare { instance = i; ballot = b })
    end
  end

let suggest_to_leader t i inst =
  match leader t with
  | Some l when l <> self t -> (
    match inst.proposal with
    | Some v ->
      inst.suggested <- true;
      t.services.send ~dst:l (t.wrap (Suggest { instance = i; value = v }))
    | None -> ())
  | _ -> ()

let rec arm_timer t i inst =
  if inst.timer = None && inst.decided = None then
    inst.timer <-
      Some
        (t.services.set_timer ~after:t.timeout (fun () ->
             inst.timer <- None;
             if inst.decided = None then begin
               if is_leader t then start_new_ballot t i inst
               else suggest_to_leader t i inst;
               arm_timer t i inst
             end))

let propose t ~instance v =
  let inst = get_instance t instance in
  if inst.decided = None && inst.proposal = None then begin
    inst.proposal <- Some v;
    inst.engaged <- true;
    arm_timer t instance inst;
    if is_leader t then
      if inst.leading < 0 then start_new_ballot t instance inst
      else try_push t instance inst
    else suggest_to_leader t instance inst
  end

let on_suspicion_change t =
  if is_leader t then
    Int_tbl.iter
      (fun i inst ->
        if inst.engaged && inst.decided = None then
          if inst.proposal <> None || inst.accepted <> None then
            start_new_ballot t i inst)
      t.instances
  else
    (* Re-route pending inputs to the new coordinator. *)
    Int_tbl.iter
      (fun i inst ->
        if inst.decided = None && inst.proposal <> None then
          suggest_to_leader t i inst)
      t.instances

let handle t ~src m =
  match m with
  | Suggest { instance; value } ->
    let inst = get_instance t instance in
    if inst.decided = None then begin
      if inst.proposal = None then inst.proposal <- Some value;
      inst.engaged <- true;
      arm_timer t instance inst;
      if is_leader t then
        if inst.leading < 0 then start_new_ballot t instance inst
        else try_push t instance inst
    end
  | Prepare { instance; ballot } ->
    let inst = get_instance t instance in
    if ballot > inst.promised then begin
      inst.promised <- ballot;
      inst.engaged <- true;
      arm_timer t instance inst;
      t.services.send ~dst:src
        (t.wrap (Promise { instance; ballot; accepted = inst.accepted }))
    end
  | Promise { instance; ballot; accepted } ->
    let inst = get_instance t instance in
    if inst.leading = ballot && not inst.phase1_done then begin
      Hashtbl.replace inst.promises src accepted;
      if Hashtbl.length inst.promises >= majority t then begin
        inst.phase1_done <- true;
        try_push t instance inst
      end
    end
  | Accept { instance; ballot; value } ->
    let inst = get_instance t instance in
    if ballot >= inst.promised then begin
      accept_locally t instance inst ~ballot ~value;
      arm_timer t instance inst;
      maybe_decide_from_votes t instance inst ballot
    end
    else if not (Hashtbl.mem inst.ballot_values ballot) then
      (* Stale, but remember the ballot's value for learner counting. *)
      Hashtbl.replace inst.ballot_values ballot value
  | Accepted { instance; ballot } ->
    let inst = get_instance t instance in
    Hashtbl.replace (votes_for inst ballot) src ();
    maybe_decide_from_votes t instance inst ballot
  | Decide { instance; value } ->
    let inst = get_instance t instance in
    decide t instance inst value

let create ~services ~wrap ~participants ~detector
    ?(timeout = Sim_time.of_ms 200) ~on_decide () =
  let participants =
    Array.of_list (List.sort_uniq Int.compare participants)
  in
  if Array.length participants = 0 then
    invalid_arg "Paxos.create: no participants";
  let t =
    {
      services;
      wrap;
      participants;
      detector;
      timeout;
      on_decide;
      instances = Int_tbl.create 64;
      highest_decided = None;
    }
  in
  detector.subscribe (fun () -> on_suspicion_change t);
  t

let decided_value t ~instance =
  match Int_tbl.find_opt t.instances instance with
  | None -> None
  | Some inst -> inst.decided

let highest_decided t = t.highest_decided

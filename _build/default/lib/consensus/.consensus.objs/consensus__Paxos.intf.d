lib/consensus/paxos.mli: Des Fd Format Net Runtime

lib/consensus/paxos.ml: Array Des Fd Fmt Hashtbl Int List Net Runtime Sim_time Topology

(** Uniform consensus inside a set of participants.

    The paper assumes that "in each group consensus is solvable" and builds
    both algorithms on a uniform consensus black box satisfying uniform
    integrity, termination and uniform agreement (Section 2.2). This module
    provides that black box: multi-instance single-decree Paxos with a
    rotating coordinator driven by a {!Fd.Detector.t}.

    Structure per instance (ballot [b] is coordinated by participant
    [b mod n]):

    - ballot 0 skips the prepare phase (no smaller ballot can exist), so a
      failure-free instance costs one [Accept] fan-out, an all-to-all
      [Accepted], and an all-to-all [Decide] — all intra-group when the
      participants are one group, hence free in latency-degree terms;
    - every acceptor broadcasts [Accepted] to all participants and every
      decider broadcasts [Decide] once, so a decision by any process leads
      every correct participant to decide (uniform agreement) even when a
      crashing coordinator's messages were partially lost;
    - a participant that proposed (or adopted acceptor state) arms a
      decision timeout; on expiry — or on a suspicion change — the smallest
      non-suspected participant takes over with a higher ballot of its own.

    Instances are independent; decisions may be reported out of order and
    callers sequence them as they see fit (both A1 and A2 consume decisions
    strictly in their own instance order).

    The implementation halts: once an instance decides, every timer for it
    is cancelled and each process sends at most one more [Decide], so runs
    with finitely many proposals are quiescent — a property Proposition A.9
    (quiescence of Algorithm A2) relies on. *)

type 'v msg
(** Wire messages exchanged by the protocol, carrying values of type ['v].
    Embed in the host protocol's wire type and route back via {!handle}. *)

val tag : 'v msg -> string
(** Short label of the message kind (["cons.accept"], ...) for traces. *)

val pp_msg : Format.formatter -> 'v msg -> unit

type ('v, 'w) t

val create :
  services:'w Runtime.Services.t ->
  wrap:('v msg -> 'w) ->
  participants:Net.Topology.pid list ->
  detector:Fd.Detector.t ->
  ?timeout:Des.Sim_time.t ->
  on_decide:(instance:int -> 'v -> unit) ->
  unit ->
  ('v, 'w) t
(** One consensus endpoint on the local process. [participants] (which must
    include the local process and be identical everywhere) fixes the quorum
    system: a majority of participants. [on_decide] fires exactly once per
    instance, with the decided value. [timeout] (default 200ms) is the
    decision timeout that triggers coordinator rotation. *)

val propose : ('v, 'w) t -> instance:int -> 'v -> unit
(** Submit the local proposal for an instance. At most one proposal per
    instance per process is used (later ones are ignored); proposing on a
    decided instance is a no-op. *)

val handle : ('v, 'w) t -> src:Net.Topology.pid -> 'v msg -> unit
(** Feed an incoming consensus message. *)

val decided_value : ('v, 'w) t -> instance:int -> 'v option

val highest_decided : ('v, 'w) t -> int option
(** Largest instance number the local process has decided, if any. *)

lib/rmcast/reliable_multicast.mli: Des Format Net Runtime

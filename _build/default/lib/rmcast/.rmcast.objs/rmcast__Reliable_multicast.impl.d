lib/rmcast/reliable_multicast.ml: Des Fmt Hashtbl Int List Msg_id Net Runtime Services Topology

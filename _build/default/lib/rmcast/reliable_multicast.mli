(** Reliable multicast (Section 2.2).

    [R-MCast m] / [R-Deliver m] with per-message destination sets,
    satisfying uniform integrity (deliver at most once, only addressees,
    only if cast), validity (a correct caster's message is delivered by all
    correct addressees) and agreement.

    Two variants:

    - {!Eager_nonuniform} — the paper's default primitive (its multicast
      algorithm deliberately uses a {e non-uniform} reliable multicast,
      Section 4.1). Delivery happens on first receipt — latency degree 1,
      [|dest| - 1] messages in the failure-free case, exactly the
      oracle-based cost Figure 1 assumes for the primitive of Frolund &
      Pedone [6]. Agreement for correct processes is ensured by a
      crash-triggered relay: when the failure oracle reports the origin
      crashed, every process that delivered re-forwards once.

    - {!Ack_uniform} — a uniform variant (used by the Fritzke et al. [5]
      baseline, which relies on uniform reliable multicast): every receiver
      relays on first receipt and delivers only once copies from a majority
      of the destination set have arrived, so a delivery by {e any} process
      (even one about to crash) implies every correct addressee eventually
      delivers. Costs one extra message delay and O(|dest|²) messages.

    The caster need not belong to the destination set; it then sends but
    never delivers. *)

type 'p msg

val tag : 'p msg -> string
val pp_msg : Format.formatter -> 'p msg -> unit

type mode = Eager_nonuniform | Ack_uniform

type ('p, 'w) t

val create :
  services:'w Runtime.Services.t ->
  wrap:('p msg -> 'w) ->
  ?mode:mode ->
  ?oracle_delay:Des.Sim_time.t ->
  on_deliver:
    (id:Runtime.Msg_id.t ->
    origin:Net.Topology.pid ->
    dest:Net.Topology.pid list ->
    'p ->
    unit) ->
  unit ->
  ('p, 'w) t
(** [create ~services ~wrap ~on_deliver ()] is an endpoint. [mode] defaults
    to {!Eager_nonuniform}; [oracle_delay] (default 50ms) is the detection
    delay of the crash-relay rule. [on_deliver] fires exactly once per
    R-Delivered message. *)

val rmcast :
  ('p, 'w) t ->
  id:Runtime.Msg_id.t ->
  dest:Net.Topology.pid list ->
  'p ->
  unit
(** Casts a message to [dest] (duplicates ignored). The id must be globally
    unique; {!Runtime.Msg_id} ids qualify. *)

val handle : ('p, 'w) t -> src:Net.Topology.pid -> 'p msg -> unit
(** Feed an incoming reliable-multicast wire message. *)

val delivered : ('p, 'w) t -> Runtime.Msg_id.t -> bool

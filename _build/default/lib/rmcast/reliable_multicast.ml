open Net
open Runtime

type 'p msg =
  | Data of {
      id : Msg_id.t;
      origin : Topology.pid;
      dest : Topology.pid list;
      payload : 'p;
    }

let tag (Data _) = "rm.data"
let pp_msg ppf (Data { id; _ }) = Fmt.pf ppf "rm.data(%a)" Msg_id.pp id

type mode = Eager_nonuniform | Ack_uniform

type 'p known = {
  origin : Topology.pid;
  dest : Topology.pid list;
  payload : 'p;
  copies : (Topology.pid, unit) Hashtbl.t; (* distinct forwarders seen *)
  mutable relayed : bool;
  mutable delivered : bool;
}

type ('p, 'w) t = {
  services : 'w Services.t;
  wrap : 'p msg -> 'w;
  mode : mode;
  known : 'p known Msg_id.Tbl.t;
  on_deliver :
    id:Msg_id.t ->
    origin:Topology.pid ->
    dest:Topology.pid list ->
    'p ->
    unit;
}

let majority dest = (List.length dest / 2) + 1

let rec relay t id k =
  if not k.relayed then begin
    k.relayed <- true;
    let self = t.services.Services.self in
    (* Relaying vouches for the message: the relayer counts as one of the
       copy holders the uniform mode's majority test looks for. *)
    Hashtbl.replace k.copies self ();
    Services.send_all t.services
      (List.filter (fun q -> q <> self) k.dest)
      (t.wrap
         (Data { id; origin = k.origin; dest = k.dest; payload = k.payload }));
    maybe_deliver t id k
  end

and maybe_deliver t id k =
  if (not k.delivered) && List.mem t.services.Services.self k.dest then begin
    let ready =
      match t.mode with
      | Eager_nonuniform -> true
      | Ack_uniform -> Hashtbl.length k.copies >= majority k.dest
    in
    if ready then begin
      k.delivered <- true;
      t.on_deliver ~id ~origin:k.origin ~dest:k.dest k.payload
    end
  end

let learn t ~id ~origin ~dest ~payload ~from =
  let k =
    match Msg_id.Tbl.find_opt t.known id with
    | Some k -> k
    | None ->
      let k =
        {
          origin;
          dest;
          payload;
          copies = Hashtbl.create 4;
          relayed = false;
          delivered = false;
        }
      in
      Msg_id.Tbl.replace t.known id k;
      k
  in
  Hashtbl.replace k.copies from ();
  (match t.mode with
  | Ack_uniform ->
    (* Uniformity needs everyone to echo before anyone is sure. *)
    relay t id k
  | Eager_nonuniform ->
    (* Origin already down when we learn the message: relay immediately,
       the crash-detection callback has already fired (or soon will, with
       this message not yet known). *)
    if not (t.services.Services.alive k.origin) then relay t id k);
  maybe_deliver t id k;
  k

let rmcast t ~id ~dest payload =
  let dest = List.sort_uniq Int.compare dest in
  let origin = t.services.Services.self in
  let k = learn t ~id ~origin ~dest ~payload ~from:origin in
  (* The origin's initial fan-out counts as its relay; it learns its own
     message directly, so no self-send. *)
  k.relayed <- true;
  Services.send_all t.services
    (List.filter (fun q -> q <> origin) dest)
    (t.wrap (Data { id; origin; dest; payload }))

let handle t ~src:from m =
  match m with
  | Data { id; origin; dest; payload } ->
    ignore (learn t ~id ~origin ~dest ~payload ~from)

let delivered t id =
  match Msg_id.Tbl.find_opt t.known id with
  | Some k -> k.delivered
  | None -> false

let create ~services ~wrap ?(mode = Eager_nonuniform)
    ?(oracle_delay = Des.Sim_time.of_ms 50) ~on_deliver () =
  let t =
    { services; wrap; mode; known = Msg_id.Tbl.create 64; on_deliver }
  in
  (match mode with
  | Eager_nonuniform ->
    (* Crash-relay rule: when the origin of a delivered message is reported
       crashed, re-forward once so every correct addressee gets a copy. *)
    services.Services.on_crash_detected ~delay:oracle_delay (fun dead ->
        Msg_id.Tbl.iter
          (fun id k -> if k.origin = dead && k.delivered then relay t id k)
          t.known)
  | Ack_uniform -> ());
  t

(** Application messages.

    The unit all protocols of this library agree on: a payload addressed to
    a set of groups ([m.dest] in the paper). Broadcast is the special case
    [dest = all groups]. *)

type t = {
  id : Runtime.Msg_id.t;  (** Globally unique; breaks timestamp ties. *)
  dest : Net.Topology.gid list;  (** Destination groups, sorted, deduped. *)
  payload : string;
}

val make :
  id:Runtime.Msg_id.t -> dest:Net.Topology.gid list -> string -> t
(** Normalises [dest] (sort, dedupe). @raise Invalid_argument on empty
    destination set. *)

val broadcast :
  id:Runtime.Msg_id.t -> topology:Net.Topology.t -> string -> t
(** A message addressed to every group. *)

val dest_pids : Net.Topology.t -> t -> Net.Topology.pid list
(** All processes addressed by the message, i.e. the members of its
    destination groups. *)

val is_single_group : t -> bool
val addressed_to_group : t -> Net.Topology.gid -> bool
val addressed_to_pid : Net.Topology.t -> t -> Net.Topology.pid -> bool
val compare_id : t -> t -> int
val equal_id : t -> t -> bool
val pp : Format.formatter -> t -> unit

val compare_ts_id : (int * t) -> (int * t) -> int
(** The paper's delivery order: [(ts, id)] pairs compared
    lexicographically — [(m1.ts, m1.id) < (m2.ts, m2.id)] iff
    [m1.ts < m2.ts], or the timestamps are equal and [m1.id < m2.id]. *)

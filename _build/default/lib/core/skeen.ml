open Net
open Runtime

let name = "skeen"

type wire =
  | Data of Msg.t
  | Stamp of { id : Msg_id.t; ts : int }

let tag = function Data _ -> "skeen.data" | Stamp _ -> "skeen.stamp"

type pending = {
  msg : Msg.t;
  own_ts : int;
  stamps : (Topology.pid, int) Hashtbl.t;
  mutable final : int option;
}

type t = {
  services : wire Services.t;
  deliver : Msg.t -> unit;
  mutable clock : int;
  pending : pending Msg_id.Tbl.t;
  delivered : unit Msg_id.Tbl.t;
  early_stamps : (Topology.pid * int) list Msg_id.Tbl.t;
      (* stamps that outran their Data message (triangle inequality does
         not hold under jitter or asymmetric latency matrices) *)
}

(* Deliver every finalised message whose (final, id) is minimal: no other
   finalised message precedes it, and no unfinalised message could still
   get a smaller final stamp (its final is at least its own stamp here). *)
let delivery_test t =
  let rec loop () =
    let best =
      Msg_id.Tbl.fold
        (fun _ p best ->
          match p.final with
          | None -> best
          | Some f -> (
            match best with
            | Some (f', p') when Msg.compare_ts_id (f', p'.msg) (f, p.msg) < 0
              ->
              best
            | _ -> Some (f, p)))
        t.pending None
    in
    match best with
    | None -> ()
    | Some (f, p) ->
      let blocked =
        Msg_id.Tbl.fold
          (fun _ q acc ->
            acc
            || q.final = None
               && Msg.compare_ts_id (q.own_ts, q.msg) (f, p.msg) < 0)
          t.pending false
      in
      if not blocked then begin
        Msg_id.Tbl.remove t.pending p.msg.id;
        Msg_id.Tbl.replace t.delivered p.msg.id ();
        t.deliver p.msg;
        loop ()
      end
  in
  loop ()

let maybe_finalize t p =
  if p.final = None then begin
    let addressees = Msg.dest_pids t.services.Services.topology p.msg in
    if List.for_all (fun q -> Hashtbl.mem p.stamps q) addressees then begin
      let f = Hashtbl.fold (fun _ ts acc -> max acc ts) p.stamps 0 in
      p.final <- Some f;
      t.clock <- max t.clock f;
      delivery_test t
    end
  end

let on_data t (m : Msg.t) =
  if
    (not (Msg_id.Tbl.mem t.pending m.id))
    && not (Msg_id.Tbl.mem t.delivered m.id)
  then begin
    t.clock <- t.clock + 1;
    let p =
      { msg = m; own_ts = t.clock; stamps = Hashtbl.create 8; final = None }
    in
    Hashtbl.replace p.stamps t.services.Services.self t.clock;
    (match Msg_id.Tbl.find_opt t.early_stamps m.id with
    | Some stamps ->
      List.iter (fun (q, ts) -> Hashtbl.replace p.stamps q ts) stamps;
      Msg_id.Tbl.remove t.early_stamps m.id
    | None -> ());
    Msg_id.Tbl.replace t.pending m.id p;
    let addressees = Msg.dest_pids t.services.Services.topology m in
    List.iter
      (fun q ->
        if q <> t.services.Services.self then
          t.services.Services.send ~dst:q (Stamp { id = m.id; ts = t.clock }))
      addressees;
    maybe_finalize t p
  end

let cast t (m : Msg.t) =
  let addressees = Msg.dest_pids t.services.Services.topology m in
  List.iter
    (fun q ->
      if q <> t.services.Services.self then
        t.services.Services.send ~dst:q (Data m))
    addressees;
  (* The caster participates directly when it is itself an addressee. *)
  if Msg.addressed_to_pid t.services.Services.topology m t.services.Services.self
  then on_data t m

let on_receive t ~src w =
  match w with
  | Data m -> on_data t m
  | Stamp { id; ts } ->
    t.clock <- max t.clock ts;
    (match Msg_id.Tbl.find_opt t.pending id with
    | Some p ->
      if not (Hashtbl.mem p.stamps src) then Hashtbl.replace p.stamps src ts;
      maybe_finalize t p
    | None ->
      if not (Msg_id.Tbl.mem t.delivered id) then begin
        (* Stamp outran the Data message: buffer until Data arrives. *)
        let prev =
          Option.value ~default:[] (Msg_id.Tbl.find_opt t.early_stamps id)
        in
        Msg_id.Tbl.replace t.early_stamps id ((src, ts) :: prev)
      end);
    delivery_test t

let create ~services ~config:_ ~deliver =
  {
    services;
    deliver;
    clock = 0;
    pending = Msg_id.Tbl.create 32;
    delivered = Msg_id.Tbl.create 32;
    early_stamps = Msg_id.Tbl.create 8;
  }

let pending_count t = Msg_id.Tbl.length t.pending

lib/core/sequencer.mli: Protocol Runtime

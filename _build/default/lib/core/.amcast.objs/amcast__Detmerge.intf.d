lib/core/detmerge.mli: Protocol

lib/core/protocol.ml: Des Msg Net Rmcast Runtime

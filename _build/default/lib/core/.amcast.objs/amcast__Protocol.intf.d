lib/core/protocol.mli: Des Msg Net Rmcast Runtime

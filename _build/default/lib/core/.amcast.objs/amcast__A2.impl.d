lib/core/a2.ml: Consensus Des Fd Hashtbl List Msg Msg_id Net Option Protocol Rmcast Runtime Services Topology

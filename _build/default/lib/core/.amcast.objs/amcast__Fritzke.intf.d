lib/core/fritzke.mli: Protocol

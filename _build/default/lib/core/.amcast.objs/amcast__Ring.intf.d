lib/core/ring.mli: Protocol

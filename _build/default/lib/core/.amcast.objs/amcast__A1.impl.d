lib/core/a1.ml: Consensus Fd Fmt Hashtbl List Msg Msg_id Net Option Protocol Rmcast Runtime Services Topology

lib/core/via_broadcast.mli: Protocol

lib/core/via_broadcast.ml: A2 Msg Net Runtime

lib/core/msg.ml: Fmt Int List Net Runtime

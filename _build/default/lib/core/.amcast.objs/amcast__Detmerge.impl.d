lib/core/detmerge.ml: Array Des List Msg Msg_id Net Protocol Runtime Services Topology

lib/core/scalable.ml: Consensus Fd Hashtbl List Msg Msg_id Net Option Protocol Rmcast Runtime Services Topology

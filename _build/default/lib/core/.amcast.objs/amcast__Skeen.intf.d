lib/core/skeen.mli: Protocol

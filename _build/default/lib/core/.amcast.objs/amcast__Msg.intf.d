lib/core/msg.mli: Format Net Runtime

lib/core/optimistic.mli: Protocol Runtime

lib/core/fritzke.ml: A1 Protocol

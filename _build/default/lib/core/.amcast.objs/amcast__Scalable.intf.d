lib/core/scalable.mli: Protocol

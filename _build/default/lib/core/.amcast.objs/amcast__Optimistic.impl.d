lib/core/optimistic.ml: Array Des Hashtbl List Msg Msg_id Net Protocol Runtime Services Topology

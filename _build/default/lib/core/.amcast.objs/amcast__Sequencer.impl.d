lib/core/sequencer.ml: Hashtbl List Msg Msg_id Net Runtime Services Topology

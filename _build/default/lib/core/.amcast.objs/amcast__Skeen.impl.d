lib/core/skeen.ml: Hashtbl List Msg Msg_id Net Option Runtime Services Topology

lib/core/a2.mli: Msg Protocol

lib/core/a1.mli: Format Protocol

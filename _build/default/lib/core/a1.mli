(** Algorithm A1 — genuine atomic multicast for WANs (Section 4).

    Skeen-style timestamping made fault-tolerant: inside each destination
    group, a logical clock [K] is maintained by running one consensus
    instance per clock tick, and every multicast message [m] walks through
    four stages:

    - {b s0} — [m] is reliably multicast (non-uniformly) to its destination
      groups; each group proposes it to its next consensus instance, and
      the deciding instance number is the group's timestamp proposal;
    - {b s1} — destination groups exchange their proposals in [(TS, m)]
      messages; the final timestamp is the maximum proposal;
    - {b s2} — groups whose proposal was below the maximum run one more
      consensus instance to push their clock past the final timestamp;
    - {b s3} — [m] is A-Delivered once its [(ts, id)] pair is minimal among
      all pending messages.

    The two optimisations over Fritzke et al. [5] are implemented and
    individually switchable through {!Protocol.Config}: single-group
    messages jump from s0 straight to s3, and the group that proposed the
    maximum skips s2 (its clock is already beyond the final timestamp).

    Latency degree: 0 for a message multicast to the caster's own group
    only, 1 to a single remote group, and 2 to multiple groups — which
    Proposition 3.1/3.2 shows is optimal for a genuine algorithm.

    Genuineness: every message of the protocol (reliable multicast, group
    consensus, TS exchange) stays within [m.dest ∪ {caster}]. *)

module Stage : sig
  type t = S0 | S1 | S2 | S3

  val pp : Format.formatter -> t -> unit
  val to_string : t -> string
end

include Protocol.S

val pending_count : t -> int
(** Number of messages not yet A-Delivered on this process (debug/metrics). *)

val clock : t -> int
(** Current value of the group clock copy [K] (debug/metrics). *)

val consensus_instances_executed : t -> int
(** How many consensus instances this process has decided; the ablation
    benchmark compares this with and without stage skipping. *)

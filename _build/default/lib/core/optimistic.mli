(** Optimistic total order for WANs, after Sousa–Pereira–Moura–Oliveira
    ([12] in the paper).

    Exploits spontaneous ordering: the caster broadcasts the message
    directly to every process together with its (logical) send timestamp;
    receivers wait a configurable compensation window and {e optimistically}
    deliver in (send timestamp, id) order — in a WAN with comparable link
    latencies, concurrent messages usually arrive everywhere in that same
    order, making the optimistic delivery almost always right at latency
    degree 1. The {e final} order is fixed by a sequencer process that
    broadcasts its own delivery order; final delivery follows it, at
    latency degree 2 and O(n) messages per broadcast (Figure 1b).

    The protocol is {e non-uniform} (the paper notes this of [12]): no
    acknowledgment round protects against a process delivering and
    crashing, so the agreement property is only guaranteed for correct
    processes. Measured in failure-free runs, like Figure 1. *)

include Protocol.S

val optimistic_deliveries : t -> Runtime.Msg_id.t list
(** Local optimistic delivery order, oldest first. *)

val optimistic_mistakes : t -> int
(** How many messages this process optimistically delivered in a position
    that disagrees with the final order — the quantity [12] minimises. *)

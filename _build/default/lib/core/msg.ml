type t = {
  id : Runtime.Msg_id.t;
  dest : Net.Topology.gid list;
  payload : string;
}

let make ~id ~dest payload =
  let dest = List.sort_uniq Int.compare dest in
  if dest = [] then invalid_arg "Msg.make: empty destination set";
  { id; dest; payload }

let broadcast ~id ~topology payload =
  make ~id ~dest:(Net.Topology.all_groups topology) payload

let dest_pids topology t = Net.Topology.pids_of_groups topology t.dest
let is_single_group t = match t.dest with [ _ ] -> true | _ -> false
let addressed_to_group t g = List.mem g t.dest

let addressed_to_pid topology t p =
  addressed_to_group t (Net.Topology.group_of topology p)

let compare_id a b = Runtime.Msg_id.compare a.id b.id
let equal_id a b = compare_id a b = 0

let pp ppf t =
  Fmt.pf ppf "%a->[%a]" Runtime.Msg_id.pp t.id
    Fmt.(list ~sep:(any ",") int)
    t.dest

let compare_ts_id (ts1, m1) (ts2, m2) =
  let c = Int.compare ts1 ts2 in
  if c <> 0 then c else compare_id m1 m2

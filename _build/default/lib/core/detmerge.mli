(** Deterministic-merge total order, after Aguilera & Strom ([1] in the
    paper).

    Every process is a publisher with its own timestamp stream; a cast is
    sent directly to its addressees stamped with the publisher's next
    timestamp, and every publisher keeps all streams moving by emitting
    periodic {e null} messages to everyone. A subscriber delivers buffered
    messages up to the watermark — the minimum timestamp every publisher's
    stream has provably passed — merging them in the deterministic
    [(timestamp, publisher)] order.

    Latency degree 1 with O(kd) messages per multicast (Figure 1a) and
    O(n) per broadcast (Figure 1b) — better than every other algorithm in
    the comparison. The catch is the assumptions, which the paper's
    footnotes spell out: publishers never crash and cast infinitely many
    messages (here: the nulls). The protocol is {e not} genuine — nulls
    flow to every process regardless of destinations — and {e never}
    quiescent, so it does not contradict either lower bound of Section 3.
    Runs must use a time horizon. *)

include Protocol.S

val watermark : t -> int
(** The local merge watermark (diagnostics). *)

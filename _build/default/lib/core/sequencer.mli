(** Sequencer-based uniform atomic broadcast, after Vicente & Rodrigues
    ([13] in the paper).

    A fixed sequencer (the first process of group 0) assigns consecutive
    sequence numbers to broadcast messages. Receivers {e optimistically}
    deliver a message as soon as they hold both the message and its
    sequence number; the {e final} (uniform) delivery additionally waits
    until a majority of all processes has acknowledged the assignment and
    all smaller sequence numbers are finally delivered.

    Costs (Figure 1b, best case — the caster in the sequencer's group):
    the message reaches everyone in one inter-group delay, the sequence
    number travels concurrently, and the all-to-all validation adds one
    more — optimistic latency degree 1, final latency degree 2, O(n²)
    messages. A2 achieves final delivery at degree 1 with the same message
    complexity.

    Failure handling (sequencer crash, indulgence) is out of scope for
    this baseline: like Figure 1, it is measured in failure-free runs. *)

include Protocol.S

val optimistic_deliveries : t -> (Runtime.Msg_id.t * int) list
(** The optimistic delivery sequence (message, sequence number) observed
    locally, oldest first — compared against final deliveries in tests. *)

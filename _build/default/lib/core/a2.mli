(** Algorithm A2 — atomic broadcast with latency degree 1 (Section 5).

    The first fault-tolerant atomic broadcast that can deliver in a single
    inter-group message delay. Processes execute a sequence of rounds; in
    round [K]:

    - inside each group, one consensus instance fixes the group's
      {e message bundle} — the broadcast messages R-Delivered locally and
      not yet A-Delivered (possibly the empty set);
    - every process sends its group's bundle to all processes outside its
      group and waits for one round-[K] bundle from every other group;
    - the union of the bundles is A-Delivered in a deterministic order
      (sorted by message id).

    Because groups run their consensus and exchange bundles {e proactively}
    — before knowing whether anything was broadcast — a message that lands
    in an already-running round crosses group boundaries exactly once:
    latency degree 1 (Theorem 5.1).

    Quiescence (Proposition A.9): a round that delivers nothing does not
    raise the barrier, so after the last message is delivered processes stop
    executing rounds and, the underlying consensus being halting, stop
    sending messages altogether. The algorithm is indulgent about the
    prediction being wrong: a broadcast arriving after quiescence restarts
    rounds — the caster's group decides a new round and its bundle raises
    every other group's barrier — at the price of one extra inter-group
    delay (latency degree 2, Theorem 5.2; unavoidable by Proposition
    3.1/3.3). *)

include Protocol.S

val round : t -> int
(** Current round number [K] (debug/metrics). *)

val barrier : t -> int
(** Last round this process currently intends to execute. *)

val rounds_executed : t -> int
(** Completed rounds on this process. *)

val cast_payload_only : t -> Msg.t -> unit
(** Like {!cast} but without asserting that [msg.dest] covers all groups —
    used by the non-genuine multicast wrapper, which broadcasts messages
    addressed to a subset of groups and filters at delivery. *)

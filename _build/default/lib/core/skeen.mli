(** Skeen's atomic multicast (Birman & Joseph [2], failure-free).

    The ancestor of every timestamp-based multicast in this library, in its
    decentralised form: the caster sends [m] to all addressees; each
    addressee stamps [m] with its logical clock and sends the stamp to every
    other addressee; the final timestamp is the maximum stamp, and messages
    are delivered in [(final ts, id)] order once no pending message could
    still receive a smaller final timestamp.

    Latency degree 2 for multi-group messages — which, by the lower bound of
    Section 3, turns out to be optimal: as the paper notes, Skeen's
    algorithm was optimal all along, "a result that has apparently been left
    unnoticed by the scientific community for more than 20 years". A1 is the
    fault-tolerant version of the same idea (clocks maintained by consensus
    inside groups instead of by individual processes).

    This implementation assumes the failure-free model of Section 3 (no
    crashes, reliable links); it exists as the historical baseline and for
    the lower-bound experiments. *)

include Protocol.S

val pending_count : t -> int

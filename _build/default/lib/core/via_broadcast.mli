(** Non-genuine atomic multicast over atomic broadcast.

    The trivial reduction the introduction rules out as "of no practical
    interest" — and the other side of the paper's central tradeoff: every
    message is A-BCast to {e all} groups with {!A2} and simply filtered at
    delivery, so processes outside [m.dest] carry traffic for messages that
    do not concern them.

    What you gain: A2's latency degree (1 warm, 2 cold) even for multicast,
    beating the genuine lower bound of 2.
    What you pay: O(n²) inter-group messages per message regardless of how
    few groups are addressed, and every round involves the whole system.

    The tradeoff benchmark sweeps the number of destination groups against
    {!A1} to reproduce the paper's discussion (Sections 1 and 6). *)

include Protocol.S

(** The Fritzke–Ingels–Mostéfaoui–Raynal baseline ([5] in the paper).

    Same four-stage timestamping structure as {!A1} — A1 is explicitly "an
    optimized version of [5]" — but with the two optimisations disabled and
    a uniform reliable multicast for dissemination:

    - every message walks through all four stages, even when addressed to a
      single group (an extra consensus instance per message);
    - the group that proposed the maximum timestamp still runs stage s2
      (another extra consensus instance);
    - the dissemination plays the role of [5]'s {e uniform} reliable
      multicast; as in Figure 1's cost model we use the oracle-based
      uniform primitive of Frolund & Pedone [6] (latency degree 1, same
      failure-free message pattern as the eager non-uniform one).

    Latency degree is still 2 for multi-group messages (Figure 1a): the
    stage skips save {e intra-group} work, not inter-group delays. The
    ablation benchmark quantifies exactly that — consensus instances and
    intra-group messages, A1 vs this baseline. *)

include Protocol.S

val consensus_instances_executed : t -> int
(** See {!A1.consensus_instances_executed}; the ablation benchmark compares
    the two. *)

(** The Rodrigues–Guerraoui–Schiper baseline ([10] in the paper).

    Genuine atomic multicast where the {e addressees themselves} agree on
    the timestamp: the message is disseminated to all destination
    processes; each stamps it with its logical clock and sends the stamp to
    every other addressee; once the stamps are in, the maximum is proposed
    to a consensus instance run {e across} the destination groups, and
    messages are delivered in (decided timestamp, id) order.

    Because that consensus spans groups, it costs two further inter-group
    delays — latency degree 4 (Figure 1a) and O(k²d²) messages — which is
    precisely why the paper calls it "not well-suited for wide area
    networks": A1 moves the consensus inside each group and halves the
    latency.

    This implementation collects stamps from {e all} addressees (the
    published algorithm waits for a majority of each group to tolerate
    faults; the failure-free cost Figure 1 reports is identical), so it is
    exercised in failure-free runs only. *)

include Protocol.S

val pending_count : t -> int

(** The Delporte-Gallet & Fauconnier baseline ([4] in the paper).

    Genuine fault-tolerant atomic multicast where the destination groups of
    a message form a {e chain} (sorted by group id): the message is reliably
    multicast to the first group, which runs consensus to stamp it with its
    group clock and hands it over to the second group; every subsequent
    group stamps it with a strictly larger value, and the {e last} group's
    stamp is the final timestamp, broadcast back to all destination groups
    in an acknowledgment. To avoid delivery-order cycles, a group handles
    one message at a time, waiting for the final acknowledgment before
    stamping the next (as described in the paper's related-work section).

    Messages are delivered in (final timestamp, id) order, with delivery
    blocked while any known-but-unfinalised message could still receive a
    smaller final stamp.

    Costs (Figure 1a): latency degree [k + 1] for [k] destination groups —
    one hop to reach the chain, [k - 1] hand-offs, one acknowledgment hop —
    against A1's constant 2; but only O(kd²) inter-group messages against
    A1's O(k²d²). The tradeoff benchmark quantifies exactly this. *)

include Protocol.S

val pending_count : t -> int

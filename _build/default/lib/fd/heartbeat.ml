open Des

type msg = Ping of { seq : int }

let pp_msg ppf (Ping { seq }) = Fmt.pf ppf "ping(%d)" seq

type peer = {
  mutable deadline_timer : int option;
  mutable timeout : Sim_time.t;
  mutable suspected : bool;
}

type 'w t = {
  services : 'w Runtime.Services.t;
  wrap : msg -> 'w;
  peers : (Net.Topology.pid, peer) Hashtbl.t;
  period : Sim_time.t;
  mutable seq : int;
  mutable listeners : (unit -> unit) list;
  mutable stopped : bool;
  mutable beat_timer : int option;
}

let notify t = List.iter (fun f -> f ()) t.listeners

let rec arm_deadline t _pid peer =
  peer.deadline_timer <-
    Some
      (t.services.set_timer ~after:peer.timeout (fun () ->
           peer.deadline_timer <- None;
           if (not t.stopped) && not peer.suspected then begin
             peer.suspected <- true;
             notify t
           end))

and handle t ~src (Ping _) =
  if not t.stopped then
    match Hashtbl.find_opt t.peers src with
    | None -> ()
    | Some peer ->
      (match peer.deadline_timer with
      | Some h -> t.services.cancel_timer h
      | None -> ());
      if peer.suspected then begin
        (* False suspicion: revoke and back off, the ◇P adaptation rule. *)
        peer.suspected <- false;
        peer.timeout <- Sim_time.add peer.timeout peer.timeout;
        notify t
      end;
      arm_deadline t src peer

let rec beat t =
  if not t.stopped then begin
    t.seq <- t.seq + 1;
    let ping = t.wrap (Ping { seq = t.seq }) in
    Hashtbl.iter (fun pid _ -> t.services.send ~dst:pid ping) t.peers;
    t.beat_timer <- Some (t.services.set_timer ~after:t.period (fun () -> beat t))
  end

let create ~services ~wrap ~monitored ~period ~timeout =
  let t =
    {
      services;
      wrap;
      peers = Hashtbl.create 8;
      period;
      seq = 0;
      listeners = [];
      stopped = false;
      beat_timer = None;
    }
  in
  List.iter
    (fun pid ->
      if pid <> services.Runtime.Services.self then begin
        let peer = { deadline_timer = None; timeout; suspected = false } in
        Hashtbl.replace t.peers pid peer;
        arm_deadline t pid peer
      end)
    monitored;
  beat t;
  t

let detector t =
  {
    Detector.suspects =
      (fun q ->
        match Hashtbl.find_opt t.peers q with
        | None -> false
        | Some peer -> peer.suspected);
    subscribe = (fun f -> t.listeners <- t.listeners @ [ f ]);
  }

let stop t =
  t.stopped <- true;
  (match t.beat_timer with
  | Some h -> t.services.cancel_timer h
  | None -> ());
  Hashtbl.iter
    (fun _ peer ->
      match peer.deadline_timer with
      | Some h ->
        t.services.cancel_timer h;
        peer.deadline_timer <- None
      | None -> ())
    t.peers

type t = {
  suspects : Net.Topology.pid -> bool;
  subscribe : (unit -> unit) -> unit;
}

let leader t candidates =
  List.find_opt (fun p -> not (t.suspects p)) candidates

let oracle ~delay (services : _ Runtime.Services.t) =
  let suspected = Hashtbl.create 8 in
  let listeners = ref [] in
  services.on_crash_detected ~delay (fun pid ->
      if not (Hashtbl.mem suspected pid) then begin
        Hashtbl.replace suspected pid ();
        List.iter (fun f -> f ()) !listeners
      end);
  {
    suspects = (fun q -> Hashtbl.mem suspected q);
    subscribe = (fun f -> listeners := !listeners @ [ f ]);
  }

let never_suspects =
  { suspects = (fun _ -> false); subscribe = (fun _ -> ()) }

lib/fd/heartbeat.ml: Des Detector Fmt Hashtbl List Net Runtime Sim_time

lib/fd/detector.mli: Des Net Runtime

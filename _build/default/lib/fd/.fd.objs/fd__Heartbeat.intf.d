lib/fd/heartbeat.mli: Des Detector Format Net Runtime

lib/fd/detector.ml: Hashtbl List Net Runtime

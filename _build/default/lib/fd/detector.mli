(** Failure-detector abstraction.

    Consensus (and the reliable-multicast relay rule) only need two things
    from a failure detector: a current suspicion predicate and a way to be
    told when suspicions change. Both the idealised {!oracle} detector and
    the message-based {!Heartbeat} detector implement this interface, so
    protocols are agnostic to which one drives them.

    The paper's cost model (Figure 1) assumes oracle-based primitives —
    failure detection contributes neither messages nor latency — so the
    oracle is the default throughout the experiments; the heartbeat detector
    exists to show the protocols also run on a realistic ◇P. *)

type t = {
  suspects : Net.Topology.pid -> bool;
      (** [suspects q] is whether the local process currently suspects [q]
          to have crashed. *)
  subscribe : (unit -> unit) -> unit;
      (** [subscribe f] registers [f] to run after every suspicion change. *)
}

val leader : t -> Net.Topology.pid list -> Net.Topology.pid option
(** [leader t candidates] is the smallest non-suspected candidate — the
    rotating-coordinator rule (an Omega election among [candidates]).
    [None] if every candidate is suspected. *)

val oracle : delay:Des.Sim_time.t -> 'w Runtime.Services.t -> t
(** An eventually-perfect detector implemented on the engine's ground
    truth: a crash is reported exactly [delay] after it happens, and there
    are no false suspicions. Sends no messages (cf. the oracle-based
    consensus/reliable-broadcast algorithms the paper cites for its cost
    accounting). *)

val never_suspects : t
(** The trivial detector for failure-free runs. *)

type t = int

let initial = 0
let on_local t = t
let on_send ~same_group t = if same_group then t else t + 1
let on_receive t ~carried = max t carried

let latency_degree ~cast ~deliveries =
  match deliveries with
  | [] -> None
  | d :: ds -> Some (List.fold_left max d ds - cast)

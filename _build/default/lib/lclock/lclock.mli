(** The modified Lamport clocks of Section 2.3.

    The paper measures the cost of an algorithm as its {e latency degree}:
    the number of {e inter-group} message delays on the longest causal path
    from the cast of a message to its last delivery. This is captured by a
    variant of Lamport's logical clocks in which only inter-group sends tick:

    - a local event keeps the clock unchanged;
    - a send to a process in the {e same} group carries the clock value
      unchanged;
    - a send to a process in a {e different} group carries the clock value
      {e plus one} — but the sender's own clock does not advance (only
      receives move a clock forward, so a fan-out of many sends counts as
      one causal hop);
    - receiving a message advances the clock to
      [max local (carried value)].

    With these rules, for a message [m] cast with clock value [c] and
    delivered at some process with clock value [c'], the difference
    [c' - c] is the number of inter-group hops on the longest causal chain
    between the two events, and the latency degree of [m] in the run is the
    maximum of that difference over all processes that deliver [m]. *)

type t = int
(** A clock value. Clock values start at 0 and never decrease. *)

val initial : t
(** The initial clock value of every process (0). *)

val on_local : t -> t
(** Clock value after a local event (unchanged; rule 1). *)

val on_send : same_group:bool -> t -> t
(** The clock value carried by a send event (rule 2). The sender's stored
    clock is left unchanged by the caller. *)

val on_receive : t -> carried:t -> t
(** Clock value after receiving a message that carried [carried] (rule 3). *)

val latency_degree : cast:t -> deliveries:t list -> int option
(** [latency_degree ~cast ~deliveries] is
    [Some (max deliveries - cast)], or [None] when [deliveries] is empty
    (the message was never delivered). *)

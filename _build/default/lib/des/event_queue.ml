type 'a entry = { time : Sim_time.t; seq : int; handle : int; payload : 'a }

type 'a t = {
  mutable heap : 'a entry array;
  mutable len : int;
  mutable next_seq : int;
  mutable next_handle : int;
  pending : (int, unit) Hashtbl.t; (* handles scheduled and not yet popped/cancelled *)
}

let create () =
  { heap = [||]; len = 0; next_seq = 0; next_handle = 0;
    pending = Hashtbl.create 64 }

let entry_lt a b =
  let c = Sim_time.compare a.time b.time in
  if c <> 0 then c < 0 else a.seq < b.seq

let grow q =
  let cap = Array.length q.heap in
  let ncap = if cap = 0 then 16 else cap * 2 in
  let dummy = q.heap.(0) in
  let nh = Array.make ncap dummy in
  Array.blit q.heap 0 nh 0 q.len;
  q.heap <- nh

let rec sift_up q i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if entry_lt q.heap.(i) q.heap.(parent) then begin
      let tmp = q.heap.(i) in
      q.heap.(i) <- q.heap.(parent);
      q.heap.(parent) <- tmp;
      sift_up q parent
    end
  end

let rec sift_down q i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < q.len && entry_lt q.heap.(l) q.heap.(!smallest) then smallest := l;
  if r < q.len && entry_lt q.heap.(r) q.heap.(!smallest) then smallest := r;
  if !smallest <> i then begin
    let tmp = q.heap.(i) in
    q.heap.(i) <- q.heap.(!smallest);
    q.heap.(!smallest) <- tmp;
    sift_down q !smallest
  end

let add q ~time payload =
  let handle = q.next_handle in
  q.next_handle <- handle + 1;
  let e = { time; seq = q.next_seq; handle; payload } in
  q.next_seq <- q.next_seq + 1;
  if q.len = 0 && Array.length q.heap = 0 then q.heap <- Array.make 16 e;
  if q.len >= Array.length q.heap then grow q;
  q.heap.(q.len) <- e;
  q.len <- q.len + 1;
  Hashtbl.replace q.pending handle ();
  sift_up q (q.len - 1);
  handle

let cancel q handle = Hashtbl.remove q.pending handle

let pop_entry q =
  if q.len = 0 then None
  else begin
    let e = q.heap.(0) in
    q.len <- q.len - 1;
    if q.len > 0 then begin
      q.heap.(0) <- q.heap.(q.len);
      sift_down q 0
    end;
    Some e
  end

let rec pop q =
  match pop_entry q with
  | None -> None
  | Some e ->
    if Hashtbl.mem q.pending e.handle then begin
      Hashtbl.remove q.pending e.handle;
      Some (e.time, e.payload)
    end
    else pop q (* cancelled: skip *)

let rec peek_time q =
  if q.len = 0 then None
  else begin
    let e = q.heap.(0) in
    if Hashtbl.mem q.pending e.handle then Some e.time
    else begin
      ignore (pop_entry q);
      peek_time q
    end
  end

let size q = Hashtbl.length q.pending
let is_empty q = size q = 0

(** Priority queue of timed events.

    A binary min-heap keyed by [(time, sequence)] where the sequence number
    is the insertion order. The secondary key makes extraction deterministic:
    two events scheduled for the same instant pop in insertion order, so a
    simulation never depends on heap-internal tie-breaking. *)

type 'a t
(** A queue of events carrying payloads of type ['a]. *)

val create : unit -> 'a t
(** An empty queue. *)

val add : 'a t -> time:Sim_time.t -> 'a -> int
(** [add q ~time payload] schedules [payload] at [time] and returns a unique
    handle that identifies this entry (usable with {!cancel}). *)

val cancel : 'a t -> int -> unit
(** [cancel q handle] marks the entry as cancelled; it is skipped on
    extraction. Cancelling an unknown or already-popped handle is a no-op. *)

val pop : 'a t -> (Sim_time.t * 'a) option
(** Removes and returns the earliest non-cancelled event, or [None] if the
    queue has no live entries. *)

val peek_time : 'a t -> Sim_time.t option
(** The timestamp of the earliest live event, without removing it. *)

val size : 'a t -> int
(** Number of live (non-cancelled) entries. *)

val is_empty : 'a t -> bool

(** Simulated time for the discrete-event kernel.

    Time is a non-negative count of microseconds since the start of the
    simulation. Using an integer representation keeps event ordering exact
    and runs bit-for-bit reproducible. *)

type t = private int
(** A point in simulated time, in microseconds. *)

val zero : t
(** The origin of simulated time. *)

val of_us : int -> t
(** [of_us n] is the time [n] microseconds after the origin.
    @raise Invalid_argument if [n] is negative. *)

val of_ms : int -> t
(** [of_ms n] is the time [n] milliseconds after the origin. *)

val of_sec : float -> t
(** [of_sec s] is the time [s] seconds after the origin, rounded down to the
    enclosing microsecond. *)

val to_us : t -> int
(** [to_us t] is [t] expressed in microseconds. *)

val to_ms_float : t -> float
(** [to_ms_float t] is [t] expressed in (fractional) milliseconds. *)

val add : t -> t -> t
(** [add a b] is the instant [b] after waiting duration [a] (or vice versa:
    time points and durations share the representation). *)

val add_us : t -> int -> t
(** [add_us t n] is [t] shifted forward by [n] microseconds. The result is
    clamped at [zero] if [n] is negative and larger than [t]. *)

val diff : t -> t -> int
(** [diff a b] is [a - b] in microseconds (possibly negative). *)

val compare : t -> t -> int
(** Total order on time points. *)

val equal : t -> t -> bool

val ( <= ) : t -> t -> bool
val ( < ) : t -> t -> bool
val ( >= ) : t -> t -> bool

val min : t -> t -> t
val max : t -> t -> t

val infinity : t
(** A time point greater than any time reachable in practice; used as a
    horizon for [run_until]-style loops. *)

val pp : Format.formatter -> t -> unit
(** Prints a time as e.g. ["12.345ms"]. *)

val to_string : t -> string

type t = int

let zero = 0

let of_us n =
  if n < 0 then invalid_arg "Sim_time.of_us: negative" else n

let of_ms n = of_us (n * 1_000)

let of_sec s =
  if s < 0. then invalid_arg "Sim_time.of_sec: negative"
  else int_of_float (s *. 1_000_000.)

let to_us t = t
let to_ms_float t = float_of_int t /. 1_000.
let add a b = a + b
let add_us t n = Stdlib.max 0 (t + n)
let diff a b = a - b
let compare = Int.compare
let equal = Int.equal
let ( <= ) (a : t) (b : t) = a <= b
let ( < ) (a : t) (b : t) = a < b
let ( >= ) (a : t) (b : t) = a >= b
let min (a : t) (b : t) = Stdlib.min a b
let max (a : t) (b : t) = Stdlib.max a b
let infinity = max_int / 2

let pp ppf t =
  if t = infinity then Fmt.string ppf "+inf"
  else Fmt.pf ppf "%.3fms" (to_ms_float t)

let to_string t = Fmt.str "%a" pp t

lib/des/sim_time.ml: Fmt Int Stdlib

lib/des/sim_time.mli: Format

lib/des/event_queue.mli: Sim_time

lib/des/rng.mli:

lib/des/scheduler.ml: Event_queue Sim_time

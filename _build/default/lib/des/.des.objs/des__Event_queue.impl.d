lib/des/event_queue.ml: Array Hashtbl Sim_time

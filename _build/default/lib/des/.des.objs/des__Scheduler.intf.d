lib/des/scheduler.mli: Sim_time

type t = { origin : Net.Topology.pid; seq : int }

let make ~origin ~seq = { origin; seq }

let compare a b =
  let c = Int.compare a.origin b.origin in
  if c <> 0 then c else Int.compare a.seq b.seq

let equal a b = compare a b = 0
let hash a = (a.origin * 1_000_003) + a.seq
let pp ppf t = Fmt.pf ppf "m%d.%d" t.origin t.seq
let to_string t = Fmt.str "%a" pp t

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)

module Tbl = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)

(** Globally unique application-message identifiers.

    A message id is the pair (origin process, per-origin sequence number).
    Ids are totally ordered lexicographically; the protocols use this order
    to break timestamp ties deterministically, exactly as the paper's
    [(m.ts, m.id)] comparison requires. *)

type t = { origin : Net.Topology.pid; seq : int }

val make : origin:Net.Topology.pid -> seq:int -> t

val compare : t -> t -> int
(** Lexicographic order on (origin, seq). *)

val equal : t -> t -> bool
val hash : t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
module Tbl : Hashtbl.S with type key = t

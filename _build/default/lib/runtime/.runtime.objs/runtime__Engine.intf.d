lib/runtime/engine.mli: Des Lclock Net Services Trace

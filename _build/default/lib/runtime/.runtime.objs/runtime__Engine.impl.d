lib/runtime/engine.ml: Array Des Latency Lclock List Net Network Rng Scheduler Services Sim_time Topology Trace

lib/runtime/trace.ml: Des Fmt Lclock List Msg_id Net

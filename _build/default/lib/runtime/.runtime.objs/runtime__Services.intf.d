lib/runtime/services.mli: Des Lclock Msg_id Net

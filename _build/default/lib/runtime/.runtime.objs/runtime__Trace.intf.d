lib/runtime/trace.mli: Des Format Lclock Msg_id Net

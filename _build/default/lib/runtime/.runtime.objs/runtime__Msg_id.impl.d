lib/runtime/msg_id.ml: Fmt Hashtbl Int Map Net Set

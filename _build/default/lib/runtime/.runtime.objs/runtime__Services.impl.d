lib/runtime/services.ml: Des Lclock List Msg_id Net

lib/runtime/msg_id.mli: Format Hashtbl Map Net Set

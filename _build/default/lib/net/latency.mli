(** Link latency models.

    The defining feature of the paper's WAN model is that intra-group
    communication is orders of magnitude cheaper than inter-group
    communication. A latency model maps a (source group, destination group)
    pair to a message delay, optionally with bounded random jitter. Jitter
    keeps message interleavings realistic (and lets property tests explore
    schedules) without ever reordering the virtual clock itself. *)

type t

val uniform :
  ?intra_jitter:Des.Sim_time.t ->
  ?inter_jitter:Des.Sim_time.t ->
  intra:Des.Sim_time.t ->
  inter:Des.Sim_time.t ->
  unit ->
  t
(** [uniform ~intra ~inter ()] delays every intra-group message by [intra]
    and every inter-group message by [inter], plus a uniform jitter in
    [\[0, jitter)] when given. *)

val matrix :
  ?jitter:Des.Sim_time.t ->
  intra:Des.Sim_time.t ->
  inter:Des.Sim_time.t array array ->
  unit ->
  t
(** [matrix ~intra ~inter ()] uses [inter.(ga).(gb)] as the base delay from
    group [ga] to group [gb] (asymmetric links allowed) and [intra] inside a
    group. The matrix must be square and cover every group of the topology
    it is used with. *)

val wan_default : t
(** 1ms intra-group (0.2ms jitter), 50ms inter-group (5ms jitter) — the
    "groups of processes inter-connected through high latency links" setting
    of the paper's introduction. *)

val lan_only : t
(** Degenerate single-site model (1ms everywhere); useful in unit tests. *)

val sample :
  t -> Des.Rng.t -> src_group:Topology.gid -> dst_group:Topology.gid ->
  Des.Sim_time.t
(** Draws a delay for one message. *)

val base :
  t -> src_group:Topology.gid -> dst_group:Topology.gid -> Des.Sim_time.t
(** The jitter-free delay between the two groups; used by analytic checks. *)

lib/net/latency.mli: Des Topology

lib/net/latency.ml: Array Des Rng Sim_time

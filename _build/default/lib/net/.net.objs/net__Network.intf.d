lib/net/network.mli: Des Latency Topology

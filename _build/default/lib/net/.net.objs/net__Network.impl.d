lib/net/network.ml: Des Hashtbl Int Latency List Rng Scheduler Sim_time Topology

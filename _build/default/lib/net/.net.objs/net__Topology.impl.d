lib/net/topology.ml: Array Fmt Fun Int List

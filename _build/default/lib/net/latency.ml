open Des

type t =
  | Uniform of {
      intra : Sim_time.t;
      inter : Sim_time.t;
      intra_jitter : Sim_time.t;
      inter_jitter : Sim_time.t;
    }
  | Matrix of {
      intra : Sim_time.t;
      inter : Sim_time.t array array;
      jitter : Sim_time.t;
    }

let uniform ?(intra_jitter = Sim_time.zero) ?(inter_jitter = Sim_time.zero)
    ~intra ~inter () =
  Uniform { intra; inter; intra_jitter; inter_jitter }

let matrix ?(jitter = Sim_time.zero) ~intra ~inter () =
  Array.iter
    (fun row ->
      if Array.length row <> Array.length inter then
        invalid_arg "Latency.matrix: non-square matrix")
    inter;
  Matrix { intra; inter; jitter }

let wan_default =
  uniform
    ~intra:(Sim_time.of_us 1_000) ~intra_jitter:(Sim_time.of_us 200)
    ~inter:(Sim_time.of_us 50_000) ~inter_jitter:(Sim_time.of_us 5_000)
    ()

let lan_only = uniform ~intra:(Sim_time.of_ms 1) ~inter:(Sim_time.of_ms 1) ()

let base t ~src_group ~dst_group =
  match t with
  | Uniform { intra; inter; _ } ->
    if src_group = dst_group then intra else inter
  | Matrix { intra; inter; _ } ->
    if src_group = dst_group then intra else inter.(src_group).(dst_group)

let jitter_of t ~same_group =
  match t with
  | Uniform { intra_jitter; inter_jitter; _ } ->
    if same_group then intra_jitter else inter_jitter
  | Matrix { jitter; _ } -> jitter

let sample t rng ~src_group ~dst_group =
  let b = base t ~src_group ~dst_group in
  let j = jitter_of t ~same_group:(src_group = dst_group) in
  if Sim_time.equal j Sim_time.zero then b
  else Sim_time.add_us b (Rng.int rng (Sim_time.to_us j))

open Des

type 'w inflight = {
  src : Topology.pid;
  dst : Topology.pid;
  payload : 'w;
}

type 'w t = {
  sched : Scheduler.t;
  topology : Topology.t;
  latency : Latency.t;
  rng : Rng.t;
  deliver : src:Topology.pid -> dst:Topology.pid -> 'w -> unit;
  inflight : (Scheduler.handle, 'w inflight) Hashtbl.t;
  holds : (Topology.gid * Topology.gid, Sim_time.t) Hashtbl.t;
  mutable send_filter : (src:Topology.pid -> dst:Topology.pid -> bool) option;
  mutable taps : (src:Topology.pid -> dst:Topology.pid -> 'w -> unit) list;
  mutable sent_total : int;
  mutable sent_inter : int;
  mutable sent_intra : int;
}

let create ~sched ~topology ~latency ~rng ~deliver =
  {
    sched;
    topology;
    latency;
    rng;
    deliver;
    inflight = Hashtbl.create 256;
    holds = Hashtbl.create 8;
    send_filter = None;
    taps = [];
    sent_total = 0;
    sent_inter = 0;
    sent_intra = 0;
  }

let hold_floor t ~src_group ~dst_group =
  match Hashtbl.find_opt t.holds (src_group, dst_group) with
  | None -> Sim_time.zero
  | Some u -> u

let schedule_delivery t ~src ~dst ~arrival payload =
  let handle = ref (-1) in
  let fire () =
    Hashtbl.remove t.inflight !handle;
    t.deliver ~src ~dst payload
  in
  handle := Scheduler.at t.sched arrival fire;
  Hashtbl.replace t.inflight !handle { src; dst; payload }

let send t ~src ~dst payload =
  let admitted =
    match t.send_filter with
    | None -> true
    | Some f -> f ~src ~dst
  in
  if admitted then begin
    let src_group = Topology.group_of t.topology src in
    let dst_group = Topology.group_of t.topology dst in
    t.sent_total <- t.sent_total + 1;
    if src_group = dst_group then t.sent_intra <- t.sent_intra + 1
    else t.sent_inter <- t.sent_inter + 1;
    List.iter (fun tap -> tap ~src ~dst payload) t.taps;
    let delay = Latency.sample t.latency t.rng ~src_group ~dst_group in
    let arrival = Sim_time.add (Scheduler.now t.sched) delay in
    let arrival =
      Sim_time.max arrival (hold_floor t ~src_group ~dst_group)
    in
    schedule_delivery t ~src ~dst ~arrival payload
  end

let hold t ~src_group ~dst_group ~until =
  let prev = hold_floor t ~src_group ~dst_group in
  Hashtbl.replace t.holds (src_group, dst_group) (Sim_time.max prev until);
  (* Push back messages already in flight on that link. *)
  let to_reschedule =
    Hashtbl.fold
      (fun h m acc ->
        if
          Topology.group_of t.topology m.src = src_group
          && Topology.group_of t.topology m.dst = dst_group
        then (h, m) :: acc
        else acc)
      t.inflight []
  in
  (* Deterministic order: sort by handle. *)
  let to_reschedule =
    List.sort (fun (a, _) (b, _) -> Int.compare a b) to_reschedule
  in
  List.iter
    (fun (h, m) ->
      Scheduler.cancel t.sched h;
      Hashtbl.remove t.inflight h;
      schedule_delivery t ~src:m.src ~dst:m.dst ~arrival:until m.payload)
    to_reschedule

let partition t ~src_group ~dst_group =
  hold t ~src_group ~dst_group ~until:Sim_time.infinity

let heal t ~src_group ~dst_group =
  if Hashtbl.mem t.holds (src_group, dst_group) then begin
    Hashtbl.remove t.holds (src_group, dst_group);
    (* Re-schedule everything that was parked on this link with a fresh
       latency sample from the healing instant. *)
    let parked =
      Hashtbl.fold
        (fun h m acc ->
          if
            Topology.group_of t.topology m.src = src_group
            && Topology.group_of t.topology m.dst = dst_group
          then (h, m) :: acc
          else acc)
        t.inflight []
      |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
    in
    List.iter
      (fun (h, m) ->
        Scheduler.cancel t.sched h;
        Hashtbl.remove t.inflight h;
        let delay = Latency.sample t.latency t.rng ~src_group ~dst_group in
        let arrival = Sim_time.add (Scheduler.now t.sched) delay in
        schedule_delivery t ~src:m.src ~dst:m.dst ~arrival m.payload)
      parked
  end

let partition_groups t side_a side_b =
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          partition t ~src_group:a ~dst_group:b;
          partition t ~src_group:b ~dst_group:a)
        side_b)
    side_a

let heal_all t =
  let links = Hashtbl.fold (fun link _ acc -> link :: acc) t.holds [] in
  List.iter
    (fun (src_group, dst_group) -> heal t ~src_group ~dst_group)
    (List.sort compare links)

let drop_inflight t pred =
  let victims =
    Hashtbl.fold
      (fun h m acc -> if pred ~src:m.src ~dst:m.dst then h :: acc else acc)
      t.inflight []
  in
  List.iter
    (fun h ->
      Scheduler.cancel t.sched h;
      Hashtbl.remove t.inflight h)
    victims;
  List.length victims

let set_send_filter t f = t.send_filter <- f
let on_send t tap = t.taps <- t.taps @ [ tap ]
let sent_total t = t.sent_total
let sent_inter_group t = t.sent_inter
let sent_intra_group t = t.sent_intra
let in_flight t = Hashtbl.length t.inflight
let topology t = t.topology

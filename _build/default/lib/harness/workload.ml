open Des
open Net

type cast = {
  at : Sim_time.t;
  origin : Topology.pid;
  dest : Topology.gid list;
  payload : string;
}

type t = cast list

let single ?(payload = "m") ~at ~origin ~dest () =
  [ { at; origin; dest; payload } ]

let broadcast_single ?(payload = "m") ~at ~origin topology =
  [ { at; origin; dest = Topology.all_groups topology; payload } ]

type dest_kind =
  | To_all_groups
  | Random_groups of int
  | Fixed_groups of Topology.gid list

let pick_dest ~rng ~topology = function
  | To_all_groups -> Topology.all_groups topology
  | Fixed_groups gs -> gs
  | Random_groups k ->
    let m = Topology.n_groups topology in
    let k = max 1 (min k m) in
    let size = 1 + Rng.int rng k in
    Rng.sample_without_replacement rng size (Topology.all_groups topology)
    |> List.sort_uniq Int.compare

let generate ~rng ~topology ~n ~dest ~arrival ?(start = Sim_time.of_ms 1)
    ?origins () =
  let origins =
    match origins with
    | Some (_ :: _ as l) -> Array.of_list l
    | Some [] | None -> Array.of_list (Topology.all_pids topology)
  in
  let time = ref start in
  List.init n (fun i ->
      let at = !time in
      (match arrival with
      | `Every gap -> time := Sim_time.add !time gap
      | `Poisson mean ->
        let gap =
          Rng.exponential rng ~mean:(float_of_int (Sim_time.to_us mean))
        in
        time := Sim_time.add_us !time (max 1 (int_of_float gap)));
      {
        at;
        origin = Rng.pick rng origins;
        dest = pick_dest ~rng ~topology dest;
        payload = Fmt.str "m%d" i;
      })

let span t =
  List.fold_left (fun acc c -> Sim_time.max acc c.at) Sim_time.zero t

let pp ppf t =
  let pp_cast ppf c =
    Fmt.pf ppf "%a p%d->[%a] %S" Sim_time.pp c.at c.origin
      Fmt.(list ~sep:(any ",") int)
      c.dest c.payload
  in
  Fmt.(list ~sep:(any "@\n") pp_cast) ppf t

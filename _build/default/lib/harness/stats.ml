let of_ints = List.map float_of_int

let mean = function
  | [] -> None
  | xs ->
    Some (List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs))

let stddev xs =
  match (xs, mean xs) with
  | x0 :: _ :: _, Some m ->
    ignore x0;
    let n = float_of_int (List.length xs) in
    let ss =
      List.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0. xs
    in
    Some (sqrt (ss /. (n -. 1.)))
  | _ -> None

let sorted xs = List.sort Float.compare xs

let percentile p xs =
  if p < 0. || p > 100. then invalid_arg "Stats.percentile: p out of range";
  match sorted xs with
  | [] -> None
  | s ->
    let n = List.length s in
    let rank =
      int_of_float (ceil (p /. 100. *. float_of_int n)) |> max 1 |> min n
    in
    Some (List.nth s (rank - 1))

let median xs = percentile 50. xs

let min_max = function
  | [] -> None
  | x :: xs ->
    Some
      (List.fold_left
         (fun (lo, hi) v -> (Float.min lo v, Float.max hi v))
         (x, x) xs)

let histogram ~buckets xs =
  if buckets <= 0 then invalid_arg "Stats.histogram: buckets must be positive";
  match min_max xs with
  | None -> []
  | Some (lo, hi) ->
    let width =
      if hi > lo then (hi -. lo) /. float_of_int buckets else 1.
    in
    let counts = Array.make buckets 0 in
    List.iter
      (fun x ->
        let b =
          min (buckets - 1) (int_of_float ((x -. lo) /. width))
        in
        counts.(b) <- counts.(b) + 1)
      xs;
    List.init buckets (fun b -> (lo +. (float_of_int b *. width), counts.(b)))

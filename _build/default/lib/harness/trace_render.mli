(** Renders a run trace as a per-process timeline.

    One column per process, one row per event, so protocol behaviour — the
    rmcast fan-out, the consensus rounds inside a group, the TS exchange
    crossing groups, a crash going silent — is readable at a glance.
    Used by [amcast_sim --print-timeline] and handy in the toplevel while
    debugging protocols. *)

val timeline :
  ?max_rows:int -> topology:Net.Topology.t -> Runtime.Trace.t -> string
(** [timeline ~topology trace] is a textual table; [max_rows] (default
    200) truncates long traces with an ellipsis row. *)

val pp :
  ?max_rows:int ->
  topology:Net.Topology.t ->
  Format.formatter ->
  Runtime.Trace.t ->
  unit

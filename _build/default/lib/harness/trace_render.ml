open Runtime

let cell_of_entry entry =
  match entry with
  | Trace.Send { src; dst; tag; inter_group; _ } ->
    Some (src, Fmt.str "%s>%d%s" tag dst (if inter_group then "*" else ""))
  | Trace.Receive { src; dst; _ } -> Some (dst, Fmt.str "recv<%d" src)
  | Trace.Cast { pid; id; _ } -> Some (pid, Fmt.str "CAST %s" (Msg_id.to_string id))
  | Trace.Deliver { pid; id; _ } ->
    Some (pid, Fmt.str "DLVR %s" (Msg_id.to_string id))
  | Trace.Crash { pid; _ } -> Some (pid, "CRASH")
  | Trace.Note { pid; text; _ } -> Some (pid, Fmt.str "(%s)" text)

let time_of_entry = function
  | Trace.Send { time; _ }
  | Trace.Receive { time; _ }
  | Trace.Cast { time; _ }
  | Trace.Deliver { time; _ }
  | Trace.Crash { time; _ }
  | Trace.Note { time; _ } ->
    time

let timeline ?(max_rows = 200) ~topology trace =
  let n = Net.Topology.n_processes topology in
  let entries = Trace.entries trace in
  let rows =
    List.filter_map
      (fun e ->
        match cell_of_entry e with
        | Some (pid, text) -> Some (time_of_entry e, pid, text)
        | None -> None)
      entries
  in
  let truncated = List.length rows > max_rows in
  let rows = List.filteri (fun i _ -> i < max_rows) rows in
  let col_width =
    List.fold_left
      (fun acc (_, _, text) -> max acc (String.length text))
      6 rows
    + 1
  in
  let buf = Buffer.create 4096 in
  let pad s w = s ^ String.make (max 0 (w - String.length s)) ' ' in
  Buffer.add_string buf (pad "time" 10);
  for pid = 0 to n - 1 do
    Buffer.add_string buf
      (pad (Fmt.str "| p%d(g%d)" pid (Net.Topology.group_of topology pid))
         col_width)
  done;
  Buffer.add_char buf '\n';
  List.iter
    (fun (time, pid, text) ->
      Buffer.add_string buf (pad (Des.Sim_time.to_string time) 10);
      for p = 0 to n - 1 do
        Buffer.add_string buf
          (pad (if p = pid then "| " ^ text else "|") col_width)
      done;
      Buffer.add_char buf '\n')
    rows;
  if truncated then Buffer.add_string buf "... (truncated)\n";
  Buffer.contents buf

let pp ?max_rows ~topology ppf trace =
  Fmt.string ppf (timeline ?max_rows ~topology trace)

(** Figure 1's analytic cost model, as code.

    The paper compares algorithms by latency degree and inter-group message
    count under the oracle-based primitives of [6] (reliable multicast:
    latency degree 1, [d(k-1)] inter-group messages) and [11] (consensus:
    latency degree 2, [2kd(kd-1)] messages when run across [k] groups of
    [d]). This module encodes those closed forms so that tests can check
    the {e shape} claims mechanically — who is cheaper than whom, where
    the orderings hold — against both the formulas and the measured runs.

    [k] is the number of destination groups, [d] the processes per group,
    [n] the total number of processes. *)

type cost = { latency_degree : int; inter_msgs : int }

(** Figure 1(a): multicast algorithms. *)

val ring : k:int -> d:int -> cost
(** Delporte-Gallet & Fauconnier [4]: degree [k+1], O(kd²) messages. *)

val scalable : k:int -> d:int -> cost
(** Rodrigues et al. [10]: degree 4, O(k²d²) messages. *)

val fritzke : k:int -> d:int -> cost
(** Fritzke et al. [5]: degree 2, O(k²d²) messages. *)

val a1 : k:int -> d:int -> cost
(** Algorithm A1: degree 2 (0 or 1 for single-group messages), O(k²d²). *)

val detmerge_multicast : k:int -> d:int -> cost
(** Aguilera & Strom [1]: degree 1, O(kd) (nulls excluded). *)

(** Figure 1(b): broadcast algorithms. *)

val optimistic : n:int -> cost
(** Sousa et al. [12]: degree 2, O(n). *)

val sequencer : n:int -> cost
(** Vicente & Rodrigues [13]: degree 2, O(n²). *)

val a2 : n:int -> cost
(** Algorithm A2 (warm): degree 1, O(n²). *)

val detmerge_broadcast : n:int -> cost
(** Aguilera & Strom [1]: degree 1, O(n). *)

val dominates_in_latency : cost -> cost -> bool
(** [dominates_in_latency a b] iff [a] has strictly smaller degree. *)

val multicast_ordering_holds : k:int -> d:int -> bool
(** The headline ordering of Figure 1(a) for [k >= 2]:
    [1] < A1 = [5] < [4]-for-k>=2 and [10] slowest among genuine; and the
    message-count ordering [1] < [4] < (A1 = [5] = [10]) asymptotically. *)

val broadcast_ordering_holds : n:int -> bool
(** Figure 1(b): A2 and [1] at degree 1 beat [12] and [13] at degree 2. *)

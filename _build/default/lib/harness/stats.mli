(** Small descriptive-statistics toolkit for experiment outputs. *)

val mean : float list -> float option
val stddev : float list -> float option
(** Sample standard deviation (n-1 denominator); [None] for fewer than two
    samples. *)

val median : float list -> float option

val percentile : float -> float list -> float option
(** [percentile p xs] for [p] in [\[0, 100\]], nearest-rank method.
    @raise Invalid_argument if [p] is out of range. *)

val min_max : float list -> (float * float) option

val histogram : buckets:int -> float list -> (float * int) list
(** [histogram ~buckets xs] is a list of (bucket lower bound, count) over
    the sample range; empty for an empty sample.
    @raise Invalid_argument if [buckets <= 0]. *)

val of_ints : int list -> float list

(** Randomised soak campaigns.

    Runs many independently-seeded scenarios — random topology, workload,
    latency model, crash schedule — through one protocol, checks every run
    with {!Checker}, and aggregates. This is the library's "chaos testing"
    entry point: the test suite runs small campaigns, and
    [bin/amcast_soak] runs large ones from the command line. *)

type scenario = {
  seed : int;
  groups : int;
  per_group : int;
  n_msgs : int;
  broadcast_only : bool;  (** Force [dest = all groups]. *)
  with_crashes : bool;
      (** Crash up to a minority of each group at random instants, with
          random in-flight-loss patterns. *)
  jitter : bool;  (** WAN jitter vs crisp deterministic latencies. *)
}

type outcome = {
  scenario : scenario;
  violations : string list;
  delivered : int;
  max_degree : int option;
  drained : bool;
}

type summary = {
  runs : int;
  clean : int;
  total_violations : int;
  failures : outcome list;  (** Outcomes with at least one violation. *)
  delivered_total : int;
}

val random_scenario :
  Des.Rng.t ->
  ?broadcast_only:bool ->
  ?with_crashes:bool ->
  unit ->
  scenario

val run_one :
  (module Amcast.Protocol.S) -> ?expect_genuine:bool -> scenario -> outcome

val run :
  (module Amcast.Protocol.S) ->
  ?expect_genuine:bool ->
  ?broadcast_only:bool ->
  ?with_crashes:bool ->
  seed:int ->
  runs:int ->
  unit ->
  summary

val pp_summary : Format.formatter -> summary -> unit

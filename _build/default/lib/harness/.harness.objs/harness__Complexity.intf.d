lib/harness/complexity.mli:

lib/harness/trace_render.mli: Format Net Runtime

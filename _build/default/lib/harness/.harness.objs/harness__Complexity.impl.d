lib/harness/complexity.ml:

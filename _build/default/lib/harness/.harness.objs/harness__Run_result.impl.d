lib/harness/run_result.ml: Amcast Des Fmt Lclock List Net Runtime Topology

lib/harness/causal.mli: Runtime

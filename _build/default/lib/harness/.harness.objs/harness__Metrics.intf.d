lib/harness/metrics.mli: Des Run_result Runtime

lib/harness/workload.ml: Array Des Fmt Int List Net Rng Sim_time Topology

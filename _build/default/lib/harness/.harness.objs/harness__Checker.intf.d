lib/harness/checker.mli: Run_result

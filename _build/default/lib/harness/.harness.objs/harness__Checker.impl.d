lib/harness/checker.ml: Amcast Array Causal Des Fmt Hashtbl Int List Msg_id Net Run_result Runtime String Topology Trace

lib/harness/campaign.mli: Amcast Des Format

lib/harness/workload.mli: Des Format Net

lib/harness/trace_render.ml: Buffer Des Fmt List Msg_id Net Runtime String Trace

lib/harness/stats.mli:

lib/harness/runner.mli: Amcast Des Net Run_result Runtime Workload

lib/harness/metrics.ml: Amcast Des Hashtbl Lclock List Msg_id Option Run_result Runtime String Trace

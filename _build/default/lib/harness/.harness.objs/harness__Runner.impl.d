lib/harness/runner.ml: Amcast Array Des Engine Latency List Msg_id Net Network Option Run_result Runtime Scheduler Services Sim_time Topology Trace Workload

lib/harness/campaign.ml: Amcast Checker Des Fmt Latency List Metrics Net Rng Runner Runtime Sim_time Topology Workload

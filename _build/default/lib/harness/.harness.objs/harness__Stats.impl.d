lib/harness/stats.ml: Array Float List

lib/harness/run_result.mli: Amcast Des Format Lclock Net Runtime

lib/harness/causal.ml: Array Hashtbl List Msg_id Option Runtime Trace

open Net
open Runtime

type violation = string

let cast_ids (r : Run_result.t) =
  List.fold_left
    (fun acc (c : Run_result.cast_event) ->
      Msg_id.Set.add c.msg.Amcast.Msg.id acc)
    Msg_id.Set.empty r.casts

let uniform_integrity (r : Run_result.t) =
  let casts = cast_ids r in
  let seen = Hashtbl.create 64 in
  List.fold_left
    (fun acc (d : Run_result.delivery_event) ->
      let id = d.msg.Amcast.Msg.id in
      let acc =
        if Hashtbl.mem seen (d.pid, id) then
          Fmt.str "p%d delivered %a twice" d.pid Msg_id.pp id :: acc
        else begin
          Hashtbl.replace seen (d.pid, id) ();
          acc
        end
      in
      let acc =
        if not (Msg_id.Set.mem id casts) then
          Fmt.str "p%d delivered %a which was never cast" d.pid Msg_id.pp id
          :: acc
        else acc
      in
      if not (Amcast.Msg.addressed_to_pid r.topology d.msg d.pid) then
        Fmt.str "p%d delivered %a but is not an addressee" d.pid Msg_id.pp id
        :: acc
      else acc)
    [] r.deliveries

let validity (r : Run_result.t) =
  if not r.drained then []
  else
    List.fold_left
      (fun acc (c : Run_result.cast_event) ->
        let id = c.msg.Amcast.Msg.id in
        if Run_result.correct r c.origin then
          if Run_result.delivered_everywhere_needed r id then acc
          else
            Fmt.str
              "validity: %a cast by correct p%d not delivered by every \
               correct addressee"
              Msg_id.pp id c.origin
            :: acc
        else acc)
      [] r.casts

let uniform_agreement (r : Run_result.t) =
  if not r.drained then []
  else
    let delivered_somewhere =
      List.fold_left
        (fun acc (d : Run_result.delivery_event) ->
          Msg_id.Set.add d.msg.Amcast.Msg.id acc)
        Msg_id.Set.empty r.deliveries
    in
    Msg_id.Set.fold
      (fun id acc ->
        if Run_result.delivered_everywhere_needed r id then acc
        else
          Fmt.str
            "uniform agreement: %a delivered somewhere but not by every \
             correct addressee"
            Msg_id.pp id
          :: acc)
      delivered_somewhere []

(* Projected prefix order: for each pair (p, q), restrict both sequences to
   the messages addressed to both p's and q's group, and require one to be
   a prefix of the other. *)
let uniform_prefix_order (r : Run_result.t) =
  let pids = Topology.all_pids r.topology in
  let seqs =
    List.map (fun p -> (p, Array.of_list (Run_result.sequence_of r p))) pids
  in
  let project gp gq seq =
    Array.to_list seq
    |> List.filter (fun (m : Amcast.Msg.t) ->
           Amcast.Msg.addressed_to_group m gp
           && Amcast.Msg.addressed_to_group m gq)
  in
  let rec is_prefix a b =
    match (a, b) with
    | [], _ -> true
    | _, [] -> false
    | x :: a', y :: b' -> Amcast.Msg.equal_id x y && is_prefix a' b'
  in
  let violations = ref [] in
  List.iter
    (fun (p, sp) ->
      List.iter
        (fun (q, sq) ->
          if p < q then begin
            let gp = Topology.group_of r.topology p in
            let gq = Topology.group_of r.topology q in
            let pp_ = project gp gq sp in
            let pq = project gp gq sq in
            if not (is_prefix pp_ pq || is_prefix pq pp_) then
              violations :=
                Fmt.str
                  "prefix order violated between p%d [%a] and p%d [%a]" p
                  Fmt.(list ~sep:(any " ") Amcast.Msg.pp)
                  pp_ q
                  Fmt.(list ~sep:(any " ") Amcast.Msg.pp)
                  pq
                :: !violations
          end)
        seqs)
    seqs;
  !violations

let genuineness (r : Run_result.t) =
  let allowed =
    List.fold_left
      (fun acc (c : Run_result.cast_event) ->
        List.fold_left
          (fun acc p -> p :: acc)
          (c.origin :: acc)
          (Amcast.Msg.dest_pids r.topology c.msg))
      [] r.casts
    |> List.sort_uniq Int.compare
  in
  let check pid role time acc =
    if List.mem pid allowed then acc
    else
      Fmt.str
        "genuineness: p%d %s a message at %a but is neither caster nor \
         addressee of any cast"
        pid role Des.Sim_time.pp time
      :: acc
  in
  List.fold_left
    (fun acc entry ->
      match entry with
      | Trace.Send { src; dst; time; _ } ->
        check src "sent" time (check dst "was sent" time acc)
      | _ -> acc)
    []
    (Trace.entries r.trace)
  |> List.sort_uniq String.compare

(* Causal order: cast(m1) -> cast(m2) implies m1 before m2 at every
   process delivering both. Pairwise over cast messages using the
   happened-before DAG reconstructed from the trace. *)
let causal_delivery_order (r : Run_result.t) =
  let causal = Causal.of_trace r.trace in
  let ids =
    List.map (fun (c : Run_result.cast_event) -> c.msg.Amcast.Msg.id) r.casts
  in
  let position_of seq id =
    let rec find i = function
      | [] -> None
      | (m : Amcast.Msg.t) :: rest ->
        if Msg_id.equal m.id id then Some i else find (i + 1) rest
    in
    find 0 seq
  in
  let violations = ref [] in
  List.iter
    (fun id1 ->
      List.iter
        (fun id2 ->
          if
            (not (Msg_id.equal id1 id2))
            && Causal.causally_precedes causal id1 id2
          then
            List.iter
              (fun p ->
                let seq = Run_result.sequence_of r p in
                match (position_of seq id1, position_of seq id2) with
                | Some i1, Some i2 when i2 < i1 ->
                  violations :=
                    Fmt.str
                      "causal order: p%d delivered %a before %a although \
                       cast(%a) happened-before cast(%a)"
                      p Msg_id.pp id2 Msg_id.pp id1 Msg_id.pp id1 Msg_id.pp
                      id2
                    :: !violations
                | _ -> ())
              (Topology.all_pids r.topology))
        ids)
    ids;
  !violations

let quiescence (r : Run_result.t) =
  if r.drained then []
  else [ "run did not drain: the deployment kept scheduling events" ]

let check_all ?(expect_genuine = false) r =
  uniform_integrity r @ validity r @ uniform_agreement r
  @ uniform_prefix_order r
  @ if expect_genuine then genuineness r else []

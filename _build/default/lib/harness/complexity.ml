type cost = { latency_degree : int; inter_msgs : int }

(* Primitive costs from the paper's Section 6: reliable multicast to k
   groups of d costs d(k-1) inter-group messages at degree 1; consensus
   across k groups of d costs 2kd(kd-1) at degree 2 (intra-group consensus
   is free in inter-group messages). *)
let rm ~k ~d = d * (k - 1)
let cross_consensus ~k ~d = 2 * k * d * ((k * d) - 1)

let ring ~k ~d =
  {
    latency_degree = k + 1;
    (* rm to the first group + (k-1) hand-offs of d² messages + the final
       acknowledgment from the last group to all k groups *)
    inter_msgs = rm ~k:2 ~d + ((k - 1) * d * d) + (d * (k - 1) * d);
  }

let scalable ~k ~d =
  {
    latency_degree = 4;
    (* rm + all-to-all timestamp exchange + cross-group consensus *)
    inter_msgs =
      rm ~k ~d + (k * d * (k - 1) * d) + cross_consensus ~k ~d;
  }

let fritzke ~k ~d =
  {
    latency_degree = 2;
    (* rm + TS exchange: every destination process writes to the d(k-1)
       processes outside its group *)
    inter_msgs = rm ~k ~d + (k * d * (k - 1) * d);
  }

let a1 ~k ~d = fritzke ~k ~d (* same inter-group pattern; skips are intra *)

let detmerge_multicast ~k ~d =
  { latency_degree = 1; inter_msgs = rm ~k ~d }

let optimistic ~n = { latency_degree = 2; inter_msgs = 2 * n }
let sequencer ~n = { latency_degree = 2; inter_msgs = (2 * n) + (n * n) }
let a2 ~n = { latency_degree = 1; inter_msgs = n * n }
let detmerge_broadcast ~n = { latency_degree = 1; inter_msgs = n }

let dominates_in_latency a b = a.latency_degree < b.latency_degree

let multicast_ordering_holds ~k ~d =
  if k < 2 then invalid_arg "multicast_ordering_holds: k >= 2 expected";
  let r = ring ~k ~d
  and s = scalable ~k ~d
  and f = fritzke ~k ~d
  and a = a1 ~k ~d
  and dm = detmerge_multicast ~k ~d in
  dominates_in_latency dm a
  && a.latency_degree = f.latency_degree
  && a.latency_degree < r.latency_degree
  && a.latency_degree <= s.latency_degree
  && dm.inter_msgs < r.inter_msgs
  && r.inter_msgs < s.inter_msgs
  && a.inter_msgs <= s.inter_msgs

let broadcast_ordering_holds ~n =
  let o = optimistic ~n
  and sq = sequencer ~n
  and a = a2 ~n
  and dm = detmerge_broadcast ~n in
  dominates_in_latency a o && dominates_in_latency a sq
  && a.latency_degree = dm.latency_degree
  && dm.inter_msgs < sq.inter_msgs
  && o.inter_msgs < a.inter_msgs

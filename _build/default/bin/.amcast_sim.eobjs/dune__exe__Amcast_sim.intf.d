bin/amcast_sim.mli:

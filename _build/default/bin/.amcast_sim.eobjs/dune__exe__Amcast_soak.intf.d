bin/amcast_soak.mli:

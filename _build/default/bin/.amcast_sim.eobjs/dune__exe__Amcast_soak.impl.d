bin/amcast_soak.ml: Amcast Array Fmt Harness List Sys

bin/amcast_sim.ml: Amcast Arg Cmd Cmdliner Des Fmt Harness Latency List Net Rng Runtime Sim_time String Term Topology

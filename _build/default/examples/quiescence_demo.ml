(* Quiescence demo — watching Algorithm A2 go quiet and wake up again.

   A2 is proactive (it runs rounds even when nothing was broadcast, so that
   a broadcast can be delivered in a single inter-site delay) yet quiescent
   (it predicts when traffic stopped and stops executing rounds). This demo
   casts a burst of broadcasts, lets the system fall silent, then casts one
   more message after quiescence: the timeline shows traffic ceasing
   entirely, and the late message restarting the rounds at the price of one
   extra inter-site delay (latency degree 2 instead of 1) — the cost of
   quiescence the paper proves unavoidable (Propositions 3.1/3.3).

   Run with: dune exec examples/quiescence_demo.exe *)

open Des
open Net
module Runner = Harness.Runner.Make (Amcast.A2)

let () =
  let topology = Topology.symmetric ~groups:2 ~per_group:2 in
  let all = Topology.all_groups topology in
  let deployment = Runner.deploy ~seed:3 topology in

  (* Burst: five broadcasts 30ms apart. *)
  for i = 0 to 4 do
    ignore
      (Runner.cast_at deployment
         ~at:(Sim_time.of_ms (1 + (30 * i)))
         ~origin:(2 * (i mod 2))
         ~dest:all
         ~payload:(Fmt.str "burst-%d" i)
         ())
  done;
  (* Run the burst out: the deployment drains (= quiescence). *)
  let r1 = Runner.run_deployment deployment in
  let silence_from =
    Option.value ~default:Sim_time.zero (Harness.Metrics.last_send_time r1)
  in

  (* One more broadcast, well after quiescence. *)
  let late_at = Sim_time.add (Runtime.Engine.now (Runner.engine deployment))
      (Sim_time.of_ms 300) in
  let late =
    Runner.cast_at deployment ~at:late_at ~origin:1 ~dest:all
      ~payload:"wake-up" ()
  in
  let r2 = Runner.run_deployment deployment in

  (* Timeline: sends per 25ms bucket. *)
  let buckets = Hashtbl.create 32 in
  List.iter
    (fun e ->
      match e with
      | Runtime.Trace.Send { time; _ } ->
        let b = Sim_time.to_us time / 25_000 in
        Hashtbl.replace buckets b
          (1 + Option.value ~default:0 (Hashtbl.find_opt buckets b))
      | _ -> ())
    (Runtime.Trace.entries r2.trace);
  let max_bucket =
    Hashtbl.fold (fun b _ acc -> max b acc) buckets 0
  in
  Fmt.pr "== traffic timeline (one # per 4 messages sent in 25ms) ==@.";
  for b = 0 to max_bucket do
    let n = Option.value ~default:0 (Hashtbl.find_opt buckets b) in
    if n > 0 || b mod 4 = 0 then
      Fmt.pr "  %4dms %s%s@." (b * 25)
        (String.make (min 60 ((n + 3) / 4)) '#')
        (if n = 0 then "(silence)" else Fmt.str " %d" n)
  done;

  Fmt.pr "@.burst ends, last send at %a; then silence until the wake-up \
          cast at %a.@."
    Sim_time.pp silence_from Sim_time.pp late_at;

  Fmt.pr "@.== latency degrees ==@.";
  List.iter
    (fun (id, deg) ->
      Fmt.pr "  %a: %a%s@." Runtime.Msg_id.pp id
        Fmt.(option ~none:(any "-") int)
        deg
        (if Runtime.Msg_id.equal id late then
           "   <- cast after quiescence: pays the extra hop (Prop 3.1/3.3)"
         else ""))
    (Harness.Metrics.latency_degrees r2);

  match
    Harness.Checker.check_all r2 @ Harness.Checker.quiescence r2
  with
  | [] -> Fmt.pr "@.safe, and quiescent again after the wake-up message.@."
  | v ->
    Fmt.pr "VIOLATIONS: %a@." Fmt.(list string) v;
    exit 1

examples/global_ledger.ml: Amcast Array Des Fmt Harness Hashtbl List Net Option Runtime Sim_time String Topology

examples/quickstart.mli:

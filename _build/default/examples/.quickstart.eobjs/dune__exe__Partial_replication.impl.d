examples/partial_replication.ml: Amcast Array Des Fmt Harness Int List Net Sim_time String Topology

examples/quiescence_demo.mli:

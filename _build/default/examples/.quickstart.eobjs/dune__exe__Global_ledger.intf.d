examples/global_ledger.mli:

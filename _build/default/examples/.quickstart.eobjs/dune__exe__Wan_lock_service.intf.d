examples/wan_lock_service.mli:

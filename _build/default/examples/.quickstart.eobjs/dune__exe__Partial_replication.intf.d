examples/partial_replication.mli:

examples/quiescence_demo.ml: Amcast Des Fmt Harness Hashtbl List Net Option Runtime Sim_time String Topology

examples/quickstart.ml: Amcast Des Fmt Harness List Net Sim_time Topology

examples/wan_lock_service.ml: Amcast Array Des Fmt Harness List Net Sim_time String Topology

(* Quickstart: deploy the paper's genuine atomic multicast (Algorithm A1)
   on a simulated three-site WAN, multicast a few messages to different
   group subsets, and inspect what the library gives you back: per-process
   delivery sequences, measured latency degrees, and machine-checked
   correctness properties.

   Run with: dune exec examples/quickstart.exe *)

open Des
open Net

(* The runner instantiates one simulated process per topology slot, all
   running A1, and wires casting/delivery to the measurement harness. *)
module Runner = Harness.Runner.Make (Amcast.A1)

let () =
  (* Three geographical sites ("groups"), two replicas each: pids 0-1 in
     group 0, 2-3 in group 1, 4-5 in group 2. Inter-site links take ~50ms,
     local links ~1ms — the paper's WAN setting. *)
  let topology = Topology.symmetric ~groups:3 ~per_group:2 in
  let deployment = Runner.deploy ~seed:42 topology in

  (* A-MCast three messages:
     - m0 from p0 to groups {0,1};
     - m1 from p2 to group {1} only (single-group: the cheap case);
     - m2 from p4 to all three groups. *)
  let m0 =
    Runner.cast_at deployment ~at:(Sim_time.of_ms 1) ~origin:0
      ~dest:[ 0; 1 ] ~payload:"hello 0+1" ()
  in
  let m1 =
    Runner.cast_at deployment ~at:(Sim_time.of_ms 2) ~origin:2 ~dest:[ 1 ]
      ~payload:"hello 1" ()
  in
  let m2 =
    Runner.cast_at deployment ~at:(Sim_time.of_ms 3) ~origin:4
      ~dest:[ 0; 1; 2 ] ~payload:"hello all" ()
  in

  (* Run the virtual WAN until every protocol instance goes quiet. *)
  let result = Runner.run_deployment deployment in

  Fmt.pr "== deliveries, in order, per process ==@.";
  List.iter
    (fun pid ->
      Fmt.pr "  p%d (group %d): %a@." pid
        (Topology.group_of topology pid)
        Fmt.(
          list ~sep:(any " -> ") (fun ppf (m : Amcast.Msg.t) ->
              Fmt.pf ppf "%s" m.payload))
        (Harness.Run_result.sequence_of result pid))
    (Topology.all_pids topology);

  Fmt.pr "@.== latency degrees (inter-site hops on the causal path) ==@.";
  List.iter
    (fun (name, id) ->
      Fmt.pr "  %s: %a@." name
        Fmt.(option ~none:(any "undelivered") int)
        (Harness.Metrics.latency_degree result id))
    [ ("m0 (2 groups) ", m0); ("m1 (1 group)  ", m1); ("m2 (3 groups) ", m2) ];
  Fmt.pr "  (the paper proves 2 is optimal for >= 2 groups)@.";

  Fmt.pr "@.== messages on the expensive inter-site links ==@.";
  Fmt.pr "  %d inter-site, %d local@."
    (Harness.Metrics.inter_group_messages result)
    (Harness.Metrics.intra_group_messages result);

  Fmt.pr "@.== correctness (checked from the trace, not self-reported) ==@.";
  match Harness.Checker.check_all ~expect_genuine:true result with
  | [] ->
    Fmt.pr
      "  uniform integrity, validity, uniform agreement, uniform prefix \
       order, genuineness: all hold.@."
  | violations ->
    Fmt.pr "  VIOLATIONS:@.%a@."
      Fmt.(list ~sep:(any "@.") string)
      violations;
    exit 1
